module forkbase

go 1.21
