package forkbase_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"forkbase"
	"forkbase/internal/access"
)

func TestPublicRoundTrip(t *testing.T) {
	db := forkbase.MustOpen(forkbase.InMemory())
	defer db.Close()

	v, err := db.PutString("k", "", "hello", map[string]string{"a": "b"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Get("k", "")
	if err != nil || got.UID != v.UID {
		t.Fatalf("get: %v", err)
	}
	if got.Value.Display() != "hello" {
		t.Fatalf("display = %q", got.Value.Display())
	}
	byUID, err := db.GetVersion("k", v.UID)
	if err != nil || byUID.Value.Display() != "hello" {
		t.Fatalf("get by uid: %v", err)
	}
}

func TestPublicTypedPuts(t *testing.T) {
	db := forkbase.MustOpen()
	defer db.Close()
	if _, err := db.PutBlob("b", "", bytes.Repeat([]byte("z"), 50000), nil); err != nil {
		t.Fatal(err)
	}
	ver, err := db.Get("b", "")
	if err != nil {
		t.Fatal(err)
	}
	data, err := db.BlobBytes(ver)
	if err != nil || len(data) != 50000 {
		t.Fatalf("blob: %d %v", len(data), err)
	}
	if _, err := db.PutSet("s", "", [][]byte{[]byte("x")}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.PutList("l", "", [][]byte{[]byte("i")}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Put("prim", "", forkbase.NewInt(7), nil); err != nil {
		t.Fatal(err)
	}
	keys, err := db.ListKeys()
	if err != nil || len(keys) != 4 {
		t.Fatalf("keys = %v", keys)
	}
}

func TestPublicBranchDiffMerge(t *testing.T) {
	db := forkbase.MustOpen()
	defer db.Close()
	entries := make([]forkbase.Entry, 500)
	for i := range entries {
		entries[i] = forkbase.Entry{Key: []byte(fmt.Sprintf("r%04d", i)), Val: []byte("v")}
	}
	if _, err := db.PutMap("m", "", entries, nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Branch("m", "dev", ""); err != nil {
		t.Fatal(err)
	}
	entries[100].Val = []byte("changed")
	if _, err := db.PutMap("m", "dev", entries, nil); err != nil {
		t.Fatal(err)
	}
	deltas, _, err := db.DiffBranches("m", "master", "dev")
	if err != nil || len(deltas) != 1 {
		t.Fatalf("diff: %d %v", len(deltas), err)
	}
	res, err := db.Merge("m", "master", "dev", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FastForward {
		t.Fatal("expected fast-forward")
	}
	branch, latest, err := db.Latest("m")
	if err != nil || latest.Seq != 2 {
		t.Fatalf("latest: %s %d %v", branch, latest.Seq, err)
	}
}

func TestPublicDatasets(t *testing.T) {
	db := forkbase.MustOpen()
	defer db.Close()
	csv := "id,city\nu1,Oslo\nu2,Rio\n"
	ds, err := db.LoadCSVDataset("users", "", "id", strings.NewReader(csv), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Rows() != 2 {
		t.Fatalf("rows = %d", ds.Rows())
	}
	ds2, err := db.OpenDataset("users", "")
	if err != nil || ds2.Rows() != 2 {
		t.Fatalf("reopen: %v", err)
	}
	var buf bytes.Buffer
	if err := ds2.ExportCSV(&buf); err != nil || buf.String() != csv {
		t.Fatalf("export: %q %v", buf.String(), err)
	}
}

func TestPublicFileBacked(t *testing.T) {
	dir := t.TempDir()
	db, err := forkbase.Open(forkbase.FileBacked(dir))
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.PutString("persist", "", "disk", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := forkbase.Open(forkbase.FileBacked(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got, err := db2.Get("persist", "")
	if err != nil || got.UID != want.UID {
		t.Fatalf("reopen: %v", err)
	}
}

func TestPublicSessionACL(t *testing.T) {
	db := forkbase.MustOpen()
	defer db.Close()
	db.ACL().Grant("writer", "doc", access.Wildcard, access.Write)
	w := db.SessionFor("writer")
	r := db.SessionFor("reader")

	if _, err := w.Put("doc", "", forkbase.NewString("x"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("doc", ""); !errors.Is(err, forkbase.ErrDenied) {
		t.Fatalf("reader get: %v", err)
	}
	db.ACL().Grant("reader", "doc", "master", access.Read)
	if _, err := r.Get("doc", ""); err != nil {
		t.Fatalf("granted reader get: %v", err)
	}
	if _, err := r.Put("doc", "", forkbase.NewString("y"), nil); !errors.Is(err, forkbase.ErrDenied) {
		t.Fatalf("reader put: %v", err)
	}
	if err := r.DeleteBranch("doc", "master"); !errors.Is(err, forkbase.ErrDenied) {
		t.Fatalf("reader delete-branch: %v", err)
	}
}

func TestPublicVerify(t *testing.T) {
	db := forkbase.MustOpen()
	defer db.Close()
	v, err := db.PutString("k", "", "content", nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := db.Verify("k", v.UID, true)
	if err != nil || !rep.OK {
		t.Fatalf("verify: %+v %v", rep, err)
	}
}

func TestParseHash(t *testing.T) {
	db := forkbase.MustOpen()
	defer db.Close()
	v, _ := db.PutString("k", "", "x", nil)
	parsed, err := forkbase.ParseHash(v.UID.String())
	if err != nil || parsed != v.UID {
		t.Fatalf("parse: %v", err)
	}
	if _, err := forkbase.ParseHash("nope"); err == nil {
		t.Fatal("parsed garbage")
	}
}

func TestPublicNodeCache(t *testing.T) {
	db := forkbase.MustOpen(forkbase.InMemory(), forkbase.WithNodeCache(16<<20))
	defer db.Close()

	entries := make([]forkbase.Entry, 5000)
	for i := range entries {
		entries[i] = forkbase.Entry{Key: []byte(fmt.Sprintf("k%06d", i)), Val: []byte(fmt.Sprintf("v%d", i))}
	}
	if _, err := db.PutMap("m", "", entries, nil); err != nil {
		t.Fatal(err)
	}
	ver, err := db.Get("m", "")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := db.MapOf(ver)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 5000; i += 113 {
			v, err := tree.Get([]byte(fmt.Sprintf("k%06d", i)))
			if err != nil {
				t.Fatal(err)
			}
			if want := fmt.Sprintf("v%d", i); string(v) != want {
				t.Fatalf("got %q want %q", v, want)
			}
		}
	}
	st := db.CacheStats()
	if st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("cache unused through public API: %+v", st)
	}

	// Without WithNodeCache the stats stay zero.
	plain := forkbase.MustOpen()
	defer plain.Close()
	if st := plain.CacheStats(); st != (forkbase.NodeCacheStats{}) {
		t.Fatalf("cache stats on uncached DB: %+v", st)
	}
}

func TestWriteBatchPublicAPI(t *testing.T) {
	db := forkbase.MustOpen(forkbase.InMemory())
	defer db.Close()
	vers, err := db.WriteBatch([]forkbase.WriteOp{
		{Key: "a", Value: forkbase.NewString("1")},
		{Key: "b", Value: forkbase.NewInt(2)},
		{Key: "a", Value: forkbase.NewString("3")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(vers) != 3 || vers[2].Seq != 2 {
		t.Fatalf("versions = %+v", vers)
	}
	got, err := db.Get("a", "")
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := got.Value.AsString(); s != "3" {
		t.Fatalf("a = %q", s)
	}
	// Batched versions are tamper-verifiable like any others.
	rep, err := db.Verify("a", got.UID, true)
	if err != nil || !rep.OK {
		t.Fatalf("verify: %+v %v", rep, err)
	}
}

func TestWriteBatchFileBacked(t *testing.T) {
	dir := t.TempDir()
	db, err := forkbase.Open(forkbase.FileBacked(dir))
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]forkbase.WriteOp, 0, 50)
	for i := 0; i < 50; i++ {
		ops = append(ops, forkbase.WriteOp{
			Key:   fmt.Sprintf("key-%02d", i),
			Value: forkbase.NewString(fmt.Sprintf("val-%d", i)),
		})
	}
	if _, err := db.WriteBatch(ops); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Group-committed batch survives reopen.
	db2, err := forkbase.Open(forkbase.FileBacked(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 50; i++ {
		v, err := db2.Get(fmt.Sprintf("key-%02d", i), "")
		if err != nil {
			t.Fatalf("key-%02d lost: %v", i, err)
		}
		if s, _ := v.Value.AsString(); s != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key-%02d = %q", i, s)
		}
	}
}

func TestPublicOpenRejectsBadChunking(t *testing.T) {
	// Inverted min/max must fail at Open, not deep inside the first build.
	if _, err := forkbase.Open(forkbase.WithChunking(12, 1<<16, 1<<9)); err == nil {
		t.Fatal("Open accepted MinSize > MaxSize")
	}
	// Absurd Q likewise.
	if _, err := forkbase.Open(forkbase.WithChunking(99, 1<<9, 1<<16)); err == nil {
		t.Fatal("Open accepted Q=99")
	}
	// A valid explicit config still opens.
	db, err := forkbase.Open(forkbase.WithChunking(10, 1<<7, 1<<14))
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	db.Close()
}

func TestPublicWithIndexMPT(t *testing.T) {
	db := forkbase.MustOpen(forkbase.WithIndex(forkbase.IndexMPT))
	defer db.Close()
	if db.IndexKind() != forkbase.IndexMPT {
		t.Fatalf("IndexKind = %s", db.IndexKind())
	}
	entries := make([]forkbase.Entry, 500)
	for i := range entries {
		entries[i] = forkbase.Entry{
			Key: []byte(fmt.Sprintf("k%04d", i)),
			Val: []byte(fmt.Sprintf("v%d", i)),
		}
	}
	ver, err := db.PutMap("m", "", entries, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ver.Index != forkbase.IndexMPT {
		t.Fatalf("version index = %s", ver.Index)
	}
	// Structure-agnostic access works; the POS-typed accessor refuses.
	ix, err := db.IndexOf(ver)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Kind() != forkbase.IndexMPT || ix.Len() != 500 {
		t.Fatalf("IndexOf: %s/%d", ix.Kind(), ix.Len())
	}
	if got, err := ix.Get([]byte("k0042")); err != nil || string(got) != "v42" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := db.MapOf(ver); err == nil {
		t.Fatal("MapOf decoded an MPT root as a POS-Tree")
	}
	// Branch, edit, diff, merge all flow through the engine generically.
	if err := db.Branch("m", "fork", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := db.EditMap("m", "fork", []forkbase.Entry{{Key: []byte("k0042"), Val: []byte("forked")}}, nil, nil); err != nil {
		t.Fatal(err)
	}
	deltas, _, err := db.DiffBranches("m", "", "fork")
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 {
		t.Fatalf("deltas = %+v", deltas)
	}
	res, err := db.Merge("m", "", "fork", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err = db.IndexOf(res.Version)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := ix.Get([]byte("k0042")); string(got) != "forked" {
		t.Fatalf("merged value = %q", got)
	}
	// GC and verify on the MPT-backed public handle.
	if _, err := db.GC(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Verify("m", res.Version.UID, true); err != nil {
		t.Fatalf("verify: %v", err)
	}
}
