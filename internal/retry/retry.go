// Package retry is ForkBase's one retry policy: exponential backoff with
// jitter, a per-attempt timeout, an overall wall-clock budget, and explicit
// retryable-vs-permanent error classification.
//
// Every network path in the system (server.Client round trips, cluster
// scatter/gather, the replication follower) retries through this package, so
// "how long can this call block?" has a single answer per call site:
//
//	budget >= attempts x (per-attempt timeout) + backoff sleeps
//
// Classification is two-layered.  A *permanent* error (wrapped with
// Permanent, or matching a caller-supplied classifier) is returned
// immediately: the remote executed the request and said no — stale CAS,
// not-found, read-only replica.  Everything else (dial failures, deadline
// timeouts, resets, torn frames) is presumed transient and retried while
// attempts and budget last.
//
// Idempotency is the caller's half of the contract: a transport error after
// a request may have reached the wire leaves the remote's state unknown, so
// non-idempotent operations (CAS, batched puts of fresh data) must only be
// resent when the failed attempt provably never wrote a byte.  Policy.Do
// exposes that decision via the Attempt's Sent flag; see server.Client for
// the canonical use.
package retry

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"forkbase/internal/obs"
)

// Process-wide retry accounting, registered on the default registry:
// every Do loop in the system (client round trips, cluster scatter/gather,
// the replication follower) reports here, so "is anything retrying?" is
// one scrape.
var (
	attemptsTotal = obs.Default().Counter("forkbase_retry_attempts_total",
		"Operation attempts made through retry.Do (first tries included).")
	retriesTotal = obs.Default().Counter("forkbase_retry_retries_total",
		"Re-attempts after a transient failure.")
	gaveupTotal = obs.Default().Counter("forkbase_retry_gaveup_total",
		"Do calls that exhausted their attempts or wall-clock budget.")
	permanentTotal = obs.Default().Counter("forkbase_retry_permanent_total",
		"Do calls stopped by a permanent (non-retryable) error.")
)

// Defaults used when a Policy field is zero.
const (
	DefaultAttempts = 4
	DefaultBase     = 50 * time.Millisecond
	DefaultMax      = 2 * time.Second
	DefaultJitter   = 0.5
)

// Policy describes how to retry an operation.  The zero value is usable and
// selects the defaults above with no overall budget.
type Policy struct {
	// Attempts is the maximum number of tries (0 = DefaultAttempts;
	// negative = exactly one attempt, i.e. no retry).
	Attempts int
	// Base is the backoff before the second attempt; each subsequent
	// backoff doubles, capped at Max (0 selects the defaults).
	Base, Max time.Duration
	// Jitter randomizes each backoff by ±Jitter fraction (0 = DefaultJitter;
	// negative = none).  Jitter decorrelates retry storms: a hundred clients
	// that failed together must not reconnect together.
	Jitter float64
	// Timeout bounds one attempt.  The policy does not enforce it — I/O
	// must be cancelled at the syscall layer — it is delivered to the
	// operation via Attempt.Timeout for use in SetDeadline.  0 means the
	// operation's own default.
	Timeout time.Duration
	// Budget bounds the whole Do call, sleeps included.  Once spent, the
	// last error is returned without further attempts (0 = no budget).
	Budget time.Duration
}

// Attempt carries per-try context into the operation.
type Attempt struct {
	// N is the attempt number, starting at 0.
	N int
	// Timeout is the per-attempt deadline budget (Policy.Timeout).
	Timeout time.Duration
}

// permanentError marks an error as not worth retrying.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Do returns it immediately instead of retrying.
// A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// BudgetError reports that a Do call stopped retrying — attempts or budget
// exhausted — and carries the last attempt's error.
type BudgetError struct {
	Attempts int
	Elapsed  time.Duration
	Last     error
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("retry: gave up after %d attempts in %v: %v", e.Attempts, e.Elapsed.Round(time.Millisecond), e.Last)
}

func (e *BudgetError) Unwrap() error { return e.Last }

func (p Policy) attempts() int {
	switch {
	case p.Attempts == 0:
		return DefaultAttempts
	case p.Attempts < 0:
		return 1
	}
	return p.Attempts
}

func (p Policy) base() time.Duration {
	if p.Base <= 0 {
		return DefaultBase
	}
	return p.Base
}

func (p Policy) max() time.Duration {
	if p.Max <= 0 {
		return DefaultMax
	}
	return p.Max
}

func (p Policy) jitter() float64 {
	switch {
	case p.Jitter == 0:
		return DefaultJitter
	case p.Jitter < 0:
		return 0
	}
	return p.Jitter
}

// Backoff returns the sleep before attempt n+1 (i.e. after attempt n
// failed), jittered.  Exposed so loops that cannot use Do (the follower's
// outer state machine) still share one backoff shape.
func (p Policy) Backoff(n int) time.Duration {
	d := p.base() << uint(n)
	if m := p.max(); d > m || d <= 0 { // <=0 guards shift overflow
		d = m
	}
	if j := p.jitter(); j > 0 {
		// d * (1 ± j): rand is global — jitter needs no reproducibility,
		// only decorrelation.
		f := 1 + j*(2*rand.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// MaxElapsed is the worst-case wall clock of a full Do call: every attempt
// spending its full timeout plus every backoff at its un-jittered maximum.
// Callers use it to pin "no op blocks past its deadline budget".
func (p Policy) MaxElapsed() time.Duration {
	total := time.Duration(p.attempts()) * p.Timeout
	for n := 0; n < p.attempts()-1; n++ {
		d := p.base() << uint(n)
		if m := p.max(); d > m || d <= 0 {
			d = m
		}
		total += time.Duration(float64(d) * (1 + p.jitter()))
	}
	if p.Budget > 0 && total > p.Budget+p.Timeout {
		// A budget cuts the loop short; one attempt may already be in
		// flight when it expires.
		total = p.Budget + p.Timeout
	}
	return total
}

// Do runs op until it succeeds, returns a permanent error, or the policy is
// exhausted.  stop (optional) aborts between attempts — pass a Close
// channel so shutdown never waits out a backoff.
//
// op's error is classified by Permanent marking only; callers needing
// domain-specific classification wrap before returning.  When attempts or
// budget run out the last error is wrapped in *BudgetError (errors.Is /
// errors.As reach through it).
func (p Policy) Do(stop <-chan struct{}, op func(a Attempt) error) error {
	start := time.Now()
	var last error
	for n := 0; n < p.attempts(); n++ {
		if n > 0 {
			d := p.Backoff(n - 1)
			if p.Budget > 0 {
				left := p.Budget - time.Since(start)
				if left <= 0 {
					gaveupTotal.Inc()
					return &BudgetError{Attempts: n, Elapsed: time.Since(start), Last: last}
				}
				if d > left {
					d = left
				}
			}
			select {
			case <-stop:
				return &BudgetError{Attempts: n, Elapsed: time.Since(start), Last: errors.Join(errStopped, last)}
			case <-time.After(d):
			}
			retriesTotal.Inc()
		}
		attemptsTotal.Inc()
		err := op(Attempt{N: n, Timeout: p.Timeout})
		if err == nil {
			return nil
		}
		if IsPermanent(err) {
			permanentTotal.Inc()
			return err
		}
		last = err
		if p.Budget > 0 && time.Since(start) >= p.Budget {
			gaveupTotal.Inc()
			return &BudgetError{Attempts: n + 1, Elapsed: time.Since(start), Last: last}
		}
	}
	gaveupTotal.Inc()
	return &BudgetError{Attempts: p.attempts(), Elapsed: time.Since(start), Last: last}
}

var errStopped = errors.New("retry: stopped")
