package retry

import (
	"errors"
	"testing"
	"time"
)

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	p := Policy{Attempts: 5, Base: time.Millisecond, Max: 2 * time.Millisecond}
	calls := 0
	err := p.Do(nil, func(a Attempt) error {
		if a.N != calls {
			t.Fatalf("attempt %d reported as %d", calls, a.N)
		}
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	p := Policy{Attempts: 5, Base: time.Millisecond}
	sentinel := errors.New("stale head")
	calls := 0
	err := p.Do(nil, func(Attempt) error {
		calls++
		return Permanent(sentinel)
	})
	if calls != 1 {
		t.Fatalf("permanent error retried: %d calls", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("lost the wrapped error: %v", err)
	}
	if !IsPermanent(err) {
		t.Fatalf("permanence not preserved: %v", err)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p := Policy{Attempts: 3, Base: time.Millisecond, Max: time.Millisecond}
	sentinel := errors.New("down")
	calls := 0
	err := p.Do(nil, func(Attempt) error { calls++; return sentinel })
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Attempts != 3 {
		t.Fatalf("want BudgetError with 3 attempts, got %v", err)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("BudgetError must wrap the last error: %v", err)
	}
}

func TestDoRespectsBudget(t *testing.T) {
	p := Policy{Attempts: 100, Base: 5 * time.Millisecond, Max: 5 * time.Millisecond, Budget: 20 * time.Millisecond}
	start := time.Now()
	err := p.Do(nil, func(Attempt) error { return errors.New("down") })
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("want error")
	}
	// Generous bound: the budget plus one backoff of slack, never the 100
	// attempts the policy would otherwise allow.
	if elapsed > 250*time.Millisecond {
		t.Fatalf("budget ignored: ran %v", elapsed)
	}
}

func TestDoStopChannelAborts(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	p := Policy{Attempts: 10, Base: time.Hour} // a real backoff would hang the test
	calls := 0
	err := p.Do(stop, func(Attempt) error { calls++; return errors.New("down") })
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (stop aborts before the second attempt)", calls)
	}
	if err == nil {
		t.Fatal("want error after stop")
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: -1}
	var prev time.Duration
	for n := 0; n < 10; n++ {
		d := p.Backoff(n)
		if d < prev && prev != p.Max {
			t.Fatalf("backoff shrank before the cap: n=%d %v -> %v", n, prev, d)
		}
		if d > p.Max {
			t.Fatalf("backoff %v exceeds cap %v", d, p.Max)
		}
		prev = d
	}
	if prev != 80*time.Millisecond {
		t.Fatalf("backoff never reached the cap: %v", prev)
	}
}

func TestBackoffJitterStaysInBand(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Second, Jitter: 0.5}
	for i := 0; i < 100; i++ {
		d := p.Backoff(0)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered backoff %v outside ±50%% of 100ms", d)
		}
	}
}

func TestMaxElapsedBoundsDo(t *testing.T) {
	p := Policy{Attempts: 3, Base: 2 * time.Millisecond, Max: 4 * time.Millisecond, Timeout: time.Millisecond}
	bound := p.MaxElapsed()
	start := time.Now()
	_ = p.Do(nil, func(a Attempt) error {
		time.Sleep(a.Timeout) // an op that spends its whole per-attempt budget
		return errors.New("down")
	})
	if elapsed := time.Since(start); elapsed > bound+50*time.Millisecond {
		t.Fatalf("Do ran %v, MaxElapsed promised %v", elapsed, bound)
	}
}

func TestPermanentNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must stay nil")
	}
	if IsPermanent(errors.New("plain")) {
		t.Fatal("plain error misclassified as permanent")
	}
}
