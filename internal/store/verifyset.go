package store

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"forkbase/internal/hash"
)

// VerifiedSet remembers which chunk ids this store instance has already
// rehashed, so repeat reads of the same chunk skip the SHA-256 that makes
// the verifying layer the read path's choke point (ROADMAP item 2).
//
// The set never serves data — it only witnesses that "the inner store's
// bytes for this id hashed to this id, at this placement epoch".  That makes
// its correctness contract narrow: an entry may skip a rehash only while the
// inner store can still be serving the same bytes.  Three mechanisms keep
// that true:
//
//   - entries are stamped with the store's placement epoch, which FileStore
//     bumps whenever segment compaction or quarantine can remap ids to new
//     locations — a stale-epoch entry invalidates itself on lookup;
//   - GC, scrub, quarantine, repair and heal explicitly invalidate the ids
//     they touch (see the hooks in internal/core);
//   - scrub never consults the set at all (it reads segment files directly),
//     so disk rot behind a cached verification is still detected.
//
// Layout, tuned for the probe sitting on every warm point get:
//
//   - 16 shards keyed by the id's first byte keep concurrent writers off
//     each other, and each shard holds two generations (hot/cold) of
//     sync.Map — reads are lock-free (one atomic pointer load plus a
//     read-only map lookup), writes and the rare cold-hit promotion take
//     the shard's add lock.
//   - When hot fills to the per-generation budget, cold is discarded and
//     hot becomes cold: an O(1) wholesale eviction that bounds memory at
//     the byte budget without per-entry LRU bookkeeping, while cold hits
//     re-promote so the working set survives rotation.
//   - Maps are keyed by a uint64 slice of the id (cheap to hash) with the
//     full 32-byte id confirmed against the entry — a key collision between
//     distinct ids can evict or shadow an entry (harmless: the loser just
//     rehashes) but can never produce a false "verified".
type VerifiedSet struct {
	shards [verifySetShards]verifiedShard

	// capPerGen bounds each shard generation's entry count, derived from the
	// byte budget in NewVerifiedSet.
	capPerGen int
	budget    int64

	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
}

const verifySetShards = 16

// verifiedEntryBytes is the accounting estimate for one entry: an 8-byte
// key, a 32-byte id, an 8-byte epoch, plus map bucket overhead.
const verifiedEntryBytes = 64

// verifiedEntry confirms the full id behind a uint64 map key.  Entries are
// immutable once published, so lock-free readers can safely dereference.
type verifiedEntry struct {
	id    hash.Hash
	epoch uint64 // placement epoch at verification time
}

type verifiedShard struct {
	// addMu serializes writers (Add, promotion, rotation, invalidation);
	// readers never take it.
	addMu     sync.Mutex
	capPerGen int
	hotCount  int // entries added to hot since last rotation
	hot       atomic.Pointer[sync.Map]
	cold      atomic.Pointer[sync.Map]
}

// NewVerifiedSet builds a set bounded to roughly budgetBytes of entry
// accounting (minimum a few thousand entries so tiny budgets still amortize).
func NewVerifiedSet(budgetBytes int64) *VerifiedSet {
	perGen := int(budgetBytes / (verifiedEntryBytes * 2 * verifySetShards))
	if perGen < 64 {
		perGen = 64
	}
	s := &VerifiedSet{capPerGen: perGen, budget: budgetBytes}
	for i := range s.shards {
		s.shards[i].capPerGen = perGen
		s.shards[i].hot.Store(&sync.Map{})
	}
	return s
}

func (s *VerifiedSet) shard(id hash.Hash) *verifiedShard {
	return &s.shards[id[0]&(verifySetShards-1)]
}

// vkey derives the map key from bytes the shard selector does not use.  Ids
// are SHA-256 outputs, so any fixed slice is uniformly distributed.
func vkey(id hash.Hash) uint64 {
	return binary.LittleEndian.Uint64(id[8:16])
}

// Hit reports whether id was verified at the current placement epoch.  An
// entry from an older epoch is deleted (the bytes may have moved since it
// was verified) and counts as an invalidation, not a miss-with-prejudice:
// the caller rehashes and re-adds.  The fast path is lock-free.
func (s *VerifiedSet) Hit(id hash.Hash, epoch uint64) bool {
	sh := s.shard(id)
	k := vkey(id)
	if v, ok := sh.hot.Load().Load(k); ok {
		e := v.(*verifiedEntry)
		if e.id == id {
			if e.epoch == epoch {
				s.hits.Add(1)
				return true
			}
			// Present in hot but at a stale epoch: drop it.
			sh.hot.Load().CompareAndDelete(k, v)
			s.invalidations.Add(1)
			return false
		}
		// Key collision with a different id: treat as a miss.
	}
	// Slow path: cold generation, promoting on hit.
	if cold := sh.cold.Load(); cold != nil {
		if v, ok := cold.Load(k); ok {
			e := v.(*verifiedEntry)
			if e.id == id && e.epoch == epoch {
				cold.Delete(k)
				s.addEntry(sh, k, e)
				s.hits.Add(1)
				return true
			}
			if e.id == id { // stale epoch in cold
				cold.Delete(k)
				s.invalidations.Add(1)
				return false
			}
		}
	}
	s.misses.Add(1)
	return false
}

// Add records that id's inner-store bytes were verified at epoch.
func (s *VerifiedSet) Add(id hash.Hash, epoch uint64) {
	sh := s.shard(id)
	s.addEntry(sh, vkey(id), &verifiedEntry{id: id, epoch: epoch})
}

// addEntry inserts into hot, rotating generations when hot is full.
func (s *VerifiedSet) addEntry(sh *verifiedShard, k uint64, e *verifiedEntry) {
	sh.addMu.Lock()
	hot := sh.hot.Load()
	if _, present := hot.Load(k); !present {
		if sh.hotCount >= sh.capPerGen {
			sh.cold.Store(hot)
			hot = &sync.Map{}
			sh.hot.Store(hot)
			sh.hotCount = 0
		}
		sh.hotCount++
	}
	hot.Store(k, e)
	if cold := sh.cold.Load(); cold != nil {
		cold.Delete(k)
	}
	sh.addMu.Unlock()
}

// Invalidate removes id from the set (no-op if absent).  Called when scrub,
// quarantine, repair, heal or GC learns the inner store's bytes for id are
// gone, moved, or untrustworthy.
func (s *VerifiedSet) Invalidate(id hash.Hash) {
	sh := s.shard(id)
	k := vkey(id)
	sh.addMu.Lock()
	dropped := false
	if v, ok := sh.hot.Load().Load(k); ok && v.(*verifiedEntry).id == id {
		sh.hot.Load().Delete(k)
		dropped = true
	}
	if cold := sh.cold.Load(); cold != nil {
		if v, ok := cold.Load(k); ok && v.(*verifiedEntry).id == id {
			cold.Delete(k)
			dropped = true
		}
	}
	sh.addMu.Unlock()
	if dropped {
		s.invalidations.Add(1)
	}
}

// InvalidateAll empties the set (quarantine can remap arbitrary ids).
func (s *VerifiedSet) InvalidateAll() {
	var n int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.addMu.Lock()
		n += int64(mapLen(sh.hot.Load()) + mapLen(sh.cold.Load()))
		sh.hot.Store(&sync.Map{})
		sh.cold.Store(nil)
		sh.hotCount = 0
		sh.addMu.Unlock()
	}
	s.invalidations.Add(n)
}

// Len returns the current entry count (hot + cold across shards).
func (s *VerifiedSet) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		n += mapLen(sh.hot.Load()) + mapLen(sh.cold.Load())
	}
	return n
}

func mapLen(m *sync.Map) int {
	if m == nil {
		return 0
	}
	n := 0
	m.Range(func(any, any) bool { n++; return true })
	return n
}
