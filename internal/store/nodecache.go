package store

import (
	"forkbase/internal/chunk"
	"forkbase/internal/hash"
	"forkbase/internal/nodecache"
)

// NodeCacheProvider is the optional capability by which a store advertises a
// decoded-node cache to higher layers (package pos).  The cache is keyed by
// chunk id, and because chunks are immutable and content-addressed the cache
// never needs invalidation — only GC deletion needs to call Remove.
//
// Attaching the cache to the store handle (rather than threading it through
// every tree constructor) means every POS-Tree, sequence and blob opened
// over the same store shares one cache, which is exactly the sharing the
// paper's structural invariance promises: hot nodes common to many versions
// and branches are decoded once.
type NodeCacheProvider interface {
	NodeCache() *nodecache.Cache
}

// nodeCachedStore attaches a decoded-node cache to an inner store.  All
// Store methods delegate; only the NodeCacheProvider capability is added.
type nodeCachedStore struct {
	Store
	cache *nodecache.Cache
}

// WithNodeCache returns a store that carries cache for the read path to
// discover.  A nil cache returns inner unchanged.
func WithNodeCache(inner Store, cache *nodecache.Cache) Store {
	if cache == nil {
		return inner
	}
	return &nodeCachedStore{Store: inner, cache: cache}
}

// NodeCache implements NodeCacheProvider.
func (s *nodeCachedStore) NodeCache() *nodecache.Cache { return s.cache }

// PutBatch forwards the batch capability through the cache wrapper (the
// embedded Store interface would otherwise hide the inner store's native
// batch path from the BatchStore type assertion).
func (s *nodeCachedStore) PutBatch(cs []*chunk.Chunk) ([]bool, error) { return PutBatch(s.Store, cs) }

// GetBatch forwards the batch-read capability through the cache wrapper.
func (s *nodeCachedStore) GetBatch(ids []hash.Hash) ([]*chunk.Chunk, error) {
	return GetBatch(s.Store, ids)
}

// HasBatch forwards the batch-read capability through the cache wrapper.
func (s *nodeCachedStore) HasBatch(ids []hash.Hash) ([]bool, error) { return HasBatch(s.Store, ids) }

// Unwrap exposes the inner store (GC capability discovery).
func (s *nodeCachedStore) Unwrap() Store { return s.Store }

// NodeCacheOf returns the decoded-node cache attached to st, or nil.
func NodeCacheOf(st Store) *nodecache.Cache {
	if p, ok := st.(NodeCacheProvider); ok {
		return p.NodeCache()
	}
	return nil
}

// NodeCache forwards the capability through the verifying wrapper, so a
// cache attached below verification is still discoverable.  Note the
// converse layering — WithNodeCache(NewVerifyingStore(raw), c) — is the one
// core.Open uses: nodes enter the cache only after passing verification.
func (v *VerifyingStore) NodeCache() *nodecache.Cache { return NodeCacheOf(v.Inner) }

// NodeCache forwards the capability through the counting wrapper.
func (c *CountingStore) NodeCache() *nodecache.Cache { return NodeCacheOf(c.Inner) }

var (
	_ NodeCacheProvider = (*nodeCachedStore)(nil)
	_ NodeCacheProvider = (*VerifyingStore)(nil)
	_ NodeCacheProvider = (*CountingStore)(nil)
	_ BatchStore        = (*nodeCachedStore)(nil)
	_ BatchStore        = (*VerifyingStore)(nil)
	_ BatchStore        = (*CountingStore)(nil)
	_ BatchStore        = (*MaliciousStore)(nil)
	_ BatchReadStore    = (*nodeCachedStore)(nil)
	_ BatchReadStore    = (*VerifyingStore)(nil)
	_ BatchReadStore    = (*CountingStore)(nil)
	_ BatchReadStore    = (*MaliciousStore)(nil)
)
