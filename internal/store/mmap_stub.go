//go:build !unix

package store

import (
	"errors"
	"os"
)

// mmapSupported reports whether this platform can memory-map sealed segments.
// Without mmap the FileStore falls back to positioned reads through
// persistent handles for every segment, sealed or active.
const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.New("filestore: mmap unsupported on this platform")
}

func munmapFile(b []byte) error { return nil }
