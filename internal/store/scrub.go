package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"forkbase/internal/chunk"
	"forkbase/internal/hash"
)

// This file is the disk-fault half of the store's failure model: a scrubber
// that audits every segment byte-for-byte against the content addresses in
// the index, and the quarantine/repair primitives built on top of it.
//
// Detection: content addressing makes rot self-evident — rehash the record,
// compare against the 32-byte id in its header.  Classification mirrors
// recovery's: ok (rehash matches), corrupt (mismatch), torn (the sequential
// scan cannot parse further), unreadable (the bytes cannot be fetched).
//
// Quarantine: a segment holding any bad record is *renamed* to
// seg-NNNNNN.quarantine — never unlinked, so a forensic copy (and any data a
// smarter tool could still extract) survives.  Before the rename, every
// record the index places in the segment is re-verified individually and the
// intact ones are rewritten into the active tail (the index has exact
// offsets, so records beyond a tear are still reachable); records with no
// intact copy are dropped from the index and remembered as lost.
//
// Repair: lost or corrupt chunks come back through Repair (store.Repairer) —
// typically driven by core.DB.Heal refetching from a replica.  Health turns
// nil again once every lost id is re-indexed.

var _ Scrubber = (*FileStore)(nil)
var _ Repairer = (*FileStore)(nil)

func (f *FileStore) quarantinePath(n int) string {
	return filepath.Join(f.dir, fmt.Sprintf("seg-%06d.quarantine", n))
}

// Scrub audits every segment (sealed and active tail alike), quarantines the
// damaged ones, and records the pass in the store's health state.  It is a
// maintenance operation: writers and compaction are excluded for the
// duration (readers of sealed segments proceed, and zero-copy slices already
// handed out of a quarantined segment stay valid — its mapping is parked,
// exactly as compaction parks victims).
func (f *FileStore) Scrub() (ScrubStats, error) {
	start := time.Now()
	var st ScrubStats
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return st, fmt.Errorf("filestore: closed")
	}
	// The scan reads segment files directly; flush so every acknowledged
	// append is visible to it.
	if err := f.actBuf.Flush(); err != nil {
		return st, fmt.Errorf("filestore: %w", err)
	}
	f.actFlushed = f.actSize
	segs, err := f.listSegments()
	if err != nil {
		return st, err
	}
	for _, seg := range segs {
		if f.scrubSegment(seg, &st) {
			if err := f.quarantine(seg, &st); err != nil {
				return st, err
			}
		}
	}
	st.ElapsedNs = time.Since(start).Nanoseconds()
	f.noteScrub(st)
	return st, nil
}

// segmentData returns a segment's bytes plus a release func: the sealed
// mapping when one exists (refcounted, so quarantine's rename cannot fault an
// in-flight copy), otherwise a private read of the file (active tail,
// no-mmap mode).  Callers hold f.mu.
func (f *FileStore) segmentData(seg int) ([]byte, func(), error) {
	if !f.noMmap {
		f.segMu.RLock()
		m := f.sealed[seg]
		f.segMu.RUnlock()
		if m != nil && m.acquire() {
			return m.data, m.release, nil
		}
	}
	b, err := os.ReadFile(f.segmentPath(seg))
	if err != nil {
		return nil, nil, err
	}
	return b, func() {}, nil
}

// scrubSegment classifies every record of one segment into st and reports
// whether the segment needs quarantine.  Callers hold f.mu.
func (f *FileStore) scrubSegment(seg int, st *ScrubStats) bool {
	st.Segments++
	data, release, err := f.segmentData(seg)
	if err != nil {
		st.Unreadable++
		return true
	}
	defer release()
	st.ScannedBytes += int64(len(data))
	bad := false
	for off := int64(0); off < int64(len(data)); {
		if off+recordHeader > int64(len(data)) {
			st.Torn++
			return true
		}
		var id hash.Hash
		copy(id[:], data[off:off+hash.Size])
		plen := int64(int32(binary.LittleEndian.Uint32(data[off+hash.Size : off+hash.Size+4])))
		typ := chunk.Type(data[off+hash.Size+4])
		rec := int64(recordHeader) + plen
		if plen < 0 || !typ.Valid() || off+rec > int64(len(data)) {
			st.Torn++
			return true
		}
		if chunk.New(typ, data[off+recordHeader:off+rec]).ID() != id {
			st.Corrupt++
			bad = true
		} else {
			st.Ok++
		}
		off += rec
	}
	return bad
}

// quarantine rescues what it can out of a damaged segment, then renames the
// file aside.  Callers hold f.mu.
func (f *FileStore) quarantine(seg int, st *ScrubStats) error {
	// The segment's records are about to be rescued elsewhere or dropped;
	// stale verified-id entries must not outlive the move.
	f.placeEpoch.Add(1)
	// A damaged active tail must rotate out of the way first, both so the
	// rescue below has somewhere sound to append and so the quarantine
	// machinery only ever handles sealed segments.
	if int64(seg) == f.actSeg.Load() {
		if err := f.rotate(); err != nil {
			return err
		}
	}
	data, release, err := f.segmentData(seg)
	if err != nil {
		data, release = nil, func() {} // unreadable: nothing to rescue
	}

	// Index-driven rescue: re-verify every record the index places in this
	// segment at its exact offset — parsing damage elsewhere in the segment
	// cannot hide an intact record — and rewrite the good ones into the tail.
	type entry struct {
		id  hash.Hash
		loc recordLoc
	}
	var entries []entry
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.RLock()
		for id, loc := range sh.m {
			if loc.segment == seg {
				entries = append(entries, entry{id, loc})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].loc.offset < entries[j].loc.offset })
	for _, e := range entries {
		end := e.loc.offset + e.loc.diskBytes()
		good := data != nil && end <= int64(len(data))
		if good {
			payload := data[e.loc.offset+recordHeader : end]
			good = chunk.New(e.loc.typ, payload).ID() == e.id
		}
		sh := f.shard(e.id)
		if !good {
			sh.mu.Lock()
			delete(sh.m, e.id)
			sh.mu.Unlock()
			f.stats.UniqueChunks--
			f.stats.PhysicalBytes -= int64(1 + e.loc.length)
			st.Lost = append(st.Lost, e.id)
			continue
		}
		if f.actSize >= f.maxSegment {
			if err := f.rotate(); err != nil {
				release()
				return err
			}
		}
		if _, err := f.actBuf.Write(data[e.loc.offset:end]); err != nil {
			release()
			return fmt.Errorf("filestore: %w", err)
		}
		dst := int(f.actSeg.Load())
		newLoc := recordLoc{segment: dst, offset: f.actSize, length: e.loc.length, typ: e.loc.typ}
		sh.mu.Lock()
		sh.m[e.id] = newLoc
		sh.mu.Unlock()
		f.actSize += newLoc.diskBytes()
		f.useOf(dst).total = f.actSize
		st.Rescued++
	}
	release()

	// Durability barrier: every rescued record is on disk before the only
	// other copy is set aside.
	if err := f.actBuf.Flush(); err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	f.actFlushed = f.actSize
	if err := f.active.Sync(); err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	if err := os.Rename(f.segmentPath(seg), f.quarantinePath(seg)); err != nil {
		return fmt.Errorf("filestore: quarantining seg %d: %w", seg, err)
	}
	f.syncDir()
	f.dropReader(seg)
	f.segMu.Lock()
	if m := f.sealed[seg]; m != nil {
		delete(f.sealed, seg)
		// Park the mapping so zero-copy slices handed out earlier stay valid
		// (the rename does not invalidate an established mapping).
		f.retired = append(f.retired, m)
	}
	f.segMu.Unlock()
	delete(f.segUse, seg)
	st.QuarantinedSegments++
	return nil
}

// noteScrub folds one pass into the health state.  Callers may hold f.mu
// (lock order: f.mu → scrubMu → shard locks).
func (f *FileStore) noteScrub(st ScrubStats) {
	f.scrubMu.Lock()
	defer f.scrubMu.Unlock()
	cp := st
	cp.Lost = append([]hash.Hash(nil), st.Lost...)
	f.lastScrub = &cp
	f.lastScrubAt = time.Now()
	for _, id := range st.Lost {
		if f.lost == nil {
			f.lost = make(map[hash.Hash]struct{})
		}
		f.lost[id] = struct{}{}
	}
}

// Health implements Scrubber: nil while no scrub (or recovery) has found
// chunks lost to corruption, or once every lost chunk has been re-stored
// (Repair / Put re-indexes it, and this check notices).  Otherwise an error
// wrapping ErrCorrupt, which serving layers surface as not-ready.
func (f *FileStore) Health() error {
	f.scrubMu.Lock()
	defer f.scrubMu.Unlock()
	for id := range f.lost {
		if _, ok := f.lookup(id); ok {
			delete(f.lost, id) // repaired since it was reported lost
		}
	}
	if n := len(f.lost); n > 0 {
		return fmt.Errorf("filestore: %d chunk(s) lost to corruption await repair: %w", n, ErrCorrupt)
	}
	return nil
}

// LastScrub returns the most recent pass (scrub or open-time recovery
// classification) and when it ran; ok is false when none has.
func (f *FileStore) LastScrub() (ScrubStats, time.Time, bool) {
	f.scrubMu.Lock()
	defer f.scrubMu.Unlock()
	if f.lastScrub == nil {
		return ScrubStats{}, time.Time{}, false
	}
	return *f.lastScrub, f.lastScrubAt, true
}

// Repair implements Repairer: write a fresh verified copy of c and repoint
// the index at it, whether the previous copy is corrupt, quarantined away,
// or absent entirely.  The old record (if any) is accounted dead so a later
// compaction reclaims it.
func (f *FileStore) Repair(c *chunk.Chunk) error {
	if err := c.Recheck(); err != nil {
		return err
	}
	err := func() error {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.closed {
			return fmt.Errorf("filestore: closed")
		}
		id := c.ID()
		if loc, ok := f.lookup(id); ok {
			sh := f.shard(id)
			sh.mu.Lock()
			delete(sh.m, id)
			sh.mu.Unlock()
			f.stats.UniqueChunks--
			f.stats.PhysicalBytes -= int64(1 + loc.length)
			if u, ok := f.segUse[loc.segment]; ok {
				u.dead += loc.diskBytes()
			}
		}
		if _, err := f.appendLocked(c); err != nil {
			return err
		}
		// A repaired chunk must not be lost to a second fault before the
		// tail rotates; flush it through to the OS immediately.
		if err := f.actBuf.Flush(); err != nil {
			return fmt.Errorf("filestore: %w", err)
		}
		f.actFlushed = f.actSize
		return nil
	}()
	if err != nil {
		return err
	}
	return f.afterCommit()
}
