package store

import (
	"forkbase/internal/chunk"
	"forkbase/internal/hash"
	"forkbase/internal/nodecache"
)

// SinkTuner is the optional capability by which a store (or a wrapper in
// front of it) advertises a preferred ChunkSink hashing configuration.
// Builders open sinks deep inside the value and index layers, far from the
// code that knows the deployment's core budget; attaching the preference to
// the store handle lets forkbase.WithSinkHashers reach every sink opened
// over that handle without threading a knob through each constructor — the
// same discovery pattern as NodeCacheProvider.
type SinkTuner interface {
	// SinkHashers returns the preferred hashing worker count: n > 0 runs n
	// workers, n < 0 pins hashing to the producer goroutine (synchronous),
	// and 0 means "no preference" (the sink's own default applies).
	SinkHashers() int
}

// tunedStore attaches a sink-hashing preference to an inner store.  All
// Store methods delegate; batch and node-cache capabilities are forwarded so
// the wrapper is transparent to every other discovery path.
type tunedStore struct {
	Store
	hashers int
}

// WithSinkHashers returns a store over which every ChunkSink defaults to n
// hashing workers (n < 0 pins hashing synchronous to the producer).  n == 0
// means "no preference" and returns inner unchanged.  An explicit
// SinkOptions.Hashers set by the sink's opener still wins.
func WithSinkHashers(inner Store, n int) Store {
	if n == 0 {
		return inner
	}
	return &tunedStore{Store: inner, hashers: n}
}

// SinkHashers implements SinkTuner.
func (s *tunedStore) SinkHashers() int { return s.hashers }

// PutBatch forwards the batch capability through the tuning wrapper.
func (s *tunedStore) PutBatch(cs []*chunk.Chunk) ([]bool, error) { return PutBatch(s.Store, cs) }

// GetBatch forwards the batch-read capability through the tuning wrapper.
func (s *tunedStore) GetBatch(ids []hash.Hash) ([]*chunk.Chunk, error) {
	return GetBatch(s.Store, ids)
}

// HasBatch forwards the batch-read capability through the tuning wrapper.
func (s *tunedStore) HasBatch(ids []hash.Hash) ([]bool, error) { return HasBatch(s.Store, ids) }

// NodeCache forwards the node-cache capability through the tuning wrapper.
func (s *tunedStore) NodeCache() *nodecache.Cache { return NodeCacheOf(s.Store) }

// Unwrap exposes the inner store (GC capability discovery).
func (s *tunedStore) Unwrap() Store { return s.Store }

// SinkHashersOf returns the hashing preference attached to st, or 0 when no
// layer carries one.  Wrappers forward the capability (like NodeCache), and
// any Unwrap chain is walked, so the preference survives whatever layering
// core.Open assembles.
func SinkHashersOf(st Store) int {
	for st != nil {
		if t, ok := st.(SinkTuner); ok {
			if n := t.SinkHashers(); n != 0 {
				return n
			}
		}
		u, ok := st.(interface{ Unwrap() Store })
		if !ok {
			return 0
		}
		st = u.Unwrap()
	}
	return 0
}

// SinkHashers forwards the tuning capability through the verifying wrapper.
func (v *VerifyingStore) SinkHashers() int { return SinkHashersOf(v.Inner) }

// SinkHashers forwards the tuning capability through the counting wrapper.
func (c *CountingStore) SinkHashers() int { return SinkHashersOf(c.Inner) }

var (
	_ SinkTuner         = (*tunedStore)(nil)
	_ BatchStore        = (*tunedStore)(nil)
	_ BatchReadStore    = (*tunedStore)(nil)
	_ NodeCacheProvider = (*tunedStore)(nil)
)
