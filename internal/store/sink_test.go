package store

import (
	"errors"
	"fmt"
	"testing"

	"forkbase/internal/chunk"
	"forkbase/internal/hash"
)

// sinkEnc renders the [type][payload] encoding Emit expects.
func sinkEnc(t chunk.Type, payload []byte) []byte {
	enc := make([]byte, 0, 1+len(payload))
	enc = append(enc, byte(t))
	return append(enc, payload...)
}

func testSinkRoundTrip(t *testing.T, opt SinkOptions) {
	t.Helper()
	ms := NewMemStore()
	sink := NewChunkSink(ms, opt)
	defer sink.Close()

	var ids []*hash.Hash
	var want []hash.Hash
	for i := 0; i < 300; i++ {
		payload := []byte(fmt.Sprintf("payload-%d", i))
		want = append(want, chunk.New(chunk.TypeBlobLeaf, payload).ID())
		idp, err := sink.Emit(chunk.TypeBlobLeaf, sinkEnc(chunk.TypeBlobLeaf, payload))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, idp)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, idp := range ids {
		if *idp != want[i] {
			t.Fatalf("chunk %d: sink id %s, want %s", i, idp.Short(), want[i].Short())
		}
		c, err := ms.Get(*idp)
		if err != nil {
			t.Fatalf("chunk %d not landed: %v", i, err)
		}
		if err := c.Recheck(); err != nil {
			t.Fatal(err)
		}
	}
	if st := sink.Stats(); st.Emitted != 300 || st.Batches == 0 {
		t.Fatalf("sink stats = %+v", st)
	}
}

func TestChunkSinkSync(t *testing.T) {
	testSinkRoundTrip(t, SinkOptions{BatchSize: 7}.SyncHashers())
}

func TestChunkSinkAsync(t *testing.T) {
	testSinkRoundTrip(t, SinkOptions{BatchSize: 7, Hashers: 3})
}

// TestChunkSinkBorrowsScratch proves Emit copies what it keeps: the producer
// reuses (and clobbers) one buffer for every emission.
func TestChunkSinkBorrowsScratch(t *testing.T) {
	for _, hashers := range []int{0, 2} {
		t.Run(fmt.Sprintf("hashers=%d", hashers), func(t *testing.T) {
			ms := NewMemStore()
			opt := SinkOptions{BatchSize: 4, Hashers: hashers}
			if hashers == 0 {
				opt = opt.SyncHashers()
			}
			sink := NewChunkSink(ms, opt)
			defer sink.Close()
			scratch := make([]byte, 0, 64)
			var ids []*hash.Hash
			var want []hash.Hash
			for i := 0; i < 50; i++ {
				scratch = scratch[:0]
				scratch = append(scratch, byte(chunk.TypeBlobLeaf))
				scratch = append(scratch, []byte(fmt.Sprintf("scratch-%d", i))...)
				want = append(want, hash.Of(scratch))
				idp, err := sink.Emit(chunk.TypeBlobLeaf, scratch)
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, idp)
			}
			if err := sink.Flush(); err != nil {
				t.Fatal(err)
			}
			for i := range ids {
				if *ids[i] != want[i] {
					t.Fatalf("emission %d hashed clobbered bytes", i)
				}
				if _, err := ms.Get(want[i]); err != nil {
					t.Fatalf("emission %d lost: %v", i, err)
				}
			}
		})
	}
}

// TestChunkSinkDedup checks the Has pre-check short-circuits chunks that are
// already present — they never reach the store as writes.
func TestChunkSinkDedup(t *testing.T) {
	ms := NewMemStore()
	pre := chunk.New(chunk.TypeBlobLeaf, []byte("already here"))
	ms.Put(pre)
	logicalBefore := ms.Stats().LogicalBytes

	sink := NewChunkSink(ms, SinkOptions{Dedup: true}.SyncHashers())
	defer sink.Close()
	idp, err := sink.Emit(chunk.TypeBlobLeaf, sinkEnc(chunk.TypeBlobLeaf, []byte("already here")))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := sink.Emit(chunk.TypeBlobLeaf, sinkEnc(chunk.TypeBlobLeaf, []byte("brand new")))
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if *idp != pre.ID() {
		t.Fatalf("dedup id mismatch: %s vs %s", idp.Short(), pre.ID().Short())
	}
	st := sink.Stats()
	if st.Deduped != 1 {
		t.Fatalf("deduped = %d, want 1", st.Deduped)
	}
	// The deduped chunk was dropped before the store: LogicalBytes unchanged
	// by it, only the fresh chunk accounted.
	if got := ms.Stats().LogicalBytes - logicalBefore; got != int64(1+len("brand new")) {
		t.Fatalf("logical delta = %d", got)
	}
	if _, err := ms.Get(*fresh); err != nil {
		t.Fatalf("fresh chunk missing: %v", err)
	}
}

// failingStore errors on the nth put.
type failingStore struct {
	*MemStore
	failAfter int
	puts      int
}

func (f *failingStore) Put(c *chunk.Chunk) (bool, error) {
	f.puts++
	if f.puts > f.failAfter {
		return false, errors.New("boom")
	}
	return f.MemStore.Put(c)
}

// PutBatch shadows the embedded MemStore batch path so the failure injection
// applies to batched writes too.
func (f *failingStore) PutBatch(cs []*chunk.Chunk) ([]bool, error) {
	fresh := make([]bool, len(cs))
	for i, c := range cs {
		fr, err := f.Put(c)
		if err != nil {
			return fresh, err
		}
		fresh[i] = fr
	}
	return fresh, nil
}

func TestChunkSinkStickyError(t *testing.T) {
	fs := &failingStore{MemStore: NewMemStore(), failAfter: 2}
	sink := NewChunkSink(fs, SinkOptions{BatchSize: 1}.SyncHashers())
	defer sink.Close()
	for i := 0; i < 5; i++ {
		sink.Emit(chunk.TypeBlobLeaf, sinkEnc(chunk.TypeBlobLeaf, []byte(fmt.Sprintf("c%d", i))))
	}
	if err := sink.Flush(); err == nil {
		t.Fatal("flush after store failure returned nil")
	}
	if _, err := sink.Emit(chunk.TypeBlobLeaf, sinkEnc(chunk.TypeBlobLeaf, []byte("later"))); err == nil {
		t.Fatal("emit after failure returned nil")
	}
}

// TestChunkSinkThroughVerifyingLayer: chunks emitted through a sink over the
// verifying wrapper land via the wrapper (the batch path composes with the
// layering), and a forged claimed chunk slipped into a batch is rejected.
func TestChunkSinkThroughVerifyingLayer(t *testing.T) {
	inner := NewMemStore()
	v := NewVerifyingStore(inner)
	sink := NewChunkSink(v, SinkOptions{}.SyncHashers())
	defer sink.Close()
	idp, err := sink.Emit(chunk.TypeBlobLeaf, sinkEnc(chunk.TypeBlobLeaf, []byte("honest")))
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := inner.Get(*idp); err != nil {
		t.Fatalf("honest chunk missing below verifier: %v", err)
	}
}
