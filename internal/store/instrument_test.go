package store

import (
	"testing"

	"forkbase/internal/chunk"
	"forkbase/internal/hash"
	"forkbase/internal/nodecache"
	"forkbase/internal/obs"
)

func TestInstrumentedStoreCounts(t *testing.T) {
	reg := obs.NewRegistry()
	ms := NewMemStore()
	st := Instrument(ms, reg)

	c := chunk.New(chunk.TypeBlobLeaf, []byte("payload"))
	if _, err := st.Put(c); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(c.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(hash.Of([]byte("absent"))); err != ErrNotFound {
		t.Fatalf("get absent: %v", err)
	}
	if _, err := st.Has(c.ID()); err != nil {
		t.Fatal(err)
	}
	c2 := chunk.New(chunk.TypeBlobLeaf, []byte("batchling"))
	if _, err := PutBatch(st, []*chunk.Chunk{c2}); err != nil {
		t.Fatal(err)
	}
	if _, err := GetBatch(st, []hash.Hash{c.ID(), c2.ID()}); err != nil {
		t.Fatal(err)
	}
	if _, err := HasBatch(st, []hash.Hash{c.ID()}); err != nil {
		t.Fatal(err)
	}

	wantOps := map[string]float64{
		"get": 2, "put": 1, "has": 1, "put_batch": 1, "get_batch": 1, "has_batch": 1,
	}
	// Latency on the single-chunk paths is sampled (first op of every
	// latSampleMask+1 is timed), so each family here records exactly one
	// observation; batch paths are always timed.
	wantTimed := map[string]float64{
		"get": 1, "put": 1, "has": 1, "put_batch": 1, "get_batch": 1, "has_batch": 1,
	}
	for op, want := range wantOps {
		if got, ok := reg.Value("forkbase_store_ops_total", "mem", op); !ok || got != want {
			t.Errorf("ops_total{mem,%s} = %v (ok=%v), want %v", op, got, ok, want)
		}
		if got, _ := reg.Value("forkbase_store_op_seconds", "mem", op); got != wantTimed[op] {
			t.Errorf("op_seconds{mem,%s} count = %v, want %v", op, got, wantTimed[op])
		}
	}
	// Bytes: writes = len("payload") + len("batchling"); reads = payload
	// once via Get plus both via GetBatch.
	if got, _ := reg.Value("forkbase_store_write_bytes_total", "mem"); got != 16 {
		t.Errorf("write_bytes = %v, want 16", got)
	}
	if got, _ := reg.Value("forkbase_store_read_bytes_total", "mem"); got != 23 {
		t.Errorf("read_bytes = %v, want 23", got)
	}
	// A not-found get is not an error.
	if got, _ := reg.Value("forkbase_store_errors_total", "mem"); got != 0 {
		t.Errorf("errors_total = %v, want 0", got)
	}
}

// TestInstrumentTransparent: the wrapper forwards every discovered
// capability and is the identity for nil/Discard registries.
func TestInstrumentTransparent(t *testing.T) {
	ms := NewMemStore()
	if st := Instrument(ms, nil); st != ms {
		t.Error("nil registry should return inner unchanged")
	}
	if st := Instrument(ms, obs.Discard); st != ms {
		t.Error("Discard registry should return inner unchanged")
	}

	cache := nodecache.New(1 << 20)
	layered := WithSinkHashers(WithNodeCache(ms, cache), 3)
	st := Instrument(layered, obs.NewRegistry())
	if NodeCacheOf(st) != cache {
		t.Error("node cache not forwarded through instrumentation")
	}
	if SinkHashersOf(st) != 3 {
		t.Error("sink hashers not forwarded through instrumentation")
	}
	if KindOf(st) != "mem" {
		t.Errorf("KindOf = %q, want mem", KindOf(st))
	}
	u, ok := st.(interface{ Unwrap() Store })
	if !ok || u.Unwrap() != layered {
		t.Error("Unwrap should expose the wrapped store")
	}
	if _, ok := st.(BatchStore); !ok {
		t.Error("batch capability not forwarded")
	}
	if _, ok := st.(BatchReadStore); !ok {
		t.Error("batch-read capability not forwarded")
	}
}

func TestKindOf(t *testing.T) {
	ms := NewMemStore()
	if got := KindOf(ms); got != "mem" {
		t.Errorf("mem store kind = %q", got)
	}
	if got := KindOf(WithNodeCache(ms, nodecache.New(1024))); got != "mem" {
		t.Errorf("wrapped mem store kind = %q", got)
	}
	if got := KindOf(NewCountingStore(ms)); got != "store" {
		// CountingStore has no Unwrap; the generic fallback applies.
		t.Errorf("counting store kind = %q", got)
	}
}
