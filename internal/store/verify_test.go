package store

import (
	"fmt"
	"strings"
	"testing"

	"forkbase/internal/chunk"
	"forkbase/internal/hash"
)

// ---------------------------------------------------------------------------
// VerifiedSet unit tests
// ---------------------------------------------------------------------------

func vsID(i int) hash.Hash {
	return hash.Of([]byte(fmt.Sprintf("verified-set-%d", i)))
}

func TestVerifiedSetHitAddInvalidate(t *testing.T) {
	s := NewVerifiedSet(1 << 20)
	id := vsID(1)
	if s.Hit(id, 0) {
		t.Fatal("empty set reported a hit")
	}
	s.Add(id, 0)
	if !s.Hit(id, 0) {
		t.Fatal("added id not hit")
	}
	s.Invalidate(id)
	if s.Hit(id, 0) {
		t.Fatal("invalidated id still hit")
	}
	s.Add(id, 0)
	s.InvalidateAll()
	if s.Hit(id, 0) || s.Len() != 0 {
		t.Fatalf("InvalidateAll left entries: len=%d", s.Len())
	}
}

// TestVerifiedSetEpochStaleness pins the relocation contract: an entry
// stamped with an older placement epoch is a miss (and is evicted), because
// the id may have been re-homed by compaction or quarantine since it was
// verified.
func TestVerifiedSetEpochStaleness(t *testing.T) {
	s := NewVerifiedSet(1 << 20)
	id := vsID(2)
	s.Add(id, 1)
	if !s.Hit(id, 1) {
		t.Fatal("same-epoch hit failed")
	}
	if s.Hit(id, 2) {
		t.Fatal("stale-epoch entry reported a hit")
	}
	// The stale entry must have been dropped, not left to match epoch 1 again.
	if s.Hit(id, 1) {
		t.Fatal("stale entry survived the epoch-bumped probe")
	}
	s.Add(id, 2)
	if !s.Hit(id, 2) {
		t.Fatal("re-added id at new epoch not hit")
	}
}

// TestVerifiedSetBudgetBounded pins that the two-generation rotation keeps
// the entry count bounded by the byte budget no matter how many ids flow
// through, and that recently added ids survive rotation.
func TestVerifiedSetBudgetBounded(t *testing.T) {
	const budget = 64 * 2 * 16 * 64 // capPerGen = 64 per shard
	s := NewVerifiedSet(budget)
	const n = 100_000
	for i := 0; i < n; i++ {
		s.Add(vsID(i), 0)
	}
	// Hard bound: hot+cold per shard, 16 shards.
	if max := 64 * 2 * 16; s.Len() > max {
		t.Fatalf("set holds %d entries, budget allows at most %d", s.Len(), max)
	}
	if !s.Hit(vsID(n-1), 0) {
		t.Fatal("most recently added id already evicted")
	}
}

// ---------------------------------------------------------------------------
// Trust gating
// ---------------------------------------------------------------------------

// TestVerifyCacheTrustGating pins which stacks may carry a verified-id set:
// stores that own their bytes (mem, file) and pass-through wrappers over
// them are eligible; anything that cannot vouch for stable storage — the
// malicious store stands in for every wire/untrusted boundary — disables the
// cache automatically, with no configuration.
func TestVerifyCacheTrustGating(t *testing.T) {
	mem := NewMemStore()
	cases := []struct {
		name    string
		inner   Store
		enabled bool
	}{
		{"mem", mem, true},
		{"counting-over-mem", NewCountingStore(mem), true},
		{"malicious-over-mem", NewMaliciousStore(mem), false},
		{"counting-over-malicious", NewCountingStore(NewMaliciousStore(mem)), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := NewVerifyingStoreCache(tc.inner, 1<<20)
			if got := v.VerifyStats().Enabled; got != tc.enabled {
				t.Fatalf("cache enabled = %v, want %v", got, tc.enabled)
			}
		})
	}
	t.Run("negative-budget-disables", func(t *testing.T) {
		v := NewVerifyingStoreCache(mem, -1)
		if v.VerifyStats().Enabled {
			t.Fatal("negative budget did not disable the cache")
		}
	})
}

// TestVerifyCacheOffStillDetectsTamper pins that over an untrusted stack the
// verifying store behaves exactly as before this optimization existed: every
// read pays the full recheck and every substitution is caught, on the first
// read and on every repeat read.
func TestVerifyCacheOffStillDetectsTamper(t *testing.T) {
	mal := NewMaliciousStore(NewMemStore())
	v := NewVerifyingStoreCache(mal, 1<<20)
	c := mkChunk(7)
	if _, err := v.Put(c); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Get(c.ID()); err != nil {
		t.Fatalf("honest read failed: %v", err)
	}
	if ok, err := mal.CorruptFlip(c.ID(), 3, 1); err != nil || !ok {
		t.Fatalf("CorruptFlip: ok=%v err=%v", ok, err)
	}
	for i := 0; i < 3; i++ {
		if _, err := v.Get(c.ID()); err == nil {
			t.Fatalf("read %d of tampered chunk succeeded", i)
		}
	}
	if v.VerifyStats().Hits != 0 {
		t.Fatalf("disabled cache recorded hits: %+v", v.VerifyStats())
	}
}

// ---------------------------------------------------------------------------
// Amortization over a trusted file store
// ---------------------------------------------------------------------------

// warmFileStack builds a small multi-segment file store (sealed segments are
// served as claimed mmap chunks — the path that pays a recheck) behind a
// verifying store with the cache on.
func warmFileStack(t *testing.T, cacheBytes int64) (*FileStore, *VerifyingStore, []hash.Hash) {
	t.Helper()
	if !mmapSupported {
		t.Skip("no mmap on this platform; sealed reads are unclaimed")
	}
	fs, err := OpenFileStoreSegmented(t.TempDir(), 2048)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	ids := fillSegments(t, fs, 60)
	if fs.actSeg.Load() < 2 {
		t.Fatal("expected several sealed segments")
	}
	return fs, NewVerifyingStoreCache(fs, cacheBytes), ids
}

// TestVerifyCacheSkipsRepeatRehash is the tentpole pin: the first verified
// read of a sealed chunk pays exactly one digest, the second pays zero.
func TestVerifyCacheSkipsRepeatRehash(t *testing.T) {
	_, v, ids := warmFileStack(t, 1<<20)
	id := ids[0]

	before := hash.Digests()
	if _, err := v.Get(id); err != nil {
		t.Fatal(err)
	}
	if got := hash.Digests() - before; got != 1 {
		t.Fatalf("cold verified read paid %d digests, want exactly 1", got)
	}

	before = hash.Digests()
	for i := 0; i < 5; i++ {
		if _, err := v.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := hash.Digests() - before; got != 0 {
		t.Fatalf("warm verified reads paid %d digests, want 0", got)
	}
	st := v.VerifyStats()
	if !st.Enabled || st.Hits < 5 || st.SkippedHashes < 5 {
		t.Fatalf("verify stats after warm reads: %+v", st)
	}
}

// TestVerifyCacheGetBatchAmortizes pins the batch path: a warm GetBatch over
// already-verified ids pays zero digests.
func TestVerifyCacheGetBatchAmortizes(t *testing.T) {
	_, v, ids := warmFileStack(t, 1<<20)
	batch := ids[:20]

	before := hash.Digests()
	cs, err := v.GetBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cs {
		if c == nil {
			t.Fatalf("missing chunk %d", i)
		}
	}
	cold := hash.Digests() - before
	if cold != int64(len(batch)) {
		t.Fatalf("cold GetBatch paid %d digests, want %d", cold, len(batch))
	}

	before = hash.Digests()
	if _, err := v.GetBatch(batch); err != nil {
		t.Fatal(err)
	}
	if got := hash.Digests() - before; got != 0 {
		t.Fatalf("warm GetBatch paid %d digests, want 0", got)
	}
}

// TestVerifyCacheParallelBatchRecheck pins that the parallel recheck pool
// returns the same answers as the serial path, including catching a
// mid-batch forgery, across worker counts.
func TestVerifyCacheParallelBatchRecheck(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			_, v, ids := warmFileStack(t, 1<<20)
			v.SetVerifyWorkers(workers)
			if _, err := v.GetBatch(ids); err != nil {
				t.Fatal(err)
			}
			// A claimed batch write with one tampered element must fail
			// whichever worker meets it.
			cs := make([]*chunk.Chunk, 16)
			for i := range cs {
				genuine := mkChunk(1000 + i)
				data := append([]byte(nil), genuine.Data()...)
				id := genuine.ID()
				if i == 11 {
					data[0] ^= 0x01 // payload no longer matches id
				}
				cs[i] = chunk.NewClaimed(genuine.Type(), data, id)
			}
			if _, err := v.PutBatch(cs); err == nil {
				t.Fatal("PutBatch accepted a tampered claimed chunk")
			} else if !strings.Contains(err.Error(), "batch chunk 11") {
				t.Fatalf("error does not name the tampered element: %v", err)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Invalidation: relocation and scrub
// ---------------------------------------------------------------------------

// TestCompactionInvalidatesVerifyCache pins the placement-epoch contract: a
// sweep that compacts segments re-homes records, so every warm entry goes
// stale and the next read repays its recheck.
func TestCompactionInvalidatesVerifyCache(t *testing.T) {
	fs, v, ids := warmFileStack(t, 1<<20)
	keep := ids[0]
	if _, err := v.Get(keep); err != nil {
		t.Fatal(err)
	}
	before := hash.Digests()
	if _, err := v.Get(keep); err != nil {
		t.Fatal(err)
	}
	if got := hash.Digests() - before; got != 0 {
		t.Fatalf("warm read before sweep paid %d digests", got)
	}

	res, err := fs.Sweep(func(id hash.Hash) bool { return id == keep }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompactedSegments == 0 {
		t.Fatal("sweep compacted nothing; test needs a relocation")
	}

	invBefore := v.VerifyStats().Invalidations
	before = hash.Digests()
	if _, err := v.Get(keep); err != nil {
		t.Fatalf("surviving chunk unreadable after compaction: %v", err)
	}
	if got := hash.Digests() - before; got != 1 {
		t.Fatalf("post-compaction read paid %d digests, want 1 (stale entry must not be served)", got)
	}
	if v.VerifyStats().Invalidations <= invBefore {
		t.Fatal("stale epoch probe did not count an invalidation")
	}
	// And the re-verified entry is warm again at the new epoch.
	before = hash.Digests()
	if _, err := v.Get(keep); err != nil {
		t.Fatal(err)
	}
	if got := hash.Digests() - before; got != 0 {
		t.Fatalf("re-warmed read paid %d digests, want 0", got)
	}
}

// TestScrubBypassesVerifyCache pins the non-negotiable scrub property: scrub
// reads segment bytes directly and never consults the verified-id set, so
// rot that creeps in *after* a verified read is still classified.  This is
// what closes the cache's accepted staleness window.
func TestScrubBypassesVerifyCache(t *testing.T) {
	fs, v, ids := warmFileStack(t, 1<<20)
	// Verify and cache every id in segment 0 (and the rest) first.
	if _, err := v.GetBatch(ids); err != nil {
		t.Fatal(err)
	}
	if v.VerifyStats().Entries == 0 {
		t.Fatal("warm pass cached nothing")
	}
	flipPayloadByte(t, fs.segmentPath(0))

	st, err := fs.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if st.Corrupt != 1 || len(st.Lost) != 1 {
		t.Fatalf("scrub over a warm cache missed the rot: %+v", st)
	}
	if fs.Health() == nil {
		t.Fatal("store healthy after scrub found corruption")
	}
	// Quarantine re-homed the victim segment's survivors: the placement
	// epoch moved, so no pre-scrub entry can satisfy a read anymore.
	lost := st.Lost[0]
	if _, err := v.Get(lost); err == nil {
		t.Fatal("lost chunk still readable through the verifying store")
	}
}

// ---------------------------------------------------------------------------
// Provenance: one hash per chunk, end to end
// ---------------------------------------------------------------------------

// TestSinkIngestOneHashPerChunk is the counting-hasher acceptance pin: bulk
// ingest through the sink and the verifying store pays exactly one digest
// per emitted chunk — the sink's own id hash — because the provenance token
// lets the verifying write path skip its recheck.
func TestSinkIngestOneHashPerChunk(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  SinkOptions
	}{
		{"sync", SinkOptions{BatchSize: 8}.SyncHashers()},
		{"async", SinkOptions{BatchSize: 8, Hashers: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			v := NewVerifyingStoreCache(NewMemStore(), 1<<20)
			sink := NewChunkSink(v, tc.opt)
			defer sink.Close()

			const n = 200
			skippedBefore := v.VerifyStats().SkippedHashes
			before := hash.Digests()
			for i := 0; i < n; i++ {
				payload := []byte(fmt.Sprintf("ingest-%s-%d", tc.name, i))
				if _, err := sink.Emit(chunk.TypeBlobLeaf, sinkEnc(chunk.TypeBlobLeaf, payload)); err != nil {
					t.Fatal(err)
				}
			}
			if err := sink.Flush(); err != nil {
				t.Fatal(err)
			}
			if got := hash.Digests() - before; got != n {
				t.Fatalf("ingest of %d chunks paid %d digests, want exactly %d", n, got, n)
			}
			if got := v.VerifyStats().SkippedHashes - skippedBefore; got != n {
				t.Fatalf("provenance skipped %d rechecks, want %d", got, n)
			}
		})
	}
}

// TestPutSeedsVerifyCache pins that a verified write warms the set: bytes
// the writer just hashed (or recheck just confirmed) need no rehash on the
// first read back — as long as the read returns a claimed chunk.
func TestPutSeedsVerifyCache(t *testing.T) {
	fs, v, _ := warmFileStack(t, 1<<20)
	c := mkChunk(4242)
	if _, err := v.Put(c); err != nil {
		t.Fatal(err)
	}
	// Force the tail (holding c) to seal so the read back is a claimed mmap
	// chunk; a pread from the active tail is verified by construction and
	// never consults the cache.
	sealedBefore := fs.actSeg.Load()
	for i := 0; i < 30; i++ {
		if _, err := fs.Put(fileChunk(10_000 + i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	if fs.actSeg.Load() == sealedBefore {
		t.Fatal("tail never rotated; chunk under test still unsealed")
	}
	before := hash.Digests()
	if _, err := v.Get(c.ID()); err != nil {
		t.Fatal(err)
	}
	if got := hash.Digests() - before; got != 0 {
		t.Fatalf("first read of a just-written chunk paid %d digests, want 0", got)
	}
}
