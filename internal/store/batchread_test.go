package store

import (
	"testing"

	"forkbase/internal/chunk"
	"forkbase/internal/hash"
	"forkbase/internal/nodecache"
)

// plainStore hides every optional capability, exercising the fallbacks.
type plainStore struct{ inner *MemStore }

func (p plainStore) Put(c *chunk.Chunk) (bool, error)       { return p.inner.Put(c) }
func (p plainStore) Get(id hash.Hash) (*chunk.Chunk, error) { return p.inner.Get(id) }
func (p plainStore) Has(id hash.Hash) (bool, error)         { return p.inner.Has(id) }
func (p plainStore) Stats() Stats                           { return p.inner.Stats() }

func TestBatchReadAcrossImplementations(t *testing.T) {
	mk := func(s Store) (ids []hash.Hash, missing hash.Hash) {
		for _, payload := range []string{"alpha", "beta", "gamma"} {
			c := chunk.New(chunk.TypeBlobLeaf, []byte(payload))
			if _, err := s.Put(c); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, c.ID())
		}
		missing = hash.Of([]byte("not stored"))
		return ids, missing
	}

	cases := []struct {
		name string
		wrap func(*MemStore) Store
	}{
		{"mem", func(m *MemStore) Store { return m }},
		{"fallback", func(m *MemStore) Store { return plainStore{m} }},
		{"verifying", func(m *MemStore) Store { return NewVerifyingStore(m) }},
		{"counting", func(m *MemStore) Store { return NewCountingStore(m) }},
		{"malicious-honest", func(m *MemStore) Store { return NewMaliciousStore(m) }},
		{"nodecached", func(m *MemStore) Store {
			return WithNodeCache(NewVerifyingStore(m), nodecache.New(1<<20))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.wrap(NewMemStore())
			ids, missing := mk(s)
			query := []hash.Hash{ids[2], missing, ids[0]}

			got, err := GetBatch(s, query)
			if err != nil {
				t.Fatal(err)
			}
			if got[0] == nil || got[0].ID() != ids[2] {
				t.Fatalf("slot 0 = %v, want %s", got[0], ids[2].Short())
			}
			if got[1] != nil {
				t.Fatal("missing id must yield a nil slot, not an error")
			}
			if got[2] == nil || got[2].ID() != ids[0] {
				t.Fatalf("slot 2 = %v, want %s", got[2], ids[0].Short())
			}

			has, err := HasBatch(s, query)
			if err != nil {
				t.Fatal(err)
			}
			if !has[0] || has[1] || !has[2] {
				t.Fatalf("HasBatch = %v, want [true false true]", has)
			}
		})
	}
}

func TestVerifyingGetBatchCatchesForgery(t *testing.T) {
	mal := NewMaliciousStore(NewMemStore())
	v := NewVerifyingStore(mal)
	c := chunk.New(chunk.TypeBlobLeaf, []byte("genuine"))
	if _, err := v.Put(c); err != nil {
		t.Fatal(err)
	}
	mal.Forge(c.ID(), chunk.TypeBlobLeaf, []byte("forged"))
	if _, err := GetBatch(v, []hash.Hash{c.ID()}); err == nil {
		t.Fatal("verifying GetBatch must reject a forged chunk")
	}
	// The raw malicious store serves the forgery without complaint.
	out, err := GetBatch(Store(mal), []hash.Hash{c.ID()})
	if err != nil || out[0] == nil {
		t.Fatalf("malicious store should serve the forgery silently: %v", err)
	}
}

func TestFileStoreBatchReadFallback(t *testing.T) {
	fs, err := OpenFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	c1 := chunk.New(chunk.TypeBlobLeaf, []byte("one"))
	c2 := chunk.New(chunk.TypeBlobLeaf, []byte("two"))
	if _, err := PutBatch(fs, []*chunk.Chunk{c1, c2}); err != nil {
		t.Fatal(err)
	}
	got, err := GetBatch(fs, []hash.Hash{c2.ID(), hash.Of([]byte("nope")), c1.ID()})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] == nil || got[1] != nil || got[2] == nil {
		t.Fatalf("GetBatch over FileStore = [%v %v %v]", got[0], got[1], got[2])
	}
	if string(got[0].Data()) != "two" || string(got[2].Data()) != "one" {
		t.Fatal("wrong payloads")
	}
}
