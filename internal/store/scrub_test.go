package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"forkbase/internal/chunk"
)

// flipPayloadByte XORs one byte of the first record's payload in a segment
// file: the record still parses, but its content no longer matches its id.
func flipPayloadByte(t *testing.T, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := []byte{0}
	off := int64(recordHeader + 5)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

func quarantineFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.quarantine"))
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestScrubCleanStore pins the no-fault path: a scrub over an intact
// multi-segment store touches nothing and reports healthy.
func TestScrubCleanStore(t *testing.T) {
	s, err := OpenFileStoreSegmented(t.TempDir(), 2048)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ids := fillSegments(t, s, 60)
	st, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if st.Corrupt != 0 || st.Torn != 0 || st.Unreadable != 0 || len(st.Lost) != 0 || st.QuarantinedSegments != 0 {
		t.Fatalf("clean store scrub reported faults: %+v", st)
	}
	if st.Ok != len(ids) {
		t.Fatalf("ok=%d want %d", st.Ok, len(ids))
	}
	if st.Segments == 0 || st.ScannedBytes == 0 {
		t.Fatalf("scrub scanned nothing: %+v", st)
	}
	if err := s.Health(); err != nil {
		t.Fatalf("healthy store reports %v", err)
	}
	if _, _, ok := s.LastScrub(); !ok {
		t.Fatal("LastScrub not recorded")
	}
}

// TestScrubQuarantinesAndRescues is the tentpole store-layer test: flip a
// byte in a sealed segment of a *running* store, scrub, and require (a) the
// damage detected, (b) the segment renamed aside — never unlinked, (c) every
// intact record of the segment rescued and still readable, (d) exactly the
// damaged chunk reported lost, and (e) the health state flipping back to nil
// once the chunk is repaired.
func TestScrubQuarantinesAndRescues(t *testing.T) {
	for _, noMmap := range []bool{false, true} {
		name := "mmap"
		if noMmap {
			name = "nommap"
		}
		t.Run(name, func(t *testing.T) {
			if !noMmap && !mmapSupported {
				t.Skip("no mmap on this platform")
			}
			dir := t.TempDir()
			s, err := OpenFileStoreWith(dir, FileStoreOptions{SegmentSize: 2048, NoMmap: noMmap})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			ids := fillSegments(t, s, 60)
			if s.actSeg.Load() < 2 {
				t.Fatal("expected several sealed segments")
			}
			victimSeg := 1
			flipPayloadByte(t, s.segmentPath(victimSeg))

			st, err := s.Scrub()
			if err != nil {
				t.Fatal(err)
			}
			if st.Corrupt != 1 {
				t.Fatalf("corrupt=%d want 1 (%+v)", st.Corrupt, st)
			}
			if st.QuarantinedSegments != 1 {
				t.Fatalf("quarantined=%d want 1", st.QuarantinedSegments)
			}
			if len(st.Lost) != 1 {
				t.Fatalf("lost=%v want exactly one id", st.Lost)
			}
			if st.Rescued == 0 {
				t.Fatal("expected intact records rescued out of the victim")
			}
			if got := quarantineFiles(t, dir); len(got) != 1 {
				t.Fatalf("quarantine files = %v, want one", got)
			}
			if _, err := os.Stat(s.segmentPath(victimSeg)); !os.IsNotExist(err) {
				t.Fatalf("victim segment still live: %v", err)
			}
			if err := s.Health(); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("health = %v, want ErrCorrupt", err)
			}

			// Every chunk except the lost one must still read back intact
			// through the verifying layer.
			lost := st.Lost[0]
			var lostIdx = -1
			vs := NewVerifyingStore(s)
			for i, id := range ids {
				if id == lost {
					lostIdx = i
					if _, err := s.Get(id); !errors.Is(err, ErrNotFound) {
						t.Fatalf("lost chunk get = %v, want ErrNotFound", err)
					}
					continue
				}
				c, err := vs.Get(id)
				if err != nil {
					t.Fatalf("get %d after scrub: %v", i, err)
				}
				if !bytes.Equal(c.Data(), fileChunk(i).Data()) {
					t.Fatalf("payload mismatch at %d", i)
				}
			}
			if lostIdx < 0 {
				t.Fatal("lost id is not one of the written chunks")
			}

			// Repair the lost chunk (what core.DB.Heal does after refetching
			// it from a replica); health must recover.
			if err := s.Repair(fileChunk(lostIdx)); err != nil {
				t.Fatal(err)
			}
			if err := s.Health(); err != nil {
				t.Fatalf("health after repair = %v, want nil", err)
			}
			if c, err := vs.Get(lost); err != nil || !bytes.Equal(c.Data(), fileChunk(lostIdx).Data()) {
				t.Fatalf("repaired chunk unreadable: %v", err)
			}
		})
	}
}

// TestScrubTornSegment: chop a sealed segment mid-record.  The sequential
// scan stops at the tear, but the index-driven rescue still recovers every
// record physically before it; records beyond the tear are lost.  Runs in
// no-mmap mode: a mapping established before the truncation pads the lost
// tail with zeros (classified corrupt, same quarantine path), while the
// file-read path sees the short read and classifies torn.
func TestScrubTornSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStoreWith(dir, FileStoreOptions{SegmentSize: 2048, NoMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ids := fillSegments(t, s, 60)
	victim := s.segmentPath(1)
	fi, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(victim, fi.Size()-10); err != nil {
		t.Fatal(err)
	}
	st, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if st.Torn != 1 || st.QuarantinedSegments != 1 {
		t.Fatalf("torn=%d quarantined=%d, want 1/1", st.Torn, st.QuarantinedSegments)
	}
	if len(st.Lost) != 1 {
		t.Fatalf("lost=%d want 1 (only the chopped record)", len(st.Lost))
	}
	survivors := 0
	for _, id := range ids {
		if id == st.Lost[0] {
			continue
		}
		if _, err := s.Get(id); err != nil {
			t.Fatalf("survivor unreadable after torn-segment scrub: %v", err)
		}
		survivors++
	}
	if survivors != len(ids)-1 {
		t.Fatalf("survivors=%d want %d", survivors, len(ids)-1)
	}
}

// TestRecoverySeedsHealth: corruption present at open time is classified by
// recovery itself — the store comes up unhealthy without waiting for a
// scrub, and the damaged record is simply not indexed.
func TestRecoverySeedsHealth(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStoreSegmented(dir, 2048)
	if err != nil {
		t.Fatal(err)
	}
	ids := fillSegments(t, s, 60)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	flipPayloadByte(t, filepath.Join(dir, "seg-000001.log"))

	s2, err := OpenFileStoreSegmented(dir, 2048)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st, at, ok := s2.LastScrub()
	if !ok || at.IsZero() {
		t.Fatal("recovery did not record a classification pass")
	}
	if st.Corrupt != 1 || len(st.Lost) != 1 {
		t.Fatalf("recovery classification corrupt=%d lost=%d, want 1/1", st.Corrupt, len(st.Lost))
	}
	if err := s2.Health(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("health after rotted reopen = %v, want ErrCorrupt", err)
	}
	if _, err := s2.Get(st.Lost[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rotted record served: %v", err)
	}
	alive := 0
	for _, id := range ids {
		if id == st.Lost[0] {
			continue
		}
		if _, err := s2.Get(id); err != nil {
			t.Fatalf("intact record unreadable after reopen: %v", err)
		}
		alive++
	}
	if alive != len(ids)-1 {
		t.Fatalf("alive=%d want %d", alive, len(ids)-1)
	}
}

// TestRepairInsertsAbsent: Repair of a chunk the store never held is a plain
// verified insert.
func TestRepairInsertsAbsent(t *testing.T) {
	s, err := OpenFileStoreSegmented(t.TempDir(), 2048)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := fileChunk(7)
	if err := s.Repair(c); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(c.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data(), c.Data()) {
		t.Fatal("payload mismatch after repair-insert")
	}
}

// TestMemStoreRepair: the map-backed store replaces a damaged resident entry
// where Put would dedup-hit and keep the bad copy.
func TestMemStoreRepair(t *testing.T) {
	m := NewMemStore()
	good := chunk.New(chunk.TypeBlobLeaf, []byte("payload"))
	forged := chunk.NewClaimed(chunk.TypeBlobLeaf, []byte("rotted!"), good.ID())
	m.mu.Lock()
	m.chunks[good.ID()] = forged
	m.stats.UniqueChunks++
	m.mu.Unlock()
	if err := m.Repair(good); err != nil {
		t.Fatal(err)
	}
	got, err := m.Get(good.ID())
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Recheck(); err != nil {
		t.Fatalf("repair left a corrupt chunk resident: %v", err)
	}
}
