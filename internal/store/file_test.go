package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"forkbase/internal/chunk"
	"forkbase/internal/hash"
)

// fileChunk builds a deterministic ~200-byte test chunk.
func fileChunk(i int) *chunk.Chunk {
	return chunk.New(chunk.TypeBlobLeaf, bytes.Repeat([]byte{byte(i), byte(i >> 8)}, 100))
}

// fillSegments writes n chunks through tiny segments and returns their ids.
func fillSegments(t *testing.T, s *FileStore, n int) []hash.Hash {
	t.Helper()
	ids := make([]hash.Hash, n)
	for i := 0; i < n; i++ {
		c := fileChunk(i)
		if _, err := s.Put(c); err != nil {
			t.Fatal(err)
		}
		ids[i] = c.ID()
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return ids
}

// TestFileStoreMmapSealedReads pins the mmap read path: multi-segment
// stores serve sealed reads as claimed zero-copy chunks that the verifying
// layer accepts, and the active tail still serves verified copies.
func TestFileStoreMmapSealedReads(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	s, err := OpenFileStoreSegmented(t.TempDir(), 2048)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ids := fillSegments(t, s, 100)
	if s.actSeg.Load() == 0 {
		t.Fatal("expected rotation")
	}
	vs := NewVerifyingStore(s)
	for i, id := range ids {
		c, err := vs.Get(id)
		if err != nil {
			t.Fatalf("verified get %d: %v", i, err)
		}
		if !bytes.Equal(c.Data(), fileChunk(i).Data()) {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
}

func sweepKeep(keep map[hash.Hash]bool) func(hash.Hash) bool {
	return func(id hash.Hash) bool { return keep[id] }
}

func TestFileStoreSweepCompacts(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStoreSegmented(dir, 2048)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ids := fillSegments(t, s, 200)
	diskBefore := s.DiskBytes()

	keep := map[hash.Hash]bool{}
	for i, id := range ids {
		if i%2 == 0 {
			keep[id] = true
		}
	}
	res, err := s.Sweep(sweepKeep(keep), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Swept != 100 {
		t.Fatalf("swept %d, want 100", res.Swept)
	}
	if res.CompactedSegments == 0 || res.ReclaimedBytes <= 0 {
		t.Fatalf("no compaction happened: %+v", res)
	}
	if got := s.DiskBytes(); got >= diskBefore {
		t.Fatalf("disk did not shrink: %d -> %d", diskBefore, got)
	}
	st := s.Stats()
	if st.UniqueChunks != 100 {
		t.Fatalf("stats.UniqueChunks = %d after sweep", st.UniqueChunks)
	}
	for i, id := range ids {
		c, err := s.Get(id)
		if i%2 == 0 {
			if err != nil {
				t.Fatalf("live chunk %d lost: %v", i, err)
			}
			if !bytes.Equal(c.Data(), fileChunk(i).Data()) {
				t.Fatalf("live chunk %d corrupted by compaction", i)
			}
		} else if err != ErrNotFound {
			t.Fatalf("swept chunk %d still readable (err=%v)", i, err)
		}
	}
	// The directory really lost the victim files, and a reopen sees the
	// compacted layout: live chunks present, swept ones gone for good.
	s.Close()
	s2, err := OpenFileStoreSegmented(dir, 2048)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n := s2.Len(); n != 100 {
		t.Fatalf("reopen sees %d chunks, want 100 (garbage resurrected?)", n)
	}
	for i, id := range ids {
		if i%2 != 0 {
			continue
		}
		if _, err := s2.Get(id); err != nil {
			t.Fatalf("live chunk %d lost across reopen: %v", i, err)
		}
	}
}

// TestFileStoreSweepRatioGate pins the size-ratio trigger: a segment whose
// dead fraction is below the threshold is index-swept but not rewritten,
// and a later full-reclaim sweep (ratio 0) compacts it.
func TestFileStoreSweepRatioGate(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStoreSegmented(dir, 2048)
	if err != nil {
		t.Fatal(err)
	}
	ids := fillSegments(t, s, 100)
	s.Close()
	// Reopen so every sealed record predates the generation boundary (an
	// online sweep exempts only records younger than the last pass).
	s, err = OpenFileStoreSegmented(dir, 2048)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	keep := map[hash.Hash]bool{}
	for _, id := range ids[5:] { // ~5% garbage, concentrated in segment 0
		keep[id] = true
	}
	res, err := s.Sweep(sweepKeep(keep), 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if res.Swept != 5 {
		t.Fatalf("swept %d, want 5", res.Swept)
	}
	if res.CompactedSegments != 0 {
		t.Fatalf("ratio gate ignored: %+v", res)
	}
	res, err = s.Sweep(sweepKeep(keep), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompactedSegments == 0 {
		t.Fatalf("full sweep did not compact: %+v", res)
	}
	for _, id := range ids[5:] {
		if _, err := s.Get(id); err != nil {
			t.Fatalf("live chunk lost: %v", err)
		}
	}
}

// TestFileStoreOnlineSweepGrace pins the generational grace of online
// sweeps: records written since the previous pass are exempt even when the
// caller rejects them, so a reachability view computed before those writes
// cannot collect freshly staged chunks.  Full sweeps have no grace.
func TestFileStoreOnlineSweepGrace(t *testing.T) {
	s, err := OpenFileStoreSegmented(t.TempDir(), 2048)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillSegments(t, s, 100)
	keepNone := func(hash.Hash) bool { return false }
	res, err := s.Sweep(keepNone, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if res.Swept != 0 {
		t.Fatalf("online sweep collected %d chunks of the young generation", res.Swept)
	}
	// The boundary advanced: sealed pre-pass records are now collectable.
	res, err = s.Sweep(keepNone, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if res.Swept == 0 {
		t.Fatal("second online sweep collected nothing")
	}
	// A full sweep finishes whatever still hides in the tail.
	if _, err := s.Sweep(keepNone, 0); err != nil {
		t.Fatal(err)
	}
	if n := s.Len(); n != 0 {
		t.Fatalf("%d chunks survived a full sweep rejecting everything", n)
	}
}

// TestFileStoreZeroCopySurvivesCompaction pins the parked-mapping contract:
// a zero-copy payload handed out before its segment is compacted away stays
// readable until Close.
func TestFileStoreZeroCopySurvivesCompaction(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	s, err := OpenFileStoreSegmented(t.TempDir(), 2048)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ids := fillSegments(t, s, 100)
	held, err := s.Get(ids[0]) // sealed → aliases the segment mapping
	if err != nil {
		t.Fatal(err)
	}
	keep := map[hash.Hash]bool{ids[0]: true} // everything else dies
	res, err := s.Sweep(sweepKeep(keep), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompactedSegments == 0 {
		t.Fatal("expected compaction")
	}
	if !bytes.Equal(held.Data(), fileChunk(0).Data()) {
		t.Fatal("zero-copy slice invalidated by compaction")
	}
	// The survivor moved; it must still read correctly from its new home.
	c, err := s.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Data(), fileChunk(0).Data()) {
		t.Fatal("moved chunk corrupted")
	}
}

// copyDir snapshots a store directory (the "crashed" disk image).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFileStoreCrashMidCompaction simulates a kill after compaction's
// durability barrier (live records rewritten + fsynced) but before the
// victim segments are unlinked, then reopens the snapshot: nothing may be
// lost and the index may not hold duplicates.
func TestFileStoreCrashMidCompaction(t *testing.T) {
	dir := t.TempDir()
	crashed := t.TempDir()
	s, err := OpenFileStoreSegmented(dir, 2048)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ids := fillSegments(t, s, 200)
	keep := map[hash.Hash]bool{}
	for i, id := range ids {
		if i%2 == 0 {
			keep[id] = true
		}
	}
	snapped := false
	s.SetCrashHook(func(point string, seg int) {
		if point == CrashCompactBeforeUnlink && !snapped {
			// snapshot once, with every victim still on disk
			copyDir(t, dir, crashed)
			snapped = true
		}
	})
	if _, err := s.Sweep(sweepKeep(keep), 0); err != nil {
		t.Fatal(err)
	}
	if !snapped {
		t.Fatal("compaction never reached the crash point")
	}

	re, err := OpenFileStoreSegmented(crashed, 2048)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer re.Close()
	// Every chunk that existed pre-crash is readable: live ones possibly
	// duplicated on disk (old copy + rewritten copy), swept ones not yet
	// unlinked.  The index collapses duplicates, so Len is exact.
	if n := re.Len(); n != 200 {
		t.Fatalf("post-crash index has %d entries, want 200", n)
	}
	for i, id := range ids {
		c, err := re.Get(id)
		if err != nil {
			t.Fatalf("chunk %d lost in crash: %v", i, err)
		}
		if !bytes.Equal(c.Data(), fileChunk(i).Data()) {
			t.Fatalf("chunk %d corrupted in crash", i)
		}
	}
	// A re-run of the sweep finishes the job on the recovered store.
	if _, err := re.Sweep(sweepKeep(keep), 0); err != nil {
		t.Fatal(err)
	}
	if n := re.Len(); n != 100 {
		t.Fatalf("re-swept index has %d entries, want 100", n)
	}
	for i, id := range ids {
		if i%2 != 0 {
			continue
		}
		if _, err := re.Get(id); err != nil {
			t.Fatalf("live chunk %d lost after recovery sweep: %v", i, err)
		}
	}
}

// TestFileStoreRecoverSegmentGaps covers the numbering gaps compaction
// leaves behind: recovery must glob, not probe sequentially.
func TestFileStoreRecoverSegmentGaps(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStoreSegmented(dir, 2048)
	if err != nil {
		t.Fatal(err)
	}
	ids := fillSegments(t, s, 100)
	// Compact away the earliest segments so seg-000000 no longer exists.
	keep := map[hash.Hash]bool{}
	for _, id := range ids[50:] {
		keep[id] = true
	}
	if _, err := s.Sweep(sweepKeep(keep), 0); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := os.Stat(s.segmentPath(0)); !os.IsNotExist(err) {
		t.Skip("segment 0 survived; gap scenario not reached")
	}
	re, err := OpenFileStoreSegmented(dir, 2048)
	if err != nil {
		t.Fatalf("reopen with segment gaps: %v", err)
	}
	defer re.Close()
	for _, id := range ids[50:] {
		if _, err := re.Get(id); err != nil {
			t.Fatalf("chunk lost across gappy reopen: %v", err)
		}
	}
	// Appends keep working (the active segment resumed at the right number).
	if _, err := re.Put(fileChunk(1000)); err != nil {
		t.Fatal(err)
	}
}

// TestFileStoreNoMmapParity runs the full lifecycle on the positioned-read
// fallback: identical behavior, no mapped memory.
func TestFileStoreNoMmapParity(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStoreWith(dir, FileStoreOptions{SegmentSize: 2048, NoMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ids := fillSegments(t, s, 100)
	for i, id := range ids {
		c, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(c.Data(), fileChunk(i).Data()) {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
	keep := map[hash.Hash]bool{}
	for _, id := range ids[:50] {
		keep[id] = true
	}
	res, err := s.Sweep(sweepKeep(keep), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Swept != 50 || res.CompactedSegments == 0 {
		t.Fatalf("no-mmap sweep: %+v", res)
	}
	for _, id := range ids[:50] {
		if _, err := s.Get(id); err != nil {
			t.Fatalf("live chunk lost on no-mmap path: %v", err)
		}
	}
}

// TestFileStoreConcurrentSweep races readers and writers against repeated
// sweeps on both read paths; under -race this validates the locking, and
// the end state must be exact: survivors readable, garbage gone.  The
// NoMmap variant exercises the relocated-mid-pread retry.
func TestFileStoreConcurrentSweep(t *testing.T) {
	t.Run("mmap", func(t *testing.T) { testConcurrentSweep(t, false) })
	t.Run("pread", func(t *testing.T) { testConcurrentSweep(t, true) })
}

func testConcurrentSweep(t *testing.T, noMmap bool) {
	s, err := OpenFileStoreWith(t.TempDir(), FileStoreOptions{SegmentSize: 4096, NoMmap: noMmap})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ids := fillSegments(t, s, 300)
	keep := map[hash.Hash]bool{}
	for i, id := range ids {
		if i < 100 {
			keep[id] = true
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Survivors must never error; garbage may come and go.
				if _, err := s.Get(ids[(g*31+i)%100]); err != nil {
					panic(fmt.Sprintf("live chunk unreadable during sweep: %v", err))
				}
				s.Get(ids[100+(g*17+i)%200])
			}
		}(g)
	}
	wg.Add(1)
	go func() { // concurrent writer of fresh chunks
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if _, err := s.Put(fileChunk(10000 + i)); err != nil {
				panic(err)
			}
		}
	}()
	original := map[hash.Hash]bool{}
	for _, id := range ids {
		original[id] = true
	}
	for pass := 0; pass < 3; pass++ {
		// Survivors and anything the concurrent writer added stay; the
		// garbage half of the original set goes.
		if _, err := s.Sweep(func(id hash.Hash) bool {
			return keep[id] || !original[id]
		}, 0); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	for _, id := range ids[:100] {
		if _, err := s.Get(id); err != nil {
			t.Fatalf("survivor lost: %v", err)
		}
	}
}
