package store

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"forkbase/internal/hash"
)

// TestFileStoreSyncPolicies pins durability plumbing for every policy:
// concurrent writers commit batches, the store closes, and a reopen must
// see every chunk.  (Crash-window semantics differ per policy; what must
// never differ is that an fsynced, cleanly closed store loses nothing.)
func TestFileStoreSyncPolicies(t *testing.T) {
	policies := map[string]FileStoreOptions{
		"none":     {SyncPolicy: SyncNone},
		"always":   {SyncPolicy: SyncAlways},
		"group":    {SyncPolicy: SyncGroup},
		"interval": {SyncPolicy: SyncInterval, SyncEvery: time.Millisecond},
	}
	for name, opts := range policies {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			opts.SegmentSize = 4096
			s, err := OpenFileStoreWith(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			const writers, perWriter = 8, 25
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						if _, err := s.Put(fileChunk(w*1000 + i)); err != nil {
							panic(err)
						}
					}
				}(w)
			}
			wg.Wait()
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2, err := OpenFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if got, want := s2.Len(), writers*perWriter; got != want {
				t.Fatalf("reopen sees %d chunks, want %d", got, want)
			}
			for w := 0; w < writers; w++ {
				for i := 0; i < perWriter; i++ {
					if _, err := s2.Get(fileChunk(w*1000 + i).ID()); err != nil {
						t.Fatalf("chunk (%d,%d) lost: %v", w, i, err)
					}
				}
			}
		})
	}
}

// TestGroupSyncerCoalesces pins the leader-cohort shape deterministically:
// the first caller leads and fsyncs; waiters arriving while that round runs
// are all covered by exactly one follow-up round.
func TestGroupSyncerCoalesces(t *testing.T) {
	var g groupSyncer
	var calls atomic.Int32
	firstRunning := make(chan struct{})
	release := make(chan struct{})
	do := func() error {
		if calls.Add(1) == 1 {
			close(firstRunning)
			<-release
		}
		return nil
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); g.sync(do) }() // leader
	<-firstRunning
	const cohort = 10
	for i := 0; i < cohort; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); g.sync(do) }()
	}
	// Wait until the whole cohort is enqueued behind the in-flight round.
	for {
		g.mu.Lock()
		n := len(g.waiters)
		g.mu.Unlock()
		if n == cohort {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 2 {
		t.Fatalf("do() ran %d times; want 2 (leader round + one coalesced cohort round)", got)
	}
}

// fixedTuner is a Store advertising a sink-hasher preference.
type fixedTuner struct {
	Store
	n int
}

func (f fixedTuner) SinkHashers() int { return f.n }
func (f fixedTuner) Unwrap() Store    { return f.Store }

// TestSinkHashersDiscovery pins the capability walk: preferences surface
// through wrapper layers (verify, counting, tuning), an inner 0 keeps
// walking, and WithSinkHashers overrides whatever is beneath it.
func TestSinkHashersDiscovery(t *testing.T) {
	base := NewMemStore()
	if got := SinkHashersOf(base); got != 0 {
		t.Fatalf("plain MemStore preference = %d, want 0", got)
	}
	layered := NewVerifyingStore(NewCountingStore(WithSinkHashers(base, 3)))
	if got := SinkHashersOf(layered); got != 3 {
		t.Fatalf("layered preference = %d, want 3", got)
	}
	// -1 (synchronous) must survive the walk — it is a preference, not a
	// "keep walking" marker.
	if got := SinkHashersOf(NewCountingStore(WithSinkHashers(base, -1))); got != -1 {
		t.Fatalf("sync preference = %d, want -1", got)
	}
	// A tuner advertising 0 is "no preference": the walk keeps descending.
	if got := SinkHashersOf(fixedTuner{Store: WithSinkHashers(base, 2), n: 0}); got != 2 {
		t.Fatalf("zero tuner should defer to inner, got %d", got)
	}
	// WithSinkHashers(st, 0) is a no-op, not a wrapper.
	if st := WithSinkHashers(base, 0); st != Store(base) {
		t.Fatal("WithSinkHashers(st, 0) should return st unchanged")
	}
	// The sink actually honors a discovered synchronous preference: no
	// hasher goroutines means emissions hash inline (observable via Flush
	// being a pure barrier — hard to observe directly, so settle for the
	// sink completing correctly against the tuned store).
	sink := NewChunkSink(WithSinkHashers(base, -1), SinkOptions{})
	for i := 0; i < 10; i++ {
		if _, err := sink.Emit(fileChunk(i).Type(), fileChunk(i).Data()); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if base.Len() != 10 {
		t.Fatalf("tuned sink stored %d chunks, want 10", base.Len())
	}
}

// TestSweepMovedAccounting pins the compaction accounting the parallel
// liveness phase feeds: MovedIDs must name exactly the surviving chunks of
// rewritten segments, MovedBytes their on-disk volume, and every moved
// chunk must remain readable.
func TestSweepMovedAccounting(t *testing.T) {
	s, err := OpenFileStoreSegmented(t.TempDir(), 2048)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ids := fillSegments(t, s, 200)
	keep := map[hash.Hash]bool{}
	for i, id := range ids {
		if i%2 == 0 {
			keep[id] = true
		}
	}
	res, err := s.Sweep(sweepKeep(keep), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MovedIDs) == 0 || res.MovedBytes <= 0 {
		t.Fatalf("compaction moved nothing: %+v", res)
	}
	seen := map[hash.Hash]bool{}
	for _, id := range res.MovedIDs {
		if !keep[id] {
			t.Fatalf("swept chunk %s reported as moved", id.Short())
		}
		if seen[id] {
			t.Fatalf("chunk %s reported moved twice", id.Short())
		}
		seen[id] = true
		if _, err := s.Get(id); err != nil {
			t.Fatalf("moved chunk %s unreadable: %v", id.Short(), err)
		}
	}
	var liveBytes int64
	for _, id := range res.MovedIDs {
		c, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		// Each record is header + payload; MovedBytes counts on-disk spans,
		// so it must be at least the summed payload size.
		liveBytes += int64(len(c.Data()))
	}
	if res.MovedBytes < liveBytes {
		t.Fatalf("MovedBytes %d < summed payloads %d", res.MovedBytes, liveBytes)
	}
}
