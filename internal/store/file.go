package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"forkbase/internal/chunk"
	"forkbase/internal/hash"
)

// FileStore is a durable content-addressed chunk store backed by segmented
// append-only log files plus an in-memory index rebuilt on open.
//
// On-disk record format (all integers little-endian):
//
//	[32B id][4B payload length][1B type][payload]
//
// Records are immutable; deduplication means a chunk id appears at most once
// across all segments.  The store is safe for concurrent use.
//
// Reads are designed to proceed concurrently: Get takes only a read lock to
// consult the index, escalating to the write lock solely when the requested
// record may still sit in the active segment's write buffer (tracked by a
// flushed-bytes watermark).  Segment files are read through persistent
// read-only handles with positioned reads, so concurrent Gets on the same
// segment never contend on a shared file offset.
type FileStore struct {
	dir        string
	maxSegment int64

	mu         sync.RWMutex
	index      map[hash.Hash]recordLoc
	active     *os.File
	actBuf     *bufio.Writer
	actSeg     int
	actSize    int64
	actFlushed int64 // bytes of the active segment known to be on disk
	stats      Stats // Gets excluded; tracked in gets
	closed     bool

	gets atomic.Int64

	// readersMu guards the read-handle table.  Positioned reads hold it
	// shared for the duration of the ReadAt, so Close (which takes it
	// exclusively) can never close a handle out from under a reader.
	readersMu     sync.RWMutex
	readers       map[int]*os.File // per-segment read-only handles
	readersClosed bool
}

// maxReadHandles bounds the persistent read-handle table so a store with
// many segments cannot exhaust the process fd limit; excess handles are
// evicted (closed) on insert.
const maxReadHandles = 64

type recordLoc struct {
	segment int
	offset  int64
	length  int32 // payload length
	typ     chunk.Type
}

const recordHeader = hash.Size + 4 + 1

// DefaultSegmentSize is the size at which a new log segment is started.
const DefaultSegmentSize = 64 << 20

var _ BatchStore = (*FileStore)(nil)

// OpenFileStore opens (creating if needed) a file store rooted at dir.
// Existing segments are scanned to rebuild the index, so reopening a store
// recovers all previously written chunks.
func OpenFileStore(dir string) (*FileStore, error) {
	return OpenFileStoreSegmented(dir, DefaultSegmentSize)
}

// OpenFileStoreSegmented is OpenFileStore with a custom segment size,
// exposed so tests can force multi-segment layouts cheaply.
func OpenFileStoreSegmented(dir string, segSize int64) (*FileStore, error) {
	if segSize <= 0 {
		segSize = DefaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("filestore: %w", err)
	}
	fs := &FileStore{
		dir:        dir,
		maxSegment: segSize,
		index:      make(map[hash.Hash]recordLoc),
		readers:    make(map[int]*os.File),
	}
	if err := fs.recover(); err != nil {
		return nil, err
	}
	if err := fs.openActive(); err != nil {
		return nil, err
	}
	return fs, nil
}

func (f *FileStore) segmentPath(n int) string {
	return filepath.Join(f.dir, fmt.Sprintf("seg-%06d.log", n))
}

// recover scans all existing segments in order and rebuilds the index.
// Truncated trailing records (from a crash mid-append) are discarded.
func (f *FileStore) recover() error {
	for seg := 0; ; seg++ {
		path := f.segmentPath(seg)
		fi, err := os.Stat(path)
		if os.IsNotExist(err) {
			f.actSeg = seg
			if seg > 0 {
				f.actSeg = seg - 1
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("filestore: %w", err)
		}
		if err := f.scanSegment(seg, fi.Size()); err != nil {
			return err
		}
	}
}

func (f *FileStore) scanSegment(seg int, size int64) error {
	file, err := os.Open(f.segmentPath(seg))
	if err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	defer file.Close()
	r := bufio.NewReaderSize(file, 1<<20)
	var off int64
	hdr := make([]byte, recordHeader)
	for off < size {
		if _, err := io.ReadFull(r, hdr); err != nil {
			// Torn header at the tail: truncate logically and stop.
			return f.truncate(seg, off)
		}
		var id hash.Hash
		copy(id[:], hdr[:hash.Size])
		plen := int32(binary.LittleEndian.Uint32(hdr[hash.Size : hash.Size+4]))
		typ := chunk.Type(hdr[hash.Size+4])
		if plen < 0 || !typ.Valid() {
			return f.truncate(seg, off)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return f.truncate(seg, off)
		}
		c := chunk.New(typ, payload)
		if c.ID() != id {
			// Bit rot inside a record: refuse to index it but keep going;
			// readers will get ErrNotFound rather than corrupt data.
			off += int64(recordHeader) + int64(plen)
			continue
		}
		if _, dup := f.index[id]; !dup {
			f.index[id] = recordLoc{segment: seg, offset: off, length: plen, typ: typ}
			f.stats.UniqueChunks++
			f.stats.PhysicalBytes += int64(c.Size())
		}
		off += int64(recordHeader) + int64(plen)
	}
	return nil
}

// truncate drops a torn tail produced by a crash mid-write.
func (f *FileStore) truncate(seg int, off int64) error {
	if err := os.Truncate(f.segmentPath(seg), off); err != nil {
		return fmt.Errorf("filestore: truncating torn tail: %w", err)
	}
	return nil
}

func (f *FileStore) openActive() error {
	path := f.segmentPath(f.actSeg)
	file, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	fi, err := file.Stat()
	if err != nil {
		file.Close()
		return fmt.Errorf("filestore: %w", err)
	}
	f.active = file
	f.actBuf = bufio.NewWriterSize(file, 1<<20)
	f.actSize = fi.Size()
	f.actFlushed = fi.Size() // everything already on disk is flushed
	return nil
}

// Put implements Store.
func (f *FileStore) Put(c *chunk.Chunk) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return false, fmt.Errorf("filestore: closed")
	}
	return f.appendLocked(c)
}

// appendLocked performs the dedup check and buffered append of one chunk.
// Callers hold f.mu exclusively.
func (f *FileStore) appendLocked(c *chunk.Chunk) (bool, error) {
	f.stats.LogicalBytes += int64(c.Size())
	if _, ok := f.index[c.ID()]; ok {
		f.stats.DedupHits++
		return false, nil
	}
	if f.actSize >= f.maxSegment {
		if err := f.rotate(); err != nil {
			return false, err
		}
	}
	var hdr [recordHeader]byte
	id := c.ID()
	copy(hdr[:hash.Size], id[:])
	binary.LittleEndian.PutUint32(hdr[hash.Size:hash.Size+4], uint32(len(c.Data())))
	hdr[hash.Size+4] = byte(c.Type())
	if _, err := f.actBuf.Write(hdr[:]); err != nil {
		return false, fmt.Errorf("filestore: %w", err)
	}
	if _, err := f.actBuf.Write(c.Data()); err != nil {
		return false, fmt.Errorf("filestore: %w", err)
	}
	f.index[id] = recordLoc{segment: f.actSeg, offset: f.actSize, length: int32(len(c.Data())), typ: c.Type()}
	f.actSize += int64(recordHeader) + int64(len(c.Data()))
	f.stats.UniqueChunks++
	f.stats.PhysicalBytes += int64(c.Size())
	return true, nil
}

// PutBatch implements BatchStore with group commit: one write-lock
// acquisition, one dedup index pass and one buffered-write sequence for the
// whole batch, closed by a single Flush so every record of the batch is on
// disk (modulo OS caching) when PutBatch returns.  Records are laid out
// exactly as per-chunk Puts would lay them out, so recovery after a crash
// mid-batch truncates at the first torn record and keeps every fully-written
// one.  Duplicate ids inside one batch dedup against each other.
func (f *FileStore) PutBatch(cs []*chunk.Chunk) ([]bool, error) {
	fresh := make([]bool, len(cs))
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fresh, fmt.Errorf("filestore: closed")
	}
	for i, c := range cs {
		fr, err := f.appendLocked(c)
		if err != nil {
			return fresh, err
		}
		fresh[i] = fr
	}
	// Group commit: one flush per batch instead of relying on lazy flushes.
	if err := f.actBuf.Flush(); err != nil {
		return fresh, fmt.Errorf("filestore: %w", err)
	}
	f.actFlushed = f.actSize
	return fresh, nil
}

func (f *FileStore) rotate() error {
	if err := f.actBuf.Flush(); err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	if err := f.active.Close(); err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	f.actSeg++
	return f.openActive()
}

// Get implements Store.  The common case — a record fully flushed to its
// segment — needs only the shared read lock; the write lock is taken just
// long enough to flush when the record may still be buffered.
func (f *FileStore) Get(id hash.Hash) (*chunk.Chunk, error) {
	f.mu.RLock()
	loc, ok := f.index[id]
	needFlush := ok && loc.segment == f.actSeg &&
		loc.offset+int64(recordHeader)+int64(loc.length) > f.actFlushed
	f.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	f.gets.Add(1)
	if needFlush {
		f.mu.Lock()
		if !f.closed && loc.segment == f.actSeg {
			if err := f.actBuf.Flush(); err != nil {
				f.mu.Unlock()
				return nil, fmt.Errorf("filestore: %w", err)
			}
			f.actFlushed = f.actSize
		}
		f.mu.Unlock()
	}
	payload := make([]byte, loc.length)
	if err := f.readRecord(loc.segment, loc.offset+recordHeader, payload); err != nil {
		return nil, err
	}
	c := chunk.New(loc.typ, payload)
	if err := c.Verify(id); err != nil {
		return nil, err
	}
	return c, nil
}

// readRecord fills payload from a segment via a persistent read-only handle,
// opening it on first use.  The read executes under the shared reader lock,
// so handles are never closed (by Close or eviction) mid-read; positioned
// reads make one handle safe for any number of concurrent Gets.
func (f *FileStore) readRecord(seg int, off int64, payload []byte) error {
	for {
		f.readersMu.RLock()
		if f.readersClosed {
			f.readersMu.RUnlock()
			return fmt.Errorf("filestore: closed")
		}
		file, ok := f.readers[seg]
		if ok {
			_, err := file.ReadAt(payload, off)
			f.readersMu.RUnlock()
			if err != nil {
				return fmt.Errorf("filestore: %w", err)
			}
			return nil
		}
		f.readersMu.RUnlock()

		// Miss: open and insert under the exclusive lock, then retry the
		// read path (another goroutine may have won the race; that's fine).
		f.readersMu.Lock()
		if f.readersClosed {
			f.readersMu.Unlock()
			return fmt.Errorf("filestore: closed")
		}
		if _, ok := f.readers[seg]; !ok {
			file, err := os.Open(f.segmentPath(seg))
			if err != nil {
				f.readersMu.Unlock()
				return fmt.Errorf("filestore: %w", err)
			}
			// Bound the table: evict an arbitrary other handle.  No reader
			// is mid-ReadAt here (we hold the lock exclusively).
			for evict, h := range f.readers {
				if len(f.readers) < maxReadHandles {
					break
				}
				h.Close()
				delete(f.readers, evict)
			}
			f.readers[seg] = file
		}
		f.readersMu.Unlock()
	}
}

// Has implements Store.
func (f *FileStore) Has(id hash.Hash) (bool, error) {
	f.mu.RLock()
	_, ok := f.index[id]
	f.mu.RUnlock()
	return ok, nil
}

// Stats implements Store.
func (f *FileStore) Stats() Stats {
	f.mu.RLock()
	s := f.stats
	f.mu.RUnlock()
	s.Gets = f.gets.Load()
	return s
}

// Flush forces buffered appends to the OS.
func (f *FileStore) Flush() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.actBuf.Flush(); err != nil {
		return err
	}
	f.actFlushed = f.actSize
	return nil
}

// Sync flushes and fsyncs the active segment.
func (f *FileStore) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.actBuf.Flush(); err != nil {
		return err
	}
	f.actFlushed = f.actSize
	return f.active.Sync()
}

// Close flushes and closes the store.  Further operations fail.
func (f *FileStore) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	f.readersMu.Lock()
	f.readersClosed = true
	for _, r := range f.readers {
		r.Close()
	}
	f.readers = nil
	f.readersMu.Unlock()
	if err := f.actBuf.Flush(); err != nil {
		return err
	}
	return f.active.Close()
}
