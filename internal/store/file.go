package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"forkbase/internal/chunk"
	"forkbase/internal/hash"
)

// FileStore is a durable content-addressed chunk store backed by segmented
// append-only log files plus an in-memory index rebuilt on open.
//
// On-disk record format (all integers little-endian):
//
//	[32B id][4B payload length][1B type][payload]
//
// Records are immutable; deduplication means a chunk id appears at most once
// in the index (compaction may briefly leave a duplicate copy on disk after
// a crash; recovery collapses it).  The store is safe for concurrent use.
//
// Segment lifecycle:
//
//	active  — the tail segment; appends go through a buffered writer, reads
//	          take the write lock just long enough to flush the buffer.
//	sealed  — a segment the tail rotated past (or found on open).  Sealed
//	          segments are immutable, fsynced, and memory-mapped: Get serves
//	          a zero-copy slice of the mapping without a syscall, a copy, or
//	          a hash (the id comes from the index; the chunk is marked
//	          *claimed* so the engine's verifying layer rehashes it).
//	retired — a sealed segment rewritten by compaction.  Its file is
//	          unlinked, but the mapping is parked so zero-copy slices
//	          handed out earlier stay valid: at least until the *next*
//	          sweep, and until Close while at most maxRetiredMaps retired
//	          mappings exist (older ones are released at sweep starts).
//
// The index is sharded indexShards ways, so concurrent readers of different
// chunks never contend on one mutex; only the active tail keeps a single
// write lock.
//
// Zero-copy contract: payloads returned by Get for sealed segments alias
// the segment mapping.  They are valid until Close, except that data whose
// segment was compacted away is only guaranteed through the sweep *after*
// the one that retired it — callers holding chunk data across multiple GC
// cycles (or past Close) must copy.  On platforms without mmap (and with
// the NoMmap option) every read falls back to positioned reads through
// persistent per-segment handles, which copy and verify as before.
type FileStore struct {
	dir        string
	maxSegment int64
	noMmap     bool
	syncPolicy SyncPolicy

	// group coalesces SyncGroup fsyncs; the sync loop drives SyncInterval.
	group    groupSyncer
	syncStop chan struct{}
	syncOnce sync.Once // guards closing syncStop
	syncWG   sync.WaitGroup

	shards [indexShards]indexShard

	// mu guards the write path: the active segment, stats, per-segment disk
	// accounting, and compaction.  Reads of sealed segments never take it.
	mu         sync.Mutex
	active     *os.File
	actBuf     *bufio.Writer
	actSize    int64
	actFlushed int64 // bytes of the active segment known to be on disk
	stats      Stats // Gets excluded; tracked in gets
	segUse     map[int]*segUsage
	graceSeg   int // first segment of the young generation (see Sweep)
	closed     bool

	actSeg atomic.Int64 // current active segment number (lock-free read path)

	// placeEpoch counts the events after which previously-served bytes for an
	// id may live somewhere new (compaction rewrites, quarantine rescues).
	// The verifying layer stamps verified-id entries with it, so a remap can
	// never satisfy a stale "verified" hit.  Sealing does not bump it: a seal
	// changes how bytes are served, not which bytes an id resolves to.
	placeEpoch atomic.Uint64

	// segMu guards the sealed-segment table and the retired list.
	segMu   sync.RWMutex
	sealed  map[int]*mseg
	retired []*mseg // parked mappings of compacted segments (munmap at Close)

	gets atomic.Int64

	// verifiedServes counts GetVerified calls answered with a fresh verified
	// stamp (see MarkVerified) — reads where the verifying layer above was
	// told it can skip the rehash.
	verifiedServes atomic.Int64

	// readersMu guards the read-handle table used by the active tail and the
	// no-mmap fallback.  Positioned reads hold it shared for the duration of
	// the ReadAt, so Close (which takes it exclusively) can never close a
	// handle out from under a reader.
	readersMu     sync.RWMutex
	readers       map[int]*os.File
	readersClosed bool

	// hook, when set, runs at the named crash points of the segment
	// lifecycle (see CrashPoint* constants).  Fault-injection harnesses
	// panic or snapshot the directory there to make torn-write recovery
	// tests systematic instead of ad hoc.
	hook func(point string, seg int)

	// scrubMu guards the scrub/health state (see scrub.go).  Lock order:
	// f.mu → scrubMu → shard locks; Health takes scrubMu without f.mu.
	scrubMu     sync.Mutex
	lastScrub   *ScrubStats
	lastScrubAt time.Time
	// lost holds ids whose every on-disk copy was found damaged; entries are
	// dropped once the id is indexed again (repair).
	lost map[hash.Hash]struct{}
}

// Named crash points, in lifecycle order.  Each fires with the relevant
// segment number while the store's invariants are at their most fragile:
// recovery must succeed from a crash at any of them.
const (
	// CrashRotateBeforeSeal: the active segment is flushed, fsynced and
	// closed, but not yet renamed/sealed.
	CrashRotateBeforeSeal = "rotate.before-seal"
	// CrashRotateAfterSeal: the segment is sealed but the next active
	// segment does not exist yet.
	CrashRotateAfterSeal = "rotate.after-seal"
	// CrashCompactAfterRewrite: every victim's live records are rewritten
	// into the tail but the durability barrier (flush+fsync) has not run.
	CrashCompactAfterRewrite = "compact.after-rewrite"
	// CrashCompactBeforeUnlink: the durability barrier has run and the
	// victim segment is about to be unlinked.
	CrashCompactBeforeUnlink = "compact.before-unlink"
)

// SetCrashHook installs fn at every named crash point (nil uninstalls).
// fn runs synchronously on the mutating goroutine with store locks held —
// it must only observe (snapshot the directory) or panic (simulated crash),
// never call back into the store.
func (f *FileStore) SetCrashHook(fn func(point string, seg int)) { f.hook = fn }

// at fires the named crash point.
func (f *FileStore) at(point string, seg int) {
	if f.hook != nil {
		f.hook(point, seg)
	}
}

// indexShards is the sharding factor of the in-memory index.  Shard choice
// uses the top byte of the (uniform) chunk id, so load is even.
const indexShards = 16

type indexShard struct {
	mu sync.RWMutex
	m  map[hash.Hash]recordLoc
}

// segUsage is the per-segment disk accounting compaction decides from.
type segUsage struct {
	total int64 // bytes of records written to the segment
	dead  int64 // bytes of records no longer referenced by the index
}

// mseg is a sealed segment's memory mapping.  refs starts at 1 (the store's
// own reference); Get acquires it around each zero-copy read, and Close
// drops the store reference — the mapping is released when the count drains,
// so an in-flight read can never fault.  Compacted segments keep the store
// reference until Close (their file is already unlinked), which is what
// keeps previously returned zero-copy slices valid.
type mseg struct {
	seg  int
	data []byte
	refs atomic.Int64
}

func (m *mseg) acquire() bool {
	for {
		r := m.refs.Load()
		if r <= 0 {
			return false
		}
		if m.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

func (m *mseg) release() {
	if m.refs.Add(-1) == 0 {
		_ = munmapFile(m.data)
	}
}

// maxReadHandles bounds the persistent read-handle table so a store with
// many segments cannot exhaust the process fd limit; excess handles are
// evicted (closed) on insert.
const maxReadHandles = 64

// maxRetiredMaps bounds the parked mappings of compacted segments so a
// long-running store with a background compactor does not accumulate
// address space without bound: the most recent retirements stay mapped
// (keeping recently handed-out zero-copy slices valid), and older ones are
// released — by then their relocated chunks have long been re-served from
// their new homes and their cache entries purged.  Callers holding
// zero-copy data across many GC cycles must copy (the documented
// long-term-hold rule).
const maxRetiredMaps = 8

type recordLoc struct {
	segment int
	offset  int64
	length  int32 // payload length
	typ     chunk.Type
	// verifiedAt is the placement epoch at which the verifying layer last
	// rehashed this record's bytes, plus one; zero means never.  The stamp is
	// minted only by MarkVerified (called by a VerifyingStore after a
	// successful recheck) and dies with the entry: every relocation —
	// compaction, quarantine rescue, repair — builds a fresh recordLoc, and an
	// epoch bump retires surviving stamps wholesale.
	verifiedAt uint64
}

// diskBytes is the on-disk footprint of the record at loc.
func (l recordLoc) diskBytes() int64 { return int64(recordHeader) + int64(l.length) }

const recordHeader = hash.Size + 4 + 1

// DefaultSegmentSize is the size at which a new log segment is started.
const DefaultSegmentSize = 64 << 20

// SyncPolicy selects when the active tail is fsynced.
type SyncPolicy int

const (
	// SyncNone leaves tail durability to segment rotation and explicit Sync
	// calls — the historical behavior and the default.  Sealed segments are
	// always fsynced regardless of policy.
	SyncNone SyncPolicy = iota
	// SyncAlways flushes and fsyncs the tail after every Put and PutBatch.
	// Every acknowledged write is durable, at one fsync per commit.
	SyncAlways
	// SyncGroup gives SyncAlways durability at a fraction of the fsyncs
	// under concurrency: committers entering while an fsync is in flight
	// park on a shared barrier, and the leader's next fsync covers the whole
	// cohort.  With W concurrent writers the fsync rate tends toward one per
	// W commits; a lone writer degenerates to SyncAlways.
	SyncGroup
	// SyncInterval fsyncs the tail from a background ticker every SyncEvery
	// (default 2ms): commits return immediately and the crash-loss window is
	// bounded by the interval instead of by segment rotation.
	SyncInterval
)

// DefaultSyncEvery is the SyncInterval ticker period when SyncEvery is 0.
const DefaultSyncEvery = 2 * time.Millisecond

// FileStoreOptions tune OpenFileStoreWith.
type FileStoreOptions struct {
	// SegmentSize is the size at which the active segment rotates
	// (0 = DefaultSegmentSize).
	SegmentSize int64
	// NoMmap disables memory-mapping of sealed segments; all reads use
	// positioned pread through persistent handles (the pre-mmap behavior,
	// kept as the portability fallback and as the benchmark baseline).
	NoMmap bool
	// SyncPolicy selects when the active tail is fsynced (default SyncNone).
	SyncPolicy SyncPolicy
	// SyncEvery is the SyncInterval ticker period (0 = DefaultSyncEvery);
	// ignored under the other policies.
	SyncEvery time.Duration
}

// groupSyncer coalesces concurrent fsync requests: the first caller becomes
// the leader and keeps fsyncing until no new waiters arrived during the last
// round; everyone whose request was covered by a round gets that round's
// result.  Waiter channels are buffered so the leader never blocks handing
// out results.
type groupSyncer struct {
	mu      sync.Mutex
	waiters []chan error
	leading bool
}

// sync enqueues one request and returns once a do() round covering it ran.
func (g *groupSyncer) sync(do func() error) error {
	ch := make(chan error, 1)
	g.mu.Lock()
	g.waiters = append(g.waiters, ch)
	if g.leading {
		g.mu.Unlock()
		return <-ch
	}
	g.leading = true
	for {
		batch := g.waiters
		g.waiters = nil
		if len(batch) == 0 {
			g.leading = false
			g.mu.Unlock()
			return <-ch
		}
		g.mu.Unlock()
		err := do()
		for _, w := range batch {
			w <- err
		}
		g.mu.Lock()
	}
}

var (
	_ BatchStore            = (*FileStore)(nil)
	_ GenerationalCollector = (*FileStore)(nil)
)

// GraceGenerations marks the online-sweep grace capability (see
// store.GenerationalCollector); Sweep documents the semantics.
func (f *FileStore) GraceGenerations() {}

// VerifyCacheTrusted implements VerifyCacheTruster: the store owns its local
// disk, so a verification performed here stays valid until the placement
// epoch moves or scrub/heal says otherwise.
func (f *FileStore) VerifyCacheTrusted() bool { return true }

// PlacementEpoch implements PlacementEpocher.
func (f *FileStore) PlacementEpoch() uint64 { return f.placeEpoch.Load() }

// OpenFileStore opens (creating if needed) a file store rooted at dir.
// Existing segments are scanned to rebuild the index, so reopening a store
// recovers all previously written chunks.
func OpenFileStore(dir string) (*FileStore, error) {
	return OpenFileStoreWith(dir, FileStoreOptions{})
}

// OpenFileStoreSegmented is OpenFileStore with a custom segment size,
// exposed so tests can force multi-segment layouts cheaply.
func OpenFileStoreSegmented(dir string, segSize int64) (*FileStore, error) {
	return OpenFileStoreWith(dir, FileStoreOptions{SegmentSize: segSize})
}

// OpenFileStoreWith opens a file store with explicit options.
func OpenFileStoreWith(dir string, opts FileStoreOptions) (*FileStore, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("filestore: %w", err)
	}
	fs := &FileStore{
		dir:        dir,
		maxSegment: opts.SegmentSize,
		noMmap:     opts.NoMmap || !mmapSupported,
		syncPolicy: opts.SyncPolicy,
		segUse:     make(map[int]*segUsage),
		sealed:     make(map[int]*mseg),
		readers:    make(map[int]*os.File),
	}
	for i := range fs.shards {
		fs.shards[i].m = make(map[hash.Hash]recordLoc)
	}
	if err := fs.recover(); err != nil {
		return nil, err
	}
	if err := fs.openActive(); err != nil {
		return nil, err
	}
	// Everything sealed before this open is old; the resumed tail is of
	// unknown age and stays in the young generation until the first sweep.
	fs.graceSeg = int(fs.actSeg.Load())
	if opts.SyncPolicy == SyncInterval {
		every := opts.SyncEvery
		if every <= 0 {
			every = DefaultSyncEvery
		}
		fs.syncStop = make(chan struct{})
		fs.syncWG.Add(1)
		go fs.syncLoop(every)
	}
	return fs, nil
}

// syncLoop is the SyncInterval ticker: one tail fsync per period while the
// store is open.  Sync errors here are dropped — the same write surfaces the
// failure on the next rotation or explicit Sync, and a best-effort ticker
// has no caller to report to.
func (f *FileStore) syncLoop(every time.Duration) {
	defer f.syncWG.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-f.syncStop:
			return
		case <-ticker.C:
			_ = f.Sync()
		}
	}
}

// stopSyncLoop stops the SyncInterval ticker (idempotent, no-op for other
// policies).  Must be called before f.mu is held: the loop's in-flight Sync
// takes f.mu, so waiting under it would deadlock.
func (f *FileStore) stopSyncLoop() {
	if f.syncStop == nil {
		return
	}
	f.syncOnce.Do(func() { close(f.syncStop) })
	f.syncWG.Wait()
}

// afterCommit applies the tail sync policy after a Put/PutBatch released
// f.mu.  SyncGroup funnels through the shared barrier: under concurrency the
// leader's fsync covers every committer that arrived while it ran.
func (f *FileStore) afterCommit() error {
	switch f.syncPolicy {
	case SyncAlways:
		return f.Sync()
	case SyncGroup:
		return f.group.sync(f.Sync)
	default:
		return nil
	}
}

func (f *FileStore) segmentPath(n int) string {
	return filepath.Join(f.dir, fmt.Sprintf("seg-%06d.log", n))
}

func (f *FileStore) shard(id hash.Hash) *indexShard {
	return &f.shards[id[0]&(indexShards-1)]
}

func (f *FileStore) lookup(id hash.Hash) (recordLoc, bool) {
	sh := f.shard(id)
	sh.mu.RLock()
	loc, ok := sh.m[id]
	sh.mu.RUnlock()
	return loc, ok
}

// listSegments returns the numbers of existing segment files, sorted.
// Compaction leaves gaps in the numbering, so the directory is globbed
// rather than probed sequentially.
func (f *FileStore) listSegments() ([]int, error) {
	names, err := filepath.Glob(filepath.Join(f.dir, "seg-*.log"))
	if err != nil {
		return nil, fmt.Errorf("filestore: %w", err)
	}
	segs := make([]int, 0, len(names))
	for _, name := range names {
		base := filepath.Base(name)
		numStr := strings.TrimSuffix(strings.TrimPrefix(base, "seg-"), ".log")
		n, err := strconv.Atoi(numStr)
		if err != nil {
			continue // foreign file matching the glob; ignore
		}
		segs = append(segs, n)
	}
	sort.Ints(segs)
	return segs, nil
}

// recover scans all existing segments in ascending order and rebuilds the
// index (first occurrence of an id wins, which collapses the duplicate a
// crash mid-compaction can leave).  Truncated trailing records are
// discarded.  Every segment except the highest-numbered is sealed.
//
// The scan doubles as the scrubber's classifier (ok / corrupt / torn): the
// resulting ScrubStats seed the store's health state, so a store that comes
// up with rotted records reports unhealthy immediately instead of waiting
// for the first background scrub.  Torn tails alone are *not* unhealthy —
// they are the expected residue of a crash mid-append, and truncating them
// loses nothing acknowledged as durable.
func (f *FileStore) recover() error {
	segs, err := f.listSegments()
	if err != nil {
		return err
	}
	var st ScrubStats
	var claimed []hash.Hash // claimed ids of corrupt records
	for _, seg := range segs {
		fi, err := os.Stat(f.segmentPath(seg))
		if err != nil {
			return fmt.Errorf("filestore: %w", err)
		}
		if err := f.scanSegment(seg, fi.Size(), &st, &claimed); err != nil {
			return err
		}
	}
	act := 0
	if len(segs) > 0 {
		act = segs[len(segs)-1]
		for _, seg := range segs[:len(segs)-1] {
			if err := f.seal(seg); err != nil {
				return err
			}
		}
	}
	f.actSeg.Store(int64(act))
	// A corrupt record's claimed id is lost only when no intact copy of it
	// was indexed (a duplicate left by compaction may have survived).
	for _, id := range claimed {
		if _, ok := f.lookup(id); !ok {
			st.Lost = append(st.Lost, id)
		}
	}
	if len(segs) > 0 {
		f.noteScrub(st)
	}
	return nil
}

func (f *FileStore) scanSegment(seg int, size int64, st *ScrubStats, claimed *[]hash.Hash) error {
	file, err := os.Open(f.segmentPath(seg))
	if err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	defer file.Close()
	st.Segments++
	st.ScannedBytes += size
	use := f.useOf(seg)
	r := bufio.NewReaderSize(file, 1<<20)
	var off int64
	hdr := make([]byte, recordHeader)
	for off < size {
		if _, err := io.ReadFull(r, hdr); err != nil {
			// Torn header at the tail: truncate logically and stop.
			st.Torn++
			return f.truncate(seg, off, use)
		}
		var id hash.Hash
		copy(id[:], hdr[:hash.Size])
		plen := int32(binary.LittleEndian.Uint32(hdr[hash.Size : hash.Size+4]))
		typ := chunk.Type(hdr[hash.Size+4])
		if plen < 0 || !typ.Valid() {
			st.Torn++
			return f.truncate(seg, off, use)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			st.Torn++
			return f.truncate(seg, off, use)
		}
		rec := int64(recordHeader) + int64(plen)
		use.total += rec
		c := chunk.New(typ, payload)
		sh := f.shard(id)
		_, dup := sh.m[id]
		switch {
		case c.ID() != id:
			// Bit rot inside a record: refuse to index it but keep going;
			// readers will get ErrNotFound rather than corrupt data.
			use.dead += rec
			st.Corrupt++
			*claimed = append(*claimed, id)
		case dup:
			// Duplicate copy (crash between compaction's rewrite and its
			// unlink): the first occurrence won, this one is garbage.
			use.dead += rec
			st.Ok++
		default:
			sh.m[id] = recordLoc{segment: seg, offset: off, length: plen, typ: typ}
			f.stats.UniqueChunks++
			f.stats.PhysicalBytes += int64(c.Size())
			st.Ok++
		}
		off += rec
	}
	return nil
}

// truncate drops a torn tail produced by a crash mid-write.
func (f *FileStore) truncate(seg int, off int64, use *segUsage) error {
	if err := os.Truncate(f.segmentPath(seg), off); err != nil {
		return fmt.Errorf("filestore: truncating torn tail: %w", err)
	}
	use.total = off
	return nil
}

// useOf returns (creating if needed) the disk accounting of a segment.
// Callers hold f.mu, except during single-goroutine recovery.
func (f *FileStore) useOf(seg int) *segUsage {
	u, ok := f.segUse[seg]
	if !ok {
		u = &segUsage{}
		f.segUse[seg] = u
	}
	return u
}

// seal registers a finished segment for the mmap read path.  In no-mmap
// mode sealing is a no-op: reads keep going through positioned handles.
func (f *FileStore) seal(seg int) error {
	if f.noMmap {
		return nil
	}
	file, err := os.Open(f.segmentPath(seg))
	if err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	defer file.Close()
	fi, err := file.Stat()
	if err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	data, err := mmapFile(file, fi.Size())
	if err != nil {
		return fmt.Errorf("filestore: mmap seg %d: %w", seg, err)
	}
	m := &mseg{seg: seg, data: data}
	m.refs.Store(1)
	f.segMu.Lock()
	f.sealed[seg] = m
	f.segMu.Unlock()
	return nil
}

func (f *FileStore) openActive() error {
	seg := int(f.actSeg.Load())
	path := f.segmentPath(seg)
	file, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	fi, err := file.Stat()
	if err != nil {
		file.Close()
		return fmt.Errorf("filestore: %w", err)
	}
	f.active = file
	f.actBuf = bufio.NewWriterSize(file, 1<<20)
	f.actSize = fi.Size()
	f.actFlushed = fi.Size() // everything already on disk is flushed
	f.useOf(seg).total = fi.Size()
	return nil
}

// Put implements Store.
func (f *FileStore) Put(c *chunk.Chunk) (bool, error) {
	// The locked section sits in a closure so the deferred unlock also
	// covers simulated crashes (panics from injected crash hooks); the
	// fsync policy runs after the lock is released so SyncGroup cohorts
	// can coalesce behind one leader.
	fresh, err := func() (bool, error) {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.closed {
			return false, fmt.Errorf("filestore: closed")
		}
		return f.appendLocked(c)
	}()
	if err != nil || !fresh {
		return fresh, err
	}
	if err := f.afterCommit(); err != nil {
		return fresh, err
	}
	return fresh, nil
}

// appendLocked performs the dedup check and buffered append of one chunk.
// Callers hold f.mu.
func (f *FileStore) appendLocked(c *chunk.Chunk) (bool, error) {
	f.stats.LogicalBytes += int64(c.Size())
	id := c.ID()
	sh := f.shard(id)
	sh.mu.RLock()
	_, dup := sh.m[id]
	sh.mu.RUnlock()
	if dup {
		f.stats.DedupHits++
		return false, nil
	}
	if f.actSize >= f.maxSegment {
		if err := f.rotate(); err != nil {
			return false, err
		}
	}
	var hdr [recordHeader]byte
	copy(hdr[:hash.Size], id[:])
	binary.LittleEndian.PutUint32(hdr[hash.Size:hash.Size+4], uint32(len(c.Data())))
	hdr[hash.Size+4] = byte(c.Type())
	if _, err := f.actBuf.Write(hdr[:]); err != nil {
		return false, fmt.Errorf("filestore: %w", err)
	}
	if _, err := f.actBuf.Write(c.Data()); err != nil {
		return false, fmt.Errorf("filestore: %w", err)
	}
	seg := int(f.actSeg.Load())
	loc := recordLoc{segment: seg, offset: f.actSize, length: int32(len(c.Data())), typ: c.Type()}
	sh.mu.Lock()
	sh.m[id] = loc
	sh.mu.Unlock()
	f.actSize += loc.diskBytes()
	f.useOf(seg).total = f.actSize
	f.stats.UniqueChunks++
	f.stats.PhysicalBytes += int64(c.Size())
	return true, nil
}

// PutBatch implements BatchStore with group commit: one write-lock
// acquisition, one dedup index pass and one buffered-write sequence for the
// whole batch, closed by a single Flush so every record of the batch is on
// disk (modulo OS caching) when PutBatch returns.  Records are laid out
// exactly as per-chunk Puts would lay them out, so recovery after a crash
// mid-batch truncates at the first torn record and keeps every fully-written
// one.  Duplicate ids inside one batch dedup against each other.
func (f *FileStore) PutBatch(cs []*chunk.Chunk) ([]bool, error) {
	fresh := make([]bool, len(cs))
	// Locked section in a closure for panic-safe unlock (crash hooks);
	// the fsync policy runs unlocked, as in Put.
	wrote, err := func() (bool, error) {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.closed {
			return false, fmt.Errorf("filestore: closed")
		}
		wrote := false
		for i, c := range cs {
			fr, err := f.appendLocked(c)
			if err != nil {
				return wrote, err
			}
			fresh[i] = fr
			wrote = wrote || fr
		}
		// Group commit: one flush per batch instead of relying on lazy
		// flushes.
		if err := f.actBuf.Flush(); err != nil {
			return wrote, fmt.Errorf("filestore: %w", err)
		}
		f.actFlushed = f.actSize
		return wrote, nil
	}()
	if err != nil {
		return fresh, err
	}
	if wrote {
		if err := f.afterCommit(); err != nil {
			return fresh, err
		}
	}
	return fresh, nil
}

// rotate seals the active segment and starts the next one.  The sealed
// segment is flushed and fsynced first — sealed segments are always durable,
// which is what lets compaction unlink a victim as soon as its live records
// land in (or beyond) the new active segment.
func (f *FileStore) rotate() error {
	if err := f.actBuf.Flush(); err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	if err := f.active.Sync(); err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	if err := f.active.Close(); err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	seg := int(f.actSeg.Load())
	f.at(CrashRotateBeforeSeal, seg)
	if err := f.seal(seg); err != nil {
		return err
	}
	f.at(CrashRotateAfterSeal, seg)
	f.actSeg.Store(int64(seg + 1))
	return f.openActive()
}

// Get implements Store.
//
// Sealed segments (the common case for any store bigger than one segment)
// are served from their memory mapping: no syscall, no copy, no lock shared
// with other chunks — just a sharded index lookup and a refcount bump.  The
// returned chunk's payload aliases the mapping (valid until Close) and its
// id is *claimed* from the index rather than recomputed; the engine always
// reads through a VerifyingStore, which rehashes claimed chunks, so
// end-to-end tamper evidence is unchanged.  Raw callers that need integrity
// without the verifying layer can call Recheck themselves.
//
// Records still in the active tail take the write lock just long enough to
// flush the append buffer, then are read, copied and verified as before.
func (f *FileStore) Get(id hash.Hash) (*chunk.Chunk, error) {
	c, _, err := f.get(id, false)
	return c, err
}

// GetVerified is Get plus the verified-index verdict: verified reports that
// the verifying layer previously rehashed exactly these bytes (MarkVerified)
// and that no placement event has intervened, so the caller may skip its own
// recheck.  The chunk itself is still claimed — the verdict is a witness
// riding alongside, not a change to the chunk's trust state — so any reader
// that ignores the verdict gets exactly the plain Get contract.
func (f *FileStore) GetVerified(id hash.Hash) (c *chunk.Chunk, verified bool, err error) {
	return f.get(id, true)
}

func (f *FileStore) get(id hash.Hash, wantVerdict bool) (*chunk.Chunk, bool, error) {
	f.gets.Add(1)
	// Rotation or compaction can move a record between the index lookup and
	// the segment access; re-looking up and retrying converges because moves
	// are rare and forward-only.
	for attempt := 0; attempt < 8; attempt++ {
		loc, ok := f.lookup(id)
		if !ok {
			return nil, false, ErrNotFound
		}
		if int64(loc.segment) == f.actSeg.Load() {
			c, retry, err := f.getActive(id)
			if retry {
				continue
			}
			return c, false, err
		}
		if !f.noMmap {
			f.segMu.RLock()
			m := f.sealed[loc.segment]
			f.segMu.RUnlock()
			if m == nil || !m.acquire() {
				continue // sealing in progress, retired, or closing: retry
			}
			start := loc.offset + recordHeader
			end := start + int64(loc.length)
			if end > int64(len(m.data)) {
				m.release()
				return nil, false, fmt.Errorf("filestore: index points past seg %d mapping", loc.segment)
			}
			c := chunk.NewClaimed(loc.typ, m.data[start:end:end], id)
			m.release()
			// The stamp is fresh only while the placement epoch it was minted
			// at is still current; the epoch is read *after* the bytes, so a
			// concurrent compaction or quarantine can only turn a fresh
			// verdict stale, never the reverse.
			if wantVerdict && loc.verifiedAt == f.placeEpoch.Load()+1 {
				f.verifiedServes.Add(1)
				return c, true, nil
			}
			return c, false, nil
		}
		c, err := f.getPread(id, loc)
		if err == nil {
			return c, false, nil
		}
		// Compaction may have relocated the record and unlinked its segment
		// mid-read; if the index moved it, retry at the new home.
		cur, ok := f.lookup(id)
		if !ok {
			return nil, false, ErrNotFound // swept concurrently
		}
		if cur != loc {
			continue
		}
		return nil, false, err
	}
	return nil, false, fmt.Errorf("filestore: get %s: segment moved too many times", id.Short())
}

// MarkVerified records that the verifying layer rehashed id's bytes while the
// placement epoch was epoch.  The stamp is refused if placement has already
// moved on (the verified bytes may no longer be the served bytes), and is
// checked under the index shard lock so it cannot interleave with a
// compaction repointing the same entry.
func (f *FileStore) MarkVerified(id hash.Hash, epoch uint64) {
	sh := f.shard(id)
	sh.mu.Lock()
	if f.placeEpoch.Load() == epoch {
		if loc, ok := sh.m[id]; ok {
			loc.verifiedAt = epoch + 1
			sh.m[id] = loc
		}
	}
	sh.mu.Unlock()
}

// UnmarkVerified drops id's verified stamp (no-op if absent).  Scrub, heal,
// repair and GC route here through VerifyingStore.Invalidate whenever they
// learn the on-disk bytes are damaged, moved, or about to be rewritten.
func (f *FileStore) UnmarkVerified(id hash.Hash) {
	sh := f.shard(id)
	sh.mu.Lock()
	if loc, ok := sh.m[id]; ok && loc.verifiedAt != 0 {
		loc.verifiedAt = 0
		sh.m[id] = loc
	}
	sh.mu.Unlock()
}

// UnmarkAllVerified retires every verified stamp at once.  Implemented as a
// placement-epoch bump: stamps (and verified-set entries) are keyed to the
// epoch they were minted at, so advancing it invalidates all of them in O(1)
// without walking the index shards.
func (f *FileStore) UnmarkAllVerified() { f.placeEpoch.Add(1) }

// VerifiedServes reports how many Gets were answered with a fresh verified
// stamp since open.
func (f *FileStore) VerifiedServes() int64 { return f.verifiedServes.Load() }

// getActive reads a record that the index places in the active tail.  retry
// is true when the record moved (rotation/compaction) before the lock was
// acquired.
func (f *FileStore) getActive(id hash.Hash) (*chunk.Chunk, bool, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, false, fmt.Errorf("filestore: closed")
	}
	loc, ok := f.lookup(id) // re-read under mu: compaction cannot run here
	if !ok {
		f.mu.Unlock()
		return nil, false, ErrNotFound
	}
	if int64(loc.segment) != f.actSeg.Load() {
		f.mu.Unlock()
		return nil, true, nil
	}
	if loc.offset+loc.diskBytes() > f.actFlushed {
		if err := f.actBuf.Flush(); err != nil {
			f.mu.Unlock()
			return nil, false, fmt.Errorf("filestore: %w", err)
		}
		f.actFlushed = f.actSize
	}
	f.mu.Unlock()
	c, err := f.getPread(id, loc)
	if err != nil {
		// The tail may have sealed and been compacted away between the
		// unlock and the read; if the record moved (or vanished), have the
		// caller re-resolve rather than surfacing a spurious error.
		if cur, ok := f.lookup(id); !ok || cur != loc {
			return nil, true, nil
		}
	}
	return c, false, err
}

// getPread is the copying read path: positioned read through a persistent
// handle, then hash verification — the pre-mmap behavior, used for the
// active tail and in no-mmap mode.
func (f *FileStore) getPread(id hash.Hash, loc recordLoc) (*chunk.Chunk, error) {
	payload := make([]byte, loc.length)
	if err := f.readRecord(loc.segment, loc.offset+recordHeader, payload); err != nil {
		return nil, err
	}
	c := chunk.New(loc.typ, payload)
	if err := c.Verify(id); err != nil {
		return nil, err
	}
	return c, nil
}

// readRecord fills payload from a segment via a persistent read-only handle,
// opening it on first use.  The read executes under the shared reader lock,
// so handles are never closed (by Close or eviction) mid-read; positioned
// reads make one handle safe for any number of concurrent Gets.
func (f *FileStore) readRecord(seg int, off int64, payload []byte) error {
	for {
		f.readersMu.RLock()
		if f.readersClosed {
			f.readersMu.RUnlock()
			return fmt.Errorf("filestore: closed")
		}
		file, ok := f.readers[seg]
		if ok {
			_, err := file.ReadAt(payload, off)
			f.readersMu.RUnlock()
			if err != nil {
				return fmt.Errorf("filestore: %w", err)
			}
			return nil
		}
		f.readersMu.RUnlock()

		// Miss: open and insert under the exclusive lock, then retry the
		// read path (another goroutine may have won the race; that's fine).
		f.readersMu.Lock()
		if f.readersClosed {
			f.readersMu.Unlock()
			return fmt.Errorf("filestore: closed")
		}
		if _, ok := f.readers[seg]; !ok {
			file, err := os.Open(f.segmentPath(seg))
			if err != nil {
				f.readersMu.Unlock()
				return fmt.Errorf("filestore: %w", err)
			}
			// Bound the table: evict an arbitrary other handle.  No reader
			// is mid-ReadAt here (we hold the lock exclusively).
			for evict, h := range f.readers {
				if len(f.readers) < maxReadHandles {
					break
				}
				h.Close()
				delete(f.readers, evict)
			}
			f.readers[seg] = file
		}
		f.readersMu.Unlock()
	}
}

// dropReader closes and forgets the persistent handle of a segment (used
// when compaction retires it).
func (f *FileStore) dropReader(seg int) {
	f.readersMu.Lock()
	if h, ok := f.readers[seg]; ok {
		h.Close()
		delete(f.readers, seg)
	}
	f.readersMu.Unlock()
}

// Has implements Store.
func (f *FileStore) Has(id hash.Hash) (bool, error) {
	_, ok := f.lookup(id)
	return ok, nil
}

// IDs returns the ids of all indexed chunks (order unspecified); used by
// tests and diagnostics.
func (f *FileStore) IDs() []hash.Hash {
	var out []hash.Hash
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.RLock()
		for id := range sh.m {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	return out
}

// Len returns the number of distinct indexed chunks.
func (f *FileStore) Len() int {
	n := 0
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Stats implements Store.
func (f *FileStore) Stats() Stats {
	f.mu.Lock()
	s := f.stats
	f.mu.Unlock()
	s.Gets = f.gets.Load()
	return s
}

// DiskBytes returns the summed size of all live segment files — the store's
// physical footprint on disk (compacted segments stop counting the moment
// they are unlinked).
func (f *FileStore) DiskBytes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n int64
	for _, u := range f.segUse {
		n += u.total
	}
	return n
}

// Sweep implements Collector: it removes every chunk for which keep returns
// false from the index, then compacts sealed segments whose dead-byte ratio
// reaches minDeadRatio (0 = any garbage) by rewriting their live records
// into the active tail and unlinking the victims.
//
// Generational grace: an *online* sweep (minDeadRatio > 0, the mode the
// background compactor uses) never removes records written since the
// previous sweep — the caller's reachability view necessarily predates
// those writes, so freshly staged chunks whose references have not been
// published yet are exempt until the next pass.  A full sweep (ratio 0)
// collects everything the caller rejects; run it when writers are fenced
// or quiesced.
//
// Crash safety: victims are unlinked only after every rewritten record is
// flushed and fsynced (sealed segments are fsynced at rotation; the active
// tail is fsynced explicitly), so a crash at any point loses nothing — at
// worst a reopened store sees a duplicate copy (collapsed by recovery) or
// resurrects not-yet-compacted garbage (removed again by the next sweep).
//
// keep is called with the index locks held and must not call back into the
// store.  Writers are blocked for the duration; readers of sealed segments
// proceed throughout, and zero-copy slices already handed out stay valid —
// retired mappings are parked until Close (the oldest are released once
// more than maxRetiredMaps accumulate).
func (f *FileStore) Sweep(keep func(hash.Hash) bool, minDeadRatio float64) (SweepStats, error) {
	var res SweepStats
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return res, fmt.Errorf("filestore: closed")
	}
	// Age out mappings parked by *previous* sweeps beyond the retention
	// window.  Doing this at the start of a pass (rather than when a
	// mapping is parked) guarantees a retired mapping survives at least
	// until the next sweep, so slices handed out just before its
	// compaction stay valid well past the pass that moved the data.
	f.segMu.Lock()
	for len(f.retired) > maxRetiredMaps {
		f.retired[0].release()
		f.retired = f.retired[1:]
	}
	f.segMu.Unlock()
	young := -1 // full sweep: no generation is exempt
	if minDeadRatio > 0 {
		young = f.graceSeg
	}
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		for id, loc := range sh.m {
			if keep(id) {
				continue
			}
			if young >= 0 && loc.segment >= young {
				continue // grace: written since the previous sweep
			}
			delete(sh.m, id)
			res.Swept++
			res.SweptBytes += int64(1 + loc.length)
			res.SweptIDs = append(res.SweptIDs, id)
			f.stats.UniqueChunks--
			f.stats.PhysicalBytes -= int64(1 + loc.length)
			f.useOf(loc.segment).dead += loc.diskBytes()
		}
		sh.mu.Unlock()
	}
	if err := f.compactLocked(minDeadRatio, &res); err != nil {
		return res, err
	}
	// Everything on disk now predates this sweep; the generation boundary
	// moves to the (possibly fresh) tail.
	f.graceSeg = int(f.actSeg.Load())
	return res, nil
}

// compactLocked rewrites the live records of garbage-heavy segments into the
// active tail and unlinks the victims.  Callers hold f.mu.
func (f *FileStore) compactLocked(minDeadRatio float64, res *SweepStats) error {
	// Garbage in the active tail can only be reclaimed once the tail seals;
	// rotate it out of the way so a full sweep really returns the space.
	act := int(f.actSeg.Load())
	if u := f.segUse[act]; u != nil && u.dead > 0 && f.actSize > 0 {
		if err := f.actBuf.Flush(); err != nil {
			return fmt.Errorf("filestore: %w", err)
		}
		f.actFlushed = f.actSize
		if err := f.rotate(); err != nil {
			return err
		}
	}
	var victims []int
	for seg, u := range f.segUse {
		if seg == int(f.actSeg.Load()) || u.dead == 0 || u.total == 0 {
			continue
		}
		if float64(u.dead)/float64(u.total) >= minDeadRatio {
			victims = append(victims, seg)
		}
	}
	if len(victims) == 0 {
		return nil
	}
	sort.Ints(victims)
	// Records are about to move; retire every verified-id entry stamped with
	// the old epoch before any index repointing becomes visible to readers.
	f.placeEpoch.Add(1)
	// Phase 1 — parallel collect: scan each victim and liveness-check its
	// records on a bounded worker pool.  Safe under f.mu: no writer can move
	// records, so the index is stable; workers only RLock the shards and
	// read immutable segment data (the mapping, or a private ReadFile copy).
	collected, err := f.collectLive(victims)
	if err != nil {
		return err
	}
	// Phase 2 — serial append: rewrite the collected records into the tail
	// in victim order, offset order — byte-identical tail layout to the old
	// all-serial rewrite — and repoint the index.  All SweepStats accounting
	// (MovedIDs, MovedBytes — what core reports as Relocated) happens here
	// on one goroutine, race-clean by construction.
	for _, cv := range collected {
		if err := f.appendLive(cv, res); err != nil {
			return err
		}
	}
	f.at(CrashCompactAfterRewrite, victims[0])
	// Durability barrier: every rewritten record is on disk before any
	// victim disappears.  Records that landed in segments sealed during the
	// rewrite were fsynced by rotate; the tail needs an explicit sync.
	if err := f.actBuf.Flush(); err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	f.actFlushed = f.actSize
	if err := f.active.Sync(); err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	for _, seg := range victims {
		f.at(CrashCompactBeforeUnlink, seg)
		if err := os.Remove(f.segmentPath(seg)); err != nil {
			return fmt.Errorf("filestore: unlinking compacted seg %d: %w", seg, err)
		}
		res.ReclaimedBytes += f.segUse[seg].total
		delete(f.segUse, seg)
		f.dropReader(seg)
		f.segMu.Lock()
		if m := f.sealed[seg]; m != nil {
			delete(f.sealed, seg)
			// Park the mapping: zero-copy slices alias it until Close or
			// until it ages out of the retention window at a *later* sweep
			// (never this one — see the trim in Sweep).
			f.retired = append(f.retired, m)
		}
		f.segMu.Unlock()
		res.CompactedSegments++
	}
	res.ReclaimedBytes -= res.MovedBytes
	// Relocated records sit in the tail, where reads pay the locked
	// positioned-read path; seal it so they are served from a mapping like
	// the sealed data they replaced.
	if res.MovedBytes > 0 && f.actSize > 0 {
		if err := f.rotate(); err != nil {
			return err
		}
	}
	f.syncDir()
	return nil
}

// liveRecord is one record a compaction worker found still indexed at its
// original home: a span of the victim's data plus the fields needed to
// repoint the index after the span is re-appended.
type liveRecord struct {
	id   hash.Hash
	off  int64 // offset in the victim (start of the record header)
	rec  int64 // on-disk record size (header + payload)
	plen int32
	typ  chunk.Type
}

// collectedVictim is the phase-1 output for one victim segment.  data stays
// referenced until phase 2 has copied the spans out (the mapping cannot be
// released mid-compaction — the store holds its reference and sweeps are
// serialized under f.mu — and the ReadFile copy is private).
type collectedVictim struct {
	seg  int
	data []byte
	live []liveRecord
}

// collectLive scans the victim segments on parallel workers and returns, in
// victim order, the records still indexed at their original location.
// Callers hold f.mu, which is what makes the concurrent liveness check
// sound: nothing can move or insert records, so a record live here is still
// live when phase 2 rewrites it (phase 2's own repointing touches only
// records in *other* victims — a chunk has exactly one index entry).
func (f *FileStore) collectLive(victims []int) ([]*collectedVictim, error) {
	out := make([]*collectedVictim, len(victims))
	errs := make([]error, len(victims))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(victims) {
		workers = len(victims)
	}
	if workers > 8 {
		workers = 8
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(victims) {
					return
				}
				out[i], errs[i] = f.collectSegment(victims[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// collectSegment scans one victim and returns its live records in offset
// order.  Runs on a pool worker; reads shards only under their RLock.
func (f *FileStore) collectSegment(seg int) (*collectedVictim, error) {
	cv := &collectedVictim{seg: seg}
	f.segMu.RLock()
	if m := f.sealed[seg]; m != nil {
		cv.data = m.data
	}
	f.segMu.RUnlock()
	if cv.data == nil { // no-mmap mode: one buffered read of the victim
		b, err := os.ReadFile(f.segmentPath(seg))
		if err != nil {
			return nil, fmt.Errorf("filestore: %w", err)
		}
		cv.data = b
	}
	data := cv.data
	for off := int64(0); off < int64(len(data)); {
		if off+recordHeader > int64(len(data)) {
			break // torn tail already truncated logically at scan time
		}
		var id hash.Hash
		copy(id[:], data[off:off+hash.Size])
		plen := int64(int32(binary.LittleEndian.Uint32(data[off+hash.Size : off+hash.Size+4])))
		typ := chunk.Type(data[off+hash.Size+4])
		rec := int64(recordHeader) + plen
		if plen < 0 || !typ.Valid() || off+rec > int64(len(data)) {
			break
		}
		sh := f.shard(id)
		sh.mu.RLock()
		loc, ok := sh.m[id]
		sh.mu.RUnlock()
		if ok && loc.segment == seg && loc.offset == off {
			cv.live = append(cv.live, liveRecord{id: id, off: off, rec: rec, plen: int32(plen), typ: typ})
		}
		// Otherwise dead, or a duplicate whose other copy won.
		off += rec
	}
	return cv, nil
}

// appendLive rewrites one collected victim's live records into the active
// tail and repoints the index.  Callers hold f.mu.
func (f *FileStore) appendLive(cv *collectedVictim, res *SweepStats) error {
	for _, lr := range cv.live {
		if f.actSize >= f.maxSegment {
			if err := f.rotate(); err != nil {
				return err
			}
		}
		if _, err := f.actBuf.Write(cv.data[lr.off : lr.off+lr.rec]); err != nil {
			return fmt.Errorf("filestore: %w", err)
		}
		dst := int(f.actSeg.Load())
		newLoc := recordLoc{segment: dst, offset: f.actSize, length: lr.plen, typ: lr.typ}
		sh := f.shard(lr.id)
		sh.mu.Lock()
		sh.m[lr.id] = newLoc
		sh.mu.Unlock()
		f.actSize += lr.rec
		f.useOf(dst).total = f.actSize
		res.MovedIDs = append(res.MovedIDs, lr.id)
		res.MovedBytes += lr.rec
	}
	return nil
}

// syncDir fsyncs the store directory so unlinks and creates survive a crash
// (best-effort: some platforms cannot fsync directories).
func (f *FileStore) syncDir() {
	if d, err := os.Open(f.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// Flush forces buffered appends to the OS.
func (f *FileStore) Flush() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.actBuf.Flush(); err != nil {
		return err
	}
	f.actFlushed = f.actSize
	return nil
}

// Sync flushes and fsyncs the active segment.
func (f *FileStore) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		// A policy-driven sync racing Close is benign: Close flushed and
		// closed the tail already.
		return nil
	}
	if err := f.actBuf.Flush(); err != nil {
		return err
	}
	f.actFlushed = f.actSize
	return f.active.Sync()
}

// Close flushes and closes the store.  Further operations fail, and
// zero-copy payloads returned by Get become invalid: each segment mapping is
// released once its in-flight readers drain.
func (f *FileStore) Close() error {
	// Stop the interval sync loop before taking f.mu: its in-flight Sync
	// needs the lock to finish.
	f.stopSyncLoop()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	f.readersMu.Lock()
	f.readersClosed = true
	for _, r := range f.readers {
		r.Close()
	}
	f.readers = nil
	f.readersMu.Unlock()
	f.segMu.Lock()
	for _, m := range f.sealed {
		m.release() // drop the store reference; munmap when readers drain
	}
	f.sealed = map[int]*mseg{}
	for _, m := range f.retired {
		m.release()
	}
	f.retired = nil
	f.segMu.Unlock()
	if err := f.actBuf.Flush(); err != nil {
		return err
	}
	return f.active.Close()
}
