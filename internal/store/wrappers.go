package store

import (
	"errors"
	"sync"

	"forkbase/internal/chunk"
	"forkbase/internal/hash"
)

// CountingStore wraps a Store and records the byte increments of delimited
// phases, so experiments can report "loading dataset 2 increased storage by
// only 0.04 KB" exactly like Fig 4 of the paper.
//
// Concurrency: the wrapper itself holds no per-op state — delegated calls
// touch only the inner store — and Mark/Increments guard the snapshot
// slices with one mutex, so concurrent builder workers can write through a
// CountingStore while an experiment thread marks phases.
type CountingStore struct {
	Inner Store

	mu     sync.Mutex
	marks  []Stats
	labels []string
}

var _ Store = (*CountingStore)(nil)

// NewCountingStore wraps inner.
func NewCountingStore(inner Store) *CountingStore {
	return &CountingStore{Inner: inner}
}

// Put implements Store.
func (c *CountingStore) Put(ch *chunk.Chunk) (bool, error) { return c.Inner.Put(ch) }

// PutBatch implements BatchStore by delegating, so batched ingest stays
// visible to the phase accounting (the inner store's counters move exactly as
// they would for per-chunk Puts).
func (c *CountingStore) PutBatch(cs []*chunk.Chunk) ([]bool, error) { return PutBatch(c.Inner, cs) }

// GetBatch implements BatchReadStore by delegating.
func (c *CountingStore) GetBatch(ids []hash.Hash) ([]*chunk.Chunk, error) {
	return GetBatch(c.Inner, ids)
}

// HasBatch implements BatchReadStore by delegating.
func (c *CountingStore) HasBatch(ids []hash.Hash) ([]bool, error) { return HasBatch(c.Inner, ids) }

// Get implements Store.
func (c *CountingStore) Get(id hash.Hash) (*chunk.Chunk, error) { return c.Inner.Get(id) }

// Has implements Store.
func (c *CountingStore) Has(id hash.Hash) (bool, error) { return c.Inner.Has(id) }

// Stats implements Store.
func (c *CountingStore) Stats() Stats { return c.Inner.Stats() }

// Mark snapshots the current counters under a label.
func (c *CountingStore) Mark(label string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.marks = append(c.marks, c.Inner.Stats())
	c.labels = append(c.labels, label)
}

// Increment describes the storage change between two consecutive marks.
type Increment struct {
	Label         string
	PhysicalBytes int64 // bytes actually added to storage
	LogicalBytes  int64 // bytes that would have been added without dedup
	NewChunks     int64
	DedupHits     int64
}

// Increments reports the per-phase storage growth between consecutive marks.
// Call Mark before and after each phase; phase i is labelled with the label
// of its closing mark.
func (c *CountingStore) Increments() []Increment {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Increment
	for i := 1; i < len(c.marks); i++ {
		prev, cur := c.marks[i-1], c.marks[i]
		out = append(out, Increment{
			Label:         c.labels[i],
			PhysicalBytes: cur.PhysicalBytes - prev.PhysicalBytes,
			LogicalBytes:  cur.LogicalBytes - prev.LogicalBytes,
			NewChunks:     cur.UniqueChunks - prev.UniqueChunks,
			DedupHits:     cur.DedupHits - prev.DedupHits,
		})
	}
	return out
}

// MaliciousStore wraps a Store and simulates the paper's threat model
// (§II-D): "the storage is malicious, but the users keep track of the latest
// uid of every branch".  It can silently corrupt stored chunks or substitute
// forged ones; chunk verification at the read path must catch every attack.
type MaliciousStore struct {
	Inner Store

	mu        sync.Mutex
	corrupted map[hash.Hash][]byte // id -> forged payload served instead
	forgeType map[hash.Hash]chunk.Type
}

var _ Store = (*MaliciousStore)(nil)

// NewMaliciousStore wraps inner; it behaves honestly until an attack is
// injected.
func NewMaliciousStore(inner Store) *MaliciousStore {
	return &MaliciousStore{
		Inner:     inner,
		corrupted: make(map[hash.Hash][]byte),
		forgeType: make(map[hash.Hash]chunk.Type),
	}
}

// Put implements Store.
func (m *MaliciousStore) Put(ch *chunk.Chunk) (bool, error) { return m.Inner.Put(ch) }

// PutBatch implements BatchStore by delegating.
func (m *MaliciousStore) PutBatch(cs []*chunk.Chunk) ([]bool, error) { return PutBatch(m.Inner, cs) }

// GetBatch implements BatchReadStore: attacked ids are substituted exactly as
// in Get, so batched readers face the same threat model as point readers.
func (m *MaliciousStore) GetBatch(ids []hash.Hash) ([]*chunk.Chunk, error) {
	out := make([]*chunk.Chunk, len(ids))
	for i, id := range ids {
		c, err := m.Get(id)
		if errors.Is(err, ErrNotFound) {
			continue
		}
		if err != nil {
			return out, err
		}
		out[i] = c
	}
	return out, nil
}

// HasBatch implements BatchReadStore by delegating.
func (m *MaliciousStore) HasBatch(ids []hash.Hash) ([]bool, error) { return HasBatch(m.Inner, ids) }

// Has implements Store.
func (m *MaliciousStore) Has(id hash.Hash) (bool, error) { return m.Inner.Has(id) }

// Stats implements Store.
func (m *MaliciousStore) Stats() Stats { return m.Inner.Stats() }

// Get implements Store: it serves the forged payload for attacked ids.
//
// Note that the forged chunk is returned *as if it were genuine* — no error —
// because a malicious provider would not announce the substitution.
// Detection is the verifier's job.
func (m *MaliciousStore) Get(id hash.Hash) (*chunk.Chunk, error) {
	m.mu.Lock()
	payload, bad := m.corrupted[id]
	typ := m.forgeType[id]
	m.mu.Unlock()
	if bad {
		return chunk.New(typ, payload), nil
	}
	return m.Inner.Get(id)
}

// CorruptFlip arranges for future Gets of id to return the genuine payload
// with the bit at (offset, bit) flipped.  Returns false if id is unknown.
func (m *MaliciousStore) CorruptFlip(id hash.Hash, offset int, bit uint) (bool, error) {
	c, err := m.Inner.Get(id)
	if err != nil {
		if err == ErrNotFound {
			return false, nil
		}
		return false, err
	}
	data := append([]byte(nil), c.Data()...)
	if len(data) == 0 {
		return false, nil
	}
	offset %= len(data)
	data[offset] ^= 1 << (bit % 8)
	m.mu.Lock()
	m.corrupted[id] = data
	m.forgeType[id] = c.Type()
	m.mu.Unlock()
	return true, nil
}

// Forge arranges for future Gets of id to return an arbitrary payload.
func (m *MaliciousStore) Forge(id hash.Hash, typ chunk.Type, payload []byte) {
	m.mu.Lock()
	m.corrupted[id] = append([]byte(nil), payload...)
	m.forgeType[id] = typ
	m.mu.Unlock()
}

// Heal removes all injected attacks.
func (m *MaliciousStore) Heal() {
	m.mu.Lock()
	m.corrupted = make(map[hash.Hash][]byte)
	m.forgeType = make(map[hash.Hash]chunk.Type)
	m.mu.Unlock()
}

// AttackCount returns the number of ids currently being served forged data.
func (m *MaliciousStore) AttackCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.corrupted)
}

// VerifyingStore wraps a Store and checks every chunk read against its id,
// converting silent corruption into chunk.ErrCorrupt.  The ForkBase engine
// always reads through a VerifyingStore, which is how a uid certifies the
// entire reachable object graph.
type VerifyingStore struct {
	Inner Store
}

var _ Store = (*VerifyingStore)(nil)

// NewVerifyingStore wraps inner.
func NewVerifyingStore(inner Store) *VerifyingStore { return &VerifyingStore{Inner: inner} }

// Put implements Store.  Chunks whose id was merely *claimed* by an
// untrusted party (chunk.NewClaimed) are rehashed and rejected on mismatch,
// so forged content cannot enter the store under a genuine id.
func (v *VerifyingStore) Put(ch *chunk.Chunk) (bool, error) {
	if err := ch.Recheck(); err != nil {
		return false, err
	}
	return v.Inner.Put(ch)
}

// PutBatch implements BatchStore.  Every claimed chunk in the batch is
// rehashed before anything is written: a single forged chunk rejects the
// whole batch, keeping batched ingest exactly as tamper-evident as the
// per-chunk path.
func (v *VerifyingStore) PutBatch(cs []*chunk.Chunk) ([]bool, error) {
	for _, ch := range cs {
		if err := ch.Recheck(); err != nil {
			return make([]bool, len(cs)), err
		}
	}
	return PutBatch(v.Inner, cs)
}

// Has implements Store.
func (v *VerifyingStore) Has(id hash.Hash) (bool, error) { return v.Inner.Has(id) }

// HasBatch implements BatchReadStore by delegating (presence needs no
// verification; a forged chunk is caught when it is actually read).
func (v *VerifyingStore) HasBatch(ids []hash.Hash) ([]bool, error) { return HasBatch(v.Inner, ids) }

// GetBatch implements BatchReadStore: every returned chunk passes the same
// recheck-and-verify gauntlet as a point Get, so batched sync reads are
// exactly as tamper-evident as the point path.
func (v *VerifyingStore) GetBatch(ids []hash.Hash) ([]*chunk.Chunk, error) {
	out, err := GetBatch(v.Inner, ids)
	if err != nil {
		return out, err
	}
	for i, c := range out {
		if c == nil {
			continue
		}
		if err := c.Recheck(); err != nil {
			return out, err
		}
		if err := c.Verify(ids[i]); err != nil {
			return out, err
		}
	}
	return out, nil
}

// Stats implements Store.
func (v *VerifyingStore) Stats() Stats { return v.Inner.Stats() }

// Get implements Store, verifying content against id.  Chunks whose id was
// merely claimed by the inner store (FileStore's zero-copy mmap path trusts
// its own index) are rehashed here, so the one-hash-per-read contract holds
// no matter which store sits below.
func (v *VerifyingStore) Get(id hash.Hash) (*chunk.Chunk, error) {
	c, err := v.Inner.Get(id)
	if err != nil {
		return nil, err
	}
	if err := c.Recheck(); err != nil {
		return nil, err
	}
	if err := c.Verify(id); err != nil {
		return nil, err
	}
	return c, nil
}
