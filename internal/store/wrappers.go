package store

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"forkbase/internal/chunk"
	"forkbase/internal/hash"
)

// CountingStore wraps a Store and records the byte increments of delimited
// phases, so experiments can report "loading dataset 2 increased storage by
// only 0.04 KB" exactly like Fig 4 of the paper.
//
// Concurrency: the wrapper itself holds no per-op state — delegated calls
// touch only the inner store — and Mark/Increments guard the snapshot
// slices with one mutex, so concurrent builder workers can write through a
// CountingStore while an experiment thread marks phases.
type CountingStore struct {
	Inner Store

	mu     sync.Mutex
	marks  []Stats
	labels []string
}

var _ Store = (*CountingStore)(nil)

// NewCountingStore wraps inner.
func NewCountingStore(inner Store) *CountingStore {
	return &CountingStore{Inner: inner}
}

// Put implements Store.
func (c *CountingStore) Put(ch *chunk.Chunk) (bool, error) { return c.Inner.Put(ch) }

// PutBatch implements BatchStore by delegating, so batched ingest stays
// visible to the phase accounting (the inner store's counters move exactly as
// they would for per-chunk Puts).
func (c *CountingStore) PutBatch(cs []*chunk.Chunk) ([]bool, error) { return PutBatch(c.Inner, cs) }

// GetBatch implements BatchReadStore by delegating.
func (c *CountingStore) GetBatch(ids []hash.Hash) ([]*chunk.Chunk, error) {
	return GetBatch(c.Inner, ids)
}

// HasBatch implements BatchReadStore by delegating.
func (c *CountingStore) HasBatch(ids []hash.Hash) ([]bool, error) { return HasBatch(c.Inner, ids) }

// Get implements Store.
func (c *CountingStore) Get(id hash.Hash) (*chunk.Chunk, error) { return c.Inner.Get(id) }

// Has implements Store.
func (c *CountingStore) Has(id hash.Hash) (bool, error) { return c.Inner.Has(id) }

// Stats implements Store.
func (c *CountingStore) Stats() Stats { return c.Inner.Stats() }

// VerifyCacheTrusted forwards the trust capability: phase accounting does
// not change whose bytes are served.
func (c *CountingStore) VerifyCacheTrusted() bool { return verifyCacheTrusted(c.Inner) }

// PlacementEpoch forwards the epoch capability through the counting wrapper.
func (c *CountingStore) PlacementEpoch() uint64 {
	if ep := placementEpochOf(c.Inner); ep != nil {
		return ep()
	}
	return 0
}

// Mark snapshots the current counters under a label.
func (c *CountingStore) Mark(label string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.marks = append(c.marks, c.Inner.Stats())
	c.labels = append(c.labels, label)
}

// Increment describes the storage change between two consecutive marks.
type Increment struct {
	Label         string
	PhysicalBytes int64 // bytes actually added to storage
	LogicalBytes  int64 // bytes that would have been added without dedup
	NewChunks     int64
	DedupHits     int64
}

// Increments reports the per-phase storage growth between consecutive marks.
// Call Mark before and after each phase; phase i is labelled with the label
// of its closing mark.
func (c *CountingStore) Increments() []Increment {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Increment
	for i := 1; i < len(c.marks); i++ {
		prev, cur := c.marks[i-1], c.marks[i]
		out = append(out, Increment{
			Label:         c.labels[i],
			PhysicalBytes: cur.PhysicalBytes - prev.PhysicalBytes,
			LogicalBytes:  cur.LogicalBytes - prev.LogicalBytes,
			NewChunks:     cur.UniqueChunks - prev.UniqueChunks,
			DedupHits:     cur.DedupHits - prev.DedupHits,
		})
	}
	return out
}

// MaliciousStore wraps a Store and simulates the paper's threat model
// (§II-D): "the storage is malicious, but the users keep track of the latest
// uid of every branch".  It can silently corrupt stored chunks or substitute
// forged ones; chunk verification at the read path must catch every attack.
type MaliciousStore struct {
	Inner Store

	mu        sync.Mutex
	corrupted map[hash.Hash][]byte // id -> forged payload served instead
	forgeType map[hash.Hash]chunk.Type
}

var _ Store = (*MaliciousStore)(nil)

// NewMaliciousStore wraps inner; it behaves honestly until an attack is
// injected.
func NewMaliciousStore(inner Store) *MaliciousStore {
	return &MaliciousStore{
		Inner:     inner,
		corrupted: make(map[hash.Hash][]byte),
		forgeType: make(map[hash.Hash]chunk.Type),
	}
}

// Put implements Store.
func (m *MaliciousStore) Put(ch *chunk.Chunk) (bool, error) { return m.Inner.Put(ch) }

// PutBatch implements BatchStore by delegating.
func (m *MaliciousStore) PutBatch(cs []*chunk.Chunk) ([]bool, error) { return PutBatch(m.Inner, cs) }

// GetBatch implements BatchReadStore: attacked ids are substituted exactly as
// in Get, so batched readers face the same threat model as point readers.
func (m *MaliciousStore) GetBatch(ids []hash.Hash) ([]*chunk.Chunk, error) {
	out := make([]*chunk.Chunk, len(ids))
	for i, id := range ids {
		c, err := m.Get(id)
		if errors.Is(err, ErrNotFound) {
			continue
		}
		if err != nil {
			return out, err
		}
		out[i] = c
	}
	return out, nil
}

// HasBatch implements BatchReadStore by delegating.
func (m *MaliciousStore) HasBatch(ids []hash.Hash) ([]bool, error) { return HasBatch(m.Inner, ids) }

// Has implements Store.
func (m *MaliciousStore) Has(id hash.Hash) (bool, error) { return m.Inner.Has(id) }

// Stats implements Store.
func (m *MaliciousStore) Stats() Stats { return m.Inner.Stats() }

// Get implements Store: it serves the forged payload for attacked ids.
//
// Note that the forged chunk is returned *as if it were genuine* — no error —
// because a malicious provider would not announce the substitution.
// Detection is the verifier's job.
func (m *MaliciousStore) Get(id hash.Hash) (*chunk.Chunk, error) {
	m.mu.Lock()
	payload, bad := m.corrupted[id]
	typ := m.forgeType[id]
	m.mu.Unlock()
	if bad {
		return chunk.New(typ, payload), nil
	}
	return m.Inner.Get(id)
}

// CorruptFlip arranges for future Gets of id to return the genuine payload
// with the bit at (offset, bit) flipped.  Returns false if id is unknown.
func (m *MaliciousStore) CorruptFlip(id hash.Hash, offset int, bit uint) (bool, error) {
	c, err := m.Inner.Get(id)
	if err != nil {
		if err == ErrNotFound {
			return false, nil
		}
		return false, err
	}
	data := append([]byte(nil), c.Data()...)
	if len(data) == 0 {
		return false, nil
	}
	offset %= len(data)
	data[offset] ^= 1 << (bit % 8)
	m.mu.Lock()
	m.corrupted[id] = data
	m.forgeType[id] = c.Type()
	m.mu.Unlock()
	return true, nil
}

// Forge arranges for future Gets of id to return an arbitrary payload.
func (m *MaliciousStore) Forge(id hash.Hash, typ chunk.Type, payload []byte) {
	m.mu.Lock()
	m.corrupted[id] = append([]byte(nil), payload...)
	m.forgeType[id] = typ
	m.mu.Unlock()
}

// Heal removes all injected attacks.
func (m *MaliciousStore) Heal() {
	m.mu.Lock()
	m.corrupted = make(map[hash.Hash][]byte)
	m.forgeType = make(map[hash.Hash]chunk.Type)
	m.mu.Unlock()
}

// AttackCount returns the number of ids currently being served forged data.
func (m *MaliciousStore) AttackCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.corrupted)
}

// VerifyingStore wraps a Store and checks every chunk read against its id,
// converting silent corruption into chunk.ErrCorrupt.  The ForkBase engine
// always reads through a VerifyingStore, which is how a uid certifies the
// entire reachable object graph.
//
// Verification is amortized, not weakened: once an id's inner-store bytes
// have been rehashed on this instance, repeat reads skip the hash via a
// byte-budgeted VerifiedSet — but only when the inner stack is trusted
// (VerifyCacheTrusted walk: local Mem/File stores qualify; anything with a
// wire, fault-injection, or adversarial layer does not), and only while the
// store's placement epoch is unchanged.  Writes honor in-process provenance
// (chunk.Claimed() == false) instead of rehashing; claimed chunks from disk,
// the wire, or untrusted constructors still pay the full recheck.
type VerifyingStore struct {
	Inner Store

	// verified is the verified-id set; nil when the cache is disabled
	// (untrusted inner stack or explicit opt-out).
	verified *VerifiedSet
	// epoch reads the inner store's placement epoch (constant 0 for stores
	// that never relocate an id's bytes, like MemStore).
	epoch func() uint64

	// marker, when non-nil, is the inner store's verified-index capability:
	// the verified witness lives inside the store's own index entry, so a
	// warm point get returns with the verdict already resolved — no set
	// probe, no epoch read.  Only engaged when the cache itself is enabled
	// and the *immediate* inner implements it (a walk would let the fast
	// path bypass intermediate wrappers' accounting).
	marker VerifiedIndexer

	// workers is the explicit recheck-pool preference shared with the sink's
	// hasher tuning; 0 means "derive from GOMAXPROCS", negative pins batch
	// rechecks to the calling goroutine.
	workers atomic.Int64

	// skippedHashes counts every rehash avoided by amortization: verified-id
	// hits on reads plus provenance-trusted chunks on writes.
	skippedHashes atomic.Int64
}

var _ Store = (*VerifyingStore)(nil)

// VerifyCacheTruster is the capability by which a store declares that its
// bytes come from a boundary the verify cache may amortize over (local
// memory or local disk owned by this process).  Transparent wrappers forward
// it; wire clients, fault injectors, and adversarial test stores simply lack
// it, which turns the cache off without any of them having to know it
// exists.
type VerifyCacheTruster interface {
	VerifyCacheTrusted() bool
}

// VerifiedIndexer is the capability by which a trusted store co-locates the
// verified-id witness with its own index, collapsing the verifier's warm-path
// probe into the index lookup the store performs anyway.  The contract
// mirrors VerifiedSet's exactly: MarkVerified records "the verifying layer
// rehashed this id's bytes at this placement epoch", GetVerified answers a
// read with that witness only while placement is unchanged, and the stamp
// dies whenever the entry is rewritten or the epoch moves.  The chunk
// returned by GetVerified keeps its claimed state — the verdict is carried
// beside the chunk, never baked into it — so nothing downstream gains a way
// to mint trusted chunks.
type VerifiedIndexer interface {
	// GetVerified must return a chunk whose ID() equals the requested id
	// (FileStore's claimed reads stamp the index key into the chunk), so the
	// verifier's fast path can skip the redundant id comparison.
	GetVerified(id hash.Hash) (c *chunk.Chunk, verified bool, err error)
	MarkVerified(id hash.Hash, epoch uint64)
	UnmarkVerified(id hash.Hash)
	UnmarkAllVerified()
	VerifiedServes() int64
}

// PlacementEpocher is the capability by which a store exposes a counter that
// bumps whenever previously-served bytes for an id may have been remapped
// (segment compaction, quarantine rescue).  Verified-set entries are stamped
// with it so a remap can never satisfy a stale "verified" hit.
type PlacementEpocher interface {
	PlacementEpoch() uint64
}

// verifyCacheTrusted walks the wrapper stack for the trust capability.  The
// default is distrust: a stack is trusted only if some layer positively says
// so and every layer above it is a transparent (Unwrap-able) wrapper.
func verifyCacheTrusted(st Store) bool {
	for st != nil {
		if t, ok := st.(VerifyCacheTruster); ok {
			return t.VerifyCacheTrusted()
		}
		u, ok := st.(interface{ Unwrap() Store })
		if !ok {
			return false
		}
		st = u.Unwrap()
	}
	return false
}

// placementEpochOf finds the epoch capability in the stack, or nil.
func placementEpochOf(st Store) func() uint64 {
	for st != nil {
		if p, ok := st.(PlacementEpocher); ok {
			return p.PlacementEpoch
		}
		u, ok := st.(interface{ Unwrap() Store })
		if !ok {
			return nil
		}
		st = u.Unwrap()
	}
	return nil
}

// DefaultVerifyCacheBytes is the default verified-id set budget (~128k
// entries): big enough to cover the hot node set of a large tree, small
// next to the node cache it sits behind.
const DefaultVerifyCacheBytes = 8 << 20

// NewVerifyingStore wraps inner with the default verify-cache budget.  The
// cache engages only over trusted local stacks; over anything else this is
// exactly the always-rehash verifier.
func NewVerifyingStore(inner Store) *VerifyingStore {
	return NewVerifyingStoreCache(inner, 0)
}

// NewVerifyingStoreCache wraps inner with an explicit verified-id budget:
// 0 picks DefaultVerifyCacheBytes, negative disables the cache entirely.
func NewVerifyingStoreCache(inner Store, cacheBytes int64) *VerifyingStore {
	v := &VerifyingStore{Inner: inner}
	if cacheBytes == 0 {
		cacheBytes = DefaultVerifyCacheBytes
	}
	if cacheBytes > 0 && verifyCacheTrusted(inner) {
		v.verified = NewVerifiedSet(cacheBytes)
		v.epoch = placementEpochOf(inner)
		if mi, ok := inner.(VerifiedIndexer); ok {
			v.marker = mi
		}
	}
	return v
}

// SetVerifyWorkers sets the batch-recheck worker preference (the same value
// as the sink's hasher tuning: n > 0 fixes the pool size, n < 0 pins
// rechecks to the caller, 0 restores the GOMAXPROCS-derived default).
func (v *VerifyingStore) SetVerifyWorkers(n int) { v.workers.Store(int64(n)) }

// verifyWorkers resolves the recheck pool width for one batch.
func (v *VerifyingStore) verifyWorkers() int {
	n := int(v.workers.Load())
	if n < 0 {
		return 1
	}
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
		if n > 4 {
			n = 4
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

func (v *VerifyingStore) epochNow() uint64 {
	if v.epoch == nil {
		return 0
	}
	return v.epoch()
}

// recheckWrite verifies one chunk on the write path.  Chunks hashed by this
// process (sink provenance, or already promoted by an earlier recheck) skip
// the hash; claimed chunks are rehashed and, on success, promoted so the
// next layer is free.
func (v *VerifyingStore) recheckWrite(ch *chunk.Chunk) error {
	if !ch.Claimed() {
		v.skippedHashes.Add(1)
		return nil
	}
	return ch.Recheck()
}

// Put implements Store.  Chunks whose id was merely *claimed* by an
// untrusted party (chunk.NewClaimed) are rehashed and rejected on mismatch,
// so forged content cannot enter the store under a genuine id.
func (v *VerifyingStore) Put(ch *chunk.Chunk) (bool, error) {
	if err := v.recheckWrite(ch); err != nil {
		return false, err
	}
	ok, err := v.Inner.Put(ch)
	if err == nil && v.verified != nil {
		// The bytes just written are known-good: seed the witnesses so the
		// first read back skips the rehash.
		v.remember(ch.ID(), v.epochNow())
	}
	return ok, err
}

// PutBatch implements BatchStore.  Every claimed chunk in the batch is
// rehashed — fanned out across the recheck pool — before anything is
// written: a single forged chunk rejects the whole batch, keeping batched
// ingest exactly as tamper-evident as the per-chunk path.
func (v *VerifyingStore) PutBatch(cs []*chunk.Chunk) ([]bool, error) {
	var work []int
	for i, ch := range cs {
		if !ch.Claimed() {
			v.skippedHashes.Add(1)
			continue
		}
		work = append(work, i)
	}
	if err := recheckIndexes(cs, work, v.verifyWorkers()); err != nil {
		return make([]bool, len(cs)), err
	}
	res, err := PutBatch(v.Inner, cs)
	if err == nil && v.verified != nil {
		ep := v.epochNow()
		for _, ch := range cs {
			v.remember(ch.ID(), ep)
		}
	}
	return res, err
}

// Has implements Store.
func (v *VerifyingStore) Has(id hash.Hash) (bool, error) { return v.Inner.Has(id) }

// HasBatch implements BatchReadStore by delegating (presence needs no
// verification; a forged chunk is caught when it is actually read).
func (v *VerifyingStore) HasBatch(ids []hash.Hash) ([]bool, error) { return HasBatch(v.Inner, ids) }

// GetBatch implements BatchReadStore: every returned chunk passes the same
// recheck-and-verify gauntlet as a point Get — with the rehashes for
// verified-set misses fanned out across the recheck pool, so repl catch-up
// and heal scale with cores.
func (v *VerifyingStore) GetBatch(ids []hash.Hash) ([]*chunk.Chunk, error) {
	out, err := GetBatch(v.Inner, ids)
	if err != nil {
		return out, err
	}
	ep := v.epochNow()
	var work []int
	for i, c := range out {
		if c == nil {
			continue
		}
		if err := c.Verify(ids[i]); err != nil {
			return out, err
		}
		if !c.Claimed() {
			continue
		}
		if v.verified != nil && v.verified.Hit(ids[i], ep) {
			continue // skip counted via the hit counter
		}
		work = append(work, i)
	}
	if err := recheckIndexes(out, work, v.verifyWorkers()); err != nil {
		// Something in this batch failed to rehash; drop any witnesses for
		// the batch so nothing corrupt lingers as "verified".
		for _, i := range work {
			v.forget(ids[i])
		}
		return out, err
	}
	for _, i := range work {
		v.remember(ids[i], ep)
	}
	return out, nil
}

// recheckIndexes rehashes cs[i] for each i in idx, fanning out across up to
// `workers` goroutines when the batch is large enough to amortize the
// handoff.  First error wins; remaining work is still drained (rechecks are
// independent and promotion is useful even on a failing batch's survivors).
func recheckIndexes(cs []*chunk.Chunk, idx []int, workers int) error {
	// Below ~8 chunks per worker the goroutine handoff costs more than the
	// overlap buys; clamp the pool to keep every worker usefully busy.
	const minPerWorker = 8
	if workers > len(idx)/minPerWorker {
		workers = len(idx) / minPerWorker
	}
	if workers < 2 {
		for _, i := range idx {
			if err := cs[i].Recheck(); err != nil {
				return fmt.Errorf("batch chunk %d: %w", i, err)
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(idx) {
					return
				}
				if err := cs[idx[n]].Recheck(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("batch chunk %d: %w", idx[n], err)
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Stats implements Store.
func (v *VerifyingStore) Stats() Stats { return v.Inner.Stats() }

// Get implements Store, verifying content against id.  Chunks whose id was
// merely claimed by the inner store (FileStore's zero-copy mmap path trusts
// its own index) are rehashed here — unless this instance already verified
// the id at the current placement epoch, in which case the hash is skipped.
func (v *VerifyingStore) Get(id hash.Hash) (*chunk.Chunk, error) {
	var (
		c   *chunk.Chunk
		err error
	)
	if v.marker != nil {
		// Warm fast path: the inner store resolves the verified witness
		// inside the index lookup it performs anyway, so a repeat read costs
		// the bare get plus one id comparison.
		var okv bool
		c, okv, err = v.marker.GetVerified(id)
		if err == nil && okv {
			// No Verify(id) here: the capability contract pins the returned
			// chunk's id to the request, and the witness already attests the
			// bytes hash to it — the comparison would test the claim against
			// itself.
			return c, nil
		}
	} else {
		c, err = v.Inner.Get(id)
	}
	if err != nil {
		return nil, err
	}
	if err := c.Verify(id); err != nil {
		return nil, err
	}
	if !c.Claimed() {
		return c, nil
	}
	if err := v.recheckRemember(c, id); err != nil {
		return nil, err
	}
	return c, nil
}

// recheckRemember resolves a claimed chunk on the slow path: consult the
// verified set, rehash on a miss, and record the outcome in both witnesses
// (set and, when present, the inner store's verified index).
func (v *VerifyingStore) recheckRemember(c *chunk.Chunk, id hash.Hash) error {
	var ep uint64
	if v.verified != nil {
		ep = v.epochNow()
		if v.verified.Hit(id, ep) {
			// Every hit skips exactly one rehash; VerifyStats derives the
			// skip count from the hit counter so the hot path pays a single
			// atomic increment.
			if v.marker != nil {
				// Restamp: the set remembered what the index entry lost.
				v.marker.MarkVerified(id, ep)
			}
			return nil
		}
	}
	if err := c.Recheck(); err != nil {
		v.forget(id)
		return err
	}
	v.remember(id, ep)
	return nil
}

// remember records a successful recheck of id at epoch ep in every witness.
func (v *VerifyingStore) remember(id hash.Hash, ep uint64) {
	if v.verified != nil {
		v.verified.Add(id, ep)
	}
	if v.marker != nil {
		v.marker.MarkVerified(id, ep)
	}
}

// forget drops id from every witness after a failed recheck or an explicit
// invalidation.
func (v *VerifyingStore) forget(id hash.Hash) {
	if v.verified != nil {
		v.verified.Invalidate(id)
	}
	if v.marker != nil {
		v.marker.UnmarkVerified(id)
	}
}

// VerifyStats is a snapshot of the verifier's amortization counters.
type VerifyStats struct {
	// Enabled reports whether the verified-id set is active (trusted stack,
	// non-negative budget).
	Enabled bool `json:"enabled"`
	// Hits/Misses/Invalidations are verified-set lookup outcomes.
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Invalidations int64 `json:"invalidations"`
	// SkippedHashes counts every rehash amortized away: set hits on reads
	// plus provenance-trusted chunks on writes.
	SkippedHashes int64 `json:"skipped_hashes"`
	// Entries/BudgetBytes describe the set's current size and bound.
	Entries     int   `json:"entries"`
	BudgetBytes int64 `json:"budget_bytes"`
}

// VerifyStats snapshots the amortization counters.
func (v *VerifyingStore) VerifyStats() VerifyStats {
	st := VerifyStats{SkippedHashes: v.skippedHashes.Load()}
	if v.verified != nil {
		st.Enabled = true
		st.Hits = v.verified.hits.Load()
		st.Misses = v.verified.misses.Load()
		st.Invalidations = v.verified.invalidations.Load()
		st.Entries = v.verified.Len()
		st.BudgetBytes = v.verified.budget
		if v.marker != nil {
			// Index-stamp serves are hits resolved inside the inner store.
			st.Hits += v.marker.VerifiedServes()
		}
		// Each hit skipped exactly one rehash (reads); skippedHashes itself
		// counts provenance-trusted writes.
		st.SkippedHashes += st.Hits
	}
	return st
}

// Invalidate drops ids from the verified set (no-op when disabled).  Scrub,
// quarantine, repair, heal and GC call this for every id whose inner-store
// bytes they move, delete, or find damaged.
func (v *VerifyingStore) Invalidate(ids ...hash.Hash) {
	if v.verified == nil {
		return
	}
	for _, id := range ids {
		v.forget(id)
	}
}

// InvalidateAll empties every witness (no-op when disabled).
func (v *VerifyingStore) InvalidateAll() {
	if v.verified != nil {
		v.verified.InvalidateAll()
	}
	if v.marker != nil {
		v.marker.UnmarkAllVerified()
	}
}

// VerifierOf walks the wrapper stack for the verifying layer, so invalidation
// hooks (GC, scrub, heal) reach it through whatever layering core.Open
// assembled.  Returns nil if the stack has no verifier.
func VerifierOf(st Store) *VerifyingStore {
	for st != nil {
		if v, ok := st.(*VerifyingStore); ok {
			return v
		}
		u, ok := st.(interface{ Unwrap() Store })
		if !ok {
			return nil
		}
		st = u.Unwrap()
	}
	return nil
}
