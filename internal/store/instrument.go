package store

import (
	"log/slog"
	"sync/atomic"
	"time"

	"forkbase/internal/chunk"
	"forkbase/internal/hash"
	"forkbase/internal/nodecache"
	"forkbase/internal/obs"
)

// Kinder is the optional capability by which a store names its backend for
// metric labels ("mem", "file", "remote", ...).  Wrappers are transparent:
// KindOf walks the Unwrap chain, so the label always describes the store
// that actually holds the bytes.
type Kinder interface {
	StoreKind() string
}

// KindOf returns the backend kind of st, walking wrappers; "store" when no
// layer declares one.
func KindOf(st Store) string {
	for st != nil {
		if k, ok := st.(Kinder); ok {
			return k.StoreKind()
		}
		u, ok := st.(interface{ Unwrap() Store })
		if !ok {
			break
		}
		st = u.Unwrap()
	}
	return "store"
}

// StoreKind implements Kinder.
func (s *MemStore) StoreKind() string { return "mem" }

// StoreKind implements Kinder.
func (s *FileStore) StoreKind() string { return "file" }

// latSampleMask gates latency timing on the single-chunk hot paths: clock
// reads cost ~50-100ns on virtualized hosts — more than a memory store's
// whole map access — so only 1 of every latSampleMask+1 operations is
// timed.  Counters stay exact for every op; the histograms see an unbiased
// sample.  Batch operations amortize the clock over many chunks and are
// always timed, as is everything when a slow-op threshold is set (detection
// must not sample).
const latSampleMask = 31

// instrumentedStore counts every chunk operation crossing into the backend
// and times a sample of them.  All metric handles are resolved at
// construction, so the common per-op cost is a handful of atomic adds.
//
// The wrapper is transparent to every capability discovery in the tree:
// batch paths are instrumented natively, NodeCache/SinkHashers forward,
// and Unwrap exposes the inner store for GC/scrub/heal discovery.
type instrumentedStore struct {
	Store
	kind string

	get, put, has, getB, putB, hasB opMetrics

	rdB  *obs.Counter // payload bytes returned to readers
	wrB  *obs.Counter // payload bytes accepted from writers
	errs *obs.Counter // operations failing with a real error (not ErrNotFound)

	logger *slog.Logger  // slow-op log sink, nil = disabled
	slowOp time.Duration // threshold; 0 = disabled
}

type opMetrics struct {
	name   string
	total  *obs.Counter
	lat    *obs.Histogram
	sample atomic.Uint64
}

// Instrument wraps inner so every Get/Put/Has (and their batch forms) is
// counted and timed under forkbase_store_* with a kind label naming the
// backend.  A nil or Discard registry returns inner unchanged — the bare
// path stays bare.
func Instrument(inner Store, reg *obs.Registry) Store {
	return InstrumentSlow(inner, reg, nil, 0)
}

// InstrumentSlow is Instrument plus a threshold-gated slow-op structured
// log: backend operations slower than slowOp are logged through logger at
// Warn with kind, op and duration, so a slow engine operation can be
// attributed to the layer that actually stalled.
func InstrumentSlow(inner Store, reg *obs.Registry, logger *slog.Logger, slowOp time.Duration) Store {
	if inner == nil || reg == nil || reg == obs.Discard {
		return inner
	}
	kind := KindOf(inner)
	opsTotal := reg.CounterVec("forkbase_store_ops_total",
		"Chunk-store operations by backend kind and operation.", "kind", "op")
	opSeconds := reg.HistogramVec("forkbase_store_op_seconds",
		"Chunk-store operation latency by backend kind and operation.", "kind", "op")
	s := &instrumentedStore{
		Store: inner,
		kind:  kind,
		rdB: reg.CounterVec("forkbase_store_read_bytes_total",
			"Chunk payload bytes read, by backend kind.", "kind").With(kind),
		wrB: reg.CounterVec("forkbase_store_write_bytes_total",
			"Chunk payload bytes written, by backend kind.", "kind").With(kind),
		errs: reg.CounterVec("forkbase_store_errors_total",
			"Chunk-store operations that failed (not-found excluded), by backend kind.", "kind").With(kind),
		logger: logger,
		slowOp: slowOp,
	}
	mk := func(op string) opMetrics {
		return opMetrics{name: op, total: opsTotal.With(kind, op), lat: opSeconds.With(kind, op)}
	}
	s.get, s.put, s.has = mk("get"), mk("put"), mk("has")
	s.getB, s.putB, s.hasB = mk("get_batch"), mk("put_batch"), mk("has_batch")
	if vi, ok := inner.(VerifiedIndexer); ok {
		// Forward the verified-index capability natively (instrumenting
		// GetVerified as a get), so the verifier's warm fast path keeps
		// working — and keeps being counted — through the metrics layer.
		return &instrumentedVerifiedStore{instrumentedStore: s, vidx: vi}
	}
	return s
}

// instrumentedVerifiedStore is an instrumentedStore over an inner that also
// offers the VerifiedIndexer capability.  A separate type (rather than
// optional methods) so the capability is visible exactly when the inner store
// actually has it.
type instrumentedVerifiedStore struct {
	*instrumentedStore
	vidx VerifiedIndexer
}

var _ VerifiedIndexer = (*instrumentedVerifiedStore)(nil)

// GetVerified implements VerifiedIndexer, counted under the get metrics.
func (s *instrumentedVerifiedStore) GetVerified(id hash.Hash) (*chunk.Chunk, bool, error) {
	start := s.begin(&s.get)
	c, okv, err := s.vidx.GetVerified(id)
	s.observe(&s.get, start, err)
	if c != nil {
		s.rdB.Add(int64(len(c.Data())))
	}
	return c, okv, err
}

// MarkVerified implements VerifiedIndexer.
func (s *instrumentedVerifiedStore) MarkVerified(id hash.Hash, epoch uint64) {
	s.vidx.MarkVerified(id, epoch)
}

// UnmarkVerified implements VerifiedIndexer.
func (s *instrumentedVerifiedStore) UnmarkVerified(id hash.Hash) { s.vidx.UnmarkVerified(id) }

// UnmarkAllVerified implements VerifiedIndexer.
func (s *instrumentedVerifiedStore) UnmarkAllVerified() { s.vidx.UnmarkAllVerified() }

// VerifiedServes implements VerifiedIndexer.
func (s *instrumentedVerifiedStore) VerifiedServes() int64 { return s.vidx.VerifiedServes() }

// begin returns the start time when this operation's latency will be
// recorded (sampled, or always under a slow-op threshold), else the zero
// Time.
func (s *instrumentedStore) begin(op *opMetrics) time.Time {
	if s.slowOp > 0 || op.sample.Add(1)&latSampleMask == 1 {
		return time.Now()
	}
	return time.Time{}
}

// observe finishes one operation: count, sampled latency, error
// accounting, slow-op log.
func (s *instrumentedStore) observe(op *opMetrics, start time.Time, err error) {
	op.total.Inc()
	if err != nil && err != ErrNotFound {
		s.errs.Inc()
	}
	if start.IsZero() {
		return
	}
	d := time.Since(start)
	op.lat.Observe(d)
	if s.slowOp > 0 && d >= s.slowOp && s.logger != nil {
		s.logger.Warn("slow store op", "kind", s.kind, "op", op.name, "duration", d, "err", err)
	}
}

// Put implements Store.
func (s *instrumentedStore) Put(c *chunk.Chunk) (bool, error) {
	start := s.begin(&s.put)
	fresh, err := s.Store.Put(c)
	s.observe(&s.put, start, err)
	if c != nil {
		s.wrB.Add(int64(len(c.Data())))
	}
	return fresh, err
}

// Get implements Store.
func (s *instrumentedStore) Get(id hash.Hash) (*chunk.Chunk, error) {
	start := s.begin(&s.get)
	c, err := s.Store.Get(id)
	s.observe(&s.get, start, err)
	if c != nil {
		s.rdB.Add(int64(len(c.Data())))
	}
	return c, err
}

// Has implements Store.
func (s *instrumentedStore) Has(id hash.Hash) (bool, error) {
	start := s.begin(&s.has)
	ok, err := s.Store.Has(id)
	s.observe(&s.has, start, err)
	return ok, err
}

// PutBatch implements BatchStore (instrumented as one operation — the
// clock amortizes over the batch, so batches are always timed; bytes count
// every chunk offered).
func (s *instrumentedStore) PutBatch(cs []*chunk.Chunk) ([]bool, error) {
	start := time.Now()
	fresh, err := PutBatch(s.Store, cs)
	s.observe(&s.putB, start, err)
	var n int64
	for _, c := range cs {
		if c != nil {
			n += int64(len(c.Data()))
		}
	}
	s.wrB.Add(n)
	return fresh, err
}

// GetBatch implements BatchReadStore.
func (s *instrumentedStore) GetBatch(ids []hash.Hash) ([]*chunk.Chunk, error) {
	start := time.Now()
	cs, err := GetBatch(s.Store, ids)
	s.observe(&s.getB, start, err)
	var n int64
	for _, c := range cs {
		if c != nil {
			n += int64(len(c.Data()))
		}
	}
	s.rdB.Add(n)
	return cs, err
}

// HasBatch implements BatchReadStore.
func (s *instrumentedStore) HasBatch(ids []hash.Hash) ([]bool, error) {
	start := time.Now()
	oks, err := HasBatch(s.Store, ids)
	s.observe(&s.hasB, start, err)
	return oks, err
}

// NodeCache forwards the node-cache capability through the wrapper.
func (s *instrumentedStore) NodeCache() *nodecache.Cache { return NodeCacheOf(s.Store) }

// SinkHashers forwards the tuning capability through the wrapper.
func (s *instrumentedStore) SinkHashers() int { return SinkHashersOf(s.Store) }

// StoreKind implements Kinder (the wrapper reports the backend it fronts).
func (s *instrumentedStore) StoreKind() string { return s.kind }

// Unwrap exposes the inner store (GC/scrub/heal capability discovery).
func (s *instrumentedStore) Unwrap() Store { return s.Store }

var (
	_ BatchStore        = (*instrumentedStore)(nil)
	_ BatchReadStore    = (*instrumentedStore)(nil)
	_ NodeCacheProvider = (*instrumentedStore)(nil)
	_ SinkTuner         = (*instrumentedStore)(nil)
	_ Kinder            = (*instrumentedStore)(nil)
	_ Kinder            = (*MemStore)(nil)
	_ Kinder            = (*FileStore)(nil)
)
