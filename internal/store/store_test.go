package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"forkbase/internal/chunk"
	"forkbase/internal/hash"
)

// openAppend opens the first log segment for raw appends, to simulate a
// crash that tore the final record.
func openAppend(dir string) (*os.File, error) {
	return os.OpenFile(filepath.Join(dir, "seg-000000.log"), os.O_WRONLY|os.O_APPEND, 0o644)
}

func mkChunk(i int) *chunk.Chunk {
	return chunk.New(chunk.TypeBlobLeaf, []byte(fmt.Sprintf("chunk-%d-%s", i, bytes.Repeat([]byte{byte(i)}, i%64))))
}

func testStorePutGet(t *testing.T, s Store) {
	t.Helper()
	c := mkChunk(1)
	fresh, err := s.Put(c)
	if err != nil || !fresh {
		t.Fatalf("first Put: fresh=%v err=%v", fresh, err)
	}
	fresh, err = s.Put(c)
	if err != nil || fresh {
		t.Fatalf("duplicate Put: fresh=%v err=%v", fresh, err)
	}
	got, err := s.Get(c.ID())
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.Type() != c.Type() || !bytes.Equal(got.Data(), c.Data()) {
		t.Fatal("Get returned different chunk")
	}
	ok, err := s.Has(c.ID())
	if err != nil || !ok {
		t.Fatalf("Has: %v %v", ok, err)
	}
	if _, err := s.Get(hash.Of([]byte("missing"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing Get err = %v", err)
	}
	ok, err = s.Has(hash.Of([]byte("missing")))
	if err != nil || ok {
		t.Fatalf("missing Has = %v %v", ok, err)
	}
}

func TestMemStoreBasics(t *testing.T) { testStorePutGet(t, NewMemStore()) }

func TestMemStoreStats(t *testing.T) {
	s := NewMemStore()
	c1, c2 := mkChunk(1), mkChunk(2)
	s.Put(c1)
	s.Put(c1)
	s.Put(c2)
	st := s.Stats()
	if st.UniqueChunks != 2 {
		t.Fatalf("unique = %d", st.UniqueChunks)
	}
	if st.DedupHits != 1 {
		t.Fatalf("hits = %d", st.DedupHits)
	}
	wantPhys := int64(c1.Size() + c2.Size())
	if st.PhysicalBytes != wantPhys {
		t.Fatalf("physical = %d want %d", st.PhysicalBytes, wantPhys)
	}
	if st.LogicalBytes != wantPhys+int64(c1.Size()) {
		t.Fatalf("logical = %d", st.LogicalBytes)
	}
	if st.DedupRatio() <= 1.0 {
		t.Fatalf("dedup ratio %f", st.DedupRatio())
	}
	if st.SavedBytes() != int64(c1.Size()) {
		t.Fatalf("saved = %d", st.SavedBytes())
	}
	if st.String() == "" {
		t.Fatal("empty Stats string")
	}
}

func TestMemStoreConcurrent(t *testing.T) {
	s := NewMemStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := mkChunk(i % 50)
				if _, err := s.Put(c); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if _, err := s.Get(c.ID()); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 50 {
		t.Fatalf("len = %d, want 50", s.Len())
	}
}

func TestMemStoreDeleteAndIDs(t *testing.T) {
	s := NewMemStore()
	c := mkChunk(3)
	s.Put(c)
	if len(s.IDs()) != 1 {
		t.Fatal("IDs missing chunk")
	}
	s.Delete(c.ID())
	if ok, _ := s.Has(c.ID()); ok {
		t.Fatal("delete did not remove chunk")
	}
	if s.Stats().UniqueChunks != 0 || s.Stats().PhysicalBytes != 0 {
		t.Fatalf("stats after delete: %+v", s.Stats())
	}
	s.Delete(c.ID()) // idempotent
}

func TestFileStoreBasics(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	testStorePutGet(t, s)
}

func TestFileStoreReopenRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ids []hash.Hash
	for i := 0; i < 100; i++ {
		c := mkChunk(i)
		if _, err := s.Put(c); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, c.ID())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, id := range ids {
		c, err := s2.Get(id)
		if err != nil {
			t.Fatalf("chunk %d lost after reopen: %v", i, err)
		}
		if err := c.Verify(id); err != nil {
			t.Fatalf("chunk %d corrupt after reopen: %v", i, err)
		}
	}
	if s2.Stats().UniqueChunks != 100 {
		t.Fatalf("recovered %d chunks", s2.Stats().UniqueChunks)
	}
	// Dedup persists across reopen.
	fresh, err := s2.Put(mkChunk(7))
	if err != nil || fresh {
		t.Fatalf("chunk re-added after reopen: fresh=%v err=%v", fresh, err)
	}
}

func TestFileStoreSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStoreSegmented(dir, 2048) // tiny segments
	if err != nil {
		t.Fatal(err)
	}
	var ids []hash.Hash
	for i := 0; i < 200; i++ {
		c := chunk.New(chunk.TypeBlobLeaf, bytes.Repeat([]byte{byte(i)}, 100))
		if _, err := s.Put(c); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, c.ID())
	}
	if s.actSeg.Load() == 0 {
		t.Fatal("no segment rotation happened")
	}
	for _, id := range ids {
		if _, err := s.Get(id); err != nil {
			t.Fatalf("get across segments: %v", err)
		}
	}
	s.Close()
	s2, err := OpenFileStoreSegmented(dir, 2048)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, id := range ids {
		if _, err := s2.Get(id); err != nil {
			t.Fatalf("get after multi-segment reopen: %v", err)
		}
	}
}

func TestFileStoreTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := mkChunk(1)
	s.Put(good)
	s.Flush()
	s.Close()

	// Simulate a crash mid-append: append garbage half-record.
	f, err := openAppend(dir)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("torn-record-garbage"))
	f.Close()

	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer s2.Close()
	if _, err := s2.Get(good.ID()); err != nil {
		t.Fatalf("good chunk lost: %v", err)
	}
	// The store must still accept writes after truncation.
	if _, err := s2.Put(mkChunk(2)); err != nil {
		t.Fatal(err)
	}
}

func TestMemStorePutBatch(t *testing.T) {
	s := NewMemStore()
	c1, c2 := mkChunk(1), mkChunk(2)
	fresh, err := s.PutBatch([]*chunk.Chunk{c1, c2, c1}) // intra-batch dup
	if err != nil {
		t.Fatal(err)
	}
	if !fresh[0] || !fresh[1] || fresh[2] {
		t.Fatalf("fresh = %v", fresh)
	}
	// Stats must match what three per-chunk Puts would have produced.
	ref := NewMemStore()
	ref.Put(c1)
	ref.Put(c2)
	ref.Put(c1)
	if s.Stats() != ref.Stats() {
		t.Fatalf("batch stats %+v != per-chunk stats %+v", s.Stats(), ref.Stats())
	}
}

func TestPutBatchFallback(t *testing.T) {
	// A store without the BatchStore capability still works through the
	// generic helper.
	type plain struct{ Store }
	s := plain{NewMemStore()}
	c := mkChunk(3)
	fresh, err := PutBatch(s, []*chunk.Chunk{c, c})
	if err != nil {
		t.Fatal(err)
	}
	if !fresh[0] || fresh[1] {
		t.Fatalf("fresh = %v", fresh)
	}
}

func TestFileStorePutBatchGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var cs []*chunk.Chunk
	for i := 0; i < 50; i++ {
		cs = append(cs, mkChunk(i))
	}
	fresh, err := s.PutBatch(cs)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range fresh {
		if !f {
			t.Fatalf("chunk %d not fresh", i)
		}
	}
	// Group commit flushed the batch: the records are on disk even before
	// Close, so a reopen from a copy taken now would see them.  Verify via
	// reopen after Close and via duplicate suppression.
	fresh, err = s.PutBatch(cs[:5])
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range fresh {
		if f {
			t.Fatalf("chunk %d re-added", i)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, c := range cs {
		if _, err := s2.Get(c.ID()); err != nil {
			t.Fatalf("chunk %d lost after reopen: %v", i, err)
		}
	}
}

// TestFileStorePutBatchTornTailRecovery simulates a crash that tears the
// tail of a group-committed batch: the segment ends mid-record.  Reopen must
// truncate the torn record cleanly and recover every fully-written one.
func TestFileStorePutBatchTornTailRecovery(t *testing.T) {
	for name, chop := range map[string]int{
		"torn-payload": 5,  // cut inside the last record's payload
		"torn-header":  70, // 64B payload + part of the 37B header gone
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			var cs []*chunk.Chunk
			for i := 0; i < 10; i++ {
				cs = append(cs, chunk.New(chunk.TypeBlobLeaf, bytes.Repeat([]byte{byte(i + 1)}, 64)))
			}
			if _, err := s.PutBatch(cs); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			// Tear the batch: drop the last `chop` bytes of the segment, so
			// the final record (and for torn-header, part of its header) is
			// incomplete — exactly what an OS crash mid-batch leaves behind.
			path := filepath.Join(dir, "seg-000000.log")
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-int64(chop)); err != nil {
				t.Fatal(err)
			}

			s2, err := OpenFileStore(dir)
			if err != nil {
				t.Fatalf("reopen after torn batch: %v", err)
			}
			defer s2.Close()
			// Every fully-written record survives; the torn one is gone.
			for i, c := range cs[:9] {
				got, err := s2.Get(c.ID())
				if err != nil {
					t.Fatalf("fully-written chunk %d lost: %v", i, err)
				}
				if err := got.Verify(c.ID()); err != nil {
					t.Fatalf("chunk %d corrupt after recovery: %v", i, err)
				}
			}
			if _, err := s2.Get(cs[9].ID()); !errors.Is(err, ErrNotFound) {
				t.Fatalf("torn chunk resurrected: err=%v", err)
			}
			// The truncated store accepts and persists fresh batches.
			if _, err := s2.PutBatch([]*chunk.Chunk{cs[9], mkChunk(99)}); err != nil {
				t.Fatal(err)
			}
			if _, err := s2.Get(cs[9].ID()); err != nil {
				t.Fatalf("re-ingest after truncation: %v", err)
			}
		})
	}
}

// TestVerifyingStorePutBatchRejectsForged: a chunk whose claimed id does not
// match its content — a malicious peer slipping a forgery into a batch —
// rejects the whole batch at the verifying layer; nothing lands below.
func TestVerifyingStorePutBatchRejectsForged(t *testing.T) {
	inner := NewMemStore()
	v := NewVerifyingStore(inner)
	honest := mkChunk(1)
	forged := chunk.NewClaimed(chunk.TypeBlobLeaf, []byte("evil payload"), mkChunk(2).ID())
	_, err := v.PutBatch([]*chunk.Chunk{honest, forged})
	if !errors.Is(err, chunk.ErrCorrupt) {
		t.Fatalf("forged batch err = %v, want ErrCorrupt", err)
	}
	if inner.Len() != 0 {
		t.Fatalf("forged batch landed %d chunks below the verifier", inner.Len())
	}
	// Per-chunk writes reject the same way.
	if _, err := v.Put(forged); !errors.Is(err, chunk.ErrCorrupt) {
		t.Fatalf("forged put err = %v", err)
	}
	// An honestly-claimed chunk (id matches) passes.
	claimed := chunk.NewClaimed(honest.Type(), honest.Data(), honest.ID())
	if _, err := v.Put(claimed); err != nil {
		t.Fatal(err)
	}
}

func TestFileStoreConcurrent(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 100; i++ {
				c := mkChunk(rng.Intn(40))
				if _, err := s.Put(c); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if _, err := s.Get(c.ID()); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestCountingStoreIncrements(t *testing.T) {
	cs := NewCountingStore(NewMemStore())
	cs.Mark("start")
	c1 := mkChunk(1)
	cs.Put(c1)
	cs.Mark("phase1")
	cs.Put(c1) // duplicate: physical increment must be zero
	cs.Put(mkChunk(2))
	cs.Mark("phase2")

	incs := cs.Increments()
	if len(incs) != 2 {
		t.Fatalf("increments = %d", len(incs))
	}
	if incs[0].Label != "phase1" || incs[0].PhysicalBytes != int64(c1.Size()) || incs[0].NewChunks != 1 {
		t.Fatalf("phase1 = %+v", incs[0])
	}
	if incs[1].DedupHits != 1 || incs[1].NewChunks != 1 {
		t.Fatalf("phase2 = %+v", incs[1])
	}
	if incs[1].PhysicalBytes >= incs[1].LogicalBytes {
		t.Fatalf("phase2 dedup not visible: %+v", incs[1])
	}
}

func TestMaliciousStoreCorruption(t *testing.T) {
	inner := NewMemStore()
	m := NewMaliciousStore(inner)
	c := mkChunk(5)
	m.Put(c)

	// Honest until attacked.
	got, err := m.Get(c.ID())
	if err != nil || got.ID() != c.ID() {
		t.Fatalf("honest get: %v", err)
	}

	ok, err := m.CorruptFlip(c.ID(), 3, 1)
	if err != nil || !ok {
		t.Fatalf("CorruptFlip: %v %v", ok, err)
	}
	if m.AttackCount() != 1 {
		t.Fatalf("attacks = %d", m.AttackCount())
	}
	got, err = m.Get(c.ID())
	if err != nil {
		t.Fatalf("malicious get returned error: %v", err)
	}
	// The forged chunk must NOT verify against the requested id.
	if got.Verify(c.ID()) == nil {
		t.Fatal("corruption was not detectable")
	}

	m.Heal()
	got, _ = m.Get(c.ID())
	if got.Verify(c.ID()) != nil {
		t.Fatal("heal did not restore honesty")
	}
}

func TestMaliciousStoreForge(t *testing.T) {
	m := NewMaliciousStore(NewMemStore())
	c := mkChunk(9)
	m.Put(c)
	m.Forge(c.ID(), chunk.TypeBlobLeaf, []byte("evil payload"))
	got, err := m.Get(c.ID())
	if err != nil {
		t.Fatal(err)
	}
	if got.Verify(c.ID()) == nil {
		t.Fatal("forged chunk verified")
	}
}

func TestMaliciousCorruptUnknownID(t *testing.T) {
	m := NewMaliciousStore(NewMemStore())
	ok, err := m.CorruptFlip(hash.Of([]byte("nothing")), 0, 0)
	if err != nil || ok {
		t.Fatalf("corrupting unknown id: ok=%v err=%v", ok, err)
	}
}

func TestVerifyingStoreDetectsTampering(t *testing.T) {
	inner := NewMemStore()
	mal := NewMaliciousStore(inner)
	v := NewVerifyingStore(mal)

	c := mkChunk(11)
	v.Put(c)
	if _, err := v.Get(c.ID()); err != nil {
		t.Fatalf("clean get: %v", err)
	}
	mal.CorruptFlip(c.ID(), 0, 0)
	if _, err := v.Get(c.ID()); !errors.Is(err, chunk.ErrCorrupt) {
		t.Fatalf("verifying store let corruption through: %v", err)
	}
}

func TestMustPutPanicsOnClosedStore(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("MustPut on closed store did not panic")
		}
	}()
	MustPut(s, mkChunk(1))
}

func TestFileStoreReadHandleBoundAndClose(t *testing.T) {
	dir := t.TempDir()
	// NoMmap keeps every read on the positioned-read path, which is what
	// the handle table serves.
	s, err := OpenFileStoreWith(dir, FileStoreOptions{SegmentSize: 256, NoMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	var ids []hash.Hash
	for i := 0; i < 400; i++ {
		c := chunk.New(chunk.TypeBlobLeaf, bytes.Repeat([]byte{byte(i), byte(i >> 8)}, 100))
		if _, err := s.Put(c); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, c.ID())
	}
	if s.actSeg.Load() <= maxReadHandles {
		t.Fatalf("want more segments than the handle bound, got %d", s.actSeg.Load())
	}
	// Reading every chunk cycles far more segments than the handle table
	// admits; eviction must keep it bounded while reads stay correct.
	for _, id := range ids {
		if _, err := s.Get(id); err != nil {
			t.Fatalf("get: %v", err)
		}
	}
	if got := len(s.readers); got > maxReadHandles {
		t.Fatalf("read handles unbounded: %d > %d", got, maxReadHandles)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ids[0]); err == nil {
		t.Fatal("Get after Close succeeded")
	}
	if s.readers != nil {
		t.Fatal("Close left read handles behind")
	}
}
