package store

import (
	"bytes"
	"testing"

	"forkbase/internal/hash"
)

// crashSim is the panic value the matrix's crash hook throws — a stand-in
// for the process dying at a named lifecycle point.  The store object is
// abandoned afterwards (never Closed), so its unflushed buffers are lost
// exactly as a real crash would lose them.
type crashSim struct{ point string }

// TestCrashRecoveryMatrix systematically crashes at every named FileStore
// crash point, reopens the directory, runs a full scrub, and pins zero loss
// of acknowledged writes: every Put (or every sweep-survivor) that returned
// success before the crash reads back byte-identical after recovery, and the
// scrub finds no corruption to quarantine.
//
// The store runs under SyncAlways so "acknowledged" and "durable" coincide
// at every instant — the strongest contract, and the one the crash points
// are placed to protect.
func TestCrashRecoveryMatrix(t *testing.T) {
	cases := []struct {
		name  string
		point string
		drive string // what exercises the point: "puts" rotate, "sweep" compact
	}{
		{"rotate-before-seal", CrashRotateBeforeSeal, "puts"},
		{"rotate-after-seal", CrashRotateAfterSeal, "puts"},
		{"compact-after-rewrite", CrashCompactAfterRewrite, "sweep"},
		{"compact-before-unlink", CrashCompactBeforeUnlink, "sweep"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenFileStoreWith(dir, FileStoreOptions{SegmentSize: 4096, SyncPolicy: SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			acked := make(map[hash.Hash]int) // id → fileChunk index, for content pinning
			crashed := false
			crash := func(fn func()) {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(crashSim); !ok {
							panic(r)
						}
						crashed = true
					}
				}()
				fn()
			}

			switch tc.drive {
			case "puts":
				s.SetCrashHook(func(point string, seg int) {
					if point == tc.point {
						panic(crashSim{point})
					}
				})
				for i := 0; i < 400 && !crashed; i++ {
					i := i
					crash(func() {
						c := fileChunk(i)
						if _, err := s.Put(c); err != nil {
							t.Fatal(err)
						}
						acked[c.ID()] = i
					})
				}
			case "sweep":
				for i := 0; i < 200; i++ {
					if _, err := s.Put(fileChunk(i)); err != nil {
						t.Fatal(err)
					}
				}
				keep := make(map[hash.Hash]bool)
				for i := 0; i < 100; i++ {
					id := fileChunk(i).ID()
					keep[id] = true
					acked[id] = i
				}
				s.SetCrashHook(func(point string, seg int) {
					if point == tc.point {
						panic(crashSim{point})
					}
				})
				crash(func() {
					if _, err := s.Sweep(func(id hash.Hash) bool { return keep[id] }, 0); err != nil {
						t.Fatal(err)
					}
				})
			}
			if !crashed {
				t.Fatalf("crash point %s never fired", tc.point)
			}
			if len(acked) == 0 {
				t.Fatal("nothing acknowledged before the crash; matrix proves nothing")
			}

			// "Process death": the crashed store is abandoned, the directory
			// reopened cold.
			s2, err := OpenFileStoreWith(dir, FileStoreOptions{SegmentSize: 4096})
			if err != nil {
				t.Fatalf("reopen after %s crash: %v", tc.point, err)
			}
			defer s2.Close()

			st, err := s2.Scrub()
			if err != nil {
				t.Fatalf("scrub after %s crash: %v", tc.point, err)
			}
			if st.Corrupt != 0 || st.Unreadable != 0 || len(st.Lost) != 0 || st.QuarantinedSegments != 0 {
				t.Fatalf("crash at %s left damage the scrub had to quarantine: %+v", tc.point, st)
			}
			if err := s2.Health(); err != nil {
				t.Fatalf("unhealthy after %s crash: %v", tc.point, err)
			}

			vs := NewVerifyingStore(s2)
			for id, i := range acked {
				c, err := vs.Get(id)
				if err != nil {
					t.Fatalf("acked chunk %d lost after %s crash: %v", i, tc.point, err)
				}
				if !bytes.Equal(c.Data(), fileChunk(i).Data()) {
					t.Fatalf("acked chunk %d corrupted after %s crash", i, tc.point)
				}
			}
		})
	}
}
