package store

import (
	"fmt"
	"sync"
	"testing"

	"forkbase/internal/chunk"
	"forkbase/internal/hash"
)

// benchChunks builds n distinct size-byte chunks (pre-hashed, so these
// benchmarks isolate the store layer).
func benchChunks(n, size int) []*chunk.Chunk {
	cs := make([]*chunk.Chunk, n)
	for i := range cs {
		data := make([]byte, size)
		for j := range data {
			data[j] = byte(i*131 + j*7)
		}
		copy(data, fmt.Sprintf("chunk-%d", i))
		cs[i] = chunk.New(chunk.TypeBlobLeaf, data)
	}
	return cs
}

// BenchmarkFileStoreIngest compares per-chunk Puts against group-committed
// batches for a serial writer.
func BenchmarkFileStoreIngest(b *testing.B) {
	cs := benchChunks(2000, 4096)
	for _, mode := range []string{"perchunk", "batched"} {
		b.Run(mode, func(b *testing.B) {
			b.SetBytes(int64(len(cs) * 4096))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fs, err := OpenFileStore(b.TempDir())
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if mode == "batched" {
					for off := 0; off < len(cs); off += DefaultSinkBatch {
						end := off + DefaultSinkBatch
						if end > len(cs) {
							end = len(cs)
						}
						if _, err := fs.PutBatch(cs[off:end]); err != nil {
							b.Fatal(err)
						}
					}
				} else {
					for _, c := range cs {
						if _, err := fs.Put(c); err != nil {
							b.Fatal(err)
						}
					}
					if err := fs.Flush(); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				fs.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkFileStorePutParallel measures concurrent raw-chunk ingest into
// one shared FileStore: 8 writers land disjoint pre-hashed chunk sets.  With
// per-chunk Puts every chunk is a mutex acquisition; with batches the lock
// is taken once per batch.  (Chunks are pre-hashed, so this isolates the
// store layer; the end-to-end comparison is pos.BenchmarkIngestParallel.)
func BenchmarkFileStorePutParallel(b *testing.B) {
	const writers = 8
	const perWriter = 1000
	cs := benchChunks(writers*perWriter, 1024)
	for _, mode := range []string{"perchunk", "batched"} {
		b.Run(mode, func(b *testing.B) {
			b.SetBytes(int64(len(cs) * 1024))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fs, err := OpenFileStore(b.TempDir())
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				var wg sync.WaitGroup
				for g := 0; g < writers; g++ {
					wg.Add(1)
					go func(part []*chunk.Chunk) {
						defer wg.Done()
						if mode == "batched" {
							for off := 0; off < len(part); off += DefaultSinkBatch {
								end := off + DefaultSinkBatch
								if end > len(part) {
									end = len(part)
								}
								if _, err := fs.PutBatch(part[off:end]); err != nil {
									b.Error(err)
									return
								}
							}
						} else {
							for _, c := range part {
								if _, err := fs.Put(c); err != nil {
									b.Error(err)
									return
								}
							}
						}
					}(cs[g*perWriter : (g+1)*perWriter])
				}
				wg.Wait()
				b.StopTimer()
				fs.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkChunkSink measures the full sink pipeline (hash + batch + store)
// over a MemStore.
func BenchmarkChunkSink(b *testing.B) {
	payloads := make([][]byte, 2000)
	for i := range payloads {
		p := make([]byte, 0, 4097)
		p = append(p, byte(chunk.TypeBlobLeaf))
		body := make([]byte, 4096)
		for j := range body {
			body[j] = byte(i*37 + j)
		}
		copy(body, fmt.Sprintf("p-%d", i))
		payloads[i] = append(p, body...)
	}
	b.SetBytes(int64(len(payloads) * 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms := NewMemStore()
		sink := NewChunkSink(ms, SinkOptions{})
		for _, p := range payloads {
			if _, err := sink.Emit(chunk.TypeBlobLeaf, p); err != nil {
				b.Fatal(err)
			}
		}
		if err := sink.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// coldStore builds a multi-segment store and reopens it in the given mode,
// returning the store and its chunk ids.
func coldStore(b *testing.B, noMmap bool) (*FileStore, []*chunk.Chunk) {
	b.Helper()
	dir := b.TempDir()
	cs := benchChunks(2000, 4096)
	builder, err := OpenFileStoreSegmented(dir, 256<<10)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := builder.PutBatch(cs); err != nil {
		b.Fatal(err)
	}
	builder.Close()
	fs, err := OpenFileStoreWith(dir, FileStoreOptions{SegmentSize: 256 << 10, NoMmap: noMmap})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { fs.Close() })
	return fs, cs
}

// BenchmarkFileStoreGetCold measures uncached point gets on sealed
// segments: the mmap path (zero-copy, claimed ids) against the positioned-
// read baseline (syscall + copy + hash per get).
func BenchmarkFileStoreGetCold(b *testing.B) {
	for _, mode := range []struct {
		name   string
		noMmap bool
	}{{"mmap", false}, {"pread", true}} {
		b.Run(mode.name, func(b *testing.B) {
			fs, cs := coldStore(b, mode.noMmap)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fs.Get(cs[i*7919%len(cs)].ID()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFileStoreGetColdParallel drives concurrent uncached gets through
// the sharded index and per-segment mappings; per-op latency should stay
// flat as workers increase (no lock convoy).
func BenchmarkFileStoreGetColdParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines-%d", workers), func(b *testing.B) {
			fs, cs := coldStore(b, false)
			b.SetParallelism(workers)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					i++
					if _, err := fs.Get(cs[i*7919%len(cs)].ID()); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkFileStoreSweep measures a full sweep-and-compact pass over a
// store whose chunks are half garbage.
func BenchmarkFileStoreSweep(b *testing.B) {
	cs := benchChunks(2000, 4096)
	keep := make(map[hash.Hash]bool, len(cs))
	for i, c := range cs {
		if i%2 == 0 {
			keep[c.ID()] = true
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fs, err := OpenFileStoreSegmented(b.TempDir(), 256<<10)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fs.PutBatch(cs); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := fs.Sweep(func(id hash.Hash) bool { return keep[id] }, 0); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		fs.Close()
	}
}
