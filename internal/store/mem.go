package store

import (
	"sync"
	"sync/atomic"

	"forkbase/internal/chunk"
	"forkbase/internal/hash"
)

// MemStore is an in-memory content-addressed chunk store.
// It is safe for concurrent use.
//
// The read path is deliberately cheap: Get takes only a read lock on the
// chunk map and bumps the retrieval counter atomically, so concurrent
// readers never serialize on each other — the property the paper's "reads
// scale with cores" traffic model depends on.
type MemStore struct {
	mu     sync.RWMutex
	chunks map[hash.Hash]*chunk.Chunk
	stats  Stats // Gets excluded; tracked in gets
	gets   atomic.Int64
}

var (
	_ BatchStore     = (*MemStore)(nil)
	_ BatchReadStore = (*MemStore)(nil)
)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{chunks: make(map[hash.Hash]*chunk.Chunk)}
}

// VerifyCacheTrusted implements VerifyCacheTruster: the store is this
// process's own memory, and the bytes behind an id never change once stored
// (Repair re-verifies before replacing), so no placement epoch is needed.
func (s *MemStore) VerifyCacheTrusted() bool { return true }

// Put implements Store.
func (m *MemStore) Put(c *chunk.Chunk) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.LogicalBytes += int64(c.Size())
	if _, ok := m.chunks[c.ID()]; ok {
		m.stats.DedupHits++
		return false, nil
	}
	m.chunks[c.ID()] = c
	m.stats.UniqueChunks++
	m.stats.PhysicalBytes += int64(c.Size())
	return true, nil
}

// PutBatch implements BatchStore: the whole batch is applied under one
// write-lock acquisition instead of one per chunk, so bulk ingest does not
// convoy concurrent readers on the mutex.
func (m *MemStore) PutBatch(cs []*chunk.Chunk) ([]bool, error) {
	fresh := make([]bool, len(cs))
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, c := range cs {
		m.stats.LogicalBytes += int64(c.Size())
		if _, ok := m.chunks[c.ID()]; ok {
			m.stats.DedupHits++
			continue
		}
		m.chunks[c.ID()] = c
		m.stats.UniqueChunks++
		m.stats.PhysicalBytes += int64(c.Size())
		fresh[i] = true
	}
	return fresh, nil
}

// Get implements Store.  Concurrent Gets proceed in parallel under a shared
// read lock; the stats counter is atomic so no writer lock is needed.
func (m *MemStore) Get(id hash.Hash) (*chunk.Chunk, error) {
	m.mu.RLock()
	c, ok := m.chunks[id]
	m.mu.RUnlock()
	m.gets.Add(1)
	if !ok {
		return nil, ErrNotFound
	}
	return c, nil
}

// GetBatch implements BatchReadStore: one read-lock round for the whole
// batch; absent ids yield nil slots.
func (m *MemStore) GetBatch(ids []hash.Hash) ([]*chunk.Chunk, error) {
	out := make([]*chunk.Chunk, len(ids))
	m.mu.RLock()
	for i, id := range ids {
		out[i] = m.chunks[id] // nil when absent
	}
	m.mu.RUnlock()
	m.gets.Add(int64(len(ids)))
	return out, nil
}

// Has implements Store.
func (m *MemStore) Has(id hash.Hash) (bool, error) {
	m.mu.RLock()
	_, ok := m.chunks[id]
	m.mu.RUnlock()
	return ok, nil
}

// HasBatch implements BatchReadStore under one read-lock round.
func (m *MemStore) HasBatch(ids []hash.Hash) ([]bool, error) {
	out := make([]bool, len(ids))
	m.mu.RLock()
	for i, id := range ids {
		_, out[i] = m.chunks[id]
	}
	m.mu.RUnlock()
	return out, nil
}

// Stats implements Store.
func (m *MemStore) Stats() Stats {
	m.mu.RLock()
	s := m.stats
	m.mu.RUnlock()
	s.Gets = m.gets.Load()
	return s
}

// Len returns the number of distinct chunks.
func (m *MemStore) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.chunks)
}

// IDs returns the ids of all stored chunks (order unspecified); used by the
// garbage collector and by tests.
func (m *MemStore) IDs() []hash.Hash {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]hash.Hash, 0, len(m.chunks))
	for id := range m.chunks {
		out = append(out, id)
	}
	return out
}

// Sweep implements Collector: every chunk keep rejects is removed under a
// single lock round.  The ratio is meaningless for a map-backed store and is
// ignored; reclaimed bytes equal swept bytes.  MemStore has no generational
// grace (it is not a GenerationalCollector): callers must compute keep with
// writers fenced — core.DB.GC does — and chunks staged outside fenced
// engine operations are collectable until their head publishes them.
func (m *MemStore) Sweep(keep func(hash.Hash) bool, _ float64) (SweepStats, error) {
	var res SweepStats
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, c := range m.chunks {
		if keep(id) {
			continue
		}
		delete(m.chunks, id)
		res.Swept++
		res.SweptBytes += int64(c.Size())
		res.SweptIDs = append(res.SweptIDs, id)
		m.stats.UniqueChunks--
		m.stats.PhysicalBytes -= int64(c.Size())
	}
	res.ReclaimedBytes = res.SweptBytes
	return res, nil
}

var _ Collector = (*MemStore)(nil)
var _ Repairer = (*MemStore)(nil)

// Repair implements Repairer: overwrite (or insert) the entry for c's id
// with a freshly verified copy.  Put would dedup-hit against a damaged
// resident entry; Repair replaces it.
func (m *MemStore) Repair(c *chunk.Chunk) error {
	if err := c.Recheck(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.chunks[c.ID()]; ok {
		m.stats.PhysicalBytes -= int64(old.Size())
	} else {
		m.stats.UniqueChunks++
	}
	m.chunks[c.ID()] = c
	m.stats.PhysicalBytes += int64(c.Size())
	return nil
}

// Delete removes a chunk (used by GC); it is a no-op if absent.
func (m *MemStore) Delete(id hash.Hash) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.chunks[id]; ok {
		m.stats.UniqueChunks--
		m.stats.PhysicalBytes -= int64(c.Size())
		delete(m.chunks, id)
	}
}
