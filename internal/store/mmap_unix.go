//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform can memory-map sealed segments.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared.  A zero-length file
// maps to a nil slice (mmap of length 0 is an error on most unices, and a
// sealed empty segment has nothing to read anyway).
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping produced by mmapFile.
func munmapFile(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}
