// Package store provides content-addressed chunk storage.
//
// A Store materialises chunks into physical storage keyed by their content
// hash: each distinct chunk is stored exactly once and may be shared by any
// number of logical objects (paper §II-C).  The package ships four
// implementations:
//
//   - MemStore: in-memory map, the default substrate for tests and benches.
//   - FileStore: durable segmented append-only log with an in-memory index.
//   - CountingStore: wrapper that tracks logical vs. physical bytes, the
//     instrument behind the storage-efficiency experiments (Fig 4).
//   - MaliciousStore: wrapper that can corrupt or forge chunks, the threat
//     model for the tamper-evidence experiments (Fig 6).
package store

import (
	"errors"
	"fmt"

	"forkbase/internal/chunk"
	"forkbase/internal/hash"
)

// ErrNotFound is returned when a requested chunk is absent.
var ErrNotFound = errors.New("store: chunk not found")

// ErrUnavailable marks a transient backend failure: the store (or the node
// in front of it) cannot serve the request *right now*, but retrying later
// may succeed.  Serving layers translate it into backpressure (REST replies
// 503 with Retry-After) instead of treating it as data loss.
var ErrUnavailable = errors.New("store: temporarily unavailable")

// ErrCorrupt marks stored bytes that no longer match their content address —
// bit rot, a torn write, or tampering.  It is the chunk layer's sentinel
// re-exported at the store boundary so callers classifying read failures
// (`errors.Is(err, store.ErrCorrupt)`) need not import the chunk package.
// Unlike ErrUnavailable it is not transient: retrying the same replica
// yields the same bytes; repair means refetching from another copy.
var ErrCorrupt = chunk.ErrCorrupt

// Store is a content-addressed chunk store.
//
// Implementations must be safe for concurrent use.
type Store interface {
	// Put stores c if absent.  It returns true when the chunk was new,
	// false when an identical chunk was already present (a dedup hit).
	Put(c *chunk.Chunk) (bool, error)
	// Get retrieves the chunk with the given id.
	Get(id hash.Hash) (*chunk.Chunk, error)
	// Has reports whether a chunk with the given id is present.
	Has(id hash.Hash) (bool, error)
	// Stats returns a snapshot of the store's accounting counters.
	Stats() Stats
}

// Stats captures the deduplication accounting of a store.
type Stats struct {
	// UniqueChunks is the number of distinct chunks physically stored.
	UniqueChunks int64
	// PhysicalBytes is the total encoded size of distinct chunks — what
	// actually occupies storage.
	PhysicalBytes int64
	// LogicalBytes is the total encoded size of all Put calls including
	// duplicates — what a non-deduplicating store would occupy.
	LogicalBytes int64
	// DedupHits counts Put calls that found the chunk already present.
	DedupHits int64
	// Gets counts chunk retrievals.
	Gets int64
}

// DedupRatio returns LogicalBytes/PhysicalBytes (1.0 means no sharing).
func (s Stats) DedupRatio() float64 {
	if s.PhysicalBytes == 0 {
		return 1
	}
	return float64(s.LogicalBytes) / float64(s.PhysicalBytes)
}

// SavedBytes returns the bytes avoided thanks to deduplication.
func (s Stats) SavedBytes() int64 { return s.LogicalBytes - s.PhysicalBytes }

func (s Stats) String() string {
	return fmt.Sprintf("chunks=%d physical=%dB logical=%dB dedup=%.2fx hits=%d",
		s.UniqueChunks, s.PhysicalBytes, s.LogicalBytes, s.DedupRatio(), s.DedupHits)
}

// MustPut stores c into s and panics on error; for internal writers whose
// stores are infallible (MemStore).
func MustPut(s Store, c *chunk.Chunk) {
	if _, err := s.Put(c); err != nil {
		panic(fmt.Sprintf("store: put failed: %v", err))
	}
}

// BatchStore is the optional capability of stores that can ingest a batch of
// chunks in one locking round: MemStore takes its write lock once for the
// whole batch, FileStore group-commits the batch with a single index pass,
// one buffered write sequence and one flush.  Wrappers (verifying, counting,
// malicious, node-cached) forward the capability so a batch put composes with
// the same layering as a single put.
type BatchStore interface {
	Store
	// PutBatch stores every chunk of cs that is absent.  fresh[i] reports
	// whether cs[i] was new (false = dedup hit).  Implementations must
	// either apply the whole batch or return an error having applied a
	// prefix; they never skip chunks silently.
	PutBatch(cs []*chunk.Chunk) (fresh []bool, err error)
}

// BatchReadStore is the optional capability of stores that can answer many
// point reads in one round: MemStore holds its read lock once for the whole
// batch, and RemoteStore ships the whole id list in a single request —
// the capability Merkle-delta replication's frontier walk is built on (one
// round trip per tree level instead of one per chunk).
type BatchReadStore interface {
	Store
	// GetBatch retrieves the chunks with the given ids.  out[i] is nil when
	// ids[i] is absent — absence is not an error, so one batched call
	// replaces the Get-and-check loop of a sync walk.
	GetBatch(ids []hash.Hash) ([]*chunk.Chunk, error)
	// HasBatch reports presence for every id.
	HasBatch(ids []hash.Hash) ([]bool, error)
}

// GetBatch reads ids from s, using the native batch path when s implements
// BatchReadStore and falling back to per-id Gets otherwise.  Missing chunks
// yield nil slots, never an error.
func GetBatch(s Store, ids []hash.Hash) ([]*chunk.Chunk, error) {
	if bs, ok := s.(BatchReadStore); ok {
		return bs.GetBatch(ids)
	}
	out := make([]*chunk.Chunk, len(ids))
	for i, id := range ids {
		c, err := s.Get(id)
		if errors.Is(err, ErrNotFound) {
			continue
		}
		if err != nil {
			return out, err
		}
		out[i] = c
	}
	return out, nil
}

// HasBatch reports presence of ids in s, using the native batch path when
// available.
func HasBatch(s Store, ids []hash.Hash) ([]bool, error) {
	if bs, ok := s.(BatchReadStore); ok {
		return bs.HasBatch(ids)
	}
	out := make([]bool, len(ids))
	for i, id := range ids {
		ok, err := s.Has(id)
		if err != nil {
			return out, err
		}
		out[i] = ok
	}
	return out, nil
}

// SweepStats reports what a Collector's Sweep removed and reclaimed.
type SweepStats struct {
	// Swept is the number of chunks removed.
	Swept int
	// SweptBytes is the summed encoded size of removed chunks.
	SweptBytes int64
	// ReclaimedBytes is the physical storage returned: for memory stores it
	// equals SweptBytes; for file stores it is the on-disk footprint of
	// compacted-away segments net of the live bytes rewritten out of them.
	ReclaimedBytes int64
	// CompactedSegments counts log segments rewritten and unlinked.
	CompactedSegments int
	// MovedBytes is the on-disk volume of live records compaction rewrote.
	MovedBytes int64
	// SweptIDs lists the removed chunk ids, so callers can purge caches
	// layered above the store.
	SweptIDs []hash.Hash
	// MovedIDs lists live chunks that compaction physically relocated.
	// Their content is unchanged (content addressing guarantees it), but
	// caches holding decoded forms that alias old storage should purge them.
	MovedIDs []hash.Hash
}

// Collector is the optional capability garbage collection needs: a bulk
// sweep that removes every chunk the caller does not keep and reclaims the
// underlying storage.  Both built-in stores implement it — MemStore deletes
// map entries under one lock round; FileStore additionally compacts log
// segments whose dead-byte ratio reaches minDeadRatio (0 compacts any
// garbage; memory stores ignore the ratio).
//
// keep may be called with internal locks held and must not call back into
// the store.  Stores without this capability (and without the legacy
// per-chunk core.Collectable surface) are not collectable: core.DB.GC
// returns ErrNotCollectable for them.
type Collector interface {
	Sweep(keep func(hash.Hash) bool, minDeadRatio float64) (SweepStats, error)
}

// GenerationalCollector marks a Collector whose *online* sweeps
// (minDeadRatio > 0) exempt every chunk written since the previous sweep.
// With that guarantee a garbage collector may compute its reachability view
// concurrently with writers — anything staged during the (unfenced) mark is
// too young to collect — and needs to exclude writers only for the sweep
// itself.  FileStore implements it via its segment-generation watermark.
type GenerationalCollector interface {
	Collector
	// GraceGenerations is a marker; it performs no work.
	GraceGenerations()
}

// Scrubber is the optional capability of stores that can audit their own
// physical media: a full pass that rehashes every stored record against its
// content address, quarantines damaged storage units without destroying
// them, and reports a health state afterwards.  FileStore implements it over
// its log segments; pure in-memory stores have nothing to scrub.
type Scrubber interface {
	// Scrub audits every storage unit and quarantines the damaged ones.
	Scrub() (ScrubStats, error)
	// Health reports nil when no known-lost chunks remain, or an error
	// wrapping ErrCorrupt while chunks detected as lost await repair.
	Health() error
}

// Repairer is the optional capability Heal uses to replace a chunk whose
// stored bytes are damaged: unlike Put — which would dedup-hit against the
// still-indexed broken copy and change nothing — Repair writes a fresh
// verified copy and repoints the index at it.  Inserting an absent chunk is
// also valid (repair of a lost record degenerates to a put).
type Repairer interface {
	Repair(c *chunk.Chunk) error
}

// ScrubStats reports one scrub pass (or the equivalent classification run at
// recovery).  Counters are per record except Segments/Unreadable/Quarantined,
// which count storage units.
type ScrubStats struct {
	// Segments is the number of storage units scanned.
	Segments int
	// ScannedBytes is the physical volume rehashed.
	ScannedBytes int64
	// Ok counts records whose content matches their id.
	Ok int
	// Corrupt counts records whose content rehashes to a different id.
	Corrupt int
	// Torn counts malformed or truncated records (the sequential scan of a
	// unit stops at the first tear; indexed records beyond it are still
	// rescued individually during quarantine).
	Torn int
	// Unreadable counts storage units whose bytes could not be read at all.
	Unreadable int
	// QuarantinedSegments counts units set aside (renamed, never unlinked).
	QuarantinedSegments int
	// Rescued counts intact records re-written out of quarantined units.
	Rescued int
	// Lost lists indexed chunk ids with no surviving intact copy; they stay
	// in the store's health state until something (Heal) re-stores them.
	Lost []hash.Hash
	// ElapsedNs is the wall time of the pass.
	ElapsedNs int64
}

// PutBatch stores cs into s, using the native batch path when s implements
// BatchStore and falling back to per-chunk Puts otherwise.  It is the one
// entry point batch producers (the chunk sink, fnode.SaveAll, the network
// server) should use, so a store lacking the capability still works.
func PutBatch(s Store, cs []*chunk.Chunk) ([]bool, error) {
	if bs, ok := s.(BatchStore); ok {
		return bs.PutBatch(cs)
	}
	fresh := make([]bool, len(cs))
	for i, c := range cs {
		f, err := s.Put(c)
		if err != nil {
			return fresh, err
		}
		fresh[i] = f
	}
	return fresh, nil
}
