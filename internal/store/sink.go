package store

import (
	"errors"
	"runtime"
	"sync"

	"forkbase/internal/chunk"
	"forkbase/internal/hash"
)

// ChunkSink is the batched, pipelined write path between chunk producers
// (POS-Tree builders, fnode writers) and a Store.
//
// Producers hand the sink contiguous [type][payload] encodings via Emit and
// receive a pointer that will hold the chunk id.  The sink hashes encodings
// on a small worker pool (so SHA-256 overlaps chunking on multi-core hosts),
// assembles chunks into batches, and lands each batch with one PutBatch —
// one store lock round and, for FileStore, one group-commit flush — instead
// of one synchronous Put per chunk.  An optional dedup pre-check consults
// Has before queueing a write, so re-emitting shared subtrees (edits,
// merges, rebuilds) costs read-locked index lookups, not writes.
//
// Emit, Barrier, Flush and Close must be called from a single producer
// goroutine; the hashing workers are internal.  Errors are sticky: after a
// store failure every subsequent call reports it.
type ChunkSink struct {
	st  Store
	opt SinkOptions

	jobs    chan sinkJob
	workers sync.WaitGroup // hashing workers
	pending sync.WaitGroup // emitted but not yet hashed+queued jobs

	mu    sync.Mutex
	batch []*chunk.Chunk
	err   error
	stats SinkStats

	// idBlock hands out id slots in blocks (producer goroutine only).
	idBlock []hash.Hash
}

// SinkOptions tune a ChunkSink.
type SinkOptions struct {
	// BatchSize is the number of chunks per PutBatch (default 128).
	BatchSize int
	// Hashers is the number of hashing workers.  0 picks a default: a
	// preference attached to the store (see WithSinkHashers) if present,
	// otherwise min(GOMAXPROCS-1, 4) — synchronous when that is zero, i.e.
	// at GOMAXPROCS=1, where worker handoff cannot overlap with anything.
	//
	// The cap of 4 is the single-producer saturation point, re-checked
	// against the GOMAXPROCS={1,4,8} scale matrix (BENCH_7): SHA-256 over a
	// ~4 KiB node costs a small multiple of what encoding and boundary-
	// scanning the same node costs, so one producer can keep roughly four
	// hashers busy before production becomes the bottleneck and extra
	// workers only add channel handoff.  Parallel bulk builds don't raise
	// the cap — they scale the other axis, running several producers whose
	// sinks hash synchronously (see pos.BuildMapParallel).
	Hashers int
	// hashersSet distinguishes an explicit Hashers: 0 from the zero value.
	hashersSet bool
	// Dedup enables the Has pre-check: chunks already present are counted
	// and dropped without entering a batch.  Leave it off for fresh builds
	// whose dedup accounting feeds the storage experiments; turn it on for
	// edits and merges that re-emit shared subtrees.
	Dedup bool
}

// SyncHashers returns o with hashing pinned to the producer goroutine,
// regardless of GOMAXPROCS.
func (o SinkOptions) SyncHashers() SinkOptions {
	o.Hashers = 0
	o.hashersSet = true
	return o
}

// SinkStats instrument a sink's lifetime.
type SinkStats struct {
	// Emitted counts Emit calls; Deduped of those were dropped by the Has
	// pre-check; the rest were handed to the store in Batches batches.
	Emitted, Deduped, Batches int64
	// Bytes is the total encoded size handed to Emit.
	Bytes int64
}

// sinkJob is one emitted encoding awaiting hashing.  enc is [type][payload];
// in synchronous mode it aliases the producer's scratch buffer (valid only
// until process returns), in asynchronous mode it is the sink's own copy.
type sinkJob struct {
	typ chunk.Type
	enc []byte
	id  *hash.Hash // filled once hashed
}

// DefaultSinkBatch is the default chunks-per-batch.
const DefaultSinkBatch = 128

// errSinkClosed reports use after Close.
var errSinkClosed = errors.New("store: chunk sink closed")

// NewChunkSink builds a sink over st.
func NewChunkSink(st Store, opt SinkOptions) *ChunkSink {
	if opt.BatchSize <= 0 {
		opt.BatchSize = DefaultSinkBatch
	}
	if !opt.hashersSet && opt.Hashers == 0 {
		if n := SinkHashersOf(st); n != 0 {
			// A preference attached to the store wins over the built-in
			// default (negative = explicitly synchronous).
			opt.Hashers = n
		} else {
			opt.Hashers = runtime.GOMAXPROCS(0) - 1
			if opt.Hashers > 4 {
				opt.Hashers = 4
			}
		}
		if opt.Hashers < 0 {
			opt.Hashers = 0
		}
	}
	s := &ChunkSink{st: st, opt: opt, batch: make([]*chunk.Chunk, 0, opt.BatchSize)}
	if opt.Hashers > 0 {
		s.jobs = make(chan sinkJob, opt.Hashers*4)
		for i := 0; i < opt.Hashers; i++ {
			s.workers.Add(1)
			go s.hashLoop()
		}
	}
	return s
}

// Emit schedules one chunk: enc is the contiguous chunk encoding
// [byte(t)][payload...], borrowed only for the duration of the call — the
// sink copies the bytes it keeps, so producers reuse one scratch buffer per
// level instead of allocating per node.  The returned pointer holds the
// chunk id after the next Barrier, Flush or Close; in synchronous mode it is
// filled before Emit returns.
//
// The error reported is sticky store failure from *earlier* work; the chunk
// handed in may still be in flight when Emit returns nil.
func (s *ChunkSink) Emit(t chunk.Type, enc []byte) (*hash.Hash, error) {
	s.mu.Lock()
	err := s.err
	s.stats.Emitted++
	s.stats.Bytes += int64(len(enc))
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	job := sinkJob{typ: t, id: s.newID()}
	if s.jobs == nil {
		// Synchronous: hash straight off the borrowed scratch, copy only the
		// surviving payload.
		job.enc = enc
		s.process(job)
	} else {
		job.enc = append(make([]byte, 0, len(enc)), enc...)
		s.pending.Add(1)
		s.jobs <- job
	}
	return job.id, nil
}

// newID hands out id slots from blocks, avoiding one tiny allocation per
// chunk.  Called only from the producer goroutine (Emit).
//
// Block sizing: 64 slots × hash.Size (32 B) = one 2 KiB slab per 64 emitted
// chunks — half a default batch.  That cuts the allocator to one call per 64
// ids (under 2% of Emit calls) while keeping each slab small enough that a
// slab pinned by one long-lived id wastes at most 2 KiB.  Bigger blocks buy
// nothing measurable (the allocation is already off the hot path) and
// retain proportionally more memory per pinned id.
func (s *ChunkSink) newID() *hash.Hash {
	if len(s.idBlock) == cap(s.idBlock) {
		s.idBlock = make([]hash.Hash, 0, 64)
	}
	s.idBlock = s.idBlock[:len(s.idBlock)+1]
	return &s.idBlock[len(s.idBlock)-1]
}

func (s *ChunkSink) hashLoop() {
	defer s.workers.Done()
	for job := range s.jobs {
		s.process(job)
		s.pending.Done()
	}
}

// process hashes one job, runs the dedup pre-check, and queues the chunk,
// writing a full batch out to the store.
func (s *ChunkSink) process(job sinkJob) {
	// The sink is the in-process trusted hashing site: the provenance token
	// minted here is what lets the verifying write path accept the chunk
	// without paying a second hash.
	prov := chunk.HashEncoding(job.id, job.enc)
	if s.opt.Dedup {
		// Pre-check before materialising the payload: a dedup hit costs a
		// read-locked index lookup and no copy, no write.
		ok, err := s.st.Has(*job.id)
		if err != nil {
			s.fail(err)
			return
		}
		if ok {
			s.mu.Lock()
			s.stats.Deduped++
			s.mu.Unlock()
			return
		}
	}
	payload := job.enc[1:]
	if s.jobs == nil {
		// Synchronous mode borrowed the producer's scratch: copy exactly
		// what survives.
		payload = append(make([]byte, 0, len(payload)), payload...)
	} else if cap(payload) > len(payload)+len(payload)/4+64 {
		// Trim a generously grown buffer so it does not pin its slack for
		// the chunk's lifetime.
		payload = append(make([]byte, 0, len(payload)), payload...)
	}
	c := chunk.NewPrehashed(job.typ, payload, *job.id, prov)
	s.mu.Lock()
	s.batch = append(s.batch, c)
	if len(s.batch) < s.opt.BatchSize {
		s.mu.Unlock()
		return
	}
	full := s.batch
	s.batch = make([]*chunk.Chunk, 0, s.opt.BatchSize)
	s.stats.Batches++
	s.mu.Unlock()
	if _, err := PutBatch(s.st, full); err != nil {
		s.fail(err)
	}
}

func (s *ChunkSink) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// Barrier waits until every emitted chunk has been hashed (all id pointers
// resolved) and reports any store failure so far.  Chunks may still sit in
// the open batch — call Flush to land them.
func (s *ChunkSink) Barrier() error {
	s.pending.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Flush barriers and writes the open partial batch to the store.
func (s *ChunkSink) Flush() error {
	if err := s.Barrier(); err != nil {
		return err
	}
	s.mu.Lock()
	rest := s.batch
	s.batch = s.batch[len(s.batch):]
	if len(rest) > 0 {
		s.stats.Batches++
	}
	s.mu.Unlock()
	if len(rest) == 0 {
		return nil
	}
	if _, err := PutBatch(s.st, rest); err != nil {
		s.fail(err)
		return err
	}
	return nil
}

// Close flushes and stops the hashing workers.  The sink is unusable after.
func (s *ChunkSink) Close() error {
	err := s.Flush()
	if s.jobs != nil {
		close(s.jobs)
		s.workers.Wait()
		s.jobs = nil
	}
	s.fail(errSinkClosed)
	if err == nil || errors.Is(err, errSinkClosed) {
		return nil
	}
	return err
}

// Stats snapshots the sink counters.
func (s *ChunkSink) Stats() SinkStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
