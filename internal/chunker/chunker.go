// Package chunker turns byte streams and entry streams into content-defined
// chunks using the rolling-hash pattern of package rolling.
//
// Two chunkers are provided:
//
//   - ByteChunker splits a raw byte stream (used for blob leaves).
//   - EntryChunker splits a stream of variable-length entries so that no
//     entry straddles a chunk boundary; if the pattern fires mid-entry the
//     boundary is extended to the end of that entry, exactly as described in
//     §II-A of the paper ("If a pattern occurs in the middle of an entry,
//     the page boundary is extended to cover the whole entry").
//
// Both enforce minimum and maximum chunk sizes.  Because the min/max guards
// and the rolling hash are deterministic functions of the bytes following
// the previous boundary, chunking remains a pure function of the stream —
// the property that makes POS-Tree structurally invariant.
package chunker

import (
	"fmt"

	"forkbase/internal/rolling"
)

// Algorithm selects the boundary-detection hash.
type Algorithm uint8

// Boundary-detection algorithms.
const (
	// AlgoRolling is the cyclic-polynomial (buzhash-style) rolling hash of
	// the paper — the default; all pre-existing data was chunked with it.
	AlgoRolling Algorithm = 0
	// AlgoGear is the FastCDC-2020-style gear hash with normalized masks:
	// one shift-and-add per byte, no ring buffer, chunk sizes pulled
	// toward 2^Q by a strict-then-loose mask pair.  Structural invariance
	// holds exactly as for the rolling hash — but the two algorithms place
	// different boundaries, so mixing them across stores that should dedup
	// against each other forfeits sharing.
	AlgoGear Algorithm = 1
)

func (a Algorithm) String() string {
	switch a {
	case AlgoRolling:
		return "rolling"
	case AlgoGear:
		return "gear"
	default:
		return fmt.Sprintf("algo(%d)", uint8(a))
	}
}

// Config controls chunk-boundary detection.
type Config struct {
	// Q is the pattern bit-width; expected chunk size is 2^Q bytes.
	Q uint
	// Window is the rolling hash window size in bytes (AlgoRolling only;
	// the gear hash has a fixed implicit window).
	Window int
	// MinSize suppresses patterns before this many bytes of a chunk,
	// avoiding degenerate tiny chunks.
	MinSize int
	// MaxSize forces a boundary after this many bytes even without a
	// pattern, bounding worst-case node size.
	MaxSize int
	// Algo selects the boundary hash (default AlgoRolling).
	Algo Algorithm
}

// Validate rejects configurations that would chunk nonsensically, so a bad
// config fails at DB open instead of deep inside the first build.  It
// checks the *explicit* values: zero-value fields are filled by the same
// defaults the chunkers apply (Normalized), and a fully zero Config means
// "use defaults" and should not be validated at all.
func (c Config) Validate() error {
	if c.Q < 1 || c.Q > 30 {
		return fmt.Errorf("chunker: Q=%d out of range [1,30] (expected chunk size is 2^Q bytes)", c.Q)
	}
	// The gear hash has a fixed implicit window; Window only configures the
	// rolling hash, so a gear config legitimately leaves it zero.
	if c.Algo != AlgoGear {
		if c.Window <= 0 {
			return fmt.Errorf("chunker: Window=%d must be positive", c.Window)
		}
		if c.Window > 1<<20 {
			return fmt.Errorf("chunker: Window=%d is absurd (max 1 MiB)", c.Window)
		}
	}
	if c.MinSize <= 0 {
		return fmt.Errorf("chunker: MinSize=%d must be positive", c.MinSize)
	}
	if c.MinSize >= c.MaxSize {
		return fmt.Errorf("chunker: MinSize=%d must be smaller than MaxSize=%d", c.MinSize, c.MaxSize)
	}
	switch c.Algo {
	case AlgoRolling, AlgoGear:
	default:
		return fmt.Errorf("chunker: unknown algorithm %d", c.Algo)
	}
	return nil
}

// DefaultConfig yields ~4 KiB average chunks, the sweet spot the ForkBase
// paper uses for page-level deduplication.
func DefaultConfig() Config {
	return Config{Q: 12, Window: rolling.DefaultWindow, MinSize: 1 << 9, MaxSize: 1 << 16}
}

// SmallConfig yields ~256 B average chunks; useful for index levels and for
// tests that want deep trees from small inputs.
func SmallConfig() Config {
	return Config{Q: 8, Window: rolling.DefaultWindow, MinSize: 1 << 5, MaxSize: 1 << 12}
}

// Normalized returns the config with zero or inconsistent fields replaced by
// the same defaults the chunkers apply internally, so callers that read the
// bounds directly (the bulk-scanning node builders) agree with the chunkers.
func (c Config) Normalized() Config { return c.validate() }

func (c Config) validate() Config {
	if c.Q == 0 {
		c.Q = 12
	}
	if c.Window <= 0 {
		c.Window = rolling.DefaultWindow
	}
	if c.MinSize <= 0 {
		c.MinSize = 1
	}
	if c.MaxSize < c.MinSize {
		c.MaxSize = c.MinSize * 64
	}
	return c
}

// byteBoundary is the per-byte boundary hash behind both chunkers: Roll
// feeds one byte and reports a split-pattern hit (min/max guards are the
// chunkers' concern).  rolling.GearHash satisfies it directly; the cyclic
// polynomial adapts via rollingBoundary — so the Algo dispatch happens
// once, in newByteBoundary, instead of at every per-byte call site.
type byteBoundary interface {
	Roll(b byte) bool
	Reset()
}

// rollingBoundary adapts rolling.Hasher to the byteBoundary contract.
type rollingBoundary struct{ h *rolling.Hasher }

func (r rollingBoundary) Roll(b byte) bool { r.h.Roll(b); return r.h.OnPattern() }
func (r rollingBoundary) Reset()           { r.h.Reset() }

// newByteBoundary picks the boundary hash for a (validated) config.
func newByteBoundary(cfg Config) byteBoundary {
	if cfg.Algo == AlgoGear {
		return rolling.NewGearHash(cfg.Q)
	}
	return rollingBoundary{h: rolling.New(cfg.Q, cfg.Window)}
}

// ByteChunker consumes bytes and reports boundaries.
// Not safe for concurrent use.
type ByteChunker struct {
	cfg Config
	bh  byteBoundary
	n   int // bytes since last boundary
}

// NewByteChunker returns a chunker with the given configuration.
func NewByteChunker(cfg Config) *ByteChunker {
	cfg = cfg.validate()
	return &ByteChunker{cfg: cfg, bh: newByteBoundary(cfg)}
}

// Write feeds p into the chunker and returns the offsets (relative to the
// start of p) immediately after which a boundary occurs.
func (b *ByteChunker) Write(p []byte) []int {
	var cuts []int
	for i, by := range p {
		if b.roll(by) {
			cuts = append(cuts, i+1)
			b.reset()
		}
	}
	return cuts
}

// Roll feeds a single byte; it returns true if a boundary occurs after it.
func (b *ByteChunker) Roll(by byte) bool {
	if b.roll(by) {
		b.reset()
		return true
	}
	return false
}

// roll feeds one byte and reports whether a boundary occurs after it,
// without resetting.
func (b *ByteChunker) roll(by byte) bool {
	hit := b.bh.Roll(by)
	b.n++
	if b.n >= b.cfg.MaxSize {
		return true
	}
	return b.n >= b.cfg.MinSize && hit
}

func (b *ByteChunker) reset() {
	b.bh.Reset()
	b.n = 0
}

// Reset restarts the chunker at a boundary.
func (b *ByteChunker) Reset() { b.reset() }

// SplitBytes slices data into content-defined segments.  The concatenation of
// the returned segments equals data, every segment except possibly the last
// ends at a pattern (or the max-size guard), and the split depends only on
// the content of data.
func SplitBytes(data []byte, cfg Config) [][]byte {
	if len(data) == 0 {
		return nil
	}
	c := NewByteChunker(cfg)
	var out [][]byte
	start := 0
	for i := 0; i < len(data); i++ {
		if c.Roll(data[i]) {
			out = append(out, data[start:i+1])
			start = i + 1
		}
	}
	if start < len(data) {
		out = append(out, data[start:])
	}
	return out
}

// EntryChunker consumes whole entries (as encoded byte slices) and decides
// after each entry whether a node boundary occurs.
// Not safe for concurrent use.
type EntryChunker struct {
	cfg     Config
	bh      byteBoundary
	bytes   int // bytes since last boundary
	entries int // entries since last boundary
	// MaxEntries optionally bounds entries per node (0 = no bound).
	MaxEntries int
}

// NewEntryChunker returns an entry-aligned chunker.
func NewEntryChunker(cfg Config) *EntryChunker {
	cfg = cfg.validate()
	return &EntryChunker{cfg: cfg, bh: newByteBoundary(cfg)}
}

// Add feeds one encoded entry and reports whether the node should be closed
// after it.  A pattern anywhere inside the entry (at or past MinSize) closes
// the node at the entry's end — the "extend the boundary to cover the whole
// entry" rule.
func (e *EntryChunker) Add(encoded []byte) bool {
	hit := false
	for _, by := range encoded {
		on := e.bh.Roll(by)
		e.bytes++
		if !hit && e.bytes >= e.cfg.MinSize && on {
			hit = true
		}
	}
	e.entries++
	if e.bytes >= e.cfg.MaxSize {
		hit = true
	}
	if e.MaxEntries > 0 && e.entries >= e.MaxEntries {
		hit = true
	}
	if hit {
		e.Reset()
	}
	return hit
}

// Reset restarts the chunker at a node boundary.
func (e *EntryChunker) Reset() {
	e.bh.Reset()
	e.bytes = 0
	e.entries = 0
}

// indexFanoutBits chooses the expected children per index node (2^bits) so
// that index nodes stay size-proportionate to leaves: an index entry is
// ~48 bytes (split key + 32-byte hash + count), so matching the 2^Q leaf
// target gives bits ≈ Q-6, clamped so reduction stays geometric (≥4× per
// level) and nodes stay bounded (≤256 children on average).
func indexFanoutBits(q uint) uint {
	bits := int(q) - 6
	if bits < 2 {
		bits = 2
	}
	if bits > 8 {
		bits = 8
	}
	return uint(bits)
}

// IndexMaxEntries bounds index-node width regardless of pattern luck.
const IndexMaxEntries = 1 << 10

// IndexChunker decides node boundaries for POS-Tree *index* levels with
// entry-granular patterns: after each entry the rolling hash's low
// IndexFanoutBits bits decide the split, so the boundary probability is
// independent of entry size.  Combined with a two-entry minimum this
// guarantees every index level at most halves the node count — byte-granular
// patterns cannot promise that when entries are longer than the expected
// pattern distance, which would stall tree construction.
//
// Like the byte-granular chunker it is a pure function of the entry stream,
// so structural invariance and incremental-edit re-synchronisation hold
// unchanged.
type IndexChunker struct {
	h       *rolling.Hasher
	mask    uint64
	entries int
}

// NewIndexChunker returns an index-level chunker for the configuration.
func NewIndexChunker(cfg Config) *IndexChunker {
	cfg = cfg.validate()
	bits := indexFanoutBits(cfg.Q)
	if cfg.Q < bits {
		bits = cfg.Q
	}
	return &IndexChunker{
		h:    rolling.New(cfg.Q, cfg.Window),
		mask: (uint64(1) << bits) - 1,
	}
}

// Add feeds one encoded index entry; it reports whether the node closes
// after it.
func (c *IndexChunker) Add(encoded []byte) bool {
	c.h.Write(encoded)
	c.entries++
	hit := c.entries >= 2 && c.h.Sum64()&c.mask == 0
	if c.entries >= IndexMaxEntries {
		hit = true
	}
	if hit {
		c.Reset()
	}
	return hit
}

// Reset restarts the chunker at a node boundary.
func (c *IndexChunker) Reset() {
	c.h.Reset()
	c.entries = 0
}

// Boundary is the decision interface shared by the entry-granular leaf
// chunker and the index chunker.
type Boundary interface {
	// Add feeds one encoded entry and reports whether a node boundary
	// occurs after it.
	Add(encoded []byte) bool
	// Reset restarts the decision state at a boundary.
	Reset()
}

var (
	_ Boundary = (*EntryChunker)(nil)
	_ Boundary = (*IndexChunker)(nil)
)
