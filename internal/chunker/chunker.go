// Package chunker turns byte streams and entry streams into content-defined
// chunks using the rolling-hash pattern of package rolling.
//
// Two chunkers are provided:
//
//   - ByteChunker splits a raw byte stream (used for blob leaves).
//   - EntryChunker splits a stream of variable-length entries so that no
//     entry straddles a chunk boundary; if the pattern fires mid-entry the
//     boundary is extended to the end of that entry, exactly as described in
//     §II-A of the paper ("If a pattern occurs in the middle of an entry,
//     the page boundary is extended to cover the whole entry").
//
// Both enforce minimum and maximum chunk sizes.  Because the min/max guards
// and the rolling hash are deterministic functions of the bytes following
// the previous boundary, chunking remains a pure function of the stream —
// the property that makes POS-Tree structurally invariant.
package chunker

import "forkbase/internal/rolling"

// Config controls chunk-boundary detection.
type Config struct {
	// Q is the pattern bit-width; expected chunk size is 2^Q bytes.
	Q uint
	// Window is the rolling hash window size in bytes.
	Window int
	// MinSize suppresses patterns before this many bytes of a chunk,
	// avoiding degenerate tiny chunks.
	MinSize int
	// MaxSize forces a boundary after this many bytes even without a
	// pattern, bounding worst-case node size.
	MaxSize int
}

// DefaultConfig yields ~4 KiB average chunks, the sweet spot the ForkBase
// paper uses for page-level deduplication.
func DefaultConfig() Config {
	return Config{Q: 12, Window: rolling.DefaultWindow, MinSize: 1 << 9, MaxSize: 1 << 16}
}

// SmallConfig yields ~256 B average chunks; useful for index levels and for
// tests that want deep trees from small inputs.
func SmallConfig() Config {
	return Config{Q: 8, Window: rolling.DefaultWindow, MinSize: 1 << 5, MaxSize: 1 << 12}
}

// Normalized returns the config with zero or inconsistent fields replaced by
// the same defaults the chunkers apply internally, so callers that read the
// bounds directly (the bulk-scanning node builders) agree with the chunkers.
func (c Config) Normalized() Config { return c.validate() }

func (c Config) validate() Config {
	if c.Q == 0 {
		c.Q = 12
	}
	if c.Window <= 0 {
		c.Window = rolling.DefaultWindow
	}
	if c.MinSize <= 0 {
		c.MinSize = 1
	}
	if c.MaxSize < c.MinSize {
		c.MaxSize = c.MinSize * 64
	}
	return c
}

// ByteChunker consumes bytes and reports boundaries.
// Not safe for concurrent use.
type ByteChunker struct {
	cfg Config
	h   *rolling.Hasher
	n   int // bytes since last boundary
}

// NewByteChunker returns a chunker with the given configuration.
func NewByteChunker(cfg Config) *ByteChunker {
	cfg = cfg.validate()
	return &ByteChunker{cfg: cfg, h: rolling.New(cfg.Q, cfg.Window)}
}

// Write feeds p into the chunker and returns the offsets (relative to the
// start of p) immediately after which a boundary occurs.
func (b *ByteChunker) Write(p []byte) []int {
	var cuts []int
	for i, by := range p {
		b.h.Roll(by)
		b.n++
		if b.boundary() {
			cuts = append(cuts, i+1)
			b.reset()
		}
	}
	return cuts
}

// Roll feeds a single byte; it returns true if a boundary occurs after it.
func (b *ByteChunker) Roll(by byte) bool {
	b.h.Roll(by)
	b.n++
	if b.boundary() {
		b.reset()
		return true
	}
	return false
}

func (b *ByteChunker) boundary() bool {
	if b.n >= b.cfg.MaxSize {
		return true
	}
	return b.n >= b.cfg.MinSize && b.h.OnPattern()
}

func (b *ByteChunker) reset() {
	b.h.Reset()
	b.n = 0
}

// Reset restarts the chunker at a boundary.
func (b *ByteChunker) Reset() { b.reset() }

// SplitBytes slices data into content-defined segments.  The concatenation of
// the returned segments equals data, every segment except possibly the last
// ends at a pattern (or the max-size guard), and the split depends only on
// the content of data.
func SplitBytes(data []byte, cfg Config) [][]byte {
	if len(data) == 0 {
		return nil
	}
	c := NewByteChunker(cfg)
	var out [][]byte
	start := 0
	for i := 0; i < len(data); i++ {
		if c.Roll(data[i]) {
			out = append(out, data[start:i+1])
			start = i + 1
		}
	}
	if start < len(data) {
		out = append(out, data[start:])
	}
	return out
}

// EntryChunker consumes whole entries (as encoded byte slices) and decides
// after each entry whether a node boundary occurs.
// Not safe for concurrent use.
type EntryChunker struct {
	cfg     Config
	h       *rolling.Hasher
	bytes   int // bytes since last boundary
	entries int // entries since last boundary
	// MaxEntries optionally bounds entries per node (0 = no bound).
	MaxEntries int
}

// NewEntryChunker returns an entry-aligned chunker.
func NewEntryChunker(cfg Config) *EntryChunker {
	cfg = cfg.validate()
	return &EntryChunker{cfg: cfg, h: rolling.New(cfg.Q, cfg.Window)}
}

// Add feeds one encoded entry and reports whether the node should be closed
// after it.  A pattern anywhere inside the entry (at or past MinSize) closes
// the node at the entry's end — the "extend the boundary to cover the whole
// entry" rule.
func (e *EntryChunker) Add(encoded []byte) bool {
	hit := false
	for _, by := range encoded {
		e.h.Roll(by)
		e.bytes++
		if !hit && e.bytes >= e.cfg.MinSize && e.h.OnPattern() {
			hit = true
		}
	}
	e.entries++
	if e.bytes >= e.cfg.MaxSize {
		hit = true
	}
	if e.MaxEntries > 0 && e.entries >= e.MaxEntries {
		hit = true
	}
	if hit {
		e.Reset()
	}
	return hit
}

// Reset restarts the chunker at a node boundary.
func (e *EntryChunker) Reset() {
	e.h.Reset()
	e.bytes = 0
	e.entries = 0
}

// indexFanoutBits chooses the expected children per index node (2^bits) so
// that index nodes stay size-proportionate to leaves: an index entry is
// ~48 bytes (split key + 32-byte hash + count), so matching the 2^Q leaf
// target gives bits ≈ Q-6, clamped so reduction stays geometric (≥4× per
// level) and nodes stay bounded (≤256 children on average).
func indexFanoutBits(q uint) uint {
	bits := int(q) - 6
	if bits < 2 {
		bits = 2
	}
	if bits > 8 {
		bits = 8
	}
	return uint(bits)
}

// IndexMaxEntries bounds index-node width regardless of pattern luck.
const IndexMaxEntries = 1 << 10

// IndexChunker decides node boundaries for POS-Tree *index* levels with
// entry-granular patterns: after each entry the rolling hash's low
// IndexFanoutBits bits decide the split, so the boundary probability is
// independent of entry size.  Combined with a two-entry minimum this
// guarantees every index level at most halves the node count — byte-granular
// patterns cannot promise that when entries are longer than the expected
// pattern distance, which would stall tree construction.
//
// Like the byte-granular chunker it is a pure function of the entry stream,
// so structural invariance and incremental-edit re-synchronisation hold
// unchanged.
type IndexChunker struct {
	h       *rolling.Hasher
	mask    uint64
	entries int
}

// NewIndexChunker returns an index-level chunker for the configuration.
func NewIndexChunker(cfg Config) *IndexChunker {
	cfg = cfg.validate()
	bits := indexFanoutBits(cfg.Q)
	if cfg.Q < bits {
		bits = cfg.Q
	}
	return &IndexChunker{
		h:    rolling.New(cfg.Q, cfg.Window),
		mask: (uint64(1) << bits) - 1,
	}
}

// Add feeds one encoded index entry; it reports whether the node closes
// after it.
func (c *IndexChunker) Add(encoded []byte) bool {
	c.h.Write(encoded)
	c.entries++
	hit := c.entries >= 2 && c.h.Sum64()&c.mask == 0
	if c.entries >= IndexMaxEntries {
		hit = true
	}
	if hit {
		c.Reset()
	}
	return hit
}

// Reset restarts the chunker at a node boundary.
func (c *IndexChunker) Reset() {
	c.h.Reset()
	c.entries = 0
}

// Boundary is the decision interface shared by the entry-granular leaf
// chunker and the index chunker.
type Boundary interface {
	// Add feeds one encoded entry and reports whether a node boundary
	// occurs after it.
	Add(encoded []byte) bool
	// Reset restarts the decision state at a boundary.
	Reset()
}

var (
	_ Boundary = (*EntryChunker)(nil)
	_ Boundary = (*IndexChunker)(nil)
)
