package chunker

import "testing"

// FastCDC-2020-style pinned vectors for the gear chunker: a fixed
// SplitMix64-generated input must always cut at exactly these offsets. Any
// change to the gear table, the rolling update, or the min/max clamping shows
// up here as a diff of literal integers rather than a silent re-chunk of every
// stored object (which would destroy cross-version dedup).

// vecInput deterministically expands a seed into n bytes with SplitMix64.
// Self-contained on purpose: the vectors must not depend on math/rand's
// generator remaining stable across Go releases.
func vecInput(seed uint64, n int) []byte {
	out := make([]byte, n)
	x := seed
	for i := 0; i < n; i += 8 {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		for j := 0; j < 8 && i+j < n; j++ {
			out[i+j] = byte(z >> (8 * j))
		}
	}
	return out
}

var gearVectors = []struct {
	name string
	seed uint64
	n    int
	cfg  Config
	cuts []int // end offset of every chunk, in order; last == n
}{
	{
		name: "q10-64k",
		seed: 1,
		n:    64 << 10,
		cfg:  Config{Q: 10, MinSize: 1 << 7, MaxSize: 1 << 13, Algo: AlgoGear},
		cuts: []int{
			1278, 2476, 2761, 3941, 5040, 5379, 6580, 7161, 7453, 8718,
			10119, 12109, 13183, 14274, 14705, 15855, 16881, 17878, 18931, 20538,
			22205, 23243, 24919, 25221, 27314, 28482, 29653, 30913, 32319, 33364,
			34699, 36423, 37600, 38957, 40065, 41696, 43044, 43281, 44390, 45743,
			47188, 47509, 48935, 50607, 51746, 52307, 53371, 54433, 56499, 57606,
			59077, 60181, 61810, 62836, 63922, 64486, 65536,
		},
	},
	{
		name: "q12-128k-default-geometry",
		seed: 2,
		n:    128 << 10,
		cfg:  Config{Q: 12, MinSize: 1 << 9, MaxSize: 1 << 16, Algo: AlgoGear},
		cuts: []int{
			4686, 9300, 10167, 15047, 19236, 24271, 28869, 35480, 40816, 45526,
			51065, 51880, 59715, 65898, 70646, 71475, 72366, 78062, 82338, 86698,
			91377, 97103, 99987, 102688, 104889, 109036, 113667, 119581, 126854, 131072,
		},
	},
	{
		name: "q8-16k",
		seed: 3,
		n:    16 << 10,
		cfg:  Config{Q: 8, MinSize: 1 << 5, MaxSize: 1 << 12, Algo: AlgoGear},
		cuts: []int{
			307, 713, 1044, 1344, 1633, 1931, 2247, 2283, 2743, 2779,
			3057, 3349, 3621, 3908, 4184, 4521, 4870, 5098, 5454, 5779,
			6039, 6318, 6584, 6632, 6740, 6829, 7093, 7389, 7801, 8061,
			8304, 8636, 8671, 9045, 9365, 9610, 9952, 10346, 10630, 10875,
			11156, 11208, 11669, 11937, 12197, 12501, 12767, 13069, 13381, 13881,
			13980, 14280, 14565, 14707, 14815, 15006, 15199, 15619, 16016, 16365,
			16384,
		},
	},
}

func TestGearGoldenVectors(t *testing.T) {
	for _, tc := range gearVectors {
		t.Run(tc.name, func(t *testing.T) {
			data := vecInput(tc.seed, tc.n)
			segs := SplitBytes(data, tc.cfg)
			if len(segs) != len(tc.cuts) {
				t.Fatalf("chunk count = %d, want %d", len(segs), len(tc.cuts))
			}
			off := 0
			for i, s := range segs {
				off += len(s)
				if off != tc.cuts[i] {
					t.Fatalf("chunk %d ends at %d, want %d", i, off, tc.cuts[i])
				}
				if off != tc.n && (len(s) < tc.cfg.MinSize || len(s) > tc.cfg.MaxSize) {
					t.Fatalf("chunk %d size %d outside [%d, %d]", i, len(s), tc.cfg.MinSize, tc.cfg.MaxSize)
				}
			}
			if off != tc.n {
				t.Fatalf("chunks cover %d bytes, want %d", off, tc.n)
			}
		})
	}
}

// TestGearStreamingMatchesVectors pins that the incremental byte chunker
// produces the same cut points as the one-shot splitter, feeding the input in
// awkward write sizes to exercise buffer-boundary handling.
func TestGearStreamingMatchesVectors(t *testing.T) {
	for _, tc := range gearVectors {
		t.Run(tc.name, func(t *testing.T) {
			data := vecInput(tc.seed, tc.n)
			bc := NewByteChunker(tc.cfg)
			var cuts []int
			for i := 0; i < len(data); {
				step := 1 + (i % 777)
				if i+step > len(data) {
					step = len(data) - i
				}
				for _, rel := range bc.Write(data[i : i+step]) {
					cuts = append(cuts, i+rel)
				}
				i += step
			}
			// The tail after the final content-defined boundary is the last
			// chunk; SplitBytes emits it, the incremental chunker leaves it
			// pending.
			if len(cuts) == 0 || cuts[len(cuts)-1] != tc.n {
				cuts = append(cuts, tc.n)
			}
			if len(cuts) != len(tc.cuts) {
				t.Fatalf("streaming chunk count = %d, want %d", len(cuts), len(tc.cuts))
			}
			for i := range cuts {
				if cuts[i] != tc.cuts[i] {
					t.Fatalf("streaming cut %d at %d, want %d", i, cuts[i], tc.cuts[i])
				}
			}
		})
	}
}

// TestGearMeanChunkSize sanity-checks that the expected chunk size tracks 2^Q:
// the vectors pin exact behaviour, this pins the statistical contract.
func TestGearMeanChunkSize(t *testing.T) {
	cfg := Config{Q: 10, MinSize: 1 << 7, MaxSize: 1 << 13, Algo: AlgoGear}
	data := vecInput(99, 1<<20)
	segs := SplitBytes(data, cfg)
	mean := len(data) / len(segs)
	// Min-size skipping shifts the mean above 2^Q; allow [0.75x, 2.5x].
	if mean < (1<<10)*3/4 || mean > (1<<10)*5/2 {
		t.Fatalf("mean chunk size %d too far from 2^Q = %d", mean, 1<<10)
	}
}
