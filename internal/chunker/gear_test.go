package chunker

import (
	"bytes"
	"math/rand"
	"testing"
)

func gearConfig() Config {
	return Config{Q: 10, Window: 48, MinSize: 1 << 7, MaxSize: 1 << 13, Algo: AlgoGear}
}

// TestGearSplitGuards property-tests the min/max guards and the
// concatenation invariant of gear-mode splitting.
func TestGearSplitGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	cfg := gearConfig()
	for round := 0; round < 30; round++ {
		data := make([]byte, rng.Intn(1<<16))
		rng.Read(data)
		segs := SplitBytes(data, cfg)
		var cat []byte
		for i, s := range segs {
			cat = append(cat, s...)
			if len(s) > cfg.MaxSize {
				t.Fatalf("round %d: segment %d is %d bytes, max %d", round, i, len(s), cfg.MaxSize)
			}
			if i < len(segs)-1 && len(s) < cfg.MinSize {
				t.Fatalf("round %d: non-final segment %d is %d bytes, min %d", round, i, len(s), cfg.MinSize)
			}
		}
		if !bytes.Equal(cat, data) {
			t.Fatalf("round %d: concatenation does not reproduce input", round)
		}
	}
}

// TestGearSplitDeterministic: same content, same boundaries — twice within
// one process and independent of how bytes are fed.
func TestGearSplitDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	data := make([]byte, 1<<15)
	rng.Read(data)
	cfg := gearConfig()
	a := SplitBytes(data, cfg)
	b := SplitBytes(data, cfg)
	if len(a) != len(b) {
		t.Fatalf("two splits disagree: %d vs %d segments", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("segment %d differs between identical splits", i)
		}
	}
	// Byte-at-a-time Roll must cut at the same offsets as Write.
	c := NewByteChunker(cfg)
	var rollCuts []int
	for i, by := range data {
		if c.Roll(by) {
			rollCuts = append(rollCuts, i+1)
		}
	}
	c2 := NewByteChunker(cfg)
	writeCuts := c2.Write(data)
	if len(rollCuts) != len(writeCuts) {
		t.Fatalf("Roll found %d cuts, Write %d", len(rollCuts), len(writeCuts))
	}
	for i := range rollCuts {
		if rollCuts[i] != writeCuts[i] {
			t.Fatalf("cut %d: Roll %d vs Write %d", i, rollCuts[i], writeCuts[i])
		}
	}
}

// TestGearBoundaryStability: boundaries re-synchronise after a local edit —
// the content-defined property that buys deduplication.
func TestGearBoundaryStability(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	data := make([]byte, 1<<16)
	rng.Read(data)
	cfg := gearConfig()
	orig := SplitBytes(data, cfg)

	// Prepend a small edit: all but the first few segments should reappear.
	edited := append([]byte("EDIT---"), data...)
	segs := SplitBytes(edited, cfg)
	origSet := map[string]bool{}
	for _, s := range orig {
		origSet[string(s)] = true
	}
	shared := 0
	for _, s := range segs {
		if origSet[string(s)] {
			shared++
		}
	}
	if shared < len(orig)/2 {
		t.Fatalf("only %d of %d segments survived a prefix edit — boundaries are not content-defined", shared, len(orig))
	}
}

// TestGearEntryChunker: the entry-aligned chunker honours the whole-entry
// rule and min/max guards in gear mode.
func TestGearEntryChunker(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	cfg := gearConfig()
	e := NewEntryChunker(cfg)
	nodeBytes := 0
	for i := 0; i < 20000; i++ {
		entry := make([]byte, 1+rng.Intn(40))
		rng.Read(entry)
		nodeBytes += len(entry)
		if e.Add(entry) {
			if nodeBytes > cfg.MaxSize+len(entry) {
				t.Fatalf("node closed at %d bytes, max %d (+1 entry)", nodeBytes, cfg.MaxSize)
			}
			nodeBytes = 0
		} else if nodeBytes >= cfg.MaxSize {
			t.Fatalf("node open at %d bytes, max %d", nodeBytes, cfg.MaxSize)
		}
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"default", DefaultConfig(), true},
		{"small", SmallConfig(), true},
		{"gear", gearConfig(), true},
		{"zero q", Config{Q: 0, Window: 48, MinSize: 1, MaxSize: 2}, false},
		{"absurd q", Config{Q: 40, Window: 48, MinSize: 1, MaxSize: 2}, false},
		{"zero window", Config{Q: 12, Window: 0, MinSize: 1, MaxSize: 2}, false},
		{"absurd window", Config{Q: 12, Window: 1 << 21, MinSize: 1, MaxSize: 2}, false},
		{"min>=max", Config{Q: 12, Window: 48, MinSize: 64, MaxSize: 64}, false},
		{"min>max", Config{Q: 12, Window: 48, MinSize: 65, MaxSize: 64}, false},
		{"zero min", Config{Q: 12, Window: 48, MinSize: 0, MaxSize: 64}, false},
		{"bad algo", Config{Q: 12, Window: 48, MinSize: 1, MaxSize: 64, Algo: Algorithm(9)}, false},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// TestValidateGearNoWindow: a gear config with Window left zero (the gear
// hash has a fixed implicit window) must validate.
func TestValidateGearNoWindow(t *testing.T) {
	cfg := Config{Q: 12, MinSize: 1 << 9, MaxSize: 1 << 16, Algo: AlgoGear}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("gear config without Window rejected: %v", err)
	}
}
