package chunker

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func tcfg() Config { return Config{Q: 8, Window: 16, MinSize: 32, MaxSize: 4096} }

func TestSplitBytesReassembles(t *testing.T) {
	f := func(data []byte) bool {
		segs := SplitBytes(data, tcfg())
		var joined []byte
		for _, s := range segs {
			joined = append(joined, s...)
		}
		return bytes.Equal(joined, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitBytesDeterministic(t *testing.T) {
	data := make([]byte, 100*1024)
	rand.New(rand.NewSource(5)).Read(data)
	a := SplitBytes(data, tcfg())
	b := SplitBytes(data, tcfg())
	if len(a) != len(b) {
		t.Fatalf("nondeterministic: %d vs %d segments", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("segment %d differs", i)
		}
	}
}

func TestSplitBytesRespectsBounds(t *testing.T) {
	data := make([]byte, 256*1024)
	rand.New(rand.NewSource(9)).Read(data)
	cfg := tcfg()
	segs := SplitBytes(data, cfg)
	for i, s := range segs {
		if len(s) > cfg.MaxSize {
			t.Fatalf("segment %d size %d > max %d", i, len(s), cfg.MaxSize)
		}
		if i < len(segs)-1 && len(s) < cfg.MinSize {
			t.Fatalf("non-final segment %d size %d < min %d", i, len(s), cfg.MinSize)
		}
	}
	if len(segs) < 10 {
		t.Fatalf("suspiciously few segments: %d", len(segs))
	}
}

func TestSplitBytesAverageNearTarget(t *testing.T) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(13)).Read(data)
	cfg := Config{Q: 10, Window: 32, MinSize: 64, MaxSize: 1 << 14}
	segs := SplitBytes(data, cfg)
	avg := float64(len(data)) / float64(len(segs))
	// Expected ~2^10 = 1024; allow a factor of 2 either way.
	if avg < 512 || avg > 2048 {
		t.Fatalf("average segment %f, expected near 1024", avg)
	}
}

// TestLocalEditLocality: editing a few bytes must change only nearby
// segments — the content-defined-chunking property that powers dedup.
func TestLocalEditLocality(t *testing.T) {
	data := make([]byte, 512*1024)
	rand.New(rand.NewSource(21)).Read(data)
	edited := append([]byte(nil), data...)
	copy(edited[256*1024:], "XYZZY")

	cfg := tcfg()
	a := SplitBytes(data, cfg)
	b := SplitBytes(edited, cfg)

	segSet := map[string]bool{}
	for _, s := range a {
		segSet[string(s)] = true
	}
	changed := 0
	for _, s := range b {
		if !segSet[string(s)] {
			changed++
		}
	}
	if changed > 5 {
		t.Fatalf("%d of %d segments changed after a 5-byte edit", changed, len(b))
	}
}

func TestSplitEmpty(t *testing.T) {
	if segs := SplitBytes(nil, tcfg()); segs != nil {
		t.Fatalf("empty input produced %d segments", len(segs))
	}
}

func TestByteChunkerWriteMatchesRoll(t *testing.T) {
	data := make([]byte, 64*1024)
	rand.New(rand.NewSource(3)).Read(data)
	c1 := NewByteChunker(tcfg())
	cuts1 := c1.Write(data)
	c2 := NewByteChunker(tcfg())
	var cuts2 []int
	for i, by := range data {
		if c2.Roll(by) {
			cuts2 = append(cuts2, i+1)
		}
	}
	if len(cuts1) != len(cuts2) {
		t.Fatalf("Write %d cuts, Roll %d cuts", len(cuts1), len(cuts2))
	}
	for i := range cuts1 {
		if cuts1[i] != cuts2[i] {
			t.Fatalf("cut %d: %d vs %d", i, cuts1[i], cuts2[i])
		}
	}
}

func TestEntryChunkerAlignment(t *testing.T) {
	// Whatever the content, boundaries fall only after whole entries, and
	// the same entry stream always chunks identically.
	rng := rand.New(rand.NewSource(17))
	entries := make([][]byte, 2000)
	for i := range entries {
		e := make([]byte, 10+rng.Intn(100))
		rng.Read(e)
		entries[i] = e
	}
	run := func() []int {
		ec := NewEntryChunker(tcfg())
		var cuts []int
		for i, e := range entries {
			if ec.Add(e) {
				cuts = append(cuts, i)
			}
		}
		return cuts
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no boundaries over 2000 entries")
	}
	if len(a) != len(b) {
		t.Fatalf("nondeterministic entry chunking")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cut %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestEntryChunkerMaxSizeForcesBoundary(t *testing.T) {
	cfg := Config{Q: 20, Window: 16, MinSize: 1, MaxSize: 100} // pattern nearly never fires
	ec := NewEntryChunker(cfg)
	big := make([]byte, 150)
	if !ec.Add(big) {
		t.Fatal("max-size guard did not force a boundary")
	}
}

func TestEntryChunkerMaxEntries(t *testing.T) {
	cfg := Config{Q: 30, Window: 16, MinSize: 1, MaxSize: 1 << 30}
	ec := NewEntryChunker(cfg)
	ec.MaxEntries = 3
	fired := 0
	for i := 0; i < 9; i++ {
		if ec.Add([]byte{1, 2, 3}) {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("MaxEntries fired %d times, want 3", fired)
	}
}

func TestConfigValidateDefaults(t *testing.T) {
	c := Config{}.validate()
	if c.Q == 0 || c.Window <= 0 || c.MinSize <= 0 || c.MaxSize < c.MinSize {
		t.Fatalf("validate left bad config: %+v", c)
	}
	d := DefaultConfig()
	if d.MaxSize < d.MinSize || d.Q != 12 {
		t.Fatalf("DefaultConfig: %+v", d)
	}
	s := SmallConfig()
	if s.Q != 8 {
		t.Fatalf("SmallConfig: %+v", s)
	}
}
