// Gear-hash boundary scanning, FastCDC-2020 style (Xia et al., "The Design
// of Fast Content-Defined Chunking for Data Deduplication Storage
// Systems"): an alternative to the cyclic-polynomial rolling hash of this
// package's Hasher/Scan.
//
// The gear hash replaces the ring buffer and the remove-departing-byte
// rotation with a single shift-and-add per byte:
//
//	h = (h << 1) + gear[b]
//
// Each byte's contribution shifts left once per subsequent byte and falls
// off the top after 64 bytes, so the hash has an implicit 64-byte window
// with no bookkeeping at all — the cheapest per-byte update a CDC scanner
// can do.  Boundary quality comes from *normalized chunking*: a stricter
// mask (more bits) before the expected chunk size and a looser one after,
// pulling the chunk-size distribution toward 2^q without hard cutoffs.
//
// Determinism matters exactly as for the Γ table: every instance must
// chunk identically or content addressing breaks, so the gear table and
// the spread masks derive from fixed SplitMix64 streams and arithmetic —
// no runtime randomness.
package rolling

// gearWindow is the implicit window of the gear hash: a byte's contribution
// is gone once 64 later bytes have shifted it out.
const gearWindow = 64

// gearNormalization is the mask-width delta of normalized chunking: the
// strict mask uses q+2 bits (boundaries 4x rarer before the expected size),
// the loose mask q-2 (4x more likely after).  Level 2 is the sweet spot the
// FastCDC paper reports for dedup-vs-uniformity.
const gearNormalization = 2

// gearTable is the byte-substitution table, derived from a fixed SplitMix64
// stream (a different seed than the Γ table so the two algorithms are
// decorrelated).
func gearTable() [256]uint64 {
	var t [256]uint64
	s := uint64(0xA24BAED4963EE407) // fixed seed
	for i := 0; i < 256; i++ {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		t[i] = z
	}
	return t
}

// spreadMask returns a mask with `bits` one-bits spread across the high end
// of the word.  Spreading (rather than packing the low bits) makes the
// boundary decision depend on bytes across the whole implicit window, which
// the FastCDC paper found marginally better for dedup than contiguous
// masks; the exact positions only need to be deterministic.
func spreadMask(bits int) uint64 {
	if bits <= 0 {
		bits = 1
	}
	if bits > 32 {
		bits = 32
	}
	var m uint64
	for i := 0; i < bits; i++ {
		m |= 1 << (63 - uint(i*63/bits))
	}
	return m
}

// GearScan finds split patterns over contiguous chunk buffers with the gear
// hash.  It mirrors Scan's resumable API — (position, hash) state threads
// through Find across appends — so the POS-Tree node builders can use
// either scanner interchangeably.
//
// GearScan is immutable after NewGearScan and safe to share between
// goroutines.
type GearScan struct {
	q      uint
	normal int // expected chunk size 2^q: where the mask switches
	maskS  uint64
	maskL  uint64
	table  [256]uint64
}

// NewGearScan returns a gear scanner targeting 2^q-byte average chunks.
func NewGearScan(q uint) *GearScan {
	if q < 1 || q > 30 {
		panic("rolling: gear q out of range [1,30]")
	}
	s := &GearScan{
		q:      q,
		normal: 1 << q,
		maskS:  spreadMask(int(q) + gearNormalization),
		maskL:  spreadMask(int(q) - gearNormalization),
		table:  gearTable(),
	}
	return s
}

// Window returns the implicit window size in bytes.
func (s *GearScan) Window() int { return gearWindow }

// Find resumes scanning node[pos:] for the first split pattern; the
// contract matches Scan.Find: hashing started at index begin, a pattern
// only counts at indexes >= check, and the returned hash state is passed
// back in when more bytes arrive.  Because a byte's contribution shifts
// out entirely after gearWindow later bytes, starting at
// begin = max(0, check+1-gearWindow) yields bit-identical hash values to
// feeding the whole buffer — the property the equivalence tests pin.
func (s *GearScan) Find(node []byte, pos int, h uint64, begin, check int) (int, uint64) {
	n := len(node)
	i := pos
	if i < begin {
		i = begin
	}
	// Below the first checkable index: roll without testing.
	stop := check
	if stop > n {
		stop = n
	}
	for ; i < stop; i++ {
		h = h<<1 + s.table[node[i]]
	}
	// Strict-mask region: up to (but excluding) the normalization point.
	// Byte index i closes a chunk of i+1 bytes, so the switch sits at
	// i+1 == normal.
	stop = s.normal - 1
	if stop > n {
		stop = n
	}
	for ; i < stop; i++ {
		h = h<<1 + s.table[node[i]]
		if h&s.maskS == 0 {
			return i, h
		}
	}
	// Loose-mask region.
	for ; i < n; i++ {
		h = h<<1 + s.table[node[i]]
		if h&s.maskL == 0 {
			return i, h
		}
	}
	return -1, h
}

// SkipStart returns the index at which hashing may begin for a chunk whose
// first boundary check happens at index minSize-1: bytes further back than
// the implicit window can never influence a checked hash.
func (s *GearScan) SkipStart(minSize int) int {
	if minSize > gearWindow {
		return minSize - gearWindow
	}
	return 0
}

// GearHash is the byte-at-a-time form of the gear hash, for the chunkers
// that consume streams rather than contiguous buffers.  The zero value is
// ready at a chunk boundary.
type GearHash struct {
	scan *GearScan
	h    uint64
	n    int // bytes since the last boundary
}

// NewGearHash returns a byte-wise gear hasher with the same boundary
// semantics as NewGearScan(q).
func NewGearHash(q uint) *GearHash {
	return &GearHash{scan: NewGearScan(q)}
}

// Roll feeds one byte and reports whether it closes a chunk (pattern hit
// under the size-normalized mask).  Min/max guards are the caller's
// (chunker's) concern, exactly as with Hasher.OnPattern.
func (g *GearHash) Roll(b byte) bool {
	g.h = g.h<<1 + g.scan.table[b]
	g.n++
	mask := g.scan.maskL
	if g.n < g.scan.normal {
		mask = g.scan.maskS
	}
	return g.h&mask == 0
}

// Reset restarts the hasher at a chunk boundary.
func (g *GearHash) Reset() {
	g.h = 0
	g.n = 0
}
