package rolling

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestWindowEquivalence: after rolling a long stream, the hash must equal
// the hash of just the final window fed into a fresh hasher — the defining
// property of a rolling hash.
func TestWindowEquivalence(t *testing.T) {
	f := func(data []byte) bool {
		const w = 16
		if len(data) < w {
			return true
		}
		h1 := New(10, w)
		h1.Write(data)
		h2 := New(10, w)
		h2.Write(data[len(data)-w:])
		return h1.Sum64() == h2.Sum64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	data := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(data)
	a, b := New(12, 48), New(12, 48)
	for i, by := range data {
		if a.Roll(by) != b.Roll(by) {
			t.Fatalf("divergence at byte %d", i)
		}
	}
}

func TestResetClearsState(t *testing.T) {
	h := New(12, 48)
	h.Write([]byte("some earlier unrelated content that fills the window"))
	h.Reset()
	after := New(12, 48)
	data := []byte("fresh stream fed to both hashers after the reset point")
	h.Write(data)
	after.Write(data)
	if h.Sum64() != after.Sum64() {
		t.Fatal("Reset did not clear window state")
	}
}

func TestPatternFrequency(t *testing.T) {
	// Over random data the pattern (q low bits zero) should fire roughly
	// once every 2^q bytes.  Use q=8 → expected every 256 bytes.
	const q, n = 8, 1 << 20
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, n)
	rng.Read(data)
	h := New(q, 32)
	hits := 0
	for _, by := range data {
		h.Roll(by)
		if h.OnPattern() {
			hits++
		}
	}
	expected := n / (1 << q)
	if hits < expected/2 || hits > expected*2 {
		t.Fatalf("pattern fired %d times over %d bytes, expected ~%d", hits, n, expected)
	}
}

func TestOnPatternRequiresFullWindow(t *testing.T) {
	h := New(1, 32) // q=1: 50% of values match, so a short window would fire
	h.Roll(0)
	if h.OnPattern() && h.n != h.window {
		t.Fatal("pattern fired before window filled")
	}
}

func TestHashStaysWithinQBits(t *testing.T) {
	f := func(data []byte, qSeed uint8) bool {
		q := uint(qSeed%12) + 1
		h := New(q, 8)
		for _, by := range data {
			if v := h.Roll(by); v >= 1<<q {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRot1(t *testing.T) {
	// Within q=4 bits: 0b1000 rotates to 0b0001.
	if got := rot1(0b1000, 4); got != 0b0001 {
		t.Fatalf("rot1(0b1000,4) = %04b", got)
	}
	if got := rot1(0b0101, 4); got != 0b1010 {
		t.Fatalf("rot1(0b0101,4) = %04b", got)
	}
}

func TestRotQComposition(t *testing.T) {
	// rotQ(v, n) must equal n applications of rot1.
	for _, q := range []uint{4, 7, 12} {
		for v := uint64(0); v < 1<<q; v += 3 {
			for n := uint(0); n < 2*q; n++ {
				want := v
				for i := uint(0); i < n; i++ {
					want = rot1(want, q)
				}
				if got := rotQ(v, n, q); got != want {
					t.Fatalf("rotQ(%d,%d,%d) = %d, want %d", v, n, q, got, want)
				}
			}
		}
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct {
		q uint
		w int
	}{{0, 8}, {64, 8}, {8, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", tc.q, tc.w)
				}
			}()
			New(tc.q, tc.w)
		}()
	}
}

func TestGammaDeterministic(t *testing.T) {
	a, b := gamma(12), gamma(12)
	if a != b {
		t.Fatal("gamma table not deterministic")
	}
	mask := uint64(1<<12 - 1)
	for i, v := range a {
		if v&^mask != 0 {
			t.Fatalf("gamma[%d] = %x exceeds q bits", i, v)
		}
	}
}

func BenchmarkRoll(b *testing.B) {
	h := New(12, 48)
	data := make([]byte, 1<<16)
	rand.New(rand.NewSource(7)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Write(data)
	}
}

// TestScanMatchesHasher proves the bulk scanner computes the exact boundary
// decisions of the byte-wise Hasher over contiguous chunk runs: for every
// (minSize, chunk split) the first pattern index at or past the min-size
// check must agree, including across incremental Find resumptions and the
// min-size hash skip.
func TestScanMatchesHasher(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, cfg := range []struct {
		q       uint
		window  int
		minSize int
	}{
		{12, 48, 512}, // default config shape: minSize > window, skip active
		{8, 48, 32},   // small config shape: minSize < window, no skip
		{10, 16, 16},  // minSize == window
	} {
		scan := NewScan(cfg.q, cfg.window)
		begin := scan.SkipStart(cfg.minSize)
		check := cfg.minSize - 1

		for trial := 0; trial < 30; trial++ {
			n := 200 + rng.Intn(8000)
			data := make([]byte, n)
			rng.Read(data)

			// Reference: byte-wise Hasher, fresh from a boundary.
			h := New(cfg.q, cfg.window)
			wantHit := -1
			for i, b := range data {
				h.Roll(b)
				if i+1 >= cfg.minSize && h.OnPattern() {
					wantHit = i
					break
				}
			}

			// Bulk: resume Find across random slice steps, like a builder
			// appending entries.
			gotHit := -1
			pos, hash := 0, uint64(0)
			for end := 0; end < n && gotHit < 0; {
				end += 1 + rng.Intn(97)
				if end > n {
					end = n
				}
				var hit int
				hit, hash = scan.Find(data[:end], pos, hash, begin, check)
				pos = end
				if hit >= 0 {
					gotHit = hit
				}
			}
			if gotHit != wantHit {
				t.Fatalf("q=%d w=%d min=%d trial %d: scan hit %d, hasher hit %d",
					cfg.q, cfg.window, cfg.minSize, trial, gotHit, wantHit)
			}
		}
	}
}

// TestScanSkipStart pins the min-size skip arithmetic.
func TestScanSkipStart(t *testing.T) {
	s := NewScan(12, 48)
	if got := s.SkipStart(512); got != 512-48 {
		t.Fatalf("SkipStart(512) = %d", got)
	}
	if got := s.SkipStart(32); got != 0 {
		t.Fatalf("SkipStart(32) = %d", got)
	}
}

func BenchmarkScanFind(b *testing.B) {
	data := make([]byte, 1<<16)
	rand.New(rand.NewSource(7)).Read(data)
	s := NewScan(12, 48)
	b.SetBytes(int64(len(data)))
	begin := s.SkipStart(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := 0
		for start < len(data) {
			hit, _ := s.Find(data[start:], 0, 0, begin, 511)
			if hit < 0 {
				break
			}
			start += hit + 1
		}
	}
}
