package rolling

import (
	"math/rand"
	"testing"
)

// TestGearScanMatchesByteWise pins the bulk scanner to the byte-at-a-time
// hasher: resuming Find across arbitrary append boundaries, with the
// min-size skip, must fire on exactly the byte the per-byte form fires on.
func TestGearScanMatchesByteWise(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for round := 0; round < 50; round++ {
		q := uint(6 + rng.Intn(6))
		minSize := 1 + rng.Intn(200)
		n := 1 + rng.Intn(4000)
		data := make([]byte, n)
		rng.Read(data)

		// Byte-wise oracle: first index >= minSize-1 with a pattern.
		g := NewGearHash(q)
		oracle := -1
		for i, b := range data {
			hit := g.Roll(b)
			if hit && i >= minSize-1 {
				oracle = i
				break
			}
		}

		// Bulk scan, resuming across random append boundaries.
		s := NewGearScan(q)
		begin := s.SkipStart(minSize)
		check := minSize - 1
		var h uint64
		pos := begin
		found := -1
		for cut := 0; cut < n && found < 0; {
			next := cut + 1 + rng.Intn(512)
			if next > n {
				next = n
			}
			found, h = s.Find(data[:next], pos, h, begin, check)
			pos = next
			cut = next
		}
		if found != oracle {
			t.Fatalf("round %d (q=%d min=%d n=%d): bulk found %d, byte-wise %d", round, q, minSize, n, found, oracle)
		}
	}
}

// TestGearDeterminism: the gear table and masks are fixed — two scanners
// must agree bit for bit, and boundaries depend only on content.
func TestGearDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	data := make([]byte, 8192)
	rng.Read(data)
	a, b := NewGearScan(10), NewGearScan(10)
	ia, ha := a.Find(data, 0, 0, 0, 0)
	ib, hb := b.Find(data, 0, 0, 0, 0)
	if ia != ib || ha != hb {
		t.Fatalf("two identical scanners disagree: (%d,%x) vs (%d,%x)", ia, ha, ib, hb)
	}
	if a.maskS == a.maskL {
		t.Fatal("normalized masks are identical; normalization is inert")
	}
	if a.maskS&a.maskL != a.maskL {
		// Not required by the algorithm, but a sanity check that the strict
		// mask is at least as selective where they overlap is dropped —
		// only the bit counts matter.
		t.Log("masks do not nest (fine, only selectivity matters)")
	}
}

// TestGearBoundaryDistribution sanity-checks that boundaries actually
// occur and normalization pulls sizes toward 2^q.
func TestGearBoundaryDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	data := make([]byte, 1<<20)
	rng.Read(data)
	s := NewGearScan(10) // expect ~1 KiB chunks
	var sizes []int
	start := 0
	for start < len(data) {
		i, _ := s.Find(data[start:], 0, 0, 0, 0)
		if i < 0 {
			break
		}
		sizes = append(sizes, i+1)
		start += i + 1
	}
	if len(sizes) < 256 {
		t.Fatalf("only %d boundaries over 1 MiB at q=10", len(sizes))
	}
	var sum int
	for _, sz := range sizes {
		sum += sz
	}
	avg := float64(sum) / float64(len(sizes))
	if avg < 256 || avg > 4096 {
		t.Fatalf("average chunk %0.f bytes, expected near 1024", avg)
	}
}

// BenchmarkBulkScanRolling / BenchmarkBulkScanGear compare the two bulk
// boundary scanners over the same buffer (the levelBuilder hot path).
func BenchmarkBulkScanRolling(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	s := NewScan(12, DefaultWindow)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := 0
		for start < len(data) {
			hit, _ := s.Find(data[start:], 0, 0, 0, 511)
			if hit < 0 {
				break
			}
			start += hit + 1
		}
	}
}

func BenchmarkBulkScanGear(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	s := NewGearScan(12)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := 0
		for start < len(data) {
			hit, _ := s.Find(data[start:], 0, 0, 0, 511)
			if hit < 0 {
				break
			}
			start += hit + 1
		}
	}
}
