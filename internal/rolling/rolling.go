// Package rolling implements the cyclic polynomial rolling hash that
// POS-Tree uses for pattern detection (§II-A of the paper).
//
// Given a k-byte window (b1, ..., bk) the hash is
//
//	Φ(b1...bk) = δ(Φ(b0...bk-1)) ⊕ δ^k(Γ(b0)) ⊕ δ^0(Γ(bk))
//
// where Γ maps a byte to a pseudo-random integer in [0, 2^q), and δ rotates
// its input left by one bit within q bits (the q-th bit wraps to the lowest
// position).  A split pattern occurs when the q least-significant bits of Φ
// are all zero:
//
//	Φ(b1,...,bk) MOD 2^q == 0
//
// The expected distance between patterns is therefore 2^q bytes, which sets
// the average chunk size.
package rolling

// DefaultWindow is the number of bytes over which the hash is computed.
// 48 bytes is large enough for good boundary stability under local edits and
// small enough to re-synchronise quickly.
const DefaultWindow = 48

// Hasher is a cyclic polynomial (buzhash-style) rolling hash over a fixed
// window of bytes.  The zero value is not usable; construct with New.
//
// Hasher is not safe for concurrent use.
type Hasher struct {
	q      uint   // pattern bit-width; chunks average 2^q bytes
	mask   uint64 // 2^q - 1
	window int
	table  [256]uint64 // Γ
	shiftK [256]uint64 // δ^k(Γ(b)) precomputed per byte value

	hash uint64
	buf  []byte // ring buffer of the last `window` bytes
	pos  int    // next write position in buf
	n    int    // number of bytes currently in the window (≤ window)
}

// New returns a Hasher detecting patterns of width q bits over the given
// window size.  q must be in [1, 63]; window must be positive.
func New(q uint, window int) *Hasher {
	if q < 1 || q > 63 {
		panic("rolling: q out of range [1,63]")
	}
	if window <= 0 {
		panic("rolling: window must be positive")
	}
	h := &Hasher{
		q:      q,
		mask:   (uint64(1) << q) - 1,
		window: window,
		buf:    make([]byte, window),
	}
	h.table = gamma(q)
	for b := 0; b < 256; b++ {
		h.shiftK[b] = rotQ(h.table[b], uint(window%int(q)), q)
	}
	return h
}

// Q returns the pattern bit-width.
func (h *Hasher) Q() uint { return h.q }

// Window returns the window size in bytes.
func (h *Hasher) Window() int { return h.window }

// Reset clears the window so the hasher can be reused from a chunk boundary.
// Resetting at every emitted boundary is what makes chunking a deterministic
// function of the byte stream following the boundary.
func (h *Hasher) Reset() {
	h.hash = 0
	h.pos = 0
	h.n = 0
}

// Roll feeds one byte into the window and returns the updated hash value.
func (h *Hasher) Roll(b byte) uint64 {
	if h.n == h.window {
		old := h.buf[h.pos]
		// Remove the contribution of the byte leaving the window: it has
		// been rotated window times since insertion, i.e. by window mod q.
		h.hash = rot1(h.hash, h.q) ^ h.shiftK[old] ^ h.table[b]
	} else {
		h.hash = rot1(h.hash, h.q) ^ h.table[b]
		h.n++
	}
	h.buf[h.pos] = b
	h.pos++
	if h.pos == h.window {
		h.pos = 0
	}
	return h.hash
}

// Write feeds a byte slice through the window; it returns the final hash.
func (h *Hasher) Write(p []byte) uint64 {
	for _, b := range p {
		h.Roll(b)
	}
	return h.hash
}

// Sum64 returns the current hash value.
func (h *Hasher) Sum64() uint64 { return h.hash }

// OnPattern reports whether the current window ends on a split pattern,
// i.e. Φ MOD 2^q == 0.  The window must be full: requiring h.n == window
// prevents trivially empty windows from matching.
func (h *Hasher) OnPattern() bool {
	return h.n == h.window && h.hash&h.mask == 0
}

// Scan finds split patterns over a *contiguous* chunk buffer, computing the
// exact same per-byte hash values as feeding the buffer through Hasher.Roll —
// the bulk-ingest property tests enforce the equivalence — but without any
// ring-buffer bookkeeping: in steady state the byte leaving the window is
// read straight from the buffer at index i-window.  POS-Tree builders hold
// each open node's encoded bytes contiguously anyway, which makes this the
// natural fit for the write path: no per-byte function call, no ring stores,
// and the state carried between calls is just (position, hash).
//
// Scan is immutable after New and therefore safe to share between goroutines.
type Scan struct {
	q      uint
	mask   uint64
	window int
	table  [256]uint64
	shiftK [256]uint64
}

// NewScan returns a scanner with the same pattern semantics as New(q, window).
func NewScan(q uint, window int) *Scan {
	if q < 1 || q > 63 {
		panic("rolling: q out of range [1,63]")
	}
	if window <= 0 {
		panic("rolling: window must be positive")
	}
	s := &Scan{q: q, mask: (uint64(1) << q) - 1, window: window}
	s.table = gamma(q)
	for b := 0; b < 256; b++ {
		s.shiftK[b] = rotQ(s.table[b], uint(window%int(q)), q)
	}
	return s
}

// Window returns the window size in bytes.
func (s *Scan) Window() int { return s.window }

// Find resumes scanning node[pos:] for the first split pattern, where node is
// the full byte run of the open chunk.  Hashing started at index begin
// (bytes before begin were skipped, legal because no boundary may fire until
// the window no longer overlaps them); a pattern only counts at indexes
// >= check (the min-size rule, 0-based: byte i is the (i+1)-th byte of the
// chunk).  It returns the index of the first boundary byte or -1, plus the
// hash state to pass back in when more bytes arrive.
//
// Callers must keep begin <= check-window+1 so that every checkable index
// has a full window of hashed bytes behind it; begin = max(0, minSize-window)
// with check = minSize-1 satisfies this exactly.
func (s *Scan) Find(node []byte, pos int, h uint64, begin, check int) (int, uint64) {
	n := len(node)
	i := pos
	if i < begin {
		i = begin
	}
	qmask := s.mask
	q := s.q
	// Fill phase: the window is not yet full, so no byte leaves it.  At most
	// `window` bytes per chunk run here; pattern checks are possible only on
	// the byte that completes the window.
	fillEnd := begin + s.window
	if fillEnd > n {
		fillEnd = n
	}
	for ; i < fillEnd; i++ {
		v := h << 1
		v |= (v >> q) & 1
		h = (v & qmask) ^ s.table[node[i]]
		if h&qmask == 0 && i >= check && i-begin+1 >= s.window {
			return i, h
		}
	}
	// Steady state: no ring buffer — the departing byte is node[i-window].
	// Indexes below check cannot fire, so they roll without the pattern
	// test; from check on, lead/trail subslices of equal length let the
	// compiler drop both bounds checks in the hot loop.
	w := s.window
	stopA := check
	if stopA > n {
		stopA = n
	}
	for ; i < stopA; i++ {
		v := h << 1
		v |= (v >> q) & 1
		h = (v & qmask) ^ s.shiftK[node[i-w]] ^ s.table[node[i]]
	}
	if i >= n {
		return -1, h
	}
	lead := node[i:n]
	trail := node[i-w : n-w]
	for k := range lead {
		v := h << 1
		v |= (v >> q) & 1
		h = (v & qmask) ^ s.shiftK[trail[k]] ^ s.table[lead[k]]
		if h&qmask == 0 {
			return i + k, h
		}
	}
	return -1, h
}

// SkipStart returns the index at which hashing may begin for a chunk whose
// first boundary check happens at index minSize-1: the preceding bytes can
// never be inside a checked window, so scanning them is pure waste.
func (s *Scan) SkipStart(minSize int) int {
	if minSize > s.window {
		return minSize - s.window
	}
	return 0
}

// rot1 rotates v left by one bit within q bits: the q-th bit is pushed back
// to the lowest position (δ in the paper).
func rot1(v uint64, q uint) uint64 {
	v <<= 1
	v |= (v >> q) & 1
	return v & ((uint64(1) << q) - 1)
}

// rotQ applies rot1 n times.
func rotQ(v uint64, n, q uint) uint64 {
	n %= q
	mask := (uint64(1) << q) - 1
	v &= mask
	return ((v << n) | (v >> (q - n))) & mask
}

// gamma builds the byte-substitution table Γ: a fixed, platform-independent
// pseudo-random mapping from bytes to integers in [0, 2^q).  Determinism
// matters: every ForkBase instance must chunk identically or content
// addressing breaks, so the table is derived from a fixed SplitMix64 stream
// rather than any runtime randomness.
func gamma(q uint) [256]uint64 {
	var t [256]uint64
	mask := (uint64(1) << q) - 1
	s := uint64(0x9E3779B97F4A7C15) // fixed seed
	for i := 0; i < 256; i++ {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		t[i] = z & mask
	}
	return t
}
