// Package access implements ForkBase's branch-based access control (the
// semantic-view layer of paper Fig 1, where Admin A and Admin B hold
// different rights over branches of shared datasets).
//
// Permissions are granted per (key, branch) pair with glob-free prefix
// wildcards: the key or branch "*" matches everything.  Rights are
// hierarchical: Admin ⊃ Write ⊃ Read.
package access

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Level is a permission level.
type Level int

// Permission levels, ordered by strength.
const (
	None Level = iota
	Read
	Write
	Admin
)

func (l Level) String() string {
	switch l {
	case Read:
		return "read"
	case Write:
		return "write"
	case Admin:
		return "admin"
	default:
		return "none"
	}
}

// ErrDenied is returned when a user lacks the required permission.
var ErrDenied = errors.New("access: permission denied")

// Wildcard matches any key or branch in a grant.
const Wildcard = "*"

// grant is one ACL row.
type grant struct {
	key    string
	branch string
	level  Level
}

// Controller is an in-memory ACL.  It is safe for concurrent use.
type Controller struct {
	mu     sync.RWMutex
	grants map[string][]grant // user -> grants
	admins map[string]bool    // superusers
}

// NewController returns an empty ACL; users have no rights until granted.
func NewController() *Controller {
	return &Controller{
		grants: make(map[string][]grant),
		admins: make(map[string]bool),
	}
}

// AddSuperuser gives user admin over everything.
func (c *Controller) AddSuperuser(user string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.admins[user] = true
}

// Grant gives user the given level over key@branch (either may be Wildcard).
func (c *Controller) Grant(user, key, branch string, level Level) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.grants[user] = append(c.grants[user], grant{key: key, branch: branch, level: level})
}

// Revoke removes all grants of user matching key@branch exactly.
func (c *Controller) Revoke(user, key, branch string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	gs := c.grants[user]
	out := gs[:0]
	for _, g := range gs {
		if g.key == key && g.branch == branch {
			continue
		}
		out = append(out, g)
	}
	c.grants[user] = out
}

// LevelFor returns the strongest level user holds over key@branch.
func (c *Controller) LevelFor(user, key, branch string) Level {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.admins[user] {
		return Admin
	}
	best := None
	for _, g := range c.grants[user] {
		if (g.key == Wildcard || g.key == key) && (g.branch == Wildcard || g.branch == branch) && g.level > best {
			best = g.level
		}
	}
	return best
}

// Check returns ErrDenied unless user holds at least level over key@branch.
func (c *Controller) Check(user, key, branch string, level Level) error {
	if got := c.LevelFor(user, key, branch); got < level {
		return fmt.Errorf("%w: %s needs %s on %s@%s (has %s)", ErrDenied, user, level, key, branch, got)
	}
	return nil
}

// Entry is one row of a Grants listing.
type Entry struct {
	Key    string
	Branch string
	Level  Level
}

// Grants lists user's grants sorted by key then branch.
func (c *Controller) Grants(user string) []Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Entry, 0, len(c.grants[user]))
	for _, g := range c.grants[user] {
		out = append(out, Entry{Key: g.key, Branch: g.branch, Level: g.level})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Branch < out[j].Branch
	})
	return out
}

// Users lists all users with any grant or superuser bit, sorted.
func (c *Controller) Users() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	seen := map[string]bool{}
	for u := range c.grants {
		seen[u] = true
	}
	for u := range c.admins {
		seen[u] = true
	}
	out := make([]string, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}
