package access

import (
	"errors"
	"testing"
)

func TestGrantAndCheck(t *testing.T) {
	c := NewController()
	c.Grant("alice", "dataset1", "master", Write)

	if err := c.Check("alice", "dataset1", "master", Read); err != nil {
		t.Fatalf("write implies read: %v", err)
	}
	if err := c.Check("alice", "dataset1", "master", Write); err != nil {
		t.Fatalf("write denied: %v", err)
	}
	if err := c.Check("alice", "dataset1", "master", Admin); !errors.Is(err, ErrDenied) {
		t.Fatalf("admin allowed: %v", err)
	}
	if err := c.Check("alice", "dataset1", "dev", Read); !errors.Is(err, ErrDenied) {
		t.Fatalf("other branch allowed: %v", err)
	}
	if err := c.Check("bob", "dataset1", "master", Read); !errors.Is(err, ErrDenied) {
		t.Fatalf("stranger allowed: %v", err)
	}
}

func TestWildcards(t *testing.T) {
	c := NewController()
	c.Grant("alice", "dataset1", Wildcard, Read)
	c.Grant("bob", Wildcard, "master", Write)

	if err := c.Check("alice", "dataset1", "anybranch", Read); err != nil {
		t.Fatalf("branch wildcard: %v", err)
	}
	if err := c.Check("alice", "other", "master", Read); !errors.Is(err, ErrDenied) {
		t.Fatal("key leak through branch wildcard")
	}
	if err := c.Check("bob", "anything", "master", Write); err != nil {
		t.Fatalf("key wildcard: %v", err)
	}
	if err := c.Check("bob", "anything", "dev", Read); !errors.Is(err, ErrDenied) {
		t.Fatal("branch leak through key wildcard")
	}
}

func TestSuperuser(t *testing.T) {
	c := NewController()
	c.AddSuperuser("root")
	if err := c.Check("root", "any", "thing", Admin); err != nil {
		t.Fatalf("superuser denied: %v", err)
	}
}

func TestStrongestGrantWins(t *testing.T) {
	c := NewController()
	c.Grant("u", "k", "b", Read)
	c.Grant("u", "k", "b", Admin)
	c.Grant("u", "k", "b", Write)
	if got := c.LevelFor("u", "k", "b"); got != Admin {
		t.Fatalf("level = %v", got)
	}
}

func TestRevoke(t *testing.T) {
	c := NewController()
	c.Grant("u", "k", "b", Write)
	c.Grant("u", "k", "other", Read)
	c.Revoke("u", "k", "b")
	if err := c.Check("u", "k", "b", Read); !errors.Is(err, ErrDenied) {
		t.Fatal("revoked grant still active")
	}
	if err := c.Check("u", "k", "other", Read); err != nil {
		t.Fatalf("unrelated grant revoked: %v", err)
	}
}

func TestGrantsListing(t *testing.T) {
	c := NewController()
	c.Grant("u", "b-key", "x", Read)
	c.Grant("u", "a-key", "y", Write)
	gs := c.Grants("u")
	if len(gs) != 2 || gs[0].Key != "a-key" || gs[1].Key != "b-key" {
		t.Fatalf("grants = %+v", gs)
	}
}

func TestUsers(t *testing.T) {
	c := NewController()
	c.Grant("bob", "k", "b", Read)
	c.AddSuperuser("alice")
	us := c.Users()
	if len(us) != 2 || us[0] != "alice" || us[1] != "bob" {
		t.Fatalf("users = %v", us)
	}
}

func TestLevelStrings(t *testing.T) {
	for _, l := range []Level{None, Read, Write, Admin} {
		if l.String() == "" {
			t.Fatalf("level %d has no name", l)
		}
	}
}
