package core

import (
	"errors"
	"fmt"

	"forkbase/internal/fnode"
	"forkbase/internal/hash"
	"forkbase/internal/index"
	"forkbase/internal/value"
)

// VerifyReport summarises a tamper-evidence validation run (paper §III-C):
// given a uid, the client re-fetches every reachable chunk, recomputes its
// hash on the spot and compares with the claimed identifier.  Under the
// paper's threat model — malicious storage, trusted client-side uids —
// validation succeeds iff neither the value, nor any chunk of its POS-Tree,
// nor any version in its derivation history has been altered.
type VerifyReport struct {
	UID hash.Hash
	// ChunksChecked counts every chunk fetched and re-hashed.
	ChunksChecked int
	// VersionsChecked counts FNodes walked in the derivation history.
	VersionsChecked int
	// OK is true when every reachable chunk verified.
	OK bool
	// Failures lists detected tampering, one entry per corrupt chunk.
	Failures []VerifyFailure
}

// VerifyFailure pinpoints one detected corruption.
type VerifyFailure struct {
	ChunkID hash.Hash
	Context string // where in the graph the chunk was reached
	Err     error
}

// ErrTampered is returned by VerifyVersion when validation fails.
var ErrTampered = errors.New("core: tamper detected")

// VerifyVersion validates the full object graph reachable from uid: the
// FNode, its value's POS-Tree, and (recursively) every historical version
// via the bases hash chain.  deep=false verifies only the head version's
// value, matching the common "validate what I just fetched" flow.
func (db *DB) VerifyVersion(key string, uid hash.Hash, deep bool) (VerifyReport, error) {
	rep := VerifyReport{UID: uid, OK: true}
	seen := map[hash.Hash]bool{}
	queue := []hash.Hash{uid}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.IsZero() || seen[cur] {
			continue
		}
		seen[cur] = true
		f, err := fnode.Load(db.st, cur)
		if err != nil {
			rep.OK = false
			rep.Failures = append(rep.Failures, VerifyFailure{
				ChunkID: cur,
				Context: "version object (FNode)",
				Err:     err,
			})
			continue
		}
		rep.VersionsChecked++
		rep.ChunksChecked++
		v, err := f.DecodedValue()
		if err != nil {
			rep.OK = false
			rep.Failures = append(rep.Failures, VerifyFailure{ChunkID: cur, Context: "value descriptor", Err: err})
			continue
		}
		db.verifyValue(v, cur, &rep)
		if deep {
			queue = append(queue, f.Bases...)
		}
	}
	if !rep.OK {
		return rep, fmt.Errorf("%w: %d corrupt chunk(s) reachable from %s", ErrTampered, len(rep.Failures), uid.Short())
	}
	return rep, nil
}

// verifyValue walks a value's POS-Tree, re-hashing every chunk.  Reads go
// through the verifying store, so corruption surfaces as chunk.ErrCorrupt.
func (db *DB) verifyValue(v value.Value, owner hash.Hash, rep *VerifyReport) {
	if !v.Kind().Composite() || v.Root().IsZero() {
		return
	}
	var walk func(id hash.Hash) error
	walk = func(id hash.Hash) error {
		c, err := db.st.Get(id)
		if err != nil {
			rep.OK = false
			rep.Failures = append(rep.Failures, VerifyFailure{
				ChunkID: id,
				Context: fmt.Sprintf("%s value of version %s", v.Kind(), owner.Short()),
				Err:     err,
			})
			// Do not descend into a corrupt node: its child pointers are
			// not trustworthy.
			return nil
		}
		rep.ChunksChecked++
		// Structure-agnostic: child pointers decode through the index
		// layer's node-type registry.
		children, err := index.Children(c)
		if err != nil {
			rep.OK = false
			rep.Failures = append(rep.Failures, VerifyFailure{
				ChunkID: id,
				Context: "index node decoding",
				Err:     err,
			})
			return nil
		}
		for _, childID := range children {
			if err := walk(childID); err != nil {
				return err
			}
		}
		return nil
	}
	_ = walk(v.Root())
}
