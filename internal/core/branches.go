// Package core implements the ForkBase storage engine: an extended
// key-value model where each object (key) carries multiple named branches,
// each branch heads a tamper-evident chain of versions (paper §II-D), and
// Git-like operations — Put, Get, Branch, Merge, Diff, Head, Latest, Rename
// — are first-class storage operations (paper Fig 1).
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"forkbase/internal/hash"
)

// BranchTable tracks the head uid of every (key, branch).  In the paper's
// threat model the storage provider is untrusted but "the users keep track
// of the latest uid of every branch" — the branch table is that trusted
// client-side state, which is why it lives outside the chunk store.
//
// Implementations must be safe for concurrent use.
type BranchTable interface {
	// Head returns the branch head; ok=false if the branch does not exist.
	Head(key, branch string) (uid hash.Hash, ok bool, err error)
	// CompareAndSet atomically updates a head: old must match the current
	// head (zero hash means "branch must not exist").  It returns false
	// without changing anything on mismatch.
	CompareAndSet(key, branch string, old, new hash.Hash) (bool, error)
	// Delete removes a branch.
	Delete(key, branch string) error
	// Rename moves a branch head to a new name atomically.
	Rename(key, from, to string) error
	// Branches lists branch→head for a key.
	Branches(key string) (map[string]hash.Hash, error)
	// Keys lists all keys with at least one branch, sorted.
	Keys() ([]string, error)
}

// Branch-table errors.
var (
	ErrBranchExists   = errors.New("core: branch already exists")
	ErrBranchNotFound = errors.New("core: branch not found")
	ErrKeyNotFound    = errors.New("core: key not found")
	ErrStaleHead      = errors.New("core: concurrent update (stale head)")
)

// MemBranchTable is the in-memory branch table.
type MemBranchTable struct {
	mu    sync.RWMutex
	heads map[string]map[string]hash.Hash // key -> branch -> uid
}

var _ BranchTable = (*MemBranchTable)(nil)

// NewMemBranchTable returns an empty branch table.
func NewMemBranchTable() *MemBranchTable {
	return &MemBranchTable{heads: make(map[string]map[string]hash.Hash)}
}

// Head implements BranchTable.
func (m *MemBranchTable) Head(key, branch string) (hash.Hash, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	uid, ok := m.heads[key][branch]
	return uid, ok, nil
}

// CompareAndSet implements BranchTable.
func (m *MemBranchTable) CompareAndSet(key, branch string, old, new hash.Hash) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.heads[key][branch]
	if cur != old {
		return false, nil
	}
	if m.heads[key] == nil {
		m.heads[key] = make(map[string]hash.Hash)
	}
	m.heads[key][branch] = new
	return true, nil
}

// Delete implements BranchTable.
func (m *MemBranchTable) Delete(key, branch string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.heads[key][branch]; !ok {
		return fmt.Errorf("%w: %s@%s", ErrBranchNotFound, key, branch)
	}
	delete(m.heads[key], branch)
	if len(m.heads[key]) == 0 {
		delete(m.heads, key)
	}
	return nil
}

// Rename implements BranchTable.
func (m *MemBranchTable) Rename(key, from, to string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	uid, ok := m.heads[key][from]
	if !ok {
		return fmt.Errorf("%w: %s@%s", ErrBranchNotFound, key, from)
	}
	if _, exists := m.heads[key][to]; exists {
		return fmt.Errorf("%w: %s@%s", ErrBranchExists, key, to)
	}
	m.heads[key][to] = uid
	delete(m.heads[key], from)
	return nil
}

// Branches implements BranchTable.
func (m *MemBranchTable) Branches(key string) (map[string]hash.Hash, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	src, ok := m.heads[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrKeyNotFound, key)
	}
	out := make(map[string]hash.Hash, len(src))
	for b, u := range src {
		out[b] = u
	}
	return out, nil
}

// Keys implements BranchTable.
func (m *MemBranchTable) Keys() ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.heads))
	for k := range m.heads {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// FileBranchTable persists heads to a JSON file next to the chunk log, so a
// file-backed ForkBase instance recovers its branches on reopen.  All
// mutations are written through synchronously.
type FileBranchTable struct {
	mem  *MemBranchTable
	path string
	mu   sync.Mutex // serialises file writes
}

var _ BranchTable = (*FileBranchTable)(nil)

// OpenFileBranchTable loads (or creates) the branch file in dir.
func OpenFileBranchTable(dir string) (*FileBranchTable, error) {
	f := &FileBranchTable{mem: NewMemBranchTable(), path: filepath.Join(dir, "branches.json")}
	data, err := os.ReadFile(f.path)
	if errors.Is(err, os.ErrNotExist) {
		return f, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: branch table: %w", err)
	}
	var raw map[string]map[string]string
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("core: branch table corrupt: %w", err)
	}
	for key, branches := range raw {
		for br, uidStr := range branches {
			uid, err := hash.Parse(uidStr)
			if err != nil {
				return nil, fmt.Errorf("core: branch table corrupt uid for %s@%s: %w", key, br, err)
			}
			if f.mem.heads[key] == nil {
				f.mem.heads[key] = make(map[string]hash.Hash)
			}
			f.mem.heads[key][br] = uid
		}
	}
	return f, nil
}

func (f *FileBranchTable) persist() error {
	f.mem.mu.RLock()
	raw := make(map[string]map[string]string, len(f.mem.heads))
	for key, branches := range f.mem.heads {
		m := make(map[string]string, len(branches))
		for br, uid := range branches {
			m[br] = uid.String()
		}
		raw[key] = m
	}
	f.mem.mu.RUnlock()
	data, err := json.MarshalIndent(raw, "", "  ")
	if err != nil {
		return err
	}
	tmp := f.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, f.path)
}

// Head implements BranchTable.
func (f *FileBranchTable) Head(key, branch string) (hash.Hash, bool, error) {
	return f.mem.Head(key, branch)
}

// CompareAndSet implements BranchTable.
func (f *FileBranchTable) CompareAndSet(key, branch string, old, new hash.Hash) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ok, err := f.mem.CompareAndSet(key, branch, old, new)
	if err != nil || !ok {
		return ok, err
	}
	return true, f.persist()
}

// Delete implements BranchTable.
func (f *FileBranchTable) Delete(key, branch string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.mem.Delete(key, branch); err != nil {
		return err
	}
	return f.persist()
}

// Rename implements BranchTable.
func (f *FileBranchTable) Rename(key, from, to string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.mem.Rename(key, from, to); err != nil {
		return err
	}
	return f.persist()
}

// Branches implements BranchTable.
func (f *FileBranchTable) Branches(key string) (map[string]hash.Hash, error) {
	return f.mem.Branches(key)
}

// Keys implements BranchTable.
func (f *FileBranchTable) Keys() ([]string, error) { return f.mem.Keys() }
