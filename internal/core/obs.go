package core

import (
	"context"
	"errors"
	"log/slog"
	"sync/atomic"
	"time"

	"forkbase/internal/obs"
	"forkbase/internal/store"
)

// latSampleMask gates latency timing on the engine hot path: clock reads
// cost ~50-100ns on virtualized hosts, which would dwarf the atomic adds
// everywhere else, so only 1 of every latSampleMask+1 operations is timed.
// Counters stay exact for every op; the histogram sees an unbiased sample
// (any busy engine feeds it thousands of observations per second).  With a
// slow-op threshold configured every operation is timed — detection must
// not sample.
const latSampleMask = 31

// dbObs bundles the engine's observability wiring: per-operation counters
// and latency histograms, GC/heal/scrub run accounting, and the
// threshold-gated slow-op structured log that carries the trace ID minted
// at the serving edge.  Every handle is resolved once at Open; the
// per-operation cost is a few atomic adds plus, for sampled (or all, under
// a slow-op threshold) operations, two clock reads.
type dbObs struct {
	reg    *obs.Registry
	logger *slog.Logger
	slowOp time.Duration
	on     bool // false for obs.Discard: every hook short-circuits
	sample atomic.Uint64

	opPut, opWriteBatch, opGet, opMerge *engineOp

	gcRuns, gcErrors, gcSwept, gcReclaimed, gcCompacted *obs.Counter
	gcSeconds                                           *obs.Histogram
	healRuns, healRepaired, healFetchedBytes            *obs.Counter
	healSeconds                                         *obs.Histogram
	scrubRuns, scrubQuarantined, scrubLost              *obs.Counter
	scrubSeconds                                        *obs.Histogram
}

type engineOp struct {
	name  string
	total *obs.Counter
	errs  *obs.Counter
	lat   *obs.Histogram
}

func newDBObs(reg *obs.Registry, logger *slog.Logger, slowOp time.Duration) *dbObs {
	o := &dbObs{
		reg: reg, logger: logger, slowOp: slowOp,
		on: reg != nil && reg != obs.Discard,
	}
	total := reg.CounterVec("forkbase_engine_ops_total",
		"Engine operations by entry point.", "op")
	errsV := reg.CounterVec("forkbase_engine_errors_total",
		"Engine operations that failed (not-found and stale-head excluded), by entry point.", "op")
	lat := reg.HistogramVec("forkbase_engine_op_seconds",
		"Engine operation latency by entry point.", "op")
	mk := func(op string) *engineOp {
		return &engineOp{name: op, total: total.With(op), errs: errsV.With(op), lat: lat.With(op)}
	}
	o.opPut, o.opWriteBatch, o.opGet, o.opMerge =
		mk("put"), mk("write_batch"), mk("get"), mk("merge")
	o.gcRuns = reg.Counter("forkbase_gc_runs_total", "Completed GC/compaction passes.")
	o.gcErrors = reg.Counter("forkbase_gc_errors_total", "GC passes that failed.")
	o.gcSwept = reg.Counter("forkbase_gc_swept_chunks_total", "Unreachable chunks deleted by GC.")
	o.gcReclaimed = reg.Counter("forkbase_gc_reclaimed_bytes_total", "Physical bytes returned by GC/compaction.")
	o.gcCompacted = reg.Counter("forkbase_gc_compacted_segments_total", "Log segments rewritten by compaction.")
	o.gcSeconds = reg.Histogram("forkbase_gc_seconds", "GC/compaction pass duration.")
	o.healRuns = reg.Counter("forkbase_heal_runs_total", "Completed anti-entropy heal passes.")
	o.healRepaired = reg.Counter("forkbase_heal_repaired_chunks_total", "Chunks refetched, verified and restored by heal.")
	o.healFetchedBytes = reg.Counter("forkbase_heal_fetched_bytes_total", "Encoded bytes pulled from the heal source.")
	o.healSeconds = reg.Histogram("forkbase_heal_seconds", "Heal pass duration.")
	o.scrubRuns = reg.Counter("forkbase_scrub_runs_total", "Completed media scrub passes.")
	o.scrubQuarantined = reg.Counter("forkbase_scrub_quarantined_segments_total", "Storage units quarantined by scrub.")
	o.scrubLost = reg.Counter("forkbase_scrub_lost_chunks_total", "Chunk records detected as lost by scrub.")
	o.scrubSeconds = reg.Histogram("forkbase_scrub_seconds", "Scrub pass duration.")
	return o
}

// benignOpErr reports errors that are normal protocol outcomes — absent
// keys/branches, lost CAS races — and must not count as engine failures.
func benignOpErr(err error) bool {
	return errors.Is(err, ErrBranchNotFound) || errors.Is(err, ErrKeyNotFound) ||
		errors.Is(err, ErrStaleHead) || errors.Is(err, store.ErrNotFound)
}

// begin opens one instrumented engine operation: it returns the start time
// when this operation's latency will be recorded (sampled, or always under
// a slow-op threshold), else the zero Time.  Evaluate as a defer argument
// so it captures the entry time.
func (o *dbObs) begin() time.Time {
	if o == nil || !o.on {
		return time.Time{}
	}
	if o.slowOp > 0 || o.sample.Add(1)&latSampleMask == 1 {
		return time.Now()
	}
	return time.Time{}
}

// finish completes one instrumented engine operation: count it, record
// latency when begin elected to time it, and — past the slow-op threshold —
// emit a structured log record carrying the request's trace ID so the stall
// can be joined with store-level slow-op records.
func (o *dbObs) finish(ctx context.Context, h *engineOp, start time.Time, errp *error, kvs ...any) {
	if o == nil || !o.on || h == nil {
		return
	}
	err := *errp
	h.total.Inc()
	if err != nil && !benignOpErr(err) {
		h.errs.Inc()
	}
	if start.IsZero() {
		return
	}
	d := time.Since(start)
	h.lat.Observe(d)
	if o.slowOp > 0 && d >= o.slowOp && o.logger != nil {
		args := make([]any, 0, len(kvs)+8)
		args = append(args, "op", h.name, "duration", d)
		if id := obs.TraceID(ctx); id != "" {
			args = append(args, "trace_id", id)
		}
		args = append(args, kvs...)
		if err != nil {
			args = append(args, "err", err)
		}
		o.logger.Warn("slow op", args...)
	}
}

func (o *dbObs) gcDone(start time.Time, gs GCStats, err error) {
	if o == nil {
		return
	}
	if err != nil {
		if !errors.Is(err, ErrNotCollectable) && !errors.Is(err, ErrReadOnly) {
			o.gcErrors.Inc()
		}
		return
	}
	o.gcRuns.Inc()
	o.gcSeconds.Since(start)
	o.gcSwept.Add(int64(gs.Swept))
	o.gcReclaimed.Add(gs.ReclaimedBytes)
	o.gcCompacted.Add(int64(gs.CompactedSegments))
}

func (o *dbObs) healDone(start time.Time, hs HealStats, err error) {
	if o == nil {
		return
	}
	o.healRepaired.Add(int64(hs.Repaired))
	o.healFetchedBytes.Add(hs.BytesFetched)
	if err == nil {
		o.healRuns.Inc()
		o.healSeconds.Since(start)
	}
}

func (o *dbObs) scrubDone(start time.Time, ss store.ScrubStats, err error) {
	if o == nil {
		return
	}
	if err != nil {
		return
	}
	o.scrubRuns.Inc()
	o.scrubSeconds.Since(start)
	o.scrubQuarantined.Add(int64(ss.QuarantinedSegments))
	o.scrubLost.Add(int64(len(ss.Lost)))
}

// registerGauges publishes scrape-time views of the store's dedup
// accounting and the decoded-node cache.  Remote/cluster stores are
// excluded — their Stats() is a network round trip, too expensive for a
// scrape — and re-registration replaces the callback, so when a test
// process opens engines serially the latest engine's gauges win.
func (db *DB) registerGauges() {
	reg := db.met.reg
	kind := store.KindOf(db.raw)
	if kind == "mem" || kind == "file" {
		labels, vals := []string{"kind"}, []string{kind}
		raw := db.raw
		reg.GaugeFuncVec("forkbase_store_chunks", "Distinct chunks physically stored, by backend kind.",
			labels, vals, func() float64 { return float64(raw.Stats().UniqueChunks) })
		reg.GaugeFuncVec("forkbase_store_physical_bytes", "Encoded bytes occupying storage, by backend kind.",
			labels, vals, func() float64 { return float64(raw.Stats().PhysicalBytes) })
		reg.GaugeFuncVec("forkbase_store_logical_bytes", "Encoded bytes before deduplication, by backend kind.",
			labels, vals, func() float64 { return float64(raw.Stats().LogicalBytes) })
		reg.CounterFuncVec("forkbase_store_dedup_hits_total", "Put calls that found the chunk already present, by backend kind.",
			labels, vals, func() float64 { return float64(raw.Stats().DedupHits) })
	}
	if vs := store.VerifierOf(db.st); vs != nil {
		reg.CounterFunc("forkbase_verify_cache_hits_total", "Verified-id set hits (reads that skipped the rehash).",
			func() float64 { return float64(vs.VerifyStats().Hits) })
		reg.CounterFunc("forkbase_verify_cache_misses_total", "Verified-id set misses (reads that paid the rehash).",
			func() float64 { return float64(vs.VerifyStats().Misses) })
		reg.CounterFunc("forkbase_verify_cache_invalidations_total", "Verified-id entries dropped by GC, scrub, heal, repair, or epoch change.",
			func() float64 { return float64(vs.VerifyStats().Invalidations) })
		reg.CounterFunc("forkbase_verify_skipped_hashes_total", "Rehashes amortized away (verified-id hits plus provenance-trusted writes).",
			func() float64 { return float64(vs.VerifyStats().SkippedHashes) })
		reg.GaugeFunc("forkbase_verify_cache_entries", "Verified-id set resident entries.",
			func() float64 { return float64(vs.VerifyStats().Entries) })
	}
	if db.ncache != nil {
		c := db.ncache
		reg.CounterFunc("forkbase_cache_hits_total", "Decoded-node cache hits.",
			func() float64 { return float64(c.Stats().Hits) })
		reg.CounterFunc("forkbase_cache_misses_total", "Decoded-node cache misses.",
			func() float64 { return float64(c.Stats().Misses) })
		reg.CounterFunc("forkbase_cache_evictions_total", "Decoded-node cache evictions.",
			func() float64 { return float64(c.Stats().Evictions) })
		reg.GaugeFunc("forkbase_cache_bytes", "Decoded-node cache resident bytes.",
			func() float64 { return float64(c.Stats().Bytes) })
		reg.GaugeFunc("forkbase_cache_entries", "Decoded-node cache resident entries.",
			func() float64 { return float64(c.Stats().Entries) })
	}
}

// VerifyStats snapshots the verifying layer's amortization counters: hits,
// misses and invalidations of the verified-id set plus the total rehashes
// skipped (set hits and provenance-trusted writes).
func (db *DB) VerifyStats() store.VerifyStats {
	if vs := store.VerifierOf(db.st); vs != nil {
		return vs.VerifyStats()
	}
	return store.VerifyStats{}
}

// Metrics returns the registry this engine reports into (obs.Discard when
// observability is disabled; never nil).
func (db *DB) Metrics() *obs.Registry {
	if db.met == nil || db.met.reg == nil {
		return obs.Discard
	}
	return db.met.reg
}

// ErrNotScrubbable is returned by Scrub when no layer of the store stack
// can audit its own media (pure in-memory stores have nothing to scrub).
var ErrNotScrubbable = errors.New("core: store does not support scrubbing")

// findScrubber unwraps the store stack until it finds the media-audit
// capability (mirrors findCollector/findRepairer).
func findScrubber(st store.Store) (store.Scrubber, bool) {
	for {
		if s, ok := st.(store.Scrubber); ok {
			return s, true
		}
		switch s := st.(type) {
		case *store.CountingStore:
			st = s.Inner
		case *store.VerifyingStore:
			st = s.Inner
		case *store.MaliciousStore:
			st = s.Inner
		case interface{ Unwrap() store.Store }:
			st = s.Unwrap()
		default:
			return nil, false
		}
	}
}

// Scrub audits the backing store's physical media (see store.Scrubber),
// recording pass duration and quarantine/loss totals.  Returns
// ErrNotScrubbable when no layer has media to audit.
func (db *DB) Scrub() (store.ScrubStats, error) {
	scr, ok := findScrubber(db.raw)
	if !ok {
		return store.ScrubStats{}, ErrNotScrubbable
	}
	start := time.Now()
	ss, err := scr.Scrub()
	db.met.scrubDone(start, ss, err)
	if verifier := store.VerifierOf(db.st); verifier != nil {
		// Scrub itself never consults the verified set (it reads segment
		// files directly), but its findings do invalidate: lost ids must not
		// be vouched for, and a quarantine pass rescues records into new
		// homes — drop everything rather than reason about which survived.
		// (FileStore's placement epoch bump covers direct store.Scrub()
		// callers; this is the engine-level half of the pair.)
		verifier.Invalidate(ss.Lost...)
		if ss.QuarantinedSegments > 0 {
			verifier.InvalidateAll()
		}
	}
	return ss, err
}

// StoreHealth reports the backing store's media health: nil while every
// acknowledged chunk is readable and intact (or the store has no media to
// audit), an error wrapping store.ErrCorrupt while lost chunks await
// repair.
func (db *DB) StoreHealth() error {
	scr, ok := findScrubber(db.raw)
	if !ok {
		return nil
	}
	return scr.Health()
}
