package core

import (
	"testing"

	"forkbase/internal/obs"
	"forkbase/internal/store"
	"forkbase/internal/value"
)

// The instrumentation-overhead benchmarks: the same engine point get with
// metrics disabled (obs.Discard) and enabled.  `bench -exp obs` gates the
// delta; these exist for quick local comparison with -bench.

func benchGetMem(b *testing.B, reg *obs.Registry) {
	db := Open(Options{Store: store.NewMemStore(), Branches: NewMemBranchTable(), Metrics: reg})
	defer db.Close()
	payload := make([]byte, 2048)
	if _, err := db.Put("k", "", value.String(string(payload)), nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get("k", ""); err != nil {
			b.Fatal(err)
		}
	}
}

func benchGetFile(b *testing.B, reg *obs.Registry) {
	fs, err := store.OpenFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Close()
	db := Open(Options{Store: fs, Branches: NewMemBranchTable(), Metrics: reg})
	defer db.Close()
	payload := make([]byte, 2048)
	if _, err := db.Put("k", "", value.String(string(payload)), nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get("k", ""); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetMemBare(b *testing.B)   { benchGetMem(b, obs.Discard) }
func BenchmarkGetMemInstr(b *testing.B)  { benchGetMem(b, obs.NewRegistry()) }
func BenchmarkGetFileBare(b *testing.B)  { benchGetFile(b, obs.Discard) }
func BenchmarkGetFileInstr(b *testing.B) { benchGetFile(b, obs.NewRegistry()) }
