package core

import (
	"errors"
	"fmt"
	"testing"

	"forkbase/internal/chunker"
	"forkbase/internal/pos"
	"forkbase/internal/store"
	"forkbase/internal/value"
)

// newMaliciousDB returns a DB whose storage provider can be corrupted, plus
// the attack handle — the paper's §II-D threat model.
func newMaliciousDB() (*DB, *store.MaliciousStore) {
	mal := store.NewMaliciousStore(store.NewMemStore())
	db := Open(Options{Store: mal, Chunking: chunker.SmallConfig()})
	return db, mal
}

func bigMapValue(t *testing.T, db *DB, n int, tag string) value.Value {
	t.Helper()
	entries := make([]pos.Entry, n)
	for i := range entries {
		entries[i] = pos.Entry{
			Key: []byte(fmt.Sprintf("row-%05d", i)),
			Val: []byte(fmt.Sprintf("%s-value-%d", tag, i)),
		}
	}
	v, err := value.NewMap(db.Store(), db.Chunking(), entries)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestVerifyCleanVersion(t *testing.T) {
	db, _ := newMaliciousDB()
	v, err := db.Put("data", "", bigMapValue(t, db, 2000, "v1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := db.VerifyVersion("data", v.UID, false)
	if err != nil {
		t.Fatalf("clean verify failed: %v", err)
	}
	if !rep.OK || rep.ChunksChecked < 10 || rep.VersionsChecked != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestVerifyDetectsValueCorruption(t *testing.T) {
	db, mal := newMaliciousDB()
	v, err := db.Put("data", "", bigMapValue(t, db, 2000, "v1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one arbitrary value chunk.
	ids, err := v.Value.ChunkIDs(db.RawStore(), db.Chunking())
	if err != nil {
		t.Fatal(err)
	}
	target := ids[len(ids)/2]
	if ok, err := mal.CorruptFlip(target, 7, 2); err != nil || !ok {
		t.Fatalf("inject: %v %v", ok, err)
	}
	rep, err := db.VerifyVersion("data", v.UID, false)
	if !errors.Is(err, ErrTampered) {
		t.Fatalf("tampering not detected: %v", err)
	}
	if rep.OK || len(rep.Failures) == 0 {
		t.Fatalf("report = %+v", rep)
	}
	found := false
	for _, f := range rep.Failures {
		if f.ChunkID == target {
			found = true
		}
	}
	if !found {
		t.Fatalf("failure list %+v does not name corrupted chunk %s", rep.Failures, target.Short())
	}
}

func TestVerifyDetectsFNodeCorruption(t *testing.T) {
	db, mal := newMaliciousDB()
	v, err := db.Put("data", "", value.String("x"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := mal.CorruptFlip(v.UID, 0, 0); err != nil || !ok {
		t.Fatalf("inject: %v %v", ok, err)
	}
	if _, err := db.VerifyVersion("data", v.UID, false); !errors.Is(err, ErrTampered) {
		t.Fatalf("FNode tampering not detected: %v", err)
	}
	// Tampered head must also fail plain Get (reads are verified).
	if _, err := db.Get("data", "master"); err == nil {
		t.Fatal("Get returned forged version")
	}
}

func TestVerifyDeepDetectsHistoryTampering(t *testing.T) {
	db, mal := newMaliciousDB()
	v1, err := db.Put("doc", "", value.String("first"), nil)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := db.Put("doc", "", value.String("second"), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the *historical* version; a shallow verify of the head
	// passes, but a deep verify must catch it.
	if ok, err := mal.CorruptFlip(v1.UID, 1, 1); err != nil || !ok {
		t.Fatalf("inject: %v %v", ok, err)
	}
	if _, err := db.VerifyVersion("doc", v2.UID, false); err != nil {
		t.Fatalf("shallow verify should pass (head untouched): %v", err)
	}
	if _, err := db.VerifyVersion("doc", v2.UID, true); !errors.Is(err, ErrTampered) {
		t.Fatalf("deep verify missed history tampering: %v", err)
	}
}

// TestVerifyDetectsEveryChunkCorruption is the exhaustive Fig 6 property:
// corrupting ANY single reachable chunk must be detected.
func TestVerifyDetectsEveryChunkCorruption(t *testing.T) {
	db, mal := newMaliciousDB()
	v, err := db.Put("data", "", bigMapValue(t, db, 500, "v"), nil)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := v.Value.ChunkIDs(db.RawStore(), db.Chunking())
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, v.UID)
	for i, id := range ids {
		mal.Heal()
		if ok, err := mal.CorruptFlip(id, i, uint(i%8)); err != nil || !ok {
			t.Fatalf("inject %d: %v %v", i, ok, err)
		}
		if _, err := db.VerifyVersion("data", v.UID, true); !errors.Is(err, ErrTampered) {
			t.Fatalf("corruption of chunk %d (%s) went undetected", i, id.Short())
		}
	}
	mal.Heal()
	if _, err := db.VerifyVersion("data", v.UID, true); err != nil {
		t.Fatalf("verify after heal: %v", err)
	}
}

func TestUIDCoversValueAndHistory(t *testing.T) {
	// Two versions with the same value but different histories must have
	// different uids; two with same value and same history identical uids.
	db := newTestDB()
	a1, _ := db.Put("a", "", value.String("same"), nil)
	b1, _ := db.Put("b", "", value.String("same"), nil)
	if a1.UID == b1.UID {
		t.Fatal("different keys share uid")
	}
	db.Put("a", "", value.String("other"), nil)
	a3, _ := db.Put("a", "", value.String("same"), nil)
	if a3.UID == a1.UID {
		t.Fatal("same value, longer history, same uid — history not covered")
	}
}

// TestNodeCacheCannotMaskTampering enables the decoded-node cache over a
// malicious store and confirms the layering invariant: the cache sits above
// chunk verification, so a forged chunk is rejected before it can ever be
// cached, and repeated reads keep failing rather than "warming up" on
// corrupt data.
func TestNodeCacheCannotMaskTampering(t *testing.T) {
	mal := store.NewMaliciousStore(store.NewMemStore())
	db := Open(Options{Store: mal, Chunking: chunker.SmallConfig(), NodeCacheBytes: 16 << 20})
	v, err := db.Put("data", "", bigMapValue(t, db, 2000, "v1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := v.Value.ChunkIDs(db.RawStore(), db.Chunking())
	if err != nil {
		t.Fatal(err)
	}
	// Evict anything decoded during the build/put phase so the attacked
	// chunk must be re-read through the verifying layer.
	db.NodeCache().Purge()
	for _, id := range ids {
		if ok, err := mal.CorruptFlip(id, 7, 2); err != nil || !ok {
			t.Fatalf("corrupt %s: %v", id.Short(), err)
		}
	}
	if _, err := pos.LoadTree(db.Store(), db.Chunking(), v.Value.Root()); err == nil {
		t.Fatal("loading a fully corrupted tree succeeded")
	}
	if st := db.NodeCacheStats(); st.Entries != 0 {
		t.Fatalf("forged chunks entered the cache: %+v", st)
	}
}
