package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"forkbase/internal/chunk"
	"forkbase/internal/chunker"
	"forkbase/internal/hash"
	"forkbase/internal/nodecache"
	"forkbase/internal/pos"
	"forkbase/internal/store"
	"forkbase/internal/value"
)

func bigMap(t *testing.T, db *DB, n int, tag string) value.Value {
	t.Helper()
	entries := make([]pos.Entry, n)
	for i := range entries {
		entries[i] = pos.Entry{
			Key: []byte(fmt.Sprintf("k-%05d", i)),
			Val: []byte(fmt.Sprintf("%s-%d", tag, i)),
		}
	}
	v, err := value.NewMap(db.Store(), db.Chunking(), entries)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestGCKeepsEverythingReachable(t *testing.T) {
	db := newTestDB()
	db.Put("a", "", bigMap(t, db, 500, "v1"), nil)
	db.Put("a", "", bigMap(t, db, 500, "v2"), nil)
	db.Branch("a", "dev", "")
	db.Put("b", "", value.String("primitive"), nil)

	stats, err := db.GC()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Swept != 0 {
		t.Fatalf("GC swept %d chunks that were all reachable", stats.Swept)
	}
	// Everything still readable, including history.
	hist, err := db.History("a", "master", 0)
	if err != nil || len(hist) != 2 {
		t.Fatalf("history after GC: %d %v", len(hist), err)
	}
	if _, err := db.VerifyVersion("a", hist[0].UID, true); err != nil {
		t.Fatalf("verify after GC: %v", err)
	}
}

func TestGCSweepsAfterBranchDelete(t *testing.T) {
	db := newTestDB()
	// Two independent keys; delete every branch of one of them.
	db.Put("keep", "", bigMap(t, db, 500, "keep"), nil)
	db.Put("drop", "", bigMap(t, db, 500, "drop"), nil)
	before := db.Stats().UniqueChunks

	if err := db.DeleteBranch("drop", "master"); err != nil {
		t.Fatal(err)
	}
	stats, err := db.GC()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Swept == 0 || stats.SweptBytes == 0 {
		t.Fatalf("nothing swept after branch delete: %+v", stats)
	}
	after := db.Stats().UniqueChunks
	if after >= before {
		t.Fatalf("chunk count did not shrink: %d -> %d", before, after)
	}
	// The surviving key is fully intact.
	v, err := db.Get("keep", "master")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.VerifyVersion("keep", v.UID, true); err != nil {
		t.Fatalf("survivor corrupted by GC: %v", err)
	}
}

func TestGCPreservesSharedChunks(t *testing.T) {
	db := newTestDB()
	// Two keys sharing most pages (same content); deleting one must not
	// free the shared pages.
	v1 := bigMap(t, db, 800, "shared")
	db.Put("x", "", v1, nil)
	v2 := bigMap(t, db, 800, "shared") // identical content → same chunks
	db.Put("y", "", v2, nil)

	if err := db.DeleteBranch("x", "master"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GC(); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get("y", "master")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.VerifyVersion("y", got.UID, true); err != nil {
		t.Fatalf("shared chunks swept: %v", err)
	}
}

func TestGCHistoryStaysAlive(t *testing.T) {
	db := newTestDB()
	old, err := db.Put("doc", "", bigMap(t, db, 300, "old"), nil)
	if err != nil {
		t.Fatal(err)
	}
	db.Put("doc", "", bigMap(t, db, 300, "new"), nil)
	if _, err := db.GC(); err != nil {
		t.Fatal(err)
	}
	// The old version is reachable via the head's bases chain.
	if _, err := db.GetVersion("doc", old.UID); err != nil {
		t.Fatalf("historical version swept: %v", err)
	}
}

func TestGCOnWrappedStores(t *testing.T) {
	mal := store.NewMaliciousStore(store.NewMemStore())
	db := Open(Options{Store: mal, Chunking: chunker.SmallConfig()})
	db.Put("k", "", value.String("v"), nil)
	if _, err := db.GC(); err != nil {
		t.Fatalf("GC through malicious wrapper: %v", err)
	}
	cs := store.NewCountingStore(store.NewMemStore())
	db2 := Open(Options{Store: cs, Chunking: chunker.SmallConfig()})
	db2.Put("k", "", value.String("v"), nil)
	if _, err := db2.GC(); err != nil {
		t.Fatalf("GC through counting wrapper: %v", err)
	}
}

// opaqueStore hides every collection capability of its backing store — the
// shape of a third-party store that implements only the base interface.
type opaqueStore struct{ mem *store.MemStore }

func (o opaqueStore) Put(c *chunk.Chunk) (bool, error)       { return o.mem.Put(c) }
func (o opaqueStore) Get(id hash.Hash) (*chunk.Chunk, error) { return o.mem.Get(id) }
func (o opaqueStore) Has(id hash.Hash) (bool, error)         { return o.mem.Has(id) }
func (o opaqueStore) Stats() store.Stats                     { return o.mem.Stats() }

func TestGCNotCollectable(t *testing.T) {
	db := Open(Options{Store: opaqueStore{store.NewMemStore()}, Chunking: chunker.SmallConfig()})
	if _, err := db.GC(); !errors.Is(err, ErrNotCollectable) {
		t.Fatalf("opaque store GC err = %v", err)
	}
}

// TestGCLegacyCollectable pins the adapter: a third-party store exposing
// only the per-chunk IDs/Delete/Get surface is still collectable.
// hideSweep wraps a MemStore so only the legacy Collectable surface shows.
type hideSweep struct{ mem *store.MemStore }

func (h hideSweep) Put(c *chunk.Chunk) (bool, error)       { return h.mem.Put(c) }
func (h hideSweep) Get(id hash.Hash) (*chunk.Chunk, error) { return h.mem.Get(id) }
func (h hideSweep) Has(id hash.Hash) (bool, error)         { return h.mem.Has(id) }
func (h hideSweep) Stats() store.Stats                     { return h.mem.Stats() }
func (h hideSweep) IDs() []hash.Hash                       { return h.mem.IDs() }
func (h hideSweep) Delete(id hash.Hash)                    { h.mem.Delete(id) }

func TestGCLegacyCollectable(t *testing.T) {
	db := Open(Options{Store: hideSweep{store.NewMemStore()}, Chunking: chunker.SmallConfig()})
	db.Put("keep", "", bigMap(t, db, 200, "keep"), nil)
	db.Put("drop", "", bigMap(t, db, 200, "drop"), nil)
	if err := db.DeleteBranch("drop", "master"); err != nil {
		t.Fatal(err)
	}
	stats, err := db.GC()
	if err != nil {
		t.Fatalf("legacy collectable GC: %v", err)
	}
	if stats.Swept == 0 || stats.ReclaimedBytes == 0 {
		t.Fatalf("legacy sweep reclaimed nothing: %+v", stats)
	}
	if _, err := db.Get("keep", "master"); err != nil {
		t.Fatal(err)
	}
}

// TestGCFileBacked is the headline capability of this change: GC on a
// file-backed DB sweeps unreachable chunks AND returns the disk space, and
// the compacted store survives a reopen.
func TestGCFileBacked(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.OpenFileStoreSegmented(dir, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	db := Open(Options{Store: fs, Chunking: chunker.SmallConfig()})
	db.Put("keep", "", bigMap(t, db, 800, "keep"), nil)
	for round := 0; round < 4; round++ {
		br := fmt.Sprintf("tmp-%d", round)
		if _, err := db.Put("churn", br, bigMap(t, db, 800, br), nil); err != nil {
			t.Fatal(err)
		}
		if err := db.DeleteBranch("churn", br); err != nil {
			t.Fatal(err)
		}
	}
	diskBefore := fs.DiskBytes()

	stats, err := db.GC()
	if err != nil {
		t.Fatalf("file-backed GC: %v", err)
	}
	if stats.Swept == 0 || stats.ReclaimedBytes <= 0 || stats.CompactedSegments == 0 {
		t.Fatalf("file-backed GC reclaimed nothing: %+v", stats)
	}
	diskAfter := fs.DiskBytes()
	if diskAfter >= diskBefore {
		t.Fatalf("disk did not shrink: %d -> %d", diskBefore, diskAfter)
	}
	v, err := db.Get("keep", "master")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.VerifyVersion("keep", v.UID, true); err != nil {
		t.Fatalf("survivor corrupted by compaction: %v", err)
	}
	fs.Close()

	// The compacted layout must round-trip a restart.
	fs2, err := store.OpenFileStoreSegmented(dir, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	db2 := Open(Options{Store: fs2, Branches: db.heads, Chunking: chunker.SmallConfig()})
	v2, err := db2.Get("keep", "master")
	if err != nil {
		t.Fatalf("reopen after GC: %v", err)
	}
	if _, err := db2.VerifyVersion("keep", v2.UID, true); err != nil {
		t.Fatalf("reopened survivor fails verification: %v", err)
	}
}

// TestGCPurgesNodeCacheFileBacked mirrors the MemStore cache-purge test on
// the file-backed path: swept ids must leave the decoded-node cache even
// though the store reclaims them via compaction rather than deletion.
func TestGCPurgesNodeCacheFileBacked(t *testing.T) {
	fs, err := store.OpenFileStoreSegmented(t.TempDir(), 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	db := Open(Options{Store: fs, Chunking: chunker.SmallConfig(), NodeCacheBytes: 16 << 20})
	v, err := db.Put("data", "", bigMapValue(t, db, 2000, "v1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := pos.LoadTree(db.Store(), db.Chunking(), v.Value.Root())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Get([]byte("row-00000")); err != nil {
		t.Fatal(err)
	}
	if db.NodeCache().Len() == 0 {
		t.Fatal("cache not populated")
	}
	if err := db.DeleteBranch("data", "master"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GC(); err != nil {
		t.Fatal(err)
	}
	if n := db.NodeCache().Len(); n != 0 {
		t.Fatalf("GC left %d swept nodes in the cache", n)
	}
	if _, err := tree.Get([]byte("row-00000")); err == nil {
		t.Fatal("read of collected data succeeded via cache")
	}
}

// TestBackgroundCompactor pins Options.CompactEvery: churned garbage is
// reclaimed without anyone calling GC, and Close stops the loop.
func TestBackgroundCompactor(t *testing.T) {
	fs, err := store.OpenFileStoreSegmented(t.TempDir(), 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	db := Open(Options{
		Store:        fs,
		Chunking:     chunker.SmallConfig(),
		CompactEvery: 2 * time.Millisecond,
		CompactRatio: 0.01,
	})
	defer db.Close()
	db.Put("keep", "", bigMap(t, db, 400, "keep"), nil)
	if _, err := db.Put("churn", "tmp", bigMap(t, db, 800, "tmp"), nil); err != nil {
		t.Fatal(err)
	}
	chunksBefore := db.Stats().UniqueChunks
	if err := db.DeleteBranch("churn", "tmp"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for db.Stats().UniqueChunks >= chunksBefore {
		if time.Now().After(deadline) {
			t.Fatalf("background compactor never swept (chunks=%d)", db.Stats().UniqueChunks)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := db.Get("keep", "master"); err != nil {
		t.Fatalf("live data harmed by background compactor: %v", err)
	}
	passes := db.compactPasses.Load()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if passes == 0 {
		t.Fatal("compactor ran but recorded no passes")
	}
	// After Close the loop must be gone: no further passes accumulate.
	settled := db.compactPasses.Load()
	time.Sleep(20 * time.Millisecond)
	if got := db.compactPasses.Load(); got != settled {
		t.Fatalf("compactor still running after Close: %d -> %d", settled, got)
	}
}

func TestEditMapIncremental(t *testing.T) {
	db := newTestDB()
	db.Put("m", "", bigMap(t, db, 1000, "base"), nil)

	v2, err := db.EditMap("m", "", []pos.Entry{
		{Key: []byte("k-00500"), Val: []byte("edited")},
		{Key: []byte("new-key"), Val: []byte("added")},
	}, [][]byte{[]byte("k-00001")}, map[string]string{"msg": "edit"})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := v2.Value.MapTree(db.Store(), db.Chunking())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := tr.Get([]byte("k-00500")); string(v) != "edited" {
		t.Fatalf("edit lost: %q", v)
	}
	if ok, _ := tr.Has([]byte("k-00001")); ok {
		t.Fatal("delete lost")
	}
	if tr.Len() != 1000 {
		t.Fatalf("len = %d", tr.Len())
	}
	// Incremental edit equals a full re-put of the same content.
	entries, err := tr.Entries()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := value.NewMap(db.Store(), db.Chunking(), entries)
	if err != nil {
		t.Fatal(err)
	}
	if !fresh.Equal(v2.Value) {
		t.Fatal("incremental EditMap diverges from fresh build")
	}
}

func TestEditMapOnSet(t *testing.T) {
	db := newTestDB()
	v, err := value.NewSet(db.Store(), db.Chunking(), [][]byte{[]byte("a"), []byte("b")})
	if err != nil {
		t.Fatal(err)
	}
	db.Put("s", "", v, nil)
	v2, err := db.EditMap("s", "", []pos.Entry{{Key: []byte("c")}}, [][]byte{[]byte("a")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Value.Kind() != value.KindSet {
		t.Fatalf("kind changed to %s", v2.Value.Kind())
	}
	tr, _ := v2.Value.SetTree(db.Store(), db.Chunking())
	if ok, _ := tr.Has([]byte("c")); !ok {
		t.Fatal("set add lost")
	}
	if ok, _ := tr.Has([]byte("a")); ok {
		t.Fatal("set remove lost")
	}
}

func TestEditMapWrongKind(t *testing.T) {
	db := newTestDB()
	db.Put("str", "", value.String("x"), nil)
	if _, err := db.EditMap("str", "", nil, nil, nil); err == nil {
		t.Fatal("EditMap on string succeeded")
	}
}

func TestAppendListAndSpliceBlob(t *testing.T) {
	db := newTestDB()
	lv, err := value.NewList(db.Store(), db.Chunking(), [][]byte{[]byte("one")})
	if err != nil {
		t.Fatal(err)
	}
	db.Put("l", "", lv, nil)
	v2, err := db.AppendList("l", "", [][]byte{[]byte("two"), []byte("three")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sq, _ := v2.Value.Seq(db.Store(), db.Chunking())
	if sq.Len() != 3 {
		t.Fatalf("list len = %d", sq.Len())
	}
	it, err := sq.Get(2)
	if err != nil || string(it) != "three" {
		t.Fatalf("appended item = %q %v", it, err)
	}

	bv, err := value.NewBlob(db.Store(), db.Chunking(), []byte("hello cruel world"))
	if err != nil {
		t.Fatal(err)
	}
	db.Put("b", "", bv, nil)
	v3, err := db.SpliceBlob("b", "", 6, 5, []byte("kind"), nil)
	if err != nil {
		t.Fatal(err)
	}
	bl, _ := v3.Value.Blob(db.Store(), db.Chunking())
	got, _ := bl.Bytes()
	if string(got) != "hello kind world" {
		t.Fatalf("spliced = %q", got)
	}
}

// TestGCPurgesInjectedNodeCache covers the configuration where the caller
// attaches the decoded-node cache to the store directly (rather than via
// Options.NodeCacheBytes): GC must purge swept ids from that cache too, or
// traversals could resurrect deleted chunks.
func TestGCPurgesInjectedNodeCache(t *testing.T) {
	cache := nodecache.New(16 << 20)
	db := Open(Options{
		Store:    store.WithNodeCache(store.NewMemStore(), cache),
		Chunking: chunker.SmallConfig(),
	})
	v, err := db.Put("data", "", bigMapValue(t, db, 2000, "v1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache, then orphan everything.
	tree, err := pos.LoadTree(db.Store(), db.Chunking(), v.Value.Root())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Get([]byte("row-00000")); err != nil {
		t.Fatal(err)
	}
	if cache.Len() == 0 {
		t.Fatal("cache not populated")
	}
	if err := db.DeleteBranch("data", "master"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GC(); err != nil {
		t.Fatal(err)
	}
	if n := cache.Len(); n != 0 {
		t.Fatalf("GC left %d swept nodes in the injected cache", n)
	}
	if _, err := tree.Get([]byte("row-00000")); err == nil {
		t.Fatal("read of collected data succeeded via cache")
	}
}

// TestGCConcurrentReadersCannotResurrect races traversals of an orphaned
// tree against the GC sweep (under -race this also validates the locking).
// Whatever interleaving occurs, the end state must be consistent: no swept
// chunk may remain readable through the decoded-node cache.
func TestGCConcurrentReadersCannotResurrect(t *testing.T) {
	cache := nodecache.New(16 << 20)
	mem := store.NewMemStore()
	db := Open(Options{
		Store:    store.WithNodeCache(mem, cache),
		Chunking: chunker.SmallConfig(),
	})
	v, err := db.Put("data", "", bigMapValue(t, db, 3000, "v1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := pos.LoadTree(db.Store(), db.Chunking(), v.Value.Root())
	if err != nil {
		t.Fatal(err)
	}
	ids, err := tree.ChunkIDs()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteBranch("data", "master"); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are expected once the sweep passes under us.
				tree.Get([]byte(fmt.Sprintf("row-%05d", (g*977+i)%3000)))
			}
		}(g)
	}
	if _, err := db.GC(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	for _, id := range ids {
		has, err := mem.Has(id)
		if err != nil {
			t.Fatal(err)
		}
		if has {
			continue // still stored (nothing swept it) — cache residency fine
		}
		if _, ok := cache.Get(id); ok {
			t.Fatalf("swept chunk %s resurrected in cache", id.Short())
		}
	}
}
