package core

import (
	"errors"
	"fmt"
	"testing"

	"forkbase/internal/chunker"
	"forkbase/internal/hash"
	"forkbase/internal/pos"
	"forkbase/internal/store"
	"forkbase/internal/value"
)

func newTestDB() *DB {
	return Open(Options{Chunking: chunker.SmallConfig()})
}

func TestPutGetString(t *testing.T) {
	db := newTestDB()
	v1, err := db.Put("greeting", "", value.String("hello"), map[string]string{"author": "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if v1.Seq != 1 || len(v1.Bases) != 0 {
		t.Fatalf("first version = %+v", v1)
	}
	got, err := db.Get("greeting", "master")
	if err != nil {
		t.Fatal(err)
	}
	s, err := got.Value.AsString()
	if err != nil || s != "hello" {
		t.Fatalf("get = %q %v", s, err)
	}
	if got.Meta["author"] != "alice" {
		t.Fatalf("meta = %v", got.Meta)
	}

	v2, err := db.Put("greeting", "", value.String("hi"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Seq != 2 || len(v2.Bases) != 1 || v2.Bases[0] != v1.UID {
		t.Fatalf("second version = %+v", v2)
	}
}

func TestGetMissing(t *testing.T) {
	db := newTestDB()
	if _, err := db.Get("absent", ""); !errors.Is(err, ErrBranchNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.Head("absent", "master"); !errors.Is(err, ErrBranchNotFound) {
		t.Fatalf("head err = %v", err)
	}
}

func TestGetVersionWrongKey(t *testing.T) {
	db := newTestDB()
	v, err := db.Put("a", "", value.Int(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.GetVersion("b", v.UID); err == nil {
		t.Fatal("cross-key version fetch succeeded")
	}
}

func TestHistoryAndVersionedGet(t *testing.T) {
	db := newTestDB()
	var uids []hash.Hash
	for i := 0; i < 5; i++ {
		v, err := db.Put("counter", "", value.Int(int64(i)), nil)
		if err != nil {
			t.Fatal(err)
		}
		uids = append(uids, v.UID)
	}
	hist, err := db.History("counter", "master", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 5 {
		t.Fatalf("history %d", len(hist))
	}
	// Historical versions remain retrievable — immutability.
	old, err := db.GetVersion("counter", uids[1])
	if err != nil {
		t.Fatal(err)
	}
	i, _ := old.Value.AsInt()
	if i != 1 {
		t.Fatalf("historical value = %d", i)
	}
}

func TestBranchAndIsolation(t *testing.T) {
	db := newTestDB()
	if _, err := db.Put("doc", "", value.String("v1"), nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Branch("doc", "dev", ""); err != nil {
		t.Fatal(err)
	}
	// Branching is O(1) sharing: heads equal.
	m, _ := db.Head("doc", "master")
	d, _ := db.Head("doc", "dev")
	if m != d {
		t.Fatal("fresh branch head differs from origin")
	}
	// Writes to dev do not affect master.
	if _, err := db.Put("doc", "dev", value.String("v2-dev"), nil); err != nil {
		t.Fatal(err)
	}
	mv, _ := db.Get("doc", "master")
	s, _ := mv.Value.AsString()
	if s != "v1" {
		t.Fatalf("master polluted: %q", s)
	}
	dv, _ := db.Get("doc", "dev")
	s, _ = dv.Value.AsString()
	if s != "v2-dev" {
		t.Fatalf("dev = %q", s)
	}

	branches, err := db.ListBranches("doc")
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 2 || branches[0] != "dev" || branches[1] != "master" {
		t.Fatalf("branches = %v", branches)
	}
	if err := db.Branch("doc", "dev", ""); !errors.Is(err, ErrBranchExists) {
		t.Fatalf("duplicate branch err = %v", err)
	}
	if err := db.Branch("doc", "x", "ghost"); !errors.Is(err, ErrBranchNotFound) {
		t.Fatalf("branch from ghost err = %v", err)
	}
}

func TestBranchFromVersion(t *testing.T) {
	db := newTestDB()
	v1, _ := db.Put("k", "", value.Int(1), nil)
	db.Put("k", "", value.Int(2), nil)
	if err := db.BranchFromVersion("k", "old", v1.UID); err != nil {
		t.Fatal(err)
	}
	got, _ := db.Get("k", "old")
	i, _ := got.Value.AsInt()
	if i != 1 {
		t.Fatalf("branch-from-version value = %d", i)
	}
}

func TestRenameAndDeleteBranch(t *testing.T) {
	db := newTestDB()
	db.Put("k", "", value.Int(1), nil)
	db.Branch("k", "tmp", "")
	if err := db.RenameBranch("k", "tmp", "feature"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get("k", "feature"); err != nil {
		t.Fatalf("renamed branch unreadable: %v", err)
	}
	if _, err := db.Get("k", "tmp"); err == nil {
		t.Fatal("old name still readable")
	}
	if err := db.DeleteBranch("k", "feature"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get("k", "feature"); err == nil {
		t.Fatal("deleted branch still readable")
	}
}

func TestLatestAcrossBranches(t *testing.T) {
	db := newTestDB()
	db.Put("k", "", value.Int(1), nil)
	db.Branch("k", "dev", "")
	db.Put("k", "dev", value.Int(2), nil)
	db.Put("k", "dev", value.Int(3), nil)
	branch, v, err := db.Latest("k")
	if err != nil {
		t.Fatal(err)
	}
	if branch != "dev" || v.Seq != 3 {
		t.Fatalf("latest = %s seq %d", branch, v.Seq)
	}
}

func TestListKeys(t *testing.T) {
	db := newTestDB()
	db.Put("b", "", value.Int(1), nil)
	db.Put("a", "", value.Int(2), nil)
	keys, err := db.ListKeys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v", keys)
	}
	if !db.Exists("a") || db.Exists("zz") {
		t.Fatal("Exists misreports")
	}
}

func mapVal(t *testing.T, db *DB, kv map[string]string) value.Value {
	t.Helper()
	entries := make([]pos.Entry, 0, len(kv))
	for k, v := range kv {
		entries = append(entries, pos.Entry{Key: []byte(k), Val: []byte(v)})
	}
	v, err := value.NewMap(db.Store(), db.Chunking(), entries)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestDiffBranches(t *testing.T) {
	db := newTestDB()
	base := map[string]string{}
	for i := 0; i < 500; i++ {
		base[fmt.Sprintf("row-%04d", i)] = fmt.Sprintf("val-%d", i)
	}
	db.Put("table", "", mapVal(t, db, base), nil)
	db.Branch("table", "vendor", "")

	mod := map[string]string{}
	for k, v := range base {
		mod[k] = v
	}
	mod["row-0100"] = "changed"
	delete(mod, "row-0200")
	mod["row-new"] = "added"
	db.Put("table", "vendor", mapVal(t, db, mod), nil)

	deltas, stats, err := db.DiffBranches("table", "master", "vendor")
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 3 {
		t.Fatalf("deltas = %d: %+v", len(deltas), deltas)
	}
	if stats.TouchedChunks == 0 {
		t.Fatal("no chunks touched?")
	}
	kinds := map[string]pos.DeltaKind{}
	for _, d := range deltas {
		kinds[string(d.Key)] = d.Kind()
	}
	if kinds["row-0100"] != pos.Modified || kinds["row-0200"] != pos.Removed || kinds["row-new"] != pos.Added {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestDiffKindMismatch(t *testing.T) {
	db := newTestDB()
	v1, _ := db.Put("k", "", value.String("s"), nil)
	v2, _ := db.Put("k", "", mapVal(t, db, map[string]string{"a": "b"}), nil)
	if _, _, err := db.Diff("k", v1.UID, v2.UID); err == nil {
		t.Fatal("cross-kind diff succeeded")
	}
	v3, _ := db.Put("k2", "", value.String("x"), nil)
	v4, _ := db.Put("k2", "", value.String("y"), nil)
	if _, _, err := db.Diff("k2", v3.UID, v4.UID); err == nil {
		t.Fatal("string diff succeeded")
	}
}

func TestMergeCleanAndConflict(t *testing.T) {
	db := newTestDB()
	base := map[string]string{}
	for i := 0; i < 300; i++ {
		base[fmt.Sprintf("row-%04d", i)] = "base"
	}
	db.Put("data", "", mapVal(t, db, base), nil)
	db.Branch("data", "alice", "")
	db.Branch("data", "bob", "")

	am := map[string]string{}
	for k, v := range base {
		am[k] = v
	}
	am["row-0001"] = "alice-edit"
	db.Put("data", "alice", mapVal(t, db, am), nil)

	bm := map[string]string{}
	for k, v := range base {
		bm[k] = v
	}
	bm["row-0200"] = "bob-edit"
	db.Put("data", "bob", mapVal(t, db, bm), nil)

	// Merge bob into alice: disjoint edits, no conflicts.
	res, err := db.Merge("data", "alice", "bob", nil, map[string]string{"msg": "merge bob"})
	if err != nil {
		t.Fatal(err)
	}
	if res.FastForward {
		t.Fatal("true merge flagged fast-forward")
	}
	if len(res.Version.Bases) != 2 {
		t.Fatalf("merge bases = %d", len(res.Version.Bases))
	}
	merged, _ := db.Get("data", "alice")
	tr, err := merged.Value.MapTree(db.Store(), db.Chunking())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := tr.Get([]byte("row-0001")); string(v) != "alice-edit" {
		t.Fatalf("alice edit lost: %q", v)
	}
	if v, _ := tr.Get([]byte("row-0200")); string(v) != "bob-edit" {
		t.Fatalf("bob edit lost: %q", v)
	}

	// Now a conflicting change on both branches.
	cm1 := map[string]string{}
	for k, v := range am {
		cm1[k] = v
	}
	cm1["row-0200"] = "alice-overwrites" // conflicts with bob's row-0200 change? bob already merged; make fresh conflict
	db.Put("data", "alice", mapVal(t, db, cm1), nil)
	cm2 := map[string]string{}
	for k, v := range bm {
		cm2[k] = v
	}
	cm2["row-0200"] = "bob-again"
	db.Put("data", "bob", mapVal(t, db, cm2), nil)

	_, err = db.Merge("data", "alice", "bob", nil, nil)
	var ce *pos.ErrConflict
	if !errors.As(err, &ce) {
		t.Fatalf("want conflict, got %v", err)
	}
	// With a resolver the merge completes.
	if _, err := db.Merge("data", "alice", "bob", pos.ResolveTheirs, nil); err != nil {
		t.Fatalf("resolved merge failed: %v", err)
	}
	got, _ := db.Get("data", "alice")
	tr, _ = got.Value.MapTree(db.Store(), db.Chunking())
	if v, _ := tr.Get([]byte("row-0200")); string(v) != "bob-again" {
		t.Fatalf("resolver outcome = %q", v)
	}
}

func TestMergeFastForward(t *testing.T) {
	db := newTestDB()
	db.Put("k", "", mapVal(t, db, map[string]string{"a": "1"}), nil)
	db.Branch("k", "dev", "")
	db.Put("k", "dev", mapVal(t, db, map[string]string{"a": "1", "b": "2"}), nil)

	res, err := db.Merge("k", "master", "dev", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FastForward {
		t.Fatal("expected fast-forward")
	}
	mh, _ := db.Head("k", "master")
	dh, _ := db.Head("k", "dev")
	if mh != dh {
		t.Fatal("fast-forward did not advance master")
	}
	// Merging again is a no-op (already merged).
	res, err = db.Merge("k", "master", "dev", nil, nil)
	if err != nil || !res.FastForward {
		t.Fatalf("idempotent merge: %+v %v", res, err)
	}
	// Reverse direction: src behind dst → no-op.
	db.Put("k", "master", mapVal(t, db, map[string]string{"a": "1", "b": "2", "c": "3"}), nil)
	res, err = db.Merge("k", "master", "dev", nil, nil)
	if err != nil || !res.FastForward {
		t.Fatalf("already-contained merge: %v", err)
	}
}

func TestMergeSetValues(t *testing.T) {
	db := newTestDB()
	mkSet := func(elems ...string) value.Value {
		bs := make([][]byte, len(elems))
		for i, e := range elems {
			bs[i] = []byte(e)
		}
		v, err := value.NewSet(db.Store(), db.Chunking(), bs)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	db.Put("tags", "", mkSet("x", "y"), nil)
	db.Branch("tags", "dev", "")
	db.Put("tags", "master", mkSet("x", "y", "m"), nil)
	db.Put("tags", "dev", mkSet("x", "y", "d"), nil)
	res, err := db.Merge("tags", "master", "dev", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := res.Version.Value.SetTree(db.Store(), db.Chunking())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []string{"x", "y", "m", "d"} {
		if ok, _ := tr.Has([]byte(e)); !ok {
			t.Fatalf("merged set missing %q", e)
		}
	}
}

func TestMergePrimitiveConflictFails(t *testing.T) {
	db := newTestDB()
	db.Put("s", "", value.String("base"), nil)
	db.Branch("s", "dev", "")
	db.Put("s", "master", value.String("m"), nil)
	db.Put("s", "dev", value.String("d"), nil)
	if _, err := db.Merge("s", "master", "dev", nil, nil); err == nil {
		t.Fatal("diverged string merge succeeded")
	}
}

func TestDedupAcrossVersions(t *testing.T) {
	db := newTestDB()
	base := map[string]string{}
	for i := 0; i < 2000; i++ {
		base[fmt.Sprintf("row-%05d", i)] = fmt.Sprintf("value-%d", i)
	}
	db.Put("big", "", mapVal(t, db, base), nil)
	afterFirst := db.Stats().PhysicalBytes

	// 10 versions with one-row changes each: physical growth must be a
	// small fraction of the first version.
	for v := 0; v < 10; v++ {
		base[fmt.Sprintf("row-%05d", v*137)] = fmt.Sprintf("edit-%d", v)
		db.Put("big", "", mapVal(t, db, base), nil)
	}
	growth := db.Stats().PhysicalBytes - afterFirst
	if growth > afterFirst/2 {
		t.Fatalf("10 single-row versions grew storage by %d (first version %d) — dedup broken",
			growth, afterFirst)
	}
	t.Logf("first version: %d B; 10 more versions: +%d B (%.1f%%)",
		afterFirst, growth, 100*float64(growth)/float64(afterFirst))
}

func TestStaleHeadDetection(t *testing.T) {
	bt := NewMemBranchTable()
	db := Open(Options{Branches: bt, Chunking: chunker.SmallConfig()})
	v, err := db.Put("k", "", value.Int(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a concurrent writer moving the head under us.
	otherDB := Open(Options{Store: db.RawStore(), Branches: bt, Chunking: chunker.SmallConfig()})
	if _, err := otherDB.Put("k", "", value.Int(2), nil); err != nil {
		t.Fatal(err)
	}
	_ = v
	// The next CAS from a stale base must fail at the table level; emulate
	// by direct CAS with the old head.
	ok, err := bt.CompareAndSet("k", "master", v.UID, hash.Of([]byte("x")))
	if err != nil || ok {
		t.Fatalf("stale CAS succeeded: %v %v", ok, err)
	}
}

func TestFileBrancheTablePersistence(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := OpenFileBranchTable(dir)
	if err != nil {
		t.Fatal(err)
	}
	db := Open(Options{Store: fs, Branches: bt, Chunking: chunker.SmallConfig()})
	want, err := db.Put("persisted", "", value.String("survives"), nil)
	if err != nil {
		t.Fatal(err)
	}
	db.Branch("persisted", "extra", "")
	fs.Close()

	// Reopen everything.
	fs2, err := store.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	bt2, err := OpenFileBranchTable(dir)
	if err != nil {
		t.Fatal(err)
	}
	db2 := Open(Options{Store: fs2, Branches: bt2, Chunking: chunker.SmallConfig()})
	got, err := db2.Get("persisted", "master")
	if err != nil {
		t.Fatal(err)
	}
	if got.UID != want.UID {
		t.Fatalf("reopened head %s != %s", got.UID.Short(), want.UID.Short())
	}
	s, _ := got.Value.AsString()
	if s != "survives" {
		t.Fatalf("value = %q", s)
	}
	branches, _ := db2.ListBranches("persisted")
	if len(branches) != 2 {
		t.Fatalf("branches after reopen = %v", branches)
	}
}

func TestBranchTableRenameDeleteErrors(t *testing.T) {
	bt := NewMemBranchTable()
	if err := bt.Delete("k", "b"); !errors.Is(err, ErrBranchNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
	if err := bt.Rename("k", "a", "b"); !errors.Is(err, ErrBranchNotFound) {
		t.Fatalf("rename missing: %v", err)
	}
	bt.CompareAndSet("k", "a", hash.Hash{}, hash.Of([]byte("1")))
	bt.CompareAndSet("k", "b", hash.Hash{}, hash.Of([]byte("2")))
	if err := bt.Rename("k", "a", "b"); !errors.Is(err, ErrBranchExists) {
		t.Fatalf("rename onto existing: %v", err)
	}
	if _, err := bt.Branches("ghost"); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("branches of missing key: %v", err)
	}
}

func TestWriteBatchMultiKey(t *testing.T) {
	db := newTestDB()
	ops := []WriteOp{
		{Key: "a", Value: value.String("va")},
		{Key: "b", Branch: "dev", Value: value.String("vb"), Meta: map[string]string{"m": "1"}},
		{Key: "c", Value: value.Int(7)},
	}
	vers, err := db.WriteBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(vers) != 3 {
		t.Fatalf("versions = %d", len(vers))
	}
	for i, v := range vers {
		if v.Seq != 1 {
			t.Fatalf("op %d seq = %d", i, v.Seq)
		}
	}
	got, err := db.Get("b", "dev")
	if err != nil {
		t.Fatal(err)
	}
	if got.UID != vers[1].UID || got.Meta["m"] != "1" {
		t.Fatalf("b@dev = %+v", got)
	}
	if s, _ := got.Value.AsString(); s != "vb" {
		t.Fatalf("b@dev value = %q", s)
	}
}

func TestWriteBatchChainsSameKey(t *testing.T) {
	db := newTestDB()
	vers, err := db.WriteBatch([]WriteOp{
		{Key: "k", Value: value.String("one")},
		{Key: "k", Value: value.String("two")},
		{Key: "k", Value: value.String("three")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if vers[0].Seq != 1 || vers[1].Seq != 2 || vers[2].Seq != 3 {
		t.Fatalf("seqs = %d %d %d", vers[0].Seq, vers[1].Seq, vers[2].Seq)
	}
	if vers[1].Bases[0] != vers[0].UID || vers[2].Bases[0] != vers[1].UID {
		t.Fatal("batch ops on one key not chained")
	}
	head, err := db.Head("k", "")
	if err != nil {
		t.Fatal(err)
	}
	if head != vers[2].UID {
		t.Fatal("head is not the last batch op")
	}
	hist, err := db.History("k", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 {
		t.Fatalf("history = %d versions", len(hist))
	}
}

// racingBranchTable moves a head between WriteBatch's read and CAS phases.
type racingBranchTable struct {
	BranchTable
	moved bool
}

func (r *racingBranchTable) CompareAndSet(key, branch string, old, new hash.Hash) (bool, error) {
	if !r.moved && key == "victim" {
		r.moved = true
		// Simulate a concurrent writer: advance the head underneath.
		r.BranchTable.CompareAndSet(key, branch, old, hash.Of([]byte("interloper")))
	}
	return r.BranchTable.CompareAndSet(key, branch, old, new)
}

func TestWriteBatchPartialFailure(t *testing.T) {
	inner := NewMemBranchTable()
	db := Open(Options{Branches: &racingBranchTable{BranchTable: inner}, Chunking: chunker.SmallConfig()})
	vers, err := db.WriteBatch([]WriteOp{
		{Key: "victim", Value: value.String("lost race")},
		{Key: "ok", Value: value.String("fine")},
	})
	if !errors.Is(err, ErrStaleHead) {
		t.Fatalf("err = %v, want ErrStaleHead", err)
	}
	if vers[0].Seq != 0 {
		t.Fatal("raced op reported success")
	}
	if vers[1].Seq != 1 {
		t.Fatalf("independent op did not commit: %+v", vers[1])
	}
	if _, err := db.Get("ok", ""); err != nil {
		t.Fatal(err)
	}
}

// TestHistoryDecodesOnce pins the satellite fix: History loads each FNode
// exactly once (walk + materialize share the loads).
func TestHistoryDecodesOnce(t *testing.T) {
	ms := store.NewMemStore()
	db := Open(Options{Store: ms, Chunking: chunker.SmallConfig()})
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := db.Put("k", "", value.String(fmt.Sprintf("v%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	before := ms.Stats().Gets
	hist, err := db.History("k", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != n {
		t.Fatalf("history = %d", len(hist))
	}
	gets := ms.Stats().Gets - before
	// One store Get per version (head lookup is branch-table only).  The old
	// implementation needed 2n-1.
	if gets > int64(n) {
		t.Fatalf("history cost %d store gets for %d versions, want <= %d", gets, n, n)
	}
	for i, v := range hist {
		want := fmt.Sprintf("v%d", n-1-i)
		if s, _ := v.Value.AsString(); s != want {
			t.Fatalf("hist[%d] = %q, want %q", i, s, want)
		}
	}
}
