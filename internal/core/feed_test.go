package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"forkbase/internal/hash"
	"forkbase/internal/value"
)

func h(b byte) hash.Hash {
	var out hash.Hash
	out[0] = b
	return out
}

func TestFeedAppendSince(t *testing.T) {
	f := NewFeed(8)
	if got := f.Seq(); got != 0 {
		t.Fatalf("empty feed seq = %d, want 0", got)
	}
	for i := 1; i <= 5; i++ {
		seq := f.Append("k", "master", h(byte(i-1)), h(byte(i)))
		if seq != uint64(i) {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
	}
	entries, next, truncated := f.Since(2, 0)
	if truncated {
		t.Fatal("unexpected truncation")
	}
	if len(entries) != 3 || entries[0].Seq != 3 || next != 5 {
		t.Fatalf("Since(2) = %d entries first=%v next=%d", len(entries), entries[0].Seq, next)
	}
	// Limited read advances the cursor only as far as it returned.
	entries, next, _ = f.Since(0, 2)
	if len(entries) != 2 || next != 2 {
		t.Fatalf("Since(0,2) = %d entries next=%d", len(entries), next)
	}
	// Cursor at the tip: nothing, no truncation.
	entries, next, truncated = f.Since(5, 0)
	if len(entries) != 0 || next != 5 || truncated {
		t.Fatalf("Since(tip) = %d entries next=%d truncated=%v", len(entries), next, truncated)
	}
}

func TestFeedTruncation(t *testing.T) {
	f := NewFeed(4)
	for i := 1; i <= 10; i++ {
		f.Append("k", "master", hash.Hash{}, h(byte(i)))
	}
	// Entries 1..6 have been evicted; a cursor inside the hole truncates.
	if _, _, truncated := f.Since(2, 0); !truncated {
		t.Fatal("cursor in evicted range should report truncation")
	}
	entries, next, truncated := f.Since(6, 0)
	if truncated || len(entries) != 4 || next != 10 {
		t.Fatalf("Since(6) = %d entries next=%d truncated=%v", len(entries), next, truncated)
	}
	// A cursor beyond the tip (feed restarted, replica remembers more) also
	// truncates rather than silently waiting forever.
	fresh := NewFeed(4)
	if _, _, truncated := fresh.Since(3, 0); !truncated {
		t.Fatal("cursor beyond a fresh feed's tip should report truncation")
	}
}

func TestFeedWait(t *testing.T) {
	f := NewFeed(8)
	if f.Wait(0, 10*time.Millisecond) {
		t.Fatal("Wait on empty feed should time out")
	}
	done := make(chan bool, 1)
	go func() { done <- f.Wait(0, 2*time.Second) }()
	time.Sleep(5 * time.Millisecond)
	f.Append("k", "master", hash.Hash{}, h(1))
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("Wait should observe the append")
		}
	case <-time.After(time.Second):
		t.Fatal("Wait did not wake on append")
	}
	// Already-satisfied cursor returns immediately.
	if !f.Wait(0, 0) {
		t.Fatal("Wait with satisfied cursor should return true")
	}
}

func TestFeedPins(t *testing.T) {
	f := NewFeed(8)
	r1, r2 := h(1), h(2)
	f.Pin(r1, time.Minute)
	f.Pin(r1, time.Minute) // refcount 2
	f.Pin(r2, 10*time.Millisecond)
	if got := len(f.PinnedHeads()); got != 2 {
		t.Fatalf("pinned = %d, want 2", got)
	}
	f.Unpin(r1)
	if got := len(f.PinnedHeads()); got != 2 {
		t.Fatalf("pinned after one unpin = %d, want 2 (refcounted)", got)
	}
	f.Unpin(r1)
	time.Sleep(20 * time.Millisecond) // r2's lease expires
	if got := len(f.PinnedHeads()); got != 0 {
		t.Fatalf("pinned after release+expiry = %d, want 0", got)
	}
	f.Unpin(r1) // over-release is harmless
	f.Pin(hash.Hash{}, time.Minute)
	if got := len(f.PinnedHeads()); got != 0 {
		t.Fatalf("zero hash must not pin, got %d", got)
	}
}

func TestFeedTableJournalsEngineWrites(t *testing.T) {
	db := Open(Options{})
	feed := db.Feed()
	if feed == nil {
		t.Fatal("engine must always carry a feed")
	}
	v1, err := db.Put("k", "", value.String("a"), nil)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := db.Put("k", "", value.String("b"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Branch("k", "dev", ""); err != nil {
		t.Fatal(err)
	}
	if err := db.RenameBranch("k", "dev", "dev2"); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteBranch("k", "dev2"); err != nil {
		t.Fatal(err)
	}
	entries, next, truncated := feed.Since(0, 0)
	if truncated {
		t.Fatal("unexpected truncation")
	}
	// put, put, branch, rename (delete+create), delete = 6 entries.
	if len(entries) != 6 || next != 6 {
		t.Fatalf("journal has %d entries (next=%d), want 6", len(entries), next)
	}
	if entries[0].New != v1.UID || !entries[0].Old.IsZero() {
		t.Fatalf("entry 0 = %+v, want creation of %s", entries[0], v1.UID.Short())
	}
	if entries[1].Old != v1.UID || entries[1].New != v2.UID {
		t.Fatalf("entry 1 = %+v, want %s -> %s", entries[1], v1.UID.Short(), v2.UID.Short())
	}
	if entries[2].Branch != "dev" || entries[2].New != v2.UID {
		t.Fatalf("entry 2 = %+v, want dev created at %s", entries[2], v2.UID.Short())
	}
	if !entries[3].IsDelete() || entries[3].Branch != "dev" {
		t.Fatalf("entry 3 = %+v, want delete of dev", entries[3])
	}
	if entries[4].Branch != "dev2" || entries[4].New != v2.UID {
		t.Fatalf("entry 4 = %+v, want dev2 created at %s", entries[4], v2.UID.Short())
	}
	if !entries[5].IsDelete() || entries[5].Branch != "dev2" {
		t.Fatalf("entry 5 = %+v, want delete of dev2", entries[5])
	}
}

func TestFeedTableRewrapKeepsSequence(t *testing.T) {
	bt := NewMemBranchTable()
	feed := NewFeed(16)
	wrapped := WithFeed(bt, feed)
	if again := WithFeed(wrapped, NewFeed(16)); again != wrapped {
		t.Fatal("re-wrapping a FeedTable must return it unchanged")
	}
	db := Open(Options{Branches: wrapped})
	if db.Feed() != feed {
		t.Fatal("engine must adopt the caller's feed")
	}
	if _, err := db.Put("k", "", value.String("x"), nil); err != nil {
		t.Fatal(err)
	}
	if feed.Seq() != 1 {
		t.Fatalf("shared feed seq = %d, want 1", feed.Seq())
	}
}

func TestGCKeepsPinnedHeads(t *testing.T) {
	db := Open(Options{})
	// Build a version on a branch, then delete the branch so the version
	// becomes garbage — but pin its head first, as a replica mid-sync would.
	v, err := db.Put("k", "doomed", value.String("payload"), nil)
	if err != nil {
		t.Fatal(err)
	}
	db.Feed().Pin(v.UID, time.Minute)
	if err := db.DeleteBranch("k", "doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GC(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GetVersion("k", v.UID); err != nil {
		t.Fatalf("pinned head was collected: %v", err)
	}
	// Released pin: the next pass collects it.
	db.Feed().Unpin(v.UID)
	if _, err := db.GC(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GetVersion("k", v.UID); err == nil {
		t.Fatal("unpinned garbage head survived GC")
	}
}

// TestFeedReplayMatchesTable is the convergence invariant replication rests
// on: after arbitrary concurrent head movements, applying the *last* feed
// entry per branch must reproduce the table's final heads exactly.  This is
// what FeedTable's mutation+journal critical section buys — without it, two
// CAS wins could journal in the opposite order and park replicas on the
// older head forever.
func TestFeedReplayMatchesTable(t *testing.T) {
	feed := NewFeed(100000)
	table := WithFeed(NewMemBranchTable(), feed)
	var wg sync.WaitGroup
	// CAS writers hammering one branch per goroutine plus a shared branch.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := fmt.Sprintf("own-%d", w)
			var ownHead, sharedHead hash.Hash
			for i := 0; i < 100; i++ {
				next := h(byte(w*101 + i + 1))
				if ok, _ := table.CompareAndSet("k", own, ownHead, next); ok {
					ownHead = next
				}
				// Shared branch: read-modify-write with retries.
				cur, _, _ := table.Head("k", "shared")
				if ok, _ := table.CompareAndSet("k", "shared", cur, next); ok {
					sharedHead = next
				}
				_ = sharedHead
			}
		}(w)
	}
	// Rename churn against the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			tmp := fmt.Sprintf("own-0-moved-%d", i)
			if err := table.Rename("k", "own-0", tmp); err == nil {
				_ = table.Rename("k", tmp, "own-0")
			}
		}
	}()
	wg.Wait()

	// Replay: last entry per branch wins (what a replica's tail applies).
	entries, _, truncated := feed.Since(0, 0)
	if truncated {
		t.Fatal("feed window too small for the test")
	}
	replayed := make(map[string]hash.Hash)
	for _, e := range entries {
		if e.Key != "k" {
			t.Fatalf("unexpected key %q", e.Key)
		}
		if e.IsDelete() {
			delete(replayed, e.Branch)
		} else {
			replayed[e.Branch] = e.New
		}
	}
	final, err := table.Branches("k")
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(final) {
		t.Fatalf("replay has %d branches, table has %d", len(replayed), len(final))
	}
	for br, uid := range final {
		if replayed[br] != uid {
			t.Fatalf("branch %s: table %s, replay %s", br, uid.Short(), replayed[br].Short())
		}
	}
}

func TestFeedConcurrentAppendSince(t *testing.T) {
	f := NewFeed(128)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Append(fmt.Sprintf("k%d", w), "master", hash.Hash{}, h(byte(i)))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		cursor := uint64(0)
		for {
			entries, _, truncated := f.Since(cursor, 16)
			if truncated {
				// Real consumers re-snapshot and resume from the tip.
				cursor = f.Seq()
			}
			for _, e := range entries {
				if e.Seq <= cursor {
					t.Errorf("non-monotonic entry %d after cursor %d", e.Seq, cursor)
					return
				}
				cursor = e.Seq
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			f.PinnedHeads()
			f.Pin(h(byte(i)), time.Millisecond)
			f.Unpin(h(byte(i)))
		}
	}()
	// Let the writers finish, then release the reader.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-done

	if got := f.Seq(); got != 800 {
		t.Fatalf("total appended = %d, want 800", got)
	}
}
