package core

import (
	"fmt"

	"forkbase/internal/pos"
	"forkbase/internal/value"
)

// EditMap writes a new version of a map-valued object by applying puts and
// deletes to the current branch head *incrementally*: only the affected
// POS-Tree region is re-chunked, so the cost is O(changes · log N) rather
// than O(N), and all untouched pages are shared with the previous version.
func (db *DB) EditMap(key, branch string, puts []pos.Entry, deletes [][]byte, meta map[string]string) (Version, error) {
	if err := db.writeGuard(); err != nil {
		return Version{}, err
	}
	if branch == "" {
		branch = DefaultBranch
	}
	db.writeMu.RLock()
	defer db.writeMu.RUnlock()
	cur, err := db.Get(key, branch)
	if err != nil {
		return Version{}, err
	}
	var tree *pos.Tree
	switch cur.Value.Kind() {
	case value.KindMap:
		tree, err = cur.Value.MapTree(db.st, db.cfg)
	case value.KindSet:
		tree, err = cur.Value.SetTree(db.st, db.cfg)
	default:
		return Version{}, fmt.Errorf("core: EditMap on %s value", cur.Value.Kind())
	}
	if err != nil {
		return Version{}, err
	}
	ops := make([]pos.Op, 0, len(puts)+len(deletes))
	for _, e := range puts {
		ops = append(ops, pos.Put(e.Key, e.Val))
	}
	for _, k := range deletes {
		ops = append(ops, pos.Del(k))
	}
	edited, err := tree.Edit(ops)
	if err != nil {
		return Version{}, err
	}
	var v value.Value
	if cur.Value.Kind() == value.KindSet {
		v = value.FromSetTree(edited)
	} else {
		v = value.FromMapTree(edited)
	}
	return db.put(key, branch, v, meta)
}

// AppendList writes a new version of a list-valued object with items
// appended, reusing the existing sequence chunks.
func (db *DB) AppendList(key, branch string, items [][]byte, meta map[string]string) (Version, error) {
	if err := db.writeGuard(); err != nil {
		return Version{}, err
	}
	if branch == "" {
		branch = DefaultBranch
	}
	db.writeMu.RLock()
	defer db.writeMu.RUnlock()
	cur, err := db.Get(key, branch)
	if err != nil {
		return Version{}, err
	}
	seq, err := cur.Value.Seq(db.st, db.cfg)
	if err != nil {
		return Version{}, err
	}
	appended, err := seq.Append(items...)
	if err != nil {
		return Version{}, err
	}
	return db.put(key, branch, value.FromSeq(appended), meta)
}

// SpliceBlob writes a new version of a blob-valued object with bytes
// [at, at+del) replaced by ins, re-chunking only the affected region.
func (db *DB) SpliceBlob(key, branch string, at, del uint64, ins []byte, meta map[string]string) (Version, error) {
	if err := db.writeGuard(); err != nil {
		return Version{}, err
	}
	if branch == "" {
		branch = DefaultBranch
	}
	db.writeMu.RLock()
	defer db.writeMu.RUnlock()
	cur, err := db.Get(key, branch)
	if err != nil {
		return Version{}, err
	}
	blob, err := cur.Value.Blob(db.st, db.cfg)
	if err != nil {
		return Version{}, err
	}
	spliced, err := blob.Splice(at, del, ins)
	if err != nil {
		return Version{}, err
	}
	return db.put(key, branch, value.FromBlob(spliced), meta)
}
