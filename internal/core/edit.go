package core

import (
	"fmt"

	"forkbase/internal/index"
	"forkbase/internal/value"
)

// EditMap writes a new version of a map- or set-valued object by applying
// puts and deletes to the current branch head *incrementally*: only the
// affected index region is rewritten, so the cost is O(changes · log N)
// rather than O(N), and all untouched nodes are shared with the previous
// version.  The edit goes through the index registry, so a branch keeps
// whatever structure (POS-Tree, MPT, ...) its head was written with.
func (db *DB) EditMap(key, branch string, puts []index.Entry, deletes [][]byte, meta map[string]string) (Version, error) {
	if err := db.writeGuard(); err != nil {
		return Version{}, err
	}
	if branch == "" {
		branch = DefaultBranch
	}
	db.writeMu.RLock()
	defer db.writeMu.RUnlock()
	cur, err := db.Get(key, branch)
	if err != nil {
		return Version{}, err
	}
	switch cur.Value.Kind() {
	case value.KindMap, value.KindSet:
	default:
		return Version{}, fmt.Errorf("core: EditMap on %s value", cur.Value.Kind())
	}
	ix, err := cur.Value.Index(db.st, db.cfg, cur.Index)
	if err != nil {
		return Version{}, err
	}
	ops := make([]index.Op, 0, len(puts)+len(deletes))
	for _, e := range puts {
		ops = append(ops, index.Put(e.Key, e.Val))
	}
	for _, k := range deletes {
		ops = append(ops, index.Del(k))
	}
	edited, err := ix.Apply(ops)
	if err != nil {
		return Version{}, err
	}
	return db.put(key, branch, value.FromIndex(cur.Value.Kind(), edited), meta)
}

// AppendList writes a new version of a list-valued object with items
// appended, reusing the existing sequence chunks.
func (db *DB) AppendList(key, branch string, items [][]byte, meta map[string]string) (Version, error) {
	if err := db.writeGuard(); err != nil {
		return Version{}, err
	}
	if branch == "" {
		branch = DefaultBranch
	}
	db.writeMu.RLock()
	defer db.writeMu.RUnlock()
	cur, err := db.Get(key, branch)
	if err != nil {
		return Version{}, err
	}
	seq, err := cur.Value.Seq(db.st, db.cfg)
	if err != nil {
		return Version{}, err
	}
	appended, err := seq.Append(items...)
	if err != nil {
		return Version{}, err
	}
	return db.put(key, branch, value.FromSeq(appended), meta)
}

// SpliceBlob writes a new version of a blob-valued object with bytes
// [at, at+del) replaced by ins, re-chunking only the affected region.
func (db *DB) SpliceBlob(key, branch string, at, del uint64, ins []byte, meta map[string]string) (Version, error) {
	if err := db.writeGuard(); err != nil {
		return Version{}, err
	}
	if branch == "" {
		branch = DefaultBranch
	}
	db.writeMu.RLock()
	defer db.writeMu.RUnlock()
	cur, err := db.Get(key, branch)
	if err != nil {
		return Version{}, err
	}
	blob, err := cur.Value.Blob(db.st, db.cfg)
	if err != nil {
		return Version{}, err
	}
	spliced, err := blob.Splice(at, del, ins)
	if err != nil {
		return Version{}, err
	}
	return db.put(key, branch, value.FromBlob(spliced), meta)
}
