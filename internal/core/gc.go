package core

import (
	"errors"
	"fmt"
	"time"

	"forkbase/internal/chunk"
	"forkbase/internal/fnode"
	"forkbase/internal/hash"
	"forkbase/internal/index"
	"forkbase/internal/store"
)

// GCStats reports a collection run.
type GCStats struct {
	// Live is the number of chunks reachable from any branch head.
	Live int
	// Swept is the number of unreachable chunks deleted.
	Swept int
	// SweptBytes is the encoded size of the chunks deleted.
	SweptBytes int64
	// ReclaimedBytes is the physical storage returned: equal to SweptBytes
	// for memory stores, and the on-disk footprint of compacted-away log
	// segments (net of rewritten live records) for file stores.
	ReclaimedBytes int64
	// CompactedSegments counts log segments the sweep rewrote and unlinked
	// (file stores only).
	CompactedSegments int
	// Relocated counts live chunks compaction physically moved.
	Relocated int
}

// Collectable is the legacy per-chunk collection capability, kept so
// third-party stores that enumerate and delete chunks individually remain
// collectable.  Both built-in stores now implement the preferred bulk
// capability, store.Collector — MemStore sweeps under one lock round, and
// FileStore compacts its log segments (rewriting live records, unlinking
// garbage-heavy segments) — so ErrNotCollectable is only reachable for
// injected stores that implement neither interface.
type Collectable interface {
	IDs() []hash.Hash
	Delete(id hash.Hash)
	Get(id hash.Hash) (*chunk.Chunk, error)
}

// ErrNotCollectable is returned when the backing store supports neither
// store.Collector nor the legacy Collectable surface, so unreachable chunks
// cannot be enumerated and deleted.
var ErrNotCollectable = fmt.Errorf("core: store does not support garbage collection")

// GC removes every chunk not reachable from any branch head of any key and
// reclaims the underlying storage — on file-backed stores this compacts the
// log, so the on-disk footprint shrinks to the live set.
//
// Immutability makes this safe and simple: the reachable set is the closure
// of {branch heads} over FNode bases and POS-Tree child pointers.  Note that
// ForkBase semantics keep *all history reachable from a head* alive —
// history is only collected when the branches referencing it are deleted.
//
// Readers concurrent with GC that hold roots of *collected* objects may
// observe ErrNotFound mid-traversal (as before this cache existed); they can
// never permanently resurrect swept data through the decoded-node cache —
// the cache purge below follows the store sweep, and the read path
// revalidates cache inserts against the store (nodeSource.load).
func (db *DB) GC() (GCStats, error) { return db.gc(0) }

// Compact is the online variant of GC: the same mark and sweep, but segment
// rewriting is gated by the configured compaction ratio (CompactRatio), so
// lightly-fragmented segments are left alone.  The background compactor
// (Options.CompactEvery) runs exactly this.
func (db *DB) Compact() (GCStats, error) { return db.gc(db.compactRatio) }

// gc wraps gcInner with run accounting: completed passes, durations, and
// swept/reclaimed totals land in the metrics registry.
func (db *DB) gc(minDeadRatio float64) (GCStats, error) {
	start := time.Now()
	gs, err := db.gcInner(minDeadRatio)
	db.met.gcDone(start, gs, err)
	return gs, err
}

func (db *DB) gcInner(minDeadRatio float64) (GCStats, error) {
	if err := db.writeGuard(); err != nil {
		return GCStats{}, err
	}
	col, ok := findCollector(db.raw)
	if !ok {
		return GCStats{}, ErrNotCollectable
	}
	// Writers must be fenced so a version mid-commit (chunks stored, head
	// not yet advanced) can never be collected; readers proceed throughout.
	// An online pass (ratio > 0) on a store with generational grace can
	// mark *without* the fence — anything staged while the mark runs is
	// younger than the previous sweep and therefore exempt — and exclude
	// writers only for the sweep itself.  A full pass (explicit GC, or a
	// store without grace) fences mark and sweep both.  Chunks staged
	// outside the engine's fenced operations (a value built now, Put much
	// later) are likewise protected only by grace: commit staged values
	// promptly (or use the BuildAnd* helpers), and run full GC at quiesced
	// moments.
	_, hasGrace := col.(store.GenerationalCollector)
	fenceMark := !(minDeadRatio > 0 && hasGrace)
	if fenceMark {
		db.writeMu.Lock()
		defer db.writeMu.Unlock()
	}
	live, err := db.mark()
	if err != nil {
		return GCStats{}, err
	}
	if !fenceMark {
		db.writeMu.Lock()
		defer db.writeMu.Unlock()
	}
	res, err := col.Sweep(func(id hash.Hash) bool { return live[id] }, minDeadRatio)
	if err != nil {
		return GCStats{}, err
	}
	// Purge swept ids from whichever decoded-node cache the read path uses:
	// db.ncache when core created it, or one the caller attached to the
	// injected store.  Either way it is discoverable on db.st (nil-safe).
	// Relocated chunks are purged too: their content is unchanged, but a
	// cached decode may alias storage the compaction retired.
	ncache := store.NodeCacheOf(db.st)
	verifier := store.VerifierOf(db.st)
	for _, id := range res.SweptIDs {
		ncache.Remove(id)
	}
	for _, id := range res.MovedIDs {
		ncache.Remove(id)
	}
	if verifier != nil {
		// Swept ids no longer resolve, and moved ids live in relocated
		// records; neither may keep skipping the rehash on a stale entry.
		// (FileStore's placement epoch also retires the moved set — this is
		// the explicit half of the belt-and-braces pair.)
		verifier.Invalidate(res.SweptIDs...)
		verifier.Invalidate(res.MovedIDs...)
	}
	return GCStats{
		Live:              len(live),
		Swept:             res.Swept,
		SweptBytes:        res.SweptBytes,
		ReclaimedBytes:    res.ReclaimedBytes,
		CompactedSegments: res.CompactedSegments,
		Relocated:         len(res.MovedIDs),
	}, nil
}

// mark computes the live set: the closure of every branch head over FNode
// bases and POS-Tree child pointers.
func (db *DB) mark() (map[hash.Hash]bool, error) {
	live := make(map[hash.Hash]bool)
	keys, err := db.heads.Keys()
	if err != nil {
		return nil, err
	}
	for _, key := range keys {
		branches, err := db.heads.Branches(key)
		if err != nil {
			return nil, err
		}
		for _, head := range branches {
			if err := db.markFrom(head, live); err != nil {
				return nil, err
			}
		}
	}
	// Feed pins: heads replicas are actively pulling stay fully reachable,
	// so a concurrent collection can never break an in-flight sync — the
	// replication analogue of the segment-generation sweep grace.  Pinned
	// roots may legitimately be gone already (a replica pinned a head it
	// learned just before the branch was deleted and an earlier pass
	// collected it between lease refreshes), so this walk tolerates missing
	// chunks instead of failing the pass.
	if db.feed != nil {
		for _, head := range db.feed.PinnedHeads() {
			if err := db.markFromTolerant(head, live); err != nil {
				return nil, err
			}
		}
	}
	return live, nil
}

// findCollector unwraps the store stack until it finds the bulk sweep
// capability, falling back to an adapter over the legacy per-chunk surface.
func findCollector(st store.Store) (store.Collector, bool) {
	for {
		if c, ok := st.(store.Collector); ok {
			return c, true
		}
		switch s := st.(type) {
		case *store.CountingStore:
			st = s.Inner
		case *store.VerifyingStore:
			st = s.Inner
		case *store.MaliciousStore:
			st = s.Inner
		case interface{ Unwrap() store.Store }:
			st = s.Unwrap()
		default:
			if l, ok := st.(Collectable); ok {
				return legacyCollector{l}, true
			}
			return nil, false
		}
	}
}

// legacyCollector adapts the per-chunk Collectable surface to the bulk
// Sweep contract (no compaction; reclaimed = swept).
type legacyCollector struct{ col Collectable }

func (lc legacyCollector) Sweep(keep func(hash.Hash) bool, _ float64) (store.SweepStats, error) {
	var res store.SweepStats
	for _, id := range lc.col.IDs() {
		if keep(id) {
			continue
		}
		if c, err := lc.col.Get(id); err == nil {
			res.SweptBytes += int64(c.Size())
		}
		lc.col.Delete(id)
		res.Swept++
		res.SweptIDs = append(res.SweptIDs, id)
	}
	res.ReclaimedBytes = res.SweptBytes
	return res, nil
}

// markFrom adds every chunk reachable from a version uid to live: the FNode
// chain (all bases, transitively) and each version's value tree.
func (db *DB) markFrom(uid hash.Hash, live map[hash.Hash]bool) error {
	return db.markFromOpt(uid, live, false)
}

// markFromTolerant is markFrom for advisory roots (feed pins): a missing
// chunk prunes the walk instead of failing it.
func (db *DB) markFromTolerant(uid hash.Hash, live map[hash.Hash]bool) error {
	return db.markFromOpt(uid, live, true)
}

func (db *DB) markFromOpt(uid hash.Hash, live map[hash.Hash]bool, tolerant bool) error {
	queue := []hash.Hash{uid}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.IsZero() || live[cur] {
			continue
		}
		f, err := fnode.Load(db.st, cur)
		if err != nil {
			if tolerant && errors.Is(err, store.ErrNotFound) {
				continue
			}
			return fmt.Errorf("core: gc mark %s: %w", cur.Short(), err)
		}
		live[cur] = true
		queue = append(queue, f.Bases...)
		v, err := f.DecodedValue()
		if err != nil {
			return err
		}
		if v.Kind().Composite() && !v.Root().IsZero() {
			if err := db.markValue(v.Root(), live, tolerant); err != nil {
				return err
			}
		}
	}
	return nil
}

func (db *DB) markValue(root hash.Hash, live map[hash.Hash]bool, tolerant bool) error {
	if live[root] {
		return nil
	}
	c, err := db.st.Get(root)
	if err != nil {
		if tolerant && errors.Is(err, store.ErrNotFound) {
			return nil
		}
		return fmt.Errorf("core: gc mark value %s: %w", root.Short(), err)
	}
	live[root] = true
	// Dispatch through the index layer's node-type registry: the walk
	// follows child pointers of whatever structure the value uses without
	// naming one.
	children, err := index.Children(c)
	if err != nil {
		return err
	}
	for _, child := range children {
		if err := db.markValue(child, live, tolerant); err != nil {
			return err
		}
	}
	return nil
}
