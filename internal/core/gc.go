package core

import (
	"fmt"

	"forkbase/internal/chunk"
	"forkbase/internal/fnode"
	"forkbase/internal/hash"
	"forkbase/internal/pos"
	"forkbase/internal/store"
)

// GCStats reports a collection run.
type GCStats struct {
	// Live is the number of chunks reachable from any branch head.
	Live int
	// Swept is the number of unreachable chunks deleted.
	Swept int
	// SweptBytes is the physical space reclaimed.
	SweptBytes int64
}

// Collectable is the optional store capability GC needs: enumeration and
// deletion of chunks.  MemStore implements it; append-only FileStore does
// not (compaction there means rewriting segments, deliberately out of
// scope), so GC on a file-backed DB returns ErrNotCollectable.
type Collectable interface {
	IDs() []hash.Hash
	Delete(id hash.Hash)
	Get(id hash.Hash) (*chunk.Chunk, error)
}

// ErrNotCollectable is returned when the backing store cannot enumerate and
// delete chunks.
var ErrNotCollectable = fmt.Errorf("core: store does not support garbage collection")

// GC removes every chunk not reachable from any branch head of any key.
//
// Immutability makes this safe and simple: the reachable set is the closure
// of {branch heads} over FNode bases and POS-Tree child pointers.  Note that
// ForkBase semantics keep *all history reachable from a head* alive —
// history is only collected when the branches referencing it are deleted.
//
// Readers concurrent with GC that hold roots of *collected* objects may
// observe ErrNotFound mid-traversal (as before this cache existed); they can
// never permanently resurrect swept data through the decoded-node cache —
// the cache purge below runs after each store delete, and the read path
// revalidates cache inserts against the store (nodeSource.load).
func (db *DB) GC() (GCStats, error) {
	col, ok := collectable(db.raw)
	if !ok {
		return GCStats{}, ErrNotCollectable
	}
	live := make(map[hash.Hash]bool)
	keys, err := db.heads.Keys()
	if err != nil {
		return GCStats{}, err
	}
	for _, key := range keys {
		branches, err := db.heads.Branches(key)
		if err != nil {
			return GCStats{}, err
		}
		for _, head := range branches {
			if err := db.markFrom(head, live); err != nil {
				return GCStats{}, err
			}
		}
	}
	var stats GCStats
	stats.Live = len(live)
	// Purge swept ids from whichever decoded-node cache the read path uses:
	// db.ncache when core created it, or one the caller attached to the
	// injected store.  Either way it is discoverable on db.st (nil-safe).
	ncache := store.NodeCacheOf(db.st)
	for _, id := range col.IDs() {
		if live[id] {
			continue
		}
		if c, err := col.Get(id); err == nil {
			stats.SweptBytes += int64(c.Size())
		}
		col.Delete(id)
		ncache.Remove(id)
		stats.Swept++
	}
	return stats, nil
}

func collectable(st store.Store) (Collectable, bool) {
	switch s := st.(type) {
	case Collectable:
		return s, true
	case *store.CountingStore:
		return collectable(s.Inner)
	case *store.VerifyingStore:
		return collectable(s.Inner)
	case *store.MaliciousStore:
		return collectable(s.Inner)
	case interface{ Unwrap() store.Store }:
		return collectable(s.Unwrap())
	default:
		return nil, false
	}
}

// markFrom adds every chunk reachable from a version uid to live: the FNode
// chain (all bases, transitively) and each version's value tree.
func (db *DB) markFrom(uid hash.Hash, live map[hash.Hash]bool) error {
	queue := []hash.Hash{uid}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.IsZero() || live[cur] {
			continue
		}
		f, err := fnode.Load(db.st, cur)
		if err != nil {
			return fmt.Errorf("core: gc mark %s: %w", cur.Short(), err)
		}
		live[cur] = true
		queue = append(queue, f.Bases...)
		v, err := f.DecodedValue()
		if err != nil {
			return err
		}
		if v.Kind().Composite() && !v.Root().IsZero() {
			if err := db.markValue(v.Root(), live); err != nil {
				return err
			}
		}
	}
	return nil
}

func (db *DB) markValue(root hash.Hash, live map[hash.Hash]bool) error {
	if live[root] {
		return nil
	}
	c, err := db.st.Get(root)
	if err != nil {
		return fmt.Errorf("core: gc mark value %s: %w", root.Short(), err)
	}
	live[root] = true
	children, err := pos.IndexChildren(c)
	if err != nil {
		return err
	}
	for _, child := range children {
		if err := db.markValue(child, live); err != nil {
			return err
		}
	}
	return nil
}
