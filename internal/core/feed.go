package core

import (
	"sync"
	"time"

	"forkbase/internal/hash"
)

// FeedEntry is one sequenced head movement of the primary's change feed.
// Replication consumes these: each entry names the branch that moved and the
// uid it moved to, and the uid — being a Merkle root — is everything a
// replica needs to pull exactly the chunks it is missing.
type FeedEntry struct {
	// Seq is the entry's position in the feed: strictly monotonic, starting
	// at 1, assigned under the same critical section that records the entry,
	// so feed order is a total order over head movements.
	Seq uint64
	// Key and Branch name the head that moved.
	Key    string
	Branch string
	// Old is the head before the movement (zero for branch creation).  It is
	// advisory — replicas converge on New alone.
	Old hash.Hash
	// New is the head after the movement; zero means the branch was deleted.
	New hash.Hash
}

// IsDelete reports whether the entry records a branch deletion.
func (e FeedEntry) IsDelete() bool { return e.New.IsZero() }

// DefaultFeedCapacity is the number of head movements the feed retains —
// the replay window for replica cursors (a cursor older than the window
// forces a snapshot catch-up).
const DefaultFeedCapacity = 4096

// DefaultPinLease is how long a replica's pin on a head survives without
// being refreshed.  Pins protect in-flight syncs from the collector; the
// lease bounds the damage of a replica that vanished mid-sync — its pins
// expire instead of holding garbage live forever.
const DefaultPinLease = time.Minute

// Feed is the primary-side change feed: a bounded, sequence-numbered ring of
// head movements with blocking tail reads.  It is safe for concurrent use.
type Feed struct {
	epoch   uint64 // identifies this feed incarnation; see Epoch
	mu      sync.Mutex
	entries []FeedEntry // ring contents, entries[0].Seq == start
	start   uint64      // seq of the oldest retained entry (0 when empty)
	next    uint64      // seq the next Append will assign
	cap     int
	wake    chan struct{}      // closed and replaced on every Append
	pins    map[hash.Hash]*pin // heads replicas are actively pulling
}

// FeedCursor is a replica's resumable position: a sequence number *within a
// specific feed incarnation*.  Sequences restart from 1 when a primary
// restarts, so a bare seq from a previous life could silently alias into
// the new feed; the epoch disambiguates, and an epoch mismatch is treated
// exactly like ring truncation — snapshot and resume.
type FeedCursor struct {
	Epoch uint64
	Seq   uint64
}

// pin is a refcounted, leased GC root.  A replica pins each head before
// pulling its chunks and unpins after the local head advances; the deadline
// covers replicas that die mid-sync.
type pin struct {
	count    int
	deadline time.Time
}

// NewFeed returns an empty feed retaining up to capacity entries
// (0 selects DefaultFeedCapacity).
func NewFeed(capacity int) *Feed {
	if capacity <= 0 {
		capacity = DefaultFeedCapacity
	}
	return &Feed{
		epoch: uint64(time.Now().UnixNano()),
		next:  1,
		cap:   capacity,
		wake:  make(chan struct{}),
		pins:  make(map[hash.Hash]*pin),
	}
}

// Epoch identifies this feed incarnation (stable for the feed's lifetime,
// different across restarts with overwhelming probability).
func (f *Feed) Epoch() uint64 { return f.epoch }

// Append records a head movement and returns its sequence number.
func (f *Feed) Append(key, branch string, old, new hash.Hash) uint64 {
	f.mu.Lock()
	seq := f.next
	f.next++
	if len(f.entries) == 0 {
		f.start = seq
	}
	f.entries = append(f.entries, FeedEntry{Seq: seq, Key: key, Branch: branch, Old: old, New: new})
	if len(f.entries) > f.cap {
		drop := len(f.entries) - f.cap
		f.entries = append(f.entries[:0], f.entries[drop:]...)
		f.start += uint64(drop)
	}
	wake := f.wake
	f.wake = make(chan struct{})
	f.mu.Unlock()
	close(wake) // release blocked tail readers
	return seq
}

// Seq returns the sequence number of the newest entry (0 when nothing has
// ever been appended).
func (f *Feed) Seq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next - 1
}

// Since returns up to limit entries with Seq > cursor (limit <= 0 means all
// retained), plus the cursor the caller should resume from.  truncated
// reports that entries between cursor and the returned batch have been
// evicted from the ring: the caller's incremental view has a hole and it
// must fall back to a snapshot catch-up.
func (f *Feed) Since(cursor uint64, limit int) (entries []FeedEntry, next uint64, truncated bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	next = cursor
	if len(f.entries) == 0 {
		// An empty ring truncates any cursor from before the retained window
		// (e.g. a primary restart reset the feed).
		return nil, cursor, cursor > f.next-1
	}
	if cursor+1 < f.start {
		return nil, cursor, true
	}
	first := int(cursor + 1 - f.start) // index of the first wanted entry
	if first >= len(f.entries) {
		return nil, cursor, cursor > f.next-1
	}
	batch := f.entries[first:]
	if limit > 0 && len(batch) > limit {
		batch = batch[:limit]
	}
	entries = append([]FeedEntry(nil), batch...)
	return entries, entries[len(entries)-1].Seq, false
}

// Wait blocks until the feed's newest sequence exceeds cursor or the timeout
// elapses, and reports whether new entries are available.  A zero or
// negative timeout polls without blocking.
func (f *Feed) Wait(cursor uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		f.mu.Lock()
		newest := f.next - 1
		wake := f.wake
		f.mu.Unlock()
		if newest > cursor {
			return true
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return false
		}
		t := time.NewTimer(remain)
		select {
		case <-wake:
			t.Stop()
		case <-t.C:
			return false
		}
	}
}

// Pin registers root as a temporary GC root for at most lease (0 selects
// DefaultPinLease).  Pins are refcounted: each Pin needs a matching Unpin,
// and a fresh Pin extends the deadline of an existing one.  The garbage
// collector keeps every pinned head's chunk graph alive, so a replica
// pulling a head it learned from the feed can never have the ground
// collected from under an in-flight sync.
func (f *Feed) Pin(root hash.Hash, lease time.Duration) {
	if root.IsZero() {
		return
	}
	if lease <= 0 {
		lease = DefaultPinLease
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.pins[root]
	if p == nil {
		p = &pin{}
		f.pins[root] = p
	}
	p.count++
	if d := time.Now().Add(lease); d.After(p.deadline) {
		p.deadline = d
	}
}

// Unpin releases one Pin of root; the last release (or an expired lease)
// makes the head collectable again.
func (f *Feed) Unpin(root hash.Hash) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.pins[root]
	if p == nil {
		return
	}
	p.count--
	if p.count <= 0 {
		delete(f.pins, root)
	}
}

// PinnedHeads returns the heads currently pinned by replicas (expired
// leases are dropped).  The garbage collector treats these as additional,
// advisory roots.
func (f *Feed) PinnedHeads() []hash.Hash {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := time.Now()
	out := make([]hash.Hash, 0, len(f.pins))
	for root, p := range f.pins {
		if now.After(p.deadline) {
			delete(f.pins, root)
			continue
		}
		out = append(out, root)
	}
	return out
}

// FeedTable wraps a BranchTable and journals every successful head movement
// into a Feed.  The wrap happens once, at the point writes enter the system:
// core.Open wraps its branch table automatically, and a network primary
// (cmd/forkbased) wraps before handing the table to both the TCP server and
// the REST engine, so local commits and remote CAS calls share one sequence.
//
// Every mutation holds mu across the table operation AND its journal
// append.  This is load-bearing: replicas converge by applying the *last*
// feed entry per branch, so feed order must equal mutation order — two
// concurrent CAS wins appended in the opposite order would permanently
// park replicas on the older head.  The same lock makes Rename's
// read-head→rename→journal sequence atomic.  Branch-table mutations are
// tiny metadata operations (the file-backed table already serializes on a
// persist lock), so the serialization is not a throughput concern.
type FeedTable struct {
	inner BranchTable
	feed  *Feed
	mu    sync.Mutex
}

var _ BranchTable = (*FeedTable)(nil)

// WithFeed wraps table so head movements are journaled into feed.  A table
// that is already feed-wrapped is returned unchanged (its existing feed
// keeps the sequence; double-journaling would fork it).
func WithFeed(table BranchTable, feed *Feed) *FeedTable {
	if ft, ok := table.(*FeedTable); ok {
		return ft
	}
	return &FeedTable{inner: table, feed: feed}
}

// Feed returns the journal.
func (t *FeedTable) Feed() *Feed { return t.feed }

// Unwrap returns the wrapped table.
func (t *FeedTable) Unwrap() BranchTable { return t.inner }

// Head implements BranchTable.
func (t *FeedTable) Head(key, branch string) (hash.Hash, bool, error) {
	return t.inner.Head(key, branch)
}

// CompareAndSet implements BranchTable; a successful swap is journaled,
// atomically with the swap (see the type comment).
func (t *FeedTable) CompareAndSet(key, branch string, old, new hash.Hash) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ok, err := t.inner.CompareAndSet(key, branch, old, new)
	if ok && err == nil {
		t.feed.Append(key, branch, old, new)
	}
	return ok, err
}

// Delete implements BranchTable; a successful delete is journaled with a
// zero New, atomically with the delete.
func (t *FeedTable) Delete(key, branch string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, _, _ := t.inner.Head(key, branch)
	if err := t.inner.Delete(key, branch); err != nil {
		return err
	}
	t.feed.Append(key, branch, old, hash.Hash{})
	return nil
}

// Rename implements BranchTable; a successful rename journals as a deletion
// of the old name followed by a creation of the new one, so replicas that
// know nothing of renames still converge.  The head read, the rename, and
// both journal entries share one critical section: journaling a stale uid
// as the new branch's creation would park replicas on it permanently.
func (t *FeedTable) Rename(key, from, to string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	uid, _, _ := t.inner.Head(key, from)
	if err := t.inner.Rename(key, from, to); err != nil {
		return err
	}
	t.feed.Append(key, from, uid, hash.Hash{})
	t.feed.Append(key, to, hash.Hash{}, uid)
	return nil
}

// Branches implements BranchTable.
func (t *FeedTable) Branches(key string) (map[string]hash.Hash, error) {
	return t.inner.Branches(key)
}

// Keys implements BranchTable.
func (t *FeedTable) Keys() ([]string, error) { return t.inner.Keys() }
