package core

import (
	"errors"
	"fmt"
	"time"

	"forkbase/internal/chunk"
	"forkbase/internal/fnode"
	"forkbase/internal/hash"
	"forkbase/internal/index"
	"forkbase/internal/store"
)

// ChunkSource is the repair-source capability Heal pulls from: batched chunk
// retrieval by id, with nil slots for ids the source does not have.  It is
// the read half of repl.Source, declared structurally here (repl imports
// core, so core cannot name repl's type) — a repl.LocalSource, RemoteSource
// or shard peer all satisfy it unmodified.
type ChunkSource interface {
	GetChunks(ids []hash.Hash) ([]*chunk.Chunk, error)
}

// healFetchBatch bounds how many damaged ids travel in one GetChunks call.
const healFetchBatch = 512

// HealStats reports one anti-entropy pass.
type HealStats struct {
	// Branches is the number of branch heads the walk started from.
	Branches int
	// Checked counts reachable chunks read (and thereby re-verified).
	Checked int
	// Missing counts chunks absent locally (lost to quarantine, or never
	// landed).
	Missing int
	// Corrupt counts chunks present but failing verification.
	Corrupt int
	// Repaired counts chunks refetched, verified and re-stored.
	Repaired int
	// BytesFetched is the encoded volume pulled from the source.
	BytesFetched int64
	// Failed lists damaged ids the source could not supply an intact copy
	// of; non-empty Failed makes Heal return an error wrapping ErrCorrupt.
	Failed []hash.Hash
}

// Heal walks the live Merkle graph from every branch head, re-verifying each
// chunk through the verifying read path, and repairs every missing-or-corrupt
// chunk from src: refetched in batches, rehashed against the requested id,
// and written back through the store's Repair capability (plain Put when the
// store lacks it).  Children of repaired chunks rejoin the walk, so damage
// deep inside a subtree hidden behind a damaged parent is still found.
//
// This is anti-entropy, not a write: it restores bytes the store already
// acknowledged, so it is permitted on read-only replicas — a follower can
// heal itself from its primary, and a primary from any caught-up follower.
// Concurrent engine writes are safe (new heads reference new chunks; the
// walk reads a consistent set from its snapshot of the branch table), but
// the pass holds the GC fence shared, so a full collection cannot sweep
// chunks out from under it.
func (db *DB) Heal(src ChunkSource) (HealStats, error) {
	start := time.Now()
	hs, err := db.healInner(src)
	db.met.healDone(start, hs, err)
	return hs, err
}

func (db *DB) healInner(src ChunkSource) (HealStats, error) {
	var hs HealStats
	if src == nil {
		return hs, errors.New("core: heal requires a source")
	}
	db.writeMu.RLock()
	defer db.writeMu.RUnlock()

	rep, _ := findRepairer(db.raw)

	keys, err := db.heads.Keys()
	if err != nil {
		return hs, err
	}
	visited := make(map[hash.Hash]bool)
	var frontier []hash.Hash
	for _, key := range keys {
		branches, err := db.heads.Branches(key)
		if err != nil {
			return hs, err
		}
		for _, head := range branches {
			hs.Branches++
			if head.IsZero() || visited[head] {
				continue
			}
			visited[head] = true
			frontier = append(frontier, head)
		}
	}

	ncache := store.NodeCacheOf(db.st)
	verifier := store.VerifierOf(db.st)
	for len(frontier) > 0 {
		var next, damaged []hash.Hash
		for _, id := range frontier {
			hs.Checked++
			// Heal's contract is to re-verify what is actually on disk, so
			// every read must pay the rehash: drop any verified-id entry
			// before the Get (the read re-adds a fresh one on success).
			if verifier != nil {
				verifier.Invalidate(id)
			}
			c, err := db.st.Get(id)
			switch {
			case err == nil:
				kids, err := chunkChildren(c)
				if err != nil {
					return hs, err
				}
				for _, k := range kids {
					if k.IsZero() || visited[k] {
						continue
					}
					visited[k] = true
					next = append(next, k)
				}
			case errors.Is(err, store.ErrNotFound):
				hs.Missing++
				damaged = append(damaged, id)
			case errors.Is(err, chunk.ErrCorrupt):
				hs.Corrupt++
				damaged = append(damaged, id)
			default:
				return hs, fmt.Errorf("core: heal read %s: %w", id.Short(), err)
			}
		}
		for off := 0; off < len(damaged); off += healFetchBatch {
			end := off + healFetchBatch
			if end > len(damaged) {
				end = len(damaged)
			}
			batch := damaged[off:end]
			got, err := src.GetChunks(batch)
			if err != nil {
				return hs, fmt.Errorf("core: heal fetch: %w", err)
			}
			for i, c := range got {
				want := batch[i]
				// The source is untrusted: rehash the bytes, and pin them to
				// the id *requested* — a self-consistent chunk under the
				// wrong id must not land either.
				if c == nil || c.Recheck() != nil || c.Verify(want) != nil {
					hs.Failed = append(hs.Failed, want)
					continue
				}
				if rep != nil {
					if err := rep.Repair(c); err != nil {
						return hs, fmt.Errorf("core: heal repair %s: %w", want.Short(), err)
					}
				} else {
					// No repair capability: Put covers the missing case; a
					// corrupt-but-resident copy that Put dedup-hits against
					// stays broken, so re-read to find out.
					if _, err := db.st.Put(c); err != nil {
						return hs, fmt.Errorf("core: heal put %s: %w", want.Short(), err)
					}
					if _, err := db.st.Get(want); err != nil {
						hs.Failed = append(hs.Failed, want)
						continue
					}
				}
				// A cached decode may alias storage of the damaged copy, and a
				// verified-id entry still describes the bytes repair replaced.
				ncache.Remove(want)
				if verifier != nil {
					verifier.Invalidate(want)
				}
				hs.Repaired++
				hs.BytesFetched += int64(c.Size())
				kids, err := chunkChildren(c)
				if err != nil {
					return hs, err
				}
				for _, k := range kids {
					if k.IsZero() || visited[k] {
						continue
					}
					visited[k] = true
					next = append(next, k)
				}
			}
		}
		frontier = next
	}
	if len(hs.Failed) > 0 {
		return hs, fmt.Errorf("core: heal left %d chunk(s) unrepaired: %w", len(hs.Failed), chunk.ErrCorrupt)
	}
	return hs, nil
}

// chunkChildren returns the chunk ids a chunk references: FNodes link their
// base versions and value root; index nodes link their child pages via the
// node-type registry; leaves link nothing.  (The repl package keeps an
// identical helper for its pull walk; both must follow every edge GC's mark
// follows, or heal/replication would strand subtrees GC keeps alive.)
func chunkChildren(c *chunk.Chunk) ([]hash.Hash, error) {
	if c.Type() == chunk.TypeFNode {
		f, err := fnode.Decode(c.Data())
		if err != nil {
			return nil, fmt.Errorf("core: decoding fnode %s: %w", c.ID().Short(), err)
		}
		out := append([]hash.Hash(nil), f.Bases...)
		v, err := f.DecodedValue()
		if err != nil {
			return nil, err
		}
		if v.Kind().Composite() && !v.Root().IsZero() {
			out = append(out, v.Root())
		}
		return out, nil
	}
	return index.Children(c)
}

// findRepairer unwraps the store stack until it finds the repair capability
// (mirrors findCollector).
func findRepairer(st store.Store) (store.Repairer, bool) {
	for {
		if r, ok := st.(store.Repairer); ok {
			return r, true
		}
		switch s := st.(type) {
		case *store.CountingStore:
			st = s.Inner
		case *store.VerifyingStore:
			st = s.Inner
		case *store.MaliciousStore:
			st = s.Inner
		case interface{ Unwrap() store.Store }:
			st = s.Unwrap()
		default:
			return nil, false
		}
	}
}
