package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"forkbase/internal/store"
	"forkbase/internal/value"
)

// TestCloseIdempotentWithCompactor: double-close and close-during-compaction
// must neither panic nor deadlock.
func TestCloseIdempotentWithCompactor(t *testing.T) {
	fs, err := store.OpenFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db := Open(Options{Store: fs, CompactEvery: time.Millisecond})
	// Generate churn so compactor passes do real work.
	for i := 0; i < 20; i++ {
		if _, err := db.Put("k", "temp", value.String(fmt.Sprintf("v%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.DeleteBranch("k", "temp"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // let the compactor be mid-flight

	// Concurrent closes race the background pass and each other.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := db.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := db.Close(); err != nil { // and once more, sequentially
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil { // FileStore.Close is idempotent too
		t.Fatal(err)
	}
}

// TestBranchLifecycleRaces hammers RenameBranch/DeleteBranch against Put on
// the same key: whatever interleaving wins, no branch head may be orphaned —
// every surviving head must resolve to a loadable version of the right key.
func TestBranchLifecycleRaces(t *testing.T) {
	for _, backend := range []string{"mem", "file"} {
		t.Run(backend, func(t *testing.T) {
			var bt BranchTable
			if backend == "file" {
				fbt, err := OpenFileBranchTable(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				bt = fbt
			} else {
				bt = NewMemBranchTable()
			}
			db := Open(Options{Branches: bt})
			if _, err := db.Put("obj", "master", value.String("seed"), nil); err != nil {
				t.Fatal(err)
			}

			const writers = 4
			const rounds = 50
			var wg sync.WaitGroup
			// Writers put to master continuously; stale-head losses are the
			// documented contract, anything else is a bug.
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < rounds; i++ {
						_, err := db.Put("obj", "master", value.String(fmt.Sprintf("w%d-%d", w, i)), nil)
						if err != nil && !isExpectedRace(err) {
							t.Errorf("put: %v", err)
							return
						}
					}
				}(w)
			}
			// One goroutine churns renames of master; one churns a
			// create/delete cycle of a side branch.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					tmp := fmt.Sprintf("moving-%d", i)
					if err := db.RenameBranch("obj", "master", tmp); err != nil {
						continue // master mid-recreate; fine
					}
					_ = db.RenameBranch("obj", tmp, "master") // move it back (may race)
				}
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					_ = db.Branch("obj", "side", "master")
					_ = db.DeleteBranch("obj", "side")
				}
			}()
			wg.Wait()

			// Invariant: every surviving branch head loads as a version of
			// "obj" — no orphaned or dangling heads.
			branches, err := db.BranchTable().Branches("obj")
			if err != nil {
				t.Fatal(err)
			}
			if len(branches) == 0 {
				t.Fatal("all branches lost")
			}
			for br, uid := range branches {
				if uid.IsZero() {
					t.Fatalf("branch %s has a zero head", br)
				}
				if _, err := db.GetVersion("obj", uid); err != nil {
					t.Fatalf("branch %s head %s is orphaned: %v", br, uid.Short(), err)
				}
			}
		})
	}
}

// isExpectedRace accepts the two documented outcomes of losing a lifecycle
// race: a stale-head CAS failure, or the branch vanishing mid-operation.
func isExpectedRace(err error) bool {
	return errors.Is(err, ErrStaleHead) || errors.Is(err, ErrBranchNotFound)
}
