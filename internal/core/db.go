package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"forkbase/internal/chunker"
	"forkbase/internal/fnode"
	"forkbase/internal/hash"
	"forkbase/internal/index"
	"forkbase/internal/nodecache"
	"forkbase/internal/obs"
	"forkbase/internal/store"
	"forkbase/internal/value"

	// Link in both first-class index structures so their factories, root
	// sniffers and Children decoders are registered: the engine dispatches
	// every structure-dependent operation through the index registry.
	_ "forkbase/internal/mpt"
	_ "forkbase/internal/pos"
)

// DefaultBranch is the branch Put targets when none is named, mirroring the
// "master" branch of the paper's demo UI.
const DefaultBranch = "master"

// DB is a ForkBase storage engine instance.
//
// A DB combines an (untrusted) chunk store with a (trusted) branch table.
// All chunk reads go through a verifying wrapper, so any tampering by the
// storage provider surfaces as chunk.ErrCorrupt.
type DB struct {
	raw     store.Store // instrumented backend, for Stats and GC discovery
	st      store.Store // verifying read path (node cache layered on top)
	met     *dbObs      // observability wiring (metrics, slow-op logs)
	ncache  *nodecache.Cache
	cfg     chunker.Config
	idxKind index.Kind // structure new composite values are indexed with
	heads   BranchTable
	feed    *Feed
	noCopy  noCopy

	compactRatio  float64
	stopCompactor chan struct{}
	compactorWG   sync.WaitGroup
	closeOnce     sync.Once
	compactPasses atomic.Int64
	readOnly      atomic.Bool

	// writeMu fences garbage collection against in-flight engine writes:
	// every operation that stores chunks and then publishes them via a head
	// CAS holds the read side across that window, and gc holds the write
	// side across mark and sweep — so a version can never be swept between
	// its chunks landing and its head advancing.  Readers are unaffected.
	writeMu sync.RWMutex
}

type noCopy struct{}

func (*noCopy) Lock()   {}
func (*noCopy) Unlock() {}

// Options configure a DB.
type Options struct {
	// Store is the chunk store; defaults to a fresh MemStore.
	Store store.Store
	// Branches is the branch table; defaults to a fresh MemBranchTable.
	Branches BranchTable
	// Chunking overrides the chunker configuration (zero = DefaultConfig).
	Chunking chunker.Config
	// Index selects the structure backing new composite (map/set) values:
	// index.KindPOS (default) or index.KindMPT.  Reading is always
	// self-describing — every load sniffs the structure from the stored
	// root chunk and every FNode records its kind — so a DB can open data
	// written under either setting.
	Index index.Kind
	// NodeCacheBytes enables a decoded-node cache with the given byte
	// budget on the read path (0 = disabled).  Because chunks are immutable
	// and content-addressed the cache needs no invalidation; GC purges the
	// ids it sweeps.  The cache is layered *above* the verifying store, so
	// only nodes that passed tamper verification are ever cached.
	NodeCacheBytes int64
	// CompactEvery, when positive, starts a background compactor: every
	// interval the DB runs a mark-and-sweep pass whose segment rewriting is
	// gated by CompactRatio, so long-running servers reclaim churned space
	// without anyone calling GC.  Stop it with Close.  A DB whose store is
	// not collectable quietly never compacts.
	CompactEvery time.Duration
	// CompactRatio is the minimum dead-byte fraction a sealed log segment
	// needs before the background compactor (or an explicit Compact call)
	// rewrites it; 0 selects DefaultCompactRatio.  Explicit GC always uses
	// ratio 0 — it reclaims everything.
	CompactRatio float64
	// FeedCapacity bounds the change feed's retained window (0 selects
	// DefaultFeedCapacity).  Ignored when Branches is already feed-wrapped.
	FeedCapacity int
	// SinkHashers, when non-zero, tunes the SHA-256 worker count of every
	// chunk sink opened over this DB's store: > 0 runs that many workers
	// per sink, < 0 pins hashing to the producer goroutine.  Attached to
	// the store handle as a discovered capability (store.WithSinkHashers),
	// so it reaches sinks opened deep inside the value layer.  The same
	// preference sizes the verifying layer's batch-recheck pool.
	SinkHashers int
	// VerifyCacheBytes budgets the verified-id set inside the verifying
	// layer: once a chunk has been rehashed on this engine, repeat reads
	// skip the hash until GC, scrub, heal, or a placement-epoch change
	// invalidates the entry.  0 selects store.DefaultVerifyCacheBytes;
	// negative disables the set (every read rehashes, the pre-amortization
	// behavior).  The set only ever engages over trusted local stacks —
	// over wire or adversarial stores the knob is inert.
	VerifyCacheBytes int64
	// Metrics selects the registry this engine reports into: engine
	// operation counts/latencies, store-level per-backend instrumentation,
	// cache and dedup gauges, GC/heal/scrub accounting.  nil selects
	// obs.Default(); obs.Discard disables instrumentation entirely (the
	// store is not even wrapped — the bare hot path stays bare).
	Metrics *obs.Registry
	// Logger receives the engine's structured log records (today:
	// threshold-gated slow-op reports).  nil selects slog.Default().
	Logger *slog.Logger
	// SlowOp, when positive, logs any engine or store operation that takes
	// at least this long, with the operation, duration and the trace ID
	// carried by the request context — the handle for following one slow
	// PutBatch across layers.  0 disables slow-op logging.
	SlowOp time.Duration
}

// DefaultCompactRatio is the background compactor's segment-rewrite
// threshold: a sealed segment is rewritten once a quarter of its bytes are
// garbage.  Low enough to keep disk amplification near 1.33x, high enough
// that a segment is not rewritten over trace amounts of churn.
const DefaultCompactRatio = 0.25

// Open assembles a DB from options.
func Open(opts Options) *DB {
	if opts.Store == nil {
		opts.Store = store.NewMemStore()
	}
	if opts.Branches == nil {
		opts.Branches = NewMemBranchTable()
	}
	if opts.Chunking.Q == 0 {
		opts.Chunking = chunker.DefaultConfig()
	}
	if !index.Registered(opts.Index) {
		panic(fmt.Sprintf("core: index kind %s has no linked-in implementation", opts.Index))
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.Default()
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	// Every chunk operation crossing into the backend is counted and timed
	// per backend kind; store.Instrument is the identity for obs.Discard,
	// so a metrics-disabled engine keeps the unwrapped hot path.
	opts.Store = store.InstrumentSlow(opts.Store, opts.Metrics, opts.Logger, opts.SlowOp)
	verifier := store.NewVerifyingStoreCache(opts.Store, opts.VerifyCacheBytes)
	verifier.SetVerifyWorkers(opts.SinkHashers)
	db := &DB{
		raw:     opts.Store,
		st:      verifier,
		met:     newDBObs(opts.Metrics, opts.Logger, opts.SlowOp),
		cfg:     opts.Chunking,
		idxKind: opts.Index,
	}
	// Every head movement is journaled into the change feed (the replication
	// source).  A caller that already wrapped its table — cmd/forkbased
	// shares one feed between the TCP server and this engine — keeps its
	// feed; otherwise the DB owns a fresh one.
	ft, ok := opts.Branches.(*FeedTable)
	if !ok {
		ft = WithFeed(opts.Branches, NewFeed(opts.FeedCapacity))
	}
	db.heads = ft
	db.feed = ft.Feed()
	if opts.NodeCacheBytes > 0 {
		db.ncache = nodecache.New(opts.NodeCacheBytes)
		db.st = store.WithNodeCache(db.st, db.ncache)
	}
	if opts.SinkHashers != 0 {
		db.st = store.WithSinkHashers(db.st, opts.SinkHashers)
	}
	db.registerGauges()
	db.compactRatio = opts.CompactRatio
	if db.compactRatio <= 0 {
		db.compactRatio = DefaultCompactRatio
	}
	if opts.CompactEvery > 0 {
		db.stopCompactor = make(chan struct{})
		db.compactorWG.Add(1)
		go db.compactLoop(opts.CompactEvery)
	}
	return db
}

// compactLoop is the background compactor: a ratio-gated GC pass per tick.
func (db *DB) compactLoop(every time.Duration) {
	defer db.compactorWG.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-db.stopCompactor:
			return
		case <-ticker.C:
			if _, err := db.Compact(); err != nil {
				if errors.Is(err, ErrNotCollectable) {
					return // store will never become collectable; stop ticking
				}
				// Transient (e.g. store closed mid-shutdown): keep trying;
				// the loop exits via stopCompactor.
			}
			db.compactPasses.Add(1)
		}
	}
}

// Close stops the background compactor (if any) and waits for an in-flight
// pass to finish.  The store and branch table are owned by the caller and
// are not closed here.  Close is idempotent and safe on a DB opened without
// a compactor.
func (db *DB) Close() error {
	db.closeOnce.Do(func() {
		if db.stopCompactor != nil {
			close(db.stopCompactor)
			db.compactorWG.Wait()
		}
	})
	return nil
}

// Store returns the verifying chunk store (reads are tamper-checked).
func (db *DB) Store() store.Store { return db.st }

// RawStore returns the unwrapped chunk store (for stats and benchmarks).
func (db *DB) RawStore() store.Store { return db.raw }

// Chunking returns the chunker configuration.
func (db *DB) Chunking() chunker.Config { return db.cfg }

// IndexKind returns the structure backing new composite values.
func (db *DB) IndexKind() index.Kind { return db.idxKind }

// NewMapValue builds a map value over the engine's configured index
// structure.  All engine-adjacent layers (public API, REST, datasets) build
// composite values through these helpers so index selection plumbs through
// uniformly.
func (db *DB) NewMapValue(entries []index.Entry) (value.Value, error) {
	return value.NewMapWith(db.st, db.cfg, db.idxKind, entries)
}

// NewSetValue builds a set value over the engine's configured index
// structure.
func (db *DB) NewSetValue(elems [][]byte) (value.Value, error) {
	return value.NewSetWith(db.st, db.cfg, db.idxKind, elems)
}

// IndexOf loads the versioned index backing a map- or set-valued version,
// whatever structure it was written with.
func (db *DB) IndexOf(v Version) (index.VersionedIndex, error) {
	return v.Value.Index(db.st, db.cfg, v.Index)
}

// kindOf resolves which index structure backs a value: known directly for
// values built through the constructors (no store round trip), sniffed
// from the root chunk for descriptors decoded from storage, the engine
// default for empty ones, and the POS zero value for kinds that have no
// key index at all (primitives, blobs, lists) so their FNode encodings
// stay byte-identical with pre-index-layer versions.
func (db *DB) kindOf(v value.Value) (index.Kind, error) {
	if v.Kind() != value.KindMap && v.Kind() != value.KindSet {
		return index.KindPOS, nil
	}
	if k, ok := v.IndexKind(); ok {
		return k, nil
	}
	if v.Root().IsZero() {
		return db.idxKind, nil
	}
	return index.KindOfRoot(db.st, v.Root())
}

// NodeCache returns the decoded-node cache, or nil when disabled.
func (db *DB) NodeCache() *nodecache.Cache { return db.ncache }

// NodeCacheStats snapshots decoded-node cache effectiveness (zeros when the
// cache is disabled — nodecache methods are nil-safe).
func (db *DB) NodeCacheStats() nodecache.Stats { return db.ncache.Stats() }

// Branches returns the branch table.
func (db *DB) BranchTable() BranchTable { return db.heads }

// Feed returns the change feed: the sequenced journal of head movements
// replication consumes.  It is always non-nil.
func (db *DB) Feed() *Feed { return db.feed }

// ErrReadOnly is returned by every mutating engine operation on a read-only
// engine (a replica: its state moves only through replication).
var ErrReadOnly = errors.New("core: engine is read-only (replica)")

// SetReadOnly turns the engine-level write gate on or off.  Replicas set it
// so every mutation path — including layers that reach the engine directly,
// like dataset handles — is rejected, not just the public API wrappers.
// The replication follower is unaffected: it writes through the store and
// branch table, not through engine operations.
func (db *DB) SetReadOnly(ro bool) { db.readOnly.Store(ro) }

// writeGuard rejects engine mutations when read-only.
func (db *DB) writeGuard() error {
	if db.readOnly.Load() {
		return ErrReadOnly
	}
	return nil
}

// Version describes one version of an object.
type Version struct {
	UID   hash.Hash
	Seq   uint64
	Bases []hash.Hash
	Value value.Value
	Meta  map[string]string
	Key   string
	// Index is the structure backing the version's composite value (from
	// the FNode's self-describing metadata); index.KindPOS for primitives.
	Index index.Kind
}

// Put writes a new version of key on branch, deriving from the current
// branch head, and advances the head.  Retrying on concurrent head moves is
// NOT performed: if another writer advances the head between the read and
// the compare-and-set, Put returns ErrStaleHead (wrapped, so errors.Is
// matches) without writing the head, and the caller decides whether to
// reload and retry, branch, or give up.  The version chunk itself is already
// stored at that point; it is unreachable garbage unless the caller reuses
// it.
func (db *DB) Put(key, branch string, v value.Value, meta map[string]string) (Version, error) {
	return db.PutCtx(context.Background(), key, branch, v, meta)
}

// PutCtx is Put carrying a request context: the trace ID minted at the
// serving edge rides ctx into the slow-op log, so a stalled commit can be
// attributed to the request that issued it.  ctx does not cancel the
// write — a version is either fully committed or not published.
func (db *DB) PutCtx(ctx context.Context, key, branch string, v value.Value, meta map[string]string) (_ Version, err error) {
	if gerr := db.writeGuard(); gerr != nil {
		return Version{}, gerr
	}
	defer db.met.finish(ctx, db.met.opPut, db.met.begin(), &err, "key", key, "branch", branch)
	db.writeMu.RLock()
	defer db.writeMu.RUnlock()
	return db.put(key, branch, v, meta)
}

// put is Put without the GC write fence, for compound write operations that
// already hold it (the fence is not reentrant).
func (db *DB) put(key, branch string, v value.Value, meta map[string]string) (Version, error) {
	if branch == "" {
		branch = DefaultBranch
	}
	head, ok, err := db.heads.Head(key, branch)
	if err != nil {
		return Version{}, err
	}
	var bases []hash.Hash
	var seq uint64
	if ok {
		parent, err := fnode.Load(db.st, head)
		if err != nil {
			return Version{}, fmt.Errorf("core: loading head of %s@%s: %w", key, branch, err)
		}
		bases = []hash.Hash{head}
		seq = parent.Seq + 1
	} else {
		seq = 1
	}
	kind, err := db.kindOf(v)
	if err != nil {
		return Version{}, err
	}
	f := fnode.New([]byte(key), v, bases, seq, meta)
	f.Index = kind
	uid, err := f.Save(db.st)
	if err != nil {
		return Version{}, err
	}
	okCAS, err := db.heads.CompareAndSet(key, branch, head, uid)
	if err != nil {
		return Version{}, err
	}
	if !okCAS {
		return Version{}, fmt.Errorf("%w: %s@%s", ErrStaleHead, key, branch)
	}
	return Version{UID: uid, Seq: seq, Bases: bases, Value: v, Meta: meta, Key: key, Index: kind}, nil
}

// WriteOp is one object write of a WriteBatch.
type WriteOp struct {
	Key    string
	Branch string // "" = DefaultBranch
	Value  value.Value
	Meta   map[string]string
}

// WriteBatch writes a new version of every op's object in one batched round:
// heads are read first, all FNodes are stored with a single fnode.SaveAll
// (one store lock acquisition and, on a FileStore, one group-commit flush),
// and only then are the branch heads advanced.  Later ops targeting the same
// key@branch derive from earlier ops in the batch, so a batch behaves like
// the equivalent Put sequence.
//
// Head advances use the same no-retry contract as Put: a concurrent head
// move fails that op with ErrStaleHead.  Versions are returned positionally;
// a failed op leaves a zero Version at its slot and its error joined into
// the returned error.  Ops after a failed op still commit — chunks are
// content-addressed and heads are independent, so there is nothing to roll
// back.
func (db *DB) WriteBatch(ops []WriteOp) ([]Version, error) {
	return db.WriteBatchCtx(context.Background(), ops)
}

// WriteBatchCtx is WriteBatch carrying a request context (see PutCtx).
func (db *DB) WriteBatchCtx(ctx context.Context, ops []WriteOp) (_ []Version, err error) {
	if gerr := db.writeGuard(); gerr != nil {
		return nil, gerr
	}
	defer db.met.finish(ctx, db.met.opWriteBatch, db.met.begin(), &err, "ops", len(ops))
	db.writeMu.RLock()
	defer db.writeMu.RUnlock()
	return db.writeBatch(ops)
}

// BuildAndPut runs build — which typically stores chunks, e.g. the value
// constructors — and commits the resulting value, all under the GC write
// fence: a concurrent collection can never sweep the freshly built chunks
// before the head CAS publishes them.  build must not call other fenced DB
// write methods (the fence is not reentrant); plain reads are fine.
func (db *DB) BuildAndPut(key, branch string, meta map[string]string, build func() (value.Value, error)) (Version, error) {
	return db.BuildAndPutCtx(context.Background(), key, branch, meta, build)
}

// BuildAndPutCtx is BuildAndPut carrying a request context.  The slow-op
// record splits the build phase (chunking + store writes) from the whole
// operation, so a slow commit shows whether the time went to building the
// value or to publishing it.
func (db *DB) BuildAndPutCtx(ctx context.Context, key, branch string, meta map[string]string, build func() (value.Value, error)) (_ Version, err error) {
	if gerr := db.writeGuard(); gerr != nil {
		return Version{}, gerr
	}
	var buildDur time.Duration
	start := db.met.begin()
	defer func() {
		db.met.finish(ctx, db.met.opPut, start, &err, "key", key, "branch", branch, "build", buildDur)
	}()
	db.writeMu.RLock()
	defer db.writeMu.RUnlock()
	v, berr := build()
	if !start.IsZero() {
		buildDur = time.Since(start)
	}
	if berr != nil {
		err = berr
		return Version{}, err
	}
	return db.put(key, branch, v, meta)
}

// BuildAndWriteBatch is BuildAndPut for batched writes: build assembles the
// ops (storing their values' chunks) inside the fence.
func (db *DB) BuildAndWriteBatch(build func() ([]WriteOp, error)) ([]Version, error) {
	return db.BuildAndWriteBatchCtx(context.Background(), build)
}

// BuildAndWriteBatchCtx is BuildAndWriteBatch carrying a request context
// (see BuildAndPutCtx for the phase split in slow-op records).
func (db *DB) BuildAndWriteBatchCtx(ctx context.Context, build func() ([]WriteOp, error)) (_ []Version, err error) {
	if gerr := db.writeGuard(); gerr != nil {
		return nil, gerr
	}
	var buildDur time.Duration
	start := db.met.begin()
	defer func() {
		db.met.finish(ctx, db.met.opWriteBatch, start, &err, "build", buildDur)
	}()
	db.writeMu.RLock()
	defer db.writeMu.RUnlock()
	ops, berr := build()
	if !start.IsZero() {
		buildDur = time.Since(start)
	}
	if berr != nil {
		err = berr
		return nil, err
	}
	return db.writeBatch(ops)
}

// writeBatch is WriteBatch without the GC write fence, for callers that
// already hold it.
func (db *DB) writeBatch(ops []WriteOp) ([]Version, error) {
	type slot struct {
		branch string
		head   hash.Hash // expected old head for the CAS
		seq    uint64
		f      *fnode.FNode
		err    error
	}
	slots := make([]slot, len(ops))
	// Phase 1: resolve parents, chaining ops on the same key@branch.
	pending := make(map[string]*slot, len(ops))
	fnodes := make([]*fnode.FNode, 0, len(ops))
	for i, op := range ops {
		s := &slots[i]
		s.branch = op.Branch
		if s.branch == "" {
			s.branch = DefaultBranch
		}
		ref := op.Key + "\x00" + s.branch
		kind, err := db.kindOf(op.Value)
		if err != nil {
			s.err = err
			continue
		}
		if prev, ok := pending[ref]; ok {
			s.head = prev.f.UID()
			s.seq = prev.seq + 1
			s.f = fnode.New([]byte(op.Key), op.Value, []hash.Hash{s.head}, s.seq, op.Meta)
			s.f.Index = kind
		} else {
			head, ok, err := db.heads.Head(op.Key, s.branch)
			if err != nil {
				s.err = err
				continue
			}
			var bases []hash.Hash
			s.seq = 1
			if ok {
				parent, err := fnode.Load(db.st, head)
				if err != nil {
					s.err = fmt.Errorf("core: loading head of %s@%s: %w", op.Key, s.branch, err)
					continue
				}
				s.head = head
				s.seq = parent.Seq + 1
				bases = []hash.Hash{head}
			}
			s.f = fnode.New([]byte(op.Key), op.Value, bases, s.seq, op.Meta)
			s.f.Index = kind
		}
		pending[ref] = s
		fnodes = append(fnodes, s.f)
	}
	// Phase 2: one batched write for every version object.
	if len(fnodes) > 0 {
		if _, err := fnode.SaveAll(db.st, fnodes); err != nil {
			return make([]Version, len(ops)), err
		}
	}
	// Phase 3: advance heads in op order.  An op chained behind a failed op
	// of the same key@branch fails its CAS naturally (the expected head was
	// never installed).
	out := make([]Version, len(ops))
	var errs []error
	for i, op := range ops {
		s := &slots[i]
		if s.err != nil {
			errs = append(errs, fmt.Errorf("op %d (%s@%s): %w", i, op.Key, s.branch, s.err))
			continue
		}
		uid := s.f.UID()
		okCAS, err := db.heads.CompareAndSet(op.Key, s.branch, s.head, uid)
		if err != nil {
			errs = append(errs, fmt.Errorf("op %d (%s@%s): %w", i, op.Key, s.branch, err))
			continue
		}
		if !okCAS {
			errs = append(errs, fmt.Errorf("op %d: %w: %s@%s", i, ErrStaleHead, op.Key, s.branch))
			continue
		}
		out[i] = Version{UID: uid, Seq: s.seq, Bases: s.f.Bases, Value: op.Value, Meta: op.Meta, Key: op.Key, Index: s.f.Index}
	}
	return out, errors.Join(errs...)
}

// Get returns the current value of key on branch.
func (db *DB) Get(key, branch string) (Version, error) {
	return db.GetCtx(context.Background(), key, branch)
}

// GetCtx is Get carrying a request context (see PutCtx).
func (db *DB) GetCtx(ctx context.Context, key, branch string) (_ Version, err error) {
	defer db.met.finish(ctx, db.met.opGet, db.met.begin(), &err, "key", key, "branch", branch)
	if branch == "" {
		branch = DefaultBranch
	}
	head, ok, herr := db.heads.Head(key, branch)
	if herr != nil {
		return Version{}, herr
	}
	if !ok {
		return Version{}, fmt.Errorf("%w: %s@%s", ErrBranchNotFound, key, branch)
	}
	return db.GetVersion(key, head)
}

// GetVersion returns a specific version of key by uid.  The FNode chunk is
// verified against the uid, so a forged version cannot be returned.
func (db *DB) GetVersion(key string, uid hash.Hash) (Version, error) {
	f, err := fnode.Load(db.st, uid)
	if err != nil {
		return Version{}, err
	}
	if string(f.Key) != key {
		return Version{}, fmt.Errorf("core: version %s belongs to key %q, not %q", uid.Short(), f.Key, key)
	}
	v, err := f.DecodedValue()
	if err != nil {
		return Version{}, err
	}
	// Stamp the FNode's recorded structure onto the decoded descriptor:
	// loads of empty values (no root chunk to sniff) then keep the
	// branch's structure instead of falling back to the engine default.
	v = v.WithIndexKind(f.Index)
	return Version{UID: uid, Seq: f.Seq, Bases: f.Bases, Value: v, Meta: f.Meta, Key: key, Index: f.Index}, nil
}

// Head returns the head uid of key@branch.
func (db *DB) Head(key, branch string) (hash.Hash, error) {
	if branch == "" {
		branch = DefaultBranch
	}
	uid, ok, err := db.heads.Head(key, branch)
	if err != nil {
		return hash.Hash{}, err
	}
	if !ok {
		return hash.Hash{}, fmt.Errorf("%w: %s@%s", ErrBranchNotFound, key, branch)
	}
	return uid, nil
}

// Latest returns the branch and version with the highest logical sequence
// number across all branches of key (ties broken by branch name for
// determinism) — the engine-level Latest operation of Fig 1.
func (db *DB) Latest(key string) (string, Version, error) {
	branches, err := db.heads.Branches(key)
	if err != nil {
		return "", Version{}, err
	}
	names := make([]string, 0, len(branches))
	for b := range branches {
		names = append(names, b)
	}
	sort.Strings(names)
	var bestName string
	var best Version
	for _, b := range names {
		v, err := db.GetVersion(key, branches[b])
		if err != nil {
			return "", Version{}, err
		}
		if bestName == "" || v.Seq > best.Seq {
			bestName, best = b, v
		}
	}
	return bestName, best, nil
}

// Branch forks a new branch of key from an existing branch's head — an O(1)
// metadata operation: no data is copied, the new branch simply shares every
// chunk with its origin.
func (db *DB) Branch(key, newBranch, fromBranch string) error {
	if err := db.writeGuard(); err != nil {
		return err
	}
	if fromBranch == "" {
		fromBranch = DefaultBranch
	}
	head, ok, err := db.heads.Head(key, fromBranch)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %s@%s", ErrBranchNotFound, key, fromBranch)
	}
	return db.branchAt(key, newBranch, head)
}

// BranchFromVersion forks a new branch from an arbitrary historical version.
func (db *DB) BranchFromVersion(key, newBranch string, uid hash.Hash) error {
	if err := db.writeGuard(); err != nil {
		return err
	}
	if _, err := db.GetVersion(key, uid); err != nil {
		return err
	}
	return db.branchAt(key, newBranch, uid)
}

func (db *DB) branchAt(key, newBranch string, uid hash.Hash) error {
	ok, err := db.heads.CompareAndSet(key, newBranch, hash.Hash{}, uid)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %s@%s", ErrBranchExists, key, newBranch)
	}
	return nil
}

// DeleteBranch removes a branch head (chunks remain; they may be shared).
func (db *DB) DeleteBranch(key, branch string) error {
	if err := db.writeGuard(); err != nil {
		return err
	}
	return db.heads.Delete(key, branch)
}

// RenameBranch renames a branch.
func (db *DB) RenameBranch(key, from, to string) error {
	if err := db.writeGuard(); err != nil {
		return err
	}
	return db.heads.Rename(key, from, to)
}

// ListBranches returns the branch names of key, sorted.
func (db *DB) ListBranches(key string) ([]string, error) {
	branches, err := db.heads.Branches(key)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(branches))
	for b := range branches {
		out = append(out, b)
	}
	sort.Strings(out)
	return out, nil
}

// ListKeys returns all object keys, sorted.
func (db *DB) ListKeys() ([]string, error) { return db.heads.Keys() }

// History returns up to limit versions of key@branch, newest first,
// following first parents.  The walk returns its loaded FNodes, so each
// version chunk is fetched and decoded exactly once (the walk itself needs
// them to follow parent links; re-loading via GetVersion would double the
// work).
func (db *DB) History(key, branch string, limit int) ([]Version, error) {
	head, err := db.Head(key, branch)
	if err != nil {
		return nil, err
	}
	uids, nodes, err := fnode.HistoryNodes(db.st, head, limit)
	if err != nil {
		return nil, err
	}
	out := make([]Version, 0, len(uids))
	for i, f := range nodes {
		if string(f.Key) != key {
			return nil, fmt.Errorf("core: version %s belongs to key %q, not %q", uids[i].Short(), f.Key, key)
		}
		v, err := f.DecodedValue()
		if err != nil {
			return nil, err
		}
		v = v.WithIndexKind(f.Index)
		out = append(out, Version{UID: uids[i], Seq: f.Seq, Bases: f.Bases, Value: v, Meta: f.Meta, Key: key, Index: f.Index})
	}
	return out, nil
}

// Diff computes key-level deltas between two versions of a map- or
// set-valued object (the differential query of paper §III-B).
func (db *DB) Diff(key string, from, to hash.Hash) ([]index.Delta, index.DiffStats, error) {
	vf, err := db.GetVersion(key, from)
	if err != nil {
		return nil, index.DiffStats{}, err
	}
	vt, err := db.GetVersion(key, to)
	if err != nil {
		return nil, index.DiffStats{}, err
	}
	return db.DiffValues(vf.Value, vt.Value)
}

// DiffBranches diffs the heads of two branches of key.
func (db *DB) DiffBranches(key, fromBranch, toBranch string) ([]index.Delta, index.DiffStats, error) {
	from, err := db.Head(key, fromBranch)
	if err != nil {
		return nil, index.DiffStats{}, err
	}
	to, err := db.Head(key, toBranch)
	if err != nil {
		return nil, index.DiffStats{}, err
	}
	return db.Diff(key, from, to)
}

// DiffValues diffs two map/set values directly.  Each side loads through
// the index registry (the structure is sniffed from its root chunk), so
// same-structure diffs prune shared subtrees — whatever the structure —
// and cross-structure diffs fall back to the generic iterator merge.
func (db *DB) DiffValues(a, b value.Value) ([]index.Delta, index.DiffStats, error) {
	if a.Kind() != b.Kind() {
		return nil, index.DiffStats{}, fmt.Errorf("core: cannot diff %s against %s", a.Kind(), b.Kind())
	}
	switch a.Kind() {
	case value.KindMap, value.KindSet:
	default:
		return nil, index.DiffStats{}, fmt.Errorf("core: diff unsupported for %s values", a.Kind())
	}
	ia, err := a.Index(db.st, db.cfg, db.idxKind)
	if err != nil {
		return nil, index.DiffStats{}, err
	}
	ib, err := b.Index(db.st, db.cfg, ia.Kind())
	if err != nil {
		return nil, index.DiffStats{}, err
	}
	return ia.DiffWith(ib)
}

// MergeResult reports the outcome of a Merge.
type MergeResult struct {
	Version Version
	Stats   index.MergeStats
	// FastForward is true when no merge commit was needed.
	FastForward bool
}

// Merge three-way-merges branch src into branch dst of key (paper §II-B).
// The merge base is the LCA in the version DAG.  The merged version carries
// both heads as bases, making the merge itself part of the tamper-evident
// history.  resolve handles conflicting keys (nil = fail on conflict).
func (db *DB) Merge(key, dst, src string, resolve index.Resolver, meta map[string]string) (MergeResult, error) {
	return db.MergeCtx(context.Background(), key, dst, src, resolve, meta)
}

// MergeCtx is Merge carrying a request context (see PutCtx).
func (db *DB) MergeCtx(ctx context.Context, key, dst, src string, resolve index.Resolver, meta map[string]string) (_ MergeResult, err error) {
	if gerr := db.writeGuard(); gerr != nil {
		return MergeResult{}, gerr
	}
	defer db.met.finish(ctx, db.met.opMerge, db.met.begin(), &err, "key", key, "dst", dst, "src", src)
	// Normalize up front: Head defaults empty branch names on the read
	// side, so the CAS below must target the same (defaulted) branch — an
	// empty dst used to read master's head but CAS branch "", failing
	// every merge with a spurious ErrStaleHead.
	if dst == "" {
		dst = DefaultBranch
	}
	if src == "" {
		src = DefaultBranch
	}
	// Fence the whole merge: the merged value's chunks are written well
	// before the head CAS publishes them.
	db.writeMu.RLock()
	defer db.writeMu.RUnlock()
	dstHead, err := db.Head(key, dst)
	if err != nil {
		return MergeResult{}, err
	}
	srcHead, err := db.Head(key, src)
	if err != nil {
		return MergeResult{}, err
	}
	if dstHead == srcHead {
		v, err := db.GetVersion(key, dstHead)
		return MergeResult{Version: v, FastForward: true}, err
	}
	// Fast-forward: dst is an ancestor of src.
	if anc, err := fnode.IsAncestor(db.st, dstHead, srcHead); err != nil {
		return MergeResult{}, err
	} else if anc {
		ok, err := db.heads.CompareAndSet(key, dst, dstHead, srcHead)
		if err != nil {
			return MergeResult{}, err
		}
		if !ok {
			return MergeResult{}, fmt.Errorf("%w: %s@%s", ErrStaleHead, key, dst)
		}
		v, err := db.GetVersion(key, srcHead)
		return MergeResult{Version: v, FastForward: true}, err
	}
	// Already-merged: src is an ancestor of dst.
	if anc, err := fnode.IsAncestor(db.st, srcHead, dstHead); err != nil {
		return MergeResult{}, err
	} else if anc {
		v, err := db.GetVersion(key, dstHead)
		return MergeResult{Version: v, FastForward: true}, err
	}

	baseUID, err := fnode.LCA(db.st, dstHead, srcHead)
	if err != nil {
		return MergeResult{}, err
	}
	dv, err := db.GetVersion(key, dstHead)
	if err != nil {
		return MergeResult{}, err
	}
	sv, err := db.GetVersion(key, srcHead)
	if err != nil {
		return MergeResult{}, err
	}
	mergedVal, stats, err := db.mergeValues(key, baseUID, dv.Value, sv.Value, resolve)
	if err != nil {
		return MergeResult{}, err
	}

	seq := dv.Seq
	if sv.Seq > seq {
		seq = sv.Seq
	}
	kind, err := db.kindOf(mergedVal)
	if err != nil {
		return MergeResult{}, err
	}
	f := fnode.New([]byte(key), mergedVal, []hash.Hash{dstHead, srcHead}, seq+1, meta)
	f.Index = kind
	uid, err := f.Save(db.st)
	if err != nil {
		return MergeResult{}, err
	}
	ok, err := db.heads.CompareAndSet(key, dst, dstHead, uid)
	if err != nil {
		return MergeResult{}, err
	}
	if !ok {
		return MergeResult{}, fmt.Errorf("%w: %s@%s", ErrStaleHead, key, dst)
	}
	return MergeResult{
		Version: Version{UID: uid, Seq: seq + 1, Bases: []hash.Hash{dstHead, srcHead}, Value: mergedVal, Meta: meta, Key: key, Index: kind},
		Stats:   stats,
	}, nil
}

func (db *DB) mergeValues(key string, baseUID hash.Hash, a, b value.Value, resolve index.Resolver) (value.Value, index.MergeStats, error) {
	if a.Equal(b) {
		return a, index.MergeStats{}, nil
	}
	if a.Kind() != b.Kind() {
		return value.Value{}, index.MergeStats{}, fmt.Errorf("core: cannot merge %s into %s", b.Kind(), a.Kind())
	}
	switch a.Kind() {
	case value.KindMap, value.KindSet:
	default:
		return value.Value{}, index.MergeStats{}, fmt.Errorf("core: merge unsupported for diverged %s values", a.Kind())
	}

	var baseVal value.Value
	if !baseUID.IsZero() {
		bv, err := db.GetVersion(key, baseUID)
		if err != nil {
			return value.Value{}, index.MergeStats{}, err
		}
		baseVal = bv.Value
	}
	// The destination side decides the structure; a missing base loads as
	// that structure's empty index so the base→a diff can prune.
	at, err := a.Index(db.st, db.cfg, db.idxKind)
	if err != nil {
		return value.Value{}, index.MergeStats{}, err
	}
	loadIdx := func(v value.Value) (index.VersionedIndex, error) {
		if v.Kind() == value.KindInvalid || v.Root().IsZero() && !v.Kind().Composite() {
			f, err := index.For(at.Kind())
			if err != nil {
				return nil, err
			}
			return f.Empty(db.st, db.cfg), nil
		}
		return v.Index(db.st, db.cfg, at.Kind())
	}
	baseIdx, err := loadIdx(baseVal)
	if err != nil {
		return value.Value{}, index.MergeStats{}, err
	}
	bt, err := loadIdx(b)
	if err != nil {
		return value.Value{}, index.MergeStats{}, err
	}
	merged, stats, err := index.Merge3(baseIdx, at, bt, resolve)
	if err != nil {
		return value.Value{}, stats, err
	}
	return value.FromIndex(a.Kind(), merged), stats, nil
}

// Exists reports whether key has any branch.
func (db *DB) Exists(key string) bool {
	branches, err := db.heads.Branches(key)
	return err == nil && len(branches) > 0
}

// Stats returns the underlying store's dedup accounting.
func (db *DB) Stats() store.Stats { return db.raw.Stats() }
