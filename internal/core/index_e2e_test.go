package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"forkbase/internal/chunker"
	"forkbase/internal/index"
	"forkbase/internal/pos"
	"forkbase/internal/store"
	"forkbase/internal/value"
)

// End-to-end coverage for MPT-rooted objects through every engine
// subsystem that walks value graphs: the write paths, diff, merge,
// garbage collection and tamper verification — all dispatching through
// the index registry, never through pos-specific calls.

func mptDB() *DB {
	return Open(Options{Chunking: chunker.SmallConfig(), Index: index.KindMPT})
}

func mptEntries(n, gen int) []index.Entry {
	out := make([]index.Entry, n)
	for i := range out {
		out[i] = index.Entry{
			Key: []byte(fmt.Sprintf("row-%06d", i)),
			Val: []byte(fmt.Sprintf("val-%d-%d", i, gen)),
		}
	}
	return out
}

func TestMPTEngineRoundTrip(t *testing.T) {
	db := mptDB()
	v, err := db.NewMapValue(mptEntries(2000, 0))
	if err != nil {
		t.Fatal(err)
	}
	ver, err := db.Put("table", "", v, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ver.Index != index.KindMPT {
		t.Fatalf("version records index %s, want mpt", ver.Index)
	}
	// The FNode round-trips the kind.
	got, err := db.Get("table", "")
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != index.KindMPT {
		t.Fatalf("loaded version records index %s, want mpt", got.Index)
	}
	ix, err := db.IndexOf(got)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Kind() != index.KindMPT || ix.Len() != 2000 {
		t.Fatalf("IndexOf: kind=%s len=%d", ix.Kind(), ix.Len())
	}
	val, err := ix.Get([]byte("row-001234"))
	if err != nil || !bytes.Equal(val, []byte("val-1234-0")) {
		t.Fatalf("Get = %q, %v", val, err)
	}

	// Incremental edit keeps the structure and diffs structurally.
	v2, err := db.EditMap("table", "", []index.Entry{{Key: []byte("row-001234"), Val: []byte("EDITED")}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Index != index.KindMPT {
		t.Fatalf("edited version records index %s", v2.Index)
	}
	deltas, stats, err := db.Diff("table", ver.UID, v2.UID)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 || deltas[0].Kind() != index.Modified {
		t.Fatalf("deltas = %+v", deltas)
	}
	if stats.PrunedRefs == 0 {
		t.Fatalf("MPT diff pruned nothing: %+v", stats)
	}
}

func TestMPTEngineMerge(t *testing.T) {
	db := mptDB()
	v, err := db.NewMapValue(mptEntries(500, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Put("obj", "", v, nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Branch("obj", "feature", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := db.EditMap("obj", "", []index.Entry{{Key: []byte("row-000001"), Val: []byte("master-side")}}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.EditMap("obj", "feature", []index.Entry{{Key: []byte("row-000400"), Val: []byte("feature-side")}}, [][]byte{[]byte("row-000002")}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := db.Merge("obj", DefaultBranch, "feature", nil, nil)
	if err != nil {
		t.Fatalf("clean merge failed: %v", err)
	}
	if res.FastForward {
		t.Fatal("expected a real merge")
	}
	if res.Version.Index != index.KindMPT {
		t.Fatalf("merge version records index %s", res.Version.Index)
	}
	ix, err := db.IndexOf(res.Version)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]string{"row-000001": "master-side", "row-000400": "feature-side"} {
		got, err := ix.Get([]byte(key))
		if err != nil || string(got) != want {
			t.Fatalf("merged %s = %q, %v", key, got, err)
		}
	}
	if _, err := ix.Get([]byte("row-000002")); !errors.Is(err, index.ErrKeyNotFound) {
		t.Fatalf("deleted key survived merge: %v", err)
	}

	// Conflicting edits surface index.ErrConflict.
	if err := db.Branch("obj", "clash", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := db.EditMap("obj", "", []index.Entry{{Key: []byte("row-000100"), Val: []byte("ours")}}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.EditMap("obj", "clash", []index.Entry{{Key: []byte("row-000100"), Val: []byte("theirs")}}, nil, nil); err != nil {
		t.Fatal(err)
	}
	_, err = db.Merge("obj", DefaultBranch, "clash", nil, nil)
	var ce *index.ErrConflict
	if !errors.As(err, &ce) || len(ce.Conflicts) != 1 {
		t.Fatalf("want one conflict, got %v", err)
	}
	res, err = db.Merge("obj", DefaultBranch, "clash", index.ResolveTheirs, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err = db.IndexOf(res.Version)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := ix.Get([]byte("row-000100")); string(got) != "theirs" {
		t.Fatalf("resolved value = %q", got)
	}
}

// TestMPTGarbageCollection: MPT chunks are marked through the Children
// registry — live data survives a full GC, deleted branches are swept.
func TestMPTGarbageCollection(t *testing.T) {
	db := mptDB()
	v, err := db.NewMapValue(mptEntries(1000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Put("obj", "", v, nil); err != nil {
		t.Fatal(err)
	}
	// A doomed branch with distinct content.
	if err := db.Branch("obj", "doomed", ""); err != nil {
		t.Fatal(err)
	}
	doomedEntries := make([]index.Entry, 200)
	for i := range doomedEntries {
		doomedEntries[i] = index.Entry{Key: []byte(fmt.Sprintf("doomed-%06d", i)), Val: []byte("garbage")}
	}
	if _, err := db.EditMap("obj", "doomed", doomedEntries, nil, nil); err != nil {
		t.Fatal(err)
	}
	before := db.Stats().UniqueChunks
	if err := db.DeleteBranch("obj", "doomed"); err != nil {
		t.Fatal(err)
	}
	stats, err := db.GC()
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if stats.Swept == 0 {
		t.Fatal("GC swept nothing despite a deleted MPT branch")
	}
	if db.Stats().UniqueChunks >= before {
		t.Fatal("store did not shrink")
	}
	// Live data fully readable afterwards.
	got, err := db.Get("obj", "")
	if err != nil {
		t.Fatal(err)
	}
	ix, err := db.IndexOf(got)
	if err != nil {
		t.Fatal(err)
	}
	it, err := ix.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for it.Next() {
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatalf("post-GC scan: %v", err)
	}
	if n != 1000 {
		t.Fatalf("post-GC scan found %d entries, want 1000", n)
	}
	// Verification over the swept store stays green.
	if _, err := db.VerifyVersion("obj", got.UID, true); err != nil {
		t.Fatalf("post-GC verify: %v", err)
	}
}

// TestMPTVerifyDetectsTampering: flipping a bit in an MPT node chunk is
// caught by VerifyVersion walking through the Children registry.
func TestMPTVerifyDetectsTampering(t *testing.T) {
	mal := store.NewMaliciousStore(store.NewMemStore())
	db := Open(Options{Store: mal, Chunking: chunker.SmallConfig(), Index: index.KindMPT})
	v, err := db.NewMapValue(mptEntries(800, 0))
	if err != nil {
		t.Fatal(err)
	}
	ver, err := db.Put("obj", "", v, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.VerifyVersion("obj", ver.UID, false); err != nil {
		t.Fatalf("clean verify: %v", err)
	}
	ids, err := ver.Value.ChunkIDs(db.RawStore(), db.Chunking())
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt an interior node (the first id is the root).
	if _, err := mal.CorruptFlip(ids[len(ids)/2], 3, 1); err != nil {
		t.Fatal(err)
	}
	rep, err := db.VerifyVersion("obj", ver.UID, false)
	if !errors.Is(err, ErrTampered) {
		t.Fatalf("tampering not detected: %v", err)
	}
	if rep.OK || len(rep.Failures) == 0 {
		t.Fatalf("report = %+v", rep)
	}
}

// TestMixedStructuresInOneDB: a single store holds POS- and MPT-rooted
// objects side by side; loads sniff the right structure, diffs fall back
// generically across them, and GC keeps both alive.
func TestMixedStructuresInOneDB(t *testing.T) {
	db := Open(Options{Chunking: chunker.SmallConfig()}) // POS default
	posVal, err := db.NewMapValue(mptEntries(300, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Put("posObj", "", posVal, nil); err != nil {
		t.Fatal(err)
	}
	mptVal, err := value.NewMapWith(db.Store(), db.Chunking(), index.KindMPT, mptEntries(300, 0))
	if err != nil {
		t.Fatal(err)
	}
	mptVer, err := db.Put("mptObj", "", mptVal, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mptVer.Index != index.KindMPT {
		t.Fatalf("sniffed kind = %s, want mpt (detection from root chunk)", mptVer.Index)
	}
	posVer, err := db.Get("posObj", "")
	if err != nil {
		t.Fatal(err)
	}
	if posVer.Index != index.KindPOS {
		t.Fatalf("pos object records %s", posVer.Index)
	}
	// Cross-structure diff via the generic fallback: identical contents.
	deltas, _, err := db.DiffValues(posVer.Value, mptVer.Value)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 0 {
		t.Fatalf("cross-structure diff of identical contents: %d deltas", len(deltas))
	}
	if _, err := db.GC(); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"posObj", "mptObj"} {
		got, err := db.Get(key, "")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.VerifyVersion(key, got.UID, true); err != nil {
			t.Fatalf("post-GC verify of %s: %v", key, err)
		}
	}
	// pos.Tree loading an MPT root fails with a clear error rather than
	// misreading it.
	if _, err := pos.LoadTree(db.Store(), db.Chunking(), mptVer.Value.Root()); err == nil {
		t.Fatal("pos.LoadTree accepted an MPT root")
	}
}

// TestEmptyHeadKeepsStructure is the regression for a review-confirmed
// bug: a branch whose head emptied (zero root — nothing to sniff) must
// keep its recorded structure through diffs and merges even when the
// engine reopens with a different default index kind.  Before the fix,
// mergeValues hinted empty values with the *engine* default, so merging
// onto an empty-headed MPT branch from a POS-default engine silently
// flipped the branch to POS.
func TestEmptyHeadKeepsStructure(t *testing.T) {
	st := store.NewMemStore()
	bt := NewMemBranchTable()
	mdb := Open(Options{Store: st, Branches: bt, Chunking: chunker.SmallConfig(), Index: index.KindMPT})
	v, err := mdb.NewMapValue(mptEntries(50, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mdb.Put("obj", "", v, nil); err != nil {
		t.Fatal(err)
	}
	if err := mdb.Branch("obj", "fork", ""); err != nil {
		t.Fatal(err)
	}
	// Empty master's head: delete every key.
	dels := make([][]byte, 50)
	for i := range dels {
		dels[i] = []byte(fmt.Sprintf("row-%06d", i))
	}
	empty, err := mdb.EditMap("obj", "", nil, dels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !empty.Value.Root().IsZero() || empty.Index != index.KindMPT {
		t.Fatalf("emptied head: root=%s index=%s", empty.Value.Root().Short(), empty.Index)
	}
	// Diverge the fork with a key master's deletes do not touch, so the
	// merge is a clean three-way merge.
	if _, err := mdb.EditMap("obj", "fork", []index.Entry{{Key: []byte("fresh-key"), Val: []byte("forked")}}, nil, nil); err != nil {
		t.Fatal(err)
	}

	// "Reopen" over the same substrate with the POS default.
	pdb := Open(Options{Store: st, Branches: bt, Chunking: chunker.SmallConfig()})
	res, err := pdb.Merge("obj", "", "fork", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version.Index != index.KindMPT {
		t.Fatalf("merge onto empty MPT head flipped the branch to %s", res.Version.Index)
	}
	ix, err := pdb.IndexOf(res.Version)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Kind() != index.KindMPT {
		t.Fatalf("merged index is %s", ix.Kind())
	}
	// An incremental edit on the (still empty-rooted at base) branch from
	// the POS-default engine likewise stays MPT.
	v2, err := pdb.EditMap("obj", "", []index.Entry{{Key: []byte("x"), Val: []byte("y")}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Index != index.KindMPT {
		t.Fatalf("edit on MPT branch recorded %s", v2.Index)
	}
}
