package core

import (
	"errors"
	"testing"

	"forkbase/internal/store"
)

// TestTamperAfterVerifyScrubHealRecovers is the end-to-end pin for the
// verified-id cache's one accepted staleness window: bytes that rot on disk
// *after* a fully verified read.  The cache is warm for every reachable
// chunk when the rot lands; the sequence scrub → health → heal must still
// classify the damage, repair it from a replica, and leave the cache holding
// nothing stale.  Run under -race in CI's verify shard.
func TestTamperAfterVerifyScrubHealRecovers(t *testing.T) {
	dir := t.TempDir()
	db, fs := newFileDB(t, dir)
	defer fs.Close()
	seedHealDB(t, db, fs)
	replica := mirrorStore(t, fs)

	// Phase 1 — verified read: deep-verify every branch, which walks every
	// reachable chunk through the verifying store and warms the set.
	verifyAllBranches(t, db)
	vst := db.VerifyStats()
	if !vst.Enabled {
		t.Fatal("verified-id cache off over a plain file store")
	}
	if vst.Entries == 0 {
		t.Fatalf("deep verify warmed nothing: %+v", vst)
	}

	// Phase 2 — tamper after the verified read.
	rotSegment(t, dir, 1)

	// Phase 3 — scrub classifies despite the warm cache (scrub reads the
	// segment bytes directly; the verified set is never an oracle for it).
	ss, err := db.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if ss.Corrupt == 0 || len(ss.Lost) == 0 {
		t.Fatalf("scrub over a warm verify cache missed the rot: %+v", ss)
	}
	if err := fs.Health(); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("health = %v, want ErrCorrupt", err)
	}
	if got := db.VerifyStats().Invalidations; got == 0 {
		t.Fatal("scrub findings invalidated nothing in the verified set")
	}
	// The lost chunk must not be served from any cache layer.
	if _, err := db.Store().Get(ss.Lost[0]); err == nil {
		t.Fatal("lost chunk still readable after quarantine")
	}

	// Phase 4 — heal refills the holes from the replica and re-verifies
	// what is actually on disk (heal never trusts the warm set either).
	hs, err := db.Heal(testChunkSource{replica})
	if err != nil {
		t.Fatal(err)
	}
	if hs.Repaired == 0 || hs.Repaired != hs.Corrupt+hs.Missing || len(hs.Failed) != 0 {
		t.Fatalf("heal did not repair the rot: %+v", hs)
	}
	if err := fs.Health(); err != nil {
		t.Fatalf("health after heal = %v, want nil", err)
	}

	// Phase 5 — the store deep-verifies clean again, end to end.
	verifyAllBranches(t, db)
}
