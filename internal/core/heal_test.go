package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"forkbase/internal/chunk"
	"forkbase/internal/chunker"
	"forkbase/internal/hash"
	"forkbase/internal/store"
)

// testChunkSource adapts any local store into a repair source — the same
// shape repl.LocalSource has, declared here because core cannot import repl.
type testChunkSource struct{ st store.Store }

func (s testChunkSource) GetChunks(ids []hash.Hash) ([]*chunk.Chunk, error) {
	return store.GetBatch(s.st, ids)
}

func newFileDB(t *testing.T, dir string) (*DB, *store.FileStore) {
	t.Helper()
	fs, err := store.OpenFileStoreWith(dir, store.FileStoreOptions{SegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	return Open(Options{Store: fs, Branches: NewMemBranchTable(), Chunking: chunker.SmallConfig()}), fs
}

// mirrorStore deep-copies every chunk of fs into a fresh MemStore — a
// caught-up replica.  Payloads are copied out of the mmap (zero-copy chunks
// alias the segment mapping, and this test is about to rot that mapping).
func mirrorStore(t *testing.T, fs *store.FileStore) *store.MemStore {
	t.Helper()
	vs := store.NewVerifyingStore(fs)
	replica := store.NewMemStore()
	for _, id := range fs.IDs() {
		c, err := vs.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		cp := chunk.New(c.Type(), append([]byte(nil), c.Data()...))
		if _, err := replica.Put(cp); err != nil {
			t.Fatal(err)
		}
	}
	return replica
}

// rotSegment flips a payload byte of the first record in the given segment
// file (same shape as the store-level scrub tests).
func rotSegment(t *testing.T, dir string, seg int) {
	t.Helper()
	path := filepath.Join(dir, "seg-000001.log")
	if seg != 1 {
		t.Fatalf("rotSegment helper only aims at seg 1")
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := []byte{0}
	off := int64(hash.Size + 4 + 1 + 5) // recordHeader + 5: inside payload 0
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x10
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

func seedHealDB(t *testing.T, db *DB, fs *store.FileStore) {
	t.Helper()
	if _, err := db.Put("a", "", bigMap(t, db, 400, "v1"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Put("a", "", bigMap(t, db, 400, "v2"), nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Branch("a", "dev", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Put("b", "", bigMap(t, db, 200, "b1"), nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	if fs.DiskBytes() < 3*4096 {
		t.Fatal("seed too small to span several segments")
	}
}

func verifyAllBranches(t *testing.T, db *DB) {
	t.Helper()
	keys, err := db.heads.Keys()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range keys {
		branches, err := db.heads.Branches(key)
		if err != nil {
			t.Fatal(err)
		}
		for branch, head := range branches {
			if _, err := db.VerifyVersion(key, head, true); err != nil {
				t.Fatalf("deep verify %s@%s after heal: %v", key, branch, err)
			}
		}
	}
}

// TestHealRepairsCorruptInPlace: rot a sealed segment and heal *without*
// scrubbing first — the verifying read path classifies the rotted chunk as
// corrupt mid-walk, and Repair replaces it in place.
func TestHealRepairsCorruptInPlace(t *testing.T) {
	dir := t.TempDir()
	db, fs := newFileDB(t, dir)
	defer fs.Close()
	seedHealDB(t, db, fs)
	replica := mirrorStore(t, fs)
	headBefore, err := db.Head("a", "master")
	if err != nil {
		t.Fatal(err)
	}

	rotSegment(t, dir, 1)

	hs, err := db.Heal(testChunkSource{replica})
	if err != nil {
		t.Fatal(err)
	}
	if hs.Corrupt == 0 {
		t.Fatalf("heal saw no corruption: %+v", hs)
	}
	if hs.Repaired != hs.Corrupt+hs.Missing || len(hs.Failed) != 0 {
		t.Fatalf("heal did not repair everything: %+v", hs)
	}
	if hs.Branches == 0 || hs.Checked == 0 || hs.BytesFetched == 0 {
		t.Fatalf("implausible heal stats: %+v", hs)
	}

	headAfter, err := db.Head("a", "master")
	if err != nil {
		t.Fatal(err)
	}
	if headAfter != headBefore {
		t.Fatal("heal moved a branch head")
	}
	verifyAllBranches(t, db)
}

// TestHealAfterScrubQuarantine is the full detect → quarantine → repair
// loop at the engine level: scrub quarantines the rotted segment (chunk now
// *missing*), heal refills the hole from the replica, and the store's
// health state recovers.
func TestHealAfterScrubQuarantine(t *testing.T) {
	dir := t.TempDir()
	db, fs := newFileDB(t, dir)
	defer fs.Close()
	seedHealDB(t, db, fs)
	replica := mirrorStore(t, fs)

	rotSegment(t, dir, 1)
	st, err := fs.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if st.Corrupt == 0 || st.QuarantinedSegments != 1 || len(st.Lost) == 0 {
		t.Fatalf("scrub missed the rot: %+v", st)
	}
	if err := fs.Health(); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("health = %v, want ErrCorrupt", err)
	}

	hs, err := db.Heal(testChunkSource{replica})
	if err != nil {
		t.Fatal(err)
	}
	if hs.Missing == 0 || hs.Repaired != hs.Corrupt+hs.Missing {
		t.Fatalf("heal did not refill the quarantine holes: %+v", hs)
	}
	if err := fs.Health(); err != nil {
		t.Fatalf("health after heal = %v, want nil", err)
	}
	verifyAllBranches(t, db)
}

// TestHealReportsUnrepairable: a source that lacks the damaged chunks cannot
// heal them; Heal must say so loudly (typed error, ids listed) instead of
// reporting success.
func TestHealReportsUnrepairable(t *testing.T) {
	dir := t.TempDir()
	db, fs := newFileDB(t, dir)
	defer fs.Close()
	seedHealDB(t, db, fs)

	rotSegment(t, dir, 1)
	if _, err := fs.Scrub(); err != nil {
		t.Fatal(err)
	}
	hs, err := db.Heal(testChunkSource{store.NewMemStore()})
	if !errors.Is(err, chunk.ErrCorrupt) {
		t.Fatalf("heal with empty source = %v, want ErrCorrupt", err)
	}
	if len(hs.Failed) == 0 || hs.Repaired != 0 {
		t.Fatalf("expected only failures: %+v", hs)
	}
}

// TestHealNoDamageIsNoop: healing a healthy store fetches nothing.
func TestHealNoDamageIsNoop(t *testing.T) {
	dir := t.TempDir()
	db, fs := newFileDB(t, dir)
	defer fs.Close()
	seedHealDB(t, db, fs)
	hs, err := db.Heal(testChunkSource{store.NewMemStore()})
	if err != nil {
		t.Fatal(err)
	}
	if hs.Repaired != 0 || hs.Missing != 0 || hs.Corrupt != 0 || hs.BytesFetched != 0 {
		t.Fatalf("no-op heal touched data: %+v", hs)
	}
	if hs.Checked == 0 {
		t.Fatal("no-op heal checked nothing")
	}
}
