package obs

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoUnstructuredLogging is a vet-level guard over the service-facing
// packages: once a package has migrated to log/slog, nothing may sneak a
// legacy log.Printf or a bare fmt.Printf back in — those bypass the
// leveled, structured pipeline (and its trace IDs) and write to stderr in
// a format no log collector can parse.  Enforced by AST walk over every
// non-test file of the listed packages; fmt.Fprintf to an explicit writer
// remains allowed.
func TestNoUnstructuredLogging(t *testing.T) {
	banned := map[string]map[string]bool{
		"log": {
			"Print": true, "Printf": true, "Println": true,
			"Fatal": true, "Fatalf": true, "Fatalln": true,
			"Panic": true, "Panicf": true, "Panicln": true,
		},
		"fmt": {
			"Print": true, "Printf": true, "Println": true,
		},
	}
	dirs := []string{"../server", "../rest", "../repl"}

	fset := token.NewFileSet()
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			file, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkg, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				if fns, ok := banned[pkg.Name]; ok && fns[sel.Sel.Name] {
					t.Errorf("%s: %s.%s — use the package's *slog.Logger (structured, leveled, trace-aware) instead",
						fset.Position(call.Pos()), pkg.Name, sel.Sel.Name)
				}
				return true
			})
		}
	}
}
