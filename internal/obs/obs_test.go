package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPrometheusGolden pins the exposition format byte-for-byte: sorted
// families, HELP/TYPE headers, label rendering, histogram buckets in
// seconds with +Inf/_sum/_count.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_ops_total", "Total operations.").Add(42)
	cv := r.CounterVec("test_errors_total", "Errors by kind.", "kind")
	cv.With("io").Add(3)
	cv.With("corrupt").Inc()
	r.Gauge("test_inflight", "In-flight requests.").Set(7)
	r.GaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 1.5 })
	h := r.Histogram("test_op_seconds", "Op latency.")
	h.Observe(200 * time.Nanosecond)  // bucket 0 (≤256ns)
	h.Observe(300 * time.Nanosecond)  // bucket 1 (≤512ns)
	h.Observe(1000 * time.Nanosecond) // bucket 2 (≤1024ns)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	want := strings.Join([]string{
		"# HELP test_errors_total Errors by kind.",
		"# TYPE test_errors_total counter",
		`test_errors_total{kind="corrupt"} 1`,
		`test_errors_total{kind="io"} 3`,
		"# HELP test_inflight In-flight requests.",
		"# TYPE test_inflight gauge",
		"test_inflight 7",
		"# HELP test_op_seconds Op latency.",
		"# TYPE test_op_seconds histogram",
		`test_op_seconds_bucket{le="2.56e-07"} 1`,
		`test_op_seconds_bucket{le="5.12e-07"} 2`,
		`test_op_seconds_bucket{le="1.024e-06"} 3`,
	}, "\n")
	if !strings.HasPrefix(got, want) {
		t.Fatalf("exposition prefix mismatch:\ngot:\n%s\nwant prefix:\n%s", got, want)
	}
	for _, line := range []string{
		`test_op_seconds_bucket{le="+Inf"} 3`,
		"test_op_seconds_sum 1.5e-06",
		"test_op_seconds_count 3",
		"# HELP test_ops_total Total operations.",
		"# TYPE test_ops_total counter",
		"test_ops_total 42",
		"# TYPE test_uptime_seconds gauge",
		"test_uptime_seconds 1.5",
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("exposition missing line %q\nfull output:\n%s", line, got)
		}
	}
}

// TestJSONSnapshot checks the snapshot round-trips through encoding/json
// with the documented field names and derived quantiles.
func TestJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("snap_total", "help").Add(5)
	r.CounterVec("snap_by_kind_total", "help", "kind").With("a").Add(2)
	r.Gauge("snap_gauge", "help").Set(-3)
	h := r.Histogram("snap_seconds", "help")
	for i := 0; i < 100; i++ {
		h.Observe(time.Microsecond)
	}

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(b.String()), &snap);	err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(snap.Counters) != 2 || len(snap.Gauges) != 1 || len(snap.Histograms) != 1 {
		t.Fatalf("snapshot shape: %d counters, %d gauges, %d histograms",
			len(snap.Counters), len(snap.Gauges), len(snap.Histograms))
	}
	if snap.Counters[0].Name != "snap_by_kind_total" || snap.Counters[0].Labels["kind"] != "a" {
		t.Errorf("labeled counter: %+v", snap.Counters[0])
	}
	if snap.Gauges[0].Value != -3 {
		t.Errorf("gauge value = %v, want -3", snap.Gauges[0].Value)
	}
	hv := snap.Histograms[0]
	if hv.Count != 100 || hv.P50 <= 0 || hv.P99 < hv.P50 || hv.Max <= 0 {
		t.Errorf("histogram snapshot: %+v", hv)
	}
}

// TestHistogramBuckets pins the bucket mapping at the boundaries.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {256, 0}, {257, 1}, {512, 1}, {513, 2},
		{1024, 2}, {1 << 20, 12}, {int64(bucketBaseNs) << numBuckets, numBuckets},
		{1 << 62, numBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	for i := 0; i < numBuckets; i++ {
		b := bucketBoundNs(i)
		if bucketIndex(b) != i {
			t.Errorf("bound %d maps to bucket %d, want %d", b, bucketIndex(b), i)
		}
		if bucketIndex(b+1) != i+1 && i+1 <= numBuckets {
			t.Errorf("bound+1 %d maps to bucket %d, want %d", b+1, bucketIndex(b+1), i+1)
		}
	}
}

// TestHistogramQuantiles feeds a known distribution and checks the
// reported quantiles are conservative upper bounds within one bucket.
func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram()
	// 90 fast ops at 1µs, 9 at 100µs, 1 at 10ms.
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(100 * time.Microsecond)
	}
	h.Observe(10 * time.Millisecond)

	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d", got)
	}
	if got := h.Max(); got != 10*time.Millisecond {
		t.Errorf("max = %v, want 10ms", got)
	}
	// p50 falls in the 1µs observations: bucket bound for 1000ns is 1024ns.
	if got := h.Quantile(0.50); got < time.Microsecond || got > 2*time.Microsecond {
		t.Errorf("p50 = %v, want ~1µs (≤ one bucket above)", got)
	}
	// p95 falls among the 100µs observations: bound 131072ns.
	if got := h.Quantile(0.95); got < 100*time.Microsecond || got > 256*time.Microsecond {
		t.Errorf("p95 = %v, want ~100µs", got)
	}
	// p99.5+ lands on the max.
	if got := h.Quantile(1.0); got != 10*time.Millisecond && got > 16*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	// Empty histogram.
	if got := newHistogram().Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
	// Sum is exact.
	want := 90*time.Microsecond + 900*time.Microsecond + 10*time.Millisecond
	if got := h.Sum(); got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

// TestConcurrentIncrements hammers one counter, one labeled counter, and
// one histogram from many goroutines; totals must be exact.  Run under
// -race in the CI obs shard.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "help")
	cv := r.CounterVec("conc_by_kind_total", "help", "kind")
	h := r.Histogram("conc_seconds", "help")
	g := r.Gauge("conc_gauge", "help")

	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kc := cv.With("k") // With is also safe to race, but resolve once like real callers
			for i := 0; i < perWorker; i++ {
				c.Inc()
				kc.Inc()
				h.Observe(time.Duration(i) * time.Nanosecond)
				g.Add(1)
				g.Add(-1)
			}
		}(w)
	}
	wg.Wait()

	const want = workers * perWorker
	if got := c.Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := cv.With("k").Value(); got != want {
		t.Errorf("labeled counter = %d, want %d", got, want)
	}
	if got := h.Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
}

// TestGetOrCreate: same (name, labels) returns the same handle; GaugeFunc
// re-registration replaces the callback.
func TestGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("goc_total", "help")
	b := r.Counter("goc_total", "other help ignored")
	if a != b {
		t.Error("Counter not get-or-create")
	}
	a.Add(2)
	if v, ok := r.Value("goc_total"); !ok || v != 2 {
		t.Errorf("Value = %v, %v", v, ok)
	}

	r.GaugeFunc("goc_fn", "help", func() float64 { return 1 })
	r.GaugeFunc("goc_fn", "help", func() float64 { return 9 })
	if v, _ := r.Value("goc_fn"); v != 9 {
		t.Errorf("GaugeFunc re-register: value = %v, want 9 (latest wins)", v)
	}

	cv := r.CounterVec("goc_vec_total", "help", "op")
	cv.With("get").Add(3)
	cv.With("put").Add(4)
	if got := r.Sum("goc_vec_total"); got != 7 {
		t.Errorf("Sum = %v, want 7", got)
	}
}

// TestNilSafety: nil registry, Discard registry, and nil handles all
// no-op without panicking.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x", "h").Inc()
	r.CounterVec("x", "h", "l").With("v").Add(5)
	r.Gauge("x", "h").Set(1)
	r.GaugeFunc("x", "h", func() float64 { return 1 })
	r.Histogram("x", "h").Observe(time.Second)
	r.HistogramVec("x", "h", "l").With("v").Since(time.Now())
	if v, ok := r.Value("x"); ok || v != 0 {
		t.Error("nil registry Value should report absent")
	}

	d := Discard
	if c := d.Counter("x", "h"); c != nil {
		t.Error("Discard should hand out nil counters")
	}
	d.Counter("x", "h").Inc()
	d.Histogram("x", "h").Observe(time.Second)
	var b strings.Builder
	if err := d.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Errorf("Discard exposition: %q, %v", b.String(), err)
	}
}

func TestTraceContext(t *testing.T) {
	ctx, id := WithTrace(context.Background(), "")
	if len(id) != 16 {
		t.Fatalf("trace id %q, want 16 hex chars", id)
	}
	if got := TraceID(ctx); got != id {
		t.Errorf("TraceID = %q, want %q", got, id)
	}
	ctx2, id2 := WithTrace(context.Background(), "deadbeefdeadbeef")
	if id2 != "deadbeefdeadbeef" || TraceID(ctx2) != id2 {
		t.Errorf("explicit id not preserved: %q", id2)
	}
	if TraceID(context.Background()) != "" {
		t.Error("empty context should have no trace id")
	}
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Error("consecutive trace ids collide")
	}
}

// BenchmarkCounterInc pins the tentpole requirement: a hot-path increment
// is one atomic add, < 25 ns/op.
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "help")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "help")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

func BenchmarkCounterVecWith(b *testing.B) {
	cv := NewRegistry().CounterVec("bench_vec_total", "help", "op")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cv.With("get").Inc()
	}
}
