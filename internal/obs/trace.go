// Request tracing: a 16-hex-digit trace ID minted at the REST/server edge
// and carried by context.Context through engine → index → store.  There is
// no span machinery — the ID exists so that threshold-gated slow-op log
// records emitted at different layers can be joined into one story ("this
// 1.2 s PutBatch spent 1.1 s in segment fsync").
package obs

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"hash/maphash"
	"sync/atomic"
)

type traceKeyType struct{}

var traceKey traceKeyType

// traceSeed mixes a per-process random seed with a sequence number so IDs
// are unique across processes without syscalls or locks on the mint path.
var (
	traceSeed = maphash.MakeSeed()
	traceSeq  atomic.Uint64
)

// NewTraceID mints a 16-hex-digit ID.  Cheap (one atomic add + one hash),
// collision-resistant enough for log correlation, not a security token.
func NewTraceID() string {
	var h maphash.Hash
	h.SetSeed(traceSeed)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], traceSeq.Add(1))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], h.Sum64())
	return hex.EncodeToString(buf[:])
}

// WithTrace returns a context carrying id; an empty id mints a fresh one.
// The final ID is returned alongside.
func WithTrace(ctx context.Context, id string) (context.Context, string) {
	if id == "" {
		id = NewTraceID()
	}
	return context.WithValue(ctx, traceKey, id), id
}

// TraceID extracts the trace ID from ctx, "" when absent.
func TraceID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceKey).(string)
	return id
}
