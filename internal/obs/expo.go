// Exposition: Prometheus text format and JSON snapshots.
//
// The text writer emits the subset of the Prometheus exposition format
// that scrapers require: one # HELP / # TYPE pair per family, sorted
// family and label order (deterministic output for golden tests),
// histograms as cumulative le-buckets in seconds with +Inf, _sum and
// _count.  The JSON snapshot carries the same data plus the derived
// quantiles (p50/p95/p99/max) that the Prometheus model leaves to the
// query layer — it is what `forkbase metrics` and /v1/metrics.json serve.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// WritePrometheus writes the registry in Prometheus text format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := &errWriter{w: w}
	for _, f := range r.sortedFamilies() {
		insts := f.sortedInstances()
		if len(insts) == 0 {
			continue
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind.promType())
		for _, inst := range insts {
			if f.kind == kindHistogram {
				writePromHistogram(bw, f, inst)
				continue
			}
			fmt.Fprintf(bw, "%s%s %s\n", f.name, labelString(f.labels, inst.values, ""), formatFloat(inst.value()))
		}
	}
	return bw.err
}

func writePromHistogram(w io.Writer, f *family, inst *instance) {
	h := inst.hist
	// Load the bucket array once; cumulative sums over the snapshot.
	var cum uint64
	for i := 0; i <= numBuckets; i++ {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < numBuckets {
			le = formatFloat(float64(bucketBoundNs(i)) / 1e9)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, inst.values, le), cum)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, inst.values, ""), formatFloat(h.Sum().Seconds()))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, inst.values, ""), h.Count())
}

// labelString renders {k="v",...}; le, when non-empty, is appended as the
// histogram bucket bound.  Returns "" for no labels.
func labelString(names, values []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// formatFloat renders integers without an exponent or trailing zeros so
// counters read naturally ("42", not "4.2e+01").
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	ew.err = err
	return n, err
}

// --- JSON snapshot ---

// MetricValue is one scalar series in a snapshot.
type MetricValue struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// HistogramValue is one latency series in a snapshot; quantile fields are
// seconds.
type HistogramValue struct {
	Name       string            `json:"name"`
	Labels     map[string]string `json:"labels,omitempty"`
	Count      uint64            `json:"count"`
	SumSeconds float64           `json:"sum_seconds"`
	P50        float64           `json:"p50_seconds"`
	P95        float64           `json:"p95_seconds"`
	P99        float64           `json:"p99_seconds"`
	Max        float64           `json:"max_seconds"`
}

// Snapshot is a point-in-time copy of every series, ready for JSON.
type Snapshot struct {
	Counters   []MetricValue    `json:"counters"`
	Gauges     []MetricValue    `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot captures the registry.  Series order is deterministic (family
// name, then label values).
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   []MetricValue{},
		Gauges:     []MetricValue{},
		Histograms: []HistogramValue{},
	}
	for _, f := range r.sortedFamilies() {
		for _, inst := range f.sortedInstances() {
			labels := labelMap(f.labels, inst.values)
			switch f.kind {
			case kindHistogram:
				h := inst.hist
				snap.Histograms = append(snap.Histograms, HistogramValue{
					Name:       f.name,
					Labels:     labels,
					Count:      h.Count(),
					SumSeconds: h.Sum().Seconds(),
					P50:        h.Quantile(0.50).Seconds(),
					P95:        h.Quantile(0.95).Seconds(),
					P99:        h.Quantile(0.99).Seconds(),
					Max:        h.Max().Seconds(),
				})
			case kindCounter, kindCounterFunc:
				snap.Counters = append(snap.Counters, MetricValue{Name: f.name, Labels: labels, Value: inst.value()})
			default:
				snap.Gauges = append(snap.Gauges, MetricValue{Name: f.name, Labels: labels, Value: inst.value()})
			}
		}
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

func labelMap(names, values []string) map[string]string {
	if len(names) == 0 {
		return nil
	}
	m := make(map[string]string, len(names))
	for i, n := range names {
		m[n] = values[i]
	}
	return m
}

// Uptime tracks a start time for registry-derived health reporting.
type Uptime struct{ start time.Time }

// NewUptime starts the clock.
func NewUptime() *Uptime { return &Uptime{start: time.Now()} }

// Seconds since start.
func (u *Uptime) Seconds() float64 {
	if u == nil {
		return 0
	}
	return time.Since(u.start).Seconds()
}
