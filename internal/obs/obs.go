// Package obs is ForkBase's dependency-free observability substrate: a
// metrics registry (atomic counters, gauges, bounded-bucket latency
// histograms, labeled families) with Prometheus text-format exposition and
// a JSON snapshot API, plus trace-ID context propagation for following one
// slow operation across layers.
//
// Design constraints, in order:
//
//  1. Hot-path cost.  Incrementing a counter is one atomic add on a
//     pre-resolved handle (< 25 ns, pinned by BenchmarkCounterInc).  All
//     lookup/locking happens once, at registration; the handles returned by
//     Counter/Gauge/Histogram are then lock-free forever.
//  2. Zero dependencies.  Only the standard library; the exposition writer
//     speaks enough of the Prometheus text format for real scrapers.
//  3. Nil safety.  A nil *Registry hands out nil handles, and every method
//     on a nil handle is a no-op — instrumented code never branches on
//     "is observability configured".  Discard is the explicit inert
//     registry for benchmarking the bare path.
//
// Registration is get-or-create: asking for an existing (name, labels)
// pair returns the same handle, so independent subsystems — or multiple
// engines in one test process — can share a registry without coordination.
// Re-registering a GaugeFunc replaces the callback (latest caller wins),
// which keeps per-engine gauges correct when tests open engines serially.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metricKind discriminates exposition behaviour.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindCounterFunc
	kindHistogram
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// family groups every instance of one metric name: shared help text, kind,
// and label schema.  Exposition emits one # HELP/# TYPE header per family.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string

	mu        sync.Mutex
	instances map[string]*instance // keyed by joined label values
}

// instance is one (name, label-values) time series.
type instance struct {
	fam    *family
	values []string // label values, aligned with fam.labels

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fnp     atomic.Pointer[func() float64] // gauge/counter func, swapped on re-register
}

// Registry owns a namespace of metric families.  The zero value is NOT
// usable; call NewRegistry.  A nil *Registry is safe: every method returns
// a nil handle whose operations no-op.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	inert    bool // Discard: hand out nil handles
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Discard is a non-nil registry that records nothing: get-or-create
// returns nil handles (whose methods no-op) and exposition is empty.  Use
// it as the "bare" arm of overhead benchmarks, or to switch a subsystem's
// instrumentation off wholesale.
var Discard = &Registry{inert: true}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.  Subsystems without an
// explicit registry (package-level retry counters, forkbased's wiring)
// register here.
func Default() *Registry { return defaultRegistry }

// family returns the family for name, creating it with the given schema on
// first use.  A kind or label-arity mismatch with a prior registration
// panics: metric names are compile-time constants, so a clash is a
// programming error best caught in tests.
func (r *Registry) family(name, help string, kind metricKind, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, labels: labels, instances: make(map[string]*instance)}
		r.families[name] = f
		return f
	}
	sameGaugeish := (f.kind == kindGauge || f.kind == kindGaugeFunc) && (kind == kindGauge || kind == kindGaugeFunc)
	sameCounterish := (f.kind == kindCounter || f.kind == kindCounterFunc) && (kind == kindCounter || kind == kindCounterFunc)
	if f.kind != kind && !sameGaugeish && !sameCounterish {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind.promType(), f.kind.promType()))
	}
	if len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: metric %q re-registered with %d labels, was %d", name, len(labels), len(f.labels)))
	}
	return f
}

// instance returns the (values) instance of f, creating on first use.
func (f *family) instance(values []string) *instance {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	inst, ok := f.instances[key]
	if !ok {
		inst = &instance{fam: f, values: append([]string(nil), values...)}
		switch f.kind {
		case kindCounter:
			inst.counter = &Counter{}
		case kindGauge:
			inst.gauge = &Gauge{}
		case kindHistogram:
			inst.hist = newHistogram()
		}
		f.instances[key] = inst
	}
	return inst
}

// --- Counters ---

// Counter is a monotonically increasing value.  Nil-safe.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative n is ignored: counters are monotonic).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value reads the current total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil || r.inert {
		return nil
	}
	return r.family(name, help, kindCounter, nil).instance(nil).counter
}

// CounterVec is a family of counters sharing a name and label schema.
type CounterVec struct{ fam *family }

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil || r.inert {
		return nil
	}
	return &CounterVec{fam: r.family(name, help, kindCounter, labels)}
}

// With resolves the counter for the given label values.  Resolve once and
// keep the handle: With takes a lock.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.fam.instance(values).counter
}

// --- Gauges ---

// Gauge is a value that can go up and down.  Nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by n (n may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value reads the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil || r.inert {
		return nil
	}
	return r.family(name, help, kindGauge, nil).instance(nil).gauge
}

// GaugeVec is a family of gauges sharing a name and label schema.
type GaugeVec struct{ fam *family }

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil || r.inert {
		return nil
	}
	return &GaugeVec{fam: r.family(name, help, kindGauge, labels)}
}

// With resolves the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.fam.instance(values).gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// Re-registering the same name replaces the callback — the latest engine
// wins, which is what a test process that opens engines serially wants.
// fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.funcMetric(name, help, kindGaugeFunc, nil, nil, fn)
}

// GaugeFuncVec registers a labeled scrape-time gauge.
func (r *Registry) GaugeFuncVec(name, help string, labels, values []string, fn func() float64) {
	r.funcMetric(name, help, kindGaugeFunc, labels, values, fn)
}

// CounterFunc registers a counter whose value is read at scrape time from
// an external cumulative source (e.g. a subsystem's own atomic stats).
// Exposed with TYPE counter; the same replace-on-reregister rule applies.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.funcMetric(name, help, kindCounterFunc, nil, nil, fn)
}

// CounterFuncVec registers a labeled scrape-time counter.
func (r *Registry) CounterFuncVec(name, help string, labels, values []string, fn func() float64) {
	r.funcMetric(name, help, kindCounterFunc, labels, values, fn)
}

func (r *Registry) funcMetric(name, help string, kind metricKind, labels, values []string, fn func() float64) {
	if r == nil || r.inert || fn == nil {
		return
	}
	inst := r.family(name, help, kind, labels).instance(values)
	inst.fnp.Store(&fn)
}

// --- Histograms ---

// Histogram records a latency distribution in fixed exponential buckets:
// 31 bounds from 256 ns doubling to ~137 s, plus an overflow bucket.  One
// observation is two atomic adds plus a CAS loop for the max — no locks,
// no allocation.  Quantiles are read from bucket upper bounds
// (conservative: the true quantile is ≤ the reported one), max is exact.
type Histogram struct {
	buckets [numBuckets + 1]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
}

const (
	numBuckets   = 30
	bucketBaseNs = 256 // bounds[i] = 256ns << i
)

func newHistogram() *Histogram { return &Histogram{} }

// bucketBoundNs returns the inclusive upper bound of bucket i in
// nanoseconds.
func bucketBoundNs(i int) int64 { return int64(bucketBaseNs) << uint(i) }

// bucketIndex maps a duration to its bucket: the smallest bound ≥ ns, or
// the overflow bucket.
func bucketIndex(ns int64) int {
	if ns <= bucketBaseNs {
		return 0
	}
	// 256<<i >= ns  ⇔  i >= bits needed beyond the base.
	i := bits.Len64(uint64(ns-1)) - 8 // 256 = 1<<8
	if i > numBuckets {
		return numBuckets
	}
	return i
}

// Observe records one duration.  Nil-safe.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Since is shorthand for Observe(time.Since(start)).
func (h *Histogram) Since(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start))
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNs.Load())
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.maxNs.Load())
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1) from the
// bucket the rank falls into; the overflow bucket reports the exact max.
// Returns 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := 0; i <= numBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == numBuckets {
				return time.Duration(h.maxNs.Load())
			}
			bound := bucketBoundNs(i)
			if m := h.maxNs.Load(); m < bound {
				return time.Duration(m) // all observations are ≤ max
			}
			return time.Duration(bound)
		}
	}
	return time.Duration(h.maxNs.Load())
}

// Histogram registers (or finds) an unlabeled histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil || r.inert {
		return nil
	}
	return r.family(name, help, kindHistogram, nil).instance(nil).hist
}

// HistogramVec is a family of histograms sharing a name and label schema.
type HistogramVec struct{ fam *family }

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, labels ...string) *HistogramVec {
	if r == nil || r.inert {
		return nil
	}
	return &HistogramVec{fam: r.family(name, help, kindHistogram, labels)}
}

// With resolves the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.fam.instance(values).hist
}

// --- Read-side helpers ---

// value reads an instance's scalar for exposition (not histograms).
func (inst *instance) value() float64 {
	switch inst.fam.kind {
	case kindCounter:
		return float64(inst.counter.Value())
	case kindGauge:
		return float64(inst.gauge.Value())
	case kindGaugeFunc, kindCounterFunc:
		if p := inst.fnp.Load(); p != nil {
			return (*p)()
		}
		return 0
	}
	return 0
}

// sortedFamilies snapshots families in name order; within a family,
// instances in label-value order.  Deterministic output enables golden
// tests and stable diffs of scrapes.
func (r *Registry) sortedFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) sortedInstances() []*instance {
	f.mu.Lock()
	insts := make([]*instance, 0, len(f.instances))
	for _, inst := range f.instances {
		insts = append(insts, inst)
	}
	f.mu.Unlock()
	sort.Slice(insts, func(i, j int) bool {
		return strings.Join(insts[i].values, "\xff") < strings.Join(insts[j].values, "\xff")
	})
	return insts
}

// Value returns the current value of the (name, label-values) series and
// whether it exists.  Histograms report their observation count.
func (r *Registry) Value(name string, values ...string) (float64, bool) {
	if r == nil || r.inert {
		return 0, false
	}
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	inst, ok := f.instances[key]
	f.mu.Unlock()
	if !ok {
		return 0, false
	}
	if f.kind == kindHistogram {
		return float64(inst.hist.Count()), true
	}
	return inst.value(), true
}

// Sum adds up every instance of a family (all label combinations):
// convenient for "total requests regardless of route".  Histograms
// contribute their observation counts.
func (r *Registry) Sum(name string) float64 {
	if r == nil || r.inert {
		return 0
	}
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	var total float64
	for _, inst := range f.sortedInstances() {
		if f.kind == kindHistogram {
			total += float64(inst.hist.Count())
		} else {
			total += inst.value()
		}
	}
	return total
}
