// Package cli implements the forkbase command-line interface — the
// "Command Line scripting" entry point of the paper's Fig 1, exposing the
// full operation set: Put Get List Branch Merge Diff Head Latest Meta
// Rename Stat Export Verify History.
package cli

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"forkbase"
	"forkbase/internal/index"
	"forkbase/internal/pos"
	"forkbase/internal/value"
)

// Run executes a CLI invocation and returns a process exit code.
func Run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("forkbase", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "file-backed data directory (default: in-memory)")
	remote := fs.String("remote", "", "comma-separated server addresses (first is master)")
	indexKind := fs.String("index", "", "index structure for new composite values: pos|mpt (default pos)")
	fs.Usage = func() { usage(stderr, fs) }
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rest := fs.Args()
	if len(rest) == 0 {
		usage(stderr, fs)
		return 2
	}

	var opts []forkbase.Option
	switch {
	case *remote != "":
		opts = append(opts, forkbase.Remote(strings.Split(*remote, ",")...))
	case *dir != "":
		opts = append(opts, forkbase.FileBacked(*dir))
	}
	if *indexKind != "" {
		k, err := index.ParseKind(*indexKind)
		if err != nil {
			fmt.Fprintf(stderr, "forkbase: %v\n", err)
			return 2
		}
		opts = append(opts, forkbase.WithIndex(k))
	}
	db, err := forkbase.Open(opts...)
	if err != nil {
		fmt.Fprintf(stderr, "forkbase: %v\n", err)
		return 1
	}
	defer db.Close()

	cmd, cmdArgs := rest[0], rest[1:]
	handler, ok := commands[cmd]
	if !ok {
		fmt.Fprintf(stderr, "forkbase: unknown command %q\n", cmd)
		usage(stderr, fs)
		return 2
	}
	if err := handler(db, cmdArgs, stdout); err != nil {
		fmt.Fprintf(stderr, "forkbase %s: %v\n", cmd, err)
		return 1
	}
	return 0
}

func usage(w io.Writer, fs *flag.FlagSet) {
	fmt.Fprintln(w, "usage: forkbase [-dir DIR | -remote ADDRS] COMMAND [ARGS]")
	fmt.Fprintln(w, "\ncommands:")
	names := make([]string, 0, len(commands))
	for n := range commands {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "  %-8s %s\n", n, commandHelp[n])
	}
	fmt.Fprintln(w, "\nflags:")
	fs.PrintDefaults()
}

type command func(db *forkbase.DB, args []string, out io.Writer) error

var commandHelp = map[string]string{
	"put":     "put KEY VALUE [-branch B] [-meta k=v ...]   write a string value",
	"get":     "get KEY [-branch B] [-uid UID]              read a value",
	"list":    "list                                        list keys",
	"branch":  "branch KEY NEW [FROM]                       fork a branch",
	"merge":   "merge KEY INTO FROM [-resolve ours|theirs]  three-way merge",
	"diff":    "diff KEY FROM TO                            differential query",
	"head":    "head KEY [BRANCH]                           branch head uid",
	"latest":  "latest KEY                                  newest version anywhere",
	"meta":    "meta KEY [-branch B]                        version metadata",
	"rename":  "rename KEY OLD NEW                          rename a branch",
	"stat":    "stat KEY [-branch B]                        dataset statistics",
	"export":  "export KEY [-branch B]                      dataset as CSV to stdout",
	"import":  "import KEY CSVFILE [-branch B] [-key COL] [-append]  CSV file as dataset (-append bulk-upserts into the existing one)",
	"history": "history KEY [-branch B] [-n N]              version chain",
	"verify":  "verify KEY [-uid UID] [-deep]               tamper validation",
	"stats":   "stats                                       store dedup accounting, health, feed lag",
	"metrics": "metrics [-addr HTTPADDR]                    metrics snapshot as JSON (local engine, or a node's /v1/metrics.json)",
	"gc":      "gc                                          collect unreachable chunks",
	"scrub":   "scrub                                       verify on-disk chunks, quarantine damage (-dir only)",
	"heal":    "heal -from ADDR                             refetch missing/corrupt chunks from a peer",
}

var commands = map[string]command{
	"put":     cmdPut,
	"get":     cmdGet,
	"list":    cmdList,
	"branch":  cmdBranch,
	"merge":   cmdMerge,
	"diff":    cmdDiff,
	"head":    cmdHead,
	"latest":  cmdLatest,
	"meta":    cmdMeta,
	"rename":  cmdRename,
	"stat":    cmdStat,
	"export":  cmdExport,
	"import":  cmdImport,
	"history": cmdHistory,
	"verify":  cmdVerify,
	"stats":   cmdStats,
	"metrics": cmdMetrics,
	"gc":      cmdGC,
	"scrub":   cmdScrub,
	"heal":    cmdHeal,
}

func cmdPut(db *forkbase.DB, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("put", flag.ContinueOnError)
	branch := fs.String("branch", "", "target branch")
	var metas multiFlag
	fs.Var(&metas, "meta", "k=v metadata (repeatable)")
	pos, err := parseArgs(fs, args, 2)
	if err != nil {
		return err
	}
	key, val := pos[0], pos[1]
	meta := map[string]string{}
	for _, m := range metas {
		k, v, ok := strings.Cut(m, "=")
		if !ok {
			return fmt.Errorf("bad -meta %q, want k=v", m)
		}
		meta[k] = v
	}
	ver, err := db.PutString(key, *branch, val, meta)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, ver.UID)
	return nil
}

func cmdGet(db *forkbase.DB, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("get", flag.ContinueOnError)
	branch := fs.String("branch", "", "branch")
	uidStr := fs.String("uid", "", "specific version uid")
	pos, err := parseArgs(fs, args, 1)
	if err != nil {
		return err
	}
	key := pos[0]
	var ver forkbase.Version
	if *uidStr != "" {
		uid, perr := parseHash(*uidStr)
		if perr != nil {
			return perr
		}
		ver, err = db.GetVersion(key, uid)
	} else {
		ver, err = db.Get(key, *branch)
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(out, ver.Value.Display())
	return nil
}

func cmdList(db *forkbase.DB, args []string, out io.Writer) error {
	keys, err := db.ListKeys()
	if err != nil {
		return err
	}
	for _, k := range keys {
		branches, err := db.ListBranches(k)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s\t[%s]\n", k, strings.Join(branches, " "))
	}
	return nil
}

func cmdBranch(db *forkbase.DB, args []string, out io.Writer) error {
	if len(args) < 2 || len(args) > 3 {
		return errors.New("usage: branch KEY NEW [FROM]")
	}
	from := ""
	if len(args) == 3 {
		from = args[2]
	}
	if err := db.Branch(args[0], args[1], from); err != nil {
		return err
	}
	uid, err := db.Head(args[0], args[1])
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "branch %s created at %s\n", args[1], uid)
	return nil
}

func cmdMerge(db *forkbase.DB, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("merge", flag.ContinueOnError)
	resolve := fs.String("resolve", "", "conflict resolution: ours|theirs")
	msg := fs.String("m", "", "merge message")
	p, err := parseArgs(fs, args, 3)
	if err != nil {
		return err
	}
	var resolver forkbase.Resolver
	switch *resolve {
	case "":
	case "ours":
		resolver = forkbase.ResolveOurs
	case "theirs":
		resolver = forkbase.ResolveTheirs
	default:
		return fmt.Errorf("bad -resolve %q", *resolve)
	}
	meta := map[string]string{}
	if *msg != "" {
		meta["message"] = *msg
	}
	res, err := db.Merge(p[0], p[1], p[2], resolver, meta)
	if err != nil {
		var ce *pos.ErrConflict
		if errors.As(err, &ce) {
			for _, c := range ce.Conflicts {
				fmt.Fprintf(out, "CONFLICT %s: ours=%q theirs=%q base=%q\n", c.Key, c.A, c.B, c.Base)
			}
		}
		return err
	}
	if res.FastForward {
		fmt.Fprintf(out, "fast-forward to %s\n", res.Version.UID)
	} else {
		fmt.Fprintf(out, "merged as %s (%d chunks reused, %d new)\n",
			res.Version.UID, res.Stats.ReusedChunks, res.Stats.NewChunks)
	}
	return nil
}

func cmdDiff(db *forkbase.DB, args []string, out io.Writer) error {
	if len(args) != 3 {
		return errors.New("usage: diff KEY FROM TO")
	}
	key, from, to := args[0], args[1], args[2]
	// Datasets get cell-level output; plain maps get key-level.
	if res, err := db.DiffDatasets(key, from, to); err == nil {
		for _, d := range res.Deltas {
			switch {
			case d.From == nil:
				fmt.Fprintf(out, "+ %s\t%s\n", d.Key, strings.Join(d.To, ","))
			case d.To == nil:
				fmt.Fprintf(out, "- %s\t%s\n", d.Key, strings.Join(d.From, ","))
			default:
				fmt.Fprintf(out, "~ %s", d.Key)
				for _, c := range d.Cells {
					fmt.Fprintf(out, "\t%s: %q -> %q", c.Column, c.From, c.To)
				}
				fmt.Fprintln(out)
			}
		}
		fmt.Fprintln(out, res.Summary())
		return nil
	}
	deltas, stats, err := db.DiffBranches(key, from, to)
	if err != nil {
		return err
	}
	for _, d := range deltas {
		switch d.Kind() {
		case pos.Added:
			fmt.Fprintf(out, "+ %s\t%s\n", d.Key, d.To)
		case pos.Removed:
			fmt.Fprintf(out, "- %s\t%s\n", d.Key, d.From)
		default:
			fmt.Fprintf(out, "~ %s\t%q -> %q\n", d.Key, d.From, d.To)
		}
	}
	fmt.Fprintf(out, "%d deltas (%d pages touched)\n", len(deltas), stats.TouchedChunks)
	return nil
}

func cmdHead(db *forkbase.DB, args []string, out io.Writer) error {
	if len(args) < 1 || len(args) > 2 {
		return errors.New("usage: head KEY [BRANCH]")
	}
	branch := ""
	if len(args) == 2 {
		branch = args[1]
	}
	uid, err := db.Head(args[0], branch)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, uid)
	return nil
}

func cmdLatest(db *forkbase.DB, args []string, out io.Writer) error {
	if len(args) != 1 {
		return errors.New("usage: latest KEY")
	}
	branch, ver, err := db.Latest(args[0])
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s@%s seq=%d %s\n", args[0], branch, ver.Seq, ver.UID)
	return nil
}

func cmdMeta(db *forkbase.DB, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("meta", flag.ContinueOnError)
	branch := fs.String("branch", "", "branch")
	pos, err := parseArgs(fs, args, 1)
	if err != nil {
		return err
	}
	ver, err := db.Get(pos[0], *branch)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "uid:  %s\nseq:  %d\nkind: %s\n", ver.UID, ver.Seq, ver.Value.Kind())
	if k := ver.Value.Kind(); k == value.KindMap || k == value.KindSet {
		fmt.Fprintf(out, "index: %s\n", ver.Index)
	}
	for _, b := range ver.Bases {
		fmt.Fprintf(out, "base: %s\n", b)
	}
	keys := make([]string, 0, len(ver.Meta))
	for k := range ver.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(out, "meta: %s=%s\n", k, ver.Meta[k])
	}
	return nil
}

func cmdRename(db *forkbase.DB, args []string, out io.Writer) error {
	if len(args) != 3 {
		return errors.New("usage: rename KEY OLD NEW")
	}
	if err := db.RenameBranch(args[0], args[1], args[2]); err != nil {
		return err
	}
	fmt.Fprintf(out, "renamed %s -> %s\n", args[1], args[2])
	return nil
}

func cmdStat(db *forkbase.DB, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stat", flag.ContinueOnError)
	branch := fs.String("branch", "", "branch")
	pos, err := parseArgs(fs, args, 1)
	if err != nil {
		return err
	}
	ds, err := db.OpenDataset(pos[0], *branch)
	if err != nil {
		return err
	}
	st, err := ds.Stat()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "dataset:  %s@%s\nrows:     %d\ncolumns:  %d\nversions: %d\nindex:    %s\n",
		st.Name, st.Branch, st.Rows, st.Columns, st.Versions, st.Index)
	fmt.Fprintf(out, "tree:     height=%d nodes=%d leaf-bytes=%d avg-leaf=%.0f\n",
		st.Tree.Height, st.Tree.Nodes, st.Tree.LeafBytes, st.Tree.AvgLeaf())
	return nil
}

func cmdExport(db *forkbase.DB, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	branch := fs.String("branch", "", "branch")
	pos, err := parseArgs(fs, args, 1)
	if err != nil {
		return err
	}
	ds, err := db.OpenDataset(pos[0], *branch)
	if err != nil {
		return err
	}
	return ds.ExportCSV(out)
}

func cmdImport(db *forkbase.DB, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("import", flag.ContinueOnError)
	branch := fs.String("branch", "", "branch")
	keyCol := fs.String("key", "id", "primary key column")
	appendRows := fs.Bool("append", false, "bulk-upsert rows into the existing dataset instead of creating a fresh version from scratch")
	pos, err := parseArgs(fs, args, 2)
	if err != nil {
		return err
	}
	f, err := os.Open(pos[1])
	if err != nil {
		return err
	}
	defer f.Close()
	if *appendRows {
		keySet := false
		fs.Visit(func(f *flag.Flag) { keySet = keySet || f.Name == "key" })
		if keySet {
			return errors.New("-key applies only to fresh imports; -append keys rows by the existing dataset schema")
		}
		cur, err := db.OpenDataset(pos[0], *branch)
		if err != nil {
			return err
		}
		ds, err := cur.AppendCSV(f, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "appended to %d rows as %s\n", ds.Rows(), ds.Version().UID)
		return nil
	}
	ds, err := db.LoadCSVDataset(pos[0], *branch, *keyCol, f, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "imported %d rows as %s\n", ds.Rows(), ds.Version().UID)
	return nil
}

func cmdHistory(db *forkbase.DB, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("history", flag.ContinueOnError)
	branch := fs.String("branch", "", "branch")
	n := fs.Int("n", 0, "limit")
	pos, err := parseArgs(fs, args, 1)
	if err != nil {
		return err
	}
	versions, err := db.History(pos[0], *branch, *n)
	if err != nil {
		return err
	}
	for _, v := range versions {
		msg := v.Meta["message"]
		fmt.Fprintf(out, "%s seq=%d %s %s\n", v.UID, v.Seq, v.Value.Kind(), msg)
	}
	return nil
}

func cmdVerify(db *forkbase.DB, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	uidStr := fs.String("uid", "", "version uid (default: master head)")
	deep := fs.Bool("deep", false, "verify full derivation history")
	pos, err := parseArgs(fs, args, 1)
	if err != nil {
		return err
	}
	key := pos[0]
	var uid forkbase.Hash
	if *uidStr != "" {
		var err error
		if uid, err = parseHash(*uidStr); err != nil {
			return err
		}
	} else {
		var err error
		if uid, err = db.Head(key, ""); err != nil {
			return err
		}
	}
	rep, err := db.Verify(key, uid, *deep)
	fmt.Fprintf(out, "uid:      %s\nchunks:   %d\nversions: %d\n", rep.UID, rep.ChunksChecked, rep.VersionsChecked)
	if err != nil {
		for _, f := range rep.Failures {
			fmt.Fprintf(out, "TAMPERED: %s (%s): %v\n", f.ChunkID, f.Context, f.Err)
		}
		return err
	}
	fmt.Fprintln(out, "status:   OK — content and history verified")
	return nil
}

func cmdStats(db *forkbase.DB, args []string, out io.Writer) error {
	s := db.Stats()
	fmt.Fprintf(out, "unique chunks:  %d\nphysical bytes: %d\nlogical bytes:  %d\ndedup ratio:    %.2fx\ndedup hits:     %d\nindex:          %s\n",
		s.UniqueChunks, s.PhysicalBytes, s.LogicalBytes, s.DedupRatio(), s.DedupHits, db.IndexKind())
	if err := db.StoreHealth(); err != nil {
		fmt.Fprintf(out, "health:         %v\n", err)
	} else {
		fmt.Fprintln(out, "health:         ok")
	}
	if vs := db.VerifyCacheStats(); vs.Enabled {
		fmt.Fprintf(out, "verify cache:   %d hits / %d misses / %d invalidations, %d hashes skipped, %d entries\n",
			vs.Hits, vs.Misses, vs.Invalidations, vs.SkippedHashes, vs.Entries)
	} else {
		fmt.Fprintf(out, "verify cache:   off (%d hashes skipped by provenance)\n", vs.SkippedHashes)
	}
	if db.Following() {
		if lag, err := db.FeedLag(); err == nil {
			fmt.Fprintf(out, "feed lag:       %d\n", lag)
		} else {
			fmt.Fprintf(out, "feed lag:       unknown (%v)\n", err)
		}
	}
	return nil
}

// cmdMetrics prints a metrics snapshot as JSON: the local engine's registry
// by default, or — with -addr — a running node's /v1/metrics.json, so one
// verb inspects both embedded and daemon deployments.
func cmdMetrics(db *forkbase.DB, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	addr := fs.String("addr", "", "REST address of a running node (fetches /v1/metrics.json)")
	if _, err := parseArgs(fs, args, 0); err != nil {
		return err
	}
	if *addr != "" {
		url := *addr
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		resp, err := http.Get(strings.TrimSuffix(url, "/") + "/v1/metrics.json")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET /v1/metrics.json: %s", resp.Status)
		}
		_, err = io.Copy(out, resp.Body)
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(db.MetricsSnapshot())
}

func cmdGC(db *forkbase.DB, args []string, out io.Writer) error {
	stats, err := db.GC()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "live chunks:  %d\nswept chunks: %d\nswept bytes:  %d\nreclaimed:    %d bytes\n",
		stats.Live, stats.Swept, stats.SweptBytes, stats.ReclaimedBytes)
	if stats.CompactedSegments > 0 {
		fmt.Fprintf(out, "compacted:    %d segments (%d live chunks rewritten)\n",
			stats.CompactedSegments, stats.Relocated)
	}
	return nil
}

func cmdScrub(db *forkbase.DB, args []string, out io.Writer) error {
	st, err := db.Scrub()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "segments:     %d (%d bytes scanned)\nok chunks:    %d\ncorrupt:      %d\ntorn:         %d\nunreadable:   %d\n",
		st.Segments, st.ScannedBytes, st.Ok, st.Corrupt, st.Torn, st.Unreadable)
	if st.QuarantinedSegments > 0 {
		fmt.Fprintf(out, "quarantined:  %d segment(s), %d record(s) rescued\n", st.QuarantinedSegments, st.Rescued)
	}
	for _, id := range st.Lost {
		fmt.Fprintf(out, "lost:         %s\n", id)
	}
	if err := db.StoreHealth(); err != nil {
		fmt.Fprintf(out, "health:       %v\n", err)
		fmt.Fprintln(out, "run `forkbase heal -from ADDR` against a peer holding an intact copy")
	} else {
		fmt.Fprintln(out, "health:       ok")
	}
	return nil
}

func cmdHeal(db *forkbase.DB, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("heal", flag.ContinueOnError)
	from := fs.String("from", "", "forkbased peer address holding an intact copy")
	if _, err := parseArgs(fs, args, 0); err != nil {
		return err
	}
	if *from == "" {
		return errors.New("need -from ADDR")
	}
	st, err := db.HealFrom(*from)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "branches:     %d\nchecked:      %d\nmissing:      %d\ncorrupt:      %d\nrepaired:     %d (%d bytes fetched)\n",
		st.Branches, st.Checked, st.Missing, st.Corrupt, st.Repaired, st.BytesFetched)
	if err := db.StoreHealth(); err != nil {
		fmt.Fprintf(out, "health:       %v\n", err)
	} else {
		fmt.Fprintln(out, "health:       ok")
	}
	return nil
}

// --- helpers -----------------------------------------------------------------

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

// parseArgs parses args allowing flags and positionals to be interspersed
// (the flag package stops at the first positional otherwise) and returns the
// positional arguments in order.
func parseArgs(fs *flag.FlagSet, args []string, minPos int) ([]string, error) {
	fs.SetOutput(io.Discard)
	var pos []string
	for {
		if err := fs.Parse(args); err != nil {
			return nil, err
		}
		if fs.NArg() == 0 {
			break
		}
		pos = append(pos, fs.Arg(0))
		args = fs.Args()[1:]
	}
	if len(pos) < minPos {
		return nil, fmt.Errorf("need at least %d argument(s)", minPos)
	}
	return pos, nil
}

func parseHash(s string) (forkbase.Hash, error) {
	return forkbase.ParseHash(s)
}
