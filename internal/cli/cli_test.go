package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"forkbase"
)

// run executes the CLI against a shared file-backed directory so state
// persists across invocations, mimicking real usage.
func run(t *testing.T, dir string, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := Run(append([]string{"-dir", dir}, args...), &out, &errb)
	return out.String(), errb.String(), code
}

func TestPutGetFlow(t *testing.T) {
	dir := t.TempDir()
	out, errs, code := run(t, dir, "put", "greeting", "hello world")
	if code != 0 {
		t.Fatalf("put failed: %s", errs)
	}
	uid := strings.TrimSpace(out)
	if len(uid) != 52 {
		t.Fatalf("uid = %q", uid)
	}
	out, _, code = run(t, dir, "get", "greeting")
	if code != 0 || strings.TrimSpace(out) != "hello world" {
		t.Fatalf("get = %q (%d)", out, code)
	}
	out, _, code = run(t, dir, "get", "greeting", "-uid", uid)
	if code != 0 || strings.TrimSpace(out) != "hello world" {
		t.Fatalf("get -uid = %q (%d)", out, code)
	}
}

func TestBranchMergeDiffFlow(t *testing.T) {
	dir := t.TempDir()
	run(t, dir, "put", "obj", "base")
	out, errs, code := run(t, dir, "branch", "obj", "dev")
	if code != 0 || !strings.Contains(out, "branch dev created") {
		t.Fatalf("branch: %q %q", out, errs)
	}
	run(t, dir, "put", "obj", "dev-edit", "-branch", "dev")
	out, _, code = run(t, dir, "head", "obj", "dev")
	if code != 0 || len(strings.TrimSpace(out)) != 52 {
		t.Fatalf("head: %q", out)
	}
	out, _, code = run(t, dir, "latest", "obj")
	if code != 0 || !strings.Contains(out, "obj@dev seq=2") {
		t.Fatalf("latest: %q", out)
	}
	out, _, code = run(t, dir, "merge", "obj", "master", "dev")
	if code != 0 || !strings.Contains(out, "fast-forward") {
		t.Fatalf("merge: %q", out)
	}
	out, _, code = run(t, dir, "history", "obj")
	if code != 0 || len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Fatalf("history: %q", out)
	}
}

func TestImportExportStatDiff(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "in.csv")
	csv := "id,name\n1,ann\n2,bo\n3,cy\n"
	if err := os.WriteFile(csvPath, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	out, errs, code := run(t, dir, "import", "people", csvPath)
	if code != 0 || !strings.Contains(out, "imported 3 rows") {
		t.Fatalf("import: %q %q", out, errs)
	}
	out, _, code = run(t, dir, "export", "people")
	if code != 0 || out != csv {
		t.Fatalf("export: %q", out)
	}
	out, _, code = run(t, dir, "stat", "people")
	if code != 0 || !strings.Contains(out, "rows:     3") {
		t.Fatalf("stat: %q", out)
	}

	// Branch, edit via import on the branch, then diff.
	run(t, dir, "branch", "people", "vendor")
	csv2 := "id,name\n1,ann\n2,bob\n4,dee\n"
	if err := os.WriteFile(csvPath, []byte(csv2), 0o644); err != nil {
		t.Fatal(err)
	}
	_, errs, code = run(t, dir, "import", "people", csvPath, "-branch", "vendor")
	if code != 0 {
		t.Fatalf("import branch: %q", errs)
	}
	out, _, code = run(t, dir, "diff", "people", "master", "vendor")
	if code != 0 {
		t.Fatalf("diff: %q", out)
	}
	if !strings.Contains(out, "~ 2") || !strings.Contains(out, "- 3") || !strings.Contains(out, "+ 4") {
		t.Fatalf("diff output: %q", out)
	}
}

func TestMetaRenameListStats(t *testing.T) {
	dir := t.TempDir()
	run(t, dir, "put", "k", "v", "-meta", "author=alice", "-meta", "tag=x")
	out, _, code := run(t, dir, "meta", "k")
	if code != 0 || !strings.Contains(out, "meta: author=alice") || !strings.Contains(out, "kind: string") {
		t.Fatalf("meta: %q", out)
	}
	run(t, dir, "branch", "k", "tmp")
	out, _, code = run(t, dir, "rename", "k", "tmp", "perm")
	if code != 0 || !strings.Contains(out, "renamed") {
		t.Fatalf("rename: %q", out)
	}
	out, _, code = run(t, dir, "list")
	if code != 0 || !strings.Contains(out, "k\t[master perm]") {
		t.Fatalf("list: %q", out)
	}
	out, _, code = run(t, dir, "stats")
	if code != 0 || !strings.Contains(out, "unique chunks") {
		t.Fatalf("stats: %q", out)
	}
}

func TestVerifyCommand(t *testing.T) {
	dir := t.TempDir()
	run(t, dir, "put", "k", "payload")
	out, _, code := run(t, dir, "verify", "k", "-deep")
	if code != 0 || !strings.Contains(out, "OK — content and history verified") {
		t.Fatalf("verify: %q", out)
	}
}

func TestErrorExitCodes(t *testing.T) {
	dir := t.TempDir()
	for _, args := range [][]string{
		{"get", "missing"},
		{"head", "missing"},
		{"nonsense"},
		{"merge", "a"},  // too few args
		{"branch", "a"}, // too few args
		{"put", "k", "v", "-meta", "malformed"},
	} {
		if _, _, code := run(t, dir, args...); code == 0 {
			t.Fatalf("args %v exited 0", args)
		}
	}
	// No command at all.
	var out, errb bytes.Buffer
	if code := Run(nil, &out, &errb); code == 0 {
		t.Fatal("empty invocation exited 0")
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Fatalf("no usage text: %q", errb.String())
	}
}

func TestImportAppend(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "in.csv")
	if err := os.WriteFile(csvPath, []byte("id,name\n1,ann\n2,bo\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, errs, code := run(t, dir, "import", "people", csvPath)
	if code != 0 {
		t.Fatalf("import: %q", errs)
	}
	// Bulk-upsert a delta into the existing dataset.
	if err := os.WriteFile(csvPath, []byte("id,name\n2,bobby\n3,cy\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, errs, code := run(t, dir, "import", "people", csvPath, "-append")
	if code != 0 || !strings.Contains(out, "appended to 3 rows") {
		t.Fatalf("append: %q %q", out, errs)
	}
	out, _, code = run(t, dir, "export", "people")
	if code != 0 || !strings.Contains(out, "bobby") || !strings.Contains(out, "3,cy") {
		t.Fatalf("export after append: %q", out)
	}
	// Two versions in history now.
	out, _, code = run(t, dir, "history", "people")
	if code != 0 || strings.Count(out, "\n") < 2 {
		t.Fatalf("history: %q", out)
	}
	// Appending to a missing dataset fails with a nonzero exit.
	if _, _, code := run(t, dir, "import", "ghost", csvPath, "-append"); code == 0 {
		t.Fatal("append to missing dataset succeeded")
	}
}

func TestGCCommand(t *testing.T) {
	dir := t.TempDir()
	run(t, dir, "put", "keep", "survivor")
	// Churn: data reachable only from a branch, then the branch goes away.
	if _, errs, code := run(t, dir, "put", "churn", strings.Repeat("garbage ", 200), "-branch", "tmp"); code != 0 {
		t.Fatalf("churn put: %s", errs)
	}
	out, errs, code := run(t, dir, "gc")
	if code != 0 {
		t.Fatalf("gc on file-backed store failed: %s", errs)
	}
	if !strings.Contains(out, "swept chunks: 0") {
		t.Fatalf("gc swept reachable data:\n%s", out)
	}
	// Deleting the only branch of churn orphans its chunks.
	db := openTestDB(t, dir)
	if err := db.DeleteBranch("churn", "tmp"); err != nil {
		t.Fatal(err)
	}
	db.Close()
	out, errs, code = run(t, dir, "gc")
	if code != 0 {
		t.Fatalf("gc failed: %s", errs)
	}
	if strings.Contains(out, "swept chunks: 0") || !strings.Contains(out, "reclaimed:") {
		t.Fatalf("gc reclaimed nothing after branch delete:\n%s", out)
	}
	if got, _, code := run(t, dir, "get", "keep"); code != 0 || strings.TrimSpace(got) != "survivor" {
		t.Fatalf("live data lost after gc: %q (%d)", got, code)
	}
}

// openTestDB opens the CLI's file-backed store directly, for state the
// command surface cannot reach (branch deletion).
func openTestDB(t *testing.T, dir string) *forkbase.DB {
	t.Helper()
	db, err := forkbase.Open(forkbase.FileBacked(dir))
	if err != nil {
		t.Fatal(err)
	}
	return db
}
