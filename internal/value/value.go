// Package value implements ForkBase's typed data model (paper §II):
// primitives (string, number, boolean), blob, map, set and list, each
// represented on top of the POS-Tree / chunk substrate so that every value
// is immutable, content-addressed and deduplicated.
//
// A Value is a small descriptor: primitives embed their bytes inline, while
// composite types point at a POS-Tree root.  Descriptors are what FNodes
// (version commits) embed.
package value

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"

	"forkbase/internal/chunker"
	"forkbase/internal/hash"
	"forkbase/internal/index"
	"forkbase/internal/pos"
	"forkbase/internal/store"
)

// Kind identifies a value's type.
type Kind byte

// Value kinds.
const (
	KindInvalid Kind = 0
	KindString  Kind = 1
	KindInt     Kind = 2
	KindFloat   Kind = 3
	KindBool    Kind = 4
	KindBlob    Kind = 5
	KindMap     Kind = 6
	KindSet     Kind = 7
	KindList    Kind = 8
)

func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindBlob:
		return "blob"
	case KindMap:
		return "map"
	case KindSet:
		return "set"
	case KindList:
		return "list"
	default:
		return fmt.Sprintf("invalid(%d)", byte(k))
	}
}

// Composite reports whether the kind stores its payload in a POS-Tree.
func (k Kind) Composite() bool { return k >= KindBlob && k <= KindList }

// Value is an immutable typed value descriptor.
type Value struct {
	kind   Kind
	inline []byte    // primitive payload
	root   hash.Hash // composite index root
	count  uint64    // composite cardinality (entries, items or bytes)

	// idx/idxKnown carry the index structure of a map/set value *in
	// memory only* (the encoding stays untouched; persistence records the
	// kind on the FNode).  Values built through constructors know their
	// structure, so write paths need not re-read the root chunk to learn
	// it; values decoded from stored descriptors sniff on demand.
	idx      index.Kind
	idxKnown bool
}

// ErrWrongKind is returned by typed accessors used on the wrong kind.
var ErrWrongKind = errors.New("value: wrong kind")

// ErrBadDescriptor is returned when decoding a malformed value descriptor.
var ErrBadDescriptor = errors.New("value: malformed descriptor")

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// Root returns the composite root hash; zero for primitives and empties.
func (v Value) Root() hash.Hash { return v.root }

// Count returns the composite cardinality.
func (v Value) Count() uint64 { return v.count }

// String constructs a string value.
func String(s string) Value { return Value{kind: KindString, inline: []byte(s)} }

// Int constructs an integer value.
func Int(i int64) Value {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(i))
	return Value{kind: KindInt, inline: b[:]}
}

// Float constructs a float value.
func Float(f float64) Value {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
	return Value{kind: KindFloat, inline: b[:]}
}

// Bool constructs a boolean value.
func Bool(b bool) Value {
	if b {
		return Value{kind: KindBool, inline: []byte{1}}
	}
	return Value{kind: KindBool, inline: []byte{0}}
}

// AsString returns the string payload.
func (v Value) AsString() (string, error) {
	if v.kind != KindString {
		return "", fmt.Errorf("%w: have %s want string", ErrWrongKind, v.kind)
	}
	return string(v.inline), nil
}

// AsInt returns the integer payload.
func (v Value) AsInt() (int64, error) {
	if v.kind != KindInt || len(v.inline) != 8 {
		return 0, fmt.Errorf("%w: have %s want int", ErrWrongKind, v.kind)
	}
	return int64(binary.LittleEndian.Uint64(v.inline)), nil
}

// AsFloat returns the float payload.
func (v Value) AsFloat() (float64, error) {
	if v.kind != KindFloat || len(v.inline) != 8 {
		return 0, fmt.Errorf("%w: have %s want float", ErrWrongKind, v.kind)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(v.inline)), nil
}

// AsBool returns the boolean payload.
func (v Value) AsBool() (bool, error) {
	if v.kind != KindBool || len(v.inline) != 1 {
		return false, fmt.Errorf("%w: have %s want bool", ErrWrongKind, v.kind)
	}
	return v.inline[0] != 0, nil
}

// Display renders a short human-readable form (CLI / REST output).
func (v Value) Display() string {
	switch v.kind {
	case KindString:
		return string(v.inline)
	case KindInt:
		i, _ := v.AsInt()
		return strconv.FormatInt(i, 10)
	case KindFloat:
		f, _ := v.AsFloat()
		return strconv.FormatFloat(f, 'g', -1, 64)
	case KindBool:
		b, _ := v.AsBool()
		return strconv.FormatBool(b)
	case KindBlob:
		return fmt.Sprintf("blob(%d bytes, %s)", v.count, v.root.Short())
	case KindMap:
		return fmt.Sprintf("map(%d entries, %s)", v.count, v.root.Short())
	case KindSet:
		return fmt.Sprintf("set(%d elements, %s)", v.count, v.root.Short())
	case KindList:
		return fmt.Sprintf("list(%d items, %s)", v.count, v.root.Short())
	default:
		return "invalid"
	}
}

// Equal reports descriptor equality.  For composites this is content
// equality thanks to structural invariance of the underlying POS-Tree.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	if v.kind.Composite() {
		return v.root == o.root
	}
	return string(v.inline) == string(o.inline)
}

// Encode renders the canonical descriptor bytes:
//
//	primitives: [kind][payload...]
//	composites: [kind][32B root][uvarint count]
func (v Value) Encode() []byte {
	if v.kind.Composite() {
		out := make([]byte, 0, 1+hash.Size+binary.MaxVarintLen64)
		out = append(out, byte(v.kind))
		out = append(out, v.root[:]...)
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], v.count)
		return append(out, tmp[:n]...)
	}
	out := make([]byte, 0, 1+len(v.inline))
	out = append(out, byte(v.kind))
	return append(out, v.inline...)
}

// Decode parses descriptor bytes produced by Encode.
func Decode(data []byte) (Value, error) {
	if len(data) < 1 {
		return Value{}, fmt.Errorf("%w: empty", ErrBadDescriptor)
	}
	k := Kind(data[0])
	payload := data[1:]
	switch k {
	case KindString, KindInt, KindFloat, KindBool:
		if (k == KindInt || k == KindFloat) && len(payload) != 8 {
			return Value{}, fmt.Errorf("%w: %s payload length %d", ErrBadDescriptor, k, len(payload))
		}
		if k == KindBool && len(payload) != 1 {
			return Value{}, fmt.Errorf("%w: bool payload length %d", ErrBadDescriptor, len(payload))
		}
		return Value{kind: k, inline: append([]byte(nil), payload...)}, nil
	case KindBlob, KindMap, KindSet, KindList:
		if len(payload) < hash.Size+1 {
			return Value{}, fmt.Errorf("%w: composite too short", ErrBadDescriptor)
		}
		var root hash.Hash
		copy(root[:], payload[:hash.Size])
		count, n := binary.Uvarint(payload[hash.Size:])
		if n <= 0 {
			return Value{}, fmt.Errorf("%w: bad count", ErrBadDescriptor)
		}
		return Value{kind: k, root: root, count: count}, nil
	default:
		return Value{}, fmt.Errorf("%w: unknown kind %d", ErrBadDescriptor, data[0])
	}
}

// --- composite constructors -------------------------------------------------

// NewMap builds a map value from entries using the default POS-Tree.
func NewMap(st store.Store, cfg chunker.Config, entries []pos.Entry) (Value, error) {
	return NewMapWith(st, cfg, index.KindPOS, entries)
}

// NewMapWith builds a map value whose entries are indexed by the given
// structure (POS-Tree, Merkle Patricia Trie, ...), dispatching through the
// index registry.
func NewMapWith(st store.Store, cfg chunker.Config, k index.Kind, entries []pos.Entry) (Value, error) {
	f, err := index.For(k)
	if err != nil {
		return Value{}, err
	}
	ix, err := f.Build(st, cfg, entries)
	if err != nil {
		return Value{}, err
	}
	return FromIndex(KindMap, ix), nil
}

// NewSetWith builds a set value over the given index structure.
func NewSetWith(st store.Store, cfg chunker.Config, k index.Kind, elems [][]byte) (Value, error) {
	entries := make([]pos.Entry, len(elems))
	for i, e := range elems {
		entries[i] = pos.Entry{Key: e, Val: nil}
	}
	f, err := index.For(k)
	if err != nil {
		return Value{}, err
	}
	ix, err := f.Build(st, cfg, entries)
	if err != nil {
		return Value{}, err
	}
	return FromIndex(KindSet, ix), nil
}

// FromIndex wraps an existing versioned index as a map or set value.
func FromIndex(kind Kind, ix index.VersionedIndex) Value {
	if kind != KindMap && kind != KindSet {
		panic(fmt.Sprintf("value: FromIndex on %s", kind))
	}
	return Value{kind: kind, root: ix.Root(), count: ix.Len(), idx: ix.Kind(), idxKnown: true}
}

// IndexKind reports the structure backing a map/set value, when the value
// was built in this process (constructors know it); ok is false for
// decoded descriptors, whose structure is sniffed from the root chunk.
func (v Value) IndexKind() (index.Kind, bool) { return v.idx, v.idxKnown }

// WithIndexKind returns the value stamped with its known index structure —
// how the engine propagates an FNode's recorded kind onto the descriptor
// it decoded, so empty values (no root chunk to sniff) keep their branch's
// structure.  A no-op for non-map/set kinds.
func (v Value) WithIndexKind(k index.Kind) Value {
	if v.kind == KindMap || v.kind == KindSet {
		v.idx, v.idxKnown = k, true
	}
	return v
}

// Index loads the versioned index backing a map or set value, sniffing the
// structure from the root chunk.  For empty values — no chunk to sniff —
// the value's own stamped kind (constructors, WithIndexKind) wins over the
// caller's hint, so a branch whose head emptied keeps its structure.
func (v Value) Index(st store.Store, cfg chunker.Config, hint index.Kind) (index.VersionedIndex, error) {
	if v.kind != KindMap && v.kind != KindSet {
		return nil, fmt.Errorf("%w: have %s want map or set", ErrWrongKind, v.kind)
	}
	if v.idxKnown {
		hint = v.idx
	}
	return index.Load(st, cfg, v.root, hint)
}

// FromMapTree wraps an existing map tree as a value.
func FromMapTree(t *pos.Tree) Value {
	return Value{kind: KindMap, root: t.Root(), count: t.Len(), idx: index.KindPOS, idxKnown: true}
}

// NewSet builds a set value from elements.
func NewSet(st store.Store, cfg chunker.Config, elems [][]byte) (Value, error) {
	entries := make([]pos.Entry, len(elems))
	for i, e := range elems {
		entries[i] = pos.Entry{Key: e, Val: nil}
	}
	t, err := pos.BuildMap(st, cfg, entries)
	if err != nil {
		return Value{}, err
	}
	return FromSetTree(t), nil
}

// FromSetTree wraps an existing set-shaped tree as a value.
func FromSetTree(t *pos.Tree) Value {
	return Value{kind: KindSet, root: t.Root(), count: t.Len(), idx: index.KindPOS, idxKnown: true}
}

// NewList builds a list value from items.
func NewList(st store.Store, cfg chunker.Config, items [][]byte) (Value, error) {
	s, err := pos.BuildSeq(st, cfg, items)
	if err != nil {
		return Value{}, err
	}
	return Value{kind: KindList, root: s.Root(), count: s.Len()}, nil
}

// FromSeq wraps an existing sequence as a list value.
func FromSeq(s *pos.Seq) Value {
	return Value{kind: KindList, root: s.Root(), count: s.Len()}
}

// NewBlob builds a blob value from raw bytes.
func NewBlob(st store.Store, cfg chunker.Config, data []byte) (Value, error) {
	b, err := pos.BuildBlob(st, cfg, data)
	if err != nil {
		return Value{}, err
	}
	return Value{kind: KindBlob, root: b.Root(), count: b.Size()}, nil
}

// FromBlob wraps an existing blob as a value.
func FromBlob(b *pos.Blob) Value {
	return Value{kind: KindBlob, root: b.Root(), count: b.Size()}
}

// --- composite accessors ----------------------------------------------------

// MapTree loads the underlying map tree of a map value.
func (v Value) MapTree(st store.Store, cfg chunker.Config) (*pos.Tree, error) {
	if v.kind != KindMap {
		return nil, fmt.Errorf("%w: have %s want map", ErrWrongKind, v.kind)
	}
	return pos.LoadTree(st, cfg, v.root)
}

// SetTree loads the underlying tree of a set value.
func (v Value) SetTree(st store.Store, cfg chunker.Config) (*pos.Tree, error) {
	if v.kind != KindSet {
		return nil, fmt.Errorf("%w: have %s want set", ErrWrongKind, v.kind)
	}
	return pos.LoadTree(st, cfg, v.root)
}

// Seq loads the underlying sequence of a list value.
func (v Value) Seq(st store.Store, cfg chunker.Config) (*pos.Seq, error) {
	if v.kind != KindList {
		return nil, fmt.Errorf("%w: have %s want list", ErrWrongKind, v.kind)
	}
	return pos.LoadSeq(st, cfg, v.root)
}

// Blob loads the underlying blob of a blob value.
func (v Value) Blob(st store.Store, cfg chunker.Config) (*pos.Blob, error) {
	if v.kind != KindBlob {
		return nil, fmt.Errorf("%w: have %s want blob", ErrWrongKind, v.kind)
	}
	return pos.LoadBlob(st, cfg, v.root)
}

// ChunkIDs returns every chunk id reachable from a value (empty for
// primitives); used by whole-version verification and GC.  Map and set
// values dispatch through the index registry, so the enumeration works for
// every registered structure.
func (v Value) ChunkIDs(st store.Store, cfg chunker.Config) ([]hash.Hash, error) {
	if !v.kind.Composite() || v.root.IsZero() {
		return nil, nil
	}
	switch v.kind {
	case KindMap, KindSet:
		ix, err := index.Load(st, cfg, v.root, index.KindPOS)
		if err != nil {
			return nil, err
		}
		return ix.ChunkIDs()
	case KindList:
		s, err := pos.LoadSeq(st, cfg, v.root)
		if err != nil {
			return nil, err
		}
		return s.ChunkIDs()
	case KindBlob:
		b, err := pos.LoadBlob(st, cfg, v.root)
		if err != nil {
			return nil, err
		}
		return b.ChunkIDs()
	}
	return nil, nil
}
