package value

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"forkbase/internal/chunker"
	"forkbase/internal/pos"
	"forkbase/internal/store"
)

func cfg() chunker.Config { return chunker.SmallConfig() }

func TestPrimitiveRoundTrips(t *testing.T) {
	cases := []struct {
		v     Value
		kind  Kind
		check func(Value) error
	}{
		{String("hello"), KindString, func(v Value) error {
			s, err := v.AsString()
			if err != nil || s != "hello" {
				return fmt.Errorf("s=%q err=%v", s, err)
			}
			return nil
		}},
		{Int(-42), KindInt, func(v Value) error {
			i, err := v.AsInt()
			if err != nil || i != -42 {
				return fmt.Errorf("i=%d err=%v", i, err)
			}
			return nil
		}},
		{Float(3.5), KindFloat, func(v Value) error {
			f, err := v.AsFloat()
			if err != nil || f != 3.5 {
				return fmt.Errorf("f=%f err=%v", f, err)
			}
			return nil
		}},
		{Bool(true), KindBool, func(v Value) error {
			b, err := v.AsBool()
			if err != nil || !b {
				return fmt.Errorf("b=%v err=%v", b, err)
			}
			return nil
		}},
	}
	for _, c := range cases {
		t.Run(c.kind.String(), func(t *testing.T) {
			if c.v.Kind() != c.kind {
				t.Fatalf("kind = %v", c.v.Kind())
			}
			dec, err := Decode(c.v.Encode())
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !dec.Equal(c.v) {
				t.Fatal("decode != original")
			}
			if err := c.check(dec); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(s string, i int64, b bool) bool {
		for _, v := range []Value{String(s), Int(i), Bool(b)} {
			d, err := Decode(v.Encode())
			if err != nil || !d.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWrongKindAccessors(t *testing.T) {
	v := String("x")
	if _, err := v.AsInt(); !errors.Is(err, ErrWrongKind) {
		t.Fatalf("AsInt on string: %v", err)
	}
	if _, err := v.AsBool(); !errors.Is(err, ErrWrongKind) {
		t.Fatalf("AsBool on string: %v", err)
	}
	if _, err := Int(1).AsString(); !errors.Is(err, ErrWrongKind) {
		t.Fatal("AsString on int")
	}
	st := store.NewMemStore()
	if _, err := v.MapTree(st, cfg()); !errors.Is(err, ErrWrongKind) {
		t.Fatal("MapTree on string")
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		{0},                // invalid kind
		{byte(KindInt), 1}, // short int
		{byte(KindBool)},   // missing payload
		{byte(KindMap), 1}, // composite too short
	}
	for i, b := range bad {
		if _, err := Decode(b); err == nil {
			t.Fatalf("case %d decoded", i)
		}
	}
}

func TestMapValue(t *testing.T) {
	st := store.NewMemStore()
	entries := []pos.Entry{
		{Key: []byte("a"), Val: []byte("1")},
		{Key: []byte("b"), Val: []byte("2")},
	}
	v, err := NewMap(st, cfg(), entries)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind() != KindMap || v.Count() != 2 {
		t.Fatalf("%v %d", v.Kind(), v.Count())
	}
	tr, err := v.MapTree(st, cfg())
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.Get([]byte("b"))
	if err != nil || string(got) != "2" {
		t.Fatalf("%q %v", got, err)
	}
	// Descriptor round trip preserves root and count.
	dec, err := Decode(v.Encode())
	if err != nil || !dec.Equal(v) || dec.Count() != 2 {
		t.Fatalf("map descriptor round trip: %v", err)
	}
}

func TestSetValue(t *testing.T) {
	st := store.NewMemStore()
	v, err := NewSet(st, cfg(), [][]byte{[]byte("x"), []byte("y"), []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if v.Count() != 2 {
		t.Fatalf("set count %d", v.Count())
	}
	tr, err := v.SetTree(st, cfg())
	if err != nil {
		t.Fatal(err)
	}
	ok, err := tr.Has([]byte("y"))
	if err != nil || !ok {
		t.Fatalf("set membership: %v %v", ok, err)
	}
}

func TestListValue(t *testing.T) {
	st := store.NewMemStore()
	items := [][]byte{[]byte("first"), []byte("second"), []byte("third")}
	v, err := NewList(st, cfg(), items)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := v.Seq(st, cfg())
	if err != nil {
		t.Fatal(err)
	}
	got, err := sq.Get(1)
	if err != nil || string(got) != "second" {
		t.Fatalf("%q %v", got, err)
	}
}

func TestBlobValue(t *testing.T) {
	st := store.NewMemStore()
	data := bytes.Repeat([]byte("forkbase "), 10000)
	v, err := NewBlob(st, cfg(), data)
	if err != nil {
		t.Fatal(err)
	}
	if v.Count() != uint64(len(data)) {
		t.Fatalf("blob count %d", v.Count())
	}
	bl, err := v.Blob(st, cfg())
	if err != nil {
		t.Fatal(err)
	}
	got, err := bl.Bytes()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("blob bytes mismatch: %v", err)
	}
}

func TestValueEqualContentAddressed(t *testing.T) {
	st := store.NewMemStore()
	a, err := NewMap(st, cfg(), []pos.Entry{{Key: []byte("k"), Val: []byte("v")}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMap(st, cfg(), []pos.Entry{{Key: []byte("k"), Val: []byte("v")}})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("identical maps not Equal")
	}
	c, err := NewMap(st, cfg(), []pos.Entry{{Key: []byte("k"), Val: []byte("w")}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Fatal("different maps Equal")
	}
	if a.Equal(String("v")) {
		t.Fatal("map equals string")
	}
}

func TestChunkIDs(t *testing.T) {
	st := store.NewMemStore()
	items := make([][]byte, 2000)
	for i := range items {
		items[i] = []byte(fmt.Sprintf("item-%06d", i))
	}
	v, err := NewList(st, cfg(), items)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := v.ChunkIDs(st, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) < 2 {
		t.Fatalf("list of 2000 items has %d chunks", len(ids))
	}
	// Primitives have no chunks.
	ids, err = String("x").ChunkIDs(st, cfg())
	if err != nil || ids != nil {
		t.Fatalf("primitive chunk ids: %v %v", ids, err)
	}
}

func TestDisplayForms(t *testing.T) {
	st := store.NewMemStore()
	m, _ := NewMap(st, cfg(), []pos.Entry{{Key: []byte("k"), Val: []byte("v")}})
	for _, tc := range []struct {
		v    Value
		want string
	}{
		{String("s"), "s"},
		{Int(7), "7"},
		{Bool(false), "false"},
		{Float(1.25), "1.25"},
	} {
		if got := tc.v.Display(); got != tc.want {
			t.Errorf("Display(%v) = %q, want %q", tc.v.Kind(), got, tc.want)
		}
	}
	if m.Display() == "" || m.Display() == "invalid" {
		t.Errorf("map display = %q", m.Display())
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindString; k <= KindList; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
	if !KindMap.Composite() || KindInt.Composite() {
		t.Fatal("Composite misclassifies")
	}
}
