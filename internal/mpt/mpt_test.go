package mpt

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"forkbase/internal/chunker"
	"forkbase/internal/index"
	"forkbase/internal/store"
)

func cfg() chunker.Config { return chunker.DefaultConfig() }

func buildT(t *testing.T, st store.Store, entries []index.Entry) *Trie {
	t.Helper()
	tr, err := Build(st, cfg(), entries)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tr
}

func sortedUnique(entries []index.Entry) []index.Entry {
	m := map[string][]byte{}
	for _, e := range entries {
		m[string(e.Key)] = e.Val
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]index.Entry, len(keys))
	for i, k := range keys {
		out[i] = index.Entry{Key: []byte(k), Val: m[k]}
	}
	return out
}

func randEntries(rng *rand.Rand, n int) []index.Entry {
	out := make([]index.Entry, n)
	for i := range out {
		// Short keys force dense prefix sharing (branches, extensions,
		// branch values via prefix keys); the byte alphabet is kept tiny so
		// every node kind is exercised.
		kl := rng.Intn(6)
		key := make([]byte, kl)
		for j := range key {
			key[j] = byte(rng.Intn(4))
		}
		val := []byte(fmt.Sprintf("v%d", rng.Intn(50)))
		out[i] = index.Entry{Key: key, Val: val}
	}
	return out
}

func TestGetPutBasics(t *testing.T) {
	st := store.NewMemStore()
	entries := []index.Entry{
		{Key: []byte("a"), Val: []byte("1")},
		{Key: []byte("ab"), Val: []byte("2")}, // "a" is a prefix: branch value
		{Key: []byte("abc"), Val: []byte("3")},
		{Key: []byte("b"), Val: []byte("4")},
		{Key: []byte(""), Val: []byte("empty")}, // empty key
	}
	tr := buildT(t, st, entries)
	if tr.Len() != 5 {
		t.Fatalf("Len = %d, want 5", tr.Len())
	}
	for _, e := range entries {
		got, err := tr.Get(e.Key)
		if err != nil {
			t.Fatalf("Get(%q): %v", e.Key, err)
		}
		if !bytes.Equal(got, e.Val) {
			t.Fatalf("Get(%q) = %q, want %q", e.Key, got, e.Val)
		}
	}
	if _, err := tr.Get([]byte("zz")); !errors.Is(err, index.ErrKeyNotFound) {
		t.Fatalf("Get(zz) err = %v, want ErrKeyNotFound", err)
	}
	// Reload by root recovers the count.
	re, err := Load(st, cfg(), tr.Root())
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if re.Len() != tr.Len() {
		t.Fatalf("reloaded Len = %d, want %d", re.Len(), tr.Len())
	}
}

// TestStructuralInvariance is the SIRI property: the root hash is a pure
// function of the record set, independent of how it was produced.
func TestStructuralInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		// Deduplicate up front: the shuffled one-at-a-time insert below must
		// not change which duplicate wins.
		entries := sortedUnique(randEntries(rng, 60))
		st1 := store.NewMemStore()
		bulk := buildT(t, st1, entries)

		// Same set via one-at-a-time inserts in shuffled order.
		st2 := store.NewMemStore()
		var inc index.VersionedIndex = New(st2, cfg())
		shuffled := append([]index.Entry(nil), entries...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for _, e := range shuffled {
			var err error
			inc, err = inc.Apply([]index.Op{index.Put(e.Key, e.Val)})
			if err != nil {
				t.Fatalf("Apply: %v", err)
			}
		}
		if bulk.Root() != inc.Root() {
			t.Fatalf("round %d: bulk root %s != incremental root %s", round, bulk.Root().Short(), inc.Root().Short())
		}

		// Insert extra (fresh) keys then delete them: root must return
		// exactly — delete normalization lands back on canonical form.
		seen := map[string]bool{}
		for _, e := range entries {
			seen[string(e.Key)] = true
		}
		var extra []index.Entry
		for _, e := range randEntries(rng, 20) {
			if !seen[string(e.Key)] {
				seen[string(e.Key)] = true
				extra = append(extra, e)
			}
		}
		withExtra, err := inc.Apply(putOps(extra))
		if err != nil {
			t.Fatalf("Apply extra: %v", err)
		}
		dels := make([]index.Op, 0, len(extra))
		for _, e := range extra {
			dels = append(dels, index.Del(e.Key))
		}
		back, err := withExtra.Apply(dels)
		if err != nil {
			t.Fatalf("Apply dels: %v", err)
		}
		if back.Root() != inc.Root() {
			t.Fatalf("round %d: delete did not restore canonical root", round)
		}
	}
}

func putOps(entries []index.Entry) []index.Op {
	ops := make([]index.Op, len(entries))
	for i, e := range entries {
		ops[i] = index.Put(e.Key, e.Val)
	}
	return ops
}

func TestIterateOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	st := store.NewMemStore()
	entries := randEntries(rng, 200)
	tr := buildT(t, st, entries)
	want := sortedUnique(entries)

	it, err := tr.Iterate()
	if err != nil {
		t.Fatalf("Iterate: %v", err)
	}
	var got []index.Entry
	for it.Next() {
		e := it.Entry()
		got = append(got, index.Entry{Key: append([]byte(nil), e.Key...), Val: append([]byte(nil), e.Val...)})
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iter err: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Val, want[i].Val) {
			t.Fatalf("entry %d = (%q,%q), want (%q,%q)", i, got[i].Key, got[i].Val, want[i].Key, want[i].Val)
		}
	}
}

func TestIterateFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	st := store.NewMemStore()
	entries := randEntries(rng, 150)
	tr := buildT(t, st, entries)
	want := sortedUnique(entries)

	targets := [][]byte{{}, {0}, {1, 2}, {3, 3, 3, 3, 3, 3}, []byte("zzz")}
	for _, e := range want {
		targets = append(targets, e.Key)
	}
	for _, target := range targets {
		it, err := tr.IterateFrom(target)
		if err != nil {
			t.Fatalf("IterateFrom(%x): %v", target, err)
		}
		exp := want[sort.Search(len(want), func(i int) bool {
			return bytes.Compare(want[i].Key, target) >= 0
		}):]
		i := 0
		for it.Next() {
			e := it.Entry()
			if i >= len(exp) {
				t.Fatalf("IterateFrom(%x): extra entry %q", target, e.Key)
			}
			if !bytes.Equal(e.Key, exp[i].Key) {
				t.Fatalf("IterateFrom(%x) entry %d = %x, want %x", target, i, e.Key, exp[i].Key)
			}
			i++
		}
		if err := it.Err(); err != nil {
			t.Fatalf("IterateFrom(%x) err: %v", target, err)
		}
		if i != len(exp) {
			t.Fatalf("IterateFrom(%x) yielded %d entries, want %d", target, i, len(exp))
		}
	}
}

func TestAtRank(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	st := store.NewMemStore()
	entries := randEntries(rng, 120)
	tr := buildT(t, st, entries)
	want := sortedUnique(entries)

	for i, e := range want {
		got, err := tr.At(uint64(i))
		if err != nil {
			t.Fatalf("At(%d): %v", i, err)
		}
		if !bytes.Equal(got.Key, e.Key) || !bytes.Equal(got.Val, e.Val) {
			t.Fatalf("At(%d) = (%q,%q), want (%q,%q)", i, got.Key, got.Val, e.Key, e.Val)
		}
		r, err := tr.Rank(e.Key)
		if err != nil {
			t.Fatalf("Rank(%q): %v", e.Key, err)
		}
		if r != uint64(i) {
			t.Fatalf("Rank(%q) = %d, want %d", e.Key, r, i)
		}
	}
	if _, err := tr.At(tr.Len()); !errors.Is(err, index.ErrOutOfRange) {
		t.Fatalf("At(len) err = %v, want ErrOutOfRange", err)
	}
	// Rank of absent keys matches sort.Search over the sorted set.
	for i := 0; i < 50; i++ {
		probe := randEntries(rng, 1)[0].Key
		want := uint64(sort.Search(len(sortedUnique(entries)), func(j int) bool {
			return bytes.Compare(sortedUnique(entries)[j].Key, probe) >= 0
		}))
		got, err := tr.Rank(probe)
		if err != nil {
			t.Fatalf("Rank(%x): %v", probe, err)
		}
		if got != want {
			t.Fatalf("Rank(%x) = %d, want %d", probe, got, want)
		}
	}
}

func TestDiffAndPrune(t *testing.T) {
	st := store.NewMemStore()
	entries := make([]index.Entry, 0, 3000)
	for i := 0; i < 3000; i++ {
		entries = append(entries, index.Entry{
			Key: []byte(fmt.Sprintf("user:%06d", i)),
			Val: []byte(fmt.Sprintf("row-%d", i)),
		})
	}
	a := buildT(t, st, entries)
	b, err := a.Apply([]index.Op{
		index.Put([]byte("user:000100"), []byte("changed")),
		index.Put([]byte("user:999999"), []byte("added")),
		index.Del([]byte("user:002000")),
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	deltas, stats, err := a.Diff(b.(*Trie))
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3: %v", len(deltas), deltas)
	}
	kinds := map[string]index.DeltaKind{}
	for _, d := range deltas {
		kinds[string(d.Key)] = d.Kind()
	}
	if kinds["user:000100"] != index.Modified || kinds["user:999999"] != index.Added || kinds["user:002000"] != index.Removed {
		t.Fatalf("wrong delta kinds: %v", kinds)
	}
	if stats.PrunedRefs == 0 {
		t.Fatalf("structural diff pruned nothing (stats %+v)", stats)
	}
	st2, err := a.ComputeStats()
	if err != nil {
		t.Fatalf("ComputeStats: %v", err)
	}
	if stats.TouchedChunks >= st2.Nodes/2 {
		t.Fatalf("diff touched %d of %d nodes — pruning is not effective", stats.TouchedChunks, st2.Nodes)
	}
	// Round-trip: applying the deltas to a must reproduce b's root.
	ops := make([]index.Op, len(deltas))
	for i, d := range deltas {
		if d.To == nil {
			ops[i] = index.Del(d.Key)
		} else {
			ops[i] = index.Put(d.Key, d.To)
		}
	}
	rt, err := a.Apply(ops)
	if err != nil {
		t.Fatalf("Apply deltas: %v", err)
	}
	if rt.Root() != b.Root() {
		t.Fatalf("delta round-trip root mismatch")
	}
}

func TestDiffRandomOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for round := 0; round < 15; round++ {
		st := store.NewMemStore()
		ea := randEntries(rng, 80)
		eb := randEntries(rng, 80)
		a := buildT(t, st, ea)
		b := buildT(t, st, eb)
		got, _, err := a.Diff(b)
		if err != nil {
			t.Fatalf("Diff: %v", err)
		}
		// Oracle: map-based diff over the normalized sets.
		am, bm := map[string][]byte{}, map[string][]byte{}
		for _, e := range sortedUnique(ea) {
			am[string(e.Key)] = e.Val
		}
		for _, e := range sortedUnique(eb) {
			bm[string(e.Key)] = e.Val
		}
		want := 0
		for k, v := range am {
			if bv, ok := bm[k]; !ok || !bytes.Equal(bv, v) {
				want++
			}
		}
		for k := range bm {
			if _, ok := am[k]; !ok {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("round %d: %d deltas, want %d", round, len(got), want)
		}
		for _, d := range got {
			av, aok := am[string(d.Key)]
			bv, bok := bm[string(d.Key)]
			if aok != (d.From != nil) || bok != (d.To != nil) {
				t.Fatalf("round %d: delta %q sides wrong (%v/%v)", round, d.Key, aok, bok)
			}
			if aok && !bytes.Equal(av, d.From) || bok && !bytes.Equal(bv, d.To) {
				t.Fatalf("round %d: delta %q values wrong", round, d.Key)
			}
		}
		// Diff is emitted in key order.
		for i := 1; i < len(got); i++ {
			if bytes.Compare(got[i-1].Key, got[i].Key) >= 0 {
				t.Fatalf("round %d: deltas out of order", round)
			}
		}
	}
}

func TestApplyRandomOpsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	st := store.NewMemStore()
	var tr index.VersionedIndex = New(st, cfg())
	model := map[string][]byte{}
	for round := 0; round < 40; round++ {
		var ops []index.Op
		for i := 0; i < 15; i++ {
			e := randEntries(rng, 1)[0]
			if rng.Intn(3) == 0 {
				ops = append(ops, index.Del(e.Key))
			} else {
				ops = append(ops, index.Put(e.Key, e.Val))
			}
		}
		var err error
		tr, err = tr.Apply(ops)
		if err != nil {
			t.Fatalf("Apply: %v", err)
		}
		// Later ops win over earlier ops on the same key.
		for _, op := range ops {
			if op.Delete {
				delete(model, string(op.Key))
			} else {
				model[string(op.Key)] = op.Val
			}
		}
		if tr.Len() != uint64(len(model)) {
			t.Fatalf("round %d: Len=%d model=%d", round, tr.Len(), len(model))
		}
		for k, v := range model {
			got, err := tr.Get([]byte(k))
			if err != nil {
				t.Fatalf("round %d: Get(%x): %v", round, k, err)
			}
			if !bytes.Equal(got, v) {
				t.Fatalf("round %d: Get(%x) = %q want %q", round, k, got, v)
			}
		}
		// Canonical: rebuild from the model must land on the same root.
		ref := buildT(t, store.NewMemStore(), modelEntries(model))
		if ref.Root() != tr.Root() {
			t.Fatalf("round %d: edit root diverged from canonical rebuild", round)
		}
	}
}

func modelEntries(m map[string][]byte) []index.Entry {
	out := make([]index.Entry, 0, len(m))
	for k, v := range m {
		out = append(out, index.Entry{Key: []byte(k), Val: v})
	}
	return out
}

func TestChunkIDsAndChildrenCover(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	st := store.NewMemStore()
	tr := buildT(t, st, randEntries(rng, 300))
	ids, err := tr.ChunkIDs()
	if err != nil {
		t.Fatalf("ChunkIDs: %v", err)
	}
	// Reachability through the registry's Children must cover exactly the
	// same set — this is what GC marking and replication pruning rely on.
	seen := map[string]bool{}
	var walk func(idBytes [32]byte) error
	walk = func(id [32]byte) error {
		if seen[string(id[:])] {
			return nil
		}
		seen[string(id[:])] = true
		c, err := st.Get(id)
		if err != nil {
			return err
		}
		kids, err := index.Children(c)
		if err != nil {
			return err
		}
		for _, k := range kids {
			if err := walk(k); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(tr.Root()); err != nil {
		t.Fatalf("walk: %v", err)
	}
	// ChunkIDs (like pos.Tree.ChunkIDs) revisits structurally identical
	// shared subtrees, so compare as sets.
	unique := map[string]bool{}
	for _, id := range ids {
		unique[string(id[:])] = true
		if !seen[string(id[:])] {
			t.Fatalf("chunk %s missing from Children walk", id.Short())
		}
	}
	if len(seen) != len(unique) {
		t.Fatalf("Children walk reached %d chunks, ChunkIDs covers %d", len(seen), len(unique))
	}
}

func TestComputeStats(t *testing.T) {
	st := store.NewMemStore()
	entries := make([]index.Entry, 0, 500)
	for i := 0; i < 500; i++ {
		entries = append(entries, index.Entry{Key: []byte(fmt.Sprintf("k%05d", i)), Val: []byte("v")})
	}
	tr := buildT(t, st, entries)
	stats, err := tr.ComputeStats()
	if err != nil {
		t.Fatalf("ComputeStats: %v", err)
	}
	if stats.Entries != 500 || stats.LeafNodes == 0 || stats.IndexNodes == 0 || stats.Height < 2 {
		t.Fatalf("implausible stats: %+v", stats)
	}
	ids, _ := tr.ChunkIDs()
	if stats.Nodes != len(ids) {
		t.Fatalf("stats.Nodes=%d, ChunkIDs=%d", stats.Nodes, len(ids))
	}
}

func TestLoadRejectsWrongType(t *testing.T) {
	st := store.NewMemStore()
	// A POS-style chunk id is not an MPT node.
	tr := buildT(t, st, []index.Entry{{Key: []byte("a"), Val: []byte("b")}})
	re, err := Load(st, cfg(), tr.Root())
	if err != nil || re.Len() != 1 {
		t.Fatalf("Load mpt root: %v", err)
	}
}

func TestEmptyTrie(t *testing.T) {
	st := store.NewMemStore()
	tr := New(st, cfg())
	if tr.Len() != 0 || !tr.Root().IsZero() {
		t.Fatal("empty trie not empty")
	}
	if _, err := tr.Get([]byte("x")); !errors.Is(err, index.ErrKeyNotFound) {
		t.Fatalf("Get on empty: %v", err)
	}
	it, err := tr.Iterate()
	if err != nil || it.Next() {
		t.Fatalf("empty iterate: %v", err)
	}
	// Deleting everything returns to the zero root.
	one, err := tr.Apply([]index.Op{index.Put([]byte("k"), []byte("v"))})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	back, err := one.Apply([]index.Op{index.Del([]byte("k"))})
	if err != nil {
		t.Fatalf("Apply del: %v", err)
	}
	if !back.Root().IsZero() || back.Len() != 0 {
		t.Fatalf("delete-all root = %s len %d, want zero", back.Root().Short(), back.Len())
	}
}
