package mpt

import (
	"fmt"

	"forkbase/internal/chunk"
	"forkbase/internal/chunker"
	"forkbase/internal/hash"
	"forkbase/internal/index"
	"forkbase/internal/store"
)

// The edit path works on a partially expanded in-memory view of the trie:
// untouched subtrees stay collapsed as (hash, count) references and are
// reused verbatim by the commit, so an edit loads and rewrites only the
// nodes along the affected paths — O(changes · depth), with everything else
// shared with the previous version.  Canonical-form normalization after
// deletes (collapsing single-slot branches, merging extension chains) is
// what keeps the structure a pure function of the record set.

// mref is a reference to a subtree under edit: either a collapsed stored
// node (id + count) or an expanded mutable node.
type mref struct {
	id    hash.Hash
	count uint64
	mem   *mnode
}

// mnode is one mutable node of the expanded region.
type mnode struct {
	kind     byte
	path     []byte // nibbles (leaf, ext)
	val      []byte
	hasVal   bool      // branch value present (leaves always carry a value)
	children [16]*mref // branch
	child    *mref     // ext
}

// editor carries the node source through an edit.
type editor struct {
	src source
}

// expand loads a collapsed reference into its mutable form.
func (e *editor) expand(r *mref) (*mnode, error) {
	if r.mem != nil {
		return r.mem, nil
	}
	n, err := e.src.load(r.id)
	if err != nil {
		return nil, err
	}
	m := &mnode{kind: n.kind, path: n.path, val: n.val, hasVal: n.hasVal}
	switch n.kind {
	case kindExt:
		m.child = &mref{id: n.childID, count: n.childCount}
	case kindBranch:
		for i := 0; i < 16; i++ {
			if n.childMask&(1<<i) != 0 {
				m.children[i] = &mref{id: n.childIDs[i], count: n.childCounts[i]}
			}
		}
	}
	r.mem = m
	r.id = hash.Hash{} // stale once mutable
	return m, nil
}

// insert puts (path → val) under r, returning the resulting reference and
// whether the key was newly added (false = replaced).
func (e *editor) insert(r *mref, path, val []byte) (*mref, bool, error) {
	if r == nil {
		return &mref{mem: &mnode{kind: kindLeaf, path: path, val: val, hasVal: true}}, true, nil
	}
	m, err := e.expand(r)
	if err != nil {
		return nil, false, err
	}
	switch m.kind {
	case kindLeaf:
		cp := commonPrefix(m.path, path)
		if cp == len(m.path) && cp == len(path) {
			m.val = val
			return r, false, nil
		}
		// Diverge: a branch at the shared prefix routing both terminals,
		// wrapped in an extension when the prefix is non-empty.
		br := &mnode{kind: kindBranch}
		setTerminal(br, m.path[cp:], &mref{mem: &mnode{kind: kindLeaf, path: tail(m.path, cp), val: m.val, hasVal: true}})
		setTerminal(br, path[cp:], &mref{mem: &mnode{kind: kindLeaf, path: tail(path, cp), val: val, hasVal: true}})
		return wrapExt(path[:cp], &mref{mem: br}), true, nil
	case kindExt:
		cp := commonPrefix(m.path, path)
		if cp == len(m.path) {
			child, added, err := e.insert(m.child, path[cp:], val)
			if err != nil {
				return nil, false, err
			}
			m.child = child
			nr, err := e.normalizeExt(r, m)
			return nr, added, err
		}
		// Split the extension at the divergence point.
		br := &mnode{kind: kindBranch}
		// The surviving tail of the old extension: its next nibble routes to
		// the remainder (a bare branch when nothing of the path is left).
		oldNib := m.path[cp]
		if cp+1 == len(m.path) {
			br.children[oldNib] = m.child
		} else {
			br.children[oldNib] = &mref{mem: &mnode{kind: kindExt, path: tail(m.path, cp), child: m.child}}
		}
		setTerminal(br, path[cp:], &mref{mem: &mnode{kind: kindLeaf, path: tail(path, cp), val: val, hasVal: true}})
		return wrapExt(path[:cp], &mref{mem: br}), true, nil
	default: // branch
		if len(path) == 0 {
			added := !m.hasVal
			m.val, m.hasVal = val, true
			return r, added, nil
		}
		child, added, err := e.insert(m.children[path[0]], path[1:], val)
		if err != nil {
			return nil, false, err
		}
		m.children[path[0]] = child
		return r, added, nil
	}
}

// setTerminal routes a (possibly empty) remaining path into a branch: an
// empty remainder becomes the branch's own value, otherwise the first
// nibble selects the child slot.  leafRef must be a leaf holding the path's
// tail past the first nibble (callers pass tail(path, cp) / tail(path, cp+1)
// consistently via the tail helper).
func setTerminal(br *mnode, rem []byte, leafRef *mref) {
	if len(rem) == 0 {
		l := leafRef.mem
		br.val, br.hasVal = l.val, true
		return
	}
	br.children[rem[0]] = leafRef
}

// tail returns path[cut+1:] when a nibble is consumed by a branch slot, or
// nil for an empty remainder — the leaf path under a branch child.
func tail(path []byte, cut int) []byte {
	if cut >= len(path) {
		return nil
	}
	return path[cut+1:]
}

// wrapExt wraps r in an extension over prefix (no-op for an empty prefix).
func wrapExt(prefix []byte, r *mref) *mref {
	if len(prefix) == 0 {
		return r
	}
	return &mref{mem: &mnode{kind: kindExt, path: append([]byte(nil), prefix...), child: r}}
}

// remove deletes path under r, returning the resulting reference (nil when
// the subtree empties) and whether the key existed.
func (e *editor) remove(r *mref, path []byte) (*mref, bool, error) {
	if r == nil {
		return nil, false, nil
	}
	m, err := e.expand(r)
	if err != nil {
		return nil, false, err
	}
	switch m.kind {
	case kindLeaf:
		if commonPrefix(m.path, path) == len(m.path) && len(m.path) == len(path) {
			return nil, true, nil
		}
		return r, false, nil
	case kindExt:
		if commonPrefix(m.path, path) != len(m.path) {
			return r, false, nil
		}
		child, removed, err := e.remove(m.child, path[len(m.path):])
		if err != nil {
			return nil, false, err
		}
		if !removed {
			return r, false, nil
		}
		if child == nil {
			return nil, true, nil
		}
		m.child = child
		nr, err := e.normalizeExt(r, m)
		return nr, true, err
	default: // branch
		if len(path) == 0 {
			if !m.hasVal {
				return r, false, nil
			}
			m.val, m.hasVal = nil, false
		} else {
			i := path[0]
			child, removed, err := e.remove(m.children[i], path[1:])
			if err != nil {
				return nil, false, err
			}
			if !removed {
				return r, false, nil
			}
			m.children[i] = child
		}
		nr, err := e.normalizeBranch(m)
		return nr, true, err
	}
}

// normalizeExt restores the canonical invariant that an extension always
// points at a branch: a child collapsed to an extension merges paths, a
// child collapsed to a leaf becomes a longer leaf.
func (e *editor) normalizeExt(r *mref, m *mnode) (*mref, error) {
	cm, err := e.expand(m.child)
	if err != nil {
		return nil, err
	}
	switch cm.kind {
	case kindBranch:
		return r, nil
	case kindExt:
		m.path = append(append([]byte(nil), m.path...), cm.path...)
		m.child = cm.child
		return r, nil
	default: // leaf
		return &mref{mem: &mnode{
			kind:   kindLeaf,
			path:   append(append([]byte(nil), m.path...), cm.path...),
			val:    cm.val,
			hasVal: true,
		}}, nil
	}
}

// normalizeBranch restores the >= 2 occupied slots invariant after a
// delete: a branch left with only its value becomes a leaf; a branch left
// with a single child merges into that child's path.
func (e *editor) normalizeBranch(m *mnode) (*mref, error) {
	slots := 0
	only := -1
	for i := 0; i < 16; i++ {
		if m.children[i] != nil {
			slots++
			only = i
		}
	}
	if m.hasVal {
		slots++
	}
	switch {
	case slots == 0:
		return nil, nil
	case slots >= 2:
		return &mref{mem: m}, nil
	case m.hasVal:
		return &mref{mem: &mnode{kind: kindLeaf, val: m.val, hasVal: true}}, nil
	}
	// Single child: pull it up, prepending its routing nibble.
	cr := m.children[only]
	cm, err := e.expand(cr)
	if err != nil {
		return nil, err
	}
	nib := []byte{byte(only)}
	switch cm.kind {
	case kindLeaf:
		return &mref{mem: &mnode{kind: kindLeaf, path: append(nib, cm.path...), val: cm.val, hasVal: true}}, nil
	case kindExt:
		return &mref{mem: &mnode{kind: kindExt, path: append(nib, cm.path...), child: cm.child}}, nil
	default:
		return &mref{mem: &mnode{kind: kindExt, path: nib, child: cr}}, nil
	}
}

// commit writes every expanded node under r bottom-up through the sink and
// returns its chunk id and entry count.  Collapsed references are reused
// verbatim — that is the structural sharing between versions.  The sink
// hashes synchronously, so child ids are available when parents encode.
func (e *editor) commit(r *mref, sink *store.ChunkSink, scratch []byte) (hash.Hash, uint64, []byte, error) {
	if r.mem == nil {
		return r.id, r.count, scratch, nil
	}
	m := r.mem
	var ids [16]hash.Hash
	var counts [16]uint64
	var mask uint16
	var total uint64
	var err error
	switch m.kind {
	case kindLeaf:
		total = 1
	case kindExt:
		ids[0], counts[0], scratch, err = e.commit(m.child, sink, scratch)
		if err != nil {
			return hash.Hash{}, 0, scratch, err
		}
		total = counts[0]
	case kindBranch:
		for i := 0; i < 16; i++ {
			if m.children[i] == nil {
				continue
			}
			ids[i], counts[i], scratch, err = e.commit(m.children[i], sink, scratch)
			if err != nil {
				return hash.Hash{}, 0, scratch, err
			}
			mask |= 1 << i
			total += counts[i]
		}
		if m.hasVal {
			total++
		}
	}
	scratch = encodeNode(scratch[:0], m.kind, m.path, m.val, m.hasVal, mask, &ids, &counts)
	idp, err := sink.Emit(chunk.Type(scratch[0]), scratch)
	if err != nil {
		return hash.Hash{}, 0, scratch, fmt.Errorf("mpt: storing node: %w", err)
	}
	r.id, r.count, r.mem = *idp, total, nil
	return r.id, total, scratch, nil
}

// editSink returns the write sink for trie mutations: hashing is pinned to
// the producer goroutine (parents need child ids synchronously) and the
// dedup pre-check is on, so re-created shared nodes cost index lookups,
// not writes.
func editSink(st store.Store) *store.ChunkSink {
	return store.NewChunkSink(st, store.SinkOptions{Dedup: true}.SyncHashers())
}

// Apply applies a batch of puts and deletes and returns the resulting trie.
// Later ops win over earlier ops on the same key, matching pos.Tree.Edit.
func (t *Trie) Apply(ops []index.Op) (index.VersionedIndex, error) {
	if len(ops) == 0 {
		return t, nil
	}
	e := &editor{src: t.src}
	var root *mref
	if !t.root.IsZero() {
		root = &mref{id: t.root, count: t.count}
	}
	count := int64(t.count)
	for _, op := range ops {
		path := keyNibbles(op.Key)
		if op.Delete {
			nr, removed, err := e.remove(root, path)
			if err != nil {
				return nil, err
			}
			root = nr
			if removed {
				count--
			}
			continue
		}
		nr, added, err := e.insert(root, path, op.Val)
		if err != nil {
			return nil, err
		}
		root = nr
		if added {
			count++
		}
	}
	if root == nil {
		return New(t.src.st, t.cfg), nil
	}
	sink := editSink(t.src.st)
	defer sink.Close()
	id, total, _, err := e.commit(root, sink, make([]byte, 0, 1024))
	if err != nil {
		return nil, err
	}
	if err := sink.Flush(); err != nil {
		return nil, err
	}
	if total != uint64(count) {
		return nil, fmt.Errorf("mpt: count drift: tracked %d, committed %d", count, total)
	}
	return &Trie{src: t.src, cfg: t.cfg, root: id, count: total}, nil
}

// Build constructs a trie over entries (need not be sorted; duplicate keys
// keep the last value).  Because the trie is canonical, the result is
// byte-identical to any edit sequence producing the same record set.
func Build(st store.Store, cfg chunker.Config, entries []index.Entry) (*Trie, error) {
	ops := make([]index.Op, len(entries))
	for i, e := range entries {
		ops[i] = index.Put(e.Key, e.Val)
	}
	idx, err := New(st, cfg).Apply(ops)
	if err != nil {
		return nil, err
	}
	return idx.(*Trie), nil
}
