package mpt

import (
	"bytes"
	"fmt"

	"forkbase/internal/hash"
	"forkbase/internal/index"
)

// Structural diff between two tries.  Because the trie is canonical, two
// versions sharing a record subset share whole subtrees as identical
// chunks; the diff walks both tries in lockstep by nibble position and
// prunes every pair of positions backed by the same chunk hash without
// reading it — the MPT counterpart of the POS-Tree's O(D·log N) diff.
//
// Local shapes may differ around edits (a leaf on one side, a branch of
// several keys on the other), so the walk operates on *cursors*: a decoded
// node plus an offset into its compressed path.  A cursor at offset 0 sits
// on a real chunk boundary and carries its id, which is what makes pruning
// sound; mid-path cursors are virtual and always descend.

// dref references one side's subtree at a nibble position: either a stored
// chunk (id + lazily loaded node) or a virtual position inside a node's
// compressed path (off > 0).
type dref struct {
	id  hash.Hash // zero for virtual positions
	n   *node     // nil until loaded (real positions load on demand)
	off int       // nibbles of n.path already consumed
}

type differ struct {
	old, new *Trie
	out      []index.Delta
	stats    index.DiffStats
	prefix   []byte // nibbles of the current position
}

// DiffWith diffs against another index: the structural, pruning diff when o
// is also a trie over a readable store, the (range-partitioned) generic
// iterator diff for other structures.
func (t *Trie) DiffWith(o index.VersionedIndex) ([]index.Delta, index.DiffStats, error) {
	ot, ok := o.(*Trie)
	if !ok {
		return index.GenericDiffParallel(t, o, index.DefaultWorkers())
	}
	return t.Diff(ot)
}

// Diff computes the key-level differences from t (old) to o (new).  The
// lockstep walk prunes shared subtrees; the divergent branch children it
// leaves behind are diffed on a bounded worker pool (see pardiff.go), with
// results identical to DiffSerial.
func (t *Trie) Diff(o *Trie) ([]index.Delta, index.DiffStats, error) {
	return t.DiffParallel(o, index.DefaultWorkers())
}

// DiffSerial is the single-goroutine structural diff — the differential
// oracle DiffParallel is measured against.
func (t *Trie) DiffSerial(o *Trie) ([]index.Delta, index.DiffStats, error) {
	if t.root == o.root {
		return nil, index.DiffStats{}, nil
	}
	d := &differ{old: t, new: o}
	if err := d.diff(rootRef(t), rootRef(o)); err != nil {
		return nil, index.DiffStats{}, err
	}
	d.stats.Deltas = len(d.out)
	return d.out, d.stats, nil
}

func rootRef(t *Trie) *dref {
	if t.root.IsZero() {
		return nil
	}
	return &dref{id: t.root}
}

// load materialises a ref's node through the owning trie's source.
func (d *differ) load(t *Trie, r *dref) (*node, error) {
	if r.n == nil {
		n, err := t.src.load(r.id)
		if err != nil {
			return nil, fmt.Errorf("mpt: diff: %w", err)
		}
		r.n = n
		d.stats.TouchedChunks++
	}
	return r.n, nil
}

// position resolves a cursor into its value-at-this-position and children
// by next nibble.  Compressed paths are walked one virtual nibble at a
// time; extensions that are fully consumed step into their child chunk.
func (d *differ) position(t *Trie, r *dref) (val []byte, hasVal bool, kids [16]*dref, err error) {
	n, err := d.load(t, r)
	if err != nil {
		return nil, false, kids, err
	}
	// An extension whose path is consumed is transparent: the position is
	// really its child branch.
	for n.kind == kindExt && r.off == len(n.path) {
		r = &dref{id: n.childID}
		if n, err = d.load(t, r); err != nil {
			return nil, false, kids, err
		}
	}
	switch n.kind {
	case kindLeaf:
		if r.off == len(n.path) {
			return n.val, true, kids, nil
		}
		kids[n.path[r.off]] = &dref{n: n, off: r.off + 1}
		return nil, false, kids, nil
	case kindExt:
		kids[n.path[r.off]] = &dref{n: n, off: r.off + 1}
		return nil, false, kids, nil
	default: // branch (never has a compressed path; off is always 0)
		for i := 0; i < 16; i++ {
			if n.childMask&(1<<i) != 0 {
				kids[i] = &dref{id: n.childIDs[i]}
			}
		}
		return n.val, n.hasVal, kids, nil
	}
}

// diff recursively compares the two sides at one nibble position.
func (d *differ) diff(a, b *dref) error {
	if a == nil && b == nil {
		return nil
	}
	if a != nil && b != nil && !a.id.IsZero() && a.id == b.id {
		d.stats.PrunedRefs++
		return nil
	}
	if a == nil {
		return d.emitAll(d.new, b, func(key, val []byte) {
			d.out = append(d.out, index.Delta{Key: key, To: val})
		})
	}
	if b == nil {
		return d.emitAll(d.old, a, func(key, val []byte) {
			d.out = append(d.out, index.Delta{Key: key, From: val})
		})
	}
	av, aOK, aKids, err := d.position(d.old, a)
	if err != nil {
		return err
	}
	bv, bOK, bKids, err := d.position(d.new, b)
	if err != nil {
		return err
	}
	key := func() []byte { return nibblesToKey(d.prefix) }
	switch {
	case aOK && bOK:
		if !bytes.Equal(av, bv) {
			d.out = append(d.out, index.Delta{Key: key(), From: cp(av), To: cp(bv)})
		}
	case aOK:
		d.out = append(d.out, index.Delta{Key: key(), From: cp(av)})
	case bOK:
		d.out = append(d.out, index.Delta{Key: key(), To: cp(bv)})
	}
	for i := 0; i < 16; i++ {
		if aKids[i] == nil && bKids[i] == nil {
			continue
		}
		d.prefix = append(d.prefix, byte(i))
		if err := d.diff(aKids[i], bKids[i]); err != nil {
			return err
		}
		d.prefix = d.prefix[:len(d.prefix)-1]
	}
	return nil
}

// emitAll walks an entire one-sided subtree, emitting every entry.
func (d *differ) emitAll(t *Trie, r *dref, emit func(key, val []byte)) error {
	val, hasVal, kids, err := d.position(t, r)
	if err != nil {
		return err
	}
	if hasVal {
		emit(nibblesToKey(d.prefix), cp(val))
	}
	for i := 0; i < 16; i++ {
		if kids[i] == nil {
			continue
		}
		d.prefix = append(d.prefix, byte(i))
		if err := d.emitAll(t, kids[i], emit); err != nil {
			return err
		}
		d.prefix = d.prefix[:len(d.prefix)-1]
	}
	return nil
}

// cp copies b, always returning a non-nil slice: present-but-empty values
// must stay distinguishable from the nil that marks an absent side.
func cp(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
