package mpt

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"forkbase/internal/index"
	"forkbase/internal/store"
)

// Differential test: DiffParallel must produce the same deltas, in the same
// (pre-)order, with the same stats, as DiffSerial for every worker count.

func editT(t *testing.T, tr *Trie, rng *rand.Rand, edits int) *Trie {
	t.Helper()
	ops := make([]index.Op, 0, edits)
	for i := 0; i < edits; i++ {
		kl := rng.Intn(6)
		key := make([]byte, kl)
		for j := range key {
			key[j] = byte(rng.Intn(4))
		}
		if rng.Intn(5) == 0 {
			ops = append(ops, index.Del(key))
		} else {
			ops = append(ops, index.Put(key, []byte(fmt.Sprintf("e%d", i))))
		}
	}
	ni, err := tr.Apply(ops)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	return ni.(*Trie)
}

func TestDiffParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	st := store.NewMemStore()
	base := buildT(t, st, randEntries(rng, 4000))
	empty := buildT(t, st, nil)
	for _, edits := range []int{1, 60, 1500} {
		other := editT(t, base, rng, edits)
		cases := []struct {
			name     string
			old, new *Trie
		}{
			{"fwd", base, other},
			{"rev", other, base},
			{"self", base, base},
			{"from-empty", empty, other},
			{"to-empty", other, empty},
		}
		for _, tc := range cases {
			wantD, wantS, err := tc.old.DiffSerial(tc.new)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{1, 2, 8} {
				gotD, gotS, err := tc.old.DiffParallel(tc.new, w)
				if err != nil {
					t.Fatalf("%s workers=%d: %v", tc.name, w, err)
				}
				if !reflect.DeepEqual(gotD, wantD) {
					t.Fatalf("%s edits=%d workers=%d: deltas diverge (%d vs %d)",
						tc.name, edits, w, len(gotD), len(wantD))
				}
				if gotS != wantS {
					t.Fatalf("%s edits=%d workers=%d: stats %+v != %+v",
						tc.name, edits, w, gotS, wantS)
				}
			}
		}
	}
}
