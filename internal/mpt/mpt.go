// Package mpt implements a content-addressed Merkle Patricia Trie — the
// main comparison structure of the ForkBase paper's SIRI evaluation
// (§II-A): like the POS-Tree it is a Merkle DAG whose root hash
// authenticates the whole record set and whose layout is a pure function of
// that set (structural invariance), but node boundaries follow key-prefix
// structure instead of content-defined chunking.
//
// The trie is nibble-keyed (two nibbles per key byte) with path
// compression, in the classic three-node-kind form:
//
//   - leaf: a compressed terminal path plus the value;
//   - extension: a compressed shared path plus one child (always a branch);
//   - branch: up to 16 children indexed by next nibble, plus an optional
//     value for a key ending at the branch.
//
// Child pointers are chunk hashes, every node is one TypeMPTNode chunk, and
// each child pointer carries the entry count of its subtree, so rank
// queries (At, Rank) run in O(depth) exactly as they do on POS-Trees.
// Canonical-form invariants (a branch always has >= 2 occupied slots, an
// extension always points at a branch, paths are maximally compressed) make
// the structure — and therefore the root hash — independent of operation
// history, which the cross-structure differential oracle enforces.
//
// Writes land through the batched store.ChunkSink with the dedup pre-check
// on, so edits that recreate shared subtrees cost index lookups, not
// writes.  The trie registers itself with the index layer: reachability
// walks (GC, verify, replication pruning) decode its children through
// index.Children, and index.Load sniffs TypeMPTNode roots back to this
// package.
package mpt

import (
	"encoding/binary"
	"errors"
	"fmt"

	"forkbase/internal/chunk"
	"forkbase/internal/chunker"
	"forkbase/internal/hash"
	"forkbase/internal/index"
	"forkbase/internal/nodecache"
	"forkbase/internal/store"
)

// Node kinds within a TypeMPTNode chunk payload.
const (
	kindLeaf   = 0
	kindExt    = 1
	kindBranch = 2
)

// node is a fully decoded MPT node.  It is immutable after decode: slices
// alias the underlying chunk payload, which is what makes a node safe to
// share between concurrent traversals and to keep in the decoded-node
// cache.
type node struct {
	kind byte
	path []byte // unpacked nibbles (leaf, ext)
	val  []byte // leaf value, or branch value when hasVal

	hasVal      bool
	childMask   uint16 // branch: bit i set = child at nibble i
	childIDs    [16]hash.Hash
	childCounts [16]uint64

	childID    hash.Hash // ext: the single child (a branch)
	childCount uint64

	encSize int // encoded chunk size, for stats
	memSize int // approximate decoded footprint, for cache accounting
}

// count returns the number of entries under the node.
func (n *node) count() uint64 {
	switch n.kind {
	case kindLeaf:
		return 1
	case kindExt:
		return n.childCount
	default:
		var c uint64
		for i := 0; i < 16; i++ {
			c += n.childCounts[i]
		}
		if n.hasVal {
			c++
		}
		return c
	}
}

func appendUvarint(dst []byte, x uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], x)
	return append(dst, tmp[:n]...)
}

// packNibbles appends the packed form of a nibble path: high nibble first,
// odd lengths padded with a zero low nibble (the length travels separately,
// so the pad is unambiguous).
func packNibbles(dst, nibs []byte) []byte {
	for i := 0; i+1 < len(nibs); i += 2 {
		dst = append(dst, nibs[i]<<4|nibs[i+1])
	}
	if len(nibs)%2 == 1 {
		dst = append(dst, nibs[len(nibs)-1]<<4)
	}
	return dst
}

func errTrunc(what string) error { return fmt.Errorf("mpt: truncated %s", what) }

// readNibbles parses uvarint(count) | packed nibbles from p.
func readNibbles(p []byte) (nibs, rest []byte, err error) {
	n, sz := binary.Uvarint(p)
	if sz <= 0 {
		return nil, nil, errTrunc("path length")
	}
	p = p[sz:]
	packed := int(n+1) / 2
	if n > uint64(len(p))*2 || packed > len(p) {
		return nil, nil, errTrunc("path nibbles")
	}
	nibs = make([]byte, n)
	for i := range nibs {
		b := p[i/2]
		if i%2 == 0 {
			nibs[i] = b >> 4
		} else {
			nibs[i] = b & 0x0f
		}
	}
	if n%2 == 1 && p[packed-1]&0x0f != 0 {
		return nil, nil, errors.New("mpt: nonzero nibble padding")
	}
	return nibs, p[packed:], nil
}

// encodeNode renders the canonical [type][payload] chunk encoding of a
// node assembled from parts.  Used by the commit path; decode is the
// inverse over the payload (without the leading chunk type byte).
func encodeNode(dst []byte, kind byte, path, val []byte, hasVal bool, mask uint16, ids *[16]hash.Hash, counts *[16]uint64) []byte {
	dst = append(dst, byte(chunk.TypeMPTNode), kind)
	switch kind {
	case kindLeaf:
		dst = appendUvarint(dst, uint64(len(path)))
		dst = packNibbles(dst, path)
		dst = appendUvarint(dst, uint64(len(val)))
		dst = append(dst, val...)
	case kindExt:
		dst = appendUvarint(dst, uint64(len(path)))
		dst = packNibbles(dst, path)
		dst = append(dst, ids[0][:]...)
		dst = appendUvarint(dst, counts[0])
	case kindBranch:
		dst = append(dst, byte(mask>>8), byte(mask))
		for i := 0; i < 16; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			dst = append(dst, ids[i][:]...)
			dst = appendUvarint(dst, counts[i])
		}
		if hasVal {
			dst = append(dst, 1)
			dst = appendUvarint(dst, uint64(len(val)))
			dst = append(dst, val...)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// decodeNode parses a TypeMPTNode chunk payload.
func decodeNode(c *chunk.Chunk) (*node, error) {
	data := c.Data()
	if len(data) < 1 {
		return nil, errTrunc("node header")
	}
	n := &node{kind: data[0], encSize: c.Size()}
	p := data[1:]
	var err error
	switch n.kind {
	case kindLeaf:
		if n.path, p, err = readNibbles(p); err != nil {
			return nil, err
		}
		vl, sz := binary.Uvarint(p)
		if sz <= 0 || uint64(len(p[sz:])) < vl {
			return nil, errTrunc("leaf value")
		}
		p = p[sz:]
		n.val = p[:vl:vl]
		n.hasVal = true
		p = p[vl:]
	case kindExt:
		if n.path, p, err = readNibbles(p); err != nil {
			return nil, err
		}
		if len(n.path) == 0 {
			return nil, errors.New("mpt: extension with empty path")
		}
		if len(p) < hash.Size {
			return nil, errTrunc("extension child")
		}
		copy(n.childID[:], p[:hash.Size])
		p = p[hash.Size:]
		cnt, sz := binary.Uvarint(p)
		if sz <= 0 {
			return nil, errTrunc("extension count")
		}
		n.childCount = cnt
		p = p[sz:]
	case kindBranch:
		if len(p) < 2 {
			return nil, errTrunc("branch bitmap")
		}
		n.childMask = uint16(p[0])<<8 | uint16(p[1])
		p = p[2:]
		for i := 0; i < 16; i++ {
			if n.childMask&(1<<i) == 0 {
				continue
			}
			if len(p) < hash.Size {
				return nil, errTrunc("branch child hash")
			}
			copy(n.childIDs[i][:], p[:hash.Size])
			p = p[hash.Size:]
			cnt, sz := binary.Uvarint(p)
			if sz <= 0 {
				return nil, errTrunc("branch child count")
			}
			n.childCounts[i] = cnt
			p = p[sz:]
		}
		if len(p) < 1 {
			return nil, errTrunc("branch value flag")
		}
		flag := p[0]
		p = p[1:]
		switch flag {
		case 0:
		case 1:
			vl, sz := binary.Uvarint(p)
			if sz <= 0 || uint64(len(p[sz:])) < vl {
				return nil, errTrunc("branch value")
			}
			p = p[sz:]
			n.val = p[:vl:vl]
			n.hasVal = true
			p = p[vl:]
		default:
			return nil, fmt.Errorf("mpt: bad branch value flag %d", flag)
		}
	default:
		return nil, fmt.Errorf("mpt: unknown node kind %d", n.kind)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("mpt: %d trailing bytes in node", len(p))
	}
	n.memSize = c.Size() + len(n.path) + 16*48
	return n, nil
}

// Children returns the child chunk hashes of an MPT node chunk — the hook
// the index layer's reachability registry dispatches to for GC marking,
// verification and the replication Merkle prune.
func Children(c *chunk.Chunk) ([]hash.Hash, error) {
	if c.Type() != chunk.TypeMPTNode {
		return nil, nil
	}
	n, err := decodeNode(c)
	if err != nil {
		return nil, err
	}
	switch n.kind {
	case kindExt:
		return []hash.Hash{n.childID}, nil
	case kindBranch:
		out := make([]hash.Hash, 0, 16)
		for i := 0; i < 16; i++ {
			if n.childMask&(1<<i) != 0 {
				out = append(out, n.childIDs[i])
			}
		}
		return out, nil
	default:
		return nil, nil
	}
}

// source is the gateway through which traversals obtain decoded nodes,
// coupling the chunk store with the shared decoded-node cache exactly like
// the POS-Tree's nodeSource.
type source struct {
	st    store.Store
	cache *nodecache.Cache
}

func sourceFor(st store.Store) source {
	return source{st: st, cache: store.NodeCacheOf(st)}
}

func (s source) load(id hash.Hash) (*node, error) {
	if s.cache != nil {
		if v, ok := s.cache.Get(id); ok {
			if n, ok := v.(*node); ok {
				return n, nil
			}
		}
	}
	c, err := s.st.Get(id)
	if err != nil {
		return nil, err
	}
	if c.Type() != chunk.TypeMPTNode {
		return nil, fmt.Errorf("mpt: chunk %s is a %s, not an mpt node", id.Short(), c.Type())
	}
	n, err := decodeNode(c)
	if err != nil {
		return nil, err
	}
	if s.cache != nil {
		s.cache.Put(id, n, n.memSize)
		// Close the GC purge race exactly like pos.nodeSource: the sweep's
		// cache purge strictly follows its store delete, so re-checking the
		// store after our insert means a swept node cannot stay resident.
		if ok, herr := s.st.Has(id); herr != nil || !ok {
			s.cache.Remove(id)
		}
	}
	return n, nil
}

// Trie is an immutable Merkle Patricia Trie rooted at a chunk hash.  Like
// pos.Tree it is a lightweight handle; operations that "modify" it return a
// new Trie sharing unchanged chunks with the old one.
type Trie struct {
	src   source
	cfg   chunker.Config
	root  hash.Hash
	count uint64
}

// New returns the empty trie (zero root).
func New(st store.Store, cfg chunker.Config) *Trie {
	return &Trie{src: sourceFor(st), cfg: cfg}
}

// Load attaches to an existing trie by root hash.  A zero root is the
// empty trie.  The root node is read to recover the entry count.
func Load(st store.Store, cfg chunker.Config, root hash.Hash) (*Trie, error) {
	t := &Trie{src: sourceFor(st), cfg: cfg, root: root}
	if root.IsZero() {
		return t, nil
	}
	n, err := t.src.load(root)
	if err != nil {
		return nil, fmt.Errorf("mpt: loading root: %w", err)
	}
	t.count = n.count()
	return t, nil
}

// Kind identifies the structure (index.KindMPT).
func (t *Trie) Kind() index.Kind { return index.KindMPT }

// Root returns the root hash; zero for the empty trie.
func (t *Trie) Root() hash.Hash { return t.root }

// Len returns the number of entries.
func (t *Trie) Len() uint64 { return t.count }

// Store returns the backing chunk store.
func (t *Trie) Store() store.Store { return t.src.st }

// Config returns the chunking configuration (carried for interface parity;
// trie node boundaries follow key structure, not content-defined chunking).
func (t *Trie) Config() chunker.Config { return t.cfg }

// keyNibbles expands a key into its nibble path, high nibble first.
func keyNibbles(key []byte) []byte {
	out := make([]byte, 0, len(key)*2)
	for _, b := range key {
		out = append(out, b>>4, b&0x0f)
	}
	return out
}

// nibblesToKey packs an (even-length) nibble path back into key bytes.
func nibblesToKey(nibs []byte) []byte {
	out := make([]byte, len(nibs)/2)
	for i := range out {
		out[i] = nibs[2*i]<<4 | nibs[2*i+1]
	}
	return out
}

// commonPrefix returns the length of the shared prefix of two nibble paths.
func commonPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// Get returns the value stored under key, or index.ErrKeyNotFound.
//
// The returned slice aliases shared decoded node data: callers must not
// modify it, and should copy before holding it long-term.
func (t *Trie) Get(key []byte) ([]byte, error) {
	if t.root.IsZero() {
		return nil, index.ErrKeyNotFound
	}
	rem := keyNibbles(key)
	id := t.root
	for {
		n, err := t.src.load(id)
		if err != nil {
			return nil, fmt.Errorf("mpt: get: %w", err)
		}
		switch n.kind {
		case kindLeaf:
			if commonPrefix(n.path, rem) == len(n.path) && len(n.path) == len(rem) {
				return n.val, nil
			}
			return nil, index.ErrKeyNotFound
		case kindExt:
			if commonPrefix(n.path, rem) != len(n.path) {
				return nil, index.ErrKeyNotFound
			}
			rem = rem[len(n.path):]
			id = n.childID
		case kindBranch:
			if len(rem) == 0 {
				if n.hasVal {
					return n.val, nil
				}
				return nil, index.ErrKeyNotFound
			}
			i := rem[0]
			if n.childMask&(1<<i) == 0 {
				return nil, index.ErrKeyNotFound
			}
			id = n.childIDs[i]
			rem = rem[1:]
		}
	}
}

// Has reports whether key is present.
func (t *Trie) Has(key []byte) (bool, error) {
	_, err := t.Get(key)
	if errors.Is(err, index.ErrKeyNotFound) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// ChunkIDs returns the ids of every chunk in the trie (root included).
func (t *Trie) ChunkIDs() ([]hash.Hash, error) {
	var out []hash.Hash
	if t.root.IsZero() {
		return nil, nil
	}
	var walk func(id hash.Hash) error
	walk = func(id hash.Hash) error {
		out = append(out, id)
		n, err := t.src.load(id)
		if err != nil {
			return err
		}
		switch n.kind {
		case kindExt:
			return walk(n.childID)
		case kindBranch:
			for i := 0; i < 16; i++ {
				if n.childMask&(1<<i) == 0 {
					continue
				}
				if err := walk(n.childIDs[i]); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return nil, err
	}
	return out, nil
}

// ComputeStats walks the whole trie and reports its physical shape in the
// index layer's structure-comparable form: leaves are the value-carrying
// terminal nodes; extensions and branches count as interior nodes.
func (t *Trie) ComputeStats() (index.Stats, error) {
	st := index.Stats{Entries: t.count, MinNode: 1 << 30}
	if t.root.IsZero() {
		st.MinNode = 0
		return st, nil
	}
	var walk func(id hash.Hash, depth int) error
	walk = func(id hash.Hash, depth int) error {
		n, err := t.src.load(id)
		if err != nil {
			return err
		}
		st.Nodes++
		st.Bytes += int64(n.encSize)
		if n.encSize < st.MinNode {
			st.MinNode = n.encSize
		}
		if n.encSize > st.MaxNode {
			st.MaxNode = n.encSize
		}
		if depth+1 > st.Height {
			st.Height = depth + 1
		}
		switch n.kind {
		case kindLeaf:
			st.LeafNodes++
			st.LeafBytes += int64(n.encSize)
			return nil
		case kindExt:
			st.IndexNodes++
			return walk(n.childID, depth+1)
		default:
			st.IndexNodes++
			for i := 0; i < 16; i++ {
				if n.childMask&(1<<i) == 0 {
					continue
				}
				if err := walk(n.childIDs[i], depth+1); err != nil {
					return err
				}
			}
			return nil
		}
	}
	if err := walk(t.root, 0); err != nil {
		return index.Stats{}, err
	}
	return st, nil
}

// factory builds, loads and empties tries for the index registry.
type factory struct{}

func (factory) Kind() index.Kind { return index.KindMPT }

func (factory) Empty(st store.Store, cfg chunker.Config) index.VersionedIndex {
	return New(st, cfg)
}

func (factory) Load(st store.Store, cfg chunker.Config, root hash.Hash) (index.VersionedIndex, error) {
	t, err := Load(st, cfg, root)
	if err != nil {
		return nil, err
	}
	return t, nil
}

func (factory) Build(st store.Store, cfg chunker.Config, entries []index.Entry) (index.VersionedIndex, error) {
	t, err := Build(st, cfg, entries)
	if err != nil {
		return nil, err
	}
	return t, nil
}

func init() {
	index.Register(factory{})
	index.RegisterRoot(chunk.TypeMPTNode, index.KindMPT)
	index.RegisterChildren(chunk.TypeMPTNode, Children)
}

var _ index.VersionedIndex = (*Trie)(nil)
