package mpt

import (
	"bytes"
	"sync"
	"sync/atomic"

	"forkbase/internal/index"
)

// Parallel structural diff.
//
// The lockstep cursor walk fans out at branch nodes: the up-to-16 child
// positions cover disjoint key ranges (distinct next nibbles) and never
// interact, so they are the parallel task unit.  The collector walks down
// from the roots — emitting position values pre-order and pruning shared
// subtrees exactly like the serial differ — until a position offers more
// than one divergent child; those children go to a bounded worker pool,
// each diffed by its own sub-differ running the unchanged serial recursion.
// Outputs concatenate in nibble order, so deltas and stats are identical to
// DiffSerial for any worker count (pinned by the differential tests).

// nibbleTask is one child-position pair queued for the pool.
type nibbleTask struct {
	prefix []byte
	a, b   *dref
}

// DiffParallel is Diff with an explicit fan-out; workers <= 1 runs the
// serial differ.
func (t *Trie) DiffParallel(o *Trie, workers int) ([]index.Delta, index.DiffStats, error) {
	if workers <= 1 {
		return t.DiffSerial(o)
	}
	if t.root == o.root {
		return nil, index.DiffStats{}, nil
	}
	d := &differ{old: t, new: o} // collector: descent emissions + pruning
	a, b := rootRef(t), rootRef(o)
	var tasks []nibbleTask
descend:
	for {
		switch {
		case a == nil && b == nil:
			break descend
		case a != nil && b != nil && !a.id.IsZero() && a.id == b.id:
			d.stats.PrunedRefs++
			break descend
		case a == nil:
			// One-sided subtree: every entry is an add.  Kept serial — the
			// whole side is new data with no pruning to exploit.
			if err := d.emitAll(d.new, b, func(key, val []byte) {
				d.out = append(d.out, index.Delta{Key: key, To: val})
			}); err != nil {
				return nil, index.DiffStats{}, err
			}
			break descend
		case b == nil:
			if err := d.emitAll(d.old, a, func(key, val []byte) {
				d.out = append(d.out, index.Delta{Key: key, From: val})
			}); err != nil {
				return nil, index.DiffStats{}, err
			}
			break descend
		}
		av, aOK, aKids, err := d.position(d.old, a)
		if err != nil {
			return nil, index.DiffStats{}, err
		}
		bv, bOK, bKids, err := d.position(d.new, b)
		if err != nil {
			return nil, index.DiffStats{}, err
		}
		// Pre-order: the position's own value delta precedes its children's.
		key := func() []byte { return nibblesToKey(d.prefix) }
		switch {
		case aOK && bOK:
			if !bytes.Equal(av, bv) {
				d.out = append(d.out, index.Delta{Key: key(), From: cp(av), To: cp(bv)})
			}
		case aOK:
			d.out = append(d.out, index.Delta{Key: key(), From: cp(av)})
		case bOK:
			d.out = append(d.out, index.Delta{Key: key(), To: cp(bv)})
		}
		tasks = tasks[:0]
		for i := 0; i < 16; i++ {
			if aKids[i] == nil && bKids[i] == nil {
				continue
			}
			prefix := make([]byte, len(d.prefix)+1)
			copy(prefix, d.prefix)
			prefix[len(d.prefix)] = byte(i)
			tasks = append(tasks, nibbleTask{prefix: prefix, a: aKids[i], b: bKids[i]})
		}
		if len(tasks) != 1 {
			break
		}
		// A single divergent child cannot fan out; step into it, exactly
		// like the serial recursion would.
		d.prefix = tasks[0].prefix
		a, b = tasks[0].a, tasks[0].b
		tasks = nil
	}
	if len(tasks) == 0 {
		d.stats.Deltas = len(d.out)
		return d.out, d.stats, nil
	}

	subs := make([]*differ, len(tasks))
	errs := make([]error, len(tasks))
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				sub := &differ{old: t, new: o, prefix: tasks[i].prefix}
				subs[i] = sub
				errs[i] = sub.diff(tasks[i].a, tasks[i].b)
			}
		}()
	}
	wg.Wait()
	out := d.out
	stats := d.stats
	for i := range tasks {
		if errs[i] != nil {
			return nil, index.DiffStats{}, errs[i]
		}
		out = append(out, subs[i].out...)
		stats.TouchedChunks += subs[i].stats.TouchedChunks
		stats.PrunedRefs += subs[i].stats.PrunedRefs
	}
	stats.Deltas = len(out)
	return out, stats, nil
}
