package mpt

import (
	"fmt"

	"forkbase/internal/index"
)

// Nibble-path lexicographic order equals key-byte lexicographic order (each
// byte expands to its high nibble then its low nibble), and a key ending at
// a branch sorts before every key continuing through it — so a depth-first
// walk that emits a branch's value before its children yields entries in
// exactly the key order pos.Tree.Iter produces.

// Iter walks a trie in key order.
type Iter struct {
	t      *Trie
	stack  []iterFrame
	prefix []byte // nibbles of the current position
	cur    index.Entry
	err    error
	done   bool
}

type iterFrame struct {
	n       *node
	plen    int // prefix length to restore when this frame pops
	slot    int // branch: next child slot; -1 = value not yet emitted
	visited bool
}

// push enters a node, appending its compressed path to the prefix.
func (it *Iter) push(n *node, plen int) {
	it.stack = append(it.stack, iterFrame{n: n, plen: plen, slot: -1})
	if n.kind != kindBranch {
		it.prefix = append(it.prefix, n.path...)
	}
}

func (it *Iter) pop() {
	top := it.stack[len(it.stack)-1]
	it.prefix = it.prefix[:top.plen]
	it.stack = it.stack[:len(it.stack)-1]
}

// Next advances to the next entry; it returns false at the end or on error.
func (it *Iter) Next() bool {
	if it.done || it.err != nil {
		return false
	}
	for len(it.stack) > 0 {
		top := &it.stack[len(it.stack)-1]
		switch top.n.kind {
		case kindLeaf:
			if top.visited {
				it.pop()
				continue
			}
			top.visited = true
			it.cur = index.Entry{Key: nibblesToKey(it.prefix), Val: top.n.val}
			return true
		case kindExt:
			if top.visited {
				it.pop()
				continue
			}
			top.visited = true
			child, err := it.t.src.load(top.n.childID)
			if err != nil {
				it.err = fmt.Errorf("mpt: iter: %w", err)
				return false
			}
			it.push(child, len(it.prefix))
			continue
		default: // branch
			if top.slot == -1 {
				top.slot = 0
				if top.n.hasVal {
					it.cur = index.Entry{Key: nibblesToKey(it.prefix), Val: top.n.val}
					return true
				}
			}
			for top.slot < 16 && top.n.childMask&(1<<top.slot) == 0 {
				top.slot++
			}
			if top.slot >= 16 {
				it.pop()
				continue
			}
			i := top.slot
			top.slot++
			child, err := it.t.src.load(top.n.childIDs[i])
			if err != nil {
				it.err = fmt.Errorf("mpt: iter: %w", err)
				return false
			}
			restore := len(it.prefix)
			it.prefix = append(it.prefix, byte(i))
			it.push(child, restore)
			continue
		}
	}
	it.done = true
	return false
}

// Entry returns the current entry.  Valid only after a true Next.  The
// value aliases decoded chunk data; copy before holding long-term.
func (it *Iter) Entry() index.Entry { return it.cur }

// Err returns the first error encountered during iteration.
func (it *Iter) Err() error { return it.err }

// Iterate returns an iterator positioned before the first entry.
func (t *Trie) Iterate() (index.Iterator, error) {
	it := &Iter{t: t}
	if t.root.IsZero() {
		it.done = true
		return it, nil
	}
	n, err := t.src.load(t.root)
	if err != nil {
		return nil, fmt.Errorf("mpt: iter: %w", err)
	}
	it.push(n, 0)
	return it, nil
}

// nibCompare lexicographically compares two nibble paths.
func nibCompare(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// IterateFrom returns an iterator positioned before the first entry whose
// key is >= key, descending only the nodes on the seek path.
func (t *Trie) IterateFrom(key []byte) (index.Iterator, error) {
	it := &Iter{t: t}
	if t.root.IsZero() {
		it.done = true
		return it, nil
	}
	n, err := t.src.load(t.root)
	if err != nil {
		return nil, fmt.Errorf("mpt: iter: %w", err)
	}
	if err := it.seek(n, keyNibbles(key)); err != nil {
		return nil, err
	}
	return it, nil
}

// seek positions the iterator stack so that iteration resumes at the first
// key >= the remaining target path rem, relative to the current prefix.
func (it *Iter) seek(n *node, rem []byte) error {
	switch n.kind {
	case kindLeaf:
		if nibCompare(n.path, rem) >= 0 {
			it.push(n, len(it.prefix))
		}
		return nil
	case kindExt:
		cp := commonPrefix(n.path, rem)
		switch {
		case cp == len(rem):
			// The target is a prefix of (or equal to) the node path: every
			// key under this subtree is >= the target.
			it.push(n, len(it.prefix))
			return nil
		case cp == len(n.path):
			// The target continues past the compressed path: descend.
			plen := len(it.prefix)
			it.stack = append(it.stack, iterFrame{n: n, plen: plen, visited: true})
			it.prefix = append(it.prefix, n.path...)
			child, err := it.t.src.load(n.childID)
			if err != nil {
				return fmt.Errorf("mpt: iter: %w", err)
			}
			return it.seek(child, rem[cp:])
		case n.path[cp] > rem[cp]:
			it.push(n, len(it.prefix)) // whole subtree sorts after the target
			return nil
		default:
			return nil // whole subtree sorts before the target: skip
		}
	default: // branch
		if len(rem) == 0 {
			it.push(n, len(it.prefix))
			return nil
		}
		i := rem[0]
		// The branch value (key == prefix) and children below nibble i all
		// sort before the target; resume at slot i+1 once the descended
		// child subtree is exhausted.
		it.stack = append(it.stack, iterFrame{n: n, plen: len(it.prefix), slot: int(i) + 1})
		if n.childMask&(1<<i) == 0 {
			return nil
		}
		it.prefix = append(it.prefix, i)
		child, err := it.t.src.load(n.childIDs[i])
		if err != nil {
			return fmt.Errorf("mpt: iter: %w", err)
		}
		// The child's frame restores the prefix to before the routing
		// nibble.
		if err := it.seekChild(child, rem[1:]); err != nil {
			return err
		}
		return nil
	}
}

// seekChild seeks into a branch child whose routing nibble was already
// appended to the prefix: frames pushed for this subtree must restore the
// prefix to before that nibble.
func (it *Iter) seekChild(n *node, rem []byte) error {
	// Delegate to seek, then fix up the restore point of the frame that
	// roots this subtree (if any was pushed): it must also drop the routing
	// nibble the parent appended.
	depth := len(it.stack)
	if err := it.seek(n, rem); err != nil {
		return err
	}
	if len(it.stack) > depth {
		it.stack[depth].plen--
	} else {
		// Nothing under the child qualified: drop the routing nibble now.
		it.prefix = it.prefix[:len(it.prefix)-1]
	}
	return nil
}

// At returns the entry at rank i (0-based, key order) in O(depth), routing
// through the per-child subtree counts.
func (t *Trie) At(i uint64) (index.Entry, error) {
	if i >= t.count {
		return index.Entry{}, index.ErrOutOfRange
	}
	var prefix []byte
	id := t.root
	for {
		n, err := t.src.load(id)
		if err != nil {
			return index.Entry{}, fmt.Errorf("mpt: at: %w", err)
		}
		switch n.kind {
		case kindLeaf:
			if i != 0 {
				return index.Entry{}, index.ErrOutOfRange
			}
			prefix = append(prefix, n.path...)
			return index.Entry{Key: nibblesToKey(prefix), Val: n.val}, nil
		case kindExt:
			prefix = append(prefix, n.path...)
			id = n.childID
		default:
			if n.hasVal {
				if i == 0 {
					return index.Entry{Key: nibblesToKey(prefix), Val: n.val}, nil
				}
				i--
			}
			routed := false
			for s := 0; s < 16; s++ {
				if n.childMask&(1<<s) == 0 {
					continue
				}
				if i < n.childCounts[s] {
					prefix = append(prefix, byte(s))
					id = n.childIDs[s]
					routed = true
					break
				}
				i -= n.childCounts[s]
			}
			if !routed {
				return index.Entry{}, index.ErrOutOfRange
			}
		}
	}
}

// Rank returns the number of entries with key strictly less than key, in
// O(depth): whole subtrees left of the search path are counted without
// being read.
func (t *Trie) Rank(key []byte) (uint64, error) {
	if t.root.IsZero() {
		return 0, nil
	}
	rem := keyNibbles(key)
	var rank uint64
	id := t.root
	for {
		n, err := t.src.load(id)
		if err != nil {
			return 0, fmt.Errorf("mpt: rank: %w", err)
		}
		switch n.kind {
		case kindLeaf:
			if nibCompare(n.path, rem) < 0 {
				rank++
			}
			return rank, nil
		case kindExt:
			cp := commonPrefix(n.path, rem)
			switch {
			case cp == len(n.path):
				rem = rem[cp:]
				id = n.childID
			case cp == len(rem) || rem[cp] < n.path[cp]:
				return rank, nil // whole subtree sorts after key
			default:
				return rank + n.childCount, nil // whole subtree sorts before
			}
		default:
			if len(rem) == 0 {
				return rank, nil // branch value (== key) and children all >= key
			}
			if n.hasVal {
				rank++ // the branch's own key is a strict prefix of key
			}
			i := rem[0]
			for s := 0; s < int(i); s++ {
				if n.childMask&(1<<s) != 0 {
					rank += n.childCounts[s]
				}
			}
			if n.childMask&(1<<i) == 0 {
				return rank, nil
			}
			id = n.childIDs[i]
			rem = rem[1:]
		}
	}
}

var _ index.Iterator = (*Iter)(nil)
