package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"forkbase/internal/chunk"
	"forkbase/internal/hash"
	"forkbase/internal/store"
)

// FlakyStore wraps a store.Store and injects transient failures and slow
// calls.  Failures surface as store.ErrUnavailable — the transient class
// the retry and serving layers are built to absorb — never as silent
// corruption (that threat model is MaliciousStore's job).  It forwards the
// batch capabilities, so it composes with the counting/verifying wrappers
// in either order.
//
// Concurrency: every knob, the rng and both counters (ops, failures) are
// read and written only under one mutex in enter(), so the fault schedule
// and its accounting stay consistent when parallel build or compaction
// workers drive the store from many goroutines.
type FlakyStore struct {
	Inner store.Store

	mu        sync.Mutex
	rng       *rand.Rand
	failEvery int           // every nth op fails (0 = off); deterministic
	prob      float64       // per-op failure probability from the seed
	delay     time.Duration // injected latency per op
	down      bool          // hard outage: every op fails until lifted
	ops       int64
	failures  int64
}

var (
	_ store.Store          = (*FlakyStore)(nil)
	_ store.BatchStore     = (*FlakyStore)(nil)
	_ store.BatchReadStore = (*FlakyStore)(nil)
)

// NewFlakyStore wraps inner with a seeded fault source.  With no knobs set
// it is a transparent pass-through.
func NewFlakyStore(inner store.Store, seed int64) *FlakyStore {
	return &FlakyStore{Inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// FailEvery makes every nth operation fail (0 disables).  Deterministic
// regardless of seed: the schedule is the op counter.
func (f *FlakyStore) FailEvery(n int) { f.mu.Lock(); f.failEvery = n; f.mu.Unlock() }

// SetProb makes each operation fail with probability p, drawn from the
// seeded source.
func (f *FlakyStore) SetProb(p float64) { f.mu.Lock(); f.prob = p; f.mu.Unlock() }

// SetDelay injects d of latency into every operation.
func (f *FlakyStore) SetDelay(d time.Duration) { f.mu.Lock(); f.delay = d; f.mu.Unlock() }

// SetDown toggles a hard outage: every operation fails until lifted.
func (f *FlakyStore) SetDown(down bool) { f.mu.Lock(); f.down = down; f.mu.Unlock() }

// Failures reports how many operations were failed by injection.
func (f *FlakyStore) Failures() int64 { f.mu.Lock(); defer f.mu.Unlock(); return f.failures }

// enter applies the per-op fault schedule: count, delay, maybe fail.
func (f *FlakyStore) enter(op string) error {
	f.mu.Lock()
	f.ops++
	delay := f.delay
	fail := f.down ||
		(f.failEvery > 0 && f.ops%int64(f.failEvery) == 0) ||
		(f.prob > 0 && f.rng.Float64() < f.prob)
	if fail {
		f.failures++
	}
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return fmt.Errorf("chaos: injected %s fault: %w", op, store.ErrUnavailable)
	}
	return nil
}

// Put implements store.Store.
func (f *FlakyStore) Put(c *chunk.Chunk) (bool, error) {
	if err := f.enter("put"); err != nil {
		return false, err
	}
	return f.Inner.Put(c)
}

// Get implements store.Store.
func (f *FlakyStore) Get(id hash.Hash) (*chunk.Chunk, error) {
	if err := f.enter("get"); err != nil {
		return nil, err
	}
	return f.Inner.Get(id)
}

// Has implements store.Store.
func (f *FlakyStore) Has(id hash.Hash) (bool, error) {
	if err := f.enter("has"); err != nil {
		return false, err
	}
	return f.Inner.Has(id)
}

// PutBatch implements store.BatchStore; one injection decision covers the
// whole batch (a backend fails per request, not per record).
func (f *FlakyStore) PutBatch(cs []*chunk.Chunk) ([]bool, error) {
	if err := f.enter("putbatch"); err != nil {
		return make([]bool, len(cs)), err
	}
	return store.PutBatch(f.Inner, cs)
}

// GetBatch implements store.BatchReadStore.
func (f *FlakyStore) GetBatch(ids []hash.Hash) ([]*chunk.Chunk, error) {
	if err := f.enter("getbatch"); err != nil {
		return nil, err
	}
	return store.GetBatch(f.Inner, ids)
}

// HasBatch implements store.BatchReadStore.
func (f *FlakyStore) HasBatch(ids []hash.Hash) ([]bool, error) {
	if err := f.enter("hasbatch"); err != nil {
		return nil, err
	}
	return store.HasBatch(f.Inner, ids)
}

// Stats implements store.Store.  Never injected: health probes must see the
// store even mid-outage.
func (f *FlakyStore) Stats() store.Stats { return f.Inner.Stats() }
