package chaos_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"forkbase/internal/chaos"
	"forkbase/internal/chunk"
	"forkbase/internal/store"
)

// writeSegments fills a small-segment FileStore so several sealed segments
// exist, then closes it and returns the directory.
func writeSegments(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	s, err := store.OpenFileStoreWith(dir, store.FileStoreOptions{SegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		c := chunk.New(chunk.TypeBlobLeaf, bytes.Repeat([]byte{byte(i), byte(i >> 8)}, 100))
		if _, err := s.Put(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// idleProxy is a proxy nothing ever dials: Agitator rounds only arm faults,
// so no backing server is needed.
func idleProxy(t *testing.T) *chaos.Proxy {
	t.Helper()
	p, err := chaos.NewProxy("127.0.0.1:9")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// class is the first word of an Agitator round description — stable across
// runs even though proxy addresses differ.
func class(desc string) string {
	if i := strings.IndexByte(desc, ' '); i > 0 {
		return desc[:i]
	}
	return desc
}

// TestCorruptFileDeterministic: the same (seed, nFlips) flips the same bits,
// so a corruption scenario replays exactly.
func TestCorruptFileDeterministic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	payload := bytes.Repeat([]byte{0xAB}, 4096)
	var rounds [2][]byte
	for round := 0; round < 2; round++ {
		if err := os.WriteFile(path, payload, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := chaos.CorruptFile(path, 42, 5); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(got, payload) {
			t.Fatal("corruption flipped nothing")
		}
		rounds[round] = got
	}
	if !bytes.Equal(rounds[0], rounds[1]) {
		t.Fatal("same seed produced different corruption")
	}
}

// TestCorruptSegmentSparesActiveTail: the victim is always a sealed segment,
// never the highest-numbered (active) one, and the damage is visible to a
// reopening store's recovery classifier.
func TestCorruptSegmentSparesActiveTail(t *testing.T) {
	dir := writeSegments(t)
	segs, err := chaos.SegmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("want several segments, got %d", len(segs))
	}
	active := segs[len(segs)-1]
	for seed := int64(0); seed < 8; seed++ {
		victim, err := chaos.CorruptSegment(dir, seed, 1)
		if err != nil {
			t.Fatal(err)
		}
		if victim == active {
			t.Fatalf("seed %d corrupted the active tail %s", seed, victim)
		}
	}
	s, err := store.OpenFileStoreWith(dir, store.FileStoreOptions{SegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, _, ok := s.LastScrub()
	if !ok || st.Corrupt+st.Torn == 0 {
		t.Fatalf("recovery saw no damage after 8 corruption rounds: %+v", st)
	}
}

// TestCorruptSegmentNeedsSealed: a store with only an active tail has
// nothing safe to corrupt; the injector says so instead of rotting a live
// append target.
func TestCorruptSegmentNeedsSealed(t *testing.T) {
	dir := t.TempDir()
	s, err := store.OpenFileStoreWith(dir, store.FileStoreOptions{SegmentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Put(chunk.New(chunk.TypeBlobLeaf, []byte("only one segment"))); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := chaos.CorruptSegment(dir, 1, 1); err == nil {
		t.Fatal("expected an error with no sealed segments")
	}
}

// TestAgitatorDiskEvents: with a disk opted in, the seeded schedule includes
// disk-rot rounds, and the same seed replays the same class sequence.
func TestAgitatorDiskEvents(t *testing.T) {
	run := func(dir string) []string {
		ag := chaos.NewAgitator(7, idleProxy(t))
		ag.MaxOutage = 2 // nanoseconds: keep holds instant
		ag.AddDisk(dir)
		var classes []string
		for i := 0; i < 40; i++ {
			classes = append(classes, class(ag.Round()))
		}
		return classes
	}
	a := run(writeSegments(t))
	b := run(writeSegments(t))

	disk := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round %d diverged: %q vs %q", i, a[i], b[i])
		}
		if a[i] == "disk" {
			disk++
		}
	}
	if disk == 0 {
		t.Fatal("40 rounds with a disk opted in never drew the disk class")
	}
}

// TestAgitatorNoDiskKeepsSchedule: without AddDisk the schedule never draws
// the disk class — existing seeded storms replay unchanged.
func TestAgitatorNoDiskKeepsSchedule(t *testing.T) {
	ag := chaos.NewAgitator(7, idleProxy(t))
	ag.MaxOutage = 2
	for i := 0; i < 40; i++ {
		if class(ag.Round()) == "disk" {
			t.Fatal("disk class drawn without AddDisk")
		}
	}
}
