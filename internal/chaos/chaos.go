// Package chaos is ForkBase's deterministic fault-injection toolkit.  It
// exists so the failure paths the robustness layer claims to handle are
// exercised the same way the happy paths are: in ordinary `go test` runs,
// reproducibly, from a seed.
//
// Three fault surfaces, matching the three places real deployments fail:
//
//   - Proxy: a TCP man-in-the-middle between client and server that injects
//     latency, bandwidth caps, connection resets, one-way partitions and
//     mid-frame truncation — scripted by tests or driven by a seeded
//     Agitator for soak runs.
//   - FlakyStore: a store.Store wrapper injecting transient errors
//     (store.ErrUnavailable) and slow calls, composing with the existing
//     counting/verifying/malicious wrappers.
//   - PanicAt: a crash-point hook for FileStore.SetCrashHook that simulates
//     a process crash at a named point of the rotate/compact lifecycle.
//
// Faults are injected on a schedule, never on a wall-clock coincidence:
// given the same seed and the same sequence of operations, the same faults
// fire.  (Thread interleaving still varies — determinism here means the
// fault *schedule* is reproducible, which is what makes a failing soak seed
// replayable.)
package chaos

import (
	"fmt"
	"sync/atomic"
)

// Crash is the panic value raised by PanicAt hooks, so tests can tell a
// simulated crash from a real bug when recovering.
type Crash struct {
	Point string
	Seg   int
}

func (c Crash) Error() string {
	return fmt.Sprintf("chaos: simulated crash at %s (segment %d)", c.Point, c.Seg)
}

// PanicAt returns a crash hook for store.FileStore.SetCrashHook that
// panics with a Crash value at the nth (1-based) hit of the named point.
// Recover it at the call site to simulate the process dying mid-operation,
// then reopen the store directory to exercise recovery.
func PanicAt(point string, nth int) func(string, int) {
	var hits atomic.Int32
	return func(p string, seg int) {
		if p != point {
			return
		}
		if int(hits.Add(1)) == nth {
			panic(Crash{Point: p, Seg: seg})
		}
	}
}
