package chaos

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
)

// Disk-fault injection: seeded bit flips against FileStore segment files.
// The scrub/quarantine/heal machinery in internal/store and internal/core is
// the system under test; these helpers are the rot.

// CorruptFile flips nFlips seeded bits in place across the named file.  The
// same (file contents length, seed, nFlips) triple flips the same bits, so a
// corruption scenario replays exactly.  Flipping is position-uniform: header
// bytes (ids, lengths, types) are as likely to rot as payloads, which is
// what exercises every classifier branch (corrupt, torn) rather than only
// payload mismatches.
func CorruptFile(path string, seed int64, nFlips int) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("chaos: corrupt %s: %w", path, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("chaos: corrupt %s: %w", path, err)
	}
	if fi.Size() == 0 {
		return fmt.Errorf("chaos: corrupt %s: file is empty", path)
	}
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, 1)
	for i := 0; i < nFlips; i++ {
		off := rng.Int63n(fi.Size())
		if _, err := f.ReadAt(b, off); err != nil {
			return fmt.Errorf("chaos: corrupt %s: %w", path, err)
		}
		b[0] ^= 1 << uint(rng.Intn(8))
		if _, err := f.WriteAt(b, off); err != nil {
			return fmt.Errorf("chaos: corrupt %s: %w", path, err)
		}
	}
	return f.Sync()
}

// SegmentFiles lists a FileStore directory's live segment files, sorted —
// quarantined segments excluded, like the store's own glob.
func SegmentFiles(dir string) ([]string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	sort.Strings(names)
	return names, nil
}

// CorruptSegment flips nFlips seeded bits in one seed-chosen sealed segment
// of a FileStore directory (the highest-numbered segment — the active tail —
// is spared: rotting bytes under a live O_APPEND writer tests the injector,
// not the store).  It returns the victim's path.
func CorruptSegment(dir string, seed int64, nFlips int) (string, error) {
	segs, err := SegmentFiles(dir)
	if err != nil {
		return "", err
	}
	if len(segs) < 2 {
		return "", fmt.Errorf("chaos: %s has no sealed segments to corrupt", dir)
	}
	sealed := segs[:len(segs)-1]
	rng := rand.New(rand.NewSource(seed))
	victim := sealed[rng.Intn(len(sealed))]
	if err := CorruptFile(victim, rng.Int63(), nFlips); err != nil {
		return "", err
	}
	return victim, nil
}
