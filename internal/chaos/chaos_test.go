package chaos_test

import (
	"errors"
	"testing"
	"time"

	"forkbase/internal/chaos"
	"forkbase/internal/chunk"
	"forkbase/internal/core"
	"forkbase/internal/hash"
	"forkbase/internal/retry"
	"forkbase/internal/server"
	"forkbase/internal/store"
)

// startProxied brings up a server behind a chaos proxy and returns a client
// with tight timeouts (so fault tests fail fast instead of waiting out
// production deadlines).
func startProxied(t *testing.T) (*chaos.Proxy, *server.Client) {
	t.Helper()
	srv := server.New(store.NewMemStore(), core.NewMemBranchTable(), nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	p, err := chaos.NewProxy(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	cl, err := server.DialWithOptions(p.Addr(), server.ClientOptions{
		DialTimeout: time.Second,
		OpTimeout:   200 * time.Millisecond,
		Retry:       retry.Policy{Attempts: 4, Base: 5 * time.Millisecond, Max: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return p, cl
}

func TestProxyForwardsTransparently(t *testing.T) {
	_, cl := startProxied(t)
	rs := server.NewRemoteStore(cl)
	c := chunk.New(chunk.TypeBlobLeaf, []byte("through the proxy"))
	if fresh, err := rs.Put(c); err != nil || !fresh {
		t.Fatalf("put: %v %v", fresh, err)
	}
	got, err := rs.Get(c.ID())
	if err != nil || string(got.Data()) != "through the proxy" {
		t.Fatalf("get: %v %v", got, err)
	}
}

func TestProxyLatencyAndBandwidthSlowButDeliver(t *testing.T) {
	p, cl := startProxied(t)
	rs := server.NewRemoteStore(cl)
	p.SetLatency(10 * time.Millisecond)
	p.SetBandwidth(256 << 10)
	c := chunk.New(chunk.TypeBlobLeaf, []byte("slow lane"))
	start := time.Now()
	if _, err := rs.Put(c); err != nil {
		t.Fatalf("put under latency: %v", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("latency injection had no effect")
	}
	p.Heal()
}

func TestProxyOneWayPartitionTimesOutThenHeals(t *testing.T) {
	p, cl := startProxied(t)
	rs := server.NewRemoteStore(cl)
	c := chunk.New(chunk.TypeBlobLeaf, []byte("partitioned"))
	if _, err := rs.Put(c); err != nil {
		t.Fatal(err)
	}
	// Requests flow, responses stall: the op must fail within its retry
	// budget, not hang.
	p.Partition(chaos.ToClient, true)
	start := time.Now()
	_, err := rs.Get(c.ID())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("read through a one-way partition succeeded")
	}
	if bound := cl.MaxBlock(0); elapsed > bound {
		t.Fatalf("op blocked %v, deadline budget is %v", elapsed, bound)
	}
	p.Heal()
	if got, err := rs.Get(c.ID()); err != nil || string(got.Data()) != "partitioned" {
		t.Fatalf("get after heal: %v %v", got, err)
	}
}

func TestProxyMidFrameCutIsRetriedForReads(t *testing.T) {
	p, cl := startProxied(t)
	rs := server.NewRemoteStore(cl)
	c := chunk.New(chunk.TypeBlobLeaf, []byte("torn frame"))
	if _, err := rs.Put(c); err != nil {
		t.Fatal(err)
	}
	// Tear the next response mid-frame; the read is idempotent, so the
	// client redials and retries to success.
	p.CutNext(chaos.ToClient, 3)
	if got, err := rs.Get(c.ID()); err != nil || string(got.Data()) != "torn frame" {
		t.Fatalf("get through cut: %v %v", got, err)
	}
	if _, _, cuts := p.Stats(); cuts != 1 {
		t.Fatalf("cuts = %d, want 1", cuts)
	}
}

func TestProxyDropAllForcesTransparentRedial(t *testing.T) {
	p, cl := startProxied(t)
	rs := server.NewRemoteStore(cl)
	c := chunk.New(chunk.TypeBlobLeaf, []byte("resilient"))
	if _, err := rs.Put(c); err != nil {
		t.Fatal(err)
	}
	p.DropAll()
	if got, err := rs.Get(c.ID()); err != nil || string(got.Data()) != "resilient" {
		t.Fatalf("get after reset: %v %v", got, err)
	}
}

// TestCASLostReplyRecoversViaProbe pins the ambiguous-outcome protocol: a
// CAS whose reply is torn off the wire DID execute server-side; the client
// must not blindly re-send it (double execution) and must resolve the
// ambiguity by probing the head.
func TestCASLostReplyRecoversViaProbe(t *testing.T) {
	p, cl := startProxied(t)
	bt := server.NewRemoteBranchTable(cl)
	uid := hash.Of([]byte("v1"))
	p.CutNext(chaos.ToClient, 2)
	ok, err := bt.CompareAndSet("k", "master", hash.Hash{}, uid)
	if err != nil || !ok {
		t.Fatalf("CAS with lost reply: ok=%v err=%v", ok, err)
	}
	got, found, err := bt.Head("k", "master")
	if err != nil || !found || got != uid {
		t.Fatalf("head after ambiguous CAS: %v %v %v", got.Short(), found, err)
	}
}

// TestPutAmbiguousIsNotResent pins the idempotency gate for mutations with
// no probe: a torn PutChunk reply surfaces ErrAmbiguous instead of being
// silently re-sent.
func TestPutAmbiguousIsNotResent(t *testing.T) {
	p, cl := startProxied(t)
	rs := server.NewRemoteStore(cl)
	p.CutNext(chaos.ToClient, 2)
	_, err := rs.Put(chunk.New(chunk.TypeBlobLeaf, []byte("maybe landed")))
	if !errors.Is(err, server.ErrAmbiguous) {
		t.Fatalf("torn put reply: want ErrAmbiguous, got %v", err)
	}
}

func TestFlakyStoreSchedule(t *testing.T) {
	fs := chaos.NewFlakyStore(store.NewMemStore(), 1)
	fs.FailEvery(2)
	c := chunk.New(chunk.TypeBlobLeaf, []byte("flaky"))
	if _, err := fs.Put(c); err != nil { // op 1: passes
		t.Fatalf("op 1: %v", err)
	}
	if _, err := fs.Get(c.ID()); !errors.Is(err, store.ErrUnavailable) { // op 2: fails
		t.Fatalf("op 2: want ErrUnavailable, got %v", err)
	}
	if got, err := fs.Get(c.ID()); err != nil || string(got.Data()) != "flaky" { // op 3
		t.Fatalf("op 3: %v %v", got, err)
	}
	fs.FailEvery(0)
	fs.SetDown(true)
	if _, err := fs.Has(c.ID()); !errors.Is(err, store.ErrUnavailable) {
		t.Fatalf("down store served: %v", err)
	}
	fs.SetDown(false)
	if ok, err := fs.Has(c.ID()); err != nil || !ok {
		t.Fatalf("after outage: %v %v", ok, err)
	}
	if fs.Failures() != 2 {
		t.Fatalf("failures = %d, want 2", fs.Failures())
	}
}

// TestCrashAtRotateRecovers simulates a process crash at the
// rotate.before-seal point and verifies the store reopens with every
// acknowledged chunk intact.
func TestCrashAtRotateRecovers(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.OpenFileStoreSegmented(dir, 2048)
	if err != nil {
		t.Fatal(err)
	}
	fs.SetCrashHook(chaos.PanicAt(store.CrashRotateBeforeSeal, 1))
	var ids []hash.Hash
	crashed := false
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if _, ok := r.(chaos.Crash); !ok {
				panic(r) // a real bug, not the simulated crash
			}
			crashed = true
		}()
		for i := 0; i < 200; i++ {
			c := chunk.New(chunk.TypeBlobLeaf, append([]byte{byte(i), byte(i >> 8)}, make([]byte, 64)...))
			if _, err := fs.Put(c); err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
			ids = append(ids, c.ID()) // acknowledged: must survive the crash
		}
	}()
	if !crashed {
		t.Fatal("store never reached the rotate crash point")
	}
	fs.Close()
	re, err := store.OpenFileStoreSegmented(dir, 2048)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer re.Close()
	for i, id := range ids {
		if _, err := re.Get(id); err != nil {
			t.Fatalf("acknowledged chunk %d lost in crash: %v", i, err)
		}
	}
}

func TestAgitatorIsSeedDeterministic(t *testing.T) {
	run := func() []string {
		srv := server.New(store.NewMemStore(), core.NewMemBranchTable(), nil)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		p, err := chaos.NewProxy(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		a := chaos.NewAgitator(42, p)
		a.MaxOutage = 2 * time.Millisecond // keep the test fast
		var kinds []string
		for i := 0; i < 8; i++ {
			desc := a.Round()
			kinds = append(kinds, desc[:4]) // fault class prefix; addrs differ per run
		}
		return kinds
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at round %d: %q vs %q", i, a[i], b[i])
		}
	}
}
