package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Directions a fault can apply to, from the proxied client's point of view.
const (
	// ToServer is the client→server direction (requests).
	ToServer = 0
	// ToClient is the server→client direction (responses).
	ToClient = 1
)

// Proxy is a faulty wire: it listens on its own address, forwards every
// connection to the target, and injects faults into the byte streams on
// command.  Tests script it directly (SetLatency, Partition, CutNext,
// DropAll); soaks drive it from a seeded Agitator.
//
// Partitions *stall* bytes rather than discarding them: like a real
// network outage, data queued behind the partition is delivered intact
// once it heals, so a gob stream survives a healed partition but times out
// during one.  Resets and cuts, by contrast, kill the TCP connection —
// the client must redial.
type Proxy struct {
	target string
	ln     net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	latency   atomic.Int64 // ns added per read chunk, each direction
	bandwidth atomic.Int64 // bytes/sec per direction (0 = unlimited)
	blocked   [2]atomic.Bool
	cut       [2]atomic.Int64 // >0: cut the stream after this many bytes

	accepted atomic.Int64
	resets   atomic.Int64
	cuts     atomic.Int64
}

// NewProxy starts a proxy in front of target on an ephemeral localhost
// port.
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	p := &Proxy{target: target, ln: ln, conns: make(map[net.Conn]struct{})}
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients should dial instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetLatency adds d of delay to every forwarded chunk in both directions.
func (p *Proxy) SetLatency(d time.Duration) { p.latency.Store(int64(d)) }

// SetBandwidth caps each direction at bytesPerSec (0 = unlimited).
func (p *Proxy) SetBandwidth(bytesPerSec int64) { p.bandwidth.Store(bytesPerSec) }

// Partition blocks the given direction (ToServer / ToClient) when on is
// true; bytes stall until the direction is unblocked.  A one-way partition
// "can send, can't receive" is Partition(ToClient, true).
func (p *Proxy) Partition(dir int, on bool) { p.blocked[dir].Store(on) }

// Heal clears latency, bandwidth caps and partitions (armed cuts stay).
func (p *Proxy) Heal() {
	p.latency.Store(0)
	p.bandwidth.Store(0)
	p.blocked[ToServer].Store(false)
	p.blocked[ToClient].Store(false)
}

// CutNext arms a mid-frame truncation: after roughly n more bytes flow in
// the given direction, the stream stops and the connection carrying it is
// reset.  With n smaller than a gob frame this tears a message in half —
// the decoder on the receiving side sees a corrupt/short stream.
func (p *Proxy) CutNext(dir int, n int64) {
	if n < 1 {
		n = 1
	}
	p.cut[dir].Store(n)
}

// DropAll resets every live proxied connection (both sides), simulating a
// middlebox flushing its flow table.  New connections proxy normally.
func (p *Proxy) DropAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := range p.conns {
		c.Close()
		delete(p.conns, c)
	}
	p.resets.Add(1)
}

// Stats reports fault-injection counters: accepted connections, DropAll
// resets, and executed cuts.
func (p *Proxy) Stats() (accepted, resets, cuts int64) {
	return p.accepted.Load(), p.resets.Load(), p.cuts.Load()
}

// Close stops the listener and kills all proxied connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.conns = nil
	p.mu.Unlock()
	return p.ln.Close()
}

func (p *Proxy) acceptLoop() {
	for {
		cli, err := p.ln.Accept()
		if err != nil {
			return
		}
		srv, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			cli.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			cli.Close()
			srv.Close()
			return
		}
		p.conns[cli] = struct{}{}
		p.conns[srv] = struct{}{}
		p.mu.Unlock()
		p.accepted.Add(1)
		go p.pump(cli, srv, ToServer)
		go p.pump(srv, cli, ToClient)
	}
}

// pump copies src→dst applying the faults armed for dir.  Any error tears
// down both halves of the pair.
func (p *Proxy) pump(src, dst net.Conn, dir int) {
	defer func() {
		src.Close()
		dst.Close()
		p.mu.Lock()
		if !p.closed {
			delete(p.conns, src)
			delete(p.conns, dst)
		}
		p.mu.Unlock()
	}()
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if !p.throttle(dir, n) {
				return // proxy closed while stalled
			}
			out := buf[:n]
			if c := p.cut[dir].Load(); c > 0 {
				if int64(n) >= c {
					// Deliver the first c bytes of the frame, then kill the
					// connection: the receiver decodes a torn message.
					dst.Write(out[:c])
					p.cut[dir].Store(0)
					p.cuts.Add(1)
					return
				}
				p.cut[dir].Store(c - int64(n))
			}
			if _, werr := dst.Write(out); werr != nil {
				return
			}
		}
		if err != nil {
			// EOF or teardown: this protocol never half-closes, so dropping
			// both halves (via the deferred Close) is faithful enough.
			return
		}
	}
}

// throttle applies latency, partition stalls and bandwidth pacing for one
// chunk of n bytes.  It returns false when the proxy closed mid-stall.
func (p *Proxy) throttle(dir int, n int) bool {
	if d := p.latency.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	for p.blocked[dir].Load() {
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return false
		}
		time.Sleep(2 * time.Millisecond) // stall until the partition heals
	}
	if bw := p.bandwidth.Load(); bw > 0 {
		time.Sleep(time.Duration(int64(n) * int64(time.Second) / bw))
	}
	return true
}

// Agitator drives one or more proxies with a seeded-random fault schedule.
// Each Round picks a proxy and a fault class, holds the fault for a
// seed-determined duration, heals, and reports what it did — the soak's
// reproducible storm.
type Agitator struct {
	rng        *rand.Rand
	proxies    []*Proxy
	disks      []string // FileStore dirs eligible for bit rot (see AddDisk)
	MaxLatency time.Duration // latency-spike ceiling (default 10ms)
	MaxOutage  time.Duration // partition/outage hold ceiling (default 120ms)
	MaxFlips   int           // bit flips per disk event ceiling (default 8)
}

// NewAgitator seeds a fault schedule over the given proxies.  The same seed
// over the same proxies yields the same sequence of (proxy, fault, hold)
// choices.
func NewAgitator(seed int64, proxies ...*Proxy) *Agitator {
	return &Agitator{
		rng:        rand.New(rand.NewSource(seed)),
		proxies:    proxies,
		MaxLatency: 10 * time.Millisecond,
		MaxOutage:  120 * time.Millisecond,
		MaxFlips:   8,
	}
}

// AddDisk opts a FileStore directory into the storm: rounds may then flip
// bits in its sealed segments (class "disk").  Disk faults are strictly
// opt-in — an agitator with no disks draws from the same five network
// classes as before, so existing seeded schedules replay unchanged.
func (a *Agitator) AddDisk(dir string) { a.disks = append(a.disks, dir) }

// Round injects one fault, holds it, heals, and returns a description.
func (a *Agitator) Round() string {
	classes := 5
	if len(a.disks) > 0 {
		classes = 6
	}
	p := a.proxies[a.rng.Intn(len(a.proxies))]
	hold := time.Duration(1 + a.rng.Int63n(int64(a.MaxOutage))) // ≥1ns, <MaxOutage+1
	switch a.rng.Intn(classes) {
	case 0:
		d := time.Duration(1 + a.rng.Int63n(int64(a.MaxLatency)))
		p.SetLatency(d)
		time.Sleep(hold)
		p.Heal()
		return fmt.Sprintf("latency %v on %s for %v", d.Round(time.Millisecond), p.Addr(), hold.Round(time.Millisecond))
	case 1:
		p.DropAll()
		return fmt.Sprintf("reset all conns on %s", p.Addr())
	case 2:
		p.Partition(ToClient, true)
		time.Sleep(hold)
		p.Heal()
		return fmt.Sprintf("one-way partition (to-client) on %s for %v", p.Addr(), hold.Round(time.Millisecond))
	case 3:
		p.Partition(ToServer, true)
		time.Sleep(hold)
		p.Heal()
		return fmt.Sprintf("one-way partition (to-server) on %s for %v", p.Addr(), hold.Round(time.Millisecond))
	case 4:
		n := 1 + a.rng.Int63n(64)
		p.CutNext(ToClient, n)
		time.Sleep(hold)
		return fmt.Sprintf("cut to-client stream on %s after %d bytes", p.Addr(), n)
	default:
		dir := a.disks[a.rng.Intn(len(a.disks))]
		flips := 1 + a.rng.Intn(a.MaxFlips)
		victim, err := CorruptSegment(dir, a.rng.Int63(), flips)
		if err != nil {
			// No sealed segment yet: the draw is burned (keeping the seeded
			// schedule deterministic) and the round reports a no-op.
			return fmt.Sprintf("disk rot skipped on %s (%v)", dir, err)
		}
		return fmt.Sprintf("disk rot: %d bit flip(s) in %s", flips, filepath.Base(victim))
	}
}
