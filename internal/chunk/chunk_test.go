package chunk

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"forkbase/internal/hash"
)

func TestNewAndAccessors(t *testing.T) {
	c := New(TypeBlobLeaf, []byte("payload"))
	if c.Type() != TypeBlobLeaf {
		t.Fatalf("type = %v", c.Type())
	}
	if string(c.Data()) != "payload" {
		t.Fatalf("data = %q", c.Data())
	}
	if c.Size() != 1+7 {
		t.Fatalf("size = %d", c.Size())
	}
	if c.ID().IsZero() {
		t.Fatal("zero id")
	}
}

func TestIDIncludesType(t *testing.T) {
	a := New(TypeBlobLeaf, []byte("same"))
	b := New(TypeMapLeaf, []byte("same"))
	if a.ID() == b.ID() {
		t.Fatal("different types share an id")
	}
}

func TestIDMatchesManualHash(t *testing.T) {
	c := New(TypeFNode, []byte("abc"))
	want := hash.Of(append([]byte{byte(TypeFNode)}, []byte("abc")...))
	if c.ID() != want {
		t.Fatal("id does not equal hash of encoding")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(data []byte, typSeed uint8) bool {
		typ := Type(typSeed%8) + 1
		c := New(typ, data)
		d, err := Decode(c.Encode())
		if err != nil {
			return false
		}
		return d.Type() == typ && bytes.Equal(d.Data(), data) && d.ID() == c.ID()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("Decode(nil) succeeded")
	}
	if _, err := Decode([]byte{0xFF, 1, 2}); err == nil {
		t.Fatal("Decode with invalid type succeeded")
	}
	if _, err := Decode([]byte{0, 1, 2}); err == nil {
		t.Fatal("Decode with TypeInvalid succeeded")
	}
}

func TestVerify(t *testing.T) {
	c := New(TypeCellar, []byte("v"))
	if err := c.Verify(c.ID()); err != nil {
		t.Fatalf("self-verify failed: %v", err)
	}
	other := New(TypeCellar, []byte("w"))
	if err := c.Verify(other.ID()); err == nil {
		t.Fatal("verify against wrong id succeeded")
	}
}

func TestTypeStringAndValid(t *testing.T) {
	for typ := TypeBlobLeaf; typ < maxType; typ++ {
		if !typ.Valid() {
			t.Fatalf("type %d invalid", typ)
		}
		if typ.String() == "" || typ.String()[0] == 'i' {
			t.Fatalf("type %d has bad name %q", typ, typ.String())
		}
	}
	if TypeInvalid.Valid() || Type(200).Valid() {
		t.Fatal("invalid types report valid")
	}
}

func TestNewPanicsOnInvalidType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(TypeInvalid) did not panic")
		}
	}()
	New(TypeInvalid, nil)
}

func TestNewPrehashedTrusted(t *testing.T) {
	ref := New(TypeBlobLeaf, []byte("payload"))
	var id hash.Hash
	prov := HashEncoding(&id, ref.Encode())
	c := NewPrehashed(TypeBlobLeaf, []byte("payload"), id, prov)
	if c.ID() != ref.ID() || c.Type() != ref.Type() {
		t.Fatal("prehashed chunk differs from New")
	}
	if c.Claimed() {
		t.Fatal("prehashed chunk reports claimed")
	}
	if err := c.Recheck(); err != nil {
		t.Fatalf("trusted chunk failed recheck: %v", err)
	}
}

func TestNewPrehashedRejectsForgedProvenance(t *testing.T) {
	honest := New(TypeBlobLeaf, []byte("payload"))

	// The zero Provenance — the only value other packages can construct —
	// covers nothing, even when the id it accompanies is correct.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewPrehashed with zero provenance did not panic")
			}
		}()
		NewPrehashed(TypeBlobLeaf, []byte("payload"), honest.ID(), Provenance{})
	}()

	// A genuine token covers only the id it was minted for: replaying it
	// against a different id panics too.
	var otherID hash.Hash
	prov := HashEncoding(&otherID, New(TypeBlobLeaf, []byte("other")).Encode())
	defer func() {
		if recover() == nil {
			t.Fatal("NewPrehashed with replayed provenance did not panic")
		}
	}()
	NewPrehashed(TypeBlobLeaf, []byte("payload"), honest.ID(), prov)
}

func TestRecheckPromotesClaimed(t *testing.T) {
	honest := New(TypeBlobLeaf, []byte("payload"))
	c := NewClaimed(TypeBlobLeaf, []byte("payload"), honest.ID())
	if !c.Claimed() {
		t.Fatal("fresh claimed chunk not claimed")
	}
	before := hash.Digests()
	if err := c.Recheck(); err != nil {
		t.Fatalf("recheck: %v", err)
	}
	if c.Claimed() {
		t.Fatal("recheck did not promote the chunk to trusted")
	}
	if err := c.Recheck(); err != nil {
		t.Fatalf("second recheck: %v", err)
	}
	if got := hash.Digests() - before; got != 1 {
		t.Fatalf("two rechecks cost %d hashes, want 1 (promotion)", got)
	}
}

func TestNewClaimedRecheck(t *testing.T) {
	honest := New(TypeBlobLeaf, []byte("payload"))
	ok := NewClaimed(TypeBlobLeaf, []byte("payload"), honest.ID())
	if err := ok.Recheck(); err != nil {
		t.Fatalf("honest claim rejected: %v", err)
	}
	forged := NewClaimed(TypeBlobLeaf, []byte("evil"), honest.ID())
	if err := forged.Recheck(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("forged claim recheck = %v, want ErrCorrupt", err)
	}
	// The claimed type participates in the hash: same payload under a
	// different type tag is a forgery too.
	wrongType := NewClaimed(TypeMapLeaf, []byte("payload"), honest.ID())
	if err := wrongType.Recheck(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong-type claim recheck = %v, want ErrCorrupt", err)
	}
}
