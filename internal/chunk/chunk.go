// Package chunk defines the unit of physical storage and deduplication in
// ForkBase.
//
// Every persistent object — blob fragments, POS-Tree nodes, FNode commits —
// is encoded as a Chunk: a one-byte type tag followed by an opaque payload.
// A chunk is immutable once constructed and is identified by the SHA-256
// hash of its full encoding, which makes the store content-addressed and
// every chunk self-verifying (paper §II-C).
package chunk

import (
	"errors"
	"fmt"
	"sync/atomic"

	"forkbase/internal/hash"
)

// Type tags the payload format of a chunk.
type Type byte

// Chunk types. The tag participates in the hash, so a leaf node and an index
// node with coincidentally equal payloads have different identities.
const (
	TypeInvalid  Type = 0
	TypeBlobLeaf Type = 1 // raw bytes of a blob segment
	TypeMapLeaf  Type = 2 // sorted key/value entries
	TypeMapIndex Type = 3 // split-key + child-hash entries
	TypeSeqLeaf  Type = 4 // positional items
	TypeSeqIndex Type = 5 // child-hash + count entries
	TypeFNode    Type = 6 // version commit object
	TypeCellar   Type = 7 // small inline value (primitive)
	TypeTag      Type = 8 // named pointer payloads (branch snapshots)
	TypeMPTNode  Type = 9 // Merkle Patricia Trie node (leaf/extension/branch)
	maxType      Type = 10
)

// String implements fmt.Stringer for diagnostics.
func (t Type) String() string {
	switch t {
	case TypeBlobLeaf:
		return "blob-leaf"
	case TypeMapLeaf:
		return "map-leaf"
	case TypeMapIndex:
		return "map-index"
	case TypeSeqLeaf:
		return "seq-leaf"
	case TypeSeqIndex:
		return "seq-index"
	case TypeFNode:
		return "fnode"
	case TypeCellar:
		return "cellar"
	case TypeTag:
		return "tag"
	case TypeMPTNode:
		return "mpt-node"
	default:
		return fmt.Sprintf("invalid(%d)", byte(t))
	}
}

// Valid reports whether t is a known chunk type.
func (t Type) Valid() bool { return t > TypeInvalid && t < maxType }

// Chunk is an immutable, typed, content-addressed byte payload.
//
// Construct chunks with New (which takes ownership of data) and never mutate
// Data afterwards; the hash is computed lazily over the encoding and cached.
type Chunk struct {
	typ  Type
	data []byte
	id   hash.Hash
	// claimed marks a chunk whose id was asserted by an untrusted party
	// (a network peer, a batch file) rather than computed from the data.
	// Recheck verifies the claim; the verifying store's write path rejects
	// claimed chunks whose content does not hash to their id.  A successful
	// Recheck clears the flag (the content has been proven to match the id),
	// so a chunk pays for verification at most once per process no matter
	// how many layers it passes through.  Atomic because batch rechecks fan
	// out across a worker pool while readers consult Claimed concurrently.
	claimed atomic.Bool
}

// ErrCorrupt is returned when a chunk's bytes do not match its claimed id.
var ErrCorrupt = errors.New("chunk: content does not match id (corruption or tampering)")

// ErrBadEncoding is returned when decoding malformed chunk bytes.
var ErrBadEncoding = errors.New("chunk: malformed encoding")

// New creates a chunk of the given type, taking ownership of data.
func New(t Type, data []byte) *Chunk {
	if !t.Valid() {
		panic(fmt.Sprintf("chunk: invalid type %d", t))
	}
	c := &Chunk{typ: t, data: data}
	c.id = hash.SumTagged(byte(t), data)
	return c
}

// Provenance is a witness that a chunk id was computed by this process's own
// hashing site rather than asserted by a caller.  Both fields are unexported
// and the only minting site is HashEncoding, so a forged token is
// structurally impossible: the zero Provenance (all any other package can
// construct) covers nothing, and NewPrehashed panics on it.
type Provenance struct {
	ok bool
	id hash.Hash
}

// Covers reports whether p witnesses id.
func (p Provenance) Covers(id hash.Hash) bool { return p.ok && p.id == id }

// HashEncoding computes the content id of a full [type][payload] encoding
// into dst (allocation-free; dst slots are handed out in slabs by the write
// path) and mints the provenance witness for it.  This is the single trusted
// hashing site: a Provenance exists if and only if this function ran over
// the bytes in question.
func HashEncoding(dst *hash.Hash, enc []byte) Provenance {
	hash.SumInto(dst, enc)
	return Provenance{ok: true, id: *dst}
}

// NewPrehashed creates a chunk whose id was already computed as
// SHA-256(type || data) by HashEncoding — the batched write path hashes node
// encodings on a worker pool and over a contiguous [type][payload] buffer,
// so recomputing here would double the hashing cost.  The provenance token
// is the proof the id really came from this process's hasher; it panics on a
// token that does not cover id, which makes "pretend it's prehashed" a
// programming error rather than a trust decision.  Callers that received the
// id from an untrusted party must use NewClaimed instead.
func NewPrehashed(t Type, data []byte, id hash.Hash, prov Provenance) *Chunk {
	if !t.Valid() {
		panic(fmt.Sprintf("chunk: invalid type %d", t))
	}
	if !prov.Covers(id) {
		panic("chunk: NewPrehashed without provenance for id (use NewClaimed for untrusted ids)")
	}
	return &Chunk{typ: t, data: data, id: id}
}

// NewClaimed creates a chunk from data plus an id *claimed* by an untrusted
// source (a network peer handing over a batch, a replicated log).  The claim
// is not checked here; Recheck — called by the verifying store before any
// batched write — recomputes the hash and rejects forgeries.
func NewClaimed(t Type, data []byte, id hash.Hash) *Chunk {
	if !t.Valid() {
		panic(fmt.Sprintf("chunk: invalid type %d", t))
	}
	c := &Chunk{typ: t, data: data, id: id}
	c.claimed.Store(true)
	return c
}

// Claimed reports whether the chunk's id is still an unverified claim.  It
// flips to false after a successful Recheck.
func (c *Chunk) Claimed() bool { return c.claimed.Load() }

// Recheck verifies a claimed chunk's content against its claimed id,
// returning ErrCorrupt on mismatch.  Chunks constructed by New (id computed
// from the data) or NewPrehashed (id computed by a trusted hasher) pass
// without rehashing, and a successful recheck promotes the chunk to trusted
// — so a claimed chunk that crosses several verifying layers (fetched off
// the wire, verified, then written through a verifying store) is hashed
// once, not once per layer.
func (c *Chunk) Recheck() error {
	if !c.claimed.Load() {
		return nil
	}
	actual := hash.SumTagged(byte(c.typ), c.data)
	if actual != c.id {
		return fmt.Errorf("%w: claimed %s actual %s", ErrCorrupt, c.id.Short(), actual.Short())
	}
	c.claimed.Store(false)
	return nil
}

// Type returns the chunk's type tag.
func (c *Chunk) Type() Type { return c.typ }

// Data returns the chunk payload.  Callers must not modify it.
func (c *Chunk) Data() []byte { return c.data }

// ID returns the chunk's content identifier.
func (c *Chunk) ID() hash.Hash { return c.id }

// Size returns the encoded size in bytes (1 type byte + payload).
func (c *Chunk) Size() int { return 1 + len(c.data) }

// Encode renders the canonical byte form: [type][payload...].
func (c *Chunk) Encode() []byte {
	out := make([]byte, 1+len(c.data))
	out[0] = byte(c.typ)
	copy(out[1:], c.data)
	return out
}

// Decode parses the canonical byte form.  The returned chunk aliases b's
// payload region; callers handing Decode a shared buffer must copy first.
func Decode(b []byte) (*Chunk, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("%w: empty", ErrBadEncoding)
	}
	t := Type(b[0])
	if !t.Valid() {
		return nil, fmt.Errorf("%w: unknown type %d", ErrBadEncoding, b[0])
	}
	return New(t, b[1:]), nil
}

// Verify checks that the chunk's content hashes to want. It is how ForkBase
// detects malicious storage: a provider can withhold data but cannot forge it.
func (c *Chunk) Verify(want hash.Hash) error {
	if c.id != want {
		return fmt.Errorf("%w: have %s want %s", ErrCorrupt, c.id.Short(), want.Short())
	}
	return nil
}
