package pos

import (
	"forkbase/internal/chunk"
	"forkbase/internal/hash"
)

// SeqRange describes one differing region between two sequences (or blobs):
// positions [AStart, AEnd) of the old sequence were replaced by positions
// [BStart, BEnd) of the new one.  Positions are items for sequences and
// bytes for blobs.
//
// Ranges are chunk-aligned: because identical content chunks identically,
// the common prefix and suffix prune at page granularity, so a range
// over-approximates the true edit by less than one page on each side.
type SeqRange struct {
	AStart, AEnd uint64
	BStart, BEnd uint64
}

// DiffSeq reports the differing regions between two sequences, pruning
// shared leaves by hash from both ends (the positional analogue of the map
// tree's sub-tree pruning).
func DiffSeq(a, b *Seq) ([]SeqRange, error) {
	if a.Root() == b.Root() {
		return nil, nil
	}
	al, err := flattenSeqLeaves(a.src, a.root)
	if err != nil {
		return nil, err
	}
	bl, err := flattenSeqLeaves(b.src, b.root)
	if err != nil {
		return nil, err
	}
	return diffLeafRuns(al, bl), nil
}

// DiffBlob is DiffSeq for blobs; positions are byte offsets.
func DiffBlob(a, b *Blob) ([]SeqRange, error) {
	if a.Root() == b.Root() {
		return nil, nil
	}
	al, err := flattenSeqLeaves(a.src, a.root)
	if err != nil {
		return nil, err
	}
	bl, err := flattenSeqLeaves(b.src, b.root)
	if err != nil {
		return nil, err
	}
	return diffLeafRuns(al, bl), nil
}

// flattenSeqLeaves lists the leaf refs of a sequence/blob tree in order.
func flattenSeqLeaves(src nodeSource, root hash.Hash) ([]childRef, error) {
	if root.IsZero() {
		return nil, nil
	}
	var out []childRef
	var walk func(id hash.Hash, count uint64) error
	walk = func(id hash.Hash, count uint64) error {
		n, err := src.load(id)
		if err != nil {
			return err
		}
		switch n.typ {
		case chunk.TypeSeqLeaf, chunk.TypeBlobLeaf:
			out = append(out, childRef{id: id, count: count})
			return nil
		case chunk.TypeSeqIndex:
			for _, r := range n.refs {
				if err := walk(r.id, r.count); err != nil {
					return err
				}
			}
			return nil
		default:
			return errTrunc("sequence node")
		}
	}
	// Root count is unknown here; recompute from node if needed.  For the
	// leaf case the count argument is only used for positions, so load it.
	n, err := src.load(root)
	if err != nil {
		return nil, err
	}
	switch n.typ {
	case chunk.TypeSeqLeaf:
		return []childRef{{id: root, count: uint64(len(n.items))}}, nil
	case chunk.TypeBlobLeaf:
		return []childRef{{id: root, count: uint64(len(n.blob))}}, nil
	default:
		if err := walk(root, 0); err != nil {
			return nil, err
		}
		return out, nil
	}
}

// diffLeafRuns prunes the common prefix and suffix of two leaf runs by
// chunk hash and emits the remaining middle as differing ranges, splitting
// on interior re-synchronisation points (leaves present in both middles in
// order).
func diffLeafRuns(a, b []childRef) []SeqRange {
	// Prune common prefix.
	i := 0
	var aPos, bPos uint64
	for i < len(a) && i < len(b) && a[i].id == b[i].id {
		aPos += a[i].count
		bPos += b[i].count
		i++
	}
	// Prune common suffix (not crossing the prefix).
	ja, jb := len(a), len(b)
	for ja > i && jb > i && a[ja-1].id == b[jb-1].id {
		ja--
		jb--
	}
	midA, midB := a[i:ja], b[i:jb]
	if len(midA) == 0 && len(midB) == 0 {
		return nil
	}
	// Interior re-sync: greedy two-pointer match of identical leaves within
	// the middles, splitting one big range into several precise ones.
	var out []SeqRange
	ia, ib := 0, 0
	curA, curB := aPos, bPos
	startA, startB := curA, curB
	flush := func(endA, endB uint64) {
		if endA > startA || endB > startB {
			out = append(out, SeqRange{AStart: startA, AEnd: endA, BStart: startB, BEnd: endB})
		}
	}
	for ia < len(midA) || ib < len(midB) {
		// Look for the next matching pair from the current positions.
		matchA, matchB := -1, -1
	search:
		for da := 0; ia+da < len(midA); da++ {
			for db := 0; ib+db < len(midB); db++ {
				if midA[ia+da].id == midB[ib+db].id {
					matchA, matchB = ia+da, ib+db
					break search
				}
			}
		}
		if matchA < 0 {
			// No further sync: everything left is one range.
			endA, endB := curA, curB
			for ; ia < len(midA); ia++ {
				endA += midA[ia].count
			}
			for ; ib < len(midB); ib++ {
				endB += midB[ib].count
			}
			flush(endA, endB)
			return out
		}
		endA, endB := curA, curB
		for ; ia < matchA; ia++ {
			endA += midA[ia].count
		}
		for ; ib < matchB; ib++ {
			endB += midB[ib].count
		}
		flush(endA, endB)
		// Skip the matched leaf on both sides.
		endA += midA[ia].count
		endB += midB[ib].count
		ia++
		ib++
		curA, curB = endA, endB
		startA, startB = endA, endB
	}
	return out
}
