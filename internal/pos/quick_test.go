package pos

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"forkbase/internal/store"
)

// opsBatch is a generatable random edit workload for testing/quick.
type opsBatch struct {
	Seed int64
	NOps int
	Base int // base tree size
}

// Generate implements quick.Generator so batches stay within useful bounds.
func (opsBatch) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(opsBatch{
		Seed: r.Int63(),
		NOps: 1 + r.Intn(60),
		Base: 50 + r.Intn(800),
	})
}

func (b opsBatch) baseEntries() []Entry {
	entries := make([]Entry, b.Base)
	for i := range entries {
		entries[i] = Entry{
			Key: []byte(fmt.Sprintf("key-%07d", i)),
			Val: []byte(fmt.Sprintf("val-%d", i)),
		}
	}
	return entries
}

func (b opsBatch) ops() []Op {
	rng := rand.New(rand.NewSource(b.Seed))
	ops := make([]Op, b.NOps)
	for i := range ops {
		switch rng.Intn(4) {
		case 0:
			ops[i] = Put([]byte(fmt.Sprintf("key-%07d", rng.Intn(b.Base))), []byte(fmt.Sprintf("upd-%d", rng.Int())))
		case 1:
			ops[i] = Put([]byte(fmt.Sprintf("ins-%07d", rng.Intn(10000))), []byte("new"))
		case 2:
			ops[i] = Del([]byte(fmt.Sprintf("key-%07d", rng.Intn(b.Base))))
		default:
			ops[i] = Del([]byte(fmt.Sprintf("ghost-%d", rng.Intn(1000))))
		}
	}
	return ops
}

// QuickProperty: incremental Edit ≡ EditRebuild ≡ from-scratch build, for
// arbitrary op batches — the SIRI structural-invariance property.
func TestQuickEditEquivalence(t *testing.T) {
	st := store.NewMemStore()
	f := func(b opsBatch) bool {
		tree, err := BuildMap(st, testCfg(), b.baseEntries())
		if err != nil {
			return false
		}
		ops := b.ops()
		inc, err := tree.Edit(ops)
		if err != nil {
			t.Logf("Edit: %v", err)
			return false
		}
		reb, err := tree.EditRebuild(ops)
		if err != nil {
			t.Logf("EditRebuild: %v", err)
			return false
		}
		if inc.Root() != reb.Root() {
			t.Logf("divergence: seed=%d nops=%d base=%d", b.Seed, b.NOps, b.Base)
			return false
		}
		// From-scratch oracle.
		entries, err := inc.Entries()
		if err != nil {
			return false
		}
		fresh, err := BuildMap(st, testCfg(), entries)
		if err != nil {
			return false
		}
		return fresh.Root() == inc.Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// QuickProperty: Diff/Apply round-trips for arbitrary divergent trees.
func TestQuickDiffApplyRoundTrip(t *testing.T) {
	st := store.NewMemStore()
	f := func(b opsBatch) bool {
		a, err := BuildMap(st, testCfg(), b.baseEntries())
		if err != nil {
			return false
		}
		c, err := a.Edit(b.ops())
		if err != nil {
			return false
		}
		deltas, _, err := a.Diff(c)
		if err != nil {
			return false
		}
		applied, err := a.ApplyDeltas(deltas)
		if err != nil {
			return false
		}
		if applied.Root() != c.Root() {
			return false
		}
		// And the reverse direction.
		back, _, err := c.Diff(a)
		if err != nil {
			return false
		}
		reverted, err := c.ApplyDeltas(back)
		if err != nil {
			return false
		}
		return reverted.Root() == a.Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// QuickProperty: disjoint three-way merges commute and equal the sequential
// application of both edit sets.
func TestQuickMergeDisjointCommutes(t *testing.T) {
	st := store.NewMemStore()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(600)
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{Key: []byte(fmt.Sprintf("key-%07d", i)), Val: []byte("base")}
		}
		base, err := BuildMap(st, testCfg(), entries)
		if err != nil {
			return false
		}
		// Side A edits even indexes, side B odd — guaranteed disjoint.
		var opsA, opsB []Op
		for i := 0; i < 10; i++ {
			ia := rng.Intn(n/2) * 2
			ib := rng.Intn(n/2)*2 + 1
			opsA = append(opsA, Put([]byte(fmt.Sprintf("key-%07d", ia)), []byte(fmt.Sprintf("A%d", i))))
			opsB = append(opsB, Put([]byte(fmt.Sprintf("key-%07d", ib)), []byte(fmt.Sprintf("B%d", i))))
		}
		a, err := base.Edit(opsA)
		if err != nil {
			return false
		}
		bb, err := base.Edit(opsB)
		if err != nil {
			return false
		}
		m1, _, err := Merge3(base, a, bb, nil)
		if err != nil {
			return false
		}
		m2, _, err := Merge3(base, bb, a, nil)
		if err != nil {
			return false
		}
		seq, err := base.Edit(append(append([]Op{}, opsA...), opsB...))
		if err != nil {
			return false
		}
		return m1.Root() == m2.Root() && m1.Root() == seq.Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// QuickProperty: tree content equals a sorted map model for random builds.
func TestQuickBuildModelEquivalence(t *testing.T) {
	st := store.NewMemStore()
	f := func(raw map[string]string) bool {
		entries := make([]Entry, 0, len(raw))
		for k, v := range raw {
			entries = append(entries, Entry{Key: []byte(k), Val: []byte(v)})
		}
		tree, err := BuildMap(st, testCfg(), entries)
		if err != nil {
			return false
		}
		if tree.Len() != uint64(len(raw)) {
			return false
		}
		got, err := tree.Entries()
		if err != nil {
			return false
		}
		keys := make([]string, 0, len(raw))
		for k := range raw {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if len(got) != len(keys) {
			return false
		}
		for i, k := range keys {
			if string(got[i].Key) != k || string(got[i].Val) != raw[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// QuickProperty: sequence splice equals the slice-model splice.
func TestQuickSeqSpliceModel(t *testing.T) {
	st := store.NewMemStore()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(500)
		items := make([][]byte, n)
		for i := range items {
			items[i] = []byte(fmt.Sprintf("item-%06d", i))
		}
		s, err := BuildSeq(st, testCfg(), items)
		if err != nil {
			return false
		}
		at := uint64(rng.Intn(n + 1))
		del := uint64(rng.Intn(20))
		if at+del > uint64(n) {
			del = uint64(n) - at
		}
		ins := make([][]byte, rng.Intn(10))
		for i := range ins {
			ins[i] = []byte(fmt.Sprintf("new-%d-%d", seed, i))
		}
		spliced, err := s.Splice(at, del, ins)
		if err != nil {
			return false
		}
		model := append(append(append([][]byte{}, items[:at]...), ins...), items[at+del:]...)
		fresh, err := BuildSeq(st, testCfg(), model)
		if err != nil {
			return false
		}
		return spliced.Root() == fresh.Root() && spliced.Len() == uint64(len(model))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// QuickProperty: blob round-trips arbitrary byte strings and splices match
// the byte-slice model.
func TestQuickBlobModel(t *testing.T) {
	st := store.NewMemStore()
	f := func(data []byte, at16 uint16, del8 uint8, ins []byte) bool {
		b, err := BuildBlob(st, testCfg(), data)
		if err != nil {
			return false
		}
		got, err := b.Bytes()
		if err != nil || !bytes.Equal(got, data) {
			return false
		}
		at := uint64(at16) % uint64(len(data)+1)
		del := uint64(del8)
		if at+del > uint64(len(data)) {
			del = uint64(len(data)) - at
		}
		spliced, err := b.Splice(at, del, ins)
		if err != nil {
			return false
		}
		model := append(append(append([]byte{}, data[:at]...), ins...), data[at+del:]...)
		sb, err := spliced.Bytes()
		if err != nil || !bytes.Equal(sb, model) {
			return false
		}
		fresh, err := BuildBlob(st, testCfg(), model)
		if err != nil {
			return false
		}
		return fresh.Root() == spliced.Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
