package pos

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"slices"

	"forkbase/internal/chunk"
	"forkbase/internal/chunker"
	"forkbase/internal/hash"
	"forkbase/internal/rolling"
	"forkbase/internal/store"
)

// nodeHeadroom reserves space at the front of a node buffer for the chunk
// type byte, the node level byte and the entry-count varint, so the finished
// node is a contiguous [type][level][uvarint n][entries] run that can be
// hashed and stored in place — no per-node payload copy.
const nodeHeadroom = 2 + binary.MaxVarintLen64

// levelBuilder assembles one level of a POS-Tree.  Entries are encoded
// directly into the open node's buffer; the chunker decides boundaries; each
// finished node is emitted into the write sink, which hashes it (possibly on
// a worker pool) and lands it in a batched store write.  Child ids therefore
// resolve asynchronously: emitted refs carry pending id pointers that finish
// fills in after a sink barrier.
type levelBuilder struct {
	sink  *store.ChunkSink
	cfg   chunker.Config
	level uint8
	isMap bool

	// Leaf levels (0) detect boundaries with a contiguous bulk scan over the
	// node buffer — the same byte-granular pattern as chunker.EntryChunker,
	// minus the per-byte call and ring-buffer bookkeeping, plus the min-size
	// skip (bytes that no checkable window can reach are never hashed).
	// The scanner is picked by Config.Algo: the cyclic-polynomial Scan or
	// the FastCDC-style GearScan — both share the resumable Find contract.
	// Index levels keep the entry-granular IndexChunker.
	scan         boundaryScan
	begin, check int // scan constants: hash start index, first checkable index
	scanPos      int
	scanHash     uint64
	idx          *chunker.IndexChunker

	// buf is the builder's single scratch buffer, [nodeHeadroom][entries...].
	// Emit borrows it only for the duration of the call (the sink copies the
	// surviving payload), so one buffer serves every node of the level.
	buf      []byte
	n        int    // entries in the open node
	lastKey  []byte // greatest key seen in the open node (map only)
	count    uint64 // leaf entries below the open node
	emitted  []childRef
	ids      []*hash.Hash // pending chunk ids, parallel to emitted
	boundary bool         // true when positioned exactly at a node boundary
}

// boundaryScan is the resumable bulk boundary-detection contract shared by
// rolling.Scan (cyclic polynomial) and rolling.GearScan (FastCDC gear).
type boundaryScan interface {
	Find(node []byte, pos int, h uint64, begin, check int) (int, uint64)
	SkipStart(minSize int) int
}

func newLevelBuilder(sink *store.ChunkSink, cfg chunker.Config, level uint8, isMap bool) *levelBuilder {
	cfg = cfg.Normalized()
	b := &levelBuilder{
		sink:     sink,
		cfg:      cfg,
		level:    level,
		isMap:    isMap,
		boundary: true,
	}
	if level == 0 {
		if cfg.Algo == chunker.AlgoGear {
			b.scan = rolling.NewGearScan(cfg.Q)
		} else {
			b.scan = rolling.NewScan(cfg.Q, cfg.Window)
		}
		b.begin = b.scan.SkipStart(cfg.MinSize)
		b.check = cfg.MinSize - 1
	} else {
		b.idx = chunker.NewIndexChunker(cfg)
	}
	est := 2 << cfg.Q
	if est > cfg.MaxSize {
		est = cfg.MaxSize
	}
	b.buf = make([]byte, nodeHeadroom, nodeHeadroom+est)
	return b
}

// afterAppend runs the boundary decision for the entry just encoded at
// b.buf[encStart:].
func (b *levelBuilder) afterAppend(encStart int, key []byte, below uint64) error {
	b.n++
	b.lastKey = key
	b.count += below
	b.boundary = false
	if b.level == 0 {
		node := b.buf[nodeHeadroom:]
		hit, h := b.scan.Find(node, b.scanPos, b.scanHash, b.begin, b.check)
		b.scanHash = h
		b.scanPos = len(node)
		if hit >= 0 || len(node) >= b.cfg.MaxSize {
			return b.closeNode()
		}
		return nil
	}
	if b.idx.Add(b.buf[encStart:]) {
		return b.closeNode()
	}
	return nil
}

// addEntry feeds one map entry (leaf level of the map variant).
func (b *levelBuilder) addEntry(e Entry) error {
	s := len(b.buf)
	b.buf = encodeEntry(b.buf, e)
	return b.afterAppend(s, e.Key, 1)
}

// addItem feeds one sequence item (leaf level of the seq variant).
func (b *levelBuilder) addItem(item []byte) error {
	s := len(b.buf)
	b.buf = encodeSeqItem(b.buf, item)
	return b.afterAppend(s, nil, 1)
}

// addRef feeds one child reference (index levels).
func (b *levelBuilder) addRef(r childRef) error {
	s := len(b.buf)
	if b.isMap {
		b.buf = encodeChildRef(b.buf, r)
	} else {
		b.buf = encodeSeqChildRef(b.buf, r)
	}
	return b.afterAppend(s, r.splitKey, r.count)
}

// atBoundary reports whether the builder sits exactly at a node boundary
// (nothing buffered).  Used by incremental edits to detect re-synchronisation
// with the old chunking.
func (b *levelBuilder) atBoundary() bool { return b.boundary }

// closeNode finalises the open node in place and emits it into the sink;
// its id resolves at the next barrier (finish).
func (b *levelBuilder) closeNode() error {
	if b.n == 0 {
		b.boundary = true
		return nil
	}
	var t chunk.Type
	if b.isMap {
		t = chunk.TypeMapLeaf
		if b.level > 0 {
			t = chunk.TypeMapIndex
		}
	} else {
		t = chunk.TypeSeqLeaf
		if b.level > 0 {
			t = chunk.TypeSeqIndex
		}
	}
	var tmp [binary.MaxVarintLen64]byte
	nlen := binary.PutUvarint(tmp[:], uint64(b.n))
	rs := nodeHeadroom - 2 - nlen
	region := b.buf[rs:]
	region[0] = byte(t)
	region[1] = b.level
	copy(region[2:], tmp[:nlen])
	idp, err := b.sink.Emit(t, region)
	if err != nil {
		return fmt.Errorf("pos: storing node: %w", err)
	}
	ref := childRef{count: b.count}
	if b.isMap {
		ref.splitKey = append([]byte(nil), b.lastKey...)
	}
	b.emitted = append(b.emitted, ref)
	b.ids = append(b.ids, idp)
	b.buf = b.buf[:nodeHeadroom]
	b.n = 0
	b.lastKey = nil
	b.count = 0
	b.scanPos, b.scanHash = 0, 0
	if b.idx != nil {
		b.idx.Reset()
	}
	b.boundary = true
	return nil
}

// finish closes any trailing node (the "last node of a level", which the
// paper allows to end without a pattern), waits for the sink to resolve every
// pending id, and returns the refs of this level.
func (b *levelBuilder) finish() ([]childRef, error) {
	if err := b.closeNode(); err != nil {
		return nil, err
	}
	if err := b.sink.Barrier(); err != nil {
		return nil, err
	}
	for i := range b.emitted {
		b.emitted[i].id = *b.ids[i]
	}
	return b.emitted, nil
}

// buildLevels stacks index levels over refs until a single root remains.
// Used both by from-scratch builds and to cap incremental edits whose top
// level ended up with more than one node.
func buildLevels(sink *store.ChunkSink, cfg chunker.Config, refs []childRef, level uint8, isMap bool) (childRef, error) {
	for len(refs) > 1 {
		lb := newLevelBuilder(sink, cfg, level, isMap)
		for _, r := range refs {
			if err := lb.addRef(r); err != nil {
				return childRef{}, err
			}
		}
		var err error
		refs, err = lb.finish()
		if err != nil {
			return childRef{}, err
		}
		level++
	}
	if len(refs) == 0 {
		return childRef{}, nil
	}
	return refs[0], nil
}

// buildSink returns the write sink for a from-scratch build over st.
func buildSink(st store.Store) *store.ChunkSink {
	return store.NewChunkSink(st, store.SinkOptions{})
}

// editSink returns the write sink for incremental edits and merges: the
// dedup pre-check is on, so re-emitting shared subtrees costs read-locked
// index lookups instead of writes.
func editSink(st store.Store) *store.ChunkSink {
	return store.NewChunkSink(st, store.SinkOptions{Dedup: true})
}

// BuildMap constructs a map POS-Tree over entries (which need not be sorted;
// duplicate keys keep the last value) and returns the tree.  The build is a
// pure function of the final record set — the SIRI structural-invariance
// property — because node boundaries depend only on the sorted entry stream.
// Nodes flow to the store through a batched sink; the tree is fully landed
// when BuildMap returns.
//
// Bulk builds fan the leaf level out across GOMAXPROCS-bounded workers (see
// parbuild.go); structural invariance guarantees — and the differential
// tests pin — that the root is byte-identical to the serial builder's.
func BuildMap(st store.Store, cfg chunker.Config, entries []Entry) (*Tree, error) {
	if w := buildWorkers(len(entries)); w > 1 {
		return BuildMapParallel(st, cfg, entries, w)
	}
	return BuildMapSerial(st, cfg, entries)
}

// BuildMapSerial is the single-goroutine builder: one level builder feeding
// one sink.  BuildMap delegates here below the parallel threshold; the
// differential oracle measures parallel builds against it.
func BuildMapSerial(st store.Store, cfg chunker.Config, entries []Entry) (*Tree, error) {
	return buildMapSorted(st, cfg, normalizeEntries(entries))
}

// buildMapSorted builds over an already-normalized (sorted, deduplicated)
// entry slice.
func buildMapSorted(st store.Store, cfg chunker.Config, sorted []Entry) (*Tree, error) {
	sink := buildSink(st)
	defer sink.Close()
	lb := newLevelBuilder(sink, cfg, 0, true)
	for _, e := range sorted {
		if err := lb.addEntry(e); err != nil {
			return nil, err
		}
	}
	leaves, err := lb.finish()
	if err != nil {
		return nil, err
	}
	root, err := buildLevels(sink, cfg, leaves, 1, true)
	if err != nil {
		return nil, err
	}
	if err := sink.Flush(); err != nil {
		return nil, err
	}
	return &Tree{src: sourceFor(st), cfg: cfg, root: root.id, count: root.count}, nil
}

// normalizeEntries sorts entries by key, keeping the last occurrence of
// duplicate keys.  Bulk ingest commonly arrives already sorted and unique
// (CSV keyed by primary key, export/import round-trips), so that case is
// detected with one linear scan and returns the input slice untouched — no
// copy, no sort.
func normalizeEntries(entries []Entry) []Entry {
	presorted := true
	for i := 1; i < len(entries); i++ {
		if bytes.Compare(entries[i-1].Key, entries[i].Key) >= 0 {
			presorted = false
			break
		}
	}
	if presorted {
		return entries
	}
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	slices.SortStableFunc(sorted, func(a, b Entry) int {
		return bytes.Compare(a.Key, b.Key)
	})
	out := sorted[:0]
	for i, e := range sorted {
		if i+1 < len(sorted) && bytes.Equal(e.Key, sorted[i+1].Key) {
			continue // superseded by a later duplicate
		}
		out = append(out, e)
	}
	return out
}
