package pos

import (
	"bytes"
	"fmt"
	"sort"

	"forkbase/internal/chunk"
	"forkbase/internal/chunker"
	"forkbase/internal/store"
)

// levelBuilder assembles one level of a POS-Tree.  Encoded entries are fed in
// order; the entry chunker decides node boundaries; finished nodes are
// written to the store and summarised as childRefs for the level above.
type levelBuilder struct {
	st    store.Store
	cfg   chunker.Config
	chk   chunker.Boundary
	level uint8
	isMap bool // map variant (split keys) vs sequence variant

	buf      []byte // concatenated encoded entries of the open node
	n        int    // entries in the open node
	lastKey  []byte // greatest key seen in the open node (map only)
	count    uint64 // leaf entries below the open node
	emitted  []childRef
	boundary bool // true when positioned exactly at a node boundary
}

func newLevelBuilder(st store.Store, cfg chunker.Config, level uint8, isMap bool) *levelBuilder {
	// Leaves split on byte-granular patterns (that is the dedup unit);
	// index levels split on entry-granular patterns, which guarantees
	// geometric reduction towards the root (see chunker.IndexChunker).
	var chk chunker.Boundary
	if level == 0 {
		chk = chunker.NewEntryChunker(cfg)
	} else {
		chk = chunker.NewIndexChunker(cfg)
	}
	return &levelBuilder{
		st:       st,
		cfg:      cfg,
		chk:      chk,
		level:    level,
		isMap:    isMap,
		boundary: true,
	}
}

// add feeds one encoded entry covering `below` leaf entries, whose greatest
// key is key (map variant only).  It returns an error only on store failure.
func (b *levelBuilder) add(encoded []byte, key []byte, below uint64) error {
	b.buf = append(b.buf, encoded...)
	b.n++
	b.lastKey = key
	b.count += below
	b.boundary = false
	if b.chk.Add(encoded) {
		return b.closeNode()
	}
	return nil
}

// atBoundary reports whether the builder sits exactly at a node boundary
// (nothing buffered).  Used by incremental edits to detect re-synchronisation
// with the old chunking.
func (b *levelBuilder) atBoundary() bool { return b.boundary }

// closeNode finalises the open node, stores its chunk, and records its ref.
func (b *levelBuilder) closeNode() error {
	if b.n == 0 {
		b.boundary = true
		return nil
	}
	var c *chunk.Chunk
	if b.isMap {
		t := chunk.TypeMapLeaf
		if b.level > 0 {
			t = chunk.TypeMapIndex
		}
		c = chunk.New(t, encodeNodePayload(b.level, b.n, b.buf))
	} else {
		t := chunk.TypeSeqLeaf
		if b.level > 0 {
			t = chunk.TypeSeqIndex
		}
		c = chunk.New(t, encodeNodePayload(b.level, b.n, b.buf))
	}
	if _, err := b.st.Put(c); err != nil {
		return fmt.Errorf("pos: storing node: %w", err)
	}
	ref := childRef{id: c.ID(), count: b.count}
	if b.isMap {
		ref.splitKey = append([]byte(nil), b.lastKey...)
	}
	b.emitted = append(b.emitted, ref)
	b.buf = b.buf[:0]
	b.n = 0
	b.lastKey = nil
	b.count = 0
	b.chk.Reset()
	b.boundary = true
	return nil
}

// finish closes any trailing node (the "last node of a level", which the
// paper allows to end without a pattern) and returns the refs of this level.
func (b *levelBuilder) finish() ([]childRef, error) {
	if err := b.closeNode(); err != nil {
		return nil, err
	}
	return b.emitted, nil
}

// buildLevels stacks index levels over refs until a single root remains.
// Used both by from-scratch builds and to cap incremental edits whose top
// level ended up with more than one node.
func buildLevels(st store.Store, cfg chunker.Config, refs []childRef, level uint8, isMap bool) (childRef, error) {
	for len(refs) > 1 {
		lb := newLevelBuilder(st, cfg, level, isMap)
		var enc []byte
		for _, r := range refs {
			enc = enc[:0]
			if isMap {
				enc = encodeChildRef(enc, r)
			} else {
				enc = encodeSeqChildRef(enc, r)
			}
			if err := lb.add(enc, r.splitKey, r.count); err != nil {
				return childRef{}, err
			}
		}
		var err error
		refs, err = lb.finish()
		if err != nil {
			return childRef{}, err
		}
		level++
	}
	if len(refs) == 0 {
		return childRef{}, nil
	}
	return refs[0], nil
}

// BuildMap constructs a map POS-Tree over entries (which need not be sorted;
// duplicate keys keep the last value) and returns the tree.  The build is a
// pure function of the final record set — the SIRI structural-invariance
// property — because node boundaries depend only on the sorted entry stream.
func BuildMap(st store.Store, cfg chunker.Config, entries []Entry) (*Tree, error) {
	sorted := normalizeEntries(entries)
	lb := newLevelBuilder(st, cfg, 0, true)
	var enc []byte
	for _, e := range sorted {
		enc = enc[:0]
		enc = encodeEntry(enc, e)
		if err := lb.add(enc, e.Key, 1); err != nil {
			return nil, err
		}
	}
	leaves, err := lb.finish()
	if err != nil {
		return nil, err
	}
	root, err := buildLevels(st, cfg, leaves, 1, true)
	if err != nil {
		return nil, err
	}
	return &Tree{src: sourceFor(st), cfg: cfg, root: root.id, count: root.count}, nil
}

// normalizeEntries sorts entries by key, keeping the last occurrence of
// duplicate keys, and drops nil-key entries.
func normalizeEntries(entries []Entry) []Entry {
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.SliceStable(sorted, func(i, j int) bool {
		return bytes.Compare(sorted[i].Key, sorted[j].Key) < 0
	})
	out := sorted[:0]
	for i, e := range sorted {
		if i+1 < len(sorted) && bytes.Equal(e.Key, sorted[i+1].Key) {
			continue // superseded by a later duplicate
		}
		out = append(out, e)
	}
	return out
}
