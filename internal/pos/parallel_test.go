package pos

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"forkbase/internal/chunker"
	"forkbase/internal/store"
)

// Differential tests for the parallel build and diff paths: for every worker
// count the parallel code must be byte-identical (roots, chunk sets) and
// order-identical (delta slices, stats) to the serial oracle.  Run under
// -race these also shake out data races in the fan-out itself.

var parWorkerCounts = []int{1, 2, 8}

func parConfigs() []chunker.Config {
	return []chunker.Config{
		chunker.DefaultConfig(),
		chunker.SmallConfig(),
		{Q: 8, Window: 48, MinSize: 1 << 5, MaxSize: 1 << 12, Algo: chunker.AlgoGear},
	}
}

func TestBuildMapParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, cfg := range parConfigs() {
		for _, n := range []int{0, 1, 37, 1000, 9000} {
			entries := randomEntries(rng, n)
			msSerial := store.NewMemStore()
			want, err := BuildMapSerial(msSerial, cfg, entries)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range parWorkerCounts {
				msPar := store.NewMemStore()
				got, err := BuildMapParallel(msPar, cfg, entries, w)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if got.Root() != want.Root() {
					t.Fatalf("cfg=%+v n=%d workers=%d: parallel root %s != serial root %s",
						cfg, n, w, got.Root().Short(), want.Root().Short())
				}
				if got.Len() != want.Len() {
					t.Fatalf("n=%d workers=%d: len %d != %d", n, w, got.Len(), want.Len())
				}
				if msPar.Len() != msSerial.Len() {
					t.Fatalf("n=%d workers=%d: chunk count %d != %d",
						n, w, msPar.Len(), msSerial.Len())
				}
			}
		}
	}
}

// TestLeafCutsMatchBuilder pins the pre-scan against the actual leaf level:
// splitting the entry stream at *every* cut and building each slice
// separately must reproduce the serial builder's leaf refs one-to-one.
func TestLeafCutsMatchBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, cfg := range parConfigs() {
		entries := normalizeEntries(randomEntries(rng, 4000))
		cuts := leafCuts(cfg, entries)
		ms := store.NewMemStore()
		sink := buildSink(ms)
		lb := newLevelBuilder(sink, cfg, 0, true)
		for _, e := range entries {
			if err := lb.addEntry(e); err != nil {
				t.Fatal(err)
			}
		}
		refs, err := lb.finish()
		if err != nil {
			t.Fatal(err)
		}
		sink.Close()
		wantNodes := len(cuts)
		if len(cuts) == 0 || cuts[len(cuts)-1] != len(entries) {
			wantNodes++ // trailing node without a pattern boundary
		}
		if len(refs) != wantNodes {
			t.Fatalf("cfg=%+v: pre-scan predicts %d leaves, builder emitted %d",
				cfg, wantNodes, len(refs))
		}
	}
}

func editedTree(t *testing.T, base *Tree, rng *rand.Rand, edits int) *Tree {
	t.Helper()
	ops := make([]Op, 0, edits)
	for i := 0; i < edits; i++ {
		k := []byte(fmt.Sprintf("k%08d", rng.Intn(16000)))
		if rng.Intn(5) == 0 {
			ops = append(ops, Del(k))
		} else {
			ops = append(ops, Put(k, []byte(fmt.Sprintf("edit-%d", i))))
		}
	}
	nt, err := base.Edit(ops)
	if err != nil {
		t.Fatal(err)
	}
	return nt
}

func TestDiffParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ms := store.NewMemStore()
	cfg := chunker.SmallConfig()
	base, err := BuildMap(ms, cfg, randomEntries(rng, 8000))
	if err != nil {
		t.Fatal(err)
	}
	empty := NewEmptyTree(ms, cfg)
	for _, edits := range []int{1, 50, 2000} {
		other := editedTree(t, base, rng, edits)
		cases := []struct {
			name     string
			old, new *Tree
		}{
			{"fwd", base, other},
			{"rev", other, base},
			{"self", base, base},
			{"from-empty", empty, other},
			{"to-empty", other, empty},
		}
		for _, tc := range cases {
			wantD, wantS, err := tc.old.DiffSerial(tc.new)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range parWorkerCounts {
				gotD, gotS, err := tc.old.DiffParallel(tc.new, w)
				if err != nil {
					t.Fatalf("%s workers=%d: %v", tc.name, w, err)
				}
				if !reflect.DeepEqual(gotD, wantD) {
					t.Fatalf("%s edits=%d workers=%d: deltas diverge (%d vs %d)",
						tc.name, edits, w, len(gotD), len(wantD))
				}
				if gotS != wantS {
					t.Fatalf("%s edits=%d workers=%d: stats %+v != %+v",
						tc.name, edits, w, gotS, wantS)
				}
			}
		}
	}
}

// TestMerge3ParallelDeterministic pins the merge with concurrent side diffs:
// repeated merges of the same inputs yield one root, and that root equals
// building the expected merged record set from scratch (byte-identity via
// structural invariance).
func TestMerge3ParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ms := store.NewMemStore()
	cfg := chunker.SmallConfig()
	base, err := BuildMap(ms, cfg, randomEntries(rng, 6000))
	if err != nil {
		t.Fatal(err)
	}
	a := editedTree(t, base, rng, 400)
	b := editedTree(t, base, rng, 400)
	merged, _, err := Merge3(base, a, b, ResolveOurs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, _, err := Merge3(base, a, b, ResolveOurs)
		if err != nil {
			t.Fatal(err)
		}
		if again.Root() != merged.Root() {
			t.Fatalf("merge %d: root %s != %s", i, again.Root().Short(), merged.Root().Short())
		}
	}
	// Oracle: rebuild the merged record set from scratch.
	it, err := merged.Iter()
	if err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	for it.Next() {
		e := it.Entry()
		entries = append(entries, Entry{
			Key: append([]byte(nil), e.Key...),
			Val: append([]byte(nil), e.Val...),
		})
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	rebuilt, err := BuildMapSerial(store.NewMemStore(), cfg, entries)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Root() != merged.Root() {
		t.Fatalf("merged root %s != rebuilt root %s", merged.Root().Short(), rebuilt.Root().Short())
	}
}
