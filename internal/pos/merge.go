package pos

import (
	"forkbase/internal/index"
)

// Conflict, ErrConflict, Resolver and MergeStats are the shared merge
// vocabulary of the versioned-index layer, re-exported so existing callers
// keep compiling against pos.*.
type (
	// Conflict reports a key modified divergently by both sides of a
	// three-way merge.
	Conflict = index.Conflict
	// ErrConflict is returned by Merge3 when both sides changed the same
	// key to different values and no resolver was supplied.
	ErrConflict = index.ErrConflict
	// Resolver decides the merged value for a conflicting key.
	Resolver = index.Resolver
	// MergeStats instruments a merge: how much of the merged tree was
	// reused versus freshly calculated — the quantity illustrated by Fig 3
	// of the paper.
	MergeStats = index.MergeStats
)

// ResolveOurs prefers side A; ResolveTheirs prefers side B.
var (
	ResolveOurs   = index.ResolveOurs
	ResolveTheirs = index.ResolveTheirs
)

// Merge3 three-way-merges trees a and b against their common base (paper
// §II-B): the diff phase computes Δa = Diff(base→a) and Δb = Diff(base→b)
// with sub-tree pruning; the merge phase applies Δb to a (so the disjointly
// modified sub-trees of a are reused wholesale and only overlapping regions
// are re-chunked).  Conflicts — keys changed by both sides to different
// values — go to the resolver; with a nil resolver the merge fails with
// *ErrConflict.
//
// The algorithm itself lives in index.Merge3, where it is generic over any
// SIRI; this wrapper keeps the tree-typed signature.
func Merge3(base, a, b *Tree, resolve Resolver) (*Tree, MergeStats, error) {
	merged, stats, err := index.Merge3(base, a, b, resolve)
	if err != nil {
		return nil, stats, err
	}
	return merged.(*Tree), stats, nil
}
