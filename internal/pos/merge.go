package pos

import (
	"bytes"
	"fmt"
	"sort"
)

// Conflict reports a key modified divergently by both sides of a three-way
// merge.
type Conflict struct {
	Key  []byte
	Base []byte // value at the common base (nil if absent)
	A    []byte // value in tree A (nil if deleted)
	B    []byte // value in tree B (nil if deleted)
}

// ErrConflict is returned by Merge3 when both sides changed the same key to
// different values and no resolver was supplied.
type ErrConflict struct {
	Conflicts []Conflict
}

func (e *ErrConflict) Error() string {
	return fmt.Sprintf("pos: merge conflict on %d key(s), first %q", len(e.Conflicts), e.Conflicts[0].Key)
}

// Resolver decides the merged value for a conflicting key; returning
// (nil, false) deletes the key, (v, true) keeps v.
type Resolver func(c Conflict) (val []byte, keep bool)

// ResolveOurs prefers side A; ResolveTheirs prefers side B.
func ResolveOurs(c Conflict) ([]byte, bool)   { return c.A, c.A != nil }
func ResolveTheirs(c Conflict) ([]byte, bool) { return c.B, c.B != nil }

// MergeStats instruments a merge: how much of the merged tree was reused
// versus freshly calculated — the quantity illustrated by Fig 3 of the paper
// ("three-way merge of two POS-Trees reuses disjointly modified sub-trees").
type MergeStats struct {
	DeltasA, DeltasB int
	Conflicts        int
	// ReusedChunks / NewChunks partition the merged tree's chunk set by
	// whether the chunk already existed (shared with base/A/B or anything
	// else in the store) or had to be newly calculated.
	ReusedChunks int
	NewChunks    int
}

// ReuseFraction is ReusedChunks/(ReusedChunks+NewChunks).
func (m MergeStats) ReuseFraction() float64 {
	t := m.ReusedChunks + m.NewChunks
	if t == 0 {
		return 1
	}
	return float64(m.ReusedChunks) / float64(t)
}

// Merge3 three-way-merges trees a and b against their common base (paper
// §II-B): the diff phase computes Δa = Diff(base→a) and Δb = Diff(base→b)
// with sub-tree pruning; the merge phase applies Δb to a (so the disjointly
// modified sub-trees of a are reused wholesale and only overlapping regions
// are re-chunked).  Conflicts — keys changed by both sides to different
// values — go to the resolver; with a nil resolver the merge fails with
// *ErrConflict.
func Merge3(base, a, b *Tree, resolve Resolver) (*Tree, MergeStats, error) {
	var stats MergeStats
	// Trivial cases first: untouched sides merge to the other side.
	if base.Root() == a.Root() {
		return b, stats, nil
	}
	if base.Root() == b.Root() {
		return a, stats, nil
	}
	if a.Root() == b.Root() {
		return a, stats, nil
	}

	da, _, err := base.Diff(a)
	if err != nil {
		return nil, stats, err
	}
	db, _, err := base.Diff(b)
	if err != nil {
		return nil, stats, err
	}
	stats.DeltasA, stats.DeltasB = len(da), len(db)

	amap := make(map[string]Delta, len(da))
	for _, d := range da {
		amap[string(d.Key)] = d
	}

	var ops []Op // applied on top of a
	var conflicts []Conflict
	for _, d := range db {
		ad, touchedByA := amap[string(d.Key)]
		if !touchedByA {
			if d.To == nil {
				ops = append(ops, Del(d.Key))
			} else {
				ops = append(ops, Put(d.Key, d.To))
			}
			continue
		}
		// Both sides touched the key: identical outcomes are clean.
		if bytes.Equal(ad.To, d.To) && (ad.To == nil) == (d.To == nil) {
			continue
		}
		c := Conflict{Key: d.Key, Base: d.From, A: ad.To, B: d.To}
		if resolve == nil {
			conflicts = append(conflicts, c)
			continue
		}
		v, keep := resolve(c)
		if keep {
			ops = append(ops, Put(d.Key, v))
		} else {
			ops = append(ops, Del(d.Key))
		}
	}
	stats.Conflicts = len(conflicts)
	if len(conflicts) > 0 {
		sort.Slice(conflicts, func(i, j int) bool {
			return bytes.Compare(conflicts[i].Key, conflicts[j].Key) < 0
		})
		return nil, stats, &ErrConflict{Conflicts: conflicts}
	}

	// Snapshot which chunks exist before the merge-phase edit, so new
	// chunks can be attributed (for the Fig 3 reuse accounting we instead
	// query the store's unique-count delta, which is cheap and exact).
	before := a.src.st.Stats()
	merged, err := a.Edit(ops)
	if err != nil {
		return nil, stats, err
	}
	after := a.src.st.Stats()
	stats.NewChunks = int(after.UniqueChunks - before.UniqueChunks)
	ids, err := merged.ChunkIDs()
	if err != nil {
		return nil, stats, err
	}
	stats.ReusedChunks = len(ids) - stats.NewChunks
	if stats.ReusedChunks < 0 {
		stats.ReusedChunks = 0
	}
	return merged, stats, nil
}
