package pos

import (
	"fmt"
	"math/rand"
	"testing"

	"forkbase/internal/chunker"
	"forkbase/internal/store"
)

// randomEntries produces entries with randomized key/value sizes; ~20%
// duplicate keys and unsorted order exercise normalization.
func randomEntries(rng *rand.Rand, n int) []Entry {
	entries := make([]Entry, n)
	for i := range entries {
		k := rng.Intn(n * 2)
		val := make([]byte, 1+rng.Intn(120))
		rng.Read(val)
		entries[i] = Entry{Key: []byte(fmt.Sprintf("k%08d", k)), Val: val}
	}
	return entries
}

// TestBuildMapMatchesPerChunkPath is the differential test anchoring the
// batched write path: for randomized entry sets and both chunking configs,
// the sink builder and the preserved per-chunk builder must produce
// byte-identical trees (same root, same chunk set).
func TestBuildMapMatchesPerChunkPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, cfg := range []chunker.Config{chunker.DefaultConfig(), chunker.SmallConfig()} {
		for _, n := range []int{0, 1, 17, 400, 5000} {
			entries := randomEntries(rng, n)
			msNew, msOld := store.NewMemStore(), store.NewMemStore()
			a, err := BuildMap(msNew, cfg, entries)
			if err != nil {
				t.Fatal(err)
			}
			b, err := BuildMapPerChunk(msOld, cfg, entries)
			if err != nil {
				t.Fatal(err)
			}
			if a.Root() != b.Root() {
				t.Fatalf("cfg=%+v n=%d: sink root %s != per-chunk root %s",
					cfg, n, a.Root().Short(), b.Root().Short())
			}
			if a.Len() != b.Len() {
				t.Fatalf("n=%d: len %d != %d", n, a.Len(), b.Len())
			}
			if msNew.Len() != msOld.Len() {
				t.Fatalf("n=%d: chunk count %d != %d", n, msNew.Len(), msOld.Len())
			}
		}
	}
}

// TestBuildMapPresortedFastPath: the sorted-input fast path must not change
// the tree, and must not mutate or retain the caller's slice.
func TestBuildMapPresortedFastPath(t *testing.T) {
	n := 3000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: []byte(fmt.Sprintf("key-%06d", i)), Val: []byte(fmt.Sprintf("v%d", i))}
	}
	a, err := BuildMap(store.NewMemStore(), chunker.DefaultConfig(), entries)
	if err != nil {
		t.Fatal(err)
	}
	// Shuffled copy must build the identical tree through the sort path.
	shuffled := make([]Entry, n)
	copy(shuffled, entries)
	rand.New(rand.NewSource(1)).Shuffle(n, func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	b, err := BuildMap(store.NewMemStore(), chunker.DefaultConfig(), shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if a.Root() != b.Root() {
		t.Fatal("sorted fast path and sort path disagree")
	}
	// The caller's pre-sorted slice is untouched.
	for i := range entries {
		if string(entries[i].Key) != fmt.Sprintf("key-%06d", i) {
			t.Fatal("fast path mutated caller entries")
		}
	}
}

// TestEditMatchesRebuildAfterSinkRefactor re-pins the incremental-edit
// oracle through the sink path with randomized ops (the property suite in
// quick_test.go covers more shapes; this anchors the builder refactor
// specifically, including the dedup pre-check sinks).
func TestEditMatchesRebuildAfterSinkRefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ms := store.NewMemStore()
	tree, err := BuildMap(ms, chunker.SmallConfig(), randomEntries(rng, 4000))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		var ops []Op
		for i := 0; i < 1+rng.Intn(50); i++ {
			key := []byte(fmt.Sprintf("k%08d", rng.Intn(8000)))
			if rng.Intn(3) == 0 {
				ops = append(ops, Del(key))
			} else {
				ops = append(ops, Put(key, []byte(fmt.Sprintf("edit-%d-%d", trial, i))))
			}
		}
		inc, err := tree.Edit(ops)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := tree.EditRebuild(ops)
		if err != nil {
			t.Fatal(err)
		}
		if inc.Root() != ref.Root() {
			t.Fatalf("trial %d: incremental root %s != rebuild root %s",
				trial, inc.Root().Short(), ref.Root().Short())
		}
		tree = inc
	}
}

// TestBuildersOverFileStore: the batched write path group-commits through a
// FileStore; everything must survive reopen.
func TestBuildersOverFileStore(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries := randomEntries(rand.New(rand.NewSource(3)), 2000)
	tree, err := BuildMap(fs, chunker.DefaultConfig(), entries)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Root()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := store.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	reopened, err := LoadTree(fs2, chunker.DefaultConfig(), root)
	if err != nil {
		t.Fatal(err)
	}
	it, err := reopened.Iter()
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for it.Next() {
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatalf("scan after reopen: %v", err)
	}
	if uint64(count) != tree.Len() {
		t.Fatalf("reopened scan saw %d entries, want %d", count, tree.Len())
	}
}
