package pos

import (
	"fmt"
	"sync"
	"testing"

	"forkbase/internal/chunker"
	"forkbase/internal/nodecache"
	"forkbase/internal/store"
)

// cachedStore builds an n-entry tree over a MemStore wrapped with a
// decoded-node cache.
func cachedTree(t *testing.T, n int, budget int64) (*Tree, *store.MemStore, *nodecache.Cache) {
	t.Helper()
	ms := store.NewMemStore()
	cache := nodecache.New(budget)
	cs := store.WithNodeCache(ms, cache)
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{
			Key: []byte(fmt.Sprintf("key-%010d", i)),
			Val: []byte(fmt.Sprintf("value-%d", i)),
		}
	}
	tree, err := BuildMap(cs, chunker.DefaultConfig(), entries)
	if err != nil {
		t.Fatal(err)
	}
	return tree, ms, cache
}

// TestCachedTraversalHitRate is the headline property of the decoded-node
// cache: once a tree has been traversed, re-traversals are served from the
// cache — the store sees (almost) no further Gets and the hit rate
// approaches 1.
func TestCachedTraversalHitRate(t *testing.T) {
	const n = 20000
	tree, ms, cache := cachedTree(t, n, 64<<20)

	get := func(i int) {
		key := []byte(fmt.Sprintf("key-%010d", i))
		v, err := tree.Get(key)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if want := fmt.Sprintf("value-%d", i); string(v) != want {
			t.Fatalf("get %d = %q, want %q", i, v, want)
		}
	}

	// Pass 1 populates the cache (all misses hit the store).
	for i := 0; i < n; i++ {
		get(i)
	}
	getsAfterWarm := ms.Stats().Gets

	// Pass 2 must be served entirely from the cache.
	for i := 0; i < n; i++ {
		get(i)
	}
	if got := ms.Stats().Gets; got != getsAfterWarm {
		t.Fatalf("warm traversal touched the store: %d extra Gets", got-getsAfterWarm)
	}
	st := cache.Stats()
	if st.HitRate() < 0.5 {
		t.Fatalf("hit rate after two passes = %.2f, want >= 0.5 (%+v)", st.HitRate(), st)
	}
	if st.Evictions != 0 {
		t.Fatalf("unexpected evictions under a roomy budget: %+v", st)
	}
}

// TestCachedIterMatchesUncached cross-checks that cached and uncached
// traversals observe identical data.
func TestCachedIterMatchesUncached(t *testing.T) {
	const n = 5000
	tree, ms, _ := cachedTree(t, n, 64<<20)
	plain, err := LoadTree(ms, chunker.DefaultConfig(), tree.Root())
	if err != nil {
		t.Fatal(err)
	}

	want, err := plain.Entries()
	if err != nil {
		t.Fatal(err)
	}
	// Iterate twice through the cache; the second pass runs hot.
	for pass := 0; pass < 2; pass++ {
		got, err := tree.Entries()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("pass %d: %d entries, want %d", pass, len(got), len(want))
		}
		for i := range got {
			if string(got[i].Key) != string(want[i].Key) || string(got[i].Val) != string(want[i].Val) {
				t.Fatalf("pass %d: entry %d differs", pass, i)
			}
		}
	}
}

// TestCachedDiffAndEdit exercises the write-then-read paths (Edit, Diff,
// Merge3) through a cached source and cross-checks against the uncached
// tree.  Structural invariance means the roots must be identical bytes.
func TestCachedDiffAndEdit(t *testing.T) {
	const n = 10000
	tree, ms, _ := cachedTree(t, n, 64<<20)
	plain, err := LoadTree(ms, chunker.DefaultConfig(), tree.Root())
	if err != nil {
		t.Fatal(err)
	}

	ops := []Op{
		Put([]byte("key-0000000123"), []byte("mutated")),
		Put([]byte("key-0000009999"), []byte("also-mutated")),
		Del([]byte("key-0000005000")),
	}
	cachedEdit, err := tree.Edit(ops)
	if err != nil {
		t.Fatal(err)
	}
	plainEdit, err := plain.Edit(ops)
	if err != nil {
		t.Fatal(err)
	}
	if cachedEdit.Root() != plainEdit.Root() {
		t.Fatal("cached and uncached edits diverged (structural invariance broken)")
	}

	deltas, _, err := tree.Diff(cachedEdit)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 3 {
		t.Fatalf("deltas = %d, want 3", len(deltas))
	}

	merged, _, err := Merge3(tree, cachedEdit, tree, nil)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Root() != cachedEdit.Root() {
		t.Fatal("trivial merge did not return the edited side")
	}
}

// TestCachedConcurrentReaders hammers one cached tree from many goroutines
// under -race: the cache and the RLock store path must both be safe, and
// every reader must observe correct values.
func TestCachedConcurrentReaders(t *testing.T) {
	const n = 5000
	tree, _, _ := cachedTree(t, n, 16<<20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := (g*7919 + i) % n
				v, err := tree.Get([]byte(fmt.Sprintf("key-%010d", k)))
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if want := fmt.Sprintf("value-%d", k); string(v) != want {
					t.Errorf("got %q want %q", v, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCachedSeqAndBlob covers the sequence and blob read paths through a
// cached source.
func TestCachedSeqAndBlob(t *testing.T) {
	ms := store.NewMemStore()
	cache := nodecache.New(16 << 20)
	cs := store.WithNodeCache(ms, cache)
	cfg := chunker.DefaultConfig()

	items := make([][]byte, 3000)
	for i := range items {
		items[i] = []byte(fmt.Sprintf("item-%08d", i))
	}
	seq, err := BuildSeq(cs, cfg, items)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		for _, i := range []uint64{0, 1, 1499, 2998, 2999} {
			v, err := seq.Get(i)
			if err != nil {
				t.Fatal(err)
			}
			if want := fmt.Sprintf("item-%08d", i); string(v) != want {
				t.Fatalf("seq[%d] = %q", i, v)
			}
		}
	}

	data := make([]byte, 256<<10)
	for i := range data {
		data[i] = byte(i * 131)
	}
	blob, err := BuildBlob(cs, cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		got, err := blob.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(data) {
			t.Fatalf("pass %d: blob bytes = %d", pass, len(got))
		}
		for i := range got {
			if got[i] != data[i] {
				t.Fatalf("pass %d: byte %d differs", pass, i)
			}
		}
	}
	if cache.Stats().Hits == 0 {
		t.Fatal("seq/blob traversals produced no cache hits")
	}
}

// TestCacheEvictionKeepsCorrectness runs a traversal through a cache far too
// small for the tree: constant eviction, but still correct results.
func TestCacheEvictionKeepsCorrectness(t *testing.T) {
	const n = 10000
	tree, _, cache := cachedTree(t, n, 64<<10) // ~4 KiB per shard
	for i := 0; i < n; i += 37 {
		v, err := tree.Get([]byte(fmt.Sprintf("key-%010d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("value-%d", i); string(v) != want {
			t.Fatalf("got %q want %q", v, want)
		}
	}
	if cache.Stats().Evictions == 0 {
		t.Fatal("expected evictions under a tiny budget")
	}
}
