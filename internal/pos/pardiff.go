package pos

import (
	"bytes"
	"sync"
	"sync/atomic"

	"forkbase/internal/index"
)

// Parallel structural diff.
//
// The hash-pruned walk visits, at each level, only the maximal misaligned
// spans — subtree pairs whose root hashes differ.  Those spans cover
// disjoint, ascending key ranges and never interact, so they are the
// natural parallel task unit: the top-level walk (pruning equal hashes
// exactly like the serial differ) collects them, a bounded worker pool
// diffs each with its own sub-differ running the unchanged serial code, and
// the outputs concatenate in span order.  Deltas and DiffStats come out
// identical to the serial diff — the walk is the same walk, just fanned out
// — which the differential tests pin for worker counts {1, 2, 8}.

// spanTask is one misaligned span pair at the fan-out level.
type spanTask struct {
	aRefs, bRefs []childRef
}

// DiffParallel is Diff with an explicit fan-out; workers <= 1 runs the
// serial differ.  Results are deterministic and identical to DiffSerial for
// any worker count.
func (t *Tree) DiffParallel(o *Tree, workers int) ([]Delta, DiffStats, error) {
	if workers <= 1 {
		return t.DiffSerial(o)
	}
	if t.root == o.root {
		return nil, DiffStats{}, nil
	}
	d := &differ{old: t, new: o} // collector: owns alignment + pruning stats
	aRefs, bRefs := rootSpan(t), rootSpan(o)
	var tasks []spanTask
	for {
		la, err := d.spanLevel(d.old, aRefs)
		if err != nil {
			return nil, DiffStats{}, err
		}
		lb, err := d.spanLevel(d.new, bRefs)
		if err != nil {
			return nil, DiffStats{}, err
		}
		for la > lb && len(aRefs) > 0 {
			if aRefs, err = d.expand(d.old, aRefs); err != nil {
				return nil, DiffStats{}, err
			}
			la--
		}
		for lb > la && len(bRefs) > 0 {
			if bRefs, err = d.expand(d.new, bRefs); err != nil {
				return nil, DiffStats{}, err
			}
			lb--
		}
		tasks = collectSpans(d, aRefs, bRefs)
		if len(tasks) != 1 || la == 0 {
			// Enough fan-out (or leaves reached): hand the spans to the pool.
			// Each task carries its level implicitly — the workers re-resolve
			// it exactly as the serial recursion would.
			break
		}
		// A single misaligned span cannot fan out; descend one level, like
		// the serial differ's recursion, and re-walk.
		if aRefs, err = d.expand(d.old, tasks[0].aRefs); err != nil {
			return nil, DiffStats{}, err
		}
		if bRefs, err = d.expand(d.new, tasks[0].bRefs); err != nil {
			return nil, DiffStats{}, err
		}
		tasks = nil
	}
	if len(tasks) == 0 {
		d.stats.Deltas = 0
		return nil, d.stats, nil
	}

	subs := make([]*differ, len(tasks))
	errs := make([]error, len(tasks))
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				sub := &differ{old: t, new: o}
				subs[i] = sub
				errs[i] = sub.diffSpans(tasks[i].aRefs, tasks[i].bRefs)
			}
		}()
	}
	wg.Wait()
	out := make([]Delta, 0)
	stats := d.stats
	for i := range tasks {
		if errs[i] != nil {
			return nil, DiffStats{}, errs[i]
		}
		out = append(out, subs[i].out...)
		stats.TouchedChunks += subs[i].stats.TouchedChunks
		stats.PrunedRefs += subs[i].stats.PrunedRefs
	}
	if len(out) == 0 {
		out = nil
	}
	stats.Deltas = len(out)
	return out, stats, nil
}

// collectSpans runs the serial differ's two-pointer pruning walk over one
// level, but instead of descending into each maximal misaligned span it
// records the span pair as a task.  Pruning accounting lands on d, exactly
// where the serial walk would put it.
func collectSpans(d *differ, aRefs, bRefs []childRef) []spanTask {
	var tasks []spanTask
	ia, ib := 0, 0
	for ia < len(aRefs) || ib < len(bRefs) {
		if ia < len(aRefs) && ib < len(bRefs) &&
			aRefs[ia].id == bRefs[ib].id {
			d.stats.PrunedRefs++
			ia++
			ib++
			continue
		}
		ja, jb := ia, ib
		for {
			if ja >= len(aRefs) || jb >= len(bRefs) {
				ja, jb = len(aRefs), len(bRefs)
				break
			}
			cmp := bytes.Compare(aRefs[ja].splitKey, bRefs[jb].splitKey)
			switch {
			case cmp < 0:
				ja++
			case cmp > 0:
				jb++
			default:
				if aRefs[ja].id == bRefs[jb].id {
					goto spanDone
				}
				ja++
				jb++
			}
		}
	spanDone:
		tasks = append(tasks, spanTask{aRefs: aRefs[ia:ja], bRefs: bRefs[ib:jb]})
		ia, ib = ja, jb
	}
	return tasks
}

// diffWorkers picks the fan-out for structural diffs and merges.
func diffWorkers() int { return index.DefaultWorkers() }
