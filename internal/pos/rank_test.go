package pos

import (
	"bytes"
	"errors"

	"testing"
	"testing/quick"

	"forkbase/internal/store"
)

func TestAtSelectsByRank(t *testing.T) {
	st := store.NewMemStore()
	entries := genEntries(5000, 3)
	tree := mustBuild(t, st, entries)
	for _, i := range []uint64{0, 1, 2499, 4998, 4999} {
		e, err := tree.At(i)
		if err != nil {
			t.Fatalf("At(%d): %v", i, err)
		}
		if !bytes.Equal(e.Key, entries[i].Key) {
			t.Fatalf("At(%d) = %q, want %q", i, e.Key, entries[i].Key)
		}
	}
	if _, err := tree.At(5000); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("At(len) err = %v", err)
	}
}

func TestRank(t *testing.T) {
	st := store.NewMemStore()
	entries := genEntries(3000, 4)
	tree := mustBuild(t, st, entries)
	for _, i := range []int{0, 1, 1500, 2999} {
		r, err := tree.Rank(entries[i].Key)
		if err != nil || r != uint64(i) {
			t.Fatalf("Rank(%q) = %d, %v; want %d", entries[i].Key, r, err, i)
		}
	}
	// Rank of a key beyond the maximum is the full count.
	r, err := tree.Rank([]byte("zzzz"))
	if err != nil || r != 3000 {
		t.Fatalf("Rank(max+) = %d, %v", r, err)
	}
	// Rank of a key before the minimum is zero.
	r, err = tree.Rank([]byte("a"))
	if err != nil || r != 0 {
		t.Fatalf("Rank(min-) = %d, %v", r, err)
	}
	// Rank between two keys = index of the next one.
	r, err = tree.Rank([]byte("key-00000999x"))
	if err != nil || r != 1000 {
		t.Fatalf("Rank(between) = %d, %v", r, err)
	}
}

func TestRangeCount(t *testing.T) {
	st := store.NewMemStore()
	entries := genEntries(2000, 5)
	tree := mustBuild(t, st, entries)
	n, err := tree.RangeCount(entries[100].Key, entries[350].Key)
	if err != nil || n != 250 {
		t.Fatalf("RangeCount = %d, %v; want 250", n, err)
	}
	n, err = tree.RangeCount(entries[0].Key, []byte("zzzz"))
	if err != nil || n != 2000 {
		t.Fatalf("full range = %d, %v", n, err)
	}
	n, err = tree.RangeCount(entries[5].Key, entries[5].Key)
	if err != nil || n != 0 {
		t.Fatalf("empty range = %d, %v", n, err)
	}
	n, err = tree.RangeCount(entries[9].Key, entries[3].Key)
	if err != nil || n != 0 {
		t.Fatalf("inverted range = %d, %v", n, err)
	}
}

func TestRankEmptyTree(t *testing.T) {
	st := store.NewMemStore()
	tree := NewEmptyTree(st, testCfg())
	r, err := tree.Rank([]byte("k"))
	if err != nil || r != 0 {
		t.Fatalf("empty rank = %d, %v", r, err)
	}
	if _, err := tree.At(0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("empty At err = %v", err)
	}
}

// QuickProperty: Rank(At(i).Key) == i and At is consistent with Entries.
func TestQuickRankSelectInverse(t *testing.T) {
	st := store.NewMemStore()
	f := func(seed int64, nSeed uint16) bool {
		n := 10 + int(nSeed%2000)
		entries := genEntries(n, seed)
		tree, err := BuildMap(st, testCfg(), entries)
		if err != nil {
			return false
		}
		for _, i := range []uint64{0, uint64(n) / 3, uint64(n) - 1} {
			e, err := tree.At(i)
			if err != nil {
				return false
			}
			r, err := tree.Rank(e.Key)
			if err != nil || r != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRankCheapInNodeReads(t *testing.T) {
	st := store.NewMemStore()
	entries := genEntries(30000, 6)
	tree := mustBuild(t, st, entries)
	stats, err := tree.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	before := st.Stats().Gets
	if _, err := tree.Rank(entries[15000].Key); err != nil {
		t.Fatal(err)
	}
	reads := st.Stats().Gets - before
	if reads > int64(stats.Height) {
		t.Fatalf("Rank read %d nodes for height-%d tree", reads, stats.Height)
	}
}
