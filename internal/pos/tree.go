package pos

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"forkbase/internal/chunk"
	"forkbase/internal/chunker"
	"forkbase/internal/hash"
	"forkbase/internal/index"
	"forkbase/internal/store"
)

// Tree is an immutable map POS-Tree rooted at a chunk hash.
//
// A Tree value is a lightweight handle (node source + root id + cached
// count); all operations that "modify" the tree return a new Tree sharing
// unchanged chunks with the old one.  All reads go through the tree's
// nodeSource, so a store with an attached decoded-node cache serves hot
// nodes without re-fetching or re-decoding them.
type Tree struct {
	src   nodeSource
	cfg   chunker.Config
	root  hash.Hash
	count uint64
}

// ErrKeyNotFound is returned by Get when the key is absent.  It is the
// index layer's shared sentinel, so errors.Is matches across structures.
var ErrKeyNotFound = index.ErrKeyNotFound

// NewEmptyTree returns the empty map tree (zero root).
func NewEmptyTree(st store.Store, cfg chunker.Config) *Tree {
	return &Tree{src: sourceFor(st), cfg: cfg}
}

// LoadTree attaches to an existing tree by root hash.  A zero root is the
// empty tree.  The root node is read to recover the entry count.
func LoadTree(st store.Store, cfg chunker.Config, root hash.Hash) (*Tree, error) {
	t := &Tree{src: sourceFor(st), cfg: cfg, root: root}
	if root.IsZero() {
		return t, nil
	}
	n, err := t.src.load(root)
	if err != nil {
		return nil, fmt.Errorf("pos: loading root: %w", err)
	}
	switch n.typ {
	case chunk.TypeMapLeaf:
		t.count = uint64(len(n.entries))
	case chunk.TypeMapIndex:
		for _, r := range n.refs {
			t.count += r.count
		}
	default:
		return nil, fmt.Errorf("pos: root %s is a %s, not a map node", root.Short(), n.typ)
	}
	return t, nil
}

// Root returns the root hash; zero for the empty tree.  Because of SIRI
// structural invariance, two trees hold the same record set if and only if
// their roots are equal — this single comparison is what makes Diff prune
// and dedup share.
func (t *Tree) Root() hash.Hash { return t.root }

// Len returns the number of entries.
func (t *Tree) Len() uint64 { return t.count }

// Store returns the backing chunk store.
func (t *Tree) Store() store.Store { return t.src.st }

// Config returns the chunking configuration.
func (t *Tree) Config() chunker.Config { return t.cfg }

// Get returns the value stored under key, or ErrKeyNotFound.
//
// The returned slice aliases shared decoded node data (like Iter.Entry and
// chunk.Data): callers must not modify it, and should copy before holding
// it long-term.
func (t *Tree) Get(key []byte) ([]byte, error) {
	if t.root.IsZero() {
		return nil, ErrKeyNotFound
	}
	id := t.root
	for {
		n, err := t.src.load(id)
		if err != nil {
			return nil, fmt.Errorf("pos: get: %w", err)
		}
		switch n.typ {
		case chunk.TypeMapLeaf:
			entries := n.entries
			i := sort.Search(len(entries), func(i int) bool {
				return bytes.Compare(entries[i].Key, key) >= 0
			})
			if i < len(entries) && bytes.Equal(entries[i].Key, key) {
				return entries[i].Val, nil
			}
			return nil, ErrKeyNotFound
		case chunk.TypeMapIndex:
			refs := n.refs
			// Descend into the first child whose split key (greatest key in
			// subtree) is >= key — the B+-tree routing rule from the paper.
			i := sort.Search(len(refs), func(i int) bool {
				return bytes.Compare(refs[i].splitKey, key) >= 0
			})
			if i == len(refs) {
				return nil, ErrKeyNotFound
			}
			id = refs[i].id
		default:
			return nil, fmt.Errorf("pos: unexpected chunk type %s in map tree", n.typ)
		}
	}
}

// Has reports whether key is present.
func (t *Tree) Has(key []byte) (bool, error) {
	_, err := t.Get(key)
	if errors.Is(err, ErrKeyNotFound) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Entries materialises every entry in key order.  Intended for small trees
// and tests; large trees should use Iter.
func (t *Tree) Entries() ([]Entry, error) {
	var out []Entry
	it, err := t.Iter()
	if err != nil {
		return nil, err
	}
	for it.Next() {
		e := it.Entry()
		out = append(out, Entry{
			Key: append([]byte(nil), e.Key...),
			Val: append([]byte(nil), e.Val...),
		})
	}
	return out, it.Err()
}

// Stats describes the physical shape of a tree, the quantity behind the
// paper's Fig 2 (node structure) experiment.  It is the shared shape type
// of the versioned-index layer (index.Stats), comparable across structures.
type Stats = index.Stats

// ComputeStats walks the whole tree and reports its shape.
func (t *Tree) ComputeStats() (Stats, error) {
	st := Stats{Entries: t.count, MinNode: 1 << 30}
	if t.root.IsZero() {
		st.MinNode = 0
		return st, nil
	}
	var walk func(id hash.Hash, depth int) error
	walk = func(id hash.Hash, depth int) error {
		n, err := t.src.load(id)
		if err != nil {
			return err
		}
		st.Nodes++
		sz := n.encSize
		st.Bytes += int64(sz)
		if sz < st.MinNode {
			st.MinNode = sz
		}
		if sz > st.MaxNode {
			st.MaxNode = sz
		}
		if depth+1 > st.Height {
			st.Height = depth + 1
		}
		if n.isLeaf() {
			st.LeafNodes++
			st.LeafBytes += int64(sz)
			return nil
		}
		st.IndexNodes++
		for _, r := range n.refs {
			if err := walk(r.id, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return Stats{}, err
	}
	return st, nil
}

// ChunkIDs returns the ids of every chunk in the tree (root included).
// Used by merge-reuse accounting (Fig 3) and by the garbage collector.
func (t *Tree) ChunkIDs() ([]hash.Hash, error) {
	var out []hash.Hash
	if t.root.IsZero() {
		return nil, nil
	}
	var walk func(id hash.Hash) error
	walk = func(id hash.Hash) error {
		out = append(out, id)
		n, err := t.src.load(id)
		if err != nil {
			return err
		}
		switch n.typ {
		case chunk.TypeMapIndex, chunk.TypeSeqIndex:
		default:
			return nil
		}
		for _, r := range n.refs {
			if err := walk(r.id); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return nil, err
	}
	return out, nil
}
