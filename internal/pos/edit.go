package pos

import (
	"bytes"
	"fmt"
	"sort"

	"forkbase/internal/chunk"
	"forkbase/internal/hash"
	"forkbase/internal/index"
	"forkbase/internal/store"
)

// Op is a single mutation in an edit batch: a put (Delete=false) or a
// delete (Delete=true).  It is the shared mutation type of the
// versioned-index layer.
type Op = index.Op

// Put returns a put op; Del returns a delete op.
var (
	Put = index.Put
	Del = index.Del
)

// normalizeOps sorts ops by key keeping only the last op per key.
func normalizeOps(ops []Op) []Op {
	sorted := make([]Op, len(ops))
	copy(sorted, ops)
	sort.SliceStable(sorted, func(i, j int) bool {
		return bytes.Compare(sorted[i].Key, sorted[j].Key) < 0
	})
	out := sorted[:0]
	for i, o := range sorted {
		if i+1 < len(sorted) && bytes.Equal(o.Key, sorted[i+1].Key) {
			continue
		}
		out = append(out, o)
	}
	return out
}

// levelInfo is a materialised level of the tree: the refs of its nodes and,
// for index levels, where each node's children start in the level below.
type levelInfo struct {
	refs       []childRef
	childStart []int // childStart[i] = index in lower level of node i's first child
}

// materializeLevels reads every index node (but no leaves) and returns the
// levels bottom-up: levels[0] are leaf refs, levels[len-1] is the root.
func (t *Tree) materializeLevels() ([]levelInfo, error) {
	rootNode, err := t.src.load(t.root)
	if err != nil {
		return nil, fmt.Errorf("pos: edit: %w", err)
	}
	if rootNode.typ == chunk.TypeMapLeaf {
		return []levelInfo{{refs: []childRef{{id: t.root, count: t.count, splitKey: lastLeafKey(rootNode)}}}}, nil
	}
	// Walk top-down accumulating levels, then reverse.
	var topDown []levelInfo
	cur := []childRef{{id: t.root, count: t.count}}
	for {
		topDown = append(topDown, levelInfo{refs: cur})
		var lower []childRef
		starts := make([]int, len(cur))
		leaf := false
		for i, r := range cur {
			starts[i] = len(lower)
			n, err := t.src.load(r.id)
			if err != nil {
				return nil, fmt.Errorf("pos: edit: %w", err)
			}
			switch n.typ {
			case chunk.TypeMapIndex:
				lower = append(lower, n.refs...)
			case chunk.TypeMapLeaf:
				leaf = true
			default:
				return nil, fmt.Errorf("pos: unexpected chunk type %s", n.typ)
			}
		}
		if leaf {
			break
		}
		topDown[len(topDown)-1].childStart = starts
		cur = lower
	}
	// Reverse into bottom-up order.
	levels := make([]levelInfo, len(topDown))
	for i := range topDown {
		levels[len(topDown)-1-i] = topDown[i]
	}
	return levels, nil
}

func lastLeafKey(n *node) []byte {
	if len(n.entries) == 0 {
		return nil
	}
	return n.entries[len(n.entries)-1].Key
}

// Edit applies a batch of mutations and returns the resulting tree.
//
// The edit is *incremental*: chunking restarts at the first affected leaf and
// proceeds only until the content-defined boundaries re-synchronise with the
// old tree, at which point the remaining nodes — at every level — are reused
// verbatim (SIRI property 2, "recursively identical").  The result is
// guaranteed byte-identical to rebuilding the tree from scratch over the
// edited record set; the property tests in edit_test.go enforce this.
func (t *Tree) Edit(ops []Op) (*Tree, error) {
	ops = normalizeOps(ops)
	if len(ops) == 0 {
		return t, nil
	}
	if t.root.IsZero() {
		var entries []Entry
		for _, o := range ops {
			if !o.Delete {
				entries = append(entries, Entry{Key: o.Key, Val: o.Val})
			}
		}
		return BuildMap(t.src.st, t.cfg, entries)
	}

	levels, err := t.materializeLevels()
	if err != nil {
		return nil, err
	}
	leafRefs := levels[0].refs

	// Edits write through a dedup-checking sink: nodes whose bytes already
	// exist (identity rewrites, shared subtrees) cost an index lookup, not a
	// write.  The deferred Close lands stray emissions on the no-new-tree
	// return paths; paths that return a new tree flush explicitly first.
	sink := editSink(t.src.st)
	defer sink.Close()
	done := func(tr *Tree) (*Tree, error) {
		if err := sink.Flush(); err != nil {
			return nil, err
		}
		return tr, nil
	}

	lo, hi, newRefs, delta, err := t.editLeaves(sink, leafRefs, ops)
	if err != nil {
		return nil, err
	}
	if lo == hi && len(newRefs) == 0 {
		return t, nil // all ops were no-ops
	}
	// Fast path: detect fully-unchanged splices (ops that rewrote identical
	// content), so Edit(identity) returns the identical root.
	if hi-lo == len(newRefs) {
		same := true
		for k := range newRefs {
			if newRefs[k].id != leafRefs[lo+k].id {
				same = false
				break
			}
		}
		if same {
			return t, nil
		}
	}

	newCount := uint64(int64(t.count) + delta)
	cur := splice{lo: lo, hi: hi, refs: newRefs}
	for h := 0; ; h++ {
		level := levels[h]
		total := len(level.refs) - (cur.hi - cur.lo) + len(cur.refs)
		if total == 0 {
			return done(&Tree{src: t.src, cfg: t.cfg}) // tree emptied
		}
		if total == 1 {
			root := singleSurvivor(level.refs, cur)
			return done(&Tree{src: t.src, cfg: t.cfg, root: root.id, count: newCount})
		}
		if h == len(levels)-1 {
			// Top existing level still has multiple nodes: stack fresh
			// index levels above the full spliced list.
			full := make([]childRef, 0, total)
			full = append(full, level.refs[:cur.lo]...)
			full = append(full, cur.refs...)
			full = append(full, level.refs[cur.hi:]...)
			root, err := buildLevels(sink, t.cfg, full, uint8(h+1), true)
			if err != nil {
				return nil, err
			}
			return done(&Tree{src: t.src, cfg: t.cfg, root: root.id, count: newCount})
		}
		cur, err = t.spliceLevel(sink, levels[h+1], level.refs, cur, uint8(h+1))
		if err != nil {
			return nil, err
		}
	}
}

// splice describes the replacement of node range [lo, hi) of a level by refs.
type splice struct {
	lo, hi int
	refs   []childRef
}

func singleSurvivor(old []childRef, s splice) childRef {
	if len(s.refs) == 1 && s.lo == 0 && s.hi == len(old) {
		return s.refs[0]
	}
	if s.lo > 0 {
		return old[0]
	}
	return old[len(old)-1]
}

// editLeaves re-chunks the leaf level across the affected key range.
// It returns the replaced leaf range [lo, hi), the replacement refs, and the
// entry-count delta.
func (t *Tree) editLeaves(sink *store.ChunkSink, leafRefs []childRef, ops []Op) (lo, hi int, out []childRef, delta int64, err error) {
	firstKey := ops[0].Key
	lo = sort.Search(len(leafRefs), func(i int) bool {
		return bytes.Compare(leafRefs[i].splitKey, firstKey) >= 0
	})
	if lo == len(leafRefs) {
		lo = len(leafRefs) - 1
	}

	lb := newLevelBuilder(sink, t.cfg, 0, true)
	oldLeaf := lo
	var oldEntries []Entry
	oldPos := 0
	loaded := false

	// peekOld returns the next untouched entry of the old tree, loading
	// leaves lazily; ok=false at the end of the tree.
	peekOld := func() (Entry, bool, error) {
		for {
			if oldLeaf >= len(leafRefs) {
				return Entry{}, false, nil
			}
			if !loaded {
				oldEntries, err = t.src.loadMapLeaf(leafRefs[oldLeaf].id)
				if err != nil {
					return Entry{}, false, err
				}
				loaded = true
				oldPos = 0
			}
			if oldPos < len(oldEntries) {
				return oldEntries[oldPos], true, nil
			}
			oldLeaf++
			loaded = false
		}
	}
	advanceOld := func() { oldPos++ }
	feed := func(e Entry, isNew bool) error {
		if isNew {
			delta++
		}
		return lb.addEntry(e)
	}

	opIdx := 0
	for {
		if opIdx >= len(ops) {
			// Tail phase: pass old entries through until the chunker
			// re-synchronises with an old leaf boundary.
			e, ok, perr := peekOld()
			if perr != nil {
				return 0, 0, nil, 0, perr
			}
			if !ok {
				hi = len(leafRefs)
				break
			}
			if oldPos == 0 && lb.atBoundary() {
				hi = oldLeaf
				break
			}
			if err := feed(e, false); err != nil {
				return 0, 0, nil, 0, err
			}
			advanceOld()
			continue
		}
		op := ops[opIdx]
		e, ok, perr := peekOld()
		if perr != nil {
			return 0, 0, nil, 0, perr
		}
		switch {
		case ok && bytes.Compare(e.Key, op.Key) < 0:
			if err := feed(e, false); err != nil {
				return 0, 0, nil, 0, err
			}
			advanceOld()
		case ok && bytes.Equal(e.Key, op.Key):
			if op.Delete {
				delta--
			} else if err := feed(Entry{Key: op.Key, Val: op.Val}, false); err != nil {
				return 0, 0, nil, 0, err
			}
			advanceOld()
			opIdx++
		default: // old exhausted, or op key precedes next old key: insertion point
			if !op.Delete {
				if err := feed(Entry{Key: op.Key, Val: op.Val}, true); err != nil {
					return 0, 0, nil, 0, err
				}
			}
			opIdx++
		}
	}
	out, err = lb.finish()
	if err != nil {
		return 0, 0, nil, 0, err
	}
	return lo, hi, out, delta, nil
}

// spliceLevel propagates a lower-level splice through index level `level`
// (whose nodes' children are lowerOld).  It re-chunks index entries from the
// first affected node until re-synchronisation and returns the splice to
// apply one level up.
func (t *Tree) spliceLevel(sink *store.ChunkSink, level levelInfo, lowerOld []childRef, s splice, levelNo uint8) (splice, error) {
	starts := level.childStart
	// Node a: the last node whose first child is <= s.lo.
	a := sort.Search(len(starts), func(i int) bool { return starts[i] > s.lo }) - 1
	if a < 0 {
		a = 0
	}

	lb := newLevelBuilder(sink, t.cfg, levelNo, true)
	feed := func(r childRef) error {
		return lb.addRef(r)
	}

	pos := starts[a]
	newIdx := 0
	c := len(level.refs)
	// nodeStartAt returns (node index, true) when pos is the first child of
	// a node after a.
	nodeStartAt := func(pos int) (int, bool) {
		i := sort.Search(len(starts), func(i int) bool { return starts[i] >= pos })
		if i < len(starts) && starts[i] == pos && i > a {
			return i, true
		}
		return 0, false
	}
	for {
		if pos < s.lo {
			if err := feed(lowerOld[pos]); err != nil {
				return splice{}, err
			}
			pos++
			continue
		}
		if newIdx < len(s.refs) {
			if err := feed(s.refs[newIdx]); err != nil {
				return splice{}, err
			}
			newIdx++
			continue
		}
		if pos < s.hi {
			pos = s.hi
			continue
		}
		// Tail: reuse as soon as boundaries align.
		if pos == len(lowerOld) {
			c = len(level.refs)
			break
		}
		if lb.atBoundary() {
			if node, ok := nodeStartAt(pos); ok {
				c = node
				break
			}
		}
		if err := feed(lowerOld[pos]); err != nil {
			return splice{}, err
		}
		pos++
	}
	out, err := lb.finish()
	if err != nil {
		return splice{}, err
	}
	return splice{lo: a, hi: c, refs: out}, nil
}

// EditRebuild is the reference implementation of Edit: it streams the entire
// edited record set through a fresh build.  It must produce a byte-identical
// tree to Edit; it exists for the incremental-vs-rebuild ablation and as the
// oracle for property tests.
func (t *Tree) EditRebuild(ops []Op) (*Tree, error) {
	ops = normalizeOps(ops)
	if len(ops) == 0 {
		return t, nil
	}
	// The rebuild re-emits the entire record set, almost all of which chunks
	// identically to the existing tree — exactly the case the sink's dedup
	// pre-check turns into index lookups instead of writes.
	sink := editSink(t.src.st)
	defer sink.Close()
	lb := newLevelBuilder(sink, t.cfg, 0, true)
	feed := func(e Entry) error {
		return lb.addEntry(e)
	}
	it, err := t.Iter()
	if err != nil {
		return nil, err
	}
	opIdx := 0
	advanced := it.Next()
	for advanced || opIdx < len(ops) {
		switch {
		case advanced && opIdx < len(ops):
			e, op := it.Entry(), ops[opIdx]
			cmp := bytes.Compare(e.Key, op.Key)
			switch {
			case cmp < 0:
				if err := feed(e); err != nil {
					return nil, err
				}
				advanced = it.Next()
			case cmp == 0:
				if !op.Delete {
					if err := feed(Entry{Key: op.Key, Val: op.Val}); err != nil {
						return nil, err
					}
				}
				advanced = it.Next()
				opIdx++
			default:
				if !op.Delete {
					if err := feed(Entry{Key: op.Key, Val: op.Val}); err != nil {
						return nil, err
					}
				}
				opIdx++
			}
		case advanced:
			if err := feed(it.Entry()); err != nil {
				return nil, err
			}
			advanced = it.Next()
		default:
			op := ops[opIdx]
			if !op.Delete {
				if err := feed(Entry{Key: op.Key, Val: op.Val}); err != nil {
					return nil, err
				}
			}
			opIdx++
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	leaves, err := lb.finish()
	if err != nil {
		return nil, err
	}
	root, err := buildLevels(sink, t.cfg, leaves, 1, true)
	if err != nil {
		return nil, err
	}
	if err := sink.Flush(); err != nil {
		return nil, err
	}
	return &Tree{src: t.src, cfg: t.cfg, root: root.id, count: root.count}, nil
}

// Insert is a convenience single-key put.
func (t *Tree) Insert(key, val []byte) (*Tree, error) {
	return t.Edit([]Op{Put(key, val)})
}

// Remove is a convenience single-key delete.
func (t *Tree) Remove(key []byte) (*Tree, error) {
	return t.Edit([]Op{Del(key)})
}

var _ = hash.Hash{} // keep hash imported for documentation references
