package pos

import (
	"fmt"

	"forkbase/internal/chunk"
	"forkbase/internal/chunker"
	"forkbase/internal/hash"
	"forkbase/internal/store"
)

// Blob is an immutable byte sequence stored as a POS-Tree whose leaves are
// content-defined byte segments (TypeBlobLeaf) and whose index levels are
// count-routed sequence nodes.  Blobs give ForkBase file-like values with
// chunk-level dedup between near-identical versions — the mechanism behind
// the Fig 4 experiment.
type Blob struct {
	src  nodeSource
	cfg  chunker.Config
	root hash.Hash
	size uint64
}

// NewEmptyBlob returns the empty blob.
func NewEmptyBlob(st store.Store, cfg chunker.Config) *Blob {
	return &Blob{src: sourceFor(st), cfg: cfg}
}

// LoadBlob attaches to an existing blob by root hash.
func LoadBlob(st store.Store, cfg chunker.Config, root hash.Hash) (*Blob, error) {
	b := &Blob{src: sourceFor(st), cfg: cfg, root: root}
	if root.IsZero() {
		return b, nil
	}
	n, err := b.src.load(root)
	if err != nil {
		return nil, fmt.Errorf("pos: loading blob root: %w", err)
	}
	switch n.typ {
	case chunk.TypeBlobLeaf:
		b.size = uint64(len(n.blob))
	case chunk.TypeSeqIndex:
		for _, r := range n.refs {
			b.size += r.count
		}
	default:
		return nil, fmt.Errorf("pos: blob root %s is a %s", root.Short(), n.typ)
	}
	return b, nil
}

// blobBuilder assembles blob leaves from a byte stream.
type blobBuilder struct {
	st       store.Store
	chk      *chunker.ByteChunker
	buf      []byte
	emitted  []childRef
	boundary bool
}

func newBlobBuilder(st store.Store, cfg chunker.Config) *blobBuilder {
	return &blobBuilder{st: st, chk: chunker.NewByteChunker(cfg), boundary: true}
}

func (b *blobBuilder) add(by byte) error {
	b.buf = append(b.buf, by)
	b.boundary = false
	if b.chk.Roll(by) {
		return b.closeLeaf()
	}
	return nil
}

func (b *blobBuilder) addAll(p []byte) error {
	for _, by := range p {
		if err := b.add(by); err != nil {
			return err
		}
	}
	return nil
}

func (b *blobBuilder) closeLeaf() error {
	if len(b.buf) == 0 {
		b.boundary = true
		return nil
	}
	c := chunk.New(chunk.TypeBlobLeaf, append([]byte(nil), b.buf...))
	if _, err := b.st.Put(c); err != nil {
		return err
	}
	b.emitted = append(b.emitted, childRef{id: c.ID(), count: uint64(len(b.buf))})
	b.buf = b.buf[:0]
	b.chk.Reset()
	b.boundary = true
	return nil
}

func (b *blobBuilder) finish() ([]childRef, error) {
	if err := b.closeLeaf(); err != nil {
		return nil, err
	}
	return b.emitted, nil
}

// BuildBlob constructs a blob over data.
func BuildBlob(st store.Store, cfg chunker.Config, data []byte) (*Blob, error) {
	bb := newBlobBuilder(st, cfg)
	if err := bb.addAll(data); err != nil {
		return nil, err
	}
	leaves, err := bb.finish()
	if err != nil {
		return nil, err
	}
	root, err := buildLevels(st, cfg, leaves, 1, false)
	if err != nil {
		return nil, err
	}
	return &Blob{src: sourceFor(st), cfg: cfg, root: root.id, size: root.count}, nil
}

// Root returns the root hash.
func (b *Blob) Root() hash.Hash { return b.root }

// Size returns the blob length in bytes.
func (b *Blob) Size() uint64 { return b.size }

// Bytes materialises the full content.
func (b *Blob) Bytes() ([]byte, error) {
	out := make([]byte, 0, b.size)
	if b.root.IsZero() {
		return out, nil
	}
	var walk func(id hash.Hash) error
	walk = func(id hash.Hash) error {
		n, err := b.src.load(id)
		if err != nil {
			return err
		}
		switch n.typ {
		case chunk.TypeBlobLeaf:
			out = append(out, n.blob...)
			return nil
		case chunk.TypeSeqIndex:
			for _, r := range n.refs {
				if err := walk(r.id); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("pos: unexpected chunk %s in blob", n.typ)
		}
	}
	if err := walk(b.root); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadAt fills p from offset off, returning the bytes copied.
func (b *Blob) ReadAt(p []byte, off uint64) (int, error) {
	if off >= b.size {
		return 0, ErrOutOfRange
	}
	// Walk down by counts collecting only the needed leaves.
	n := 0
	var walk func(id hash.Hash, skip uint64) error
	walk = func(id hash.Hash, skip uint64) error {
		if n >= len(p) {
			return nil
		}
		nd, err := b.src.load(id)
		if err != nil {
			return err
		}
		switch nd.typ {
		case chunk.TypeBlobLeaf:
			data := nd.blob
			if skip < uint64(len(data)) {
				n += copy(p[n:], data[skip:])
			}
			return nil
		case chunk.TypeSeqIndex:
			for _, r := range nd.refs {
				if skip >= r.count {
					skip -= r.count
					continue
				}
				if err := walk(r.id, skip); err != nil {
					return err
				}
				skip = 0
				if n >= len(p) {
					return nil
				}
			}
			return nil
		default:
			return fmt.Errorf("pos: unexpected chunk %s in blob", nd.typ)
		}
	}
	if err := walk(b.root, off); err != nil {
		return n, err
	}
	return n, nil
}

// blobLevels materialises the blob's levels (leaves carry byte counts).
func (b *Blob) blobLevels() ([]levelInfo, error) {
	s := &Seq{src: b.src, cfg: b.cfg, root: b.root, count: b.size}
	return s.seqLevels()
}

// Splice returns a blob with bytes [at, at+del) replaced by ins, re-chunking
// incrementally from the affected leaf until boundary re-synchronisation.
func (b *Blob) Splice(at, del uint64, ins []byte) (*Blob, error) {
	if at > b.size {
		return nil, ErrOutOfRange
	}
	if del > b.size-at {
		del = b.size - at
	}
	if del == 0 && len(ins) == 0 {
		return b, nil
	}
	if b.root.IsZero() {
		return BuildBlob(b.src.st, b.cfg, ins)
	}

	levels, err := b.blobLevels()
	if err != nil {
		return nil, err
	}
	leafRefs := levels[0].refs

	lo := 0
	var skipped uint64
	for lo < len(leafRefs)-1 && skipped+leafRefs[lo].count <= at {
		skipped += leafRefs[lo].count
		lo++
	}

	bb := newBlobBuilder(b.src.st, b.cfg)
	oldLeaf := lo
	var oldData []byte
	oldPos := 0
	loaded := false
	pos := skipped
	peek := func() (byte, bool, error) {
		for {
			if oldLeaf >= len(leafRefs) {
				return 0, false, nil
			}
			if !loaded {
				n, err := b.src.load(leafRefs[oldLeaf].id)
				if err != nil {
					return 0, false, err
				}
				if n.typ != chunk.TypeBlobLeaf {
					return 0, false, fmt.Errorf("pos: expected blob leaf, got %s", n.typ)
				}
				oldData = n.blob
				loaded = true
				oldPos = 0
			}
			if oldPos < len(oldData) {
				return oldData[oldPos], true, nil
			}
			oldLeaf++
			loaded = false
		}
	}

	insDone := false
	delEnd := at + del
	hi := len(leafRefs)
	for {
		by, ok, err := peek()
		if err != nil {
			return nil, err
		}
		switch {
		case pos < at:
			if !ok {
				return nil, fmt.Errorf("pos: blob splice ran out of bytes before at=%d", at)
			}
			if err := bb.add(by); err != nil {
				return nil, err
			}
			oldPos++
			pos++
		case !insDone:
			if err := bb.addAll(ins); err != nil {
				return nil, err
			}
			insDone = true
		case pos < delEnd:
			if !ok {
				return nil, fmt.Errorf("pos: blob splice ran out of bytes during delete")
			}
			oldPos++
			pos++
		default:
			if !ok {
				hi = len(leafRefs)
				goto done
			}
			if oldPos == 0 && bb.boundary {
				hi = oldLeaf
				goto done
			}
			if err := bb.add(by); err != nil {
				return nil, err
			}
			oldPos++
			pos++
		}
	}
done:
	newRefs, err := bb.finish()
	if err != nil {
		return nil, err
	}
	newSize := b.size - del + uint64(len(ins))
	cur := splice{lo: lo, hi: hi, refs: newRefs}
	for h := 0; ; h++ {
		level := levels[h]
		total := len(level.refs) - (cur.hi - cur.lo) + len(cur.refs)
		if total == 0 {
			return &Blob{src: b.src, cfg: b.cfg}, nil
		}
		if total == 1 {
			root := singleSurvivor(level.refs, cur)
			return &Blob{src: b.src, cfg: b.cfg, root: root.id, size: newSize}, nil
		}
		if h == len(levels)-1 {
			full := make([]childRef, 0, total)
			full = append(full, level.refs[:cur.lo]...)
			full = append(full, cur.refs...)
			full = append(full, level.refs[cur.hi:]...)
			root, err := buildLevels(b.src.st, b.cfg, full, uint8(h+1), false)
			if err != nil {
				return nil, err
			}
			return &Blob{src: b.src, cfg: b.cfg, root: root.id, size: newSize}, nil
		}
		cur, err = seqSpliceLevel(b.src.st, b.cfg, levels[h+1], level.refs, cur, uint8(h+1))
		if err != nil {
			return nil, err
		}
	}
}

// ChunkIDs returns every chunk reachable from the blob root.
func (b *Blob) ChunkIDs() ([]hash.Hash, error) {
	s := &Seq{src: b.src, cfg: b.cfg, root: b.root, count: b.size}
	return s.ChunkIDs()
}
