package pos

import (
	"fmt"

	"forkbase/internal/chunk"
	"forkbase/internal/chunker"
	"forkbase/internal/hash"
	"forkbase/internal/rolling"
	"forkbase/internal/store"
)

// Blob is an immutable byte sequence stored as a POS-Tree whose leaves are
// content-defined byte segments (TypeBlobLeaf) and whose index levels are
// count-routed sequence nodes.  Blobs give ForkBase file-like values with
// chunk-level dedup between near-identical versions — the mechanism behind
// the Fig 4 experiment.
type Blob struct {
	src  nodeSource
	cfg  chunker.Config
	root hash.Hash
	size uint64
}

// NewEmptyBlob returns the empty blob.
func NewEmptyBlob(st store.Store, cfg chunker.Config) *Blob {
	return &Blob{src: sourceFor(st), cfg: cfg}
}

// LoadBlob attaches to an existing blob by root hash.
func LoadBlob(st store.Store, cfg chunker.Config, root hash.Hash) (*Blob, error) {
	b := &Blob{src: sourceFor(st), cfg: cfg, root: root}
	if root.IsZero() {
		return b, nil
	}
	n, err := b.src.load(root)
	if err != nil {
		return nil, fmt.Errorf("pos: loading blob root: %w", err)
	}
	switch n.typ {
	case chunk.TypeBlobLeaf:
		b.size = uint64(len(n.blob))
	case chunk.TypeSeqIndex:
		for _, r := range n.refs {
			b.size += r.count
		}
	default:
		return nil, fmt.Errorf("pos: blob root %s is a %s", root.Short(), n.typ)
	}
	return b, nil
}

// blobBuilder assembles blob leaves from a byte stream.  Bytes accumulate in
// a contiguous [type][bytes...] buffer scanned in bulk for split patterns
// (the byte-granular semantics of chunker.ByteChunker, without per-byte
// calls); finished leaves are emitted into the write sink.
type blobBuilder struct {
	sink         *store.ChunkSink
	cfg          chunker.Config
	scan         *rolling.Scan
	begin, check int

	// buf is the builder's single scratch buffer, [1B chunk type][bytes...];
	// Emit borrows it per call, so it is reused across leaves.
	buf      []byte
	scanPos  int
	scanHash uint64
	emitted  []childRef
	ids      []*hash.Hash
	boundary bool
	one      [1]byte // scratch for single-byte adds
}

func newBlobBuilder(sink *store.ChunkSink, cfg chunker.Config) *blobBuilder {
	cfg = cfg.Normalized()
	scan := rolling.NewScan(cfg.Q, cfg.Window)
	b := &blobBuilder{
		sink:     sink,
		cfg:      cfg,
		scan:     scan,
		begin:    scan.SkipStart(cfg.MinSize),
		check:    cfg.MinSize - 1,
		boundary: true,
	}
	est := 2 << cfg.Q
	if est > cfg.MaxSize {
		est = cfg.MaxSize
	}
	b.buf = make([]byte, 1, 1+est)
	b.buf[0] = byte(chunk.TypeBlobLeaf)
	return b
}

func (b *blobBuilder) add(by byte) error {
	b.one[0] = by
	return b.addAll(b.one[:])
}

// addAll feeds p, closing leaves at every content-defined or max-size
// boundary exactly where the byte-wise chunker would have.
func (b *blobBuilder) addAll(p []byte) error {
	for {
		node := b.buf[1:]
		if len(node) < b.cfg.MaxSize && len(p) > 0 {
			take := b.cfg.MaxSize - len(node)
			if take > len(p) {
				take = len(p)
			}
			b.buf = append(b.buf, p[:take]...)
			p = p[take:]
			node = b.buf[1:]
		}
		if len(node) == 0 {
			return nil
		}
		b.boundary = false
		hit, h := b.scan.Find(node, b.scanPos, b.scanHash, b.begin, b.check)
		if hit >= 0 {
			if err := b.closeLeafAt(hit + 1); err != nil {
				return err
			}
			continue
		}
		b.scanHash, b.scanPos = h, len(node)
		if len(node) >= b.cfg.MaxSize {
			if err := b.closeLeafAt(len(node)); err != nil {
				return err
			}
			continue
		}
		if len(p) == 0 {
			return nil
		}
	}
}

// closeLeafAt emits the first cut bytes of the open leaf and shifts the
// remainder (bytes past a mid-buffer pattern) to the front of the scratch,
// where the next chunk's scan restarts from zero state — the determinism
// ByteChunker gets from resetting its hasher at each boundary.
func (b *blobBuilder) closeLeafAt(cut int) error {
	region := b.buf[:1+cut]
	idp, err := b.sink.Emit(chunk.TypeBlobLeaf, region)
	if err != nil {
		return err
	}
	b.emitted = append(b.emitted, childRef{count: uint64(cut)})
	b.ids = append(b.ids, idp)
	rem := copy(b.buf[1:], b.buf[1+cut:])
	b.buf = b.buf[:1+rem]
	b.scanPos, b.scanHash = 0, 0
	b.boundary = rem == 0
	return nil
}

func (b *blobBuilder) finish() ([]childRef, error) {
	if n := len(b.buf) - 1; n > 0 {
		if err := b.closeLeafAt(n); err != nil {
			return nil, err
		}
	}
	if err := b.sink.Barrier(); err != nil {
		return nil, err
	}
	for i := range b.emitted {
		b.emitted[i].id = *b.ids[i]
	}
	return b.emitted, nil
}

// BuildBlob constructs a blob over data.
func BuildBlob(st store.Store, cfg chunker.Config, data []byte) (*Blob, error) {
	sink := buildSink(st)
	defer sink.Close()
	bb := newBlobBuilder(sink, cfg)
	if err := bb.addAll(data); err != nil {
		return nil, err
	}
	leaves, err := bb.finish()
	if err != nil {
		return nil, err
	}
	root, err := buildLevels(sink, cfg, leaves, 1, false)
	if err != nil {
		return nil, err
	}
	if err := sink.Flush(); err != nil {
		return nil, err
	}
	return &Blob{src: sourceFor(st), cfg: cfg, root: root.id, size: root.count}, nil
}

// Root returns the root hash.
func (b *Blob) Root() hash.Hash { return b.root }

// Size returns the blob length in bytes.
func (b *Blob) Size() uint64 { return b.size }

// Bytes materialises the full content.
func (b *Blob) Bytes() ([]byte, error) {
	out := make([]byte, 0, b.size)
	if b.root.IsZero() {
		return out, nil
	}
	var walk func(id hash.Hash) error
	walk = func(id hash.Hash) error {
		n, err := b.src.load(id)
		if err != nil {
			return err
		}
		switch n.typ {
		case chunk.TypeBlobLeaf:
			out = append(out, n.blob...)
			return nil
		case chunk.TypeSeqIndex:
			for _, r := range n.refs {
				if err := walk(r.id); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("pos: unexpected chunk %s in blob", n.typ)
		}
	}
	if err := walk(b.root); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadAt fills p from offset off, returning the bytes copied.
func (b *Blob) ReadAt(p []byte, off uint64) (int, error) {
	if off >= b.size {
		return 0, ErrOutOfRange
	}
	// Walk down by counts collecting only the needed leaves.
	n := 0
	var walk func(id hash.Hash, skip uint64) error
	walk = func(id hash.Hash, skip uint64) error {
		if n >= len(p) {
			return nil
		}
		nd, err := b.src.load(id)
		if err != nil {
			return err
		}
		switch nd.typ {
		case chunk.TypeBlobLeaf:
			data := nd.blob
			if skip < uint64(len(data)) {
				n += copy(p[n:], data[skip:])
			}
			return nil
		case chunk.TypeSeqIndex:
			for _, r := range nd.refs {
				if skip >= r.count {
					skip -= r.count
					continue
				}
				if err := walk(r.id, skip); err != nil {
					return err
				}
				skip = 0
				if n >= len(p) {
					return nil
				}
			}
			return nil
		default:
			return fmt.Errorf("pos: unexpected chunk %s in blob", nd.typ)
		}
	}
	if err := walk(b.root, off); err != nil {
		return n, err
	}
	return n, nil
}

// blobLevels materialises the blob's levels (leaves carry byte counts).
func (b *Blob) blobLevels() ([]levelInfo, error) {
	s := &Seq{src: b.src, cfg: b.cfg, root: b.root, count: b.size}
	return s.seqLevels()
}

// Splice returns a blob with bytes [at, at+del) replaced by ins, re-chunking
// incrementally from the affected leaf until boundary re-synchronisation.
func (b *Blob) Splice(at, del uint64, ins []byte) (*Blob, error) {
	if at > b.size {
		return nil, ErrOutOfRange
	}
	if del > b.size-at {
		del = b.size - at
	}
	if del == 0 && len(ins) == 0 {
		return b, nil
	}
	if b.root.IsZero() {
		return BuildBlob(b.src.st, b.cfg, ins)
	}

	levels, err := b.blobLevels()
	if err != nil {
		return nil, err
	}
	leafRefs := levels[0].refs

	lo := 0
	var skipped uint64
	for lo < len(leafRefs)-1 && skipped+leafRefs[lo].count <= at {
		skipped += leafRefs[lo].count
		lo++
	}

	sink := editSink(b.src.st)
	defer sink.Close()
	bb := newBlobBuilder(sink, b.cfg)
	oldLeaf := lo
	var oldData []byte
	oldPos := 0
	loaded := false
	pos := skipped
	peek := func() (byte, bool, error) {
		for {
			if oldLeaf >= len(leafRefs) {
				return 0, false, nil
			}
			if !loaded {
				n, err := b.src.load(leafRefs[oldLeaf].id)
				if err != nil {
					return 0, false, err
				}
				if n.typ != chunk.TypeBlobLeaf {
					return 0, false, fmt.Errorf("pos: expected blob leaf, got %s", n.typ)
				}
				oldData = n.blob
				loaded = true
				oldPos = 0
			}
			if oldPos < len(oldData) {
				return oldData[oldPos], true, nil
			}
			oldLeaf++
			loaded = false
		}
	}

	insDone := false
	delEnd := at + del
	hi := len(leafRefs)
	for {
		by, ok, err := peek()
		if err != nil {
			return nil, err
		}
		switch {
		case pos < at:
			if !ok {
				return nil, fmt.Errorf("pos: blob splice ran out of bytes before at=%d", at)
			}
			if err := bb.add(by); err != nil {
				return nil, err
			}
			oldPos++
			pos++
		case !insDone:
			if err := bb.addAll(ins); err != nil {
				return nil, err
			}
			insDone = true
		case pos < delEnd:
			if !ok {
				return nil, fmt.Errorf("pos: blob splice ran out of bytes during delete")
			}
			oldPos++
			pos++
		default:
			if !ok {
				hi = len(leafRefs)
				goto done
			}
			if oldPos == 0 && bb.boundary {
				hi = oldLeaf
				goto done
			}
			if err := bb.add(by); err != nil {
				return nil, err
			}
			oldPos++
			pos++
		}
	}
done:
	newRefs, err := bb.finish()
	if err != nil {
		return nil, err
	}
	flushed := func(bl *Blob) (*Blob, error) {
		if err := sink.Flush(); err != nil {
			return nil, err
		}
		return bl, nil
	}
	newSize := b.size - del + uint64(len(ins))
	cur := splice{lo: lo, hi: hi, refs: newRefs}
	for h := 0; ; h++ {
		level := levels[h]
		total := len(level.refs) - (cur.hi - cur.lo) + len(cur.refs)
		if total == 0 {
			return flushed(&Blob{src: b.src, cfg: b.cfg})
		}
		if total == 1 {
			root := singleSurvivor(level.refs, cur)
			return flushed(&Blob{src: b.src, cfg: b.cfg, root: root.id, size: newSize})
		}
		if h == len(levels)-1 {
			full := make([]childRef, 0, total)
			full = append(full, level.refs[:cur.lo]...)
			full = append(full, cur.refs...)
			full = append(full, level.refs[cur.hi:]...)
			root, err := buildLevels(sink, b.cfg, full, uint8(h+1), false)
			if err != nil {
				return nil, err
			}
			return flushed(&Blob{src: b.src, cfg: b.cfg, root: root.id, size: newSize})
		}
		cur, err = seqSpliceLevel(sink, b.cfg, levels[h+1], level.refs, cur, uint8(h+1))
		if err != nil {
			return nil, err
		}
	}
}

// ChunkIDs returns every chunk reachable from the blob root.
func (b *Blob) ChunkIDs() ([]hash.Hash, error) {
	s := &Seq{src: b.src, cfg: b.cfg, root: b.root, count: b.size}
	return s.ChunkIDs()
}
