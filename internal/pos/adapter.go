package pos

import (
	"forkbase/internal/chunk"
	"forkbase/internal/chunker"
	"forkbase/internal/hash"
	"forkbase/internal/index"
	"forkbase/internal/store"
)

// This file ports the map POS-Tree behind the structure-agnostic
// index.VersionedIndex contract.  Tree already satisfies most of the
// interface directly (Get, Has, At, Rank, Root, Len, ChunkIDs,
// ComputeStats, Store, Config); the methods below bridge the tree-typed
// signatures (Edit, Iter, Diff) to the interface-typed ones, and the init
// hook registers the factory, the root chunk types and the child-hash
// decoders the reachability walks (GC mark, verify, replication prune)
// dispatch through.  Chunk encodings are untouched by this port: a DB
// written before the index layer existed reopens with byte-identical roots.

// Kind identifies the structure (index.KindPOS).
func (t *Tree) Kind() index.Kind { return index.KindPOS }

// Apply applies a batch of puts and deletes via the incremental Edit and
// returns the resulting tree as a VersionedIndex.
func (t *Tree) Apply(ops []index.Op) (index.VersionedIndex, error) {
	nt, err := t.Edit(ops)
	if err != nil {
		return nil, err
	}
	return nt, nil
}

// Iterate returns a key-ordered iterator (interface-typed Iter).
func (t *Tree) Iterate() (index.Iterator, error) {
	it, err := t.Iter()
	if err != nil {
		return nil, err
	}
	return it, nil
}

// IterateFrom returns an iterator positioned before the first key >= key.
func (t *Tree) IterateFrom(key []byte) (index.Iterator, error) {
	it, err := t.IterFrom(key)
	if err != nil {
		return nil, err
	}
	return it, nil
}

// DiffWith diffs against another index: the structural, subtree-pruning
// diff when o is also a POS-Tree, the (range-partitioned) generic iterator
// diff otherwise.
func (t *Tree) DiffWith(o index.VersionedIndex) ([]index.Delta, index.DiffStats, error) {
	if ot, ok := o.(*Tree); ok {
		return t.Diff(ot)
	}
	return index.GenericDiffParallel(t, o, index.DefaultWorkers())
}

var _ index.VersionedIndex = (*Tree)(nil)
var _ index.Iterator = (*Iter)(nil)

// factory builds, loads and empties map POS-Trees for the index registry.
type factory struct{}

func (factory) Kind() index.Kind { return index.KindPOS }

func (factory) Empty(st store.Store, cfg chunker.Config) index.VersionedIndex {
	return NewEmptyTree(st, cfg)
}

func (factory) Load(st store.Store, cfg chunker.Config, root hash.Hash) (index.VersionedIndex, error) {
	t, err := LoadTree(st, cfg, root)
	if err != nil {
		return nil, err
	}
	return t, nil
}

func (factory) Build(st store.Store, cfg chunker.Config, entries []index.Entry) (index.VersionedIndex, error) {
	t, err := BuildMap(st, cfg, entries)
	if err != nil {
		return nil, err
	}
	return t, nil
}

func init() {
	index.Register(factory{})
	// Both map node types can root a tree (single-leaf trees root at a
	// leaf), so Load can sniff the structure from stored data.
	index.RegisterRoot(chunk.TypeMapLeaf, index.KindPOS)
	index.RegisterRoot(chunk.TypeMapIndex, index.KindPOS)
	// Child-hash decoders for every POS node type: reachability walks feed
	// arbitrary chunks through index.Children instead of importing pos.
	// IndexChildren answers for map and seq index nodes alike (and returns
	// nil for leaves, which need no registration).
	index.RegisterChildren(chunk.TypeMapIndex, IndexChildren)
	index.RegisterChildren(chunk.TypeSeqIndex, IndexChildren)
}
