package pos

import (
	"bytes"
	"fmt"
	"sort"

	"forkbase/internal/chunk"
	"forkbase/internal/hash"
)

// Iter walks a map POS-Tree in key order.
//
//	it, _ := tree.Iter()
//	for it.Next() {
//	    use(it.Entry())
//	}
//	if err := it.Err(); err != nil { ... }
type Iter struct {
	t       *Tree
	stack   []iterFrame
	entries []Entry
	pos     int // position within entries; -1 before first Next
	err     error
	done    bool
}

type iterFrame struct {
	refs []childRef
	idx  int
}

// Iter returns an iterator positioned before the first entry.
func (t *Tree) Iter() (*Iter, error) {
	it := &Iter{t: t, pos: -1}
	if t.root.IsZero() {
		it.done = true
		return it, nil
	}
	if err := it.descend(t.root); err != nil {
		return nil, err
	}
	it.pos = -1
	return it, nil
}

// IterFrom returns an iterator positioned before the first entry whose key
// is >= key.
func (t *Tree) IterFrom(key []byte) (*Iter, error) {
	it := &Iter{t: t, pos: -1}
	if t.root.IsZero() {
		it.done = true
		return it, nil
	}
	id := t.root
	for {
		n, err := t.src.load(id)
		if err != nil {
			return nil, fmt.Errorf("pos: iter: %w", err)
		}
		if n.typ == chunk.TypeMapLeaf {
			entries := n.entries
			it.entries = entries
			i := sort.Search(len(entries), func(i int) bool {
				return bytes.Compare(entries[i].Key, key) >= 0
			})
			it.pos = i - 1
			if i == len(entries) {
				// Key is beyond this leaf; the next Next() will pop upward.
				it.pos = len(entries) - 1
			}
			return it, nil
		}
		if n.typ != chunk.TypeMapIndex {
			return nil, fmt.Errorf("pos: unexpected chunk type %s in map tree", n.typ)
		}
		refs := n.refs
		i := sort.Search(len(refs), func(i int) bool {
			return bytes.Compare(refs[i].splitKey, key) >= 0
		})
		if i == len(refs) {
			i = len(refs) - 1 // descend rightmost; iterator will exhaust
		}
		it.stack = append(it.stack, iterFrame{refs: refs, idx: i})
		id = refs[i].id
	}
}

// descend loads the leftmost leaf under id, pushing index frames.
func (it *Iter) descend(id hash.Hash) error {
	for {
		n, err := it.t.src.load(id)
		if err != nil {
			return fmt.Errorf("pos: iter: %w", err)
		}
		if n.typ == chunk.TypeMapLeaf {
			it.entries = n.entries
			it.pos = -1
			return nil
		}
		if n.typ != chunk.TypeMapIndex {
			return fmt.Errorf("pos: unexpected chunk type %s in map tree", n.typ)
		}
		refs := n.refs
		if len(refs) == 0 {
			return fmt.Errorf("pos: empty index node %s", id.Short())
		}
		it.stack = append(it.stack, iterFrame{refs: refs})
		id = refs[0].id
	}
}

// Next advances to the next entry; it returns false at the end or on error.
func (it *Iter) Next() bool {
	if it.done || it.err != nil {
		return false
	}
	it.pos++
	if it.pos < len(it.entries) {
		return true
	}
	// Current leaf exhausted: pop to the nearest ancestor with a next child.
	for len(it.stack) > 0 {
		top := &it.stack[len(it.stack)-1]
		top.idx++
		if top.idx < len(top.refs) {
			if err := it.descend(top.refs[top.idx].id); err != nil {
				it.err = err
				return false
			}
			it.pos = 0
			return len(it.entries) > 0
		}
		it.stack = it.stack[:len(it.stack)-1]
	}
	it.done = true
	return false
}

// Entry returns the current entry.  Valid only after a true Next.  The
// returned slices alias decoded chunk data; copy before holding long-term.
func (it *Iter) Entry() Entry { return it.entries[it.pos] }

// Err returns the first error encountered during iteration.
func (it *Iter) Err() error { return it.err }
