package pos

import (
	"fmt"
	"sync"
	"testing"

	"forkbase/internal/chunker"
	"forkbase/internal/nodecache"
	"forkbase/internal/store"
)

// benchTree builds an n-entry tree with default (4 KiB page) chunking.
func benchTree(b *testing.B, n int) (*Tree, *store.MemStore) {
	b.Helper()
	ms := store.NewMemStore()
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{
			Key: []byte(fmt.Sprintf("key-%010d", i)),
			Val: []byte(fmt.Sprintf("value-%d", i)),
		}
	}
	tree, err := BuildMap(ms, chunker.DefaultConfig(), entries)
	if err != nil {
		b.Fatal(err)
	}
	return tree, ms
}

// benchTreeCached is benchTree over a store with an attached decoded-node
// cache, pre-warmed by one full traversal so steady-state hits dominate.
func benchTreeCached(b *testing.B, n int) *Tree {
	b.Helper()
	ms := store.NewMemStore()
	cs := store.WithNodeCache(ms, nodecache.New(256<<20))
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{
			Key: []byte(fmt.Sprintf("key-%010d", i)),
			Val: []byte(fmt.Sprintf("value-%d", i)),
		}
	}
	tree, err := BuildMap(cs, chunker.DefaultConfig(), entries)
	if err != nil {
		b.Fatal(err)
	}
	it, err := tree.Iter()
	if err != nil {
		b.Fatal(err)
	}
	for it.Next() {
	}
	if err := it.Err(); err != nil {
		b.Fatal(err)
	}
	return tree
}

func buildEntries(n int) []Entry {
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{
			Key: []byte(fmt.Sprintf("key-%010d", i)),
			Val: []byte(fmt.Sprintf("value-%d", i)),
		}
	}
	return entries
}

// BenchmarkBuildMap measures the batched (sink) write path.
func BenchmarkBuildMap(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			entries := buildEntries(n)
			b.SetBytes(int64(n * 24))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ms := store.NewMemStore()
				if _, err := BuildMap(ms, chunker.DefaultConfig(), entries); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildMapPerChunk measures the preserved per-chunk-Put baseline
// (the pre-sink write path) on the same workload; the BuildMap/PerChunk
// ratio is the write-path speedup this tree reports in CHANGES.md.
func BenchmarkBuildMapPerChunk(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			entries := buildEntries(n)
			b.SetBytes(int64(n * 24))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ms := store.NewMemStore()
				if _, err := BuildMapPerChunk(ms, chunker.DefaultConfig(), entries); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildMapFileStore is the same comparison over a durable store:
// the batched path group-commits, the baseline issues one synchronous Put
// per node.
func BenchmarkBuildMapFileStore(b *testing.B) {
	entries := buildEntries(100000)
	for _, mode := range []string{"perchunk", "batched"} {
		b.Run(mode, func(b *testing.B) {
			b.SetBytes(int64(len(entries) * 24))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fs, err := store.OpenFileStore(b.TempDir())
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if mode == "batched" {
					_, err = BuildMap(fs, chunker.DefaultConfig(), entries)
				} else {
					_, err = BuildMapPerChunk(fs, chunker.DefaultConfig(), entries)
				}
				if err != nil {
					b.Fatal(err)
				}
				if err := fs.Flush(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				fs.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkIngestParallel is the multi-client bulk-ingest workload: 8
// writers each build their own map into one shared FileStore.  The per-chunk
// baseline serializes every node store on the write mutex; the batched path
// amortizes the lock over whole batches (and hashes on a pool when cores
// allow).
func BenchmarkIngestParallel(b *testing.B) {
	const writers = 8
	parts := make([][]Entry, writers)
	for g := range parts {
		part := make([]Entry, 12500)
		for i := range part {
			part[i] = Entry{
				Key: []byte(fmt.Sprintf("w%d-key-%010d", g, i)),
				Val: []byte(fmt.Sprintf("value-%d", i)),
			}
		}
		parts[g] = part
	}
	for _, mode := range []string{"perchunk", "batched"} {
		b.Run(mode, func(b *testing.B) {
			b.SetBytes(int64(writers * 12500 * 24))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fs, err := store.OpenFileStore(b.TempDir())
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				var wg sync.WaitGroup
				for g := 0; g < writers; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						var err error
						if mode == "batched" {
							_, err = BuildMap(fs, chunker.DefaultConfig(), parts[g])
						} else {
							_, err = BuildMapPerChunk(fs, chunker.DefaultConfig(), parts[g])
						}
						if err != nil {
							b.Error(err)
						}
					}(g)
				}
				wg.Wait()
				b.StopTimer()
				fs.Close()
				b.StartTimer()
			}
		})
	}
}

func BenchmarkTreeGet(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tree, _ := benchTree(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := []byte(fmt.Sprintf("key-%010d", i%n))
				if _, err := tree.Get(key); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTreeInsert(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tree, _ := benchTree(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := []byte(fmt.Sprintf("key-%010d", i%n))
				if _, err := tree.Insert(key, []byte(fmt.Sprintf("upd-%d", i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTreeGetCached is the cached counterpart of BenchmarkTreeGet:
// point lookups served from the decoded-node cache instead of re-fetching
// and re-decoding whole leaves per Get.
func BenchmarkTreeGetCached(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tree := benchTreeCached(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := []byte(fmt.Sprintf("key-%010d", i%n))
				if _, err := tree.Get(key); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTreeGetParallel measures read scalability: all goroutines hammer
// one tree.  With the exclusive store mutex of the seed this serialized;
// with RLock + atomic stats (and optionally the cache) it must scale with
// GOMAXPROCS.
func BenchmarkTreeGetParallel(b *testing.B) {
	const n = 100000
	for _, cached := range []bool{false, true} {
		name := "cache=off"
		if cached {
			name = "cache=on"
		}
		b.Run(name, func(b *testing.B) {
			var tree *Tree
			if cached {
				tree = benchTreeCached(b, n)
			} else {
				tree, _ = benchTree(b, n)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					key := []byte(fmt.Sprintf("key-%010d", i%n))
					if _, err := tree.Get(key); err != nil {
						b.Error(err) // Fatal is not legal off the benchmark goroutine
						return
					}
					i += 7919 // stride to spread goroutines over the key space
				}
			})
		})
	}
}

// BenchmarkTreeIterateCached is the cached counterpart of
// BenchmarkTreeIterate (full scan).
func BenchmarkTreeIterateCached(b *testing.B) {
	tree := benchTreeCached(b, 100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := tree.Iter()
		if err != nil {
			b.Fatal(err)
		}
		count := 0
		for it.Next() {
			count++
		}
		if err := it.Err(); err != nil || count != 100000 {
			b.Fatalf("count=%d err=%v", count, err)
		}
	}
}

// BenchmarkTreeDiffCached diffs two cached trees differing in D keys.
func BenchmarkTreeDiffCached(b *testing.B) {
	for _, d := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("D=%d", d), func(b *testing.B) {
			tree := benchTreeCached(b, 100000)
			ops := make([]Op, d)
			for i := range ops {
				ops[i] = Put([]byte(fmt.Sprintf("key-%010d", i*997)), []byte("changed"))
			}
			other, err := tree.Edit(ops)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				deltas, _, err := tree.Diff(other)
				if err != nil || len(deltas) != d {
					b.Fatalf("deltas=%d err=%v", len(deltas), err)
				}
			}
		})
	}
}

func BenchmarkTreeIterate(b *testing.B) {
	tree, _ := benchTree(b, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := tree.Iter()
		if err != nil {
			b.Fatal(err)
		}
		count := 0
		for it.Next() {
			count++
		}
		if err := it.Err(); err != nil || count != 100000 {
			b.Fatalf("count=%d err=%v", count, err)
		}
	}
}

func BenchmarkTreeDiff(b *testing.B) {
	for _, d := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("D=%d", d), func(b *testing.B) {
			tree, _ := benchTree(b, 100000)
			ops := make([]Op, d)
			for i := range ops {
				ops[i] = Put([]byte(fmt.Sprintf("key-%010d", i*997)), []byte("changed"))
			}
			other, err := tree.Edit(ops)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				deltas, _, err := tree.Diff(other)
				if err != nil || len(deltas) != d {
					b.Fatalf("deltas=%d err=%v", len(deltas), err)
				}
			}
		})
	}
}

func BenchmarkMerge3Disjoint(b *testing.B) {
	tree, _ := benchTree(b, 100000)
	a, err := tree.Edit([]Op{Put([]byte("key-0000000001"), []byte("A"))})
	if err != nil {
		b.Fatal(err)
	}
	c, err := tree.Edit([]Op{Put([]byte("key-0000099998"), []byte("B"))})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Merge3(tree, a, c, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlobBuild(b *testing.B) {
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i * 31)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms := store.NewMemStore()
		if _, err := BuildBlob(ms, chunker.DefaultConfig(), data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeqSplice(b *testing.B) {
	ms := store.NewMemStore()
	items := make([][]byte, 50000)
	for i := range items {
		items[i] = []byte(fmt.Sprintf("item-%08d", i))
	}
	seq, err := BuildSeq(ms, chunker.DefaultConfig(), items)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := seq.Splice(uint64(i%50000), 1, [][]byte{[]byte("spliced")}); err != nil {
			b.Fatal(err)
		}
	}
}
