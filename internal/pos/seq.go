package pos

import (
	"fmt"
	"sort"

	"forkbase/internal/chunk"
	"forkbase/internal/chunker"
	"forkbase/internal/hash"
	"forkbase/internal/index"
	"forkbase/internal/store"
)

// Seq is an immutable positional POS-Tree over variable-length items; it
// backs the List data type.  Index nodes route by cumulative item counts
// instead of split keys; everything else (pattern-split boundaries, Merkle
// hashing, structural invariance) matches the map variant.
type Seq struct {
	src   nodeSource
	cfg   chunker.Config
	root  hash.Hash
	count uint64
}

// ErrOutOfRange is returned for positions past the end of a sequence.  It
// is the index layer's shared sentinel.
var ErrOutOfRange = index.ErrOutOfRange

// NewEmptySeq returns the empty sequence.
func NewEmptySeq(st store.Store, cfg chunker.Config) *Seq {
	return &Seq{src: sourceFor(st), cfg: cfg}
}

// LoadSeq attaches to an existing sequence by root hash.
func LoadSeq(st store.Store, cfg chunker.Config, root hash.Hash) (*Seq, error) {
	s := &Seq{src: sourceFor(st), cfg: cfg, root: root}
	if root.IsZero() {
		return s, nil
	}
	n, err := s.src.load(root)
	if err != nil {
		return nil, fmt.Errorf("pos: loading seq root: %w", err)
	}
	switch n.typ {
	case chunk.TypeSeqLeaf:
		s.count = uint64(len(n.items))
	case chunk.TypeSeqIndex:
		for _, r := range n.refs {
			s.count += r.count
		}
	default:
		return nil, fmt.Errorf("pos: seq root %s is a %s", root.Short(), n.typ)
	}
	return s, nil
}

// BuildSeq constructs a sequence over items.
func BuildSeq(st store.Store, cfg chunker.Config, items [][]byte) (*Seq, error) {
	sink := buildSink(st)
	defer sink.Close()
	lb := newLevelBuilder(sink, cfg, 0, false)
	for _, it := range items {
		if err := lb.addItem(it); err != nil {
			return nil, err
		}
	}
	leaves, err := lb.finish()
	if err != nil {
		return nil, err
	}
	root, err := buildLevels(sink, cfg, leaves, 1, false)
	if err != nil {
		return nil, err
	}
	if err := sink.Flush(); err != nil {
		return nil, err
	}
	return &Seq{src: sourceFor(st), cfg: cfg, root: root.id, count: root.count}, nil
}

// Root returns the root hash (zero for empty).
func (s *Seq) Root() hash.Hash { return s.root }

// Len returns the number of items.
func (s *Seq) Len() uint64 { return s.count }

// Get returns item i.  The returned slice aliases shared decoded node data;
// callers must not modify it.
func (s *Seq) Get(i uint64) ([]byte, error) {
	if i >= s.count {
		return nil, ErrOutOfRange
	}
	id := s.root
	for {
		n, err := s.src.load(id)
		if err != nil {
			return nil, fmt.Errorf("pos: seq get: %w", err)
		}
		switch n.typ {
		case chunk.TypeSeqLeaf:
			if i >= uint64(len(n.items)) {
				return nil, ErrOutOfRange
			}
			return n.items[i], nil
		case chunk.TypeSeqIndex:
			found := false
			for _, r := range n.refs {
				if i < r.count {
					id = r.id
					found = true
					break
				}
				i -= r.count
			}
			if !found {
				return nil, ErrOutOfRange
			}
		default:
			return nil, fmt.Errorf("pos: unexpected chunk %s in seq", n.typ)
		}
	}
}

// Items materialises all items in order.
func (s *Seq) Items() ([][]byte, error) {
	out := make([][]byte, 0, s.count)
	err := s.walkLeaves(func(items [][]byte) {
		for _, it := range items {
			out = append(out, append([]byte(nil), it...))
		}
	})
	return out, err
}

func (s *Seq) walkLeaves(fn func(items [][]byte)) error {
	if s.root.IsZero() {
		return nil
	}
	var walk func(id hash.Hash) error
	walk = func(id hash.Hash) error {
		n, err := s.src.load(id)
		if err != nil {
			return err
		}
		switch n.typ {
		case chunk.TypeSeqLeaf:
			fn(n.items)
			return nil
		case chunk.TypeSeqIndex:
			for _, r := range n.refs {
				if err := walk(r.id); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("pos: unexpected chunk %s in seq", n.typ)
		}
	}
	return walk(s.root)
}

// seqLevels materialises index levels bottom-up (like materializeLevels but
// count-routed).
func (s *Seq) seqLevels() ([]levelInfo, error) {
	rootNode, err := s.src.load(s.root)
	if err != nil {
		return nil, fmt.Errorf("pos: seq: %w", err)
	}
	if rootNode.typ == chunk.TypeSeqLeaf {
		return []levelInfo{{refs: []childRef{{id: s.root, count: s.count}}}}, nil
	}
	var topDown []levelInfo
	cur := []childRef{{id: s.root, count: s.count}}
	for {
		topDown = append(topDown, levelInfo{refs: cur})
		var lower []childRef
		starts := make([]int, len(cur))
		leaf := false
		for i, r := range cur {
			starts[i] = len(lower)
			n, err := s.src.load(r.id)
			if err != nil {
				return nil, err
			}
			switch n.typ {
			case chunk.TypeSeqIndex:
				lower = append(lower, n.refs...)
			case chunk.TypeSeqLeaf, chunk.TypeBlobLeaf:
				leaf = true
			default:
				return nil, fmt.Errorf("pos: unexpected chunk %s", n.typ)
			}
		}
		if leaf {
			break
		}
		topDown[len(topDown)-1].childStart = starts
		cur = lower
	}
	levels := make([]levelInfo, len(topDown))
	for i := range topDown {
		levels[len(topDown)-1-i] = topDown[i]
	}
	return levels, nil
}

// Splice returns a sequence with items [at, at+del) removed and ins inserted
// at position at.  Like Tree.Edit it is incremental: chunking restarts at
// the affected leaf and stops at re-synchronisation, and the result is
// byte-identical to a from-scratch build of the edited item list.
func (s *Seq) Splice(at, del uint64, ins [][]byte) (*Seq, error) {
	if at > s.count {
		return nil, ErrOutOfRange
	}
	if del > s.count-at {
		del = s.count - at
	}
	if del == 0 && len(ins) == 0 {
		return s, nil
	}
	if s.root.IsZero() {
		return BuildSeq(s.src.st, s.cfg, ins)
	}

	levels, err := s.seqLevels()
	if err != nil {
		return nil, err
	}
	leafRefs := levels[0].refs

	// Locate the leaf containing position `at` (last leaf for appends).
	lo := 0
	var skipped uint64
	for lo < len(leafRefs)-1 && skipped+leafRefs[lo].count <= at {
		skipped += leafRefs[lo].count
		lo++
	}

	sink := editSink(s.src.st)
	defer sink.Close()
	lb := newLevelBuilder(sink, s.cfg, 0, false)
	feed := func(item []byte) error {
		return lb.addItem(item)
	}

	oldLeaf := lo
	var oldItems [][]byte
	oldPos := 0
	loaded := false
	pos := skipped // absolute position of next old item
	peek := func() ([]byte, bool, error) {
		for {
			if oldLeaf >= len(leafRefs) {
				return nil, false, nil
			}
			if !loaded {
				n, err := s.src.load(leafRefs[oldLeaf].id)
				if err != nil {
					return nil, false, err
				}
				if n.typ != chunk.TypeSeqLeaf {
					return nil, false, fmt.Errorf("pos: expected seq leaf, got %s", n.typ)
				}
				oldItems = n.items
				loaded = true
				oldPos = 0
			}
			if oldPos < len(oldItems) {
				return oldItems[oldPos], true, nil
			}
			oldLeaf++
			loaded = false
		}
	}

	insDone := false
	delEnd := at + del
	hi := len(leafRefs)
	for {
		it, ok, err := peek()
		if err != nil {
			return nil, err
		}
		switch {
		case pos < at:
			if !ok {
				return nil, fmt.Errorf("pos: seq splice ran out of items before at=%d", at)
			}
			if err := feed(it); err != nil {
				return nil, err
			}
			oldPos++
			pos++
		case !insDone:
			for _, item := range ins {
				if err := feed(item); err != nil {
					return nil, err
				}
			}
			insDone = true
		case pos < delEnd:
			if !ok {
				return nil, fmt.Errorf("pos: seq splice ran out of items during delete")
			}
			oldPos++
			pos++
		default:
			// Tail phase: sync at a leaf boundary, or run to the end.
			if !ok {
				hi = len(leafRefs)
				goto done
			}
			if oldPos == 0 && lb.atBoundary() {
				hi = oldLeaf
				goto done
			}
			if err := feed(it); err != nil {
				return nil, err
			}
			oldPos++
			pos++
		}
	}
done:
	newRefs, err := lb.finish()
	if err != nil {
		return nil, err
	}
	flushed := func(sq *Seq) (*Seq, error) {
		if err := sink.Flush(); err != nil {
			return nil, err
		}
		return sq, nil
	}
	newCount := s.count - del + uint64(len(ins))
	cur := splice{lo: lo, hi: hi, refs: newRefs}
	for h := 0; ; h++ {
		level := levels[h]
		total := len(level.refs) - (cur.hi - cur.lo) + len(cur.refs)
		if total == 0 {
			return flushed(&Seq{src: s.src, cfg: s.cfg})
		}
		if total == 1 {
			root := singleSurvivor(level.refs, cur)
			return flushed(&Seq{src: s.src, cfg: s.cfg, root: root.id, count: newCount})
		}
		if h == len(levels)-1 {
			full := make([]childRef, 0, total)
			full = append(full, level.refs[:cur.lo]...)
			full = append(full, cur.refs...)
			full = append(full, level.refs[cur.hi:]...)
			root, err := buildLevels(sink, s.cfg, full, uint8(h+1), false)
			if err != nil {
				return nil, err
			}
			return flushed(&Seq{src: s.src, cfg: s.cfg, root: root.id, count: newCount})
		}
		cur, err = seqSpliceLevel(sink, s.cfg, levels[h+1], level.refs, cur, uint8(h+1))
		if err != nil {
			return nil, err
		}
	}
}

// seqSpliceLevel propagates a splice through a sequence index level.
func seqSpliceLevel(sink *store.ChunkSink, cfg chunker.Config, level levelInfo, lowerOld []childRef, s splice, levelNo uint8) (splice, error) {
	starts := level.childStart
	a := sort.Search(len(starts), func(i int) bool { return starts[i] > s.lo }) - 1
	if a < 0 {
		a = 0
	}
	lb := newLevelBuilder(sink, cfg, levelNo, false)
	feed := func(r childRef) error {
		return lb.addRef(r)
	}
	pos := starts[a]
	newIdx := 0
	c := len(level.refs)
	nodeStartAt := func(pos int) (int, bool) {
		i := sort.Search(len(starts), func(i int) bool { return starts[i] >= pos })
		if i < len(starts) && starts[i] == pos && i > a {
			return i, true
		}
		return 0, false
	}
	for {
		if pos < s.lo {
			if err := feed(lowerOld[pos]); err != nil {
				return splice{}, err
			}
			pos++
			continue
		}
		if newIdx < len(s.refs) {
			if err := feed(s.refs[newIdx]); err != nil {
				return splice{}, err
			}
			newIdx++
			continue
		}
		if pos < s.hi {
			pos = s.hi
			continue
		}
		if pos == len(lowerOld) {
			c = len(level.refs)
			break
		}
		if lb.atBoundary() {
			if node, ok := nodeStartAt(pos); ok {
				c = node
				break
			}
		}
		if err := feed(lowerOld[pos]); err != nil {
			return splice{}, err
		}
		pos++
	}
	out, err := lb.finish()
	if err != nil {
		return splice{}, err
	}
	return splice{lo: a, hi: c, refs: out}, nil
}

// Append returns the sequence with items added at the end.
func (s *Seq) Append(items ...[]byte) (*Seq, error) {
	return s.Splice(s.count, 0, items)
}

// ChunkIDs returns every chunk id reachable from the sequence root.
func (s *Seq) ChunkIDs() ([]hash.Hash, error) {
	var out []hash.Hash
	if s.root.IsZero() {
		return nil, nil
	}
	var walk func(id hash.Hash) error
	walk = func(id hash.Hash) error {
		out = append(out, id)
		n, err := s.src.load(id)
		if err != nil {
			return err
		}
		if n.typ != chunk.TypeSeqIndex {
			return nil
		}
		for _, r := range n.refs {
			if err := walk(r.id); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(s.root); err != nil {
		return nil, err
	}
	return out, nil
}
