package pos

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"forkbase/internal/chunker"
	"forkbase/internal/store"
)

// testCfg yields small nodes so even modest inputs exercise multi-level trees.
func testCfg() chunker.Config {
	return chunker.Config{Q: 6, Window: 16, MinSize: 8, MaxSize: 1 << 12}
}

func genEntries(n int, seed int64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Entry, n)
	for i := range out {
		out[i] = Entry{
			Key: []byte(fmt.Sprintf("key-%08d", i)),
			Val: []byte(fmt.Sprintf("val-%d-%d", i, rng.Intn(1<<20))),
		}
	}
	return out
}

func mustBuild(t *testing.T, st store.Store, entries []Entry) *Tree {
	t.Helper()
	tree, err := BuildMap(st, testCfg(), entries)
	if err != nil {
		t.Fatalf("BuildMap: %v", err)
	}
	return tree
}

func TestBuildEmpty(t *testing.T) {
	st := store.NewMemStore()
	tree := mustBuild(t, st, nil)
	if !tree.Root().IsZero() {
		t.Fatalf("empty tree root = %s, want zero", tree.Root())
	}
	if tree.Len() != 0 {
		t.Fatalf("empty tree len = %d", tree.Len())
	}
	if _, err := tree.Get([]byte("x")); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("Get on empty = %v, want ErrKeyNotFound", err)
	}
}

func TestBuildAndGet(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100, 1000, 5000} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			st := store.NewMemStore()
			entries := genEntries(n, 42)
			tree := mustBuild(t, st, entries)
			if got := tree.Len(); got != uint64(n) {
				t.Fatalf("Len = %d, want %d", got, n)
			}
			for _, e := range entries {
				v, err := tree.Get(e.Key)
				if err != nil {
					t.Fatalf("Get(%q): %v", e.Key, err)
				}
				if !bytes.Equal(v, e.Val) {
					t.Fatalf("Get(%q) = %q, want %q", e.Key, v, e.Val)
				}
			}
			if _, err := tree.Get([]byte("absent")); !errors.Is(err, ErrKeyNotFound) {
				t.Fatalf("absent key err = %v", err)
			}
			if _, err := tree.Get([]byte("zzzz-beyond-max")); !errors.Is(err, ErrKeyNotFound) {
				t.Fatalf("beyond-max key err = %v", err)
			}
		})
	}
}

func TestBuildDeterministicAcrossInsertionOrder(t *testing.T) {
	st := store.NewMemStore()
	entries := genEntries(2000, 7)
	want := mustBuild(t, st, entries)

	for trial := 0; trial < 5; trial++ {
		shuffled := make([]Entry, len(entries))
		copy(shuffled, entries)
		rng := rand.New(rand.NewSource(int64(trial)))
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := mustBuild(t, st, shuffled)
		if got.Root() != want.Root() {
			t.Fatalf("trial %d: shuffled build root %s != %s", trial, got.Root().Short(), want.Root().Short())
		}
	}
}

func TestBuildDuplicateKeysLastWins(t *testing.T) {
	st := store.NewMemStore()
	entries := []Entry{
		{Key: []byte("a"), Val: []byte("1")},
		{Key: []byte("b"), Val: []byte("2")},
		{Key: []byte("a"), Val: []byte("3")},
	}
	tree := mustBuild(t, st, entries)
	if tree.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tree.Len())
	}
	v, err := tree.Get([]byte("a"))
	if err != nil || string(v) != "3" {
		t.Fatalf("Get(a) = %q, %v; want 3", v, err)
	}
}

func TestIterOrderAndCompleteness(t *testing.T) {
	st := store.NewMemStore()
	entries := genEntries(3000, 9)
	tree := mustBuild(t, st, entries)
	it, err := tree.Iter()
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	var prev []byte
	for it.Next() {
		e := it.Entry()
		if prev != nil && bytes.Compare(prev, e.Key) >= 0 {
			t.Fatalf("iterator out of order at %d: %q after %q", i, e.Key, prev)
		}
		if !bytes.Equal(e.Key, entries[i].Key) || !bytes.Equal(e.Val, entries[i].Val) {
			t.Fatalf("entry %d = %q/%q, want %q/%q", i, e.Key, e.Val, entries[i].Key, entries[i].Val)
		}
		prev = append(prev[:0], e.Key...)
		i++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(entries) {
		t.Fatalf("iterated %d entries, want %d", i, len(entries))
	}
}

func TestIterFrom(t *testing.T) {
	st := store.NewMemStore()
	entries := genEntries(1000, 3)
	tree := mustBuild(t, st, entries)
	for _, start := range []int{0, 1, 499, 998, 999} {
		it, err := tree.IterFrom(entries[start].Key)
		if err != nil {
			t.Fatal(err)
		}
		i := start
		for it.Next() {
			if !bytes.Equal(it.Entry().Key, entries[i].Key) {
				t.Fatalf("IterFrom(%d): entry %q, want %q", start, it.Entry().Key, entries[i].Key)
			}
			i++
		}
		if i != len(entries) {
			t.Fatalf("IterFrom(%d) yielded %d entries, want %d", start, i-start, len(entries)-start)
		}
	}
	// Seek between keys and past the end.
	it, err := tree.IterFrom([]byte("key-00000499x"))
	if err != nil {
		t.Fatal(err)
	}
	if !it.Next() || !bytes.Equal(it.Entry().Key, entries[500].Key) {
		t.Fatalf("between-keys seek landed on %q", it.Entry().Key)
	}
	it, err = tree.IterFrom([]byte("zzz"))
	if err != nil {
		t.Fatal(err)
	}
	if it.Next() {
		t.Fatalf("past-the-end seek yielded %q", it.Entry().Key)
	}
}

func TestLoadTreeRoundTrip(t *testing.T) {
	st := store.NewMemStore()
	entries := genEntries(500, 5)
	tree := mustBuild(t, st, entries)
	loaded, err := LoadTree(st, testCfg(), tree.Root())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != tree.Len() {
		t.Fatalf("loaded len %d != %d", loaded.Len(), tree.Len())
	}
	v, err := loaded.Get(entries[123].Key)
	if err != nil || !bytes.Equal(v, entries[123].Val) {
		t.Fatalf("loaded Get = %q, %v", v, err)
	}
}

func TestComputeStats(t *testing.T) {
	st := store.NewMemStore()
	entries := genEntries(4000, 11)
	tree := mustBuild(t, st, entries)
	stats, err := tree.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 4000 {
		t.Fatalf("stats entries %d", stats.Entries)
	}
	if stats.Height < 2 {
		t.Fatalf("expected multi-level tree, height=%d", stats.Height)
	}
	if stats.LeafNodes+stats.IndexNodes != stats.Nodes {
		t.Fatalf("node accounting mismatch: %+v", stats)
	}
	if stats.MaxNode > testCfg().MaxSize*4 {
		t.Fatalf("node exceeds max-size guard: %d", stats.MaxNode)
	}
	// Expected node size ~2^Q; allow generous slack but ensure it is not
	// wildly off (which would indicate broken pattern detection).
	avg := stats.AvgLeaf()
	if avg < 16 || avg > 4096 {
		t.Fatalf("suspicious average leaf size %.1f for Q=6", avg)
	}
}

// TestStructuralInvarianceViaEditPaths is the central SIRI property: the
// same record set must yield the same root no matter how it was reached.
func TestStructuralInvarianceViaEditPaths(t *testing.T) {
	st := store.NewMemStore()
	entries := genEntries(1500, 21)

	// Path 1: bulk build.
	bulk := mustBuild(t, st, entries)

	// Path 2: build half, then Edit in the rest in shuffled batches.
	half := mustBuild(t, st, entries[:750])
	rest := make([]Entry, len(entries)-750)
	copy(rest, entries[750:])
	rng := rand.New(rand.NewSource(99))
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	cur := half
	for i := 0; i < len(rest); i += 100 {
		end := i + 100
		if end > len(rest) {
			end = len(rest)
		}
		ops := make([]Op, 0, end-i)
		for _, e := range rest[i:end] {
			ops = append(ops, Put(e.Key, e.Val))
		}
		var err error
		cur, err = cur.Edit(ops)
		if err != nil {
			t.Fatalf("Edit: %v", err)
		}
	}
	if cur.Root() != bulk.Root() {
		t.Fatalf("edit path root %s != bulk root %s", cur.Root().Short(), bulk.Root().Short())
	}

	// Path 3: build everything plus junk, then delete the junk.
	withJunk := make([]Entry, 0, len(entries)+100)
	withJunk = append(withJunk, entries...)
	var junkOps []Op
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("junk-%04d", i))
		withJunk = append(withJunk, Entry{Key: k, Val: []byte("x")})
		junkOps = append(junkOps, Del(k))
	}
	jt := mustBuild(t, st, withJunk)
	cleaned, err := jt.Edit(junkOps)
	if err != nil {
		t.Fatal(err)
	}
	if cleaned.Root() != bulk.Root() {
		t.Fatalf("delete path root %s != bulk root %s", cleaned.Root().Short(), bulk.Root().Short())
	}
}

func TestEditMatchesRebuildRandomized(t *testing.T) {
	st := store.NewMemStore()
	rng := rand.New(rand.NewSource(123))
	entries := genEntries(800, 55)
	tree := mustBuild(t, st, entries)
	model := map[string]string{}
	for _, e := range entries {
		model[string(e.Key)] = string(e.Val)
	}

	for round := 0; round < 30; round++ {
		nops := 1 + rng.Intn(40)
		ops := make([]Op, 0, nops)
		for i := 0; i < nops; i++ {
			switch rng.Intn(4) {
			case 0: // update existing
				k := fmt.Sprintf("key-%08d", rng.Intn(800))
				ops = append(ops, Put([]byte(k), []byte(fmt.Sprintf("upd-%d-%d", round, i))))
			case 1: // insert new
				k := fmt.Sprintf("new-%d-%d", round, rng.Intn(1000))
				ops = append(ops, Put([]byte(k), []byte("inserted")))
			case 2: // delete existing
				k := fmt.Sprintf("key-%08d", rng.Intn(800))
				ops = append(ops, Del([]byte(k)))
			default: // delete absent
				ops = append(ops, Del([]byte(fmt.Sprintf("ghost-%d", rng.Intn(1000)))))
			}
		}
		inc, err := tree.Edit(ops)
		if err != nil {
			t.Fatalf("round %d Edit: %v", round, err)
		}
		reb, err := tree.EditRebuild(ops)
		if err != nil {
			t.Fatalf("round %d EditRebuild: %v", round, err)
		}
		if inc.Root() != reb.Root() {
			t.Fatalf("round %d: incremental root %s != rebuild root %s",
				round, inc.Root().Short(), reb.Root().Short())
		}
		if inc.Len() != reb.Len() {
			t.Fatalf("round %d: len %d != %d", round, inc.Len(), reb.Len())
		}
		// Update the model and verify content.
		for _, o := range normalizeOps(ops) {
			if o.Delete {
				delete(model, string(o.Key))
			} else {
				model[string(o.Key)] = string(o.Val)
			}
		}
		if uint64(len(model)) != inc.Len() {
			t.Fatalf("round %d: model size %d != tree len %d", round, len(model), inc.Len())
		}
		tree = inc
	}
	// Final full-content check against the model.
	got, err := tree.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(model) {
		t.Fatalf("final entries %d != model %d", len(got), len(model))
	}
	for _, e := range got {
		if model[string(e.Key)] != string(e.Val) {
			t.Fatalf("final mismatch at %q: %q != %q", e.Key, e.Val, model[string(e.Key)])
		}
	}
}

func TestEditEdgeCases(t *testing.T) {
	st := store.NewMemStore()
	entries := genEntries(300, 17)
	tree := mustBuild(t, st, entries)

	t.Run("empty batch", func(t *testing.T) {
		got, err := tree.Edit(nil)
		if err != nil || got.Root() != tree.Root() {
			t.Fatalf("empty edit changed tree: %v", err)
		}
	})
	t.Run("identity put", func(t *testing.T) {
		got, err := tree.Edit([]Op{Put(entries[50].Key, entries[50].Val)})
		if err != nil {
			t.Fatal(err)
		}
		if got.Root() != tree.Root() {
			t.Fatalf("identity put changed root")
		}
	})
	t.Run("delete absent", func(t *testing.T) {
		got, err := tree.Edit([]Op{Del([]byte("nope"))})
		if err != nil || got.Root() != tree.Root() {
			t.Fatalf("deleting absent key changed tree: %v", err)
		}
	})
	t.Run("delete everything", func(t *testing.T) {
		ops := make([]Op, len(entries))
		for i, e := range entries {
			ops[i] = Del(e.Key)
		}
		got, err := tree.Edit(ops)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Root().IsZero() || got.Len() != 0 {
			t.Fatalf("delete-all left root=%s len=%d", got.Root().Short(), got.Len())
		}
	})
	t.Run("insert before first and after last", func(t *testing.T) {
		got, err := tree.Edit([]Op{
			Put([]byte("AAA-first"), []byte("front")),
			Put([]byte("zzz-last"), []byte("back")),
		})
		if err != nil {
			t.Fatal(err)
		}
		reb, err := tree.EditRebuild([]Op{
			Put([]byte("AAA-first"), []byte("front")),
			Put([]byte("zzz-last"), []byte("back")),
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.Root() != reb.Root() {
			t.Fatalf("boundary inserts: incremental != rebuild")
		}
		if v, _ := got.Get([]byte("AAA-first")); string(v) != "front" {
			t.Fatalf("front insert lost")
		}
	})
	t.Run("edit into empty tree", func(t *testing.T) {
		empty := NewEmptyTree(st, testCfg())
		got, err := empty.Edit([]Op{Put([]byte("k"), []byte("v")), Del([]byte("g"))})
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != 1 {
			t.Fatalf("len = %d", got.Len())
		}
	})
	t.Run("duplicate ops last wins", func(t *testing.T) {
		got, err := tree.Edit([]Op{
			Put([]byte("dup"), []byte("1")),
			Put([]byte("dup"), []byte("2")),
			Del([]byte("dup2")),
			Put([]byte("dup2"), []byte("kept")),
		})
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := got.Get([]byte("dup")); string(v) != "2" {
			t.Fatalf("dup = %q", v)
		}
		if v, _ := got.Get([]byte("dup2")); string(v) != "kept" {
			t.Fatalf("dup2 = %q", v)
		}
	})
}

func TestEditSingleLeafTree(t *testing.T) {
	st := store.NewMemStore()
	tree := mustBuild(t, st, genEntries(3, 1))
	got, err := tree.Edit([]Op{Put([]byte("key-00000001"), []byte("changed"))})
	if err != nil {
		t.Fatal(err)
	}
	v, err := got.Get([]byte("key-00000001"))
	if err != nil || string(v) != "changed" {
		t.Fatalf("single-leaf edit: %q, %v", v, err)
	}
	reb, err := tree.EditRebuild([]Op{Put([]byte("key-00000001"), []byte("changed"))})
	if err != nil {
		t.Fatal(err)
	}
	if got.Root() != reb.Root() {
		t.Fatal("single-leaf: incremental != rebuild")
	}
}

// TestRecursivelyIdentical checks SIRI property 2: a single-record edit on a
// large tree must reuse almost all pages.
func TestRecursivelyIdentical(t *testing.T) {
	st := store.NewMemStore()
	entries := genEntries(20000, 77)
	tree := mustBuild(t, st, entries)
	stats, err := tree.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}

	before := st.Stats().UniqueChunks
	edited, err := tree.Edit([]Op{Put([]byte("key-00010000"), []byte("poke"))})
	if err != nil {
		t.Fatal(err)
	}
	newChunks := st.Stats().UniqueChunks - before
	if edited.Root() == tree.Root() {
		t.Fatal("edit did not change root")
	}
	// |P(I2)-P(I1)| must be tiny compared with |P(I2) ∩ P(I1)|.
	if newChunks > int64(stats.Height)*4 {
		t.Fatalf("single edit created %d new chunks (height %d, nodes %d) — not recursively identical",
			newChunks, stats.Height, stats.Nodes)
	}
}

func TestChunkIDsCoverTree(t *testing.T) {
	st := store.NewMemStore()
	tree := mustBuild(t, st, genEntries(2000, 31))
	ids, err := tree.ChunkIDs()
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tree.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != stats.Nodes {
		t.Fatalf("ChunkIDs %d != Nodes %d", len(ids), stats.Nodes)
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id.String()] {
			// Shared sub-trees can repeat across branches of one tree only
			// if identical; that is legal, but for fresh sequential data it
			// would be surprising.  Don't fail, just note.
			t.Logf("duplicate chunk id %s", id.Short())
		}
		seen[id.String()] = true
	}
}

func TestEntriesSorted(t *testing.T) {
	st := store.NewMemStore()
	entries := genEntries(100, 2)
	tree := mustBuild(t, st, entries)
	got, err := tree.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return bytes.Compare(got[i].Key, got[j].Key) < 0 }) {
		t.Fatal("Entries not sorted")
	}
}
