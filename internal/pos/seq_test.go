package pos

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"forkbase/internal/chunker"
	"forkbase/internal/store"
)

func genItems(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("item-%06d-%d", i, rng.Intn(1<<16)))
	}
	return out
}

func TestSeqBuildAndGet(t *testing.T) {
	st := store.NewMemStore()
	for _, n := range []int{0, 1, 10, 1000, 5000} {
		items := genItems(n, 3)
		s, err := BuildSeq(st, testCfg(), items)
		if err != nil {
			t.Fatal(err)
		}
		if s.Len() != uint64(n) {
			t.Fatalf("n=%d: Len=%d", n, s.Len())
		}
		for _, i := range []int{0, n / 3, n / 2, n - 1} {
			if i < 0 || i >= n {
				continue
			}
			got, err := s.Get(uint64(i))
			if err != nil || !bytes.Equal(got, items[i]) {
				t.Fatalf("n=%d Get(%d) = %q, %v", n, i, got, err)
			}
		}
		if _, err := s.Get(uint64(n)); !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("n=%d out-of-range err = %v", n, err)
		}
	}
}

func TestSeqStructuralInvariance(t *testing.T) {
	st := store.NewMemStore()
	items := genItems(3000, 5)
	a, err := BuildSeq(st, testCfg(), items)
	if err != nil {
		t.Fatal(err)
	}
	// Build via two different splice paths.
	b, err := BuildSeq(st, testCfg(), items[:1000])
	if err != nil {
		t.Fatal(err)
	}
	b, err = b.Splice(1000, 0, items[1000:])
	if err != nil {
		t.Fatal(err)
	}
	if a.Root() != b.Root() {
		t.Fatalf("append path root %s != bulk %s", b.Root().Short(), a.Root().Short())
	}
	// Insert in the middle.
	c, err := BuildSeq(st, testCfg(), append(append([][]byte{}, items[:500]...), items[1500:]...))
	if err != nil {
		t.Fatal(err)
	}
	c, err = c.Splice(500, 0, items[500:1500])
	if err != nil {
		t.Fatal(err)
	}
	if a.Root() != c.Root() {
		t.Fatalf("mid-insert path root %s != bulk %s", c.Root().Short(), a.Root().Short())
	}
}

func TestSeqSpliceOracle(t *testing.T) {
	st := store.NewMemStore()
	rng := rand.New(rand.NewSource(11))
	model := genItems(800, 9)
	s, err := BuildSeq(st, testCfg(), model)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 25; round++ {
		at := uint64(rng.Intn(len(model) + 1))
		del := uint64(rng.Intn(20))
		if at+del > uint64(len(model)) {
			del = uint64(len(model)) - at
		}
		ins := genItems(rng.Intn(15), int64(round+1000))
		s, err = s.Splice(at, del, ins)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Update the model.
		next := make([][]byte, 0, len(model)-int(del)+len(ins))
		next = append(next, model[:at]...)
		next = append(next, ins...)
		next = append(next, model[at+del:]...)
		model = next
		if s.Len() != uint64(len(model)) {
			t.Fatalf("round %d: len %d != model %d", round, s.Len(), len(model))
		}
		// Structural invariance: the spliced tree must equal a fresh build.
		fresh, err := BuildSeq(st, testCfg(), model)
		if err != nil {
			t.Fatal(err)
		}
		if s.Root() != fresh.Root() {
			t.Fatalf("round %d: spliced root %s != fresh root %s", round, s.Root().Short(), fresh.Root().Short())
		}
	}
	got, err := s.Items()
	if err != nil {
		t.Fatal(err)
	}
	for i := range model {
		if !bytes.Equal(got[i], model[i]) {
			t.Fatalf("item %d = %q want %q", i, got[i], model[i])
		}
	}
}

func TestSeqDeleteAll(t *testing.T) {
	st := store.NewMemStore()
	s, err := BuildSeq(st, testCfg(), genItems(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	s, err = s.Splice(0, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Root().IsZero() || s.Len() != 0 {
		t.Fatalf("delete-all: root=%s len=%d", s.Root().Short(), s.Len())
	}
}

func TestSeqLoadRoundTrip(t *testing.T) {
	st := store.NewMemStore()
	items := genItems(500, 5)
	s, err := BuildSeq(st, testCfg(), items)
	if err != nil {
		t.Fatal(err)
	}
	l, err := LoadSeq(st, testCfg(), s.Root())
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != s.Len() {
		t.Fatalf("loaded len %d", l.Len())
	}
	v, err := l.Get(321)
	if err != nil || !bytes.Equal(v, items[321]) {
		t.Fatalf("loaded get: %q %v", v, err)
	}
}

func TestBlobBuildAndRead(t *testing.T) {
	st := store.NewMemStore()
	rng := rand.New(rand.NewSource(77))
	data := make([]byte, 300*1024)
	rng.Read(data)
	b, err := BuildBlob(st, testCfg(), data)
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() != uint64(len(data)) {
		t.Fatalf("size %d", b.Size())
	}
	got, err := b.Bytes()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Bytes mismatch (err=%v)", err)
	}
	p := make([]byte, 1000)
	n, err := b.ReadAt(p, 123456)
	if err != nil || n != 1000 || !bytes.Equal(p, data[123456:124456]) {
		t.Fatalf("ReadAt: n=%d err=%v", n, err)
	}
}

func TestBlobEmptyAndSmall(t *testing.T) {
	st := store.NewMemStore()
	b, err := BuildBlob(st, testCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Root().IsZero() || b.Size() != 0 {
		t.Fatalf("empty blob root=%s size=%d", b.Root().Short(), b.Size())
	}
	b, err = BuildBlob(st, testCfg(), []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Bytes()
	if err != nil || string(got) != "hi" {
		t.Fatalf("small blob: %q %v", got, err)
	}
}

// TestBlobDedupSingleWordEdit is the unit-level version of the paper's Fig 4
// scenario: two nearly identical ~340 KB payloads must share almost all
// chunks.
func TestBlobDedupSingleWordEdit(t *testing.T) {
	st := store.NewMemStore()
	rng := rand.New(rand.NewSource(2020))
	data := make([]byte, 340*1024)
	for i := range data {
		data[i] = byte('a' + rng.Intn(26))
	}
	cfg := chunker.DefaultConfig()
	if _, err := BuildBlob(st, cfg, data); err != nil {
		t.Fatal(err)
	}
	before := st.Stats()

	edited := append([]byte(nil), data...)
	copy(edited[170*1024:], "REPLACED")
	if _, err := BuildBlob(st, cfg, edited); err != nil {
		t.Fatal(err)
	}
	after := st.Stats()
	added := after.PhysicalBytes - before.PhysicalBytes
	if added > int64(len(data))/20 {
		t.Fatalf("second load added %d bytes (> 5%% of %d) — dedup broken", added, len(data))
	}
	t.Logf("first load: %d bytes physical; second load added only %d bytes", before.PhysicalBytes, added)
}

func TestBlobSpliceOracle(t *testing.T) {
	st := store.NewMemStore()
	rng := rand.New(rand.NewSource(31))
	model := make([]byte, 64*1024)
	rng.Read(model)
	b, err := BuildBlob(st, testCfg(), model)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 15; round++ {
		at := uint64(rng.Intn(len(model) + 1))
		del := uint64(rng.Intn(500))
		if at+del > uint64(len(model)) {
			del = uint64(len(model)) - at
		}
		ins := make([]byte, rng.Intn(400))
		rng.Read(ins)
		b, err = b.Splice(at, del, ins)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		next := make([]byte, 0, len(model)-int(del)+len(ins))
		next = append(next, model[:at]...)
		next = append(next, ins...)
		next = append(next, model[at+del:]...)
		model = next
		if b.Size() != uint64(len(model)) {
			t.Fatalf("round %d: size %d != %d", round, b.Size(), len(model))
		}
		fresh, err := BuildBlob(st, testCfg(), model)
		if err != nil {
			t.Fatal(err)
		}
		if b.Root() != fresh.Root() {
			t.Fatalf("round %d: spliced blob root != fresh build", round)
		}
	}
	got, err := b.Bytes()
	if err != nil || !bytes.Equal(got, model) {
		t.Fatalf("final content mismatch (err=%v)", err)
	}
}
