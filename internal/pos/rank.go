package pos

import (
	"bytes"
	"fmt"
	"sort"

	"forkbase/internal/chunk"
)

// At returns the entry at rank i (0-based, in key order).  Because index
// entries carry sub-tree entry counts, selection is O(log N) — one path
// from root to leaf — rather than an O(i) scan.
func (t *Tree) At(i uint64) (Entry, error) {
	if i >= t.count {
		return Entry{}, ErrOutOfRange
	}
	id := t.root
	for {
		c, err := t.st.Get(id)
		if err != nil {
			return Entry{}, fmt.Errorf("pos: at: %w", err)
		}
		switch c.Type() {
		case chunk.TypeMapLeaf:
			entries, err := decodeMapLeaf(c.Data())
			if err != nil {
				return Entry{}, err
			}
			if i >= uint64(len(entries)) {
				return Entry{}, ErrOutOfRange
			}
			return entries[i], nil
		case chunk.TypeMapIndex:
			_, refs, err := decodeMapIndex(c.Data())
			if err != nil {
				return Entry{}, err
			}
			found := false
			for _, r := range refs {
				if i < r.count {
					id = r.id
					found = true
					break
				}
				i -= r.count
			}
			if !found {
				return Entry{}, ErrOutOfRange
			}
		default:
			return Entry{}, fmt.Errorf("pos: unexpected chunk %s in map tree", c.Type())
		}
	}
}

// Rank returns the number of entries with key strictly less than key —
// equivalently, the rank at which key would sit.  O(log N) via sub-tree
// counts: whole sub-trees left of the search path are counted without being
// read.
func (t *Tree) Rank(key []byte) (uint64, error) {
	if t.root.IsZero() {
		return 0, nil
	}
	var rank uint64
	id := t.root
	for {
		c, err := t.st.Get(id)
		if err != nil {
			return 0, fmt.Errorf("pos: rank: %w", err)
		}
		switch c.Type() {
		case chunk.TypeMapLeaf:
			entries, err := decodeMapLeaf(c.Data())
			if err != nil {
				return 0, err
			}
			i := sort.Search(len(entries), func(i int) bool {
				return bytes.Compare(entries[i].Key, key) >= 0
			})
			return rank + uint64(i), nil
		case chunk.TypeMapIndex:
			_, refs, err := decodeMapIndex(c.Data())
			if err != nil {
				return 0, err
			}
			i := sort.Search(len(refs), func(i int) bool {
				return bytes.Compare(refs[i].splitKey, key) >= 0
			})
			for j := 0; j < i; j++ {
				rank += refs[j].count
			}
			if i == len(refs) {
				return rank, nil // key beyond the maximum
			}
			id = refs[i].id
		default:
			return 0, fmt.Errorf("pos: unexpected chunk %s in map tree", c.Type())
		}
	}
}

// RangeCount returns the number of entries with lo <= key < hi in
// O(log N), without touching the leaves in between.
func (t *Tree) RangeCount(lo, hi []byte) (uint64, error) {
	if bytes.Compare(lo, hi) >= 0 {
		return 0, nil
	}
	rlo, err := t.Rank(lo)
	if err != nil {
		return 0, err
	}
	rhi, err := t.Rank(hi)
	if err != nil {
		return 0, err
	}
	return rhi - rlo, nil
}
