package pos

import (
	"bytes"
	"fmt"
	"sort"

	"forkbase/internal/chunk"
)

// At returns the entry at rank i (0-based, in key order).  Because index
// entries carry sub-tree entry counts, selection is O(log N) — one path
// from root to leaf — rather than an O(i) scan.  The returned entry aliases
// shared decoded node data; callers must not modify it.
func (t *Tree) At(i uint64) (Entry, error) {
	if i >= t.count {
		return Entry{}, ErrOutOfRange
	}
	id := t.root
	for {
		n, err := t.src.load(id)
		if err != nil {
			return Entry{}, fmt.Errorf("pos: at: %w", err)
		}
		switch n.typ {
		case chunk.TypeMapLeaf:
			if i >= uint64(len(n.entries)) {
				return Entry{}, ErrOutOfRange
			}
			return n.entries[i], nil
		case chunk.TypeMapIndex:
			found := false
			for _, r := range n.refs {
				if i < r.count {
					id = r.id
					found = true
					break
				}
				i -= r.count
			}
			if !found {
				return Entry{}, ErrOutOfRange
			}
		default:
			return Entry{}, fmt.Errorf("pos: unexpected chunk %s in map tree", n.typ)
		}
	}
}

// Rank returns the number of entries with key strictly less than key —
// equivalently, the rank at which key would sit.  O(log N) via sub-tree
// counts: whole sub-trees left of the search path are counted without being
// read.
func (t *Tree) Rank(key []byte) (uint64, error) {
	if t.root.IsZero() {
		return 0, nil
	}
	var rank uint64
	id := t.root
	for {
		n, err := t.src.load(id)
		if err != nil {
			return 0, fmt.Errorf("pos: rank: %w", err)
		}
		switch n.typ {
		case chunk.TypeMapLeaf:
			entries := n.entries
			i := sort.Search(len(entries), func(i int) bool {
				return bytes.Compare(entries[i].Key, key) >= 0
			})
			return rank + uint64(i), nil
		case chunk.TypeMapIndex:
			refs := n.refs
			i := sort.Search(len(refs), func(i int) bool {
				return bytes.Compare(refs[i].splitKey, key) >= 0
			})
			for j := 0; j < i; j++ {
				rank += refs[j].count
			}
			if i == len(refs) {
				return rank, nil // key beyond the maximum
			}
			id = refs[i].id
		default:
			return 0, fmt.Errorf("pos: unexpected chunk %s in map tree", n.typ)
		}
	}
}

// RangeCount returns the number of entries with lo <= key < hi in
// O(log N), without touching the leaves in between.
func (t *Tree) RangeCount(lo, hi []byte) (uint64, error) {
	if bytes.Compare(lo, hi) >= 0 {
		return 0, nil
	}
	rlo, err := t.Rank(lo)
	if err != nil {
		return 0, err
	}
	rhi, err := t.Rank(hi)
	if err != nil {
		return 0, err
	}
	return rhi - rlo, nil
}
