// Package pos implements the Pattern-Oriented-Split Tree (POS-Tree), the
// primary contribution of the ForkBase paper (§II-A).
//
// A POS-Tree is simultaneously:
//
//   - a B+-tree: index nodes route lookups through split keys;
//   - a Merkle tree: child pointers are the cryptographic hashes of child
//     nodes, so the root hash authenticates the entire content;
//   - a content-defined-chunked structure: node boundaries are placed where
//     a rolling hash over the encoded entries matches a pattern, which makes
//     the node layout a pure function of the record set — the
//     Structurally-Invariant Reusable Index (SIRI) properties.
//
// Two variants are provided: Tree (an ordered key→value map, used for maps,
// sets and relational tables) and Seq (a positional sequence, used for lists
// and blobs).
package pos

import (
	"encoding/binary"
	"fmt"

	"forkbase/internal/chunk"
	"forkbase/internal/hash"
	"forkbase/internal/index"
)

// Entry is one key/value record of a map POS-Tree leaf.  It is the shared
// record type of the versioned-index layer; pos re-exports it so existing
// callers keep compiling against pos.Entry.
type Entry = index.Entry

// childRef is one routing entry of an index node: the identifier of a child
// plus the greatest key stored in that child's subtree (the split key) and
// the number of leaf entries below it.
type childRef struct {
	splitKey []byte // greatest key in the subtree (nil for sequence trees)
	id       hash.Hash
	count    uint64 // leaf entries (or bytes/items, for sequences) below
}

// appendUvarint appends x in unsigned varint form.  The single-byte case is
// the write path's hottest encode (key/value lengths are almost always
// < 128), so it skips the scratch-array round trip.
func appendUvarint(dst []byte, x uint64) []byte {
	if x < 0x80 {
		return append(dst, byte(x))
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], x)
	return append(dst, tmp[:n]...)
}

// encodeEntry appends the canonical encoding of a map entry:
// uvarint(len key) | key | uvarint(len val) | val.
// This byte form is both the storage format and the stream the rolling hash
// scans, so it must be deterministic.
func encodeEntry(dst []byte, e Entry) []byte {
	dst = appendUvarint(dst, uint64(len(e.Key)))
	dst = append(dst, e.Key...)
	dst = appendUvarint(dst, uint64(len(e.Val)))
	dst = append(dst, e.Val...)
	return dst
}

// encodeChildRef appends the canonical encoding of an index entry:
// uvarint(len splitKey) | splitKey | 32-byte child hash | uvarint(count).
func encodeChildRef(dst []byte, r childRef) []byte {
	dst = appendUvarint(dst, uint64(len(r.splitKey)))
	dst = append(dst, r.splitKey...)
	dst = append(dst, r.id[:]...)
	dst = appendUvarint(dst, r.count)
	return dst
}

// encodeSeqItem appends the canonical encoding of a sequence item.
func encodeSeqItem(dst, item []byte) []byte {
	dst = appendUvarint(dst, uint64(len(item)))
	dst = append(dst, item...)
	return dst
}

// encodeSeqChildRef appends a sequence index entry: 32-byte hash | count.
func encodeSeqChildRef(dst []byte, r childRef) []byte {
	dst = append(dst, r.id[:]...)
	dst = appendUvarint(dst, r.count)
	return dst
}

// Node payload layout (common to all four node chunk types):
//
//	[1B level][uvarint n][n encoded entries]
//
// level 0 = leaf; ≥1 = index.  The level byte lets Diff align subtrees of
// trees with different heights without external metadata.  The legacy
// builder materialises the layout with encodeNodePayload (builder_legacy.go);
// the sink builder assembles it in place inside its node buffer.

func errTrunc(what string) error { return fmt.Errorf("pos: truncated %s payload", what) }

// capHint bounds a decoder's preallocation by what the remaining payload
// could possibly hold (minSize bytes per element), so a corrupt or hostile
// count cannot force a huge allocation before per-element validation
// rejects it.
func capHint(n uint64, avail, minSize int) int {
	if minSize < 1 {
		minSize = 1
	}
	if max := uint64(avail/minSize) + 1; n > max {
		n = max
	}
	return int(n)
}

// decodeMapLeaf parses a TypeMapLeaf payload.
func decodeMapLeaf(data []byte) ([]Entry, error) {
	if len(data) < 1 {
		return nil, errTrunc("map leaf")
	}
	if data[0] != 0 {
		return nil, fmt.Errorf("pos: map leaf with level %d", data[0])
	}
	p := data[1:]
	n, sz := binary.Uvarint(p)
	if sz <= 0 {
		return nil, errTrunc("map leaf")
	}
	p = p[sz:]
	entries := make([]Entry, 0, capHint(n, len(p), 2))
	for i := uint64(0); i < n; i++ {
		kl, sz := binary.Uvarint(p)
		if sz <= 0 || uint64(len(p[sz:])) < kl {
			return nil, errTrunc("map leaf entry key")
		}
		p = p[sz:]
		k := p[:kl:kl]
		p = p[kl:]
		vl, sz := binary.Uvarint(p)
		if sz <= 0 || uint64(len(p[sz:])) < vl {
			return nil, errTrunc("map leaf entry value")
		}
		p = p[sz:]
		v := p[:vl:vl]
		p = p[vl:]
		entries = append(entries, Entry{Key: k, Val: v})
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("pos: %d trailing bytes in map leaf", len(p))
	}
	return entries, nil
}

// decodeMapIndex parses a TypeMapIndex payload, returning its level and
// child references.
func decodeMapIndex(data []byte) (uint8, []childRef, error) {
	if len(data) < 1 {
		return 0, nil, errTrunc("map index")
	}
	level := data[0]
	if level == 0 {
		return 0, nil, fmt.Errorf("pos: map index with level 0")
	}
	p := data[1:]
	n, sz := binary.Uvarint(p)
	if sz <= 0 {
		return 0, nil, errTrunc("map index")
	}
	p = p[sz:]
	refs := make([]childRef, 0, capHint(n, len(p), hash.Size+2))
	for i := uint64(0); i < n; i++ {
		kl, sz := binary.Uvarint(p)
		if sz <= 0 || uint64(len(p[sz:])) < kl {
			return 0, nil, errTrunc("map index split key")
		}
		p = p[sz:]
		k := p[:kl:kl]
		p = p[kl:]
		if len(p) < hash.Size {
			return 0, nil, errTrunc("map index child hash")
		}
		var id hash.Hash
		copy(id[:], p[:hash.Size])
		p = p[hash.Size:]
		cnt, sz := binary.Uvarint(p)
		if sz <= 0 {
			return 0, nil, errTrunc("map index count")
		}
		p = p[sz:]
		refs = append(refs, childRef{splitKey: k, id: id, count: cnt})
	}
	if len(p) != 0 {
		return 0, nil, fmt.Errorf("pos: %d trailing bytes in map index", len(p))
	}
	return level, refs, nil
}

// decodeSeqLeaf parses a TypeSeqLeaf payload into its items.
func decodeSeqLeaf(data []byte) ([][]byte, error) {
	if len(data) < 1 {
		return nil, errTrunc("seq leaf")
	}
	if data[0] != 0 {
		return nil, fmt.Errorf("pos: seq leaf with level %d", data[0])
	}
	p := data[1:]
	n, sz := binary.Uvarint(p)
	if sz <= 0 {
		return nil, errTrunc("seq leaf")
	}
	p = p[sz:]
	items := make([][]byte, 0, capHint(n, len(p), 1))
	for i := uint64(0); i < n; i++ {
		il, sz := binary.Uvarint(p)
		if sz <= 0 || uint64(len(p[sz:])) < il {
			return nil, errTrunc("seq leaf item")
		}
		p = p[sz:]
		items = append(items, p[:il:il])
		p = p[il:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("pos: %d trailing bytes in seq leaf", len(p))
	}
	return items, nil
}

// decodeSeqIndex parses a TypeSeqIndex payload.
func decodeSeqIndex(data []byte) (uint8, []childRef, error) {
	if len(data) < 1 {
		return 0, nil, errTrunc("seq index")
	}
	level := data[0]
	if level == 0 {
		return 0, nil, fmt.Errorf("pos: seq index with level 0")
	}
	p := data[1:]
	n, sz := binary.Uvarint(p)
	if sz <= 0 {
		return 0, nil, errTrunc("seq index")
	}
	p = p[sz:]
	refs := make([]childRef, 0, capHint(n, len(p), hash.Size+1))
	for i := uint64(0); i < n; i++ {
		if len(p) < hash.Size {
			return 0, nil, errTrunc("seq index child hash")
		}
		var id hash.Hash
		copy(id[:], p[:hash.Size])
		p = p[hash.Size:]
		cnt, sz := binary.Uvarint(p)
		if sz <= 0 {
			return 0, nil, errTrunc("seq index count")
		}
		p = p[sz:]
		refs = append(refs, childRef{id: id, count: cnt})
	}
	if len(p) != 0 {
		return 0, nil, fmt.Errorf("pos: %d trailing bytes in seq index", len(p))
	}
	return level, refs, nil
}

// IndexChildren returns the child hashes of a POS-Tree index node chunk, or
// nil for leaf chunks.  It is the hook external verifiers (package core) use
// to walk value graphs without depending on pos internals.
func IndexChildren(c *chunk.Chunk) ([]hash.Hash, error) {
	switch c.Type() {
	case chunk.TypeMapIndex:
		_, refs, err := decodeMapIndex(c.Data())
		if err != nil {
			return nil, err
		}
		out := make([]hash.Hash, len(refs))
		for i, r := range refs {
			out[i] = r.id
		}
		return out, nil
	case chunk.TypeSeqIndex:
		_, refs, err := decodeSeqIndex(c.Data())
		if err != nil {
			return nil, err
		}
		out := make([]hash.Hash, len(refs))
		for i, r := range refs {
			out[i] = r.id
		}
		return out, nil
	default:
		return nil, nil
	}
}
