package pos

import (
	"fmt"

	"forkbase/internal/chunk"
	"forkbase/internal/hash"
	"forkbase/internal/nodecache"
	"forkbase/internal/store"
)

// node is a fully decoded POS-Tree node.  It is immutable after decode:
// entries, items and refs alias the underlying chunk payload and must never
// be mutated, which is what makes a node safe to share between concurrent
// traversals and to keep in the decoded-node cache.
type node struct {
	typ   chunk.Type
	level uint8

	entries []Entry    // TypeMapLeaf
	items   [][]byte   // TypeSeqLeaf
	blob    []byte     // TypeBlobLeaf
	refs    []childRef // TypeMapIndex / TypeSeqIndex

	encSize int // encoded chunk size (header + payload), for tree stats
	memSize int // approximate decoded footprint, for cache accounting
}

// isLeaf reports whether the node sits at level 0 of its tree.
func (n *node) isLeaf() bool {
	switch n.typ {
	case chunk.TypeMapLeaf, chunk.TypeSeqLeaf, chunk.TypeBlobLeaf:
		return true
	}
	return false
}

// cacheable reports whether the node type belongs in the decoded-node cache.
func (n *node) cacheable() bool {
	switch n.typ {
	case chunk.TypeMapLeaf, chunk.TypeMapIndex, chunk.TypeSeqLeaf,
		chunk.TypeSeqIndex, chunk.TypeBlobLeaf:
		return true
	}
	return false
}

// decodeNode parses a chunk into its decoded node form.  Non-tree chunk
// types yield a bare node carrying only the type tag, so call sites keep
// producing their contextual "unexpected chunk" errors.
func decodeNode(c *chunk.Chunk) (*node, error) {
	n := &node{typ: c.Type(), encSize: c.Size()}
	switch c.Type() {
	case chunk.TypeMapLeaf:
		entries, err := decodeMapLeaf(c.Data())
		if err != nil {
			return nil, err
		}
		n.entries = entries
		// Entries alias the payload, so the marginal footprint is the
		// payload plus per-entry slice headers.
		n.memSize = c.Size() + len(entries)*48
	case chunk.TypeMapIndex:
		level, refs, err := decodeMapIndex(c.Data())
		if err != nil {
			return nil, err
		}
		n.level = level
		n.refs = refs
		n.memSize = c.Size() + len(refs)*72
	case chunk.TypeSeqLeaf:
		items, err := decodeSeqLeaf(c.Data())
		if err != nil {
			return nil, err
		}
		n.items = items
		n.memSize = c.Size() + len(items)*24
	case chunk.TypeSeqIndex:
		level, refs, err := decodeSeqIndex(c.Data())
		if err != nil {
			return nil, err
		}
		n.level = level
		n.refs = refs
		n.memSize = c.Size() + len(refs)*72
	case chunk.TypeBlobLeaf:
		n.blob = c.Data()
		n.memSize = c.Size()
	default:
		n.memSize = c.Size()
	}
	return n, nil
}

// nodeSource is the single gateway through which all POS-Tree traversal code
// obtains decoded nodes.  It couples a chunk store with an optional decoded-
// node cache: on a hit the store is not touched at all, and a node is
// decoded at most once per cache residency.  Correctness rests on chunk
// immutability — a hash.Hash can only ever denote one payload, so a cached
// decode can never be stale.
type nodeSource struct {
	st    store.Store
	cache *nodecache.Cache
}

// sourceFor builds a nodeSource over st, discovering a decoded-node cache
// if the store carries one (store.WithNodeCache / core.Options).
func sourceFor(st store.Store) nodeSource {
	return nodeSource{st: st, cache: store.NodeCacheOf(st)}
}

// load returns the decoded node identified by id, consulting the cache
// first.
func (ns nodeSource) load(id hash.Hash) (*node, error) {
	if ns.cache != nil {
		if v, ok := ns.cache.Get(id); ok {
			return v.(*node), nil
		}
	}
	c, err := ns.st.Get(id)
	if err != nil {
		return nil, err
	}
	n, err := decodeNode(c)
	if err != nil {
		return nil, err
	}
	if ns.cache != nil && n.cacheable() {
		ns.cache.Put(id, n, n.memSize)
		// GC may have deleted the chunk (and purged the cache) between our
		// store Get and the Put above, which would leave a swept node
		// resident forever.  The GC purge strictly follows its store
		// delete, so re-checking the store after our insert closes the
		// window: if the chunk is gone now, our entry is the stale one.
		if ok, herr := ns.st.Has(id); herr != nil || !ok {
			ns.cache.Remove(id)
		}
	}
	return n, nil
}

// loadMapLeaf loads id and requires a map leaf.
func (ns nodeSource) loadMapLeaf(id hash.Hash) ([]Entry, error) {
	n, err := ns.load(id)
	if err != nil {
		return nil, err
	}
	if n.typ != chunk.TypeMapLeaf {
		return nil, fmt.Errorf("pos: expected map leaf, got %s", n.typ)
	}
	return n.entries, nil
}
