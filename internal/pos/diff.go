package pos

import (
	"bytes"
	"fmt"

	"forkbase/internal/chunk"
	"forkbase/internal/hash"
	"forkbase/internal/index"
)

// Delta, DeltaKind and DiffStats are the shared diff vocabulary of the
// versioned-index layer, re-exported so existing callers keep compiling
// against pos.*.
type (
	// Delta is one key-level difference between two map trees.
	Delta = index.Delta
	// DeltaKind classifies a delta.
	DeltaKind = index.DeltaKind
	// DiffStats instruments a diff run; TouchedChunks is the "pages read"
	// quantity behind the O(D·log N) claim of §II-B.
	DiffStats = index.DiffStats
)

// Delta kinds.
const (
	Added    = index.Added
	Removed  = index.Removed
	Modified = index.Modified
)

// Diff computes the key-level differences from t (old) to o (new).
//
// Sub-trees with identical root hashes are pruned without being read —
// possible only because POS-Trees are structurally invariant, so equal
// content implies equal hash at every level.  The complexity is
// O(D·log N) node reads for D differing leaves (paper §II-B).  The
// misaligned spans the pruning walk leaves behind are diffed on a bounded
// worker pool (see pardiff.go); results are identical to DiffSerial.
func (t *Tree) Diff(o *Tree) ([]Delta, DiffStats, error) {
	return t.DiffParallel(o, diffWorkers())
}

// DiffSerial is the single-goroutine structural diff — the differential
// oracle DiffParallel is measured against.
func (t *Tree) DiffSerial(o *Tree) ([]Delta, DiffStats, error) {
	d := &differ{old: t, new: o}
	if t.root == o.root {
		return nil, DiffStats{}, nil
	}
	oldRoots, newRoots := rootSpan(t), rootSpan(o)
	if err := d.diffSpans(oldRoots, newRoots); err != nil {
		return nil, DiffStats{}, err
	}
	d.stats.Deltas = len(d.out)
	return d.out, d.stats, nil
}

func rootSpan(t *Tree) []childRef {
	if t.root.IsZero() {
		return nil
	}
	return []childRef{{id: t.root, count: t.count}}
}

type differ struct {
	old, new *Tree
	out      []Delta
	stats    DiffStats
}

// load fetches one decoded node through the tree's node source (cache hits
// included in TouchedChunks: the count is "nodes visited", the O(D·log N)
// quantity, regardless of where the bytes came from).
func (d *differ) load(t *Tree, id hash.Hash) (*node, error) {
	n, err := t.src.load(id)
	if err != nil {
		return nil, fmt.Errorf("pos: diff: %w", err)
	}
	d.stats.TouchedChunks++
	switch n.typ {
	case chunk.TypeMapLeaf, chunk.TypeMapIndex:
		return n, nil
	default:
		return nil, fmt.Errorf("pos: diff: unexpected chunk %s", n.typ)
	}
}

// spanLevel peeks the level of the first node in a span.
func (d *differ) spanLevel(t *Tree, refs []childRef) (uint8, error) {
	if len(refs) == 0 {
		return 0, nil
	}
	n, err := t.src.load(refs[0].id)
	if err != nil {
		return 0, fmt.Errorf("pos: diff: %w", err)
	}
	return n.level, nil
}

// expand replaces a span of index refs by the concatenation of their
// children (one level down).
func (d *differ) expand(t *Tree, refs []childRef) ([]childRef, error) {
	var out []childRef
	for _, r := range refs {
		n, err := d.load(t, r.id)
		if err != nil {
			return nil, err
		}
		if n.level == 0 {
			return nil, fmt.Errorf("pos: diff: expand reached leaf %s", r.id.Short())
		}
		out = append(out, n.refs...)
	}
	return out, nil
}

// entriesOf flattens a span of same-level refs into its leaf entries.
func (d *differ) entriesOf(t *Tree, refs []childRef, level uint8) ([]Entry, error) {
	if level == 0 {
		var out []Entry
		for _, r := range refs {
			n, err := d.load(t, r.id)
			if err != nil {
				return nil, err
			}
			out = append(out, n.entries...)
		}
		return out, nil
	}
	lower, err := d.expand(t, refs)
	if err != nil {
		return nil, err
	}
	return d.entriesOf(t, lower, level-1)
}

// diffSpans compares two spans of subtrees covering the same key ranges.
func (d *differ) diffSpans(aRefs, bRefs []childRef) error {
	// Align levels: expand the taller side until both spans sit at the same
	// height above the leaves.
	la, err := d.spanLevel(d.old, aRefs)
	if err != nil {
		return err
	}
	lb, err := d.spanLevel(d.new, bRefs)
	if err != nil {
		return err
	}
	for la > lb && len(aRefs) > 0 {
		if aRefs, err = d.expand(d.old, aRefs); err != nil {
			return err
		}
		la--
	}
	for lb > la && len(bRefs) > 0 {
		if bRefs, err = d.expand(d.new, bRefs); err != nil {
			return err
		}
		lb--
	}
	// Two-pointer walk over same-level refs: identical hashes are pruned
	// without being read — at every level, leaves included; only the
	// maximal misaligned spans are descended into (index levels) or
	// loaded and compared element-wise (leaf level).
	ia, ib := 0, 0
	for ia < len(aRefs) || ib < len(bRefs) {
		if ia < len(aRefs) && ib < len(bRefs) &&
			aRefs[ia].id == bRefs[ib].id {
			d.stats.PrunedRefs++
			ia++
			ib++
			continue
		}
		// Collect the misaligned span on both sides until the next
		// identical pair (or the ends).
		ja, jb := ia, ib
		for {
			if ja >= len(aRefs) || jb >= len(bRefs) {
				ja, jb = len(aRefs), len(bRefs)
				break
			}
			cmp := bytes.Compare(aRefs[ja].splitKey, bRefs[jb].splitKey)
			switch {
			case cmp < 0:
				ja++
			case cmp > 0:
				jb++
			default:
				if aRefs[ja].id == bRefs[jb].id {
					goto spanDone
				}
				ja++
				jb++
			}
		}
	spanDone:
		if la == 0 {
			// Leaf spans: load only the mismatched leaves.
			ae, err := d.entriesOf(d.old, aRefs[ia:ja], 0)
			if err != nil {
				return err
			}
			be, err := d.entriesOf(d.new, bRefs[ib:jb], 0)
			if err != nil {
				return err
			}
			d.diffEntries(ae, be)
		} else {
			// Descend one level into the misaligned spans before
			// recursing; recursing at the same level would loop forever.
			aSub, err := d.expand(d.old, aRefs[ia:ja])
			if err != nil {
				return err
			}
			bSub, err := d.expand(d.new, bRefs[ib:jb])
			if err != nil {
				return err
			}
			if err := d.diffSpans(aSub, bSub); err != nil {
				return err
			}
		}
		ia, ib = ja, jb
	}
	return nil
}

// diffEntries merges two sorted entry lists and emits deltas.
func (d *differ) diffEntries(a, b []Entry) {
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case i >= len(a):
			d.out = append(d.out, Delta{Key: cp(b[j].Key), To: cp(b[j].Val)})
			j++
		case j >= len(b):
			d.out = append(d.out, Delta{Key: cp(a[i].Key), From: cp(a[i].Val)})
			i++
		default:
			cmp := bytes.Compare(a[i].Key, b[j].Key)
			switch {
			case cmp < 0:
				d.out = append(d.out, Delta{Key: cp(a[i].Key), From: cp(a[i].Val)})
				i++
			case cmp > 0:
				d.out = append(d.out, Delta{Key: cp(b[j].Key), To: cp(b[j].Val)})
				j++
			default:
				if !bytes.Equal(a[i].Val, b[j].Val) {
					d.out = append(d.out, Delta{Key: cp(a[i].Key), From: cp(a[i].Val), To: cp(b[j].Val)})
				}
				i++
				j++
			}
		}
	}
}

// cp copies b, always returning a non-nil slice: present-but-empty values
// must stay distinguishable from the nil that marks an absent side.
func cp(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// ApplyDeltas applies a diff to a tree: each delta becomes a put (To != nil)
// or a delete.  Apply(A, Diff(A,B)) == B — the round-trip property.
func (t *Tree) ApplyDeltas(deltas []Delta) (*Tree, error) {
	ops := make([]Op, 0, len(deltas))
	for _, d := range deltas {
		if d.To == nil {
			ops = append(ops, Del(d.Key))
		} else {
			ops = append(ops, Put(d.Key, d.To))
		}
	}
	return t.Edit(ops)
}
