package pos

import (
	"bytes"
	"math/rand"
	"testing"

	"forkbase/internal/store"
)

func TestDiffSeqIdentical(t *testing.T) {
	st := store.NewMemStore()
	items := genItems(1000, 1)
	a, err := BuildSeq(st, testCfg(), items)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSeq(st, testCfg(), items)
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := DiffSeq(a, b)
	if err != nil || ranges != nil {
		t.Fatalf("identical diff = %v, %v", ranges, err)
	}
}

// rangesCover checks that every position where the two item lists disagree
// falls inside some reported range.
func rangesCover(t *testing.T, ranges []SeqRange, a, b [][]byte) {
	t.Helper()
	inRangeA := func(p uint64) bool {
		for _, r := range ranges {
			if p >= r.AStart && p < r.AEnd {
				return true
			}
		}
		return false
	}
	inRangeB := func(p uint64) bool {
		for _, r := range ranges {
			if p >= r.BStart && p < r.BEnd {
				return true
			}
		}
		return false
	}
	// For equal-length sequences positions align one-to-one: every position
	// whose items disagree must fall inside a reported range (identical
	// stretches between edits may legitimately be pruned out).
	if len(a) != len(b) {
		t.Fatalf("oracle requires equal lengths, got %d/%d", len(a), len(b))
	}
	for p := range a {
		if bytes.Equal(a[p], b[p]) {
			continue
		}
		if !inRangeA(uint64(p)) {
			t.Fatalf("differing A position %d not covered by %v", p, ranges)
		}
		if !inRangeB(uint64(p)) {
			t.Fatalf("differing B position %d not covered by %v", p, ranges)
		}
	}
}

func TestDiffSeqCoversEdits(t *testing.T) {
	st := store.NewMemStore()
	rng := rand.New(rand.NewSource(4))
	items := genItems(2000, 2)
	a, err := BuildSeq(st, testCfg(), items)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		edited := make([][]byte, len(items))
		copy(edited, items)
		// A couple of scattered edits.
		for e := 0; e < 3; e++ {
			idx := rng.Intn(len(edited))
			edited[idx] = []byte("EDITED")
		}
		b, err := BuildSeq(st, testCfg(), edited)
		if err != nil {
			t.Fatal(err)
		}
		ranges, err := DiffSeq(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if len(ranges) == 0 {
			t.Fatal("no ranges for edited sequence")
		}
		rangesCover(t, ranges, items, edited)
		// Chunk alignment bounds the over-approximation: total range size
		// must stay far below the sequence length for 3 point edits.
		var total uint64
		for _, r := range ranges {
			total += r.AEnd - r.AStart
		}
		if total > uint64(len(items))/2 {
			t.Fatalf("ranges cover %d of %d items for 3 edits — no pruning", total, len(items))
		}
	}
}

func TestDiffSeqInsertDelete(t *testing.T) {
	st := store.NewMemStore()
	items := genItems(1000, 3)
	a, err := BuildSeq(st, testCfg(), items)
	if err != nil {
		t.Fatal(err)
	}
	// Insert 5 items at position 400.
	b, err := a.Splice(400, 0, genItems(5, 99))
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := DiffSeq(a, b)
	if err != nil || len(ranges) == 0 {
		t.Fatalf("insert diff: %v %v", ranges, err)
	}
	// B ranges must be exactly 5 items longer than A ranges in total.
	var da, db uint64
	for _, r := range ranges {
		da += r.AEnd - r.AStart
		db += r.BEnd - r.BStart
	}
	if db-da != 5 {
		t.Fatalf("insert length delta = %d, want 5 (%v)", db-da, ranges)
	}

	// Delete 7 items at position 100.
	c, err := a.Splice(100, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	ranges, err = DiffSeq(a, c)
	if err != nil {
		t.Fatal(err)
	}
	da, db = 0, 0
	for _, r := range ranges {
		da += r.AEnd - r.AStart
		db += r.BEnd - r.BStart
	}
	if da-db != 7 {
		t.Fatalf("delete length delta = %d, want 7", da-db)
	}
}

func TestDiffSeqAgainstEmpty(t *testing.T) {
	st := store.NewMemStore()
	items := genItems(100, 1)
	a, err := BuildSeq(st, testCfg(), items)
	if err != nil {
		t.Fatal(err)
	}
	empty := NewEmptySeq(st, testCfg())
	ranges, err := DiffSeq(a, empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) != 1 || ranges[0].AEnd != 100 || ranges[0].BEnd != 0 {
		t.Fatalf("ranges = %v", ranges)
	}
}

func TestDiffBlobLocalEdit(t *testing.T) {
	st := store.NewMemStore()
	rng := rand.New(rand.NewSource(8))
	data := make([]byte, 200*1024)
	rng.Read(data)
	a, err := BuildBlob(st, testCfg(), data)
	if err != nil {
		t.Fatal(err)
	}
	edited := append([]byte(nil), data...)
	copy(edited[100*1024:], "TAMPERED-REGION")
	b, err := BuildBlob(st, testCfg(), edited)
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := DiffBlob(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) == 0 {
		t.Fatal("no ranges")
	}
	// The edit is at byte 102400; some range must contain it...
	hit := false
	var total uint64
	for _, r := range ranges {
		if r.AStart <= 100*1024 && 100*1024 < r.AEnd {
			hit = true
		}
		total += r.AEnd - r.AStart
	}
	if !hit {
		t.Fatalf("edit offset not covered: %v", ranges)
	}
	// ...and the ranges must be a tiny fraction of the blob.
	if total > uint64(len(data))/10 {
		t.Fatalf("ranges cover %d of %d bytes for a 15-byte edit", total, len(data))
	}
}
