package pos

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"forkbase/internal/store"
)

func TestDiffIdentical(t *testing.T) {
	st := store.NewMemStore()
	a := mustBuild(t, st, genEntries(500, 1))
	b := mustBuild(t, st, genEntries(500, 1))
	deltas, stats, err := a.Diff(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 0 {
		t.Fatalf("identical trees diff = %d deltas", len(deltas))
	}
	if stats.TouchedChunks != 0 {
		t.Fatalf("identical diff touched %d chunks, want 0 (root prune)", stats.TouchedChunks)
	}
}

func TestDiffBasicKinds(t *testing.T) {
	st := store.NewMemStore()
	a := mustBuild(t, st, []Entry{
		{Key: []byte("a"), Val: []byte("1")},
		{Key: []byte("b"), Val: []byte("2")},
		{Key: []byte("c"), Val: []byte("3")},
	})
	b := mustBuild(t, st, []Entry{
		{Key: []byte("a"), Val: []byte("1")},
		{Key: []byte("b"), Val: []byte("2x")},
		{Key: []byte("d"), Val: []byte("4")},
	})
	deltas, _, err := a.Diff(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas: %+v", len(deltas), deltas)
	}
	kinds := map[string]DeltaKind{}
	for _, d := range deltas {
		kinds[string(d.Key)] = d.Kind()
	}
	if kinds["b"] != Modified || kinds["c"] != Removed || kinds["d"] != Added {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestDiffApplyRoundTrip(t *testing.T) {
	st := store.NewMemStore()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		na, nb := 100+rng.Intn(2000), 100+rng.Intn(2000)
		ea := genEntries(na, int64(trial))
		eb := genEntries(nb, int64(trial+100))
		// Overlap: borrow a random slice of a's entries into b.
		for i := 0; i < na/2 && i < nb; i++ {
			eb[i] = ea[rng.Intn(na)]
		}
		a := mustBuild(t, st, ea)
		b := mustBuild(t, st, eb)
		deltas, _, err := a.Diff(b)
		if err != nil {
			t.Fatal(err)
		}
		applied, err := a.ApplyDeltas(deltas)
		if err != nil {
			t.Fatal(err)
		}
		if applied.Root() != b.Root() {
			t.Fatalf("trial %d: Apply(A, Diff(A,B)) root %s != B root %s",
				trial, applied.Root().Short(), b.Root().Short())
		}
	}
}

func TestDiffAgainstEmpty(t *testing.T) {
	st := store.NewMemStore()
	a := mustBuild(t, st, genEntries(200, 5))
	empty := NewEmptyTree(st, testCfg())
	deltas, _, err := a.Diff(empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 200 {
		t.Fatalf("diff to empty: %d deltas", len(deltas))
	}
	for _, d := range deltas {
		if d.Kind() != Removed {
			t.Fatalf("expected all Removed, got %v for %q", d.Kind(), d.Key)
		}
	}
	deltas, _, err = empty.Diff(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 200 || deltas[0].Kind() != Added {
		t.Fatalf("diff from empty: %d deltas, first kind %v", len(deltas), deltas[0].Kind())
	}
}

func TestDiffDifferentHeights(t *testing.T) {
	st := store.NewMemStore()
	small := mustBuild(t, st, genEntries(5, 1))  // single leaf
	big := mustBuild(t, st, genEntries(3000, 1)) // multi-level
	deltas, _, err := small.Diff(big)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 3000-5 {
		t.Fatalf("height-mismatch diff: %d deltas, want %d", len(deltas), 2995)
	}
}

// TestDiffPruning verifies the O(D log N) behaviour: a diff touching D keys
// of an N-key tree must read far fewer chunks than the tree holds.
func TestDiffPruning(t *testing.T) {
	st := store.NewMemStore()
	entries := genEntries(30000, 13)
	a := mustBuild(t, st, entries)
	b, err := a.Edit([]Op{
		Put([]byte("key-00005000"), []byte("changed")),
		Put([]byte("key-00025000"), []byte("changed")),
	})
	if err != nil {
		t.Fatal(err)
	}
	deltas, stats, err := a.Diff(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas", len(deltas))
	}
	treeStats, err := a.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.TouchedChunks >= treeStats.Nodes/4 {
		t.Fatalf("diff touched %d of %d chunks — pruning broken", stats.TouchedChunks, treeStats.Nodes)
	}
	t.Logf("diff touched %d of %d chunks (pruned %d refs)", stats.TouchedChunks, treeStats.Nodes, stats.PrunedRefs)
}

func TestDiffOracleRandomized(t *testing.T) {
	st := store.NewMemStore()
	rng := rand.New(rand.NewSource(7))
	base := genEntries(1000, 3)
	a := mustBuild(t, st, base)
	for trial := 0; trial < 10; trial++ {
		// Mutate a random subset to form b.
		ops := []Op{}
		model := map[string]string{}
		for _, e := range base {
			model[string(e.Key)] = string(e.Val)
		}
		for i := 0; i < 50; i++ {
			k := fmt.Sprintf("key-%08d", rng.Intn(1000))
			switch rng.Intn(3) {
			case 0:
				ops = append(ops, Del([]byte(k)))
				delete(model, k)
			case 1:
				v := fmt.Sprintf("mod-%d-%d", trial, i)
				ops = append(ops, Put([]byte(k), []byte(v)))
				model[k] = v
			default:
				nk := fmt.Sprintf("extra-%d-%d", trial, i)
				ops = append(ops, Put([]byte(nk), []byte("new")))
				model[nk] = "new"
			}
		}
		ops = normalizeOps(ops)
		b, err := a.Edit(ops)
		if err != nil {
			t.Fatal(err)
		}
		deltas, _, err := a.Diff(b)
		if err != nil {
			t.Fatal(err)
		}
		// Oracle: brute-force comparison of entry maps.
		am := entryMap(t, a)
		bm := entryMap(t, b)
		want := 0
		for k, v := range am {
			bv, ok := bm[k]
			if !ok || bv != v {
				want++
			}
		}
		for k := range bm {
			if _, ok := am[k]; !ok {
				want++
			}
		}
		if len(deltas) != want {
			t.Fatalf("trial %d: %d deltas, oracle %d", trial, len(deltas), want)
		}
		for _, d := range deltas {
			av, aok := am[string(d.Key)]
			bv, bok := bm[string(d.Key)]
			switch d.Kind() {
			case Added:
				if aok || !bok || bv != string(d.To) {
					t.Fatalf("bad Added delta %q", d.Key)
				}
			case Removed:
				if !aok || bok || av != string(d.From) {
					t.Fatalf("bad Removed delta %q", d.Key)
				}
			case Modified:
				if !aok || !bok || av != string(d.From) || bv != string(d.To) {
					t.Fatalf("bad Modified delta %q", d.Key)
				}
			}
		}
	}
}

func entryMap(t *testing.T, tr *Tree) map[string]string {
	t.Helper()
	out := map[string]string{}
	es, err := tr.Entries()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range es {
		out[string(e.Key)] = string(e.Val)
	}
	return out
}

func TestMergeDisjoint(t *testing.T) {
	st := store.NewMemStore()
	base := mustBuild(t, st, genEntries(5000, 8))
	a, err := base.Edit([]Op{Put([]byte("key-00000100"), []byte("A-change"))})
	if err != nil {
		t.Fatal(err)
	}
	b, err := base.Edit([]Op{Put([]byte("key-00004900"), []byte("B-change"))})
	if err != nil {
		t.Fatal(err)
	}
	merged, stats, err := Merge3(base, a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := merged.Get([]byte("key-00000100")); string(v) != "A-change" {
		t.Fatalf("A change lost: %q", v)
	}
	if v, _ := merged.Get([]byte("key-00004900")); string(v) != "B-change" {
		t.Fatalf("B change lost: %q", v)
	}
	// Merged tree must equal applying both edits sequentially.
	seq, err := base.Edit([]Op{
		Put([]byte("key-00000100"), []byte("A-change")),
		Put([]byte("key-00004900"), []byte("B-change")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Root() != seq.Root() {
		t.Fatalf("merge root %s != sequential root %s", merged.Root().Short(), seq.Root().Short())
	}
	if stats.ReuseFraction() < 0.5 {
		t.Fatalf("merge reuse fraction %.2f too low", stats.ReuseFraction())
	}
	t.Logf("merge reuse: %.1f%% (%d reused, %d new)", 100*stats.ReuseFraction(), stats.ReusedChunks, stats.NewChunks)
}

func TestMergeConflict(t *testing.T) {
	st := store.NewMemStore()
	base := mustBuild(t, st, genEntries(100, 4))
	key := []byte("key-00000050")
	a, _ := base.Edit([]Op{Put(key, []byte("from-A"))})
	b, _ := base.Edit([]Op{Put(key, []byte("from-B"))})

	_, stats, err := Merge3(base, a, b, nil)
	var ce *ErrConflict
	if !asConflict(err, &ce) {
		t.Fatalf("want ErrConflict, got %v", err)
	}
	if stats.Conflicts != 1 || len(ce.Conflicts) != 1 {
		t.Fatalf("conflicts = %d", stats.Conflicts)
	}
	c := ce.Conflicts[0]
	if !bytes.Equal(c.Key, key) || string(c.A) != "from-A" || string(c.B) != "from-B" {
		t.Fatalf("conflict detail = %+v", c)
	}

	merged, _, err := Merge3(base, a, b, ResolveOurs)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := merged.Get(key); string(v) != "from-A" {
		t.Fatalf("ResolveOurs = %q", v)
	}
	merged, _, err = Merge3(base, a, b, ResolveTheirs)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := merged.Get(key); string(v) != "from-B" {
		t.Fatalf("ResolveTheirs = %q", v)
	}
}

func asConflict(err error, target **ErrConflict) bool {
	if err == nil {
		return false
	}
	ce, ok := err.(*ErrConflict)
	if ok {
		*target = ce
	}
	return ok
}

func TestMergeSameChange(t *testing.T) {
	st := store.NewMemStore()
	base := mustBuild(t, st, genEntries(100, 4))
	key := []byte("key-00000010")
	a, _ := base.Edit([]Op{Put(key, []byte("same"))})
	b, _ := base.Edit([]Op{Put(key, []byte("same")), Put([]byte("extra"), []byte("b"))})
	merged, _, err := Merge3(base, a, b, nil)
	if err != nil {
		t.Fatalf("identical change conflicted: %v", err)
	}
	if v, _ := merged.Get(key); string(v) != "same" {
		t.Fatalf("got %q", v)
	}
	if v, _ := merged.Get([]byte("extra")); string(v) != "b" {
		t.Fatalf("extra = %q", v)
	}
}

func TestMergeDeleteVsModify(t *testing.T) {
	st := store.NewMemStore()
	base := mustBuild(t, st, genEntries(100, 4))
	key := []byte("key-00000033")
	a, _ := base.Edit([]Op{Del(key)})
	b, _ := base.Edit([]Op{Put(key, []byte("kept"))})
	_, _, err := Merge3(base, a, b, nil)
	var ce *ErrConflict
	if !asConflict(err, &ce) {
		t.Fatalf("delete-vs-modify should conflict, got %v", err)
	}
	if ce.Conflicts[0].A != nil {
		t.Fatalf("A side should be nil (deleted): %+v", ce.Conflicts[0])
	}
	// Resolver chooses deletion.
	merged, _, err := Merge3(base, a, b, func(c Conflict) ([]byte, bool) { return nil, false })
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := merged.Has(key); ok {
		t.Fatal("resolver deletion not honoured")
	}
}

func TestMergeTrivialFastPaths(t *testing.T) {
	st := store.NewMemStore()
	base := mustBuild(t, st, genEntries(50, 4))
	changed, _ := base.Edit([]Op{Put([]byte("x"), []byte("y"))})

	m, _, err := Merge3(base, base, changed, nil)
	if err != nil || m.Root() != changed.Root() {
		t.Fatalf("untouched-A fast path: %v", err)
	}
	m, _, err = Merge3(base, changed, base, nil)
	if err != nil || m.Root() != changed.Root() {
		t.Fatalf("untouched-B fast path: %v", err)
	}
	m, _, err = Merge3(base, changed, changed, nil)
	if err != nil || m.Root() != changed.Root() {
		t.Fatalf("identical-sides fast path: %v", err)
	}
}
