package pos

import (
	"bytes"
	"fmt"
	"testing"

	"forkbase/internal/chunker"
	"forkbase/internal/store"
)

func gearCfg() chunker.Config {
	return chunker.Config{Q: 8, Window: 48, MinSize: 1 << 5, MaxSize: 1 << 12, Algo: chunker.AlgoGear}
}

// TestGearBuildAndEdit pins the gear-mode builder: structural invariance
// (edit == rebuild, byte-identical roots) must hold exactly as with the
// rolling hash, and the two algorithms must produce *different* chunkings
// (otherwise the mode switch is inert).
func TestGearBuildAndEdit(t *testing.T) {
	st := store.NewMemStore()
	cfg := gearCfg()
	entries := make([]Entry, 0, 5000)
	for i := 0; i < 5000; i++ {
		entries = append(entries, Entry{
			Key: []byte(fmt.Sprintf("key-%06d", i)),
			Val: []byte(fmt.Sprintf("value-%d", i*7)),
		})
	}
	tree, err := BuildMap(st, cfg, entries)
	if err != nil {
		t.Fatalf("BuildMap(gear): %v", err)
	}
	if tree.Len() != 5000 {
		t.Fatalf("Len = %d", tree.Len())
	}
	for i := 0; i < len(entries); i += 500 {
		e := entries[i]
		got, err := tree.Get(e.Key)
		if err != nil || !bytes.Equal(got, e.Val) {
			t.Fatalf("Get(%q) = %q, %v", e.Key, got, err)
		}
	}

	// Incremental edit must land on the same root as a from-scratch build
	// of the edited record set (SIRI invariance under gear chunking).
	ops := []Op{
		Put([]byte("key-002500"), []byte("EDITED")),
		Del([]byte("key-004000")),
		Put([]byte("key-zzz"), []byte("new")),
	}
	edited, err := tree.Edit(ops)
	if err != nil {
		t.Fatalf("Edit: %v", err)
	}
	rebuilt, err := tree.EditRebuild(ops)
	if err != nil {
		t.Fatalf("EditRebuild: %v", err)
	}
	if edited.Root() != rebuilt.Root() {
		t.Fatalf("gear edit root %s != rebuild root %s", edited.Root().Short(), rebuilt.Root().Short())
	}

	// The legacy per-chunk builder (byte-wise EntryChunker) must agree with
	// the bulk-scanning sink builder under gear, exactly as it does under
	// the rolling hash.
	legacy, err := BuildMapPerChunk(store.NewMemStore(), cfg, entries)
	if err != nil {
		t.Fatalf("BuildMapPerChunk(gear): %v", err)
	}
	if legacy.Root() != tree.Root() {
		t.Fatalf("gear legacy root %s != sink root %s", legacy.Root().Short(), tree.Root().Short())
	}

	// The mode switch must actually change the chunking.
	rollingCfg := cfg
	rollingCfg.Algo = chunker.AlgoRolling
	rollingTree, err := BuildMap(store.NewMemStore(), rollingCfg, entries)
	if err != nil {
		t.Fatalf("BuildMap(rolling): %v", err)
	}
	if rollingTree.Root() == tree.Root() {
		t.Fatal("gear and rolling builds produced identical roots — the algorithm switch is inert")
	}
}
