package pos

import (
	"runtime"
	"sync"

	"forkbase/internal/chunker"
	"forkbase/internal/rolling"
	"forkbase/internal/store"
)

// Parallel bulk build.
//
// The leaf level of a POS-Tree is the only expensive part of a from-scratch
// build (index levels hold ~1-2% of the entries), and its node boundaries
// have a property that makes it exactly parallelizable: the boundary
// decision after each entry depends only on the bytes encoded since the
// *previous* boundary (the scan state resets at every closeNode).  So a
// cheap serial pre-scan — rolling hash only, no SHA-256, no store traffic —
// can compute every leaf cut, the entry stream can be split at a subset of
// those cuts, and W workers can build their slices independently: each
// worker starts at a real boundary with fresh scan state, exactly like the
// serial builder did when it reached that point, so the concatenated leaf
// refs are identical to the serial builder's and the tree root is
// byte-for-byte the same.  The differential tests in parallel_test.go pin
// this against BuildMapSerial for worker counts {1, 2, 8}.
//
// Each worker owns a ChunkSink over the shared store with *synchronous*
// hashing: the workers themselves are the parallelism, so per-sink hasher
// pools would only oversubscribe the cores.

// parallelBuildMin is the entry count below which BuildMap stays serial:
// under it the pre-scan plus goroutine startup costs more than the build.
const parallelBuildMin = 4096

// buildWorkers picks the fan-out for a bulk build of n entries.
func buildWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if n < parallelBuildMin {
		return 1
	}
	// Keep every worker busy with at least a few nodes' worth of entries.
	if max := n / 1024; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// leafCuts replays the leaf builder's boundary decisions over the encoded
// entry stream and returns every cut as an entry index i meaning "a node
// closes after entries[i-1]".  It mirrors levelBuilder.afterAppend exactly —
// same scanner, same skip constants, same max-size clamp — without hashing
// chunk ids or touching the store, so it costs one encode pass plus the
// rolling hash.
func leafCuts(cfg chunker.Config, entries []Entry) []int {
	cfg = cfg.Normalized()
	var scan boundaryScan
	if cfg.Algo == chunker.AlgoGear {
		scan = rolling.NewGearScan(cfg.Q)
	} else {
		scan = rolling.NewScan(cfg.Q, cfg.Window)
	}
	begin := scan.SkipStart(cfg.MinSize)
	check := cfg.MinSize - 1
	var (
		cuts     []int
		buf      []byte
		scanPos  int
		scanHash uint64
	)
	for i, e := range entries {
		buf = encodeEntry(buf, e)
		hit, h := scan.Find(buf, scanPos, scanHash, begin, check)
		scanHash = h
		scanPos = len(buf)
		if hit >= 0 || len(buf) >= cfg.MaxSize {
			cuts = append(cuts, i+1)
			buf = buf[:0]
			scanPos, scanHash = 0, 0
		}
	}
	return cuts
}

// splitAtCuts partitions [0, n) into at most w contiguous slices whose
// interior borders are all leaf cuts, aiming for even entry counts.  Returns
// the slice borders including 0 and n.
func splitAtCuts(n, w int, cuts []int) []int {
	borders := []int{0}
	ci := 0
	for part := 1; part < w; part++ {
		target := part * n / w
		for ci < len(cuts) && cuts[ci] < target {
			ci++
		}
		if ci >= len(cuts) {
			break
		}
		cut := cuts[ci]
		if cut >= n || cut <= borders[len(borders)-1] {
			ci++
			continue
		}
		borders = append(borders, cut)
		ci++
	}
	return append(borders, n)
}

// BuildMapParallel is BuildMap with an explicit leaf fan-out.  The resulting
// tree is byte-identical to BuildMapSerial's for any worker count; workers
// <= 1 runs the serial builder.
func BuildMapParallel(st store.Store, cfg chunker.Config, entries []Entry, workers int) (*Tree, error) {
	sorted := normalizeEntries(entries)
	if workers > len(sorted)/2 {
		workers = len(sorted) / 2
	}
	if workers <= 1 {
		return buildMapSorted(st, cfg, sorted)
	}
	borders := splitAtCuts(len(sorted), workers, leafCuts(cfg, sorted))
	if len(borders) <= 2 {
		return buildMapSorted(st, cfg, sorted)
	}
	parts := len(borders) - 1
	type result struct {
		refs []childRef
		err  error
	}
	results := make([]result, parts)
	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			slice := sorted[borders[p]:borders[p+1]]
			sink := store.NewChunkSink(st, store.SinkOptions{}.SyncHashers())
			defer sink.Close()
			lb := newLevelBuilder(sink, cfg, 0, true)
			for _, e := range slice {
				if err := lb.addEntry(e); err != nil {
					results[p].err = err
					return
				}
			}
			refs, err := lb.finish()
			if err != nil {
				results[p].err = err
				return
			}
			if err := sink.Flush(); err != nil {
				results[p].err = err
				return
			}
			results[p].refs = refs
		}(p)
	}
	wg.Wait()
	var leaves []childRef
	for p := 0; p < parts; p++ {
		if results[p].err != nil {
			return nil, results[p].err
		}
		leaves = append(leaves, results[p].refs...)
	}
	// Index levels: ~1-2% of the entries; built serially so their nodes are
	// laid down by one producer exactly as the serial builder would.
	sink := buildSink(st)
	defer sink.Close()
	root, err := buildLevels(sink, cfg, leaves, 1, true)
	if err != nil {
		return nil, err
	}
	if err := sink.Flush(); err != nil {
		return nil, err
	}
	return &Tree{src: sourceFor(st), cfg: cfg, root: root.id, count: root.count}, nil
}
