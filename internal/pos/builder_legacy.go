package pos

import (
	"bytes"
	"sort"

	"forkbase/internal/chunk"
	"forkbase/internal/chunker"
	"forkbase/internal/store"
)

// This file preserves the pre-sink write path — one chunk.New and one
// synchronous store.Put per node, boundary detection through the byte-wise
// chunker — verbatim.  It serves two purposes:
//
//  1. Oracle: the batched sink path must produce byte-identical trees; the
//     differential tests in builder_test.go compare roots against this
//     implementation over randomized inputs.
//  2. Baseline: the per-chunk-Put baseline of the write-path benchmarks
//     (BenchmarkBuildMapPerChunk, the bench -exp perf suite) is this code,
//     so the measured speedup is the end-to-end write-path delta rather than
//     a synthetic reconstruction.
//
// It intentionally mirrors builder.go's structure; do not "fix" it to share
// code with the new path, or the comparison stops measuring anything.

// legacyLevelBuilder assembles one level of a POS-Tree with a synchronous
// Put per finished node.
type legacyLevelBuilder struct {
	st    store.Store
	cfg   chunker.Config
	chk   chunker.Boundary
	level uint8
	isMap bool

	buf      []byte
	n        int
	lastKey  []byte
	count    uint64
	emitted  []childRef
	boundary bool
}

func newLegacyLevelBuilder(st store.Store, cfg chunker.Config, level uint8, isMap bool) *legacyLevelBuilder {
	var chk chunker.Boundary
	if level == 0 {
		chk = chunker.NewEntryChunker(cfg)
	} else {
		chk = chunker.NewIndexChunker(cfg)
	}
	return &legacyLevelBuilder{
		st:       st,
		cfg:      cfg,
		chk:      chk,
		level:    level,
		isMap:    isMap,
		boundary: true,
	}
}

func (b *legacyLevelBuilder) add(encoded []byte, key []byte, below uint64) error {
	b.buf = append(b.buf, encoded...)
	b.n++
	b.lastKey = key
	b.count += below
	b.boundary = false
	if b.chk.Add(encoded) {
		return b.closeNode()
	}
	return nil
}

func (b *legacyLevelBuilder) closeNode() error {
	if b.n == 0 {
		b.boundary = true
		return nil
	}
	var c *chunk.Chunk
	if b.isMap {
		t := chunk.TypeMapLeaf
		if b.level > 0 {
			t = chunk.TypeMapIndex
		}
		c = chunk.New(t, encodeNodePayload(b.level, b.n, b.buf))
	} else {
		t := chunk.TypeSeqLeaf
		if b.level > 0 {
			t = chunk.TypeSeqIndex
		}
		c = chunk.New(t, encodeNodePayload(b.level, b.n, b.buf))
	}
	if _, err := b.st.Put(c); err != nil {
		return err
	}
	ref := childRef{id: c.ID(), count: b.count}
	if b.isMap {
		ref.splitKey = append([]byte(nil), b.lastKey...)
	}
	b.emitted = append(b.emitted, ref)
	b.buf = b.buf[:0]
	b.n = 0
	b.lastKey = nil
	b.count = 0
	b.chk.Reset()
	b.boundary = true
	return nil
}

func (b *legacyLevelBuilder) finish() ([]childRef, error) {
	if err := b.closeNode(); err != nil {
		return nil, err
	}
	return b.emitted, nil
}

func legacyBuildLevels(st store.Store, cfg chunker.Config, refs []childRef, level uint8, isMap bool) (childRef, error) {
	for len(refs) > 1 {
		lb := newLegacyLevelBuilder(st, cfg, level, isMap)
		var enc []byte
		for _, r := range refs {
			enc = enc[:0]
			if isMap {
				enc = encodeChildRef(enc, r)
			} else {
				enc = encodeSeqChildRef(enc, r)
			}
			if err := lb.add(enc, r.splitKey, r.count); err != nil {
				return childRef{}, err
			}
		}
		var err error
		refs, err = lb.finish()
		if err != nil {
			return childRef{}, err
		}
		level++
	}
	if len(refs) == 0 {
		return childRef{}, nil
	}
	return refs[0], nil
}

// legacyNormalizeEntries is the pre-sink normalization: unconditional copy
// plus reflective stable sort, kept so the baseline measures the old path's
// full cost.
func legacyNormalizeEntries(entries []Entry) []Entry {
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.SliceStable(sorted, func(i, j int) bool {
		return bytes.Compare(sorted[i].Key, sorted[j].Key) < 0
	})
	out := sorted[:0]
	for i, e := range sorted {
		if i+1 < len(sorted) && bytes.Equal(e.Key, sorted[i+1].Key) {
			continue
		}
		out = append(out, e)
	}
	return out
}

// BuildMapPerChunk builds a map POS-Tree through the pre-sink write path:
// every node is materialised with an individual synchronous store.Put.  It
// must produce a tree byte-identical to BuildMap — structural invariance is a
// property of the record set, not of the write path that stored it.
func BuildMapPerChunk(st store.Store, cfg chunker.Config, entries []Entry) (*Tree, error) {
	sorted := legacyNormalizeEntries(entries)
	lb := newLegacyLevelBuilder(st, cfg, 0, true)
	var enc []byte
	for _, e := range sorted {
		enc = enc[:0]
		enc = encodeEntry(enc, e)
		if err := lb.add(enc, e.Key, 1); err != nil {
			return nil, err
		}
	}
	leaves, err := lb.finish()
	if err != nil {
		return nil, err
	}
	root, err := legacyBuildLevels(st, cfg, leaves, 1, true)
	if err != nil {
		return nil, err
	}
	return &Tree{src: sourceFor(st), cfg: cfg, root: root.id, count: root.count}, nil
}

// encodeNodePayload renders the canonical node payload; kept here with the
// legacy path (the sink path assembles the same layout in place).
func encodeNodePayload(level uint8, n int, entries []byte) []byte {
	out := make([]byte, 0, 1+10+len(entries))
	out = append(out, level)
	out = appendUvarint(out, uint64(n))
	out = append(out, entries...)
	return out
}
