package cluster

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"forkbase/internal/chaos"
	"forkbase/internal/retry"

	"forkbase/internal/chunk"
	"forkbase/internal/core"
	"forkbase/internal/hash"
	"forkbase/internal/pos"
	"forkbase/internal/server"
	"forkbase/internal/store"
	"forkbase/internal/value"
)

func startCluster(t *testing.T, n int) (*Cluster, []*server.Server) {
	t.Helper()
	addrs := make([]string, n)
	servers := make([]*server.Server, n)
	for i := 0; i < n; i++ {
		srv := server.New(store.NewMemStore(), core.NewMemBranchTable(), nil)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		servers[i] = srv
		t.Cleanup(func() { srv.Close() })
	}
	c, err := Connect(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, servers
}

func TestClusterEndToEnd(t *testing.T) {
	c, _ := startCluster(t, 3)
	if c.Nodes() != 3 {
		t.Fatalf("nodes = %d", c.Nodes())
	}
	db := c.OpenDB()

	// Store a map object large enough to spread chunks across shards.
	entries := make([]pos.Entry, 5000)
	for i := range entries {
		entries[i] = pos.Entry{
			Key: []byte(fmt.Sprintf("row-%05d", i)),
			Val: []byte(fmt.Sprintf("value-%d", i)),
		}
	}
	v, err := value.NewMap(db.Store(), db.Chunking(), entries)
	if err != nil {
		t.Fatal(err)
	}
	ver, err := db.Put("shared", "", v, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Every shard should hold some chunks.
	stats := c.ShardStats()
	for i, s := range stats {
		if s.UniqueChunks == 0 {
			t.Fatalf("shard %d holds no chunks: %+v", i, stats)
		}
	}

	// A second, independent client sees the same data.
	got, err := db.GetVersion("shared", ver.UID)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := got.Value.MapTree(db.Store(), db.Chunking())
	if err != nil {
		t.Fatal(err)
	}
	val, err := tr.Get([]byte("row-04999"))
	if err != nil || string(val) != "value-4999" {
		t.Fatalf("read back: %q %v", val, err)
	}

	// Aggregate stats add up.
	agg := c.Store().Stats()
	var sum int64
	for _, s := range stats {
		sum += s.UniqueChunks
	}
	if agg.UniqueChunks != sum {
		t.Fatalf("aggregate %d != sum %d", agg.UniqueChunks, sum)
	}
}

func TestClusterVerifyTamperEvidence(t *testing.T) {
	// Same engine-level guarantee across the wire: a verifying read catches
	// a server that serves corrupted chunks.  Here we corrupt at the
	// server's backing store.
	mal := store.NewMaliciousStore(store.NewMemStore())
	srv := server.New(mal, core.NewMemBranchTable(), nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Connect([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	db := c.OpenDB()
	ver, err := db.Put("doc", "", value.String("sensitive"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := mal.CorruptFlip(ver.UID, 2, 3); err != nil || !ok {
		t.Fatalf("inject: %v %v", ok, err)
	}
	if _, err := db.Get("doc", "master"); err == nil {
		t.Fatal("client accepted forged chunk from remote server")
	}
}

func TestConnectFailure(t *testing.T) {
	if _, err := Connect([]string{"127.0.0.1:1"}); err == nil {
		t.Fatal("connected to nothing")
	}
	if _, err := Connect(nil); err == nil {
		t.Fatal("connected to empty address list")
	}
}

func TestClusterBatchReads(t *testing.T) {
	c, _ := startCluster(t, 3)
	st := c.Store()

	// Spread a batch of chunks across shards, then read them back in one
	// scatter/gather round with gaps.
	var ids []hash.Hash
	var cs []*chunk.Chunk
	for i := 0; i < 64; i++ {
		ch := chunk.New(chunk.TypeBlobLeaf, []byte(fmt.Sprintf("payload-%d", i)))
		cs = append(cs, ch)
		ids = append(ids, ch.ID())
	}
	if _, err := store.PutBatch(st, cs); err != nil {
		t.Fatal(err)
	}
	query := append([]hash.Hash(nil), ids...)
	query = append(query, hash.Of([]byte("absent")))

	got, err := store.GetBatch(st, query)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if got[i] == nil || got[i].ID() != ids[i] {
			t.Fatalf("slot %d wrong: %v", i, got[i])
		}
	}
	if got[len(ids)] != nil {
		t.Fatal("absent id must yield nil")
	}

	has, err := store.HasBatch(st, query)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if !has[i] {
			t.Fatalf("HasBatch missed stored id %d", i)
		}
	}
	if has[len(ids)] {
		t.Fatal("HasBatch claimed the absent id")
	}
}

// TestClusterGetBatchShardDownNamesShard pins the partial-failure contract:
// with one shard unreachable (responses black-holed, the nastiest case — a
// dead socket fails fast, a partition hangs naive clients), a batched read
// must come back within the retry budget with an error naming the dead
// shard, while the other shards' data is untouched.
func TestClusterGetBatchShardDownNamesShard(t *testing.T) {
	addrs := make([]string, 3)
	for i := range addrs {
		srv := server.New(store.NewMemStore(), core.NewMemBranchTable(), nil)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		t.Cleanup(func() { srv.Close() })
	}
	proxy, err := chaos.NewProxy(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	addrs[1] = proxy.Addr()

	opts := server.ClientOptions{
		DialTimeout: time.Second,
		OpTimeout:   200 * time.Millisecond,
		Retry:       retry.Policy{Attempts: 2, Base: 5 * time.Millisecond, Max: 10 * time.Millisecond},
	}
	c, err := ConnectWithOptions(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	st := c.Store()
	var ids []hash.Hash
	hit := map[int]bool{}
	for i := 0; len(ids) < 30 || len(hit) < 3; i++ {
		ch := chunk.New(chunk.TypeBlobLeaf, []byte{byte(i), byte(i >> 8), 'd'})
		if _, err := st.Put(ch); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, ch.ID())
		hit[c.shardIndex(ch.ID())] = true
	}

	proxy.Partition(chaos.ToClient, true) // shard 1 receives, never answers

	start := time.Now()
	_, err = store.GetBatch(st, ids)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("GetBatch with a dead shard succeeded")
	}
	var se *ShardError
	if !errors.As(err, &se) || se.Shard != 1 {
		t.Fatalf("error does not name the dead shard: %v", err)
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("error text hides the shard: %v", err)
	}
	// Not a hang: bounded by the per-shard retry budget, with slack for a
	// loaded CI machine.
	if elapsed > 5*time.Second {
		t.Fatalf("GetBatch blocked %v under a one-way partition", elapsed)
	}

	// The healthy shards still serve their share.
	proxy.Heal()
	got, err := store.GetBatch(st, ids)
	if err != nil {
		t.Fatalf("after heal: %v", err)
	}
	for i, ch := range got {
		if ch == nil || ch.ID() != ids[i] {
			t.Fatalf("slot %d wrong after heal", i)
		}
	}
}
