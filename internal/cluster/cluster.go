// Package cluster shards a ForkBase chunk store across several servers.
//
// Chunks are placed by hash prefix (consistent by construction: a chunk's id
// never changes), so every node holds an even share of unique chunks and
// deduplication keeps working globally — a chunk written via any client is
// found by all.  Branch metadata, which needs linearizable compare-and-set,
// lives on the first node (the metadata master).
package cluster

import (
	"errors"
	"fmt"
	"sync"

	"forkbase/internal/chunk"
	"forkbase/internal/core"
	"forkbase/internal/hash"
	"forkbase/internal/server"
	"forkbase/internal/store"
)

// Cluster is a client-side view of a sharded ForkBase deployment.
type Cluster struct {
	addrs   []string
	clients []*server.Client
	stores  []*server.RemoteStore
	heads   *server.RemoteBranchTable
}

// ShardError names the shard behind a failed cluster operation, so a
// partial failure reads "shard 2 (10.0.0.3:7200) is down", not an anonymous
// transport error.  errors.Is/As reach through to the cause.
type ShardError struct {
	Shard int
	Addr  string
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("cluster: shard %d (%s): %v", e.Shard, e.Addr, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// shardErr tags err with its shard (nil stays nil).
func (c *Cluster) shardErr(n int, err error) error {
	if err == nil {
		return nil
	}
	return &ShardError{Shard: n, Addr: c.addrs[n], Err: err}
}

// Connect dials every node with default client options; addrs[0] is the
// metadata master.
func Connect(addrs []string) (*Cluster, error) {
	return ConnectWithOptions(addrs, server.ClientOptions{})
}

// ConnectWithOptions dials every node with explicit timeouts and retry
// policy.  Each shard's client retries independently (reconnect + backoff
// on transport faults), so one flaky node slows only its own share of a
// scatter — the per-shard retry the gather paths build on.
func ConnectWithOptions(addrs []string, opts server.ClientOptions) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no addresses")
	}
	c := &Cluster{addrs: addrs}
	for i, a := range addrs {
		cl, err := server.DialWithOptions(a, opts)
		if err != nil {
			c.Close()
			return nil, c.shardErr(i, err)
		}
		c.clients = append(c.clients, cl)
		c.stores = append(c.stores, server.NewRemoteStore(cl))
	}
	c.heads = server.NewRemoteBranchTable(c.clients[0])
	return c, nil
}

// Close disconnects from all nodes.
func (c *Cluster) Close() error {
	var first error
	for _, cl := range c.clients {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Nodes returns the number of nodes.
func (c *Cluster) Nodes() int { return len(c.stores) }

// shardIndex is the placement function: every read and write path must
// derive placement from it, or batched writes could land where reads do not
// look.
func (c *Cluster) shardIndex(id hash.Hash) int {
	return int(id[0]) % len(c.stores)
}

// shard maps a chunk id to a node.
func (c *Cluster) shard(id hash.Hash) *server.RemoteStore {
	return c.stores[c.shardIndex(id)]
}

// Store returns a store.Store view of the cluster.
func (c *Cluster) Store() store.Store { return (*shardedStore)(c) }

// BranchTable returns the cluster's branch table (on the master).
func (c *Cluster) BranchTable() core.BranchTable { return c.heads }

// shardedStore implements store.Store over the shards.
type shardedStore Cluster

var (
	_ store.BatchStore     = (*shardedStore)(nil)
	_ store.BatchReadStore = (*shardedStore)(nil)
)

func (s *shardedStore) cluster() *Cluster { return (*Cluster)(s) }

// Put implements store.Store.
func (s *shardedStore) Put(ch *chunk.Chunk) (bool, error) {
	c := s.cluster()
	n := c.shardIndex(ch.ID())
	fresh, err := c.stores[n].Put(ch)
	return fresh, c.shardErr(n, err)
}

// PutBatch implements store.BatchStore: the batch is split by placement and
// each node receives its share as one OpPutChunks request, all shards in
// parallel — a B-chunk batch over N nodes costs one round-trip time instead
// of B.
func (s *shardedStore) PutBatch(cs []*chunk.Chunk) ([]bool, error) {
	c := s.cluster()
	groups := make(map[int][]int) // node index -> positions in cs
	for i, ch := range cs {
		n := c.shardIndex(ch.ID())
		groups[n] = append(groups[n], i)
	}
	fresh := make([]bool, len(cs))
	var wg sync.WaitGroup
	errs := make([]error, len(c.stores))
	for n, idxs := range groups {
		part := make([]*chunk.Chunk, len(idxs))
		for j, i := range idxs {
			part[j] = cs[i]
		}
		wg.Add(1)
		go func(n int, idxs []int, part []*chunk.Chunk) {
			defer wg.Done()
			partFresh, err := c.stores[n].PutBatch(part)
			if err != nil {
				errs[n] = c.shardErr(n, err)
				return
			}
			for j, i := range idxs {
				fresh[i] = partFresh[j]
			}
		}(n, idxs, part)
	}
	wg.Wait()
	// Aggregate every failed shard (not just the first): a caller staring at
	// a partial-failure error needs to know the full blast radius.
	if err := errors.Join(errs...); err != nil {
		return fresh, err
	}
	return fresh, nil
}

// Get implements store.Store.
func (s *shardedStore) Get(id hash.Hash) (*chunk.Chunk, error) {
	c := s.cluster()
	n := c.shardIndex(id)
	ch, err := c.stores[n].Get(id)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			return nil, err // a clean miss is not a shard failure
		}
		return nil, c.shardErr(n, err)
	}
	return ch, nil
}

// Has implements store.Store.
func (s *shardedStore) Has(id hash.Hash) (bool, error) {
	c := s.cluster()
	n := c.shardIndex(id)
	ok, err := c.stores[n].Has(id)
	return ok, c.shardErr(n, err)
}

// scatter partitions ids by placement, runs fn once per involved node in
// parallel, and lets fn write results back through the position lists —
// the shared skeleton of the batched read paths.
func (s *shardedStore) scatter(ids []hash.Hash, fn func(node int, idxs []int, part []hash.Hash) error) error {
	c := s.cluster()
	groups := make(map[int][]int)
	for i, id := range ids {
		n := c.shardIndex(id)
		groups[n] = append(groups[n], i)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(c.stores))
	for n, idxs := range groups {
		part := make([]hash.Hash, len(idxs))
		for j, i := range idxs {
			part[j] = ids[i]
		}
		wg.Add(1)
		go func(n int, idxs []int, part []hash.Hash) {
			defer wg.Done()
			errs[n] = c.shardErr(n, fn(n, idxs, part))
		}(n, idxs, part)
	}
	wg.Wait()
	// One slow-or-dead shard must not masquerade as total failure: name
	// every shard that failed and let errors.Is/As find the causes.
	return errors.Join(errs...)
}

// GetBatch implements store.BatchReadStore: ids are split by placement and
// fetched from all involved nodes in parallel, one OpGetChunks round trip
// per node — a whole sync-frontier level costs one RTT regardless of size.
func (s *shardedStore) GetBatch(ids []hash.Hash) ([]*chunk.Chunk, error) {
	c := s.cluster()
	out := make([]*chunk.Chunk, len(ids))
	err := s.scatter(ids, func(n int, idxs []int, part []hash.Hash) error {
		partOut, err := c.stores[n].GetBatch(part)
		if err != nil {
			return err
		}
		for j, i := range idxs {
			out[i] = partOut[j]
		}
		return nil
	})
	return out, err
}

// HasBatch implements store.BatchReadStore with the same scatter/gather.
func (s *shardedStore) HasBatch(ids []hash.Hash) ([]bool, error) {
	c := s.cluster()
	out := make([]bool, len(ids))
	err := s.scatter(ids, func(n int, idxs []int, part []hash.Hash) error {
		partOut, err := c.stores[n].HasBatch(part)
		if err != nil {
			return err
		}
		for j, i := range idxs {
			out[i] = partOut[j]
		}
		return nil
	})
	return out, err
}

// Stats implements store.Store by aggregating all shards.
func (s *shardedStore) Stats() store.Stats {
	var total store.Stats
	for _, rs := range s.cluster().stores {
		st := rs.Stats()
		total.UniqueChunks += st.UniqueChunks
		total.PhysicalBytes += st.PhysicalBytes
		total.LogicalBytes += st.LogicalBytes
		total.DedupHits += st.DedupHits
		total.Gets += st.Gets
	}
	return total
}

// ShardStats reports per-node stats (for balance inspection).
func (c *Cluster) ShardStats() []store.Stats {
	out := make([]store.Stats, len(c.stores))
	for i, rs := range c.stores {
		out[i] = rs.Stats()
	}
	return out
}

// OpenDB assembles a core.DB backed by the cluster.
func (c *Cluster) OpenDB() *core.DB {
	return core.Open(core.Options{Store: c.Store(), Branches: c.heads})
}
