package server

import (
	"testing"

	"forkbase/internal/chunk"
	"forkbase/internal/core"
	"forkbase/internal/obs"
	"forkbase/internal/store"
)

// TestServerOpcodeMetrics: each wire opcode moves its own labeled counter
// by exactly the number of requests served, and clean traffic moves no
// error counter.
func TestServerOpcodeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	srv := New(store.NewMemStore(), core.NewMemBranchTable(), nil)
	srv.SetMetrics(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rs := NewRemoteStore(cl)

	c := chunk.New(chunk.TypeBlobLeaf, []byte("counted"))
	if _, err := rs.Put(c); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := rs.Get(c.ID()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rs.Has(c.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.PutBatch([]*chunk.Chunk{chunk.New(chunk.TypeBlobLeaf, []byte("b1"))}); err != nil {
		t.Fatal(err)
	}

	for op, want := range map[string]float64{
		"PutChunk":  1,
		"GetChunk":  3,
		"HasChunk":  1,
		"PutChunks": 1,
	} {
		if got, ok := reg.Value("forkbase_server_requests_total", op); !ok || got != want {
			t.Errorf("server_requests_total{%s} = %v (ok=%v), want %v", op, got, ok, want)
		}
	}
	if got := reg.Sum("forkbase_server_errors_total"); got != 0 {
		t.Errorf("server_errors_total = %v, want 0", got)
	}
	// The per-opcode latency histogram recorded every request.
	if got, _ := reg.Value("forkbase_server_request_seconds", "GetChunk"); got != 3 {
		t.Errorf("server_request_seconds{GetChunk} count = %v, want 3", got)
	}
}
