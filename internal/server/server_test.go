package server

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"forkbase/internal/chunk"
	"forkbase/internal/core"
	"forkbase/internal/hash"
	"forkbase/internal/retry"
	"forkbase/internal/store"
	"forkbase/internal/value"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := New(store.NewMemStore(), core.NewMemBranchTable(), nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func TestPingAndChunkRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rs := NewRemoteStore(cl)
	c := chunk.New(chunk.TypeBlobLeaf, []byte("over the wire"))
	fresh, err := rs.Put(c)
	if err != nil || !fresh {
		t.Fatalf("put: fresh=%v err=%v", fresh, err)
	}
	fresh, err = rs.Put(c)
	if err != nil || fresh {
		t.Fatalf("dedup over wire: fresh=%v err=%v", fresh, err)
	}
	got, err := rs.Get(c.ID())
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Data()) != "over the wire" || got.Type() != chunk.TypeBlobLeaf {
		t.Fatalf("got %q %v", got.Data(), got.Type())
	}
	ok, err := rs.Has(c.ID())
	if err != nil || !ok {
		t.Fatalf("has: %v %v", ok, err)
	}
	if _, err := rs.Get(hash.Of([]byte("missing"))); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("missing: %v", err)
	}
	if rs.Stats().UniqueChunks != 1 {
		t.Fatalf("stats: %+v", rs.Stats())
	}
}

func TestServerRejectsMislabelledChunk(t *testing.T) {
	_, addr := startServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var resp Response
	err = cl.roundTrip(&Request{
		Op:        OpPutChunk,
		ID:        hash.Of([]byte("lie")),
		ChunkType: byte(chunk.TypeBlobLeaf),
		Data:      []byte("actual content"),
	}, &resp)
	if err == nil {
		t.Fatal("server accepted mislabelled chunk")
	}
}

func TestRemoteBranchTable(t *testing.T) {
	_, addr := startServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	bt := NewRemoteBranchTable(cl)

	uid1 := hash.Of([]byte("v1"))
	ok, err := bt.CompareAndSet("k", "master", hash.Hash{}, uid1)
	if err != nil || !ok {
		t.Fatalf("CAS create: %v %v", ok, err)
	}
	got, found, err := bt.Head("k", "master")
	if err != nil || !found || got != uid1 {
		t.Fatalf("head: %v %v %v", got.Short(), found, err)
	}
	// Stale CAS fails.
	ok, err = bt.CompareAndSet("k", "master", hash.Hash{}, hash.Of([]byte("v2")))
	if err != nil || ok {
		t.Fatalf("stale CAS: %v %v", ok, err)
	}
	// Rename, list, delete.
	if err := bt.Rename("k", "master", "main"); err != nil {
		t.Fatal(err)
	}
	branches, err := bt.Branches("k")
	if err != nil || len(branches) != 1 || branches["main"] != uid1 {
		t.Fatalf("branches: %v %v", branches, err)
	}
	keys, err := bt.Keys()
	if err != nil || len(keys) != 1 || keys[0] != "k" {
		t.Fatalf("keys: %v %v", keys, err)
	}
	if err := bt.Delete("k", "main"); err != nil {
		t.Fatal(err)
	}
	_, found, err = bt.Head("k", "main")
	if err != nil || found {
		t.Fatalf("deleted branch found: %v %v", found, err)
	}
	// Deleting again errors (propagated through the wire).
	if err := bt.Delete("k", "main"); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestFullEngineOverWire(t *testing.T) {
	_, addr := startServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	db := core.Open(core.Options{
		Store:    NewRemoteStore(cl),
		Branches: NewRemoteBranchTable(cl),
	})
	if _, err := db.Put("remote-obj", "", value.String("hello from afar"), nil); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get("remote-obj", "master")
	if err != nil {
		t.Fatal(err)
	}
	s, _ := got.Value.AsString()
	if s != "hello from afar" {
		t.Fatalf("value = %q", s)
	}
	// Branch + merge over the wire.
	if err := db.Branch("remote-obj", "dev", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Put("remote-obj", "dev", value.String("dev edit"), nil); err != nil {
		t.Fatal(err)
	}
	res, err := db.Merge("remote-obj", "master", "dev", nil, nil)
	if err != nil || !res.FastForward {
		t.Fatalf("merge: %+v %v", res, err)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cl.Close()
			rs := NewRemoteStore(cl)
			for i := 0; i < 50; i++ {
				c := chunk.New(chunk.TypeBlobLeaf, []byte{byte(g), byte(i)})
				if _, err := rs.Put(c); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if _, err := rs.Get(c.ID()); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestServerCloseUnblocksClients(t *testing.T) {
	srv, addr := startServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	srv.Close()
	rs := NewRemoteStore(cl)
	if _, err := rs.Get(hash.Of([]byte("x"))); err == nil {
		t.Fatal("request to closed server succeeded")
	}
}

func TestBatchedChunkIngest(t *testing.T) {
	_, addr := startServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rs := NewRemoteStore(cl)
	var cs []*chunk.Chunk
	for i := 0; i < 40; i++ {
		cs = append(cs, chunk.New(chunk.TypeBlobLeaf, []byte{byte(i), byte(i >> 3), 'x'}))
	}
	cs = append(cs, cs[0]) // intra-batch duplicate
	fresh, err := rs.PutBatch(cs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if !fresh[i] {
			t.Fatalf("chunk %d not fresh", i)
		}
	}
	if fresh[40] {
		t.Fatal("duplicate reported fresh")
	}
	for _, c := range cs {
		got, err := rs.Get(c.ID())
		if err != nil {
			t.Fatalf("get after batch: %v", err)
		}
		if got.ID() != c.ID() {
			t.Fatal("wrong chunk back")
		}
	}
}

func TestBatchedIngestRejectsForgery(t *testing.T) {
	srv, addr := startServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	honest := chunk.New(chunk.TypeBlobLeaf, []byte("honest"))
	var resp Response
	err = cl.roundTrip(&Request{Op: OpPutChunks, Chunks: []WireChunk{
		{ID: honest.ID(), Type: byte(honest.Type()), Data: honest.Data()},
		{ID: honest.ID(), Type: byte(chunk.TypeBlobLeaf), Data: []byte("forged payload")},
	}}, &resp)
	if err == nil {
		t.Fatal("forged batch accepted")
	}
	// Nothing from the rejected batch landed.
	if ok, _ := srv.st.Has(honest.ID()); ok {
		t.Fatal("partial batch landed despite forgery")
	}
}

// TestWriteBatchOverWire drives core.DB.WriteBatch against a remote store:
// the version chunks travel as one OpPutChunks batch.
func TestWriteBatchOverWire(t *testing.T) {
	_, addr := startServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	db := core.Open(core.Options{Store: NewRemoteStore(cl), Branches: NewRemoteBranchTable(cl)})
	vers, err := db.WriteBatch([]core.WriteOp{
		{Key: "x", Value: value.String("1")},
		{Key: "y", Value: value.String("2")},
		{Key: "x", Value: value.String("3")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if vers[2].Seq != 2 {
		t.Fatalf("chained remote seq = %d", vers[2].Seq)
	}
	got, err := db.Get("x", "")
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := got.Value.AsString(); s != "3" {
		t.Fatalf("x = %q", s)
	}
}

func TestServerMaxConnsGateShedsAndRecovers(t *testing.T) {
	srv := New(store.NewMemStore(), core.NewMemBranchTable(), nil)
	srv.SetLimits(Limits{MaxConns: 1})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	// Second connection is shed at the door: the dial-time ping fails fast
	// (single attempt — no point backing off inside the assertion).
	_, err = DialWithOptions(addr, ClientOptions{
		OpTimeout: time.Second,
		Retry:     retry.Policy{Attempts: -1},
	})
	if err == nil {
		t.Fatal("connection over MaxConns was served")
	}
	if srv.Refused() == 0 {
		t.Fatal("gate shed nothing")
	}
	// Freeing the slot lets the next client in; the retry policy absorbs
	// the handoff race (server-side conn teardown is asynchronous).
	cl1.Close()
	cl2, err := DialWithOptions(addr, ClientOptions{
		OpTimeout: time.Second,
		Retry:     retry.Policy{Attempts: 8, Base: 20 * time.Millisecond, Max: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("dial after slot freed: %v", err)
	}
	cl2.Close()
}

func TestServerReadTimeoutReapsStalledConn(t *testing.T) {
	srv := New(store.NewMemStore(), core.NewMemBranchTable(), nil)
	srv.SetLimits(Limits{ReadTimeout: 50 * time.Millisecond})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A raw conn that sends half a frame and stalls — the shape of a
	// mid-frame truncation attack or a wedged client.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0x07, 0x01}); err != nil {
		t.Fatal(err)
	}
	// The server must reap the connection instead of parking a goroutine
	// forever; we observe that as EOF/reset on our end.
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered a torn frame")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server never reaped the stalled connection")
	}
}
