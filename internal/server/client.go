package server

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"forkbase/internal/chunk"
	"forkbase/internal/core"
	"forkbase/internal/hash"
	"forkbase/internal/store"
)

// Client is a connection to one ForkBase server.  Requests are serialised
// over a single TCP connection guarded by a mutex; the client reconnects
// transparently after transport errors.
type Client struct {
	addr string

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a server and verifies liveness with a ping.
func Dial(addr string) (*Client, error) {
	c := &Client{addr: addr}
	if err := c.connect(); err != nil {
		return nil, err
	}
	var resp Response
	if err := c.roundTrip(&Request{Op: OpPing}, &resp); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) connect() error {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("client: dial %s: %w", c.addr, err)
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.dec = gob.NewDecoder(conn)
	return nil
}

func (c *Client) roundTrip(req *Request, resp *Response) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		if err := c.connect(); err != nil {
			return err
		}
	}
	if err := c.enc.Encode(req); err != nil {
		// One reconnect attempt for stale connections.
		c.conn.Close()
		if cerr := c.connect(); cerr != nil {
			return cerr
		}
		if err := c.enc.Encode(req); err != nil {
			return fmt.Errorf("client: send: %w", err)
		}
	}
	if err := c.dec.Decode(resp); err != nil {
		c.conn.Close()
		c.conn = nil
		return fmt.Errorf("client: recv: %w", err)
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// Close shuts the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// RemoteStore adapts a Client into a store.Store.  Every fetched chunk is
// re-hashed locally, so a malicious server cannot forge content.
type RemoteStore struct {
	c *Client
}

var (
	_ store.BatchStore     = (*RemoteStore)(nil)
	_ store.BatchReadStore = (*RemoteStore)(nil)
)

// NewRemoteStore wraps a client as a chunk store.
func NewRemoteStore(c *Client) *RemoteStore { return &RemoteStore{c: c} }

// Put implements store.Store.
func (r *RemoteStore) Put(ch *chunk.Chunk) (bool, error) {
	var resp Response
	err := r.c.roundTrip(&Request{
		Op:        OpPutChunk,
		ID:        ch.ID(),
		ChunkType: byte(ch.Type()),
		Data:      ch.Data(),
	}, &resp)
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// PutBatch implements store.BatchStore: the whole batch travels in one
// request and lands on the server in one store round, collapsing N network
// round trips into one — the dominant cost of remote bulk ingest.
func (r *RemoteStore) PutBatch(cs []*chunk.Chunk) ([]bool, error) {
	wire := make([]WireChunk, len(cs))
	for i, c := range cs {
		wire[i] = WireChunk{ID: c.ID(), Type: byte(c.Type()), Data: c.Data()}
	}
	var resp Response
	if err := r.c.roundTrip(&Request{Op: OpPutChunks, Chunks: wire}, &resp); err != nil {
		return make([]bool, len(cs)), err
	}
	fresh := resp.Fresh
	if len(fresh) != len(cs) {
		return make([]bool, len(cs)), fmt.Errorf("client: server returned %d freshness flags for %d chunks", len(fresh), len(cs))
	}
	return fresh, nil
}

// GetChunks fetches a batch of chunks in one round trip.  out[i] is nil when
// ids[i] is absent on the server.  Every returned chunk is matched to its
// requested id and verified client-side, so a malicious server can neither
// forge content nor satisfy a request with a different (valid) chunk.
func (c *Client) GetChunks(ids []hash.Hash) ([]*chunk.Chunk, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	var resp Response
	if err := c.roundTrip(&Request{Op: OpGetChunks, IDs: ids}, &resp); err != nil {
		return nil, err
	}
	byID := make(map[hash.Hash]*chunk.Chunk, len(resp.Chunks))
	for _, w := range resp.Chunks {
		t := chunk.Type(w.Type)
		if !t.Valid() {
			return nil, fmt.Errorf("client: server returned invalid chunk type %d", w.Type)
		}
		ch := chunk.NewClaimed(t, w.Data, w.ID)
		if err := ch.Recheck(); err != nil {
			return nil, err // forged or corrupted in flight
		}
		byID[ch.ID()] = ch
	}
	out := make([]*chunk.Chunk, len(ids))
	for i, id := range ids {
		out[i] = byID[id] // nil when the server omitted it
	}
	return out, nil
}

// HasChunks answers presence for a batch of ids in one round trip.
func (c *Client) HasChunks(ids []hash.Hash) ([]bool, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	var resp Response
	if err := c.roundTrip(&Request{Op: OpHasChunks, IDs: ids}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Bools) != len(ids) {
		return nil, fmt.Errorf("client: server returned %d presence flags for %d ids", len(resp.Bools), len(ids))
	}
	return resp.Bools, nil
}

// FeedSince reads the server's change feed from cursor, long-polling up to
// wait when the feed is idle.  It returns the entries, the resume cursor,
// and whether the cursor was truncated — evicted from the feed's retained
// window, or belonging to a previous feed incarnation (primary restart) —
// in which case the caller must fall back to a snapshot catch-up.
func (c *Client) FeedSince(cursor core.FeedCursor, limit int, wait time.Duration) ([]core.FeedEntry, core.FeedCursor, bool, error) {
	var resp Response
	req := &Request{Op: OpFeedSince, Cursor: cursor.Seq, FeedEpoch: cursor.Epoch, Limit: limit, WaitMillis: wait.Milliseconds()}
	if err := c.roundTrip(req, &resp); err != nil {
		return nil, cursor, false, err
	}
	entries := make([]core.FeedEntry, len(resp.Entries))
	for i, e := range resp.Entries {
		entries[i] = core.FeedEntry{Seq: e.Seq, Key: e.Key, Branch: e.Branch, Old: e.Old, New: e.New}
	}
	return entries, core.FeedCursor{Epoch: resp.FeedEpoch, Seq: resp.Cursor}, resp.Truncated, nil
}

// FeedSeq probes the server's current feed position without reading entries.
func (c *Client) FeedSeq() (core.FeedCursor, error) {
	var resp Response
	if err := c.roundTrip(&Request{Op: OpFeedSince, Limit: -1}, &resp); err != nil {
		return core.FeedCursor{}, err
	}
	return core.FeedCursor{Epoch: resp.FeedEpoch, Seq: resp.Cursor}, nil
}

// PinHead pins uid as a GC root on the server for the server's pin lease;
// UnpinHead releases it.  Replicas bracket each head pull with these so a
// primary-side collection cannot sweep a graph mid-sync.
func (c *Client) PinHead(uid hash.Hash) error {
	var resp Response
	return c.roundTrip(&Request{Op: OpPinHead, ID: uid}, &resp)
}

// UnpinHead releases a PinHead.
func (c *Client) UnpinHead(uid hash.Hash) error {
	var resp Response
	return c.roundTrip(&Request{Op: OpUnpinHead, ID: uid}, &resp)
}

// Get implements store.Store; the chunk is verified client-side.
func (r *RemoteStore) Get(id hash.Hash) (*chunk.Chunk, error) {
	var resp Response
	if err := r.c.roundTrip(&Request{Op: OpGetChunk, ID: id}, &resp); err != nil {
		return nil, err
	}
	if !resp.Found {
		return nil, store.ErrNotFound
	}
	t := chunk.Type(resp.ChunkType)
	if !t.Valid() {
		return nil, fmt.Errorf("client: server returned invalid chunk type %d", resp.ChunkType)
	}
	c := chunk.New(t, resp.Data)
	if err := c.Verify(id); err != nil {
		return nil, err // forged or corrupted in flight
	}
	return c, nil
}

// Has implements store.Store.
func (r *RemoteStore) Has(id hash.Hash) (bool, error) {
	var resp Response
	if err := r.c.roundTrip(&Request{Op: OpHasChunk, ID: id}, &resp); err != nil {
		return false, err
	}
	return resp.OK, nil
}

// GetBatch implements store.BatchReadStore: one round trip for the whole id
// list, collapsing the per-chunk request latency that made RemoteStore reads
// pay one RTT per Get.
func (r *RemoteStore) GetBatch(ids []hash.Hash) ([]*chunk.Chunk, error) { return r.c.GetChunks(ids) }

// HasBatch implements store.BatchReadStore.
func (r *RemoteStore) HasBatch(ids []hash.Hash) ([]bool, error) { return r.c.HasChunks(ids) }

// Stats implements store.Store.
func (r *RemoteStore) Stats() store.Stats {
	var resp Response
	if err := r.c.roundTrip(&Request{Op: OpStats}, &resp); err != nil {
		return store.Stats{}
	}
	return resp.Stats
}

// RemoteBranchTable adapts a Client into a core.BranchTable.
type RemoteBranchTable struct {
	c *Client
}

// NewRemoteBranchTable wraps a client as a branch table.
func NewRemoteBranchTable(c *Client) *RemoteBranchTable { return &RemoteBranchTable{c: c} }

// Head implements core.BranchTable.
func (r *RemoteBranchTable) Head(key, branch string) (hash.Hash, bool, error) {
	var resp Response
	if err := r.c.roundTrip(&Request{Op: OpHead, Key: key, Branch: branch}, &resp); err != nil {
		return hash.Hash{}, false, err
	}
	return resp.UID, resp.Found, nil
}

// CompareAndSet implements core.BranchTable.
func (r *RemoteBranchTable) CompareAndSet(key, branch string, old, new hash.Hash) (bool, error) {
	var resp Response
	err := r.c.roundTrip(&Request{Op: OpCAS, Key: key, Branch: branch, Old: old, New: new}, &resp)
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// Delete implements core.BranchTable.
func (r *RemoteBranchTable) Delete(key, branch string) error {
	var resp Response
	return r.c.roundTrip(&Request{Op: OpDeleteBranch, Key: key, Branch: branch}, &resp)
}

// Rename implements core.BranchTable.
func (r *RemoteBranchTable) Rename(key, from, to string) error {
	var resp Response
	return r.c.roundTrip(&Request{Op: OpRenameBranch, Key: key, Branch: from, ToBranch: to}, &resp)
}

// Branches implements core.BranchTable.
func (r *RemoteBranchTable) Branches(key string) (map[string]hash.Hash, error) {
	var resp Response
	if err := r.c.roundTrip(&Request{Op: OpBranches, Key: key}, &resp); err != nil {
		return nil, err
	}
	out := make(map[string]hash.Hash, len(resp.Heads))
	for b, s := range resp.Heads {
		uid, err := hash.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("client: bad uid from server: %w", err)
		}
		out[b] = uid
	}
	return out, nil
}

// Keys implements core.BranchTable.
func (r *RemoteBranchTable) Keys() ([]string, error) {
	var resp Response
	if err := r.c.roundTrip(&Request{Op: OpKeys}, &resp); err != nil {
		return nil, err
	}
	return resp.Keys, nil
}
