package server

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"forkbase/internal/chunk"
	"forkbase/internal/core"
	"forkbase/internal/hash"
	"forkbase/internal/obs"
	"forkbase/internal/retry"
	"forkbase/internal/store"
)

// ambiguousTotal counts non-idempotent requests whose outcome the client
// could not determine (transport failure after bytes reached the wire).
// Each is a potential silent divergence the caller had to probe for, so
// the count is worth alerting on.
var ambiguousTotal = obs.Default().Counter("forkbase_client_ambiguous_total",
	"Non-idempotent client requests with unknown outcome after a transport failure.")

// ClientOptions tune a Client's failure behavior.  The zero value selects
// the defaults below.
type ClientOptions struct {
	// DialTimeout bounds each (re)connection attempt (default 5s).
	DialTimeout time.Duration
	// OpTimeout bounds one request-response attempt: the write deadline
	// covers the encode, the read deadline covers the decode (plus the
	// long-poll budget for feed reads).  A stalled server or a chaos
	// mid-frame truncation surfaces as a timeout instead of hanging the
	// caller forever (default 10s).
	OpTimeout time.Duration
	// Retry is the transport-failure policy: failed attempts reconnect
	// with exponential backoff.  Retry.Timeout is ignored (OpTimeout is
	// authoritative).  Non-idempotent ops are never blindly re-sent; see
	// roundTrip.
	Retry retry.Policy
}

func (o *ClientOptions) fill() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.OpTimeout <= 0 {
		o.OpTimeout = 10 * time.Second
	}
	if o.Retry.Attempts == 0 {
		o.Retry.Attempts = 4
	}
	if o.Retry.Base <= 0 {
		o.Retry.Base = 50 * time.Millisecond
	}
	if o.Retry.Max <= 0 {
		o.Retry.Max = time.Second
	}
	o.Retry.Timeout = o.OpTimeout
}

// Client is a connection to one ForkBase server.  Requests are serialised
// over a single TCP connection guarded by a mutex; every attempt runs under
// explicit read/write deadlines, and transport failures reconnect with
// backoff under the client's retry policy.
//
// Idempotency contract: reads (Get/Has/GetBatch/feed/pin) are retried
// freely.  Mutations (CAS, chunk puts, branch delete/rename) are re-sent
// only when the failed attempt provably wrote zero bytes of the request —
// otherwise the server may have executed it, and the ambiguous error is
// surfaced to the caller (who owns the op-level recovery; see
// RemoteBranchTable.CompareAndSet for the CAS probe).
type Client struct {
	addr string
	opts ClientOptions

	mu     sync.Mutex
	conn   net.Conn
	cw     *countingWriter
	enc    *gob.Encoder
	dec    *gob.Decoder
	closed bool
	stop   chan struct{} // closed by Close; aborts in-flight backoffs
}

// errClientClosed is returned by every op after Close.
var errClientClosed = errors.New("client: closed")

// Dial connects to a server with default options and verifies liveness with
// a ping.
func Dial(addr string) (*Client, error) {
	return DialWithOptions(addr, ClientOptions{})
}

// DialWithOptions connects with explicit timeouts and retry policy.
func DialWithOptions(addr string, opts ClientOptions) (*Client, error) {
	opts.fill()
	c := &Client{addr: addr, opts: opts, stop: make(chan struct{})}
	var resp Response
	if err := c.roundTrip(&Request{Op: OpPing}, &resp); err != nil {
		return nil, err
	}
	return c, nil
}

// countingWriter counts bytes written since the last reset — the witness
// that lets roundTrip prove a failed send never reached the wire.
type countingWriter struct {
	w net.Conn
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// connectLocked dials and installs a fresh connection.  Callers hold c.mu.
func (c *Client) connectLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return fmt.Errorf("client: dial %s: %w", c.addr, err)
	}
	c.conn = conn
	c.cw = &countingWriter{w: conn}
	c.enc = gob.NewEncoder(c.cw)
	c.dec = gob.NewDecoder(conn)
	return nil
}

// teardownLocked discards a connection after a transport failure, so the
// next attempt redials instead of reusing a dead encoder.  Callers hold
// c.mu.
func (c *Client) teardownLocked() {
	if c.conn != nil {
		c.conn.Close()
	}
	c.conn, c.cw, c.enc, c.dec = nil, nil, nil, nil
}

// idempotent reports whether op may be blindly re-sent after a transport
// failure that left the server's state unknown.  Reads, presence checks,
// feed reads and pins are; mutations are not — a CAS executed twice is a
// lost-update bug, and a re-run batch put skews freshness accounting.
func idempotent(op Op) bool {
	switch op {
	case OpCAS, OpDeleteBranch, OpRenameBranch, OpPutChunk, OpPutChunks:
		return false
	}
	return true
}

// ErrAmbiguous marks a transport failure after part of a non-idempotent
// request may have reached the server: the op may or may not have executed.
// Callers that can probe (re-read the head, re-check presence) should; see
// RemoteBranchTable.CompareAndSet.
var ErrAmbiguous = errors.New("client: request outcome unknown")

// roundTrip performs one request-response exchange under the retry policy.
func (c *Client) roundTrip(req *Request, resp *Response) error {
	// Long-poll feed reads legitimately idle on the server up to their wait
	// budget; the read deadline must cover it on top of the op timeout.
	var extraRead time.Duration
	if req.Op == OpFeedSince && req.WaitMillis > 0 {
		extraRead = time.Duration(req.WaitMillis) * time.Millisecond
	}
	return c.opts.Retry.Do(c.stop, func(a retry.Attempt) error {
		return c.attempt(req, resp, extraRead)
	})
}

// attempt is one full exchange: (re)connect, encode under a write deadline,
// decode under a read deadline.  Errors are classified for the retry loop:
// server-sent errors and ambiguous non-idempotent failures are permanent;
// everything else is transient and redials.
func (c *Client) attempt(req *Request, resp *Response, extraRead time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return retry.Permanent(errClientClosed)
	}
	if c.conn == nil {
		if err := c.connectLocked(); err != nil {
			return err // transient: the policy redials with backoff
		}
	}
	now := time.Now()
	_ = c.conn.SetWriteDeadline(now.Add(c.opts.OpTimeout))
	c.cw.n = 0
	if err := c.enc.Encode(req); err != nil {
		sent := c.cw.n > 0
		c.teardownLocked()
		if sent && !idempotent(req.Op) {
			ambiguousTotal.Inc()
			return retry.Permanent(fmt.Errorf("%w: send of %s interrupted after %s: %v",
				ErrAmbiguous, req.Op, c.addr, err))
		}
		return fmt.Errorf("client: send %s: %w", req.Op, err)
	}
	_ = c.conn.SetReadDeadline(time.Now().Add(c.opts.OpTimeout + extraRead))
	*resp = Response{}
	if err := c.dec.Decode(resp); err != nil {
		c.teardownLocked()
		if !idempotent(req.Op) {
			// The request reached the wire whole; only the reply was lost.
			ambiguousTotal.Inc()
			return retry.Permanent(fmt.Errorf("%w: reply to %s lost from %s: %v",
				ErrAmbiguous, req.Op, c.addr, err))
		}
		return fmt.Errorf("client: recv %s: %w", req.Op, err)
	}
	if resp.Err != "" {
		// The server executed the request and refused it: retrying would
		// re-execute, and the answer would not change.
		return retry.Permanent(errors.New(resp.Err))
	}
	return nil
}

// MaxBlock is the worst-case wall clock one client op can spend before
// returning: every retry attempt paying a full dial plus its op timeout,
// plus all backoffs.  extra is any per-call read allowance (the long-poll
// budget of a feed read; 0 otherwise).  The chaos soak pins observed op
// latency against this bound.
func (c *Client) MaxBlock(extra time.Duration) time.Duration {
	p := c.opts.Retry
	p.Timeout = c.opts.DialTimeout + c.opts.OpTimeout + extra
	return p.MaxElapsed()
}

// Close shuts the connection.  Safe to call more than once; concurrent ops
// fail fast instead of waiting out their backoff.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	close(c.stop)
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn, c.cw, c.enc, c.dec = nil, nil, nil, nil
	return err
}

// RemoteStore adapts a Client into a store.Store.  Every fetched chunk is
// re-hashed locally, so a malicious server cannot forge content.
type RemoteStore struct {
	c *Client
}

var (
	_ store.BatchStore     = (*RemoteStore)(nil)
	_ store.BatchReadStore = (*RemoteStore)(nil)
)

// NewRemoteStore wraps a client as a chunk store.
func NewRemoteStore(c *Client) *RemoteStore { return &RemoteStore{c: c} }

// Put implements store.Store.
func (r *RemoteStore) Put(ch *chunk.Chunk) (bool, error) {
	var resp Response
	err := r.c.roundTrip(&Request{
		Op:        OpPutChunk,
		ID:        ch.ID(),
		ChunkType: byte(ch.Type()),
		Data:      ch.Data(),
	}, &resp)
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// PutBatch implements store.BatchStore: the whole batch travels in one
// request and lands on the server in one store round, collapsing N network
// round trips into one — the dominant cost of remote bulk ingest.
func (r *RemoteStore) PutBatch(cs []*chunk.Chunk) ([]bool, error) {
	wire := make([]WireChunk, len(cs))
	for i, c := range cs {
		wire[i] = WireChunk{ID: c.ID(), Type: byte(c.Type()), Data: c.Data()}
	}
	var resp Response
	if err := r.c.roundTrip(&Request{Op: OpPutChunks, Chunks: wire}, &resp); err != nil {
		return make([]bool, len(cs)), err
	}
	fresh := resp.Fresh
	if len(fresh) != len(cs) {
		return make([]bool, len(cs)), fmt.Errorf("client: server returned %d freshness flags for %d chunks", len(fresh), len(cs))
	}
	return fresh, nil
}

// GetChunks fetches a batch of chunks in one round trip.  out[i] is nil when
// ids[i] is absent on the server.  Every returned chunk is matched to its
// requested id and verified client-side, so a malicious server can neither
// forge content nor satisfy a request with a different (valid) chunk.
func (c *Client) GetChunks(ids []hash.Hash) ([]*chunk.Chunk, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	var resp Response
	if err := c.roundTrip(&Request{Op: OpGetChunks, IDs: ids}, &resp); err != nil {
		return nil, err
	}
	byID := make(map[hash.Hash]*chunk.Chunk, len(resp.Chunks))
	for _, w := range resp.Chunks {
		t := chunk.Type(w.Type)
		if !t.Valid() {
			return nil, fmt.Errorf("client: server returned invalid chunk type %d", w.Type)
		}
		ch := chunk.NewClaimed(t, w.Data, w.ID)
		if err := ch.Recheck(); err != nil {
			return nil, err // forged or corrupted in flight
		}
		byID[ch.ID()] = ch
	}
	out := make([]*chunk.Chunk, len(ids))
	for i, id := range ids {
		out[i] = byID[id] // nil when the server omitted it
	}
	return out, nil
}

// HasChunks answers presence for a batch of ids in one round trip.
func (c *Client) HasChunks(ids []hash.Hash) ([]bool, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	var resp Response
	if err := c.roundTrip(&Request{Op: OpHasChunks, IDs: ids}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Bools) != len(ids) {
		return nil, fmt.Errorf("client: server returned %d presence flags for %d ids", len(resp.Bools), len(ids))
	}
	return resp.Bools, nil
}

// FeedSince reads the server's change feed from cursor, long-polling up to
// wait when the feed is idle.  It returns the entries, the resume cursor,
// and whether the cursor was truncated — evicted from the feed's retained
// window, or belonging to a previous feed incarnation (primary restart) —
// in which case the caller must fall back to a snapshot catch-up.
func (c *Client) FeedSince(cursor core.FeedCursor, limit int, wait time.Duration) ([]core.FeedEntry, core.FeedCursor, bool, error) {
	var resp Response
	req := &Request{Op: OpFeedSince, Cursor: cursor.Seq, FeedEpoch: cursor.Epoch, Limit: limit, WaitMillis: wait.Milliseconds()}
	if err := c.roundTrip(req, &resp); err != nil {
		return nil, cursor, false, err
	}
	entries := make([]core.FeedEntry, len(resp.Entries))
	for i, e := range resp.Entries {
		entries[i] = core.FeedEntry{Seq: e.Seq, Key: e.Key, Branch: e.Branch, Old: e.Old, New: e.New}
	}
	return entries, core.FeedCursor{Epoch: resp.FeedEpoch, Seq: resp.Cursor}, resp.Truncated, nil
}

// FeedSeq probes the server's current feed position without reading entries.
func (c *Client) FeedSeq() (core.FeedCursor, error) {
	var resp Response
	if err := c.roundTrip(&Request{Op: OpFeedSince, Limit: -1}, &resp); err != nil {
		return core.FeedCursor{}, err
	}
	return core.FeedCursor{Epoch: resp.FeedEpoch, Seq: resp.Cursor}, nil
}

// PinHead pins uid as a GC root on the server for the server's pin lease;
// UnpinHead releases it.  Replicas bracket each head pull with these so a
// primary-side collection cannot sweep a graph mid-sync.
func (c *Client) PinHead(uid hash.Hash) error {
	var resp Response
	return c.roundTrip(&Request{Op: OpPinHead, ID: uid}, &resp)
}

// UnpinHead releases a PinHead.
func (c *Client) UnpinHead(uid hash.Hash) error {
	var resp Response
	return c.roundTrip(&Request{Op: OpUnpinHead, ID: uid}, &resp)
}

// Get implements store.Store; the chunk is verified client-side.
func (r *RemoteStore) Get(id hash.Hash) (*chunk.Chunk, error) {
	var resp Response
	if err := r.c.roundTrip(&Request{Op: OpGetChunk, ID: id}, &resp); err != nil {
		return nil, err
	}
	if !resp.Found {
		return nil, store.ErrNotFound
	}
	t := chunk.Type(resp.ChunkType)
	if !t.Valid() {
		return nil, fmt.Errorf("client: server returned invalid chunk type %d", resp.ChunkType)
	}
	c := chunk.New(t, resp.Data)
	if err := c.Verify(id); err != nil {
		return nil, err // forged or corrupted in flight
	}
	return c, nil
}

// Has implements store.Store.
func (r *RemoteStore) Has(id hash.Hash) (bool, error) {
	var resp Response
	if err := r.c.roundTrip(&Request{Op: OpHasChunk, ID: id}, &resp); err != nil {
		return false, err
	}
	return resp.OK, nil
}

// GetBatch implements store.BatchReadStore: one round trip for the whole id
// list, collapsing the per-chunk request latency that made RemoteStore reads
// pay one RTT per Get.
func (r *RemoteStore) GetBatch(ids []hash.Hash) ([]*chunk.Chunk, error) { return r.c.GetChunks(ids) }

// HasBatch implements store.BatchReadStore.
func (r *RemoteStore) HasBatch(ids []hash.Hash) ([]bool, error) { return r.c.HasChunks(ids) }

// Stats implements store.Store.
func (r *RemoteStore) Stats() store.Stats {
	var resp Response
	if err := r.c.roundTrip(&Request{Op: OpStats}, &resp); err != nil {
		return store.Stats{}
	}
	return resp.Stats
}

// RemoteBranchTable adapts a Client into a core.BranchTable.
type RemoteBranchTable struct {
	c *Client
}

// NewRemoteBranchTable wraps a client as a branch table.
func NewRemoteBranchTable(c *Client) *RemoteBranchTable { return &RemoteBranchTable{c: c} }

// Head implements core.BranchTable.
func (r *RemoteBranchTable) Head(key, branch string) (hash.Hash, bool, error) {
	var resp Response
	if err := r.c.roundTrip(&Request{Op: OpHead, Key: key, Branch: branch}, &resp); err != nil {
		return hash.Hash{}, false, err
	}
	return resp.UID, resp.Found, nil
}

// CompareAndSet implements core.BranchTable.  An ambiguous transport
// failure (the CAS may or may not have executed on the server) is resolved
// by probing the head: if it now equals new, the CAS landed — uids are
// content-addressed, so "head == new" is exactly the postcondition the
// caller asked for regardless of which attempt (or writer) established it.
func (r *RemoteBranchTable) CompareAndSet(key, branch string, old, new hash.Hash) (bool, error) {
	var resp Response
	err := r.c.roundTrip(&Request{Op: OpCAS, Key: key, Branch: branch, Old: old, New: new}, &resp)
	if err != nil {
		if errors.Is(err, ErrAmbiguous) {
			if cur, found, herr := r.Head(key, branch); herr == nil && found && cur == new {
				return true, nil
			}
		}
		return false, err
	}
	return resp.OK, nil
}

// Delete implements core.BranchTable.
func (r *RemoteBranchTable) Delete(key, branch string) error {
	var resp Response
	return r.c.roundTrip(&Request{Op: OpDeleteBranch, Key: key, Branch: branch}, &resp)
}

// Rename implements core.BranchTable.
func (r *RemoteBranchTable) Rename(key, from, to string) error {
	var resp Response
	return r.c.roundTrip(&Request{Op: OpRenameBranch, Key: key, Branch: from, ToBranch: to}, &resp)
}

// Branches implements core.BranchTable.
func (r *RemoteBranchTable) Branches(key string) (map[string]hash.Hash, error) {
	var resp Response
	if err := r.c.roundTrip(&Request{Op: OpBranches, Key: key}, &resp); err != nil {
		return nil, err
	}
	out := make(map[string]hash.Hash, len(resp.Heads))
	for b, s := range resp.Heads {
		uid, err := hash.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("client: bad uid from server: %w", err)
		}
		out[b] = uid
	}
	return out, nil
}

// Keys implements core.BranchTable.
func (r *RemoteBranchTable) Keys() ([]string, error) {
	var resp Response
	if err := r.c.roundTrip(&Request{Op: OpKeys}, &resp); err != nil {
		return nil, err
	}
	return resp.Keys, nil
}
