// Package server implements ForkBase's distributed layer: a TCP chunk and
// branch service plus client stubs, so several machines can share one
// content-addressed store (the "distributed storage system" of paper §II).
//
// The wire protocol is a length-free gob stream per connection: the client
// encodes Request values, the server replies with one Response per request.
// Content addressing makes the protocol trivially safe against a buggy or
// malicious server: clients re-hash every chunk they receive.
package server

import (
	"strconv"

	"forkbase/internal/hash"
	"forkbase/internal/store"
)

// Op identifies a request type.
type Op byte

// Protocol operations.
const (
	OpPutChunk Op = iota + 1
	OpGetChunk
	OpHasChunk
	OpStats
	OpHead
	OpCAS
	OpDeleteBranch
	OpRenameBranch
	OpBranches
	OpKeys
	OpPing
	// OpPutChunks ingests a whole batch of chunks in one round trip; the
	// server verifies every claimed id and lands the batch with one
	// store.PutBatch (group commit on file-backed stores).
	OpPutChunks
	// OpGetChunks fetches a batch of chunks in one round trip — the read
	// half of Merkle-delta sync: a replica resolves a whole frontier level
	// of missing subtree roots per request.  Absent ids are simply omitted
	// from the response.
	OpGetChunks
	// OpHasChunks answers presence for a batch of ids in one round trip,
	// letting the sync differ prune shared subtrees without shipping them.
	OpHasChunks
	// OpFeedSince reads the primary's change feed from a cursor, optionally
	// long-polling until new entries arrive.  The response carries the next
	// cursor and whether the requested range was truncated (evicted from the
	// feed's retained window), which forces the replica into a snapshot
	// catch-up.
	OpFeedSince
	// OpPinHead / OpUnpinHead bracket a replica's pull of one head: a pinned
	// head's chunk graph survives primary-side garbage collection until the
	// pin is released or its lease expires, so an in-flight sync can never
	// lose the ground under its feet.
	OpPinHead
	OpUnpinHead
)

var opNames = map[Op]string{
	OpPutChunk:     "PutChunk",
	OpGetChunk:     "GetChunk",
	OpHasChunk:     "HasChunk",
	OpStats:        "Stats",
	OpHead:         "Head",
	OpCAS:          "CAS",
	OpDeleteBranch: "DeleteBranch",
	OpRenameBranch: "RenameBranch",
	OpBranches:     "Branches",
	OpKeys:         "Keys",
	OpPing:         "Ping",
	OpPutChunks:    "PutChunks",
	OpGetChunks:    "GetChunks",
	OpHasChunks:    "HasChunks",
	OpFeedSince:    "FeedSince",
	OpPinHead:      "PinHead",
	OpUnpinHead:    "UnpinHead",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return "Op(" + strconv.Itoa(int(o)) + ")"
}

// WireChunk is one chunk of a batched put.  The id is a *claim* until the
// receiving side rehashes the data; mislabelled chunks reject the batch.
type WireChunk struct {
	ID   hash.Hash
	Type byte
	Data []byte
}

// WireFeedEntry is one change-feed entry on the wire.
type WireFeedEntry struct {
	Seq         uint64
	Key, Branch string
	Old, New    hash.Hash
}

// Request is the single wire request shape (fields used depend on Op).
type Request struct {
	Op Op

	// Chunk operations.
	ID        hash.Hash
	ChunkType byte
	Data      []byte
	Chunks    []WireChunk // OpPutChunks
	IDs       []hash.Hash // OpGetChunks / OpHasChunks

	// Branch operations.
	Key      string
	Branch   string
	ToBranch string
	Old, New hash.Hash

	// Feed operations.
	Cursor     uint64 // OpFeedSince: read entries with Seq > Cursor
	FeedEpoch  uint64 // OpFeedSince: the incarnation Cursor belongs to (0 = none)
	Limit      int    // OpFeedSince: max entries (0 = server default, <0 = seq probe)
	WaitMillis int64  // OpFeedSince: long-poll budget when the feed is idle
}

// Response is the single wire response shape.
type Response struct {
	Err   string // empty on success
	OK    bool   // op-specific boolean (fresh put, CAS success, has)
	Found bool

	ChunkType byte
	Data      []byte
	Fresh     []bool      // OpPutChunks: per-chunk freshness
	Chunks    []WireChunk // OpGetChunks: the present chunks (absent ids omitted)
	Bools     []bool      // OpHasChunks: per-id presence

	UID   hash.Hash
	Heads map[string]string // branch -> uid (Base32)
	Keys  []string
	Stats store.Stats

	// Feed results.
	Entries   []WireFeedEntry // OpFeedSince
	Cursor    uint64          // OpFeedSince: resume cursor
	FeedEpoch uint64          // OpFeedSince: the serving feed's incarnation
	Truncated bool            // OpFeedSince: requested range evicted; re-snapshot
}
