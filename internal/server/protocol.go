// Package server implements ForkBase's distributed layer: a TCP chunk and
// branch service plus client stubs, so several machines can share one
// content-addressed store (the "distributed storage system" of paper §II).
//
// The wire protocol is a length-free gob stream per connection: the client
// encodes Request values, the server replies with one Response per request.
// Content addressing makes the protocol trivially safe against a buggy or
// malicious server: clients re-hash every chunk they receive.
package server

import (
	"forkbase/internal/hash"
	"forkbase/internal/store"
)

// Op identifies a request type.
type Op byte

// Protocol operations.
const (
	OpPutChunk Op = iota + 1
	OpGetChunk
	OpHasChunk
	OpStats
	OpHead
	OpCAS
	OpDeleteBranch
	OpRenameBranch
	OpBranches
	OpKeys
	OpPing
	// OpPutChunks ingests a whole batch of chunks in one round trip; the
	// server verifies every claimed id and lands the batch with one
	// store.PutBatch (group commit on file-backed stores).
	OpPutChunks
)

// WireChunk is one chunk of a batched put.  The id is a *claim* until the
// receiving side rehashes the data; mislabelled chunks reject the batch.
type WireChunk struct {
	ID   hash.Hash
	Type byte
	Data []byte
}

// Request is the single wire request shape (fields used depend on Op).
type Request struct {
	Op Op

	// Chunk operations.
	ID        hash.Hash
	ChunkType byte
	Data      []byte
	Chunks    []WireChunk // OpPutChunks

	// Branch operations.
	Key      string
	Branch   string
	ToBranch string
	Old, New hash.Hash
}

// Response is the single wire response shape.
type Response struct {
	Err   string // empty on success
	OK    bool   // op-specific boolean (fresh put, CAS success, has)
	Found bool

	ChunkType byte
	Data      []byte
	Fresh     []bool // OpPutChunks: per-chunk freshness

	UID   hash.Hash
	Heads map[string]string // branch -> uid (Base32)
	Keys  []string
	Stats store.Stats
}
