// Package server implements ForkBase's distributed layer: a TCP chunk and
// branch service plus client stubs, so several machines can share one
// content-addressed store (the "distributed storage system" of paper §II).
//
// The wire protocol is a length-free gob stream per connection: the client
// encodes Request values, the server replies with one Response per request.
// Content addressing makes the protocol trivially safe against a buggy or
// malicious server: clients re-hash every chunk they receive.
package server

import (
	"forkbase/internal/hash"
	"forkbase/internal/store"
)

// Op identifies a request type.
type Op byte

// Protocol operations.
const (
	OpPutChunk Op = iota + 1
	OpGetChunk
	OpHasChunk
	OpStats
	OpHead
	OpCAS
	OpDeleteBranch
	OpRenameBranch
	OpBranches
	OpKeys
	OpPing
)

// Request is the single wire request shape (fields used depend on Op).
type Request struct {
	Op Op

	// Chunk operations.
	ID        hash.Hash
	ChunkType byte
	Data      []byte

	// Branch operations.
	Key      string
	Branch   string
	ToBranch string
	Old, New hash.Hash
}

// Response is the single wire response shape.
type Response struct {
	Err   string // empty on success
	OK    bool   // op-specific boolean (fresh put, CAS success, has)
	Found bool

	ChunkType byte
	Data      []byte

	UID   hash.Hash
	Heads map[string]string // branch -> uid (Base32)
	Keys  []string
	Stats store.Stats
}
