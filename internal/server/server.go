package server

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"forkbase/internal/chunk"
	"forkbase/internal/core"
	"forkbase/internal/obs"
	"forkbase/internal/store"
)

// Server exposes a chunk store and a branch table over TCP.
type Server struct {
	st       store.Store
	heads    core.BranchTable
	feed     *core.Feed // non-nil when this node publishes a change feed
	readOnly bool       // replicas reject mutating ops
	limits   Limits
	met      *srvMetrics // set by SetMetrics before Listen; nil = uninstrumented

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}
	closed  bool
	refused uint64 // connections shed by the MaxConns gate
	logger  *slog.Logger
	wg      sync.WaitGroup
}

// srvMetrics holds the per-opcode and connection-lifecycle handles,
// resolved once at SetMetrics.  All methods are nil-safe so the serving
// path never branches on "is instrumentation configured".
type srvMetrics struct {
	ops      map[Op]*srvOp
	unknown  *srvOp
	inflight *obs.Gauge
	open     *obs.Gauge
	total    *obs.Counter
	refused  *obs.Counter
}

type srvOp struct {
	total *obs.Counter
	errs  *obs.Counter
	lat   *obs.Histogram
}

// SetMetrics instruments the server against reg: per-opcode request
// counts, latencies and error counts, an in-flight gauge, and connection
// lifecycle counters.  Call before Listen.
func (s *Server) SetMetrics(reg *obs.Registry) {
	if reg == nil || reg == obs.Discard {
		return
	}
	total := reg.CounterVec("forkbase_server_requests_total",
		"TCP requests served, by opcode.", "op")
	errsV := reg.CounterVec("forkbase_server_errors_total",
		"TCP requests answered with an error, by opcode.", "op")
	lat := reg.HistogramVec("forkbase_server_request_seconds",
		"TCP request handling latency, by opcode.", "op")
	m := &srvMetrics{
		ops: make(map[Op]*srvOp, len(opNames)),
		inflight: reg.Gauge("forkbase_server_inflight",
			"TCP requests currently being handled."),
		open: reg.Gauge("forkbase_server_conns_open",
			"TCP connections currently served."),
		total: reg.Counter("forkbase_server_conns_total",
			"TCP connections accepted."),
		refused: reg.Counter("forkbase_server_conns_refused_total",
			"TCP connections shed by the MaxConns gate."),
	}
	// Pre-register every known opcode so the families expose complete
	// zero-valued series from the first scrape.
	for op := range opNames {
		name := op.String()
		m.ops[op] = &srvOp{total: total.With(name), errs: errsV.With(name), lat: lat.With(name)}
	}
	m.unknown = &srvOp{total: total.With("unknown"), errs: errsV.With("unknown"), lat: lat.With("unknown")}
	s.met = m
}

func (m *srvMetrics) opDone(op Op, start time.Time, failed bool) {
	if m == nil {
		return
	}
	h, ok := m.ops[op]
	if !ok {
		h = m.unknown
	}
	h.total.Inc()
	h.lat.Since(start)
	if failed {
		h.errs.Inc()
	}
}

// Limits bound a server's exposure to slow or excessive clients.  The zero
// value imposes none (library embeddings, tests); cmd/forkbased enables
// both.
type Limits struct {
	// MaxConns caps concurrently served connections.  Excess accepts are
	// closed immediately — load is shed at the door instead of queueing
	// goroutines until memory runs out.  Clients see a transport error and
	// retry with backoff, by which time a slot may have freed.  0 = no cap.
	MaxConns int
	// ReadTimeout bounds how long the server waits for a complete request
	// frame.  It is also the idle-connection timeout: a client that goes
	// quiet (or a chaos proxy that truncates a frame mid-gob) loses its
	// connection instead of parking a goroutine forever.  Well-behaved
	// clients reconnect transparently.  0 = wait forever.
	ReadTimeout time.Duration
}

// SetLimits configures load-shedding bounds.  Call before Listen.
func (s *Server) SetLimits(l Limits) { s.limits = l }

// Refused reports how many connections the MaxConns gate has shed.
func (s *Server) Refused() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refused
}

// Feed-serving limits: a single OpFeedSince answer is bounded so a lagging
// replica streams the window in pages, and the long-poll budget is clamped
// so an idle connection never parks a server goroutine for long.
const (
	feedDefaultLimit = 512
	feedMaxWait      = 30 * time.Second
)

// New creates a server over the given store and branch table.  A nil
// logger selects slog.Default(); routine transport noise (peer hangups,
// malformed frames) is logged at Debug, so the default level stays quiet.
func New(st store.Store, heads core.BranchTable, logger *slog.Logger) *Server {
	if logger == nil {
		logger = slog.Default()
	}
	return &Server{st: st, heads: heads, conns: make(map[net.Conn]struct{}), logger: logger}
}

// AttachFeed publishes feed over OpFeedSince (and enables head pinning).
// Call before Listen.  A primary shares the same feed with its local engine
// (core.Open adopts a feed-wrapped branch table), so commits made through
// any path — TCP CAS, REST, embedded — appear in one sequence.
func (s *Server) AttachFeed(f *core.Feed) { s.feed = f }

// SetReadOnly makes the server reject every mutating op (chunk puts, head
// CAS, branch delete/rename).  Replicas serve reads this way: their state
// moves only through replication, never through client writes.
func (s *Server) SetReadOnly(ro bool) { s.readOnly = ro }

// errReadOnly is what mutating ops receive from a read-only node.
var errReadOnly = errors.New("server: node is a read-only replica")

// Listen binds addr (e.g. "127.0.0.1:0") and serves until Close.
// It returns the bound address immediately; serving continues in the
// background.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if s.limits.MaxConns > 0 && len(s.conns) >= s.limits.MaxConns {
			s.refused++
			s.mu.Unlock()
			if s.met != nil {
				s.met.refused.Inc()
			}
			conn.Close() // shed at the door; the client backs off and retries
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		if s.met != nil {
			s.met.total.Inc()
			s.met.open.Add(1)
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		if s.met != nil {
			s.met.open.Add(-1)
		}
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		if s.limits.ReadTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.limits.ReadTimeout))
		}
		var req Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) {
				s.logger.Debug("request decode failed", "remote", conn.RemoteAddr().String(), "err", err)
			}
			return
		}
		start := time.Now()
		if s.met != nil {
			s.met.inflight.Add(1)
		}
		resp := s.handle(&req)
		if s.met != nil {
			s.met.inflight.Add(-1)
			s.met.opDone(req.Op, start, resp.Err != "")
		}
		if err := enc.Encode(resp); err != nil {
			s.logger.Debug("response encode failed", "remote", conn.RemoteAddr().String(), "err", err)
			return
		}
	}
}

func (s *Server) handle(req *Request) *Response {
	resp := &Response{}
	fail := func(err error) *Response {
		resp.Err = err.Error()
		return resp
	}
	if s.readOnly {
		switch req.Op {
		case OpPutChunk, OpPutChunks, OpCAS, OpDeleteBranch, OpRenameBranch:
			return fail(errReadOnly)
		}
	}
	switch req.Op {
	case OpPing:
		resp.OK = true
	case OpPutChunk:
		t := chunk.Type(req.ChunkType)
		if !t.Valid() {
			return fail(fmt.Errorf("invalid chunk type %d", req.ChunkType))
		}
		c := chunk.New(t, req.Data)
		if c.ID() != req.ID {
			// Refuse mislabelled chunks: content addressing is the
			// integrity contract in both directions.
			return fail(fmt.Errorf("%w: claimed %s actual %s", chunk.ErrCorrupt, req.ID.Short(), c.ID().Short()))
		}
		fresh, err := s.st.Put(c)
		if err != nil {
			return fail(err)
		}
		resp.OK = fresh
	case OpPutChunks:
		// Batched ingest: verify every claimed id up front (content
		// addressing is the integrity contract in both directions), then
		// land the whole batch in one store round.
		cs := make([]*chunk.Chunk, len(req.Chunks))
		for i, w := range req.Chunks {
			t := chunk.Type(w.Type)
			if !t.Valid() {
				return fail(fmt.Errorf("invalid chunk type %d at %d", w.Type, i))
			}
			c := chunk.NewClaimed(t, w.Data, w.ID)
			if err := c.Recheck(); err != nil {
				return fail(fmt.Errorf("chunk %d: %w", i, err))
			}
			cs[i] = c
		}
		fresh, err := store.PutBatch(s.st, cs)
		if err != nil {
			return fail(err)
		}
		resp.Fresh = fresh
		resp.OK = true
	case OpGetChunk:
		c, err := s.st.Get(req.ID)
		if err != nil {
			if errors.Is(err, store.ErrNotFound) {
				resp.Found = false
				return resp
			}
			return fail(err)
		}
		resp.Found = true
		resp.ChunkType = byte(c.Type())
		resp.Data = c.Data()
	case OpHasChunk:
		ok, err := s.st.Has(req.ID)
		if err != nil {
			return fail(err)
		}
		resp.OK = ok
	case OpGetChunks:
		cs, err := store.GetBatch(s.st, req.IDs)
		if err != nil {
			return fail(err)
		}
		resp.Chunks = make([]WireChunk, 0, len(cs))
		for _, c := range cs {
			if c == nil {
				continue // absent ids are omitted; the client notices the gap
			}
			resp.Chunks = append(resp.Chunks, WireChunk{ID: c.ID(), Type: byte(c.Type()), Data: c.Data()})
		}
		resp.OK = true
	case OpHasChunks:
		bools, err := store.HasBatch(s.st, req.IDs)
		if err != nil {
			return fail(err)
		}
		resp.Bools = bools
		resp.OK = true
	case OpFeedSince:
		if s.feed == nil {
			return fail(errors.New("server: node does not publish a change feed"))
		}
		resp.FeedEpoch = s.feed.Epoch()
		if req.Limit < 0 {
			// Sequence probe: report the feed tip without shipping entries.
			// Replicas take a cursor this way before a snapshot catch-up.
			resp.Cursor = s.feed.Seq()
			resp.OK = true
			return resp
		}
		if req.FeedEpoch != 0 && req.FeedEpoch != s.feed.Epoch() {
			// The cursor belongs to a previous feed incarnation (primary
			// restart): every retained entry may already be stale relative
			// to it, so force a snapshot exactly like ring truncation.
			resp.Cursor = req.Cursor
			resp.Truncated = true
			resp.OK = true
			return resp
		}
		limit := req.Limit
		if limit == 0 || limit > feedDefaultLimit {
			limit = feedDefaultLimit
		}
		if req.WaitMillis > 0 {
			wait := time.Duration(req.WaitMillis) * time.Millisecond
			if wait > feedMaxWait {
				wait = feedMaxWait
			}
			s.feed.Wait(req.Cursor, wait)
		}
		entries, next, truncated := s.feed.Since(req.Cursor, limit)
		resp.Entries = make([]WireFeedEntry, len(entries))
		for i, e := range entries {
			resp.Entries[i] = WireFeedEntry{Seq: e.Seq, Key: e.Key, Branch: e.Branch, Old: e.Old, New: e.New}
		}
		resp.Cursor = next
		resp.Truncated = truncated
		resp.OK = true
	case OpPinHead:
		if s.feed == nil {
			return fail(errors.New("server: node does not publish a change feed"))
		}
		s.feed.Pin(req.ID, 0) // server-side lease; replicas re-pin per round
		resp.OK = true
	case OpUnpinHead:
		if s.feed == nil {
			return fail(errors.New("server: node does not publish a change feed"))
		}
		s.feed.Unpin(req.ID)
		resp.OK = true
	case OpStats:
		resp.Stats = s.st.Stats()
	case OpHead:
		uid, ok, err := s.heads.Head(req.Key, req.Branch)
		if err != nil {
			return fail(err)
		}
		resp.Found = ok
		resp.UID = uid
	case OpCAS:
		ok, err := s.heads.CompareAndSet(req.Key, req.Branch, req.Old, req.New)
		if err != nil {
			return fail(err)
		}
		resp.OK = ok
	case OpDeleteBranch:
		if err := s.heads.Delete(req.Key, req.Branch); err != nil {
			return fail(err)
		}
		resp.OK = true
	case OpRenameBranch:
		if err := s.heads.Rename(req.Key, req.Branch, req.ToBranch); err != nil {
			return fail(err)
		}
		resp.OK = true
	case OpBranches:
		branches, err := s.heads.Branches(req.Key)
		if err != nil {
			return fail(err)
		}
		resp.Heads = make(map[string]string, len(branches))
		for b, uid := range branches {
			resp.Heads[b] = uid.String()
		}
	case OpKeys:
		keys, err := s.heads.Keys()
		if err != nil {
			return fail(err)
		}
		resp.Keys = keys
	default:
		return fail(fmt.Errorf("unknown op %d", req.Op))
	}
	return resp
}

// Addr returns the bound address ("" before Listen).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}
