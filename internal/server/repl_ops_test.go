package server

import (
	"strings"
	"testing"
	"time"

	"forkbase/internal/chunk"
	"forkbase/internal/core"
	"forkbase/internal/hash"
	"forkbase/internal/store"
)

func TestBatchedChunkReads(t *testing.T) {
	_, addr := startServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rs := NewRemoteStore(cl)

	var ids []hash.Hash
	for _, p := range []string{"a", "b", "c", "d"} {
		c := chunk.New(chunk.TypeBlobLeaf, []byte(p))
		if _, err := rs.Put(c); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, c.ID())
	}
	missing := hash.Of([]byte("missing"))
	query := []hash.Hash{ids[3], missing, ids[0], ids[1]}

	got, err := rs.GetBatch(query)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] == nil || string(got[0].Data()) != "d" {
		t.Fatalf("slot 0: %v", got[0])
	}
	if got[1] != nil {
		t.Fatal("missing id must yield nil")
	}
	if got[2] == nil || string(got[2].Data()) != "a" || got[3] == nil || string(got[3].Data()) != "b" {
		t.Fatal("wrong chunks in slots 2/3")
	}

	has, err := rs.HasBatch(query)
	if err != nil {
		t.Fatal(err)
	}
	if !has[0] || has[1] || !has[2] || !has[3] {
		t.Fatalf("HasBatch = %v", has)
	}

	// Empty batch: no round trip, no error.
	if out, err := rs.GetBatch(nil); err != nil || out != nil {
		t.Fatalf("empty GetBatch: %v %v", out, err)
	}
}

func TestGetChunksRejectsForgedPayload(t *testing.T) {
	// A malicious inner store serves a forged payload; the client's claimed-id
	// recheck must refuse it.
	mal := store.NewMaliciousStore(store.NewMemStore())
	srv := New(mal, core.NewMemBranchTable(), nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	c := chunk.New(chunk.TypeBlobLeaf, []byte("genuine"))
	if _, err := mal.Put(c); err != nil {
		t.Fatal(err)
	}
	mal.Forge(c.ID(), chunk.TypeBlobLeaf, []byte("forged!"))
	// The forged payload hashes to a different id, so the client's
	// match-by-requested-id step classifies it as absent: the forgery can
	// stall a sync (the chunk looks missing) but can never be accepted as
	// the genuine content.
	out, err := cl.GetChunks([]hash.Hash{c.ID()})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != nil {
		t.Fatalf("forged chunk crossed the wire as %s", out[0].ID().Short())
	}
}

func TestFeedSinceOverWire(t *testing.T) {
	st := store.NewMemStore()
	feed := core.NewFeed(64)
	heads := core.WithFeed(core.NewMemBranchTable(), feed)
	srv := New(st, heads, nil)
	srv.AttachFeed(feed)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Writes through the remote branch table land in the shared feed.
	rbt := NewRemoteBranchTable(cl)
	u1, u2 := hash.Of([]byte("v1")), hash.Of([]byte("v2"))
	if ok, err := rbt.CompareAndSet("k", "master", hash.Hash{}, u1); err != nil || !ok {
		t.Fatalf("cas1: %v %v", ok, err)
	}
	if ok, err := rbt.CompareAndSet("k", "master", u1, u2); err != nil || !ok {
		t.Fatalf("cas2: %v %v", ok, err)
	}

	entries, next, truncated, err := cl.FeedSince(core.FeedCursor{}, 0, 0)
	if err != nil || truncated {
		t.Fatalf("FeedSince: %v truncated=%v", err, truncated)
	}
	if len(entries) != 2 || next.Seq != 2 || next.Epoch != feed.Epoch() {
		t.Fatalf("entries=%d next=%+v", len(entries), next)
	}
	if entries[0].New != u1 || entries[1].Old != u1 || entries[1].New != u2 {
		t.Fatalf("wrong entries: %+v", entries)
	}

	// A cursor from another feed incarnation is truncated, not aliased.
	_, _, truncated, err = cl.FeedSince(core.FeedCursor{Epoch: feed.Epoch() + 1, Seq: 2}, 0, 0)
	if err != nil || !truncated {
		t.Fatalf("foreign-epoch cursor: err=%v truncated=%v", err, truncated)
	}

	// Sequence probe.
	pos, err := cl.FeedSeq()
	if err != nil || pos.Seq != 2 || pos.Epoch != feed.Epoch() {
		t.Fatalf("FeedSeq = %+v, %v", pos, err)
	}

	// Long poll: an entry arriving mid-wait wakes the reader.
	go func() {
		time.Sleep(20 * time.Millisecond)
		feed.Append("k", "master", u2, hash.Of([]byte("v3")))
	}()
	start := time.Now()
	entries, next, _, err = cl.FeedSince(core.FeedCursor{Epoch: feed.Epoch(), Seq: 2}, 0, 2*time.Second)
	if err != nil || len(entries) != 1 || next.Seq != 3 {
		t.Fatalf("long poll: %v entries=%d next=%+v", err, len(entries), next)
	}
	if time.Since(start) > time.Second {
		t.Fatal("long poll waited the full budget despite an append")
	}

	// Pin ops round-trip.
	if err := cl.PinHead(u2); err != nil {
		t.Fatal(err)
	}
	if len(feed.PinnedHeads()) != 1 {
		t.Fatal("PinHead did not register")
	}
	if err := cl.UnpinHead(u2); err != nil {
		t.Fatal(err)
	}
	if len(feed.PinnedHeads()) != 0 {
		t.Fatal("UnpinHead did not release")
	}
}

func TestFeedSinceWithoutFeed(t *testing.T) {
	_, addr := startServer(t) // no AttachFeed
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, _, err := cl.FeedSince(core.FeedCursor{}, 0, 0); err == nil || !strings.Contains(err.Error(), "change feed") {
		t.Fatalf("want change-feed error, got %v", err)
	}
}

func TestReadOnlyServerRejectsWrites(t *testing.T) {
	st := store.NewMemStore()
	heads := core.NewMemBranchTable()
	srv := New(st, heads, nil)
	srv.SetReadOnly(true)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rs := NewRemoteStore(cl)
	c := chunk.New(chunk.TypeBlobLeaf, []byte("nope"))
	if _, err := rs.Put(c); err == nil {
		t.Fatal("read-only server accepted a chunk put")
	}
	if _, err := rs.PutBatch([]*chunk.Chunk{c}); err == nil {
		t.Fatal("read-only server accepted a batch put")
	}
	rbt := NewRemoteBranchTable(cl)
	if _, err := rbt.CompareAndSet("k", "master", hash.Hash{}, c.ID()); err == nil {
		t.Fatal("read-only server accepted a CAS")
	}
	if err := rbt.Delete("k", "master"); err == nil {
		t.Fatal("read-only server accepted a delete")
	}
	if err := rbt.Rename("k", "a", "b"); err == nil {
		t.Fatal("read-only server accepted a rename")
	}

	// Reads still work: seed the store directly and fetch over the wire.
	if _, err := st.Put(c); err != nil {
		t.Fatal(err)
	}
	got, err := rs.Get(c.ID())
	if err != nil || string(got.Data()) != "nope" {
		t.Fatalf("read on read-only server: %v %v", got, err)
	}
}
