package server

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// TestWireCallsCarryDeadlines is a vet-level guard over this package's
// source: the wire protocol must never gain a blocking call that can hang
// forever.  Two rules, enforced by AST walk over every non-test file:
//
//  1. no naked net.Dial — dialing must bound connection setup
//     (net.DialTimeout or a net.Dialer with Timeout);
//  2. any function that calls Encode/Decode on the wire must also set a
//     deadline (SetDeadline / SetReadDeadline / SetWriteDeadline) in that
//     same function, so a stalled peer becomes a timeout, not a hang.
//
// The check is intentionally syntactic: it cannot prove the deadline
// covers the right conn, but it catches the regression that matters — a
// new code path talking gob to a socket with no deadline in sight.
func TestWireCallsCarryDeadlines(t *testing.T) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, name, nil, 0)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			var dials, codecs []token.Pos
			hasDeadline := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "Dial":
					if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "net" {
						dials = append(dials, call.Pos())
					}
				case "Encode", "Decode":
					codecs = append(codecs, call.Pos())
				case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
					hasDeadline = true
				}
				return true
			})
			for _, pos := range dials {
				t.Errorf("%s: naked net.Dial in %s — use net.DialTimeout (or a net.Dialer with Timeout)",
					fset.Position(pos), fn.Name.Name)
			}
			if !hasDeadline {
				for _, pos := range codecs {
					t.Errorf("%s: %s encodes/decodes on the wire without setting any deadline in the same function",
						fset.Position(pos), fn.Name.Name)
				}
			}
		}
	}
}
