package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"forkbase/internal/baseline"
	"forkbase/internal/chunker"
	"forkbase/internal/hash"
	"forkbase/internal/pos"
	"forkbase/internal/store"
)

// ---------------------------------------------------------------------------
// Ablation A1 — SIRI (POS-Tree) vs non-SIRI (B+-tree) page sharing
// ---------------------------------------------------------------------------

// A1Result contrasts page sharing across versions and insertion orders.
type A1Result struct {
	Entries  int
	Versions int

	// Cross-version sharing: fraction of version i+1's pages shared with i.
	POSVersionShare float64
	BPVersionShare  float64

	// Cross-order sharing: pages shared between two logically identical
	// indexes built with different insertion orders.
	POSOrderShare float64
	BPOrderShare  float64
}

// RunA1 measures both sharing dimensions.  POS-Tree should share nearly
// everything; the classic B+-tree should share almost nothing — Definition 1
// of the paper made quantitative.
func RunA1(entries, versions int) (A1Result, error) {
	keys := make([][]byte, entries)
	vals := make([][]byte, entries)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%08d", i))
		vals[i] = []byte(fmt.Sprintf("val-%d", i))
	}

	// --- Cross-order sharing ---
	ms := store.NewMemStore()
	cfg := chunker.DefaultConfig()
	sortedEntries := make([]pos.Entry, entries)
	for i := range sortedEntries {
		sortedEntries[i] = pos.Entry{Key: keys[i], Val: vals[i]}
	}
	posSorted, err := pos.BuildMap(ms, cfg, sortedEntries)
	if err != nil {
		return A1Result{}, err
	}
	// "Different insertion order" for POS-Tree = build half, edit in the
	// rest shuffled; structural invariance says the result is identical.
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(entries)
	half := entries / 2
	firstHalf := make([]pos.Entry, 0, half)
	for _, i := range perm[:half] {
		firstHalf = append(firstHalf, pos.Entry{Key: keys[i], Val: vals[i]})
	}
	posShuffled, err := pos.BuildMap(ms, cfg, firstHalf)
	if err != nil {
		return A1Result{}, err
	}
	var ops []pos.Op
	for _, i := range perm[half:] {
		ops = append(ops, pos.Put(keys[i], vals[i]))
	}
	posShuffled, err = posShuffled.Edit(ops)
	if err != nil {
		return A1Result{}, err
	}
	posOrderShare := chunkShare(posSorted, posShuffled)

	bpSorted := baseline.NewBPlusTree(64)
	for i := range keys {
		bpSorted.Insert(keys[i], vals[i])
	}
	bpShuffled := baseline.NewBPlusTree(64)
	for _, i := range rng.Perm(entries) {
		bpShuffled.Insert(keys[i], vals[i])
	}
	shared, ta, tb := baseline.SharedPages(bpSorted, bpShuffled)
	bpOrderShare := float64(shared) / float64(min(ta, tb))

	// --- Cross-version sharing ---
	posPrev := posSorted
	var posShareSum float64
	bpPrev := bpSorted
	var bpShareSum float64
	for v := 1; v < versions; v++ {
		idx := (v * 997) % entries
		newVal := []byte(fmt.Sprintf("version-%d-value", v))

		posNext, err := posPrev.Edit([]pos.Op{pos.Put(keys[idx], newVal)})
		if err != nil {
			return A1Result{}, err
		}
		posShareSum += chunkShare(posPrev, posNext)
		posPrev = posNext

		// A fresh B+-tree per version (a mutable B+-tree would modify in
		// place and keep no old version at all; copy-on-write without SIRI
		// still rewrites split-dependent paths).
		bpNext := baseline.NewBPlusTree(64)
		for i := range keys {
			val := vals[i]
			if i == idx {
				val = newVal
			}
			bpNext.Insert(keys[i], val)
		}
		s, a, b := baseline.SharedPages(bpPrev, bpNext)
		bpShareSum += float64(s) / float64(min(a, b))
		bpPrev = bpNext
		vals[idx] = newVal
	}
	return A1Result{
		Entries:         entries,
		Versions:        versions,
		POSVersionShare: posShareSum / float64(versions-1),
		BPVersionShare:  bpShareSum / float64(versions-1),
		POSOrderShare:   posOrderShare,
		BPOrderShare:    bpOrderShare,
	}, nil
}

// chunkShare returns the fraction of b's chunks also present in a.
func chunkShare(a, b *pos.Tree) float64 {
	aids, err := a.ChunkIDs()
	if err != nil {
		return 0
	}
	bids, err := b.ChunkIDs()
	if err != nil {
		return 0
	}
	set := make(map[hash.Hash]bool, len(aids))
	for _, id := range aids {
		set[id] = true
	}
	shared := 0
	for _, id := range bids {
		if set[id] {
			shared++
		}
	}
	if len(bids) == 0 {
		return 1
	}
	return float64(shared) / float64(len(bids))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// PrintA1 renders the SIRI ablation.
func PrintA1(w io.Writer, r A1Result) {
	fmt.Fprintf(w, "ABLATION A1 — SIRI (POS-Tree) vs non-SIRI (B+-tree) page sharing\n")
	fmt.Fprintf(w, "(%d entries, %d versions, 1-record churn)\n\n", r.Entries, r.Versions)
	fmt.Fprintf(w, "%-28s %12s %12s\n", "", "POS-Tree", "B+-tree")
	fmt.Fprintf(w, "%-28s %11.1f%% %11.1f%%\n", "pages shared across versions", 100*r.POSVersionShare, 100*r.BPVersionShare)
	fmt.Fprintf(w, "%-28s %11.1f%% %11.1f%%\n", "pages shared across orders", 100*r.POSOrderShare, 100*r.BPOrderShare)
}

// ---------------------------------------------------------------------------
// Ablation A2 — incremental edit vs full rebuild
// ---------------------------------------------------------------------------

// A2Row compares edit strategies for one batch size.
type A2Row struct {
	Entries      int
	BatchSize    int
	IncNanos     int64
	RebuildNanos int64
	Speedup      float64
	Identical    bool
}

// RunA2 verifies that Edit (incremental) and EditRebuild (streaming full
// rebuild) produce identical trees and compares their cost across batch
// sizes.
func RunA2(entries int, batches []int) ([]A2Row, error) {
	ms := store.NewMemStore()
	cfg := chunker.DefaultConfig()
	base := make([]pos.Entry, entries)
	for i := range base {
		base[i] = pos.Entry{
			Key: []byte(fmt.Sprintf("key-%08d", i)),
			Val: []byte(fmt.Sprintf("value-%d", i)),
		}
	}
	tree, err := pos.BuildMap(ms, cfg, base)
	if err != nil {
		return nil, err
	}
	var out []A2Row
	for _, bs := range batches {
		ops := make([]pos.Op, bs)
		for i := range ops {
			idx := (i * 131) % entries
			ops[i] = pos.Put([]byte(fmt.Sprintf("key-%08d", idx)), []byte(fmt.Sprintf("edit-%d-%d", bs, i)))
		}
		// Best-of-3 per strategy: a single-shot measurement of a sub-ms
		// edit is at the mercy of scheduler noise, which made the speedup
		// assertion flaky.
		var inc, reb *pos.Tree
		incNanos := timeBest3(func() { inc, err = tree.Edit(ops) })
		if err != nil {
			return nil, err
		}
		rebNanos := timeBest3(func() { reb, err = tree.EditRebuild(ops) })
		if err != nil {
			return nil, err
		}
		out = append(out, A2Row{
			Entries:      entries,
			BatchSize:    bs,
			IncNanos:     incNanos,
			RebuildNanos: rebNanos,
			Speedup:      float64(rebNanos) / float64(incNanos),
			Identical:    inc.Root() == reb.Root(),
		})
	}
	return out, nil
}

// PrintA2 renders the edit-strategy ablation.
func PrintA2(w io.Writer, rows []A2Row) {
	fmt.Fprintf(w, "ABLATION A2 — incremental edit vs full rebuild (N=%d)\n\n", rows[0].Entries)
	fmt.Fprintf(w, "%10s %14s %14s %9s %10s\n", "batch", "incremental", "rebuild", "speedup", "identical")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d %12.3fms %12.3fms %8.1fx %10v\n",
			r.BatchSize, float64(r.IncNanos)/1e6, float64(r.RebuildNanos)/1e6, r.Speedup, r.Identical)
	}
}

// ---------------------------------------------------------------------------
// Ablation A3 — chunk-size (q) sweep
// ---------------------------------------------------------------------------

// A3Row reports the dedup/latency trade-off for one pattern width.
type A3Row struct {
	Q             uint
	TargetBytes   int
	Height        int
	Nodes         int
	PhysicalBytes int64
	EditNanos     int64
	SecondCopyPct float64 // physical growth when storing a 1-edit copy
}

// RunA3 sweeps the pattern bit-width q: small chunks dedup better but make
// deeper trees and slower ops; large chunks the reverse.
func RunA3(entries int, qs []uint) ([]A3Row, error) {
	var out []A3Row
	for _, q := range qs {
		ms := store.NewMemStore()
		cfg := chunker.Config{Q: q, Window: 48, MinSize: 1 << (q - 3), MaxSize: 1 << (q + 3)}
		base := make([]pos.Entry, entries)
		for i := range base {
			base[i] = pos.Entry{
				Key: []byte(fmt.Sprintf("key-%08d", i)),
				Val: []byte(fmt.Sprintf("value-%d", i)),
			}
		}
		tree, err := pos.BuildMap(ms, cfg, base)
		if err != nil {
			return nil, err
		}
		st, err := tree.ComputeStats()
		if err != nil {
			return nil, err
		}
		afterFirst := ms.Stats().PhysicalBytes

		var edited *pos.Tree
		editNanos := timeIt(func() {
			edited, err = tree.Edit([]pos.Op{pos.Put([]byte("key-00000500"), []byte("poked"))})
		})
		if err != nil {
			return nil, err
		}
		_ = edited
		growth := ms.Stats().PhysicalBytes - afterFirst
		out = append(out, A3Row{
			Q:             q,
			TargetBytes:   1 << q,
			Height:        st.Height,
			Nodes:         st.Nodes,
			PhysicalBytes: afterFirst,
			EditNanos:     editNanos,
			SecondCopyPct: 100 * float64(growth) / float64(afterFirst),
		})
	}
	return out, nil
}

// PrintA3 renders the chunk-size sweep.
func PrintA3(w io.Writer, rows []A3Row, entries int) {
	fmt.Fprintf(w, "ABLATION A3 — chunk-size sweep (N=%d, one-record edit)\n\n", entries)
	fmt.Fprintf(w, "%4s %10s %8s %8s %14s %12s %14s\n",
		"q", "target(B)", "height", "nodes", "physical(B)", "edit", "copy-growth")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d %10d %8d %8d %14d %10.3fms %13.2f%%\n",
			r.Q, r.TargetBytes, r.Height, r.Nodes, r.PhysicalBytes,
			float64(r.EditNanos)/1e6, r.SecondCopyPct)
	}
}

// Elapsed re-exports duration formatting for the bench harness.
func Elapsed(d time.Duration) string { return d.String() }
